// Fig. 4 reproduction: influence of combining the growth effect (P3) and
// the external-shock effect (P4) on the "Amazon" sequence. Four fits:
// (a) neither, (b) growth only, (c) shocks only, (d) both. The paper's
// conclusion — (d) fits best, and the two effects are not interchangeable
// — should reproduce as a clear RMSE ordering.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/global_fit.h"
#include "datagen/catalog.h"
#include "datagen/generator.h"

namespace dspot {
namespace {

int Run() {
  std::printf("=== Fig. 4 — growth effect x external shocks on 'Amazon' ===\n\n");
  GeneratorConfig config = GoogleTrendsConfig();
  auto data = GenerateGlobalSequence(AmazonScenario(), config);
  if (!data.ok()) {
    std::fprintf(stderr, "generate: %s\n", data.status().ToString().c_str());
    return 1;
  }
  std::printf("data: growth onset at tick 343 (%s) + annual holiday shocks\n\n",
              bench::WeekToCalendar(343).c_str());

  struct Variant {
    const char* label;
    bool growth;
    bool shocks;
  };
  const Variant variants[] = {
      {"(a) no growth, no shocks", false, false},
      {"(b) growth only", true, false},
      {"(c) shocks only", false, true},
      {"(d) growth + shocks (Δ-SPOT)", true, true},
  };
  std::printf("%-32s %10s %10s %8s\n", "variant", "RMSE", "MDL bits",
              "#shocks");
  double rmse_d = 0.0;
  double rmse_a = 0.0;
  for (const Variant& v : variants) {
    GlobalFitOptions options;
    options.allow_growth = v.growth;
    options.allow_shocks = v.shocks;
    auto fit = FitGlobalSequence(*data, 0, 1, options);
    if (!fit.ok()) {
      std::fprintf(stderr, "fit: %s\n", fit.status().ToString().c_str());
      return 1;
    }
    std::printf("%-32s %10.3f %10.0f %8zu\n", v.label, fit->rmse,
                fit->cost_bits, fit->shocks.size());
    if (v.growth && v.shocks) rmse_d = fit->rmse;
    if (!v.growth && !v.shocks) rmse_a = fit->rmse;
    if (v.growth && v.shocks) {
      std::printf("\n");
      bench::PrintFitPair("  (d) fit", *data, fit->estimate);
      if (fit->params.has_growth()) {
        std::printf("  growth detected: eta0=%.3f, onset %s (truth: tick 343)\n",
                    fit->params.growth_rate,
                    bench::WeekToCalendar(fit->params.growth_start).c_str());
      }
    }
  }
  std::printf("\nExpected shape: (d) << (a); combining both effects beats "
              "either alone. Measured (d)/(a) RMSE ratio: %.2f\n",
              rmse_d / rmse_a);
  return 0;
}

}  // namespace
}  // namespace dspot

int main() { return dspot::Run(); }
