#ifndef DSPOT_CORE_OUTLIERS_H_
#define DSPOT_CORE_OUTLIERS_H_

#include <cstddef>
#include <vector>

#include "common/statusor.h"
#include "core/params.h"

namespace dspot {

/// Outlier-country analysis (the paper's Fig. 8 story, as an API): after
/// LOCALFIT, a location's reaction to a keyword's events is quantified by
/// its s^(L) participation strengths relative to the event's shared
/// strength; countries with near-zero participation are outliers relative
/// to the global trend.

struct LocationReaction {
  size_t location = 0;
  /// Mean local strength across all events/occurrences of the keyword.
  double mean_strength = 0.0;
  /// mean_strength / the keyword's mean shared strength (1.0 = exactly the
  /// global reaction level, 0 = no reaction at all).
  double participation_ratio = 0.0;
  /// Fraction of (event, occurrence) cells with zero local strength.
  double zero_fraction = 1.0;
  bool is_outlier = false;
};

struct OutlierOptions {
  /// A location is an outlier if its participation ratio falls below this.
  double participation_threshold = 0.25;
  /// ... or if at least this fraction of its strength cells is zero.
  double zero_fraction_threshold = 0.9;
};

/// Scores every location's reaction to `keyword`'s events. Requires a
/// LocalFit'd parameter set with at least one shock for the keyword;
/// returns FailedPrecondition otherwise. Results are ordered by location
/// index.
StatusOr<std::vector<LocationReaction>> ScoreLocationReactions(
    const ModelParamSet& params, size_t keyword,
    const OutlierOptions& options = OutlierOptions());

/// Convenience: indices of the outlier locations only.
StatusOr<std::vector<size_t>> FindOutlierLocations(
    const ModelParamSet& params, size_t keyword,
    const OutlierOptions& options = OutlierOptions());

}  // namespace dspot

#endif  // DSPOT_CORE_OUTLIERS_H_
