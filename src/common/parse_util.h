// Strict text-to-number parsing for user-facing inputs (CLI flags,
// config fields). Unlike atol/atof these reject empty strings, trailing
// garbage ("12x", "3.5" as an int) and out-of-range magnitudes instead of
// silently returning 0 or a truncated value.
#ifndef DSPOT_COMMON_PARSE_UTIL_H_
#define DSPOT_COMMON_PARSE_UTIL_H_

#include <cstdint>
#include <string_view>

#include "common/statusor.h"

namespace dspot {

/// Parses the ENTIRE text as a base-10 signed integer (optional leading
/// '-'/'+', no whitespace). Returns InvalidArgument on empty input, any
/// non-digit remainder, or overflow of int64.
StatusOr<int64_t> ParseInt64Text(std::string_view text);

/// Parses the ENTIRE text as a floating-point literal (decimal or
/// scientific notation). Returns InvalidArgument on empty input, trailing
/// garbage, or a non-finite result ("inf"/"nan" are rejected: no flag in
/// this codebase means anything sensible at infinity).
StatusOr<double> ParseDoubleText(std::string_view text);

/// Parses a byte-size flag value: a non-negative base-10 integer with an
/// optional suffix — a bare "B" ("256B" = 256 bytes) or a binary multiple
/// K/M/G/T, optionally followed by "B" or "iB" (so "64M", "64MB" and
/// "64MiB" all mean 64 * 2^20). Case
/// insensitive. Returns InvalidArgument on empty input, a sign (byte
/// budgets are never negative), fractional values, trailing garbage, an
/// unknown suffix, or a product that overflows uint64.
StatusOr<uint64_t> ParseByteSizeText(std::string_view text);

}  // namespace dspot

#endif  // DSPOT_COMMON_PARSE_UTIL_H_
