// Fig. 10: wall-clock time of Δ-SPOT vs dataset size, varied along each of
// the three tensor dimensions — (a) keywords d, (b) locations l,
// (c) duration n. Lemma 1 claims O(d*l*n); the printed series should grow
// ~linearly in each sweep. A final sweep (d) varies num_threads on a fixed
// tensor and reports the speedup over the serial baseline.

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/dspot.h"
#include "datagen/catalog.h"
#include "datagen/generator.h"
#include "obs/metrics.h"

namespace dspot {
namespace {

/// When the process runs with DSPOT_OBS set, each sweep is followed by a
/// per-stage wall-clock attribution built from the span histograms, so
/// the scaling curves can be decomposed (is the extra time in the base
/// LM fits, the shock search, or LOCALFIT?). Without DSPOT_OBS this is a
/// no-op and the sweeps measure the unobserved fit.
void PrintStageAttribution() {
  if (!ObsEnabled()) return;
  const ObsSnapshot snap = ObsRegistry::Instance().Snapshot();
  std::printf("    %-28s %10s %12s\n", "stage", "spans", "total ms");
  for (const MetricSnapshot& m : snap.metrics) {
    if (m.kind != MetricKind::kHistogram || m.count == 0) continue;
    std::printf("    %-28s %10llu %12.1f\n", m.name.c_str(),
                static_cast<unsigned long long>(m.count), m.sum);
  }
  ObsRegistry::Instance().Reset();
}

double FitSeconds(size_t d, size_t l, size_t n, uint64_t seed,
                  size_t num_threads = 1) {
  GeneratorConfig config = GoogleTrendsConfig(seed);
  config.n_ticks = n;
  config.num_locations = l;
  config.num_outlier_locations = 0;

  std::vector<KeywordScenario> suite = TrendingKeywordSuite();
  std::vector<KeywordScenario> scenarios;
  for (size_t i = 0; i < d; ++i) {
    KeywordScenario s = suite[i % suite.size()];
    s.name += "_" + std::to_string(i);
    // Keep shock starts inside the (possibly shortened) horizon.
    for (auto& shock : s.shocks) {
      shock.start %= std::max<size_t>(n / 2, 1);
    }
    scenarios.push_back(std::move(s));
  }
  auto generated = GenerateTensor(scenarios, config);
  if (!generated.ok()) {
    std::fprintf(stderr, "generate failed: %s\n",
                 generated.status().ToString().c_str());
    return -1.0;
  }

  DspotOptions options;
  // One detection round keeps the sweep fast while preserving the scaling
  // shape.
  options.global.max_outer_rounds = 1;
  options.local.max_rounds = 1;
  options.num_threads = num_threads;

  const auto start = std::chrono::steady_clock::now();
  auto result = FitDspot(generated->tensor, options);
  const auto end = std::chrono::steady_clock::now();
  if (!result.ok()) {
    std::fprintf(stderr, "fit failed: %s\n",
                 result.status().ToString().c_str());
    return -1.0;
  }
  return std::chrono::duration<double>(end - start).count();
}

void Sweep(const char* label, const std::vector<std::array<size_t, 3>>& dims,
           bench::BenchJson* json) {
  std::printf("--- Fig.10%s ---\n", label);
  std::printf("%8s %8s %8s %12s\n", "d", "l", "n", "median s");
  for (const auto& [d, l, n] : dims) {
    // Median of 3: the fit's iteration count depends on the noise draw,
    // so single-shot wall clocks are jumpy.
    std::vector<double> secs;
    for (int rep = 0; rep < 3; ++rep) {
      secs.push_back(FitSeconds(d, l, n, /*seed=*/7 + rep));
    }
    std::sort(secs.begin(), secs.end());
    std::printf("%8zu %8zu %8zu %12.3f\n", d, l, n, secs[1]);
    json->AddRow();
    json->SetRow("sweep", label);
    json->SetRow("d", static_cast<double>(d));
    json->SetRow("l", static_cast<double>(l));
    json->SetRow("n", static_cast<double>(n));
    json->SetRow("threads", 1.0);
    json->SetRow("median_seconds", secs[1]);
  }
  PrintStageAttribution();
}

// Thread sweep on a fixed tensor: the fit is bit-identical at any thread
// count (see src/parallel/), so this measures wall-clock only. Speedup is
// relative to the num_threads=1 row; expect it to flatten once the thread
// count passes the hardware concurrency of the machine.
void ThreadSweep(size_t d, size_t l, size_t n, bench::BenchJson* json) {
  std::printf("--- Fig.10(d) varying num_threads (d=%zu l=%zu n=%zu) ---\n", d,
              l, n);
  std::printf("%8s %12s %10s\n", "threads", "median s", "speedup");
  double serial_secs = -1.0;
  for (size_t threads : {1, 2, 4, 8}) {
    std::vector<double> secs;
    for (int rep = 0; rep < 3; ++rep) {
      secs.push_back(FitSeconds(d, l, n, /*seed=*/7 + rep, threads));
    }
    std::sort(secs.begin(), secs.end());
    if (threads == 1) serial_secs = secs[1];
    std::printf("%8zu %12.3f %9.2fx\n", threads, secs[1],
                serial_secs / secs[1]);
    json->AddRow();
    json->SetRow("sweep", "(d) varying num_threads");
    json->SetRow("d", static_cast<double>(d));
    json->SetRow("l", static_cast<double>(l));
    json->SetRow("n", static_cast<double>(n));
    json->SetRow("threads", static_cast<double>(threads));
    json->SetRow("median_seconds", secs[1]);
    json->SetRow("speedup", serial_secs / secs[1]);
  }
  PrintStageAttribution();
}

}  // namespace
}  // namespace dspot

int main() {
  std::printf("Δ-SPOT scalability (Fig. 10): wall-clock vs tensor size\n\n");
  dspot::bench::BenchJson json("fig10_scalability");
  dspot::Sweep("(a) varying keywords d",
               {{{1, 8, 208}}, {{2, 8, 208}}, {{4, 8, 208}}, {{8, 8, 208}}},
               &json);
  dspot::Sweep("(b) varying locations l",
               {{{2, 8, 208}}, {{2, 16, 208}}, {{2, 32, 208}}, {{2, 64, 208}}},
               &json);
  dspot::Sweep("(c) varying duration n",
               {{{2, 8, 104}}, {{2, 8, 208}}, {{2, 8, 416}}, {{2, 8, 832}}},
               &json);
  dspot::ThreadSweep(/*d=*/8, /*l=*/16, /*n=*/208, &json);
  if (json.WriteTo("BENCH_fig10.json")) {
    std::printf("\nwrote BENCH_fig10.json\n");
  }
  return 0;
}
