#ifndef DSPOT_LINALG_MATRIX_H_
#define DSPOT_LINALG_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace dspot {

/// Dense, row-major matrix of doubles. This is the workhorse container for
/// the hand-rolled optimizers (normal equations, Jacobians) and the AR
/// baseline. It deliberately supports only the operations those clients
/// need; it is not a general-purpose BLAS replacement.
class Matrix {
 public:
  /// An empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// A rows x cols matrix, zero-initialized (or filled with `fill`).
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) noexcept = default;
  Matrix& operator=(Matrix&&) noexcept = default;

  /// The identity matrix of size n.
  static Matrix Identity(size_t n);

  /// Builds a matrix from nested initializer data (row major). Rows must
  /// have equal lengths; asserts otherwise.
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Raw row-major storage; useful for tests.
  const std::vector<double>& data() const { return data_; }

  /// Mutable raw row-major storage (rows() x cols(), row stride cols()).
  /// For kernels that fill a matrix wholesale — e.g. the analytic-Jacobian
  /// writers — without going through operator() per element.
  double* MutableData() { return data_.data(); }

  /// Returns the transpose.
  Matrix Transposed() const;

  /// Matrix product this * rhs. Asserts on dimension mismatch.
  Matrix operator*(const Matrix& rhs) const;

  /// Matrix-vector product this * v (v.size() == cols()).
  std::vector<double> operator*(const std::vector<double>& v) const;

  /// Element-wise sum / difference. Asserts on dimension mismatch.
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;

  /// Scales every element by `s` in place and returns *this.
  Matrix& Scale(double s);

  /// Reshapes to rows x cols, reusing the existing storage when it is big
  /// enough (no allocation once warm). Contents are unspecified afterwards;
  /// callers are expected to overwrite every entry.
  void Resize(size_t rows, size_t cols);

  /// A^T * A (used to form normal equations without materializing A^T).
  Matrix Gram() const;

  /// Gram() into caller-owned storage: `out` is resized to cols x cols and
  /// fully overwritten. Allocation-free once `out` has warmed up.
  void GramInto(Matrix* out) const;

  /// A^T * v, with v.size() == rows().
  std::vector<double> TransposedTimes(const std::vector<double>& v) const;

  /// TransposedTimes into caller-owned storage; out.size() == cols().
  void TransposedTimesInto(std::span<const double> v,
                           std::span<double> out) const;

  /// Adds `value` to every diagonal entry (Levenberg damping).
  void AddToDiagonal(double value);

  /// Maximum absolute element, 0 for empty matrices.
  double MaxAbs() const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Human-readable rendering for debugging/tests.
  std::string ToString(int precision = 4) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace dspot

#endif  // DSPOT_LINALG_MATRIX_H_
