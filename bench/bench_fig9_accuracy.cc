// Fig. 9 reproduction: fitting accuracy (RMSE) of Δ-SPOT vs the SIRS
// model, SKIPS and FUNNEL, at (a) the global level and (b) the local
// level. The paper's shape: Δ-SPOT clearly lowest; SIRS/SKIPS miss the
// complicated patterns; FUNNEL sits between (it captures one-shot shocks
// but not cyclic ones, and has no growth effect).

#include <cstdio>
#include <vector>

#include "baselines/funnel.h"
#include "core/dspot.h"
#include "datagen/catalog.h"
#include "datagen/generator.h"
#include "epidemics/sir_family.h"
#include "epidemics/skips.h"
#include "timeseries/metrics.h"

namespace dspot {
namespace {

struct Scores {
  double dspot = 0.0;
  double sirs = 0.0;
  double skips = 0.0;
  double funnel = 0.0;
};

int Run() {
  std::printf("=== Fig. 9 — fitting accuracy vs SIRS / SKIPS / FUNNEL ===\n\n");
  GeneratorConfig config = GoogleTrendsConfig();
  config.num_locations = 6;
  config.num_outlier_locations = 1;
  const std::vector<KeywordScenario> scenarios = {
      GrammyScenario(), HarryPotterScenario(), EbolaScenario(),
      AmazonScenario()};
  auto generated = GenerateTensor(scenarios, config);
  if (!generated.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  const ActivityTensor& tensor = generated->tensor;
  const size_t d = tensor.num_keywords();
  const size_t l = tensor.num_locations();


  // Δ-SPOT full fit (global + local) once.
  auto dspot_fit = FitDspot(tensor);
  if (!dspot_fit.ok()) {
    std::fprintf(stderr, "dspot: %s\n",
                 dspot_fit.status().ToString().c_str());
    return 1;
  }

  std::printf("(a) global-level RMSE (per keyword):\n");
  std::printf("%-14s %10s %10s %10s %10s\n", "keyword", "Δ-SPOT", "SIRS",
              "SKIPS", "FUNNEL");
  Scores global_sum;
  std::vector<FunnelFit> funnel_fits(d);
  for (size_t i = 0; i < d; ++i) {
    const Series data = tensor.GlobalSequence(i);
    Scores row;
    row.dspot = dspot_fit->global_rmse[i];
    auto sirs = FitSirs(data);
    row.sirs = sirs.ok() ? sirs->info.rmse : -1.0;
    auto skips = FitSkips(data);
    row.skips = skips.ok() ? skips->rmse : -1.0;
    auto funnel = FitFunnel(data);
    if (funnel.ok()) {
      row.funnel = funnel->rmse;
      funnel_fits[i] = *funnel;
    } else {
      row.funnel = -1.0;
    }
    std::printf("%-14s %10.3f %10.3f %10.3f %10.3f\n",
                tensor.keywords()[i].c_str(), row.dspot, row.sirs, row.skips,
                row.funnel);
    global_sum.dspot += row.dspot;
    global_sum.sirs += row.sirs;
    global_sum.skips += row.skips;
    global_sum.funnel += row.funnel;
  }
  const double dd = static_cast<double>(d);
  std::printf("%-14s %10.3f %10.3f %10.3f %10.3f\n", "MEAN",
              global_sum.dspot / dd, global_sum.sirs / dd,
              global_sum.skips / dd, global_sum.funnel / dd);

  std::printf("\n(b) local-level RMSE (averaged over %zu keywords x %zu "
              "countries):\n",
              d, l);
  Scores local_sum;
  size_t cells = 0;
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j < l; ++j) {
      const Series data = tensor.LocalSequence(i, j);
      // Δ-SPOT: the LocalFit estimate.
      local_sum.dspot += Rmse(data, dspot_fit->LocalEstimate(i, j));
      // SIRS / SKIPS: fit each local sequence independently (they have no
      // notion of shared structure).
      auto sirs = FitSirs(data);
      local_sum.sirs += sirs.ok() ? sirs->info.rmse : 0.0;
      auto skips = FitSkips(data);
      local_sum.skips += skips.ok() ? skips->rmse : 0.0;
      // FUNNEL: local refit from its global fit.
      auto funnel = FitFunnelLocal(data, funnel_fits[i]);
      local_sum.funnel += funnel.ok() ? funnel->rmse : 0.0;
      ++cells;
    }
  }
  const double cc = static_cast<double>(cells);
  std::printf("%-14s %10s %10s %10s %10s\n", "", "Δ-SPOT", "SIRS", "SKIPS",
              "FUNNEL");
  std::printf("%-14s %10.3f %10.3f %10.3f %10.3f\n", "MEAN",
              local_sum.dspot / cc, local_sum.sirs / cc, local_sum.skips / cc,
              local_sum.funnel / cc);

  std::printf("\nExpected shape: Δ-SPOT lowest at both levels; SIRS and "
              "SKIPS fail on the spiky patterns; FUNNEL in between "
              "(no cyclic events, no growth).\n");

  return 0;
}

}  // namespace
}  // namespace dspot

int main() { return dspot::Run(); }
