#ifndef DSPOT_BASELINES_FUNNEL_H_
#define DSPOT_BASELINES_FUNNEL_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/statusor.h"
#include "epidemics/skips.h"
#include "timeseries/series.h"

namespace dspot {

/// FUNNEL-style baseline (after Matsubara et al., KDD 2014 — reference
/// [14]): a seasonally forced SIRS with *one-shot* (non-cyclic) external
/// shocks detected from residual bursts under an MDL criterion. Relative to
/// Δ-SPOT it lacks (a) cyclic shock sharing — every occurrence of an annual
/// event must be paid for as an independent shock — and (b) the population
/// growth effect. Those are exactly the deficits the paper's Fig. 9
/// attributes to it.

/// A single non-cyclic external shock: transmission is multiplied by
/// (1 + strength) during [start, start + width).
struct FunnelShock {
  size_t start = 0;
  size_t width = 1;
  double strength = 0.0;
};

struct FunnelParams {
  SkipsParams base;
  std::vector<FunnelShock> shocks;
};

/// Simulates the shocked, forced SIRS; returns I(t).
Series SimulateFunnel(const FunnelParams& params, size_t n_ticks);

/// In-place form over a horizon of `out.size()` ticks; the Series overload
/// delegates here. Keeps the FitFunnel alternation loop allocation-free.
void SimulateFunnelInto(const FunnelParams& params, std::span<double> out);

struct FunnelFit {
  FunnelParams params;
  double rmse = 0.0;
  /// Total MDL cost (model + data bits) of the accepted fit.
  double total_cost_bits = 0.0;
};

struct FunnelOptions {
  size_t max_shocks = 10;
  int max_alternations = 3;
};

/// Fits the FUNNEL baseline: alternates (base SIRS+forcing fit) with greedy
/// one-shot shock detection, accepting shocks only while the MDL total cost
/// decreases.
StatusOr<FunnelFit> FitFunnel(const Series& data,
                              const FunnelOptions& options = FunnelOptions());

/// Local-level refit used for Fig. 9(b): keeps the global dynamics and
/// shock times, rescales population and per-shock strengths to one
/// location's sequence.
StatusOr<FunnelFit> FitFunnelLocal(const Series& local_data,
                                   const FunnelFit& global_fit);

}  // namespace dspot

#endif  // DSPOT_BASELINES_FUNNEL_H_
