#include "core/local_fit.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <span>
#include <vector>

#include "core/cost.h"
#include "core/simulate.h"
#include "guard/fault_injector.h"
#include "mdl/mdl.h"
#include "obs/metrics.h"
#include "optimize/line_search.h"
#include "parallel/parallel_for.h"
#include "timeseries/metrics.h"

namespace dspot {

namespace {

/// Working copy of one (keyword, location) local model: the global
/// dynamics plus this location's population, growth rate and strength
/// columns.
struct LocalState {
  const Series* data = nullptr;
  const KeywordGlobalParams* global = nullptr;
  /// This keyword's shocks (pointers into the shared shock list).
  std::vector<const Shock*> shocks;
  /// Candidate strengths: one vector per shock, one entry per occurrence.
  std::vector<std::vector<double>> strengths;
  double population = 1.0;
  double growth_rate = 0.0;
  size_t n = 0;
};

/// Per-location scratch: the schedule and simulation buffers the
/// coordinate descent cycles through. One instance per ParallelFor task,
/// so the hundreds of objective evaluations behind each (keyword,
/// location) fit reuse the same storage without cross-thread sharing.
struct LocalScratch {
  std::vector<double> epsilon;
  std::vector<double> eta;
  std::vector<double> estimate;
};

/// Simulates the local model into scratch->estimate and returns a view of
/// it (valid until the next call with the same scratch). The epsilon
/// schedule is rebuilt from the candidate strengths by windowed occurrence
/// sweeps, bit-identical to the per-tick OccurrenceIndexAt scan.
std::span<const double> SimulateLocalStateInto(const LocalState& state,
                                               LocalScratch* scratch) {
  SivDynamics dynamics;
  dynamics.population = state.population;
  dynamics.beta = state.global->beta;
  dynamics.delta = state.global->delta;
  dynamics.gamma = state.global->gamma;
  dynamics.i0 = state.global->i0 * state.population /
                std::max(state.global->population, 1e-9);
  scratch->epsilon.assign(state.n, 1.0);
  for (size_t k = 0; k < state.shocks.size(); ++k) {
    AddOccurrenceStrengthsInto(*state.shocks[k], state.strengths[k],
                               scratch->epsilon);
  }
  std::span<const double> eta;
  if (state.global->has_growth()) {
    BuildEtaInto(state.growth_rate, state.global->growth_start, state.n,
                 &scratch->eta);
    eta = scratch->eta;
  }
  scratch->estimate.resize(state.n);
  SimulateSivInto(dynamics, scratch->epsilon, eta, scratch->estimate);
  return scratch->estimate;
}

double LocalStateRmse(const LocalState& state, LocalScratch* scratch) {
  return Rmse(std::span<const double>(state.data->values()),
              SimulateLocalStateInto(state, scratch));
}

size_t NonZeroStrengths(const LocalState& state) {
  size_t count = 0;
  for (const auto& v : state.strengths) {
    for (double s : v) {
      if (s != 0.0) ++count;
    }
  }
  return count;
}

double LocalStateCostBits(const LocalState& state, size_t d, size_t l,
                          LocalScratch* scratch) {
  return LocalSequenceCostBits(std::span<const double>(state.data->values()),
                               SimulateLocalStateInto(state, scratch),
                               NonZeroStrengths(state), d, l, state.n);
}

/// Fits one local sequence by coordinate descent; returns its final cost.
double FitOneLocal(LocalState* state, size_t d, size_t l,
                   const LocalFitOptions& options, LocalScratch* scratch) {
  const double peak = std::max(state->data->MaxValue(), 1e-3);

  // b^(L)_ij: local potential population.
  state->population = GridThenGoldenMinimize(
      [&](double pop) {
        state->population = pop;
        return LocalStateRmse(*state, scratch);
      },
      peak * 0.3, peak * 300.0, 40, 1e-3);

  // r^(L)_ij: local growth rate (only when the keyword has a growth term).
  if (state->global->has_growth()) {
    state->growth_rate = GuardedMinimize(
        [&](double rate) {
          state->growth_rate = rate;
          return LocalStateRmse(*state, scratch);
        },
        0.0, 4.0, state->growth_rate);
  }

  // Local participation strengths, one occurrence at a time.
  for (size_t k = 0; k < state->strengths.size(); ++k) {
    for (size_t m = 0; m < state->strengths[k].size(); ++m) {
      state->strengths[k][m] = GuardedMinimize(
          [&](double s) {
            state->strengths[k][m] = s;
            return LocalStateRmse(*state, scratch);
          },
          0.0, options.max_local_strength, state->strengths[k][m]);
    }
  }

  double cost = LocalStateCostBits(*state, d, l, scratch);

  // Sparsification: drop strengths whose description cost exceeds their
  // coding benefit.
  if (options.sparsify) {
    for (size_t k = 0; k < state->strengths.size(); ++k) {
      for (size_t m = 0; m < state->strengths[k].size(); ++m) {
        if (state->strengths[k][m] == 0.0) continue;
        const double saved = state->strengths[k][m];
        state->strengths[k][m] = 0.0;
        const double cost_without =
            LocalStateCostBits(*state, d, l, scratch);
        if (cost_without <= cost) {
          cost = cost_without;  // keep it zeroed
        } else {
          state->strengths[k][m] = saved;
        }
      }
    }
  }
  return cost;
}

}  // namespace

Status LocalFit(const ActivityTensor& tensor, ModelParamSet* params,
                const LocalFitOptions& options, FitHealth* health) {
  DSPOT_SPAN("local_fit");
  const auto start_time = std::chrono::steady_clock::now();
  if (params == nullptr) {
    return Status::InvalidArgument("LocalFit: null params");
  }
  const size_t d = tensor.num_keywords();
  const size_t l = tensor.num_locations();
  const size_t n = tensor.num_ticks();
  if (params->global.size() != d || params->num_ticks != n) {
    return Status::FailedPrecondition(
        "LocalFit: parameter set does not match the tensor dimensions");
  }

  // Initialize B_L from observed volume shares, R_L from the global rate,
  // and every shock's local strengths from its global strengths.
  params->base_local = Matrix(d, l);
  params->growth_local = Matrix(d, l);
  for (Shock& shock : params->shocks) {
    const size_t occ = shock.global_strengths.size();
    shock.local_strengths = Matrix(occ, l);
    for (size_t m = 0; m < occ; ++m) {
      for (size_t j = 0; j < l; ++j) {
        shock.local_strengths(m, j) = shock.global_strengths[m];
      }
    }
  }

  double previous_total = std::numeric_limits<double>::infinity();
  ParallelOptions popts;
  popts.num_threads = options.num_threads;
  popts.cancel = options.guard.cancel;
  // Set by any location task whose guard check fails; read between
  // keywords/rounds to stop launching new work. Relaxed is enough — the
  // flag only gates progress, it carries no data.
  std::atomic<bool> interrupted{false};
  bool converged = false;
  int rounds_done = 0;
  for (int round = 0; round < options.max_rounds && !interrupted.load(
                          std::memory_order_relaxed);
       ++round) {
    DSPOT_SPAN("local_fit.round");
    DSPOT_COUNT("local_fit.rounds", 1);
    double total = 0.0;
    for (size_t i = 0; i < d; ++i) {
      if (interrupted.load(std::memory_order_relaxed)) break;
      const std::vector<size_t> shock_indices = params->ShockIndicesFor(i);
      const Series global_seq = tensor.GlobalSequence(i);
      const double global_volume = std::max(global_seq.SumValue(), 1e-9);
      // Locations are independent given the keyword's global fit: each
      // task reads shared state (global params, shock list, last round's
      // strengths) and writes only column j of the local matrices. Costs
      // land in per-location slots and are reduced in location order, so
      // the round total — and the convergence decision it drives — is
      // bit-identical at any thread count.
      std::vector<double> costs(l, 0.0);
      ParallelFor(l, popts, [&](size_t j) {
        const Series local_data = tensor.LocalSequence(i, j);

        LocalScratch scratch;
        LocalState state;
        state.data = &local_data;
        state.global = &params->global[i];
        state.n = n;
        for (size_t k : shock_indices) {
          state.shocks.push_back(&params->shocks[k]);
        }
        if (round == 0) {
          // Volume-share initialization.
          const double share =
              std::max(local_data.SumValue(), 0.0) / global_volume;
          state.population =
              std::max(params->global[i].population * share, 1e-3);
          state.growth_rate = params->global[i].growth_rate;
          for (size_t k : shock_indices) {
            state.strengths.push_back(params->shocks[k].global_strengths);
          }
        } else {
          // Warm start from the previous round.
          state.population = params->base_local(i, j);
          state.growth_rate = params->growth_local(i, j);
          for (size_t k : shock_indices) {
            const Shock& shock = params->shocks[k];
            std::vector<double> column(shock.local_strengths.rows());
            for (size_t m = 0; m < column.size(); ++m) {
              column[m] = shock.local_strengths(m, j);
            }
            state.strengths.push_back(std::move(column));
          }
        }

        // Guard checkpoint: an expired deadline (or fired token) skips
        // the refinement but still writes the state back, so first-round
        // locations keep their sane volume-share initialization instead
        // of zeroed matrix slots.
        bool fit_this_location = true;
        if (options.guard.active() || FaultInjector::Instance().armed()) {
          if (!options.guard.Check("LocalFit location").ok()) {
            interrupted.store(true, std::memory_order_relaxed);
            fit_this_location = false;
          }
        }
        if (fit_this_location) {
          DSPOT_SPAN("local_fit.location");
          DSPOT_COUNT("local_fit.locations", 1);
          costs[j] = FitOneLocal(&state, d, l, options, &scratch);
        }

        // Write back (disjoint per location: column j only).
        params->base_local(i, j) = state.population;
        params->growth_local(i, j) = state.growth_rate;
        for (size_t si = 0; si < shock_indices.size(); ++si) {
          Shock& shock = params->shocks[shock_indices[si]];
          for (size_t m = 0; m < state.strengths[si].size(); ++m) {
            shock.local_strengths(m, j) = state.strengths[si][m];
          }
        }
      });
      for (size_t j = 0; j < l; ++j) {
        total += costs[j];
      }
    }
    if (interrupted.load(std::memory_order_relaxed)) break;
    ++rounds_done;
    if (total >= previous_total * (1.0 - options.min_cost_decrease)) {
      converged = true;
      break;
    }
    previous_total = total;
  }
  if (options.guard.cancel.cancelled()) {
    return Status::Cancelled("LocalFit: cancelled");
  }
  if (health) {
    health->iterations = rounds_done;
    health->restarts = 0;
    health->wall_time_ms = ElapsedMs(start_time);
    health->termination = interrupted.load(std::memory_order_relaxed)
                              ? FitTermination::kDeadlineExceeded
                              : (converged ? FitTermination::kConverged
                                           : FitTermination::kMaxIterations);
  }
  return Status::Ok();
}

}  // namespace dspot
