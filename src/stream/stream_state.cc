#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "durable/durable_file.h"
#include "obs/metrics.h"
#include "snapshot/codec.h"
#include "stream/stream_engine.h"

namespace dspot {

namespace {

// "DSPOTSTM": stream-engine state, sibling of the "DSPOTSNP" model
// snapshot. Same framing: magic, format version, length-prefixed payload,
// CRC-32 trailer.
constexpr char kMagic[8] = {'D', 'S', 'P', 'O', 'T', 'S', 'T', 'M'};
constexpr uint32_t kStreamStateVersion = 1;

// Decode-time allocation guards (the checksum would catch the corruption,
// but only after a bogus length prefix already drove a huge allocation).
constexpr uint64_t kMaxShocksPerKeyword = 1u << 16;
constexpr uint64_t kMaxStrengthsPerShock = 1u << 24;

}  // namespace

/// Befriended by StreamEngine: encodes/decodes the full engine state. The
/// encoding is canonical — it captures window *values*, never ring layout
/// (ring sizes are history-dependent; a restored engine re-derives a
/// compact layout) — and excludes wall-clock health and buffer accounting,
/// so engines that absorbed the same stream encode bit-identically at any
/// thread count.
class StreamStateCodec {
 public:
  static std::vector<uint8_t> Encode(const StreamEngine& engine) {
    const StreamOptions& opt = engine.options_;
    ByteWriter w;
    w.PutU64(static_cast<uint64_t>(opt.ticks_resolution));
    w.PutU64(static_cast<uint64_t>(opt.origin));
    w.PutU64(opt.ring_capacity);
    w.PutU64(opt.min_fit_ticks);
    w.PutU64(opt.refit_interval);
    w.PutU64(opt.forecast_horizon);
    w.PutDouble(opt.burst_threshold);
    w.PutU64(opt.min_burst_ticks);
    w.PutU64(opt.max_keywords);

    w.PutU64(engine.keywords_.size());
    for (const StreamEngine::KeywordState& ks : engine.keywords_) {
      w.PutString(ks.name);
      w.PutU32(ks.has_appends ? 1 : 0);
      w.PutU64(static_cast<uint64_t>(ks.last_timestamp));
      w.PutU64(static_cast<uint64_t>(ks.window_start));
      w.PutU64(ks.len);
      for (size_t i = 0; i < ks.len; ++i) {
        w.PutDouble(ks.ring[(ks.head + i) % ks.ring.size()]);
      }
      w.PutU32(ks.dirty ? 1 : 0);
      w.PutU32(ks.has_fit ? 1 : 0);
      if (ks.has_fit) {
        w.PutU64(static_cast<uint64_t>(ks.fit_window_start));
        w.PutU64(ks.fit_ticks);
        w.PutDouble(ks.params.population);
        w.PutDouble(ks.params.beta);
        w.PutDouble(ks.params.delta);
        w.PutDouble(ks.params.gamma);
        w.PutDouble(ks.params.i0);
        w.PutDouble(ks.params.growth_rate);
        w.PutU64(ks.params.growth_start);
        w.PutDouble(ks.fit_cost_bits);
        w.PutDouble(ks.fit_rmse);
        w.PutU64(ks.shocks.size());
        for (const Shock& shock : ks.shocks) {
          w.PutU64(shock.period);
          w.PutU64(shock.start);
          w.PutU64(shock.width);
          w.PutDouble(shock.base_strength);
          w.PutU64(shock.global_strengths.size());
          for (const double s : shock.global_strengths) {
            w.PutDouble(s);
          }
        }
      }
      const StreamEngine::ForecastCell* cell =
          ks.forecast.load(std::memory_order_acquire);
      w.PutU32(cell != nullptr ? 1 : 0);
      if (cell != nullptr) {
        w.PutU64(static_cast<uint64_t>(
            cell->start_tick.load(std::memory_order_relaxed)));
        for (size_t k = 0; k < opt.forecast_horizon; ++k) {
          w.PutDouble(cell->values[k].v.load(std::memory_order_relaxed));
        }
      }
    }

    w.PutU64(engine.appends_);
    w.PutU64(engine.rejected_);
    w.PutU64(engine.evicted_ticks_);
    w.PutU64(engine.flushes_);
    w.PutU64(engine.cold_fits_);
    w.PutU64(engine.warm_refits_);
    w.PutU64(engine.escalations_);
    w.PutU64(engine.refit_errors_);
    return std::move(w.TakeBytes());
  }

  static StatusOr<std::unique_ptr<StreamEngine>> Decode(
      ByteReader* r, const StreamOptions& runtime) {
    StreamOptions opt = runtime;
    DSPOT_ASSIGN_OR_RETURN(const uint64_t resolution, r->GetU64());
    opt.ticks_resolution = static_cast<int64_t>(resolution);
    DSPOT_ASSIGN_OR_RETURN(const uint64_t origin, r->GetU64());
    opt.origin = static_cast<int64_t>(origin);
    DSPOT_ASSIGN_OR_RETURN(opt.ring_capacity,
                           r->GetCount(1u << 30, "ring capacity"));
    DSPOT_ASSIGN_OR_RETURN(opt.min_fit_ticks,
                           r->GetCount(1u << 30, "min fit ticks"));
    DSPOT_ASSIGN_OR_RETURN(opt.refit_interval,
                           r->GetCount(1u << 30, "refit interval"));
    DSPOT_ASSIGN_OR_RETURN(opt.forecast_horizon,
                           r->GetCount(1u << 24, "forecast horizon"));
    DSPOT_ASSIGN_OR_RETURN(opt.burst_threshold, r->GetDouble());
    DSPOT_ASSIGN_OR_RETURN(opt.min_burst_ticks,
                           r->GetCount(1u << 30, "min burst ticks"));
    DSPOT_ASSIGN_OR_RETURN(opt.max_keywords,
                           r->GetCount(uint64_t{1} << 32, "max keywords"));

    auto engine = std::make_unique<StreamEngine>(opt);
    // The constructor normalizes its knobs; persisted options were already
    // normalized at save time, so any field the constructor had to adjust
    // describes a state this engine could never have written. Every
    // normalized field matters here — most of them size what follows in
    // the payload (a persisted forecast_horizon of 0, say, would be
    // normalized to 1 and make the decode loop read one double past every
    // stored forecast cell), so the check must run before the first
    // keyword is decoded.
    const StreamOptions& norm = engine->options_;
    const char* denormalized = nullptr;
    if (norm.ticks_resolution != opt.ticks_resolution) {
      denormalized = "ticks_resolution";
    } else if (norm.ring_capacity != opt.ring_capacity) {
      denormalized = "ring_capacity";
    } else if (norm.min_fit_ticks != opt.min_fit_ticks) {
      denormalized = "min_fit_ticks";
    } else if (norm.refit_interval != opt.refit_interval) {
      denormalized = "refit_interval";
    } else if (norm.forecast_horizon != opt.forecast_horizon) {
      denormalized = "forecast_horizon";
    } else if (norm.max_keywords != opt.max_keywords) {
      denormalized = "max_keywords";
    }
    if (denormalized != nullptr) {
      return r->InvalidAt(std::string("persisted ") + denormalized +
                          " fails its construction invariant (the engine "
                          "normalized it; refusing to decode state sized by "
                          "the raw value)");
    }

    DSPOT_ASSIGN_OR_RETURN(
        const uint64_t num_keywords,
        r->GetCount(engine->options_.max_keywords, "keyword count"));
    for (uint64_t i = 0; i < num_keywords; ++i) {
      engine->keywords_.emplace_back();
      StreamEngine::KeywordState& ks = engine->keywords_.back();
      DSPOT_ASSIGN_OR_RETURN(ks.name, r->GetString());
      if (ks.name.empty()) {
        return r->CorruptAt("empty keyword name");
      }
      if (!engine->index_
               .emplace(ks.name, static_cast<uint32_t>(i))
               .second) {
        return r->CorruptAt("duplicate keyword '" + ks.name + "'");
      }
      DSPOT_ASSIGN_OR_RETURN(const uint32_t has_appends, r->GetU32());
      ks.has_appends = has_appends != 0;
      DSPOT_ASSIGN_OR_RETURN(const uint64_t last_timestamp, r->GetU64());
      ks.last_timestamp = static_cast<int64_t>(last_timestamp);
      DSPOT_ASSIGN_OR_RETURN(const uint64_t window_start, r->GetU64());
      ks.window_start = static_cast<int64_t>(window_start);
      DSPOT_ASSIGN_OR_RETURN(
          ks.len, r->GetCount(engine->options_.ring_capacity, "window length"));
      if (ks.len > 0) {
        // Compact layout: the smallest geometric ring step that holds the
        // window (the original engine's ring may have been larger — layout
        // is runtime state, not stream state).
        const size_t size = std::min(
            std::max<size_t>(8, std::bit_ceil(ks.len)),
            std::max(engine->options_.ring_capacity, ks.len));
        ks.ring.assign(size, 0.0);
        engine->AddBufferBytes(static_cast<int64_t>(size * sizeof(double)));
        for (size_t t = 0; t < ks.len; ++t) {
          DSPOT_ASSIGN_OR_RETURN(ks.ring[t], r->GetDouble());
        }
      }
      DSPOT_ASSIGN_OR_RETURN(const uint32_t dirty, r->GetU32());
      ks.dirty = dirty != 0;
      DSPOT_ASSIGN_OR_RETURN(const uint32_t has_fit, r->GetU32());
      ks.has_fit = has_fit != 0;
      if (ks.has_fit) {
        DSPOT_ASSIGN_OR_RETURN(const uint64_t fit_start, r->GetU64());
        ks.fit_window_start = static_cast<int64_t>(fit_start);
        DSPOT_ASSIGN_OR_RETURN(
            ks.fit_ticks,
            r->GetCount(engine->options_.ring_capacity, "fit ticks"));
        DSPOT_ASSIGN_OR_RETURN(ks.params.population, r->GetDouble());
        DSPOT_ASSIGN_OR_RETURN(ks.params.beta, r->GetDouble());
        DSPOT_ASSIGN_OR_RETURN(ks.params.delta, r->GetDouble());
        DSPOT_ASSIGN_OR_RETURN(ks.params.gamma, r->GetDouble());
        DSPOT_ASSIGN_OR_RETURN(ks.params.i0, r->GetDouble());
        DSPOT_ASSIGN_OR_RETURN(ks.params.growth_rate, r->GetDouble());
        DSPOT_ASSIGN_OR_RETURN(const uint64_t growth_start, r->GetU64());
        ks.params.growth_start = static_cast<size_t>(growth_start);
        DSPOT_ASSIGN_OR_RETURN(ks.fit_cost_bits, r->GetDouble());
        DSPOT_ASSIGN_OR_RETURN(ks.fit_rmse, r->GetDouble());
        DSPOT_ASSIGN_OR_RETURN(
            const uint64_t num_shocks,
            r->GetCount(kMaxShocksPerKeyword, "shock count"));
        ks.shocks.resize(num_shocks);
        for (Shock& shock : ks.shocks) {
          shock.keyword = 0;
          DSPOT_ASSIGN_OR_RETURN(shock.period, r->GetU64());
          DSPOT_ASSIGN_OR_RETURN(shock.start, r->GetU64());
          DSPOT_ASSIGN_OR_RETURN(shock.width, r->GetU64());
          if (shock.width == 0) {
            return r->CorruptAt("shock width 0");
          }
          DSPOT_ASSIGN_OR_RETURN(shock.base_strength, r->GetDouble());
          DSPOT_ASSIGN_OR_RETURN(
              const uint64_t num_strengths,
              r->GetCount(kMaxStrengthsPerShock, "strength count"));
          shock.global_strengths.resize(num_strengths);
          for (double& s : shock.global_strengths) {
            DSPOT_ASSIGN_OR_RETURN(s, r->GetDouble());
          }
        }
      }
      DSPOT_ASSIGN_OR_RETURN(const uint32_t has_forecast, r->GetU32());
      if (has_forecast != 0) {
        const size_t horizon = engine->options_.forecast_horizon;
        auto* cell = new StreamEngine::ForecastCell(horizon);
        DSPOT_ASSIGN_OR_RETURN(const uint64_t start_tick, r->GetU64());
        cell->start_tick.store(static_cast<int64_t>(start_tick),
                               std::memory_order_relaxed);
        for (size_t k = 0; k < horizon; ++k) {
          StatusOr<double> v = r->GetDouble();
          if (!v.ok()) {
            delete cell;
            return v.status();
          }
          cell->values[k].v.store(*v, std::memory_order_relaxed);
        }
        engine->AddBufferBytes(static_cast<int64_t>(
            sizeof(StreamEngine::ForecastCell) +
            horizon * sizeof(StreamEngine::ForecastCell::Cell)));
        ks.forecast.store(cell, std::memory_order_release);
      }
      if (ks.dirty) {
        engine->dirty_.push_back(static_cast<uint32_t>(i));
      }
    }

    DSPOT_ASSIGN_OR_RETURN(engine->appends_, r->GetU64());
    DSPOT_ASSIGN_OR_RETURN(engine->rejected_, r->GetU64());
    DSPOT_ASSIGN_OR_RETURN(engine->evicted_ticks_, r->GetU64());
    DSPOT_ASSIGN_OR_RETURN(engine->flushes_, r->GetU64());
    DSPOT_ASSIGN_OR_RETURN(engine->cold_fits_, r->GetU64());
    DSPOT_ASSIGN_OR_RETURN(engine->warm_refits_, r->GetU64());
    DSPOT_ASSIGN_OR_RETURN(engine->escalations_, r->GetU64());
    DSPOT_ASSIGN_OR_RETURN(engine->refit_errors_, r->GetU64());
    if (r->remaining() != 0) {
      return r->CorruptAt(std::to_string(r->remaining()) +
                          " trailing bytes after the payload");
    }
    return engine;
  }
};

std::vector<uint8_t> StreamEngine::EncodeState() const {
  return StreamStateCodec::Encode(*this);
}

Status StreamEngine::SaveState(const std::string& path) const {
  DSPOT_SPAN("stream.save");
  const std::vector<uint8_t> payload = StreamStateCodec::Encode(*this);
  ByteWriter file;
  file.PutBytes(kMagic, sizeof(kMagic));
  file.PutU32(kStreamStateVersion);
  file.PutU64(payload.size());
  file.PutBytes(payload.data(), payload.size());
  file.PutU32(Crc32(payload.data(), payload.size()));
  // Atomic replacement: a crashed or failed save leaves any previous
  // state file exactly as it was, never a truncated hybrid.
  DSPOT_RETURN_IF_ERROR(
      AtomicWriteFile(path, file.bytes().data(), file.size()));
  DSPOT_COUNT("stream.saves", 1);
  DSPOT_OBSERVE("stream.save_bytes", static_cast<double>(payload.size()));
  return Status::Ok();
}

StatusOr<std::unique_ptr<StreamEngine>> StreamEngine::LoadState(
    const std::string& path, const StreamOptions& runtime) {
  DSPOT_SPAN("stream.load");
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  if (!is && !is.eof()) {
    return Status::IoError("read failed: " + path);
  }
  const std::string bytes = buf.str();
  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(path +
                                   ": not a dspot stream state (bad magic)");
  }
  const uint8_t* data = reinterpret_cast<const uint8_t*>(bytes.data());
  ByteReader r(data + sizeof(kMagic), bytes.size() - sizeof(kMagic), path);
  DSPOT_ASSIGN_OR_RETURN(const uint32_t version, r.GetU32());
  if (version != kStreamStateVersion) {
    return Status::InvalidArgument(
        path + ": unsupported stream state version " +
        std::to_string(version) + " (this build reads version " +
        std::to_string(kStreamStateVersion) + ")");
  }
  DSPOT_ASSIGN_OR_RETURN(
      const uint64_t payload_len,
      r.GetCount(r.remaining() > 4 ? r.remaining() - 4 : 0, "payload length"));
  const size_t payload_off = sizeof(kMagic) + r.offset();
  const uint8_t* payload = data + payload_off;
  ByteReader trailer(payload + payload_len,
                     bytes.size() - payload_off - payload_len, path);
  DSPOT_ASSIGN_OR_RETURN(const uint32_t stored_crc, trailer.GetU32());
  const uint32_t crc = Crc32(payload, payload_len);
  if (crc != stored_crc) {
    return Status::DataLoss(path + ": offset " + std::to_string(payload_off) +
                            ": payload checksum mismatch (stored " +
                            std::to_string(stored_crc) + ", computed " +
                            std::to_string(crc) + ")");
  }
  ByteReader payload_reader(payload, payload_len, path);
  return StreamStateCodec::Decode(&payload_reader, runtime);
}

StatusOr<std::unique_ptr<StreamEngine>> StreamEngine::DecodeState(
    const uint8_t* data, size_t size, const StreamOptions& runtime,
    const std::string& context) {
  ByteReader r(data, size, context);
  return StreamStateCodec::Decode(&r, runtime);
}

}  // namespace dspot
