#ifndef DSPOT_CORE_PARAMS_H_
#define DSPOT_CORE_PARAMS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/math_util.h"
#include "linalg/matrix.h"
#include "core/shock.h"

namespace dspot {

/// Global parameters of one keyword: its row of B_G = {N, beta, delta,
/// gamma} and of R_G = {eta_0, t_eta}. `i0` (initial infectives) is an
/// implementation parameter needed to start the recurrence; the paper
/// leaves it implicit.
struct KeywordGlobalParams {
  double population = 1.0;  ///< N_i: total user population of the keyword
  double beta = 0.1;        ///< contact rate (per capita; see SimulateSiv)
  double delta = 0.1;       ///< interest-loss rate
  double gamma = 0.05;      ///< vigilant -> susceptible return rate
  double i0 = 1.0;          ///< I(0)

  /// Population growth effect (P3). `growth_start == kNpos` disables it.
  double growth_rate = 0.0;    ///< eta_0i
  size_t growth_start = kNpos; ///< t_eta_i

  bool has_growth() const { return growth_start != kNpos; }
};

/// The complete Δ-SPOT parameter set F = {B_G, B_L, R_G, R_L, S}
/// (Definition 1) for a d-keyword, l-location, n-tick tensor.
struct ModelParamSet {
  /// d rows of B_G and R_G, merged per keyword.
  std::vector<KeywordGlobalParams> global;

  /// B_L (d x l): the potential local population b^(L)_ij of keyword i in
  /// location j, in absolute counts. Empty before LocalFit.
  Matrix base_local;

  /// R_L (d x l): the local population growth rate r^(L)_ij. Empty before
  /// LocalFit.
  Matrix growth_local;

  /// S: the external shock tensor, a flat list of shocks tagged with their
  /// keyword.
  std::vector<Shock> shocks;

  /// Dimensions the set was fitted on.
  size_t num_keywords = 0;
  size_t num_locations = 0;
  size_t num_ticks = 0;

  /// Shocks belonging to keyword i (indices into `shocks`).
  std::vector<size_t> ShockIndicesFor(size_t keyword) const;

  /// Number of shocks of keyword i.
  size_t ShockCountFor(size_t keyword) const;

  /// True once LocalFit has populated the local matrices.
  bool has_local() const { return !base_local.empty(); }

  /// Debug rendering of the per-keyword parameters.
  std::string ToString() const;
};

}  // namespace dspot

#endif  // DSPOT_CORE_PARAMS_H_
