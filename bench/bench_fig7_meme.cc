// Fig. 7 reproduction: global fits on two MemeTracker phrases (meme #3
// "yes we can", meme #16 "joe satriani ...") — single fast rise-and-fall
// bursts over 3 months of daily blog activity.

#include <cstdio>

#include "baselines/spikem.h"
#include "bench/bench_util.h"
#include "core/global_fit.h"
#include "core/simulate.h"
#include "datagen/catalog.h"
#include "datagen/generator.h"
#include "timeseries/metrics.h"

namespace dspot {
namespace {

int Run() {
  std::printf("=== Fig. 7 — MemeTracker memes (daily, Aug-Oct 2008) ===\n\n");
  GeneratorConfig config = MemeTrackerConfig();
  auto generated =
      GenerateTensor({Meme3Scenario(), Meme16Scenario()}, config);
  if (!generated.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  auto params = GlobalFit(generated->tensor);
  if (!params.ok()) {
    std::fprintf(stderr, "fit: %s\n", params.status().ToString().c_str());
    return 1;
  }
  for (size_t i = 0; i < 2; ++i) {
    const Series data = generated->tensor.GlobalSequence(i);
    const Series estimate = SimulateGlobal(*params, i, data.size());
    const double range = data.MaxValue() - data.MinValue();
    std::printf("--- %s: RMSE %.3f (%.1f%% of range) ---\n",
                generated->tensor.keywords()[i].c_str(),
                Rmse(data, estimate), 100.0 * Rmse(data, estimate) / range);
    bench::PrintFitPair(generated->tensor.keywords()[i], data, estimate);
    for (const Shock& shock : params->shocks) {
      if (shock.keyword != i) continue;
      std::printf("  event: start day %zu, width %zu, strength %.2f\n",
                  shock.start, shock.width, shock.base_strength);
    }
    const KeywordGlobalParams& g = params->global[i];
    std::printf("  dynamics: beta=%.3f delta=%.3f (memes: fast contagion, "
                "fast decay)\n",
                g.beta, g.delta);
    // Extension: SpikeM (the classic single-burst meme model, the paper's
    // reference [13]) as a per-meme comparison point.
    auto spikem = FitSpikeM(data);
    if (spikem.ok()) {
      std::printf("  SpikeM comparison: RMSE %.3f (burst at day %zu)\n\n",
                  spikem->rmse, spikem->params.shock_start);
    } else {
      std::printf("  SpikeM comparison failed: %s\n\n",
                  spikem.status().ToString().c_str());
    }
  }
  std::printf("Ground truth: meme3 burst at day 35, meme16 at day 55.\n");
  std::printf("Expected shape: both models fit single-burst memes; Δ-SPOT "
              "matches SpikeM here and additionally handles the cyclic / "
              "multi-event keywords SpikeM cannot.\n");
  return 0;
}

}  // namespace
}  // namespace dspot

int main() { return dspot::Run(); }
