// Unit and property tests for src/epidemics: SI / SIR / SIRS and SKIPS.

#include <gtest/gtest.h>

#include <cmath>

#include "epidemics/sir_family.h"
#include "epidemics/skips.h"
#include "timeseries/metrics.h"

namespace dspot {
namespace {

TEST(Si, SaturatesAtPopulation) {
  SiParams p{.population = 100.0, .beta = 0.9, .i0 = 1.0};
  Series i = SimulateSi(p, 200);
  EXPECT_NEAR(i[199], 100.0, 1e-3);
  // Monotone non-decreasing.
  for (size_t t = 1; t < i.size(); ++t) {
    EXPECT_GE(i[t] + 1e-12, i[t - 1]);
  }
}

TEST(Si, NoInfectionWithoutSeed) {
  SiParams p{.population = 100.0, .beta = 0.9, .i0 = 0.0};
  Series i = SimulateSi(p, 50);
  for (size_t t = 0; t < i.size(); ++t) {
    EXPECT_DOUBLE_EQ(i[t], 0.0);
  }
}

TEST(Sir, EpidemicRisesAndDies) {
  SirParams p{.population = 100.0, .beta = 0.8, .delta = 0.2, .i0 = 1.0};
  Series i = SimulateSir(p, 400);
  double peak = 0.0;
  for (size_t t = 0; t < i.size(); ++t) peak = std::max(peak, i[t]);
  EXPECT_GT(peak, 10.0);
  EXPECT_LT(i[399], 1.0);  // dies out (no re-susceptibility)
}

TEST(Sirs, ReachesEndemicEquilibrium) {
  SirsParams p{.population = 100.0,
               .beta = 0.8,
               .delta = 0.2,
               .gamma = 0.05,
               .i0 = 1.0};
  Series i = SimulateSirs(p, 2000);
  // Endemic: infective count settles at a positive level.
  EXPECT_GT(i[1999], 1.0);
  EXPECT_NEAR(i[1999], i[1950], 1.0);
}

TEST(Sirs, CompartmentsStayNonNegative) {
  SirsParams p{.population = 50.0,
               .beta = 5.0,
               .delta = 1.0,
               .gamma = 1.0,
               .i0 = 49.0};
  Series i = SimulateSirs(p, 500);
  for (size_t t = 0; t < i.size(); ++t) {
    EXPECT_GE(i[t], 0.0);
    EXPECT_LE(i[t], 50.0 + 1e-9);
  }
}

TEST(FitSi, RecoversLogisticCurve) {
  SiParams truth{.population = 80.0, .beta = 0.4, .i0 = 0.5};
  Series data = SimulateSi(truth, 100);
  auto fit = FitSi(data);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  // Logistic fits are stiff (N, beta and i0 trade off along a valley);
  // within 5% of the range is a good fit for multi-start LM.
  EXPECT_LT(fit->info.rmse, 0.05 * (data.MaxValue() - data.MinValue()));
}

TEST(FitSir, FitsOutbreakShape) {
  SirParams truth{
      .population = 120.0, .beta = 0.7, .delta = 0.25, .i0 = 1.0};
  Series data = SimulateSir(truth, 150);
  auto fit = FitSir(data);
  ASSERT_TRUE(fit.ok());
  EXPECT_LT(fit->info.rmse, 1.0);
}

TEST(FitSirs, FitsEndemicShape) {
  SirsParams truth{.population = 150.0,
                   .beta = 0.7,
                   .delta = 0.3,
                   .gamma = 0.1,
                   .i0 = 1.0};
  Series data = SimulateSirs(truth, 200);
  auto fit = FitSirs(data);
  ASSERT_TRUE(fit.ok());
  EXPECT_LT(fit->info.rmse, 1.5);
}

TEST(FitSirs, RejectsTinySeries) {
  EXPECT_FALSE(FitSirs(Series(4)).ok());
  EXPECT_FALSE(FitSir(Series(4)).ok());
  EXPECT_FALSE(FitSi(Series(4)).ok());
}

TEST(Skips, ForcingCreatesOscillations) {
  SkipsParams p;
  p.population = 200.0;
  p.beta0 = 0.6;
  p.delta = 0.3;
  p.gamma = 0.1;
  p.amplitude = 0.5;
  p.period = 52.0;
  p.i0 = 1.0;
  Series i = SimulateSkips(p, 520);
  // After transient, successive seasons should both rise and fall.
  double lo = 1e18;
  double hi = -1e18;
  for (size_t t = 260; t < 520; ++t) {
    lo = std::min(lo, i[t]);
    hi = std::max(hi, i[t]);
  }
  EXPECT_GT(hi - lo, 1.0);
}

TEST(Skips, ZeroAmplitudeMatchesSirs) {
  SkipsParams p;
  p.population = 100.0;
  p.beta0 = 0.5;
  p.delta = 0.2;
  p.gamma = 0.05;
  p.amplitude = 0.0;
  p.i0 = 2.0;
  SirsParams q{.population = 100.0,
               .beta = 0.5,
               .delta = 0.2,
               .gamma = 0.05,
               .i0 = 2.0};
  Series a = SimulateSkips(p, 100);
  Series b = SimulateSirs(q, 100);
  for (size_t t = 0; t < 100; ++t) {
    EXPECT_NEAR(a[t], b[t], 1e-9);
  }
}

TEST(FitSkips, FitsSeasonalData) {
  SkipsParams truth;
  truth.population = 200.0;
  truth.beta0 = 0.6;
  truth.delta = 0.3;
  truth.gamma = 0.1;
  truth.amplitude = 0.4;
  truth.period = 26.0;
  truth.i0 = 1.0;
  Series data = SimulateSkips(truth, 260);
  auto fit = FitSkips(data);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  const double range = data.MaxValue() - data.MinValue();
  EXPECT_LT(fit->rmse, 0.35 * range);
}

TEST(FitSkips, RejectsTinySeries) {
  EXPECT_FALSE(FitSkips(Series(8)).ok());
}

/// Property sweep: for any admissible parameter combination, the SIRS
/// population is conserved: I(t) never exceeds N and never goes negative.
class SirsInvariantProperty
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(SirsInvariantProperty, InfectiveWithinBounds) {
  const auto [beta, delta, gamma] = GetParam();
  SirsParams p{.population = 77.0,
               .beta = beta,
               .delta = delta,
               .gamma = gamma,
               .i0 = 3.0};
  Series i = SimulateSirs(p, 300);
  for (size_t t = 0; t < i.size(); ++t) {
    ASSERT_GE(i[t], -1e-9);
    ASSERT_LE(i[t], 77.0 + 1e-9);
    ASSERT_TRUE(std::isfinite(i[t]));
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParamGrid, SirsInvariantProperty,
    ::testing::Combine(::testing::Values(0.1, 0.9, 3.0),
                       ::testing::Values(0.05, 0.5, 1.0),
                       ::testing::Values(0.0, 0.3, 1.0)));

}  // namespace
}  // namespace dspot
