// Tests for src/core/outliers: participation scoring and outlier flags.

#include <gtest/gtest.h>

#include "core/outliers.h"

namespace dspot {
namespace {

/// Hand-built LocalFit'd parameter set: 1 keyword, 4 locations, one annual
/// shock with 3 occurrences. Locations 0/1 participate fully, location 2
/// weakly, location 3 not at all.
ModelParamSet BuildParams() {
  ModelParamSet params;
  params.num_keywords = 1;
  params.num_locations = 4;
  params.num_ticks = 160;
  KeywordGlobalParams g;
  g.population = 100.0;
  params.global = {g};
  params.base_local = Matrix(1, 4, 25.0);
  params.growth_local = Matrix(1, 4);

  Shock s;
  s.keyword = 0;
  s.period = 52;
  s.start = 6;
  s.width = 2;
  s.base_strength = 4.0;
  s.global_strengths.assign(3, 4.0);
  s.local_strengths = Matrix(3, 4);
  for (size_t m = 0; m < 3; ++m) {
    s.local_strengths(m, 0) = 4.0;
    s.local_strengths(m, 1) = 3.6;
    s.local_strengths(m, 2) = 0.4;
    s.local_strengths(m, 3) = 0.0;
  }
  params.shocks.push_back(std::move(s));
  return params;
}

TEST(Outliers, ScoresParticipation) {
  const ModelParamSet params = BuildParams();
  auto scores = ScoreLocationReactions(params, 0);
  ASSERT_TRUE(scores.ok()) << scores.status().ToString();
  ASSERT_EQ(scores->size(), 4u);
  EXPECT_NEAR((*scores)[0].participation_ratio, 1.0, 1e-9);
  EXPECT_NEAR((*scores)[1].participation_ratio, 0.9, 1e-9);
  EXPECT_NEAR((*scores)[2].participation_ratio, 0.1, 1e-9);
  EXPECT_NEAR((*scores)[3].participation_ratio, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ((*scores)[3].zero_fraction, 1.0);
  EXPECT_DOUBLE_EQ((*scores)[0].zero_fraction, 0.0);
}

TEST(Outliers, FlagsByThreshold) {
  const ModelParamSet params = BuildParams();
  auto scores = ScoreLocationReactions(params, 0);
  ASSERT_TRUE(scores.ok());
  EXPECT_FALSE((*scores)[0].is_outlier);
  EXPECT_FALSE((*scores)[1].is_outlier);
  EXPECT_TRUE((*scores)[2].is_outlier);
  EXPECT_TRUE((*scores)[3].is_outlier);
}

TEST(Outliers, FindOutlierLocations) {
  auto outliers = FindOutlierLocations(BuildParams(), 0);
  ASSERT_TRUE(outliers.ok());
  EXPECT_EQ(*outliers, (std::vector<size_t>{2, 3}));
}

TEST(Outliers, CustomThresholds) {
  OutlierOptions strict;
  strict.participation_threshold = 0.95;  // flags everything below 95%
  auto outliers = FindOutlierLocations(BuildParams(), 0, strict);
  ASSERT_TRUE(outliers.ok());
  EXPECT_EQ(*outliers, (std::vector<size_t>{1, 2, 3}));
}

TEST(Outliers, ErrorsWithoutLocalFit) {
  ModelParamSet params = BuildParams();
  params.base_local = Matrix();
  EXPECT_EQ(ScoreLocationReactions(params, 0).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(Outliers, ErrorsWithoutShocks) {
  ModelParamSet params = BuildParams();
  params.shocks.clear();
  EXPECT_EQ(ScoreLocationReactions(params, 0).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(Outliers, ErrorsOnBadKeyword) {
  EXPECT_EQ(ScoreLocationReactions(BuildParams(), 7).status().code(),
            StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace dspot
