#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

namespace dspot {

namespace {

std::atomic<size_t> g_next_slot{0};

/// Relaxed add for atomic<double> via CAS (fetch_add on floating-point
/// atomics is C++20 but spotty across standard libraries; the loop is
/// uncontended in the single-writer-per-shard common case).
void AtomicAdd(std::atomic<double>* target, double v) {
  double cur = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(cur, cur + v,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double v) {
  double cur = target->load(std::memory_order_relaxed);
  while (v < cur && !target->compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double v) {
  double cur = target->load(std::memory_order_relaxed);
  while (v > cur && !target->compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
}

/// Bucket i covers [2^(i-7), 2^(i-6)); values at or below 2^-7 land in
/// bucket 0 and values at or above 2^(kObsHistogramBuckets-7) in the last.
size_t BucketIndex(double v) {
  if (!(v > 0.0) || !std::isfinite(v)) {
    return 0;
  }
  const int b = std::ilogb(v) + 7;
  if (b < 0) return 0;
  return std::min(static_cast<size_t>(b), kObsHistogramBuckets - 1);
}

}  // namespace

size_t ObsThreadSlot() {
  thread_local const size_t slot =
      g_next_slot.fetch_add(1, std::memory_order_relaxed) % kObsShards;
  return slot;
}

uint64_t Counter::Total() const {
  uint64_t total = 0;
  for (const Cell& cell : cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::Record(double v) {
  Shard& shard = shards_[ObsThreadSlot()];
  const uint64_t prev = shard.count.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&shard.sum, v);
  if (prev == 0) {
    // First observation seeds min/max; concurrent same-shard writers fall
    // through to the CAS races below, which keep both bounds correct.
    double zero = 0.0;
    shard.min.compare_exchange_strong(zero, v, std::memory_order_relaxed);
    zero = 0.0;
    shard.max.compare_exchange_strong(zero, v, std::memory_order_relaxed);
  }
  AtomicMin(&shard.min, v);
  AtomicMax(&shard.max, v);
  shard.buckets[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
}

const MetricSnapshot* ObsSnapshot::Find(std::string_view name) const {
  for (const MetricSnapshot& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

uint64_t ObsSnapshot::CounterValue(std::string_view name) const {
  const MetricSnapshot* m = Find(name);
  return (m != nullptr && m->kind == MetricKind::kCounter) ? m->count : 0;
}

uint64_t ObsSnapshot::HistogramCount(std::string_view name) const {
  const MetricSnapshot* m = Find(name);
  return (m != nullptr && m->kind == MetricKind::kHistogram) ? m->count : 0;
}

ObsRegistry& ObsRegistry::Instance() {
  // Leaked on purpose: worker threads may record during static teardown.
  static ObsRegistry* instance = new ObsRegistry();
  return *instance;
}

ObsRegistry::ObsRegistry() {
  // Environment opt-in, so existing binaries (ctest golden runs, CI) can
  // arm the whole pipeline without code changes: DSPOT_OBS=1 arms
  // metrics, DSPOT_OBS=trace arms metrics + trace buffering.
  const char* env = std::getenv("DSPOT_OBS");
  if (env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0) {
    ObsOptions options;
    options.trace = std::strcmp(env, "trace") == 0;
    Enable(options);
  }
}

Counter& ObsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter(std::string(name))))
             .first;
  }
  return *it->second;
}

Gauge& ObsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::unique_ptr<Gauge>(new Gauge(std::string(name))))
             .first;
  }
  return *it->second;
}

Histogram& ObsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::unique_ptr<Histogram>(
                                             new Histogram(std::string(name))))
             .first;
  }
  return *it->second;
}

void ObsRegistry::Enable(const ObsOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  trace_base_ = std::chrono::steady_clock::now();
  obs_internal::g_obs_trace.store(options.trace, std::memory_order_relaxed);
  obs_internal::g_obs_enabled.store(true, std::memory_order_relaxed);
}

void ObsRegistry::Disable() {
  std::lock_guard<std::mutex> lock(mu_);
  obs_internal::g_obs_enabled.store(false, std::memory_order_relaxed);
  obs_internal::g_obs_trace.store(false, std::memory_order_relaxed);
}

void ObsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    for (Counter::Cell& cell : counter->cells_) {
      cell.value.store(0, std::memory_order_relaxed);
    }
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->value_.store(0.0, std::memory_order_relaxed);
  }
  for (auto& [name, histogram] : histograms_) {
    for (Histogram::Shard& shard : histogram->shards_) {
      shard.count.store(0, std::memory_order_relaxed);
      shard.sum.store(0.0, std::memory_order_relaxed);
      shard.min.store(0.0, std::memory_order_relaxed);
      shard.max.store(0.0, std::memory_order_relaxed);
      for (std::atomic<uint64_t>& bucket : shard.buckets) {
        bucket.store(0, std::memory_order_relaxed);
      }
    }
  }
  for (TraceShard& shard : trace_shards_) {
    std::lock_guard<std::mutex> shard_lock(shard.mu);
    shard.events.clear();
  }
  trace_base_ = std::chrono::steady_clock::now();
}

ObsSnapshot ObsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  ObsSnapshot snapshot;
  snapshot.metrics.reserve(counters_.size() + gauges_.size() +
                           histograms_.size());
  for (const auto& [name, counter] : counters_) {
    MetricSnapshot m;
    m.name = name;
    m.kind = MetricKind::kCounter;
    m.count = counter->Total();
    snapshot.metrics.push_back(std::move(m));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricSnapshot m;
    m.name = name;
    m.kind = MetricKind::kGauge;
    m.value = gauge->Value();
    snapshot.metrics.push_back(std::move(m));
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricSnapshot m;
    m.name = name;
    m.kind = MetricKind::kHistogram;
    bool first = true;
    for (const Histogram::Shard& shard : histogram->shards_) {
      const uint64_t count = shard.count.load(std::memory_order_relaxed);
      if (count == 0) continue;
      m.count += count;
      m.sum += shard.sum.load(std::memory_order_relaxed);
      const double lo = shard.min.load(std::memory_order_relaxed);
      const double hi = shard.max.load(std::memory_order_relaxed);
      m.min = first ? lo : std::min(m.min, lo);
      m.max = first ? hi : std::max(m.max, hi);
      first = false;
      for (size_t b = 0; b < kObsHistogramBuckets; ++b) {
        m.buckets[b] += shard.buckets[b].load(std::memory_order_relaxed);
      }
    }
    snapshot.metrics.push_back(std::move(m));
  }
  return snapshot;
}

std::vector<TraceEvent> ObsRegistry::TraceEvents() const {
  std::vector<TraceEvent> events;
  for (TraceShard& shard : trace_shards_) {
    std::lock_guard<std::mutex> shard_lock(shard.mu);
    events.insert(events.end(), shard.events.begin(), shard.events.end());
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              if (a.tid != b.tid) return a.tid < b.tid;
              return std::strcmp(a.name, b.name) < 0;
            });
  return events;
}

void ObsRegistry::AppendTraceEvent(
    const char* name, std::chrono::steady_clock::time_point start,
    std::chrono::steady_clock::time_point end) {
  if (!trace_enabled()) {
    return;
  }
  std::chrono::steady_clock::time_point base;
  {
    std::lock_guard<std::mutex> lock(mu_);
    base = trace_base_;
  }
  TraceEvent event;
  event.name = name;
  event.tid = static_cast<uint32_t>(ObsThreadSlot());
  event.ts_us =
      std::chrono::duration<double, std::micro>(start - base).count();
  event.dur_us = std::chrono::duration<double, std::micro>(end - start).count();
  TraceShard& shard = trace_shards_[ObsThreadSlot()];
  std::lock_guard<std::mutex> shard_lock(shard.mu);
  shard.events.push_back(event);
}

ObsSpan::~ObsSpan() {
  if (histogram_ == nullptr) {
    return;
  }
  const auto end = std::chrono::steady_clock::now();
  histogram_->Record(
      std::chrono::duration<double, std::milli>(end - start_).count());
  ObsRegistry::Instance().AppendTraceEvent(name_, start_, end);
}

}  // namespace dspot
