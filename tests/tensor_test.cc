// Unit tests for src/tensor: ActivityTensor and CSV I/O.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "tensor/activity_tensor.h"
#include "tensor/tensor_io.h"

namespace dspot {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(ActivityTensor, DimensionsAndDefaults) {
  ActivityTensor t(2, 3, 4);
  EXPECT_EQ(t.num_keywords(), 2u);
  EXPECT_EQ(t.num_locations(), 3u);
  EXPECT_EQ(t.num_ticks(), 4u);
  EXPECT_EQ(t.keywords()[0], "kw0");
  EXPECT_EQ(t.locations()[2], "loc2");
  EXPECT_DOUBLE_EQ(t.at(1, 2, 3), 0.0);
}

TEST(ActivityTensor, NamesAndLookup) {
  ActivityTensor t(2, 2, 2);
  ASSERT_TRUE(t.SetKeywordName(0, "ebola").ok());
  ASSERT_TRUE(t.SetLocationName(1, "JP").ok());
  EXPECT_EQ(t.KeywordIndex("ebola"), 0u);
  EXPECT_EQ(t.LocationIndex("JP"), 1u);
  EXPECT_EQ(t.KeywordIndex("nope"), kNpos);
  EXPECT_FALSE(t.SetKeywordName(5, "x").ok());
  EXPECT_FALSE(t.SetLocationName(5, "x").ok());
}

TEST(ActivityTensor, LocalSequenceRoundTrip) {
  ActivityTensor t(1, 2, 3);
  Series s(std::vector<double>{1, 2, 3});
  ASSERT_TRUE(t.SetLocalSequence(0, 1, s).ok());
  Series got = t.LocalSequence(0, 1);
  EXPECT_DOUBLE_EQ(got[0], 1.0);
  EXPECT_DOUBLE_EQ(got[2], 3.0);
  EXPECT_FALSE(t.SetLocalSequence(0, 1, Series(5)).ok());
  EXPECT_FALSE(t.SetLocalSequence(3, 0, s).ok());
}

TEST(ActivityTensor, GlobalSequenceSumsAcrossLocations) {
  ActivityTensor t(1, 3, 2);
  for (size_t j = 0; j < 3; ++j) {
    t.at(0, j, 0) = static_cast<double>(j + 1);
    t.at(0, j, 1) = 10.0;
  }
  Series g = t.GlobalSequence(0);
  EXPECT_DOUBLE_EQ(g[0], 6.0);
  EXPECT_DOUBLE_EQ(g[1], 30.0);
}

TEST(ActivityTensor, GlobalSequenceMissingOnlyIfAllMissing) {
  ActivityTensor t(1, 2, 2);
  t.at(0, 0, 0) = kMissingValue;
  t.at(0, 1, 0) = 5.0;
  t.at(0, 0, 1) = kMissingValue;
  t.at(0, 1, 1) = kMissingValue;
  Series g = t.GlobalSequence(0);
  EXPECT_DOUBLE_EQ(g[0], 5.0);
  EXPECT_TRUE(IsMissing(g[1]));
}

TEST(ActivityTensor, VolumeAndObservedCount) {
  ActivityTensor t(1, 1, 4);
  t.at(0, 0, 0) = 2.0;
  t.at(0, 0, 1) = 3.0;
  t.at(0, 0, 2) = kMissingValue;
  EXPECT_DOUBLE_EQ(t.TotalVolume(), 5.0);
  EXPECT_EQ(t.ObservedCount(), 3u);
}

TEST(TensorIo, SaveLoadRoundTrip) {
  ActivityTensor t(2, 2, 3);
  ASSERT_TRUE(t.SetKeywordName(0, "a").ok());
  ASSERT_TRUE(t.SetKeywordName(1, "b").ok());
  ASSERT_TRUE(t.SetLocationName(0, "US").ok());
  ASSERT_TRUE(t.SetLocationName(1, "JP").ok());
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 2; ++j) {
      for (size_t k = 0; k < 3; ++k) {
        t.at(i, j, k) = static_cast<double>(i * 100 + j * 10 + k) + 0.5;
      }
    }
  }
  const std::string path = TempPath("tensor_roundtrip.csv");
  ASSERT_TRUE(SaveTensorCsv(t, path).ok());
  auto loaded = LoadTensorCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_keywords(), 2u);
  EXPECT_EQ(loaded->num_locations(), 2u);
  EXPECT_EQ(loaded->num_ticks(), 3u);
  EXPECT_EQ(loaded->keywords()[1], "b");
  EXPECT_EQ(loaded->locations()[1], "JP");
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 2; ++j) {
      for (size_t k = 0; k < 3; ++k) {
        EXPECT_DOUBLE_EQ(loaded->at(i, j, k), t.at(i, j, k));
      }
    }
  }
}

TEST(TensorIo, MissingEntriesSurviveRoundTrip) {
  // Missing cells are written as explicit NaN rows, so they stay missing
  // under BOTH loader modes: fill_absent_with_zero only affects cells that
  // are genuinely absent from the file.
  ActivityTensor t(1, 1, 3);
  t.at(0, 0, 0) = 1.0;
  t.at(0, 0, 1) = kMissingValue;
  t.at(0, 0, 2) = 3.0;
  const std::string path = TempPath("tensor_missing.csv");
  ASSERT_TRUE(SaveTensorCsv(t, path).ok());
  auto as_zero = LoadTensorCsv(path, /*fill_absent_with_zero=*/true);
  ASSERT_TRUE(as_zero.ok());
  EXPECT_TRUE(IsMissing(as_zero->at(0, 0, 1)));
  auto as_missing = LoadTensorCsv(path, /*fill_absent_with_zero=*/false);
  ASSERT_TRUE(as_missing.ok());
  EXPECT_TRUE(IsMissing(as_missing->at(0, 0, 1)));
}

TEST(TensorIo, AbsentCellsStillFollowFillPolicy) {
  // A hand-written file with genuinely absent cells (no row at all) keeps
  // the historical fill_absent_with_zero behavior.
  const std::string path = TempPath("tensor_absent.csv");
  {
    std::ofstream os(path);
    os << "keyword,location,tick,value\n";
    os << "a,US,0,1.5\n";
    os << "a,US,2,2.5\n";  // tick 1 absent
  }
  auto as_zero = LoadTensorCsv(path, /*fill_absent_with_zero=*/true);
  ASSERT_TRUE(as_zero.ok());
  EXPECT_DOUBLE_EQ(as_zero->at(0, 0, 1), 0.0);
  auto as_missing = LoadTensorCsv(path, /*fill_absent_with_zero=*/false);
  ASSERT_TRUE(as_missing.ok());
  EXPECT_TRUE(IsMissing(as_missing->at(0, 0, 1)));
}

TEST(TensorIo, MissingRoundTripPreservesDimsAndExactValues) {
  // Regression: the seed writer skipped missing cells, which (a) turned
  // them into zeros under the default loader, (b) shrank the tick
  // dimension when the trailing ticks were all missing, and (c) printed
  // with 6 significant digits, losing value bits.
  ActivityTensor t(1, 2, 4);
  t.at(0, 0, 0) = 1.25;
  t.at(0, 0, 1) = kMissingValue;
  t.at(0, 0, 2) = 0.1;
  t.at(0, 0, 3) = kMissingValue;
  t.at(0, 1, 0) = 1.0 / 3.0;  // needs 17 significant digits
  t.at(0, 1, 1) = 2.0;
  t.at(0, 1, 2) = kMissingValue;
  t.at(0, 1, 3) = kMissingValue;  // trailing tick all-missing
  const std::string path = TempPath("tensor_missing_dims.csv");
  ASSERT_TRUE(SaveTensorCsv(t, path).ok());
  auto back = LoadTensorCsv(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_ticks(), 4u);
  for (size_t j = 0; j < 2; ++j) {
    for (size_t k = 0; k < 4; ++k) {
      const double want = t.at(0, j, k);
      const double got = back->at(0, j, k);
      if (IsMissing(want)) {
        EXPECT_TRUE(IsMissing(got)) << "cell (" << j << "," << k << ")";
      } else {
        // Bit-exact, not just approximately equal.
        EXPECT_EQ(got, want) << "cell (" << j << "," << k << ")";
      }
    }
  }
}

TEST(TensorIo, LoadRejectsMissingFile) {
  EXPECT_EQ(LoadTensorCsv("/nonexistent/path.csv").status().code(),
            StatusCode::kIoError);
}

TEST(TensorIo, LoadRejectsMalformedRow) {
  const std::string path = TempPath("tensor_bad.csv");
  std::ofstream os(path);
  os << "keyword,location,tick,value\n";
  os << "a,US,0\n";  // 3 fields
  os.close();
  const Status status = LoadTensorCsv(path).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  // The message pinpoints the defect: file, line, and column.
  EXPECT_NE(status.message().find(path + ":2"), std::string::npos)
      << status.message();
}

TEST(TensorIo, LoadRejectsBadNumber) {
  const std::string path = TempPath("tensor_badnum.csv");
  std::ofstream os(path);
  os << "keyword,location,tick,value\n";
  os << "a,US,zero,1.0\n";
  os.close();
  const Status status = LoadTensorCsv(path).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("column 3"), std::string::npos)
      << status.message();
}

TEST(TensorIo, LoadRejectsTrailingGarbageAfterNumber) {
  const std::string path = TempPath("tensor_trailing.csv");
  std::ofstream os(path);
  os << "keyword,location,tick,value\n";
  os << "a,US,0,1.5abc\n";  // must not be coerced to 1.5
  os.close();
  EXPECT_EQ(LoadTensorCsv(path).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TensorIo, SkipBadRowsLoadsTheRestAndCounts) {
  const std::string path = TempPath("tensor_lenient.csv");
  std::ofstream os(path);
  os << "keyword,location,tick,value\n";
  os << "a,US,0,1.0\n";
  os << "phantom,US,zero,2.0\n";  // bad tick; must not intern "phantom"
  os << "a,US,1\n";               // wrong field count
  os << "a,US,2,3.0\n";
  os.close();
  CsvReadOptions read_options;
  read_options.skip_bad_rows = true;
  size_t skipped = 0;
  read_options.skipped_rows = &skipped;
  auto loaded = LoadTensorCsv(path, /*fill_absent_with_zero=*/true,
                              read_options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(skipped, 2u);
  EXPECT_EQ(loaded->num_keywords(), 1u);  // "phantom" never leaked in
  EXPECT_EQ(loaded->num_ticks(), 3u);
  EXPECT_DOUBLE_EQ(loaded->at(0, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(loaded->at(0, 0, 2), 3.0);
}

TEST(TensorIo, LoadRejectsEmptyFile) {
  const std::string path = TempPath("tensor_empty.csv");
  std::ofstream(path).close();
  EXPECT_EQ(LoadTensorCsv(path).status().code(), StatusCode::kIoError);
}

TEST(TensorIo, SeriesRoundTripWithMissing) {
  Series s(std::vector<double>{1.5, kMissingValue, 3.25});
  const std::string path = TempPath("series_roundtrip.csv");
  ASSERT_TRUE(SaveSeriesCsv(s, path).ok());
  auto loaded = LoadSeriesCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 3u);
  EXPECT_DOUBLE_EQ((*loaded)[0], 1.5);
  EXPECT_TRUE(IsMissing((*loaded)[1]));
  EXPECT_DOUBLE_EQ((*loaded)[2], 3.25);
}

TEST(TensorIo, SeriesLoadRejectsGarbage) {
  const std::string path = TempPath("series_bad.csv");
  std::ofstream os(path);
  os << "tick,value\n0,1.0,extra\n";
  os.close();
  EXPECT_EQ(LoadSeriesCsv(path).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TensorIo, SeriesSkipBadRowsLoadsTheRest) {
  const std::string path = TempPath("series_lenient.csv");
  std::ofstream os(path);
  os << "tick,value\n0,1.0\nbroken\n2,3.0\n";
  os.close();
  CsvReadOptions read_options;
  read_options.skip_bad_rows = true;
  size_t skipped = 0;
  read_options.skipped_rows = &skipped;
  auto loaded = LoadSeriesCsv(path, read_options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(skipped, 1u);
  ASSERT_EQ(loaded->size(), 3u);
  EXPECT_DOUBLE_EQ((*loaded)[0], 1.0);
  EXPECT_DOUBLE_EQ((*loaded)[2], 3.0);
}

}  // namespace
}  // namespace dspot
