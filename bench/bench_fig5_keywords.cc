// Fig. 5 reproduction: global fitting results on 8 trending keywords of
// various categories (celebrities, events, products, diseases). For each
// keyword: the original/fitted sparkline pair, RMSE, and the detected
// event inventory.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/global_fit.h"
#include "core/simulate.h"
#include "datagen/catalog.h"
#include "datagen/generator.h"
#include "timeseries/metrics.h"

namespace dspot {
namespace {

int Run() {
  std::printf("=== Fig. 5 — global fits on 8 trending keywords ===\n\n");
  GeneratorConfig config = GoogleTrendsConfig();
  auto generated = GenerateTensor(TrendingKeywordSuite(), config);
  if (!generated.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  auto params = GlobalFit(generated->tensor);
  if (!params.ok()) {
    std::fprintf(stderr, "fit: %s\n", params.status().ToString().c_str());
    return 1;
  }

  double total_nrmse = 0.0;
  for (size_t i = 0; i < generated->tensor.num_keywords(); ++i) {
    const Series data = generated->tensor.GlobalSequence(i);
    const Series estimate = SimulateGlobal(*params, i, data.size());
    const double rmse = Rmse(data, estimate);
    const double range = data.MaxValue() - data.MinValue();
    total_nrmse += rmse / range;
    std::printf("--- %s: RMSE %.3f (%.1f%% of range) ---\n",
                generated->tensor.keywords()[i].c_str(), rmse,
                100.0 * rmse / range);
    bench::PrintFitPair(generated->tensor.keywords()[i], data, estimate);
    const KeywordGlobalParams& g = params->global[i];
    if (g.has_growth()) {
      std::printf("  growth: eta0=%.3f from %s\n", g.growth_rate,
                  bench::WeekToCalendar(g.growth_start).c_str());
    }
    for (const Shock& shock : params->shocks) {
      if (shock.keyword != i) continue;
      std::printf("  event: %s\n", bench::DescribeEvent(shock).c_str());
    }
    std::printf("\n");
  }
  std::printf("mean normalized RMSE across the suite: %.1f%% of range\n",
              100.0 * total_nrmse / 8.0);
  std::printf("Expected shape: every keyword fits within ~10%% of its "
              "range, with the right event periodicities detected.\n");
  return 0;
}

}  // namespace
}  // namespace dspot

int main() { return dspot::Run(); }
