#ifndef DSPOT_BASELINES_SPIKEM_H_
#define DSPOT_BASELINES_SPIKEM_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/statusor.h"
#include "timeseries/series.h"

namespace dspot {

/// SpikeM (after Matsubara, Sakurai, Prakash, Li & Faloutsos, "Rise and
/// fall patterns of information diffusion", KDD 2012 — the paper's
/// reference [13]): the classic model for a single information burst with
/// a power-law decay of infectiveness,
///
///   dB(n+1) = p(n+1) * [ (N - B(n)) * sum_{t=nb..n} (dB(t) + S(t)) * f(n+1-t)
///                        + background ]
///   f(tau)  = beta * tau^{-1.5}
///   S(t)    = shock_size at t == nb, else 0
///   p(n)    = 1 - pa/2 * (sin(2*pi*(n + ps)/pp) + 1)
///
/// The observed signal is dB(n) (mentions per tick). SpikeM nails single
/// memes (sharp rise, power-law fall, daily periodicity) but has exactly
/// one external shock, so it cannot describe multi-event or cyclic-event
/// keywords — a useful contrast baseline for the MemeTracker workload.
struct SpikeMParams {
  double population = 100.0;  ///< N: total available bloggers
  double beta = 1.0;          ///< infectiveness scale
  size_t shock_start = 0;     ///< n_b: tick of the external shock
  double shock_size = 10.0;   ///< S_b
  double background = 0.0;    ///< epsilon: background noise floor
  /// Periodic modulation (daily/weekly dips); period 0 disables it.
  double period = 0.0;               ///< p_p in ticks
  double periodicity_amplitude = 0;  ///< p_a in [0, 1]
  double periodicity_shift = 0.0;    ///< p_s in ticks
};

/// Simulates dB(t) for t = 0..n_ticks-1.
Series SimulateSpikeM(const SpikeMParams& params, size_t n_ticks);

/// Reusable scratch for SimulateSpikeMInto. `decay` caches the
/// beta-independent power-law kernel tau^{-1.5} (recomputed only when the
/// horizon changes — it is by far the most expensive part of the kernel);
/// `kernel` holds beta * decay for the current parameters.
struct SpikeMWorkspace {
  std::vector<double> decay;
  std::vector<double> kernel;
};

/// In-place form over a horizon of `out.size()` ticks; the Series overload
/// delegates here with a throwaway workspace. The LM residual loop of
/// FitSpikeM reuses one workspace across all evaluations.
void SimulateSpikeMInto(const SpikeMParams& params, SpikeMWorkspace* workspace,
                        std::span<double> out);

struct SpikeMFit {
  SpikeMParams params;
  double rmse = 0.0;
};

struct SpikeMOptions {
  /// Fixed modulation period (e.g. 7 for daily data); 0 = fit without
  /// periodicity.
  double period = 0.0;
  /// Candidate shock-start grid resolution.
  size_t start_grid = 24;
};

/// Fits SpikeM to `data`: grid over the discrete shock start n_b,
/// Levenberg-Marquardt over the continuous parameters for each candidate.
StatusOr<SpikeMFit> FitSpikeM(const Series& data,
                              const SpikeMOptions& options = SpikeMOptions());

}  // namespace dspot

#endif  // DSPOT_BASELINES_SPIKEM_H_
