#include "epidemics/sir_family.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <vector>

#include "optimize/levenberg_marquardt.h"
#include "timeseries/metrics.h"

namespace dspot {

namespace {

/// Shared per-fit scratch: the LM workspace, the simulation buffer, and
/// the observed-tick index list the residual loop walks.
struct EpidemicScratch {
  LmWorkspace lm;
  std::vector<double> estimate;
  std::vector<size_t> observed;

  void Prepare(const Series& data) {
    estimate.resize(data.size());
    observed.clear();
    for (size_t t = 0; t < data.size(); ++t) {
      if (data.IsObserved(t)) observed.push_back(t);
    }
  }
};

/// Shared residual builder: model I(t) minus data over observed ticks.
template <typename SimulateInto>
Status ResidualsFor(const Series& data, const SimulateInto& simulate_into,
                    EpidemicScratch* scratch, std::span<double> r) {
  simulate_into(std::span<double>(scratch->estimate));
  for (size_t k = 0; k < scratch->observed.size(); ++k) {
    const size_t t = scratch->observed[k];
    r[k] = scratch->estimate[t] - data[t];
  }
  return Status::Ok();
}

constexpr int kMinObserved = 8;

/// Initial guesses shared by the family: population scaled off the peak,
/// a handful of (beta, delta) starting pairs.
struct Start {
  double beta;
  double delta;
  double gamma;
};

const Start kStarts[] = {
    {0.3, 0.1, 0.05}, {0.6, 0.4, 0.2}, {0.9, 0.7, 0.5}, {0.2, 0.5, 0.1}};

}  // namespace

void SimulateSiInto(const SiParams& params, std::span<double> out) {
  const double n = std::max(params.population, 1e-9);
  double s = std::max(n - params.i0, 0.0);
  double i = std::min(params.i0, n);
  for (size_t t = 0; t < out.size(); ++t) {
    out[t] = i;
    const double flow = std::min(params.beta * (s / n) * i, s);
    s -= flow;
    i += flow;
  }
}

Series SimulateSi(const SiParams& params, size_t n_ticks) {
  Series out(n_ticks);
  SimulateSiInto(params, out.mutable_values());
  return out;
}

void SimulateSirInto(const SirParams& params, std::span<double> out) {
  const double n = std::max(params.population, 1e-9);
  double s = std::max(n - params.i0, 0.0);
  double i = std::min(params.i0, n);
  for (size_t t = 0; t < out.size(); ++t) {
    out[t] = i;
    const double infect = std::min(params.beta * (s / n) * i, s);
    const double recover = std::min(params.delta, 1.0) * i;
    s -= infect;
    i += infect - recover;
    i = std::max(i, 0.0);
  }
}

Series SimulateSir(const SirParams& params, size_t n_ticks) {
  Series out(n_ticks);
  SimulateSirInto(params, out.mutable_values());
  return out;
}

void SimulateSirsInto(const SirsParams& params, std::span<double> out) {
  const double n = std::max(params.population, 1e-9);
  double s = std::max(n - params.i0, 0.0);
  double i = std::min(params.i0, n);
  double v = 0.0;
  for (size_t t = 0; t < out.size(); ++t) {
    out[t] = i;
    const double infect = std::min(params.beta * (s / n) * i, s);
    const double recover = std::min(params.delta, 1.0) * i;
    const double wane = std::min(params.gamma, 1.0) * v;
    s += wane - infect;
    i += infect - recover;
    v += recover - wane;
    s = std::max(s, 0.0);
    i = std::max(i, 0.0);
    v = std::max(v, 0.0);
  }
}

Series SimulateSirs(const SirsParams& params, size_t n_ticks) {
  Series out(n_ticks);
  SimulateSirsInto(params, out.mutable_values());
  return out;
}

StatusOr<SiFit> FitSi(const Series& data) {
  if (data.observed_count() < kMinObserved) {
    return Status::InvalidArgument("FitSi: too few observations");
  }
  const double peak = std::max(data.MaxValue(), 1.0);

  EpidemicScratch scratch;
  scratch.Prepare(data);
  auto residual_fn = [&](std::span<const double> p,
                         std::span<double> r) -> Status {
    SiParams params{p[0], p[1], p[2]};
    return ResidualsFor(
        data, [&](std::span<double> out) { SimulateSiInto(params, out); },
        &scratch, r);
  };
  Bounds bounds;
  bounds.lower = {peak * 1.05, 1e-6, 1e-6};
  bounds.upper = {peak * 100.0, 5.0, peak};

  SiFit best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const Start& start : kStarts) {
    std::vector<double> init = {peak * 2.0, start.beta, 1.0};
    auto fit_or = LevenbergMarquardt(residual_fn, scratch.observed.size(),
                                     init, bounds, LmOptions(), &scratch.lm);
    if (!fit_or.ok()) continue;
    if (fit_or->final_cost < best_cost) {
      best_cost = fit_or->final_cost;
      best.params = {fit_or->params[0], fit_or->params[1], fit_or->params[2]};
      best.info.lm_iterations = fit_or->iterations;
    }
  }
  if (!std::isfinite(best_cost)) {
    return Status::NumericalError("FitSi: all starts failed");
  }
  SimulateSiInto(best.params, scratch.estimate);
  best.info.rmse = Rmse(std::span<const double>(data.values()),
                        std::span<const double>(scratch.estimate));
  return best;
}

StatusOr<SirFit> FitSir(const Series& data) {
  if (data.observed_count() < kMinObserved) {
    return Status::InvalidArgument("FitSir: too few observations");
  }
  const double peak = std::max(data.MaxValue(), 1.0);

  EpidemicScratch scratch;
  scratch.Prepare(data);
  auto residual_fn = [&](std::span<const double> p,
                         std::span<double> r) -> Status {
    SirParams params{p[0], p[1], p[2], p[3]};
    return ResidualsFor(
        data, [&](std::span<double> out) { SimulateSirInto(params, out); },
        &scratch, r);
  };
  Bounds bounds;
  bounds.lower = {peak * 1.05, 1e-6, 1e-6, 1e-6};
  bounds.upper = {peak * 100.0, 5.0, 1.0, peak};

  SirFit best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const Start& start : kStarts) {
    std::vector<double> init = {peak * 2.0, start.beta, start.delta, 1.0};
    auto fit_or = LevenbergMarquardt(residual_fn, scratch.observed.size(),
                                     init, bounds, LmOptions(), &scratch.lm);
    if (!fit_or.ok()) continue;
    if (fit_or->final_cost < best_cost) {
      best_cost = fit_or->final_cost;
      best.params = {fit_or->params[0], fit_or->params[1], fit_or->params[2],
                     fit_or->params[3]};
      best.info.lm_iterations = fit_or->iterations;
    }
  }
  if (!std::isfinite(best_cost)) {
    return Status::NumericalError("FitSir: all starts failed");
  }
  SimulateSirInto(best.params, scratch.estimate);
  best.info.rmse = Rmse(std::span<const double>(data.values()),
                        std::span<const double>(scratch.estimate));
  return best;
}

StatusOr<SirsFit> FitSirs(const Series& data) {
  if (data.observed_count() < kMinObserved) {
    return Status::InvalidArgument("FitSirs: too few observations");
  }
  const double peak = std::max(data.MaxValue(), 1.0);

  EpidemicScratch scratch;
  scratch.Prepare(data);
  auto residual_fn = [&](std::span<const double> p,
                         std::span<double> r) -> Status {
    SirsParams params{p[0], p[1], p[2], p[3], p[4]};
    return ResidualsFor(
        data, [&](std::span<double> out) { SimulateSirsInto(params, out); },
        &scratch, r);
  };
  Bounds bounds;
  bounds.lower = {peak * 1.05, 1e-6, 1e-6, 1e-6, 1e-6};
  bounds.upper = {peak * 100.0, 5.0, 1.0, 1.0, peak};

  SirsFit best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const Start& start : kStarts) {
    std::vector<double> init = {peak * 2.0, start.beta, start.delta,
                                start.gamma, 1.0};
    auto fit_or = LevenbergMarquardt(residual_fn, scratch.observed.size(),
                                     init, bounds, LmOptions(), &scratch.lm);
    if (!fit_or.ok()) continue;
    if (fit_or->final_cost < best_cost) {
      best_cost = fit_or->final_cost;
      best.params = {fit_or->params[0], fit_or->params[1], fit_or->params[2],
                     fit_or->params[3], fit_or->params[4]};
      best.info.lm_iterations = fit_or->iterations;
    }
  }
  if (!std::isfinite(best_cost)) {
    return Status::NumericalError("FitSirs: all starts failed");
  }
  SimulateSirsInto(best.params, scratch.estimate);
  best.info.rmse = Rmse(std::span<const double>(data.values()),
                        std::span<const double>(scratch.estimate));
  return best;
}

}  // namespace dspot
