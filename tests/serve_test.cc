// dspot_serve: the sharded LRU model registry (spill, reload, by-name
// remap), the batching request engine (admission control, deadlines,
// determinism), and the wire protocol. The concurrency tests run N client
// threads against an evicting registry and hold the replies bit-identical
// to a serial replay of the admitted request log — serving must never
// trade correctness for parallelism.

#include "serve/serve_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <future>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/model_registry.h"
#include "serve/protocol.h"
#include "snapshot/snapshot.h"

namespace dspot {
namespace {

std::string TempDirFor(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// A synthetic model — registry tests exercise storage, not fitting.
ServedModel MakeModel(const std::string& keyword, double seed) {
  ServedModel model;
  model.keyword = keyword;
  model.params.population = 1000.0 + seed;
  model.params.beta = 0.2 + seed / 1000.0;
  model.params.delta = 0.11;
  model.params.gamma = 0.07;
  model.params.i0 = 2.0;
  model.params.growth_rate = 0.5;
  model.params.growth_start = 40;
  Shock shock;
  shock.keyword = 0;
  shock.period = 7;
  shock.start = 3;
  shock.width = 2;
  shock.base_strength = 1.5 + seed / 100.0;
  shock.global_strengths = {1.5, 1.7, 1.5};
  model.shocks.push_back(shock);
  model.fit_ticks = 64;
  model.rmse = 3.25 + seed;
  model.cost_bits = 812.5;
  return model;
}

/// Bit-level model equality via the canonical snapshot payload.
::testing::AssertionResult SameModelBits(const ServedModel& a,
                                         const ServedModel& b) {
  if (EncodeSnapshotPayload(a.ToSnapshot()) ==
      EncodeSnapshotPayload(b.ToSnapshot())) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << "models '" << a.keyword << "' and '" << b.keyword
         << "' differ at the bit level";
}

/// A deterministic activity series for engine tests (short, so cold fits
/// stay fast under TSan).
std::vector<double> TestSeries(size_t n, double phase) {
  std::vector<double> values(n);
  for (size_t t = 0; t < n; ++t) {
    double v = 30.0 + 8.0 * std::sin(0.9 * static_cast<double>(t) + phase);
    if (t >= 20 && t < 23) {
      v += 40.0;
    }
    values[t] = v;
  }
  return values;
}

// ---------------------------------------------------------------------------
// ModelRegistry

TEST(ModelRegistry, PutGetRoundTripsBitExactly) {
  RegistryOptions options;
  options.max_resident_bytes = 1ull << 20;
  ModelRegistry registry(options);
  const ServedModel model = MakeModel("grammy", 1.0);
  ASSERT_TRUE(registry.Put(model).ok());
  EXPECT_TRUE(registry.Resident("grammy"));
  auto got = registry.Get("grammy");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(SameModelBits(model, *got));
  const RegistryStats stats = registry.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.resident_models, 1u);
  EXPECT_GT(stats.resident_bytes, 0u);
}

TEST(ModelRegistry, GetUnknownKeywordIsNotFound) {
  ModelRegistry registry(RegistryOptions{});
  auto got = registry.Get("never-put");
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
  EXPECT_NE(got.status().message().find("never-put"), std::string::npos);
}

TEST(ModelRegistry, EvictsLeastRecentlyUsedWithoutSpill) {
  RegistryOptions options;
  options.num_shards = 1;
  // Room for roughly one model: the second Put must evict the first.
  options.max_resident_bytes = MakeModel("a", 0.0).ResidentBytes() + 16;
  ModelRegistry registry(options);
  ASSERT_TRUE(registry.Put(MakeModel("a", 1.0)).ok());
  ASSERT_TRUE(registry.Put(MakeModel("b", 2.0)).ok());
  EXPECT_FALSE(registry.Resident("a"));
  EXPECT_TRUE(registry.Resident("b"));
  EXPECT_EQ(registry.stats().evictions, 1u);
  // Without a spill directory, eviction forgets the model.
  auto got = registry.Get("a");
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
}

TEST(ModelRegistry, TouchRefreshesLruOrder) {
  RegistryOptions options;
  options.num_shards = 1;
  options.max_resident_bytes = 2 * MakeModel("a", 0.0).ResidentBytes() + 32;
  ModelRegistry registry(options);
  ASSERT_TRUE(registry.Put(MakeModel("a", 1.0)).ok());
  ASSERT_TRUE(registry.Put(MakeModel("b", 2.0)).ok());
  // Touch "a" so "b" becomes the LRU victim of the next insert.
  ASSERT_TRUE(registry.Get("a").ok());
  ASSERT_TRUE(registry.Put(MakeModel("c", 3.0)).ok());
  EXPECT_TRUE(registry.Resident("a"));
  EXPECT_FALSE(registry.Resident("b"));
  EXPECT_TRUE(registry.Resident("c"));
}

TEST(ModelRegistry, OversizedModelDegradesToCacheOfOne) {
  RegistryOptions options;
  options.num_shards = 1;
  options.max_resident_bytes = 1;  // smaller than any model
  ModelRegistry registry(options);
  ASSERT_TRUE(registry.Put(MakeModel("big", 1.0)).ok());
  // The just-admitted entry is never evicted, so the registry still works.
  EXPECT_TRUE(registry.Resident("big"));
  ASSERT_TRUE(registry.Put(MakeModel("bigger", 2.0)).ok());
  EXPECT_FALSE(registry.Resident("big"));
  EXPECT_TRUE(registry.Resident("bigger"));
}

TEST(ModelRegistry, EvictedModelReloadsBitIdenticallyFromSpill) {
  RegistryOptions options;
  options.num_shards = 1;
  options.max_resident_bytes = MakeModel("a", 0.0).ResidentBytes() + 16;
  options.spill_dir = TempDirFor("registry_spill_reload");
  ModelRegistry registry(options);
  const ServedModel a = MakeModel("a", 1.0);
  ASSERT_TRUE(registry.Put(a).ok());
  ASSERT_TRUE(registry.Put(MakeModel("b", 2.0)).ok());
  ASSERT_FALSE(registry.Resident("a"));
  auto got = registry.Get("a");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(SameModelBits(a, *got));
  EXPECT_TRUE(registry.Resident("a"));
  const RegistryStats stats = registry.stats();
  EXPECT_EQ(stats.reloads, 1u);
  EXPECT_GE(stats.spills, 2u);
}

TEST(ModelRegistry, SpillSurvivesRegistryRestart) {
  RegistryOptions options;
  options.spill_dir = TempDirFor("registry_restart");
  const ServedModel model = MakeModel("persistent", 4.0);
  {
    ModelRegistry registry(options);
    ASSERT_TRUE(registry.Put(model).ok());
  }
  ModelRegistry reborn(options);
  EXPECT_FALSE(reborn.Resident("persistent"));
  auto got = reborn.Get("persistent");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(SameModelBits(model, *got));
}

TEST(ModelRegistry, SpillPathSanitizesHostileKeywords) {
  RegistryOptions options;
  options.spill_dir = TempDirFor("registry_sanitize");
  ModelRegistry registry(options);
  const std::string hostile = "../etc passwd/..";
  const std::string path = registry.SpillPath(hostile);
  // Everything after the spill dir must be a single path component.
  const std::string tail = path.substr(options.spill_dir.size() + 1);
  EXPECT_EQ(tail.find('/'), std::string::npos) << path;
  EXPECT_EQ(tail.find(' '), std::string::npos) << path;
  // And distinct hostile keywords must not collide.
  EXPECT_NE(registry.SpillPath("a/b"), registry.SpillPath("a_b"));
  EXPECT_NE(registry.SpillPath("a/b"), registry.SpillPath("a%2Fb"));
  const ServedModel model = MakeModel(hostile, 1.0);
  ASSERT_TRUE(registry.Put(model).ok());
  auto got = registry.Get(hostile);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(SameModelBits(model, *got));
}

// Regression (PR 9): reloading a snapshot whose keyword set differs from
// the requester's view must locate the keyword BY NAME. A stale or
// reorganized spill file stores the same keyword under a different index;
// trusting the stored index silently serves another keyword's model.
TEST(ModelRegistry, ReloadRemapsKeywordIdsByNameNotByStoredIndex) {
  RegistryOptions options;
  options.spill_dir = TempDirFor("registry_remap");
  ModelRegistry registry(options);

  // A three-keyword batch snapshot where "target" sits at index 2 with
  // distinctive parameters, planted at the spill path the registry will
  // consult for "target".
  ModelSnapshot batch;
  batch.params.num_keywords = 3;
  batch.params.num_locations = 0;
  batch.params.num_ticks = 64;
  for (size_t i = 0; i < 3; ++i) {
    KeywordGlobalParams p;
    p.population = 100.0 * static_cast<double>(i + 1);
    p.beta = 0.1 + 0.1 * static_cast<double>(i);
    batch.params.global.push_back(p);
    Shock shock;
    shock.keyword = i;
    shock.start = 5 + i;
    shock.base_strength = static_cast<double>(i + 1);
    shock.global_strengths = {shock.base_strength};
    batch.params.shocks.push_back(shock);
  }
  batch.keywords = {"decoy0", "decoy1", "target"};
  batch.global_rmse = {1.0, 2.0, 3.0};
  ASSERT_TRUE(SaveSnapshot(batch, registry.SpillPath("target")).ok());

  auto got = registry.Get("target");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  // Index-2 parameters, not index-0's.
  EXPECT_EQ(got->params.population, 300.0);
  EXPECT_EQ(got->params.beta, 0.1 + 0.1 * 2.0);
  EXPECT_EQ(got->rmse, 3.0);
  // Only "target"'s shock came along, re-tagged into single-keyword
  // coordinates.
  ASSERT_EQ(got->shocks.size(), 1u);
  EXPECT_EQ(got->shocks[0].keyword, 0u);
  EXPECT_EQ(got->shocks[0].start, 7u);
  EXPECT_EQ(got->shocks[0].base_strength, 3.0);
}

TEST(ModelRegistry, ReloadRejectsSnapshotWithoutTheKeyword) {
  RegistryOptions options;
  options.spill_dir = TempDirFor("registry_wrong_keyword");
  ModelRegistry registry(options);
  // A valid snapshot for some OTHER keyword, planted at "wanted"'s path.
  ModelSnapshot other = MakeModel("other", 1.0).ToSnapshot();
  ASSERT_TRUE(SaveSnapshot(other, registry.SpillPath("wanted")).ok());
  auto got = registry.Get("wanted");
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
  EXPECT_NE(got.status().message().find("wanted"), std::string::npos);
}

TEST(ModelRegistry, ReloadSurfacesCorruptSpillAsDataLoss) {
  RegistryOptions options;
  options.spill_dir = TempDirFor("registry_corrupt");
  ModelRegistry registry(options);
  const std::string path = registry.SpillPath("broken");
  ASSERT_TRUE(SaveSnapshot(MakeModel("broken", 1.0).ToSnapshot(), path).ok());
  // Flip one payload byte; the CRC must catch it on reload.
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(20);
  f.put(static_cast<char>(0x5A));
  f.close();
  auto got = registry.Get("broken");
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(got.status().message().find(path), std::string::npos);
}

// Regression (review): spill filenames must stay distinct after case
// folding — on case-insensitive filesystems (macOS/Windows defaults) a
// mapping that passes uppercase letters through verbatim lets 'Foo' and
// 'foo' share one file, so a Put of either clobbers the other's spill
// and a post-eviction Get reports NotFound.
TEST(ModelRegistry, SpillFilenamesSurviveCaseFolding) {
  RegistryOptions options;
  options.spill_dir = TempDirFor("registry_case");
  ModelRegistry registry(options);
  const auto folded = [](std::string s) {
    for (char& c : s) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    return s;
  };
  EXPECT_NE(folded(registry.SpillPath("Foo")),
            folded(registry.SpillPath("foo")));
  EXPECT_NE(folded(registry.SpillPath("FOO")),
            folded(registry.SpillPath("Foo")));
  EXPECT_NE(folded(registry.SpillPath("grammy A")),
            folded(registry.SpillPath("grammy a")));
  // Both case variants of a keyword round-trip independently.
  const ServedModel upper = MakeModel("Foo", 1.0);
  const ServedModel lower = MakeModel("foo", 2.0);
  ASSERT_TRUE(registry.Put(upper).ok());
  ASSERT_TRUE(registry.Put(lower).ok());
  auto got_upper = registry.Get("Foo");
  auto got_lower = registry.Get("foo");
  ASSERT_TRUE(got_upper.ok()) << got_upper.status().ToString();
  ASSERT_TRUE(got_lower.ok()) << got_lower.status().ToString();
  EXPECT_TRUE(SameModelBits(upper, *got_upper));
  EXPECT_TRUE(SameModelBits(lower, *got_lower));
}

// Regression (review): Put spills under the shard lock through a temp
// file + rename, so a concurrent Get miss on the same keyword can never
// read a half-written spill file (a torn file surfaces as DataLoss,
// which kRefit treats as a hard error), and racing Puts leave the
// resident model and its spill file agreeing on one winner.
TEST(ModelRegistry, ConcurrentPutAndReloadNeverObserveTornSpill) {
  RegistryOptions options;
  options.num_shards = 1;
  options.spill_dir = TempDirFor("registry_torn");
  options.max_resident_bytes = 1;  // cache-of-one: evictions are constant
  ModelRegistry registry(options);
  ASSERT_TRUE(registry.Put(MakeModel("hot", 0.0)).ok());

  std::atomic<bool> writer_failed{false};
  std::atomic<bool> reader_failed{false};
  std::thread writer([&] {
    for (int i = 1; i <= 100; ++i) {
      // The evictor Put pushes "hot" out, forcing the reader onto the
      // reload-from-disk path while "hot" is being rewritten.
      if (!registry.Put(MakeModel("hot", static_cast<double>(i))).ok() ||
          !registry.Put(MakeModel("evictor", 0.5)).ok()) {
        writer_failed.store(true);
        return;
      }
    }
  });
  std::thread reader([&] {
    for (int i = 0; i < 300; ++i) {
      if (!registry.Get("hot").ok()) {
        reader_failed.store(true);
        return;
      }
    }
  });
  writer.join();
  reader.join();
  EXPECT_FALSE(writer_failed.load());
  EXPECT_FALSE(reader_failed.load()) << "Get observed a torn or missing "
                                        "spill during concurrent Puts";
  // The temp files behind the atomic spill writes never leak.
  for (const auto& entry :
       std::filesystem::directory_iterator(options.spill_dir)) {
    EXPECT_EQ(entry.path().extension(), ".dspotsnp") << entry.path();
  }
}

// ---------------------------------------------------------------------------
// ServeEngine

TEST(ServeEngine, FitForecastAndScoreRoundTrip) {
  ModelRegistry registry(RegistryOptions{});
  ServeOptions options;
  options.num_threads = 1;
  ServeEngine engine(&registry, options);

  ServeRequest fit;
  fit.id = 1;
  fit.op = ServeOp::kFit;
  fit.keyword = "grammy";
  fit.values = TestSeries(64, 0.0);
  ServeReply fit_reply = engine.Call(fit);
  ASSERT_TRUE(fit_reply.status.ok()) << fit_reply.status.ToString();
  EXPECT_EQ(fit_reply.id, 1u);
  EXPECT_GT(fit_reply.rmse, 0.0);
  EXPECT_GT(fit_reply.cost_bits, 0.0);
  EXPECT_TRUE(registry.Resident("grammy"));

  ServeRequest forecast;
  forecast.id = 2;
  forecast.op = ServeOp::kForecast;
  forecast.keyword = "grammy";
  forecast.horizon = 12;
  ServeReply forecast_reply = engine.Call(forecast);
  ASSERT_TRUE(forecast_reply.status.ok()) << forecast_reply.status.ToString();
  ASSERT_EQ(forecast_reply.values.size(), 12u);
  for (double v : forecast_reply.values) {
    EXPECT_TRUE(std::isfinite(v));
  }
  EXPECT_EQ(forecast_reply.rmse, fit_reply.rmse);

  ServeRequest score;
  score.id = 3;
  score.op = ServeOp::kOutlierScore;
  score.keyword = "grammy";
  score.values = TestSeries(64, 0.0);
  // Plant a fresh spike the model has not seen.
  score.values[40] += 500.0;
  ServeReply score_reply = engine.Call(score);
  ASSERT_TRUE(score_reply.status.ok()) << score_reply.status.ToString();
  ASSERT_EQ(score_reply.values.size(), 64u);
  // The planted spike must dominate every other tick's score.
  double top = 0.0;
  size_t top_tick = 0;
  for (size_t t = 0; t < score_reply.values.size(); ++t) {
    if (std::abs(score_reply.values[t]) > top) {
      top = std::abs(score_reply.values[t]);
      top_tick = t;
    }
  }
  EXPECT_EQ(top_tick, 40u);
  EXPECT_GT(top, 3.0);
}

TEST(ServeEngine, RejectsMalformedRequests) {
  ModelRegistry registry(RegistryOptions{});
  ServeEngine engine(&registry, ServeOptions{});

  ServeRequest no_values;
  no_values.id = 1;
  no_values.op = ServeOp::kFit;
  no_values.keyword = "x";
  EXPECT_EQ(engine.Call(no_values).status.code(),
            StatusCode::kInvalidArgument);

  ServeRequest zero_horizon;
  zero_horizon.id = 2;
  zero_horizon.op = ServeOp::kForecast;
  zero_horizon.keyword = "x";
  zero_horizon.horizon = 0;
  EXPECT_EQ(engine.Call(zero_horizon).status.code(),
            StatusCode::kInvalidArgument);

  ServeRequest unknown_model;
  unknown_model.id = 3;
  unknown_model.op = ServeOp::kForecast;
  unknown_model.keyword = "never-fit";
  unknown_model.horizon = 4;
  EXPECT_EQ(engine.Call(unknown_model).status.code(), StatusCode::kNotFound);
}

TEST(ServeEngine, RefitWarmStartsAndFallsBackToCold) {
  ModelRegistry registry(RegistryOptions{});
  ServeOptions options;
  ServeEngine engine(&registry, options);

  // Refit with no stored model is a cold fit, not an error.
  ServeRequest refit;
  refit.id = 1;
  refit.op = ServeOp::kRefit;
  refit.keyword = "meme";
  refit.values = TestSeries(64, 0.5);
  ServeReply cold = engine.Call(refit);
  ASSERT_TRUE(cold.status.ok()) << cold.status.ToString();
  EXPECT_TRUE(registry.Resident("meme"));

  // Refit on a longer window warm-starts from the stored model.
  refit.id = 2;
  refit.values = TestSeries(80, 0.5);
  ServeReply warm = engine.Call(refit);
  ASSERT_TRUE(warm.status.ok()) << warm.status.ToString();
  auto stored = registry.Get("meme");
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(stored->fit_ticks, 80u);

  // Refit on a SHORTER window cannot warm-start (the stored fit covers
  // more ticks than the data) and must fall back to a cold fit.
  refit.id = 3;
  refit.values = TestSeries(48, 0.5);
  ServeReply shrunk = engine.Call(refit);
  ASSERT_TRUE(shrunk.status.ok()) << shrunk.status.ToString();
  stored = registry.Get("meme");
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(stored->fit_ticks, 48u);
}

TEST(ServeEngine, ShedsOldestRequestWhenQueueOverflows) {
  ModelRegistry registry(RegistryOptions{});
  ServeOptions options;
  options.num_threads = 1;
  options.queue_cap = 2;
  options.max_batch = 1;
  ServeEngine engine(&registry, options);

  // Occupy the dispatcher with a slow cold fit so later submissions pile
  // up deterministically; wait until the fit is IN FLIGHT (dequeued into
  // a batch), or the burst below could shed the fit itself.
  ServeRequest slow;
  slow.id = 100;
  slow.op = ServeOp::kFit;
  slow.keyword = "slow";
  slow.values = TestSeries(1024, 0.1);
  std::future<ServeReply> slow_future = engine.Submit(slow);
  while (engine.stats().batches < 1) {
    std::this_thread::yield();
  }

  // With the dispatcher busy and cap 2: r1, r2 queue; r3 sheds r1; r4
  // sheds r2.
  std::vector<std::future<ServeReply>> futures;
  for (uint64_t i = 1; i <= 4; ++i) {
    ServeRequest forecast;
    forecast.id = i;
    forecast.op = ServeOp::kForecast;
    forecast.keyword = "slow";
    forecast.horizon = 4;
    futures.push_back(engine.Submit(forecast));
  }
  ServeReply r1 = futures[0].get();
  ServeReply r2 = futures[1].get();
  EXPECT_EQ(r1.status.code(), StatusCode::kResourceExhausted)
      << r1.status.ToString();
  EXPECT_EQ(r2.status.code(), StatusCode::kResourceExhausted)
      << r2.status.ToString();
  EXPECT_NE(r1.status.message().find("admission queue full"),
            std::string::npos);
  // The shed reply still carries the SHED request's id.
  EXPECT_EQ(r1.id, 1u);
  EXPECT_EQ(r2.id, 2u);
  // The surviving requests complete normally once the fit finishes.
  EXPECT_TRUE(slow_future.get().status.ok());
  EXPECT_TRUE(futures[2].get().status.ok());
  EXPECT_TRUE(futures[3].get().status.ok());
  EXPECT_EQ(engine.stats().admission_rejects, 2u);
}

TEST(ServeEngine, TenantQuotaShedsOnlyTheFloodingTenant) {
  ModelRegistry registry(RegistryOptions{});
  ServeOptions options;
  options.num_threads = 1;
  options.queue_cap = 16;
  options.max_batch = 1;
  options.tenant_quota = 2;
  ServeEngine engine(&registry, options);

  // Same dispatcher-busy setup as the global shed test: a slow cold fit
  // must be IN FLIGHT before the bursts below, or they could shed it.
  ServeRequest slow;
  slow.id = 100;
  slow.op = ServeOp::kFit;
  slow.keyword = "slow";
  slow.values = TestSeries(1024, 0.1);
  std::future<ServeReply> slow_future = engine.Submit(slow);
  while (engine.stats().batches < 1) {
    std::this_thread::yield();
  }

  // The flooding tenant submits 4 with a quota of 2: f3 sheds f1, f4
  // sheds f2 — all inside the tenant, with room to spare in the queue.
  std::vector<std::future<ServeReply>> flood;
  for (uint64_t i = 1; i <= 4; ++i) {
    ServeRequest forecast;
    forecast.id = i;
    forecast.op = ServeOp::kForecast;
    forecast.keyword = "slow";
    forecast.horizon = 4;
    forecast.tenant = "flood";
    flood.push_back(engine.Submit(forecast));
  }
  // A fair tenant's pair queues untouched alongside the flood.
  std::vector<std::future<ServeReply>> fair;
  for (uint64_t i = 10; i <= 11; ++i) {
    ServeRequest forecast;
    forecast.id = i;
    forecast.op = ServeOp::kForecast;
    forecast.keyword = "slow";
    forecast.horizon = 4;
    forecast.tenant = "fair";
    fair.push_back(engine.Submit(forecast));
  }

  ServeReply f1 = flood[0].get();
  ServeReply f2 = flood[1].get();
  EXPECT_EQ(f1.status.code(), StatusCode::kResourceExhausted)
      << f1.status.ToString();
  EXPECT_EQ(f2.status.code(), StatusCode::kResourceExhausted)
      << f2.status.ToString();
  // The quota shed is named as such, with the tenant in the message.
  EXPECT_NE(f1.status.message().find("tenant 'flood' admission quota full"),
            std::string::npos)
      << f1.status.ToString();
  EXPECT_EQ(f1.id, 1u);
  EXPECT_EQ(f2.id, 2u);

  EXPECT_TRUE(slow_future.get().status.ok());
  EXPECT_TRUE(flood[2].get().status.ok());
  EXPECT_TRUE(flood[3].get().status.ok());
  for (auto& future : fair) {
    EXPECT_TRUE(future.get().status.ok());
  }

  const auto tenants = engine.tenant_stats();
  ASSERT_NE(tenants.find("flood"), tenants.end());
  ASSERT_NE(tenants.find("fair"), tenants.end());
  EXPECT_EQ(tenants.at("flood").submitted, 4u);
  EXPECT_EQ(tenants.at("flood").shed, 2u);
  EXPECT_EQ(tenants.at("flood").completed, 2u);
  EXPECT_EQ(tenants.at("fair").submitted, 2u);
  EXPECT_EQ(tenants.at("fair").shed, 0u);
  EXPECT_EQ(tenants.at("fair").completed, 2u);
}

TEST(ServeEngine, GlobalOverflowShedsTheFullestTenant) {
  ModelRegistry registry(RegistryOptions{});
  ServeOptions options;
  options.num_threads = 1;
  options.queue_cap = 3;
  options.max_batch = 1;
  options.tenant_quota = 3;  // quotas alone do not trip; the CAP does
  ServeEngine engine(&registry, options);

  ServeRequest slow;
  slow.id = 100;
  slow.op = ServeOp::kFit;
  slow.keyword = "slow";
  slow.values = TestSeries(1024, 0.1);
  std::future<ServeReply> slow_future = engine.Submit(slow);
  while (engine.stats().batches < 1) {
    std::this_thread::yield();
  }

  // Queue fills as [a1, a2, b1]; b2 overflows the cap. Tenant a is the
  // fullest (2 > 1), so the victim is a's oldest — a1 — not b's.
  auto submit = [&engine](uint64_t id, const std::string& tenant) {
    ServeRequest forecast;
    forecast.id = id;
    forecast.op = ServeOp::kForecast;
    forecast.keyword = "slow";
    forecast.horizon = 4;
    forecast.tenant = tenant;
    return engine.Submit(forecast);
  };
  std::future<ServeReply> a1 = submit(1, "a");
  std::future<ServeReply> a2 = submit(2, "a");
  std::future<ServeReply> b1 = submit(3, "b");
  std::future<ServeReply> b2 = submit(4, "b");

  ServeReply shed = a1.get();
  EXPECT_EQ(shed.status.code(), StatusCode::kResourceExhausted)
      << shed.status.ToString();
  EXPECT_EQ(shed.id, 1u);
  EXPECT_NE(shed.status.message().find("admission queue full"),
            std::string::npos)
      << shed.status.ToString();
  EXPECT_TRUE(slow_future.get().status.ok());
  EXPECT_TRUE(a2.get().status.ok());
  EXPECT_TRUE(b1.get().status.ok());
  EXPECT_TRUE(b2.get().status.ok());
  EXPECT_EQ(engine.tenant_stats().at("a").shed, 1u);
  EXPECT_EQ(engine.tenant_stats().at("b").shed, 0u);
}

TEST(ServeEngine, ZeroQuotaKeepsLegacySingleQueueBehavior) {
  // tenant_quota = 0 must reproduce the pre-quota engine exactly, even
  // for requests that carry tenant labels.
  ModelRegistry registry(RegistryOptions{});
  ServeOptions options;
  options.num_threads = 1;
  options.queue_cap = 2;
  options.max_batch = 1;
  ASSERT_EQ(options.tenant_quota, 0u);  // the default disables slicing
  ServeEngine engine(&registry, options);

  ServeRequest slow;
  slow.id = 100;
  slow.op = ServeOp::kFit;
  slow.keyword = "slow";
  slow.values = TestSeries(1024, 0.1);
  std::future<ServeReply> slow_future = engine.Submit(slow);
  while (engine.stats().batches < 1) {
    std::this_thread::yield();
  }

  // Tenant "v" holds both slots; tenant "w"'s arrival sheds the GLOBAL
  // oldest (v's), because no quota protects per-tenant slices.
  ServeRequest forecast;
  forecast.op = ServeOp::kForecast;
  forecast.keyword = "slow";
  forecast.horizon = 4;
  forecast.id = 1;
  forecast.tenant = "v";
  std::future<ServeReply> v1 = engine.Submit(forecast);
  forecast.id = 2;
  std::future<ServeReply> v2 = engine.Submit(forecast);
  forecast.id = 3;
  forecast.tenant = "w";
  std::future<ServeReply> w1 = engine.Submit(forecast);

  ServeReply shed = v1.get();
  EXPECT_EQ(shed.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(shed.id, 1u);
  EXPECT_NE(shed.status.message().find("admission queue full"),
            std::string::npos)
      << shed.status.ToString();
  EXPECT_TRUE(slow_future.get().status.ok());
  EXPECT_TRUE(v2.get().status.ok());
  EXPECT_TRUE(w1.get().status.ok());
}

TEST(ServeEngine, SubmitWithCallbackDeliversExactlyOnceOnStop) {
  ModelRegistry registry(RegistryOptions{});
  ServeEngine engine(&registry, ServeOptions{});
  engine.Stop();
  std::atomic<int> calls{0};
  ServeRequest forecast;
  forecast.id = 9;
  forecast.op = ServeOp::kForecast;
  forecast.keyword = "any";
  forecast.horizon = 2;
  engine.SubmitWithCallback(forecast, [&calls](ServeReply reply) {
    EXPECT_EQ(reply.status.code(), StatusCode::kCancelled);
    EXPECT_EQ(reply.id, 9u);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ServeEngine, ExpiredDeadlineRejectsBeforeTouchingState) {
  ModelRegistry registry(RegistryOptions{});
  ServeOptions options;
  ServeEngine engine(&registry, options);
  ServeRequest fit;
  fit.id = 7;
  fit.op = ServeOp::kFit;
  fit.keyword = "late";
  fit.values = TestSeries(64, 0.0);
  fit.deadline_ms = 1e-6;  // expires before the dispatcher can run it
  ServeReply reply = engine.Call(fit);
  EXPECT_EQ(reply.status.code(), StatusCode::kDeadlineExceeded)
      << reply.status.ToString();
  // The registry must not have absorbed the abandoned fit.
  EXPECT_FALSE(registry.Resident("late"));
  EXPECT_EQ(engine.stats().deadline_expired, 1u);
}

TEST(ServeEngine, StopCancelsQueuedRequests) {
  ModelRegistry registry(RegistryOptions{});
  ServeOptions options;
  options.num_threads = 1;
  options.max_batch = 1;
  ServeEngine engine(&registry, options);
  ServeRequest slow;
  slow.id = 1;
  slow.op = ServeOp::kFit;
  slow.keyword = "slow";
  slow.values = TestSeries(1024, 0.2);
  std::future<ServeReply> slow_future = engine.Submit(slow);
  // Wait until the fit is in flight so the forecast below stays QUEUED
  // (it is the queued request that Stop must cancel).
  while (engine.stats().batches < 1) {
    std::this_thread::yield();
  }
  ServeRequest queued;
  queued.id = 2;
  queued.op = ServeOp::kForecast;
  queued.keyword = "slow";
  queued.horizon = 4;
  std::future<ServeReply> queued_future = engine.Submit(queued);
  engine.Stop();
  EXPECT_EQ(queued_future.get().status.code(), StatusCode::kCancelled);
  // The in-flight fit ran to completion.
  EXPECT_TRUE(slow_future.get().status.ok());
  // Submitting after Stop is refused immediately.
  ServeRequest after;
  after.id = 3;
  after.op = ServeOp::kForecast;
  after.keyword = "slow";
  after.horizon = 4;
  EXPECT_EQ(engine.Call(after).status.code(), StatusCode::kCancelled);
}

// Regression (review): the forecast horizon is an unvalidated u64 off
// the wire; `fit_ticks + horizon` must not wrap size_t (an out-of-bounds
// iterator — UB) or size a near-2^64-byte allocation. One hostile
// ~40-byte frame used to crash the server with bad_alloc.
TEST(ServeEngine, ForecastRejectsOverflowingHorizon) {
  ModelRegistry registry(RegistryOptions{});
  ASSERT_TRUE(registry.Put(MakeModel("kw", 1.0)).ok());
  ServeEngine engine(&registry, ServeOptions{});
  const uint64_t hostile_horizons[] = {
      kServeMaxForecastTicks + 1,
      std::numeric_limits<uint64_t>::max(),
      // Wraps `64 + horizon` to a tiny total without a pre-add check.
      std::numeric_limits<uint64_t>::max() - 63,
  };
  for (uint64_t horizon : hostile_horizons) {
    ServeRequest request;
    request.id = 1;
    request.op = ServeOp::kForecast;
    request.keyword = "kw";
    request.horizon = horizon;
    ServeReply reply = engine.Call(request);
    EXPECT_EQ(reply.status.code(), StatusCode::kInvalidArgument)
        << "horizon " << horizon << ": " << reply.status.ToString();
    EXPECT_NE(reply.status.message().find("cap"), std::string::npos);
  }
  // A sane horizon against the same model still serves.
  ServeRequest sane;
  sane.id = 2;
  sane.op = ServeOp::kForecast;
  sane.keyword = "kw";
  sane.horizon = 8;
  ServeReply reply = engine.Call(sane);
  ASSERT_TRUE(reply.status.ok()) << reply.status.ToString();
  EXPECT_EQ(reply.values.size(), 8u);
}

// The other operand of `fit_ticks + horizon` arrives from the spill
// file, which may be hostile: an absurd stored fit range is rejected by
// the same cap instead of overflowing the sum.
TEST(ServeEngine, ForecastRejectsOverlongStoredModel) {
  ModelRegistry registry(RegistryOptions{});
  ServedModel huge = MakeModel("huge", 1.0);
  huge.fit_ticks = std::numeric_limits<uint64_t>::max() - 1;
  ASSERT_TRUE(registry.Put(huge).ok());
  ServeEngine engine(&registry, ServeOptions{});
  ServeRequest request;
  request.id = 9;
  request.op = ServeOp::kForecast;
  request.keyword = "huge";
  request.horizon = 4;
  ServeReply reply = engine.Call(request);
  EXPECT_EQ(reply.status.code(), StatusCode::kInvalidArgument)
      << reply.status.ToString();
  EXPECT_NE(reply.status.message().find("cap"), std::string::npos);
}

// Regression (review): concurrent Stop() calls (e.g. an explicit Stop
// racing the destructor) must not both join the dispatcher thread —
// joining the same std::thread twice is UB. TSan covers the race.
TEST(ServeEngine, ConcurrentStopIsSafe) {
  for (int round = 0; round < 8; ++round) {
    ModelRegistry registry(RegistryOptions{});
    ServeEngine engine(&registry, ServeOptions{});
    std::vector<std::thread> stoppers;
    for (int s = 0; s < 4; ++s) {
      stoppers.emplace_back([&engine] { engine.Stop(); });
    }
    for (std::thread& t : stoppers) {
      t.join();
    }
    // The destructor's Stop() is one more (now idempotent) caller.
  }
}

// The serving acceptance bar: N concurrent clients with mixed
// forecast/refit/outlier traffic against an EVICTING registry produce
// replies bit-identical to a single-threaded serial replay of the
// admitted request log.
TEST(ServeEngine, ConcurrentMixedWorkloadMatchesSerialReplay) {
  constexpr size_t kClients = 4;
  constexpr size_t kKeywords = 6;
  constexpr size_t kRequestsPerClient = 24;
  constexpr size_t kTicks = 64;

  RegistryOptions registry_options;
  registry_options.num_shards = 2;
  registry_options.spill_dir = TempDirFor("serve_concurrent_spill");
  // Budget for roughly half the keyword set, so eviction churn is real.
  registry_options.max_resident_bytes =
      3 * MakeModel("sizing", 0.0).ResidentBytes();
  ModelRegistry registry(registry_options);

  ServeOptions serve_options;
  serve_options.num_threads = 4;
  serve_options.max_batch = 8;
  serve_options.record_log = true;
  ServeEngine engine(&registry, serve_options);

  // Phase 1: fit every keyword (serially, so the mixed phase always finds
  // a model).
  for (size_t kw = 0; kw < kKeywords; ++kw) {
    ServeRequest fit;
    fit.id = kw;
    fit.op = ServeOp::kFit;
    fit.keyword = "kw" + std::to_string(kw);
    fit.values = TestSeries(kTicks, 0.1 * static_cast<double>(kw));
    ASSERT_TRUE(engine.Call(fit).status.ok());
  }

  // Phase 2: concurrent clients, each issuing a deterministic mix keyed
  // by (client, step). Call() blocks per client, so admission order is a
  // race — whatever order wins is captured in the request log.
  std::vector<std::map<uint64_t, ServeReply>> replies(kClients);
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([c, &engine, &replies] {
      for (size_t step = 0; step < kRequestsPerClient; ++step) {
        const uint64_t id = 1000 + c * 1000 + step;
        const size_t kw = (c * 7 + step * 3) % kKeywords;
        ServeRequest request;
        request.id = id;
        request.keyword = "kw" + std::to_string(kw);
        const size_t dice = (c + step) % 10;
        if (dice < 7) {
          request.op = ServeOp::kForecast;
          request.horizon = 8;
        } else if (dice < 9) {
          request.op = ServeOp::kOutlierScore;
          request.values = TestSeries(kTicks, 0.1 * static_cast<double>(kw));
        } else {
          request.op = ServeOp::kRefit;
          request.values =
              TestSeries(kTicks + 8, 0.1 * static_cast<double>(kw));
        }
        replies[c][id] = engine.Call(request);
      }
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  const std::vector<ServeRequest> log = engine.TakeRequestLog();
  ASSERT_EQ(log.size(), kKeywords + kClients * kRequestsPerClient);
  const RegistryStats concurrent_stats = registry.stats();
  EXPECT_GT(concurrent_stats.evictions, 0u)
      << "budget did not force eviction churn; the test lost its point";
  EXPECT_GT(concurrent_stats.reloads, 0u);

  // Serial replay of the same log on a fresh engine at 1 thread.
  RegistryOptions replay_registry_options = registry_options;
  replay_registry_options.spill_dir = TempDirFor("serve_replay_spill");
  ModelRegistry replay_registry(replay_registry_options);
  ServeOptions replay_options;
  replay_options.num_threads = 1;
  ServeEngine replay_engine(&replay_registry, replay_options);
  std::map<uint64_t, ServeReply> replayed;
  for (const ServeRequest& request : log) {
    replayed[request.id] = replay_engine.Call(request);
  }

  // Every concurrent reply must be bit-identical to its replayed twin.
  size_t compared = 0;
  for (const auto& client_replies : replies) {
    for (const auto& [id, reply] : client_replies) {
      const auto it = replayed.find(id);
      ASSERT_NE(it, replayed.end()) << "id " << id << " missing from replay";
      const ServeReply& twin = it->second;
      EXPECT_EQ(EncodeReplyPayload(reply), EncodeReplyPayload(twin))
          << "reply for id " << id << " diverged between the concurrent run "
          << "and the serial replay";
      ++compared;
    }
  }
  EXPECT_EQ(compared, kClients * kRequestsPerClient);
}

// ---------------------------------------------------------------------------
// Wire protocol

TEST(ServeProtocol, RequestFrameRoundTrips) {
  ServeRequest request;
  request.id = 77;
  request.op = ServeOp::kRefit;
  request.keyword = "royal wedding";
  request.values = {1.5, 2.5, -3.25};
  request.horizon = 9;
  request.deadline_ms = 125.0;
  std::stringstream stream;
  ASSERT_TRUE(WriteRequestFrame(request, stream).ok());
  ServeRequest decoded;
  auto have = ReadRequestFrame(stream, "test", &decoded);
  ASSERT_TRUE(have.ok()) << have.status().ToString();
  ASSERT_TRUE(*have);
  EXPECT_EQ(decoded.id, request.id);
  EXPECT_EQ(decoded.op, request.op);
  EXPECT_EQ(decoded.keyword, request.keyword);
  EXPECT_EQ(decoded.values, request.values);
  EXPECT_EQ(decoded.horizon, request.horizon);
  EXPECT_EQ(decoded.deadline_ms, request.deadline_ms);
  // And the stream ends with a clean EOF, not an error.
  auto eof = ReadRequestFrame(stream, "test", &decoded);
  ASSERT_TRUE(eof.ok()) << eof.status().ToString();
  EXPECT_FALSE(*eof);
}

TEST(ServeProtocol, ReplyFrameRoundTripsIncludingErrorStatus) {
  ServeReply reply;
  reply.id = 13;
  reply.status = Status::ResourceExhausted("queue full");
  reply.values = {0.25, 0.75};
  reply.rmse = 1.5;
  reply.cost_bits = 99.0;
  std::stringstream stream;
  ASSERT_TRUE(WriteReplyFrame(reply, stream).ok());
  ServeReply decoded;
  auto have = ReadReplyFrame(stream, "test", &decoded);
  ASSERT_TRUE(have.ok()) << have.status().ToString();
  ASSERT_TRUE(*have);
  EXPECT_EQ(decoded.id, reply.id);
  EXPECT_EQ(decoded.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(decoded.status.message(), "queue full");
  EXPECT_EQ(decoded.values, reply.values);
  EXPECT_EQ(decoded.rmse, reply.rmse);
  EXPECT_EQ(decoded.cost_bits, reply.cost_bits);
}

TEST(ServeProtocol, RejectsTruncatedAndHostileFrames) {
  ServeRequest request;
  request.id = 1;
  request.op = ServeOp::kForecast;
  request.keyword = "x";
  request.horizon = 2;
  std::stringstream good;
  ASSERT_TRUE(WriteRequestFrame(request, good).ok());
  const std::string bytes = good.str();

  // Truncated payload.
  {
    std::stringstream truncated(bytes.substr(0, bytes.size() - 3));
    ServeRequest out;
    auto have = ReadRequestFrame(truncated, "test", &out);
    ASSERT_FALSE(have.ok());
    EXPECT_EQ(have.status().code(), StatusCode::kDataLoss);
  }
  // Truncated length prefix.
  {
    std::stringstream truncated(bytes.substr(0, 2));
    ServeRequest out;
    auto have = ReadRequestFrame(truncated, "test", &out);
    ASSERT_FALSE(have.ok());
    EXPECT_EQ(have.status().code(), StatusCode::kDataLoss);
  }
  // A reply frame fed to the request reader trips the tag check.
  {
    ServeReply reply;
    reply.id = 1;
    std::stringstream wrong_kind;
    ASSERT_TRUE(WriteReplyFrame(reply, wrong_kind).ok());
    ServeRequest out;
    auto have = ReadRequestFrame(wrong_kind, "test", &out);
    ASSERT_FALSE(have.ok());
    EXPECT_EQ(have.status().code(), StatusCode::kDataLoss);
    EXPECT_NE(have.status().message().find("tag"), std::string::npos);
  }
  // A declared frame length beyond the cap is rejected before allocating.
  {
    std::string huge(4, '\xFF');
    std::stringstream hostile(huge);
    ServeRequest out;
    auto have = ReadRequestFrame(hostile, "test", &out);
    ASSERT_FALSE(have.ok());
    EXPECT_EQ(have.status().code(), StatusCode::kDataLoss);
    EXPECT_NE(have.status().message().find("cap"), std::string::npos);
  }
  // An unknown op code inside a well-formed frame is InvalidArgument.
  {
    ServeRequest bad_op = request;
    bad_op.op = static_cast<ServeOp>(99);
    std::stringstream stream;
    ASSERT_TRUE(WriteRequestFrame(bad_op, stream).ok());
    ServeRequest out;
    auto have = ReadRequestFrame(stream, "test", &out);
    ASSERT_FALSE(have.ok());
    EXPECT_EQ(have.status().code(), StatusCode::kInvalidArgument);
  }
}

// Regression (review): the writer must refuse a payload over the frame
// cap instead of emitting a frame every reader rejects as DataLoss (or,
// past 4 GiB, silently truncating the u32 length prefix and
// desynchronizing the whole stream).
TEST(ServeProtocol, WriteFrameRejectsPayloadOverCap) {
  ServeReply reply;
  reply.id = 5;
  reply.values.assign(kServeMaxFrameBytes / 8 + 1, 0.5);
  std::stringstream stream;
  const Status status = WriteReplyFrame(reply, stream);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("cap"), std::string::npos);
  // Nothing hit the stream: a rejected frame leaves no partial bytes.
  EXPECT_TRUE(stream.str().empty());
}

}  // namespace
}  // namespace dspot
