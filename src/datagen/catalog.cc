#include "datagen/catalog.h"

namespace dspot {

namespace {
/// Weekly ticks: 52 per year, tick 0 = Jan 2004.
constexpr size_t kYear = 52;
/// Week-of-year offsets (approximate calendar months).
constexpr size_t kFebruary = 6;
constexpr size_t kMay = 19;
constexpr size_t kJuly = 28;
constexpr size_t kAugust = 33;
constexpr size_t kSeptember = 37;
constexpr size_t kNovember = 46;
}  // namespace

KeywordScenario HarryPotterScenario() {
  KeywordScenario s;
  s.name = "harry_potter";
  s.population = 240.0;
  s.beta = 0.52;
  s.delta = 0.47;
  s.gamma = 0.50;
  // Biennial July releases starting July 2005 (movies 4, 5... books).
  s.shocks.push_back({.period = 2 * kYear,
                      .start = kYear + kJuly,
                      .width = 3,
                      .strength = 9.0,
                      .strength_jitter = 0.25});
  // November movie premieres, biennial from Nov 2005.
  s.shocks.push_back({.period = 2 * kYear,
                      .start = kYear + kNovember,
                      .width = 2,
                      .strength = 6.0,
                      .strength_jitter = 0.25});
  // The non-cyclic May spike the paper highlights (Fig. 1, red circle);
  // placed in May 2005 (tick 71).
  s.shocks.push_back({.period = 0,
                      .start = kYear + kMay,
                      .width = 2,
                      .strength = 7.0,
                      .strength_jitter = 0.1});
  return s;
}

KeywordScenario AmazonScenario() {
  KeywordScenario s;
  s.name = "amazon";
  s.population = 220.0;
  // Base rates follow the paper's fitted values (footnote to Fig. 4); the
  // growth rate is raised so the effect is visible over the generator's
  // observation noise (the paper's real series roughly doubles after the
  // onset).
  s.beta = 0.5014;
  s.delta = 0.4675;
  s.gamma = 0.5211;
  s.growth_rate = 0.30;
  s.growth_start = 343;
  // Annual holiday-season shock (late November).
  s.shocks.push_back({.period = kYear,
                      .start = kNovember,
                      .width = 4,
                      .strength = 4.0,
                      .strength_jitter = 0.2});
  return s;
}

KeywordScenario EbolaScenario() {
  KeywordScenario s;
  s.name = "ebola";
  s.population = 260.0;
  s.beta = 0.55;
  s.delta = 0.50;
  s.gamma = 0.45;
  // One-shot world-wide burst: August 2014 ~ tick 10*52 + 33 = 553.
  s.shocks.push_back({.period = 0,
                      .start = 10 * kYear + kAugust,
                      .width = 8,
                      .strength = 18.0,
                      .strength_jitter = 0.1});
  return s;
}

KeywordScenario GrammyScenario() {
  KeywordScenario s;
  s.name = "grammy";
  s.population = 200.0;
  s.beta = 0.50;
  s.delta = 0.46;
  s.gamma = 0.52;
  // Annual awards every February.
  s.shocks.push_back({.period = kYear,
                      .start = kFebruary,
                      .width = 2,
                      .strength = 10.0,
                      .strength_jitter = 0.25});
  return s;
}

KeywordScenario OlympicsScenario() {
  KeywordScenario s;
  s.name = "olympics";
  s.population = 300.0;
  s.beta = 0.55;
  s.delta = 0.52;
  s.gamma = 0.48;
  // Summer games: Aug 2004, 2008, 2012 (period 4 years).
  s.shocks.push_back({.period = 4 * kYear,
                      .start = kAugust,
                      .width = 3,
                      .strength = 16.0,
                      .strength_jitter = 0.15});
  // Winter games: Feb 2006, 2010, 2014.
  s.shocks.push_back({.period = 4 * kYear,
                      .start = 2 * kYear + kFebruary,
                      .width = 3,
                      .strength = 8.0,
                      .strength_jitter = 0.15});
  return s;
}

KeywordScenario ObamaScenario() {
  KeywordScenario s;
  s.name = "barack_obama";
  s.population = 260.0;
  s.beta = 0.50;
  s.delta = 0.48;
  s.gamma = 0.50;
  // Nov 2008 election: tick 4*52 + 46 = 254.
  s.shocks.push_back({.period = 0,
                      .start = 4 * kYear + kNovember,
                      .width = 4,
                      .strength = 22.0,
                      .strength_jitter = 0.05});
  // Nov 2012 re-election, smaller.
  s.shocks.push_back({.period = 0,
                      .start = 8 * kYear + kNovember,
                      .width = 3,
                      .strength = 9.0,
                      .strength_jitter = 0.05});
  return s;
}

KeywordScenario WorldCupScenario() {
  KeywordScenario s;
  s.name = "world_cup";
  s.population = 320.0;
  s.beta = 0.54;
  s.delta = 0.50;
  s.gamma = 0.47;
  // June-July 2006, 2010, 2014.
  s.shocks.push_back({.period = 4 * kYear,
                      .start = 2 * kYear + kJuly - 2,
                      .width = 5,
                      .strength = 18.0,
                      .strength_jitter = 0.15});
  return s;
}

KeywordScenario IphoneScenario() {
  KeywordScenario s;
  s.name = "iphone";
  s.population = 240.0;
  s.beta = 0.50;
  s.delta = 0.44;
  s.gamma = 0.50;
  // Product-line ramp-up from 2007 (tick ~170).
  s.growth_rate = 0.12;
  s.growth_start = 3 * kYear + kJuly - 6;
  // Annual September launch events from 2008.
  s.shocks.push_back({.period = kYear,
                      .start = 4 * kYear + kSeptember,
                      .width = 2,
                      .strength = 4.0,
                      .strength_jitter = 0.3});
  return s;
}

std::vector<KeywordScenario> TrendingKeywordSuite() {
  return {HarryPotterScenario(), AmazonScenario(),  EbolaScenario(),
          GrammyScenario(),      OlympicsScenario(), ObamaScenario(),
          WorldCupScenario(),    IphoneScenario()};
}

KeywordScenario HashtagAppleScenario() {
  KeywordScenario s;
  s.name = "#apple";
  s.population = 180.0;
  s.beta = 0.60;
  s.delta = 0.55;
  s.gamma = 0.40;
  // Two product events ~3 months apart (daily ticks over 8 months).
  s.shocks.push_back({.period = 0,
                      .start = 60,
                      .width = 4,
                      .strength = 12.0,
                      .strength_jitter = 0.1});
  s.shocks.push_back({.period = 0,
                      .start = 150,
                      .width = 4,
                      .strength = 16.0,
                      .strength_jitter = 0.1});
  return s;
}

KeywordScenario HashtagBackToSchoolScenario() {
  KeywordScenario s;
  s.name = "#backtoschool";
  s.population = 150.0;
  s.beta = 0.58;
  s.delta = 0.52;
  s.gamma = 0.42;
  // One sustained late-August burst (the dataset covers June-January, so
  // the annual cycle appears once).
  s.shocks.push_back({.period = 0,
                      .start = 75,
                      .width = 14,
                      .strength = 8.0,
                      .strength_jitter = 0.1});
  return s;
}

KeywordScenario Meme3Scenario() {
  KeywordScenario s;
  s.name = "meme3_yes_we_can";
  s.population = 160.0;
  // Memes: fast contagion, fast decay.
  s.beta = 0.85;
  s.delta = 0.70;
  s.gamma = 0.10;
  s.shocks.push_back({.period = 0,
                      .start = 35,
                      .width = 5,
                      .strength = 20.0,
                      .strength_jitter = 0.1});
  return s;
}

KeywordScenario Meme16Scenario() {
  KeywordScenario s;
  s.name = "meme16_satriani";
  s.population = 120.0;
  s.beta = 0.85;
  s.delta = 0.62;
  s.gamma = 0.05;
  // A later, smaller burst than meme #3, sustained for a few days (the
  // Satriani/Coldplay story circulated for about a week).
  s.shocks.push_back({.period = 0,
                      .start = 55,
                      .width = 5,
                      .strength = 16.0,
                      .strength_jitter = 0.1});
  return s;
}

GeneratorConfig GoogleTrendsConfig(uint64_t seed) {
  GeneratorConfig config;
  config.n_ticks = 575;
  config.num_locations = 20;
  config.num_outlier_locations = 3;
  config.noise_stddev = 1.5;
  config.seed = seed;
  return config;
}

GeneratorConfig TwitterConfig(uint64_t seed) {
  GeneratorConfig config;
  config.n_ticks = 240;  // ~8 months, daily
  config.num_locations = 12;
  config.num_outlier_locations = 2;
  config.noise_stddev = 2.0;
  config.seed = seed;
  return config;
}

GeneratorConfig MemeTrackerConfig(uint64_t seed) {
  GeneratorConfig config;
  config.n_ticks = 92;  // Aug 1 - Oct 31 2008, daily
  config.num_locations = 8;
  config.num_outlier_locations = 1;
  // Meme mention counts are near-zero outside the burst, so the
  // observation noise is much smaller than on the search-volume panels.
  config.noise_stddev = 0.8;
  config.seed = seed;
  return config;
}

}  // namespace dspot
