#include "common/math_util.h"

#include <algorithm>

namespace dspot {

namespace {
constexpr double kLogFloor = 1e-300;
}  // namespace

bool ApproxEqual(double a, double b, double tol) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= tol * scale;
}

double SafeLog2(double x) { return std::log2(std::max(x, kLogFloor)); }

double SafeLog(double x) { return std::log(std::max(x, kLogFloor)); }

double Mean(std::span<const double> v) {
  double sum = 0.0;
  size_t count = 0;
  for (double x : v) {
    if (!IsMissing(x)) {
      sum += x;
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double Mean(const std::vector<double>& v) {
  return Mean(std::span<const double>(v));
}

double Variance(const std::vector<double>& v) {
  const double mu = Mean(v);
  double sum = 0.0;
  size_t count = 0;
  for (double x : v) {
    if (!IsMissing(x)) {
      sum += Square(x - mu);
      ++count;
    }
  }
  return count < 2 ? 0.0 : sum / static_cast<double>(count);
}

double StdDev(const std::vector<double>& v) { return std::sqrt(Variance(v)); }

double Min(std::span<const double> v) {
  double best = kMissingValue;
  for (double x : v) {
    if (IsMissing(x)) continue;
    if (IsMissing(best) || x < best) best = x;
  }
  return best;
}

double Min(const std::vector<double>& v) {
  return Min(std::span<const double>(v));
}

double Max(std::span<const double> v) {
  double best = kMissingValue;
  for (double x : v) {
    if (IsMissing(x)) continue;
    if (IsMissing(best) || x > best) best = x;
  }
  return best;
}

double Max(const std::vector<double>& v) {
  return Max(std::span<const double>(v));
}

double Sum(std::span<const double> v) {
  double sum = 0.0;
  for (double x : v) {
    if (!IsMissing(x)) sum += x;
  }
  return sum;
}

double Sum(const std::vector<double>& v) {
  return Sum(std::span<const double>(v));
}

size_t ArgMax(const std::vector<double>& v) {
  size_t best = kNpos;
  for (size_t i = 0; i < v.size(); ++i) {
    if (IsMissing(v[i])) continue;
    if (best == kNpos || v[i] > v[best]) best = i;
  }
  return best;
}

}  // namespace dspot
