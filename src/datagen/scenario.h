#ifndef DSPOT_DATAGEN_SCENARIO_H_
#define DSPOT_DATAGEN_SCENARIO_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/math_util.h"

namespace dspot {

/// Ground-truth description of one external event in a synthetic keyword.
struct ShockSpec {
  size_t period = 0;  ///< t_p in ticks; 0 = one-shot
  size_t start = 0;   ///< t_s
  size_t width = 2;   ///< t_w
  double strength = 5.0;        ///< mean eps_0 across occurrences
  double strength_jitter = 0.2; ///< relative per-occurrence variation
};

/// Ground-truth generative parameters of one synthetic keyword. The
/// generator runs the same SIV dynamics the library fits, so every fitted
/// quantity has a known true value to score against — the structural
/// substitute for the paper's proprietary GoogleTrends crawl (see
/// DESIGN.md §3).
struct KeywordScenario {
  std::string name = "keyword";
  double population = 200.0;
  double beta = 0.50;
  double delta = 0.45;
  double gamma = 0.50;
  double i0 = 1.0;
  /// Population growth effect; growth_start == kNpos disables it.
  double growth_rate = 0.0;
  size_t growth_start = kNpos;
  std::vector<ShockSpec> shocks;
};

/// Tensor-level generation knobs.
struct GeneratorConfig {
  size_t n_ticks = 575;       ///< ~11 years of weeks, as in GoogleTrends
  size_t num_locations = 20;
  double noise_stddev = 1.5;  ///< additive Gaussian observation noise
  double missing_rate = 0.0;  ///< per-cell probability of a missing entry
  uint64_t seed = 42;
  /// Location populations follow a Zipf-like share s_j ~ 1/(j+1)^alpha.
  double share_alpha = 1.0;
  /// Probability that a location participates in a given shock occurrence
  /// (non-participating locations have zero local strength — the paper's
  /// sparse s^(L)).
  double participation_rate = 0.9;
  /// Number of trailing locations modeled as low-connectivity outliers:
  /// tiny population share and rare participation (the paper's LA/NP/CG).
  size_t num_outlier_locations = 0;
  /// Optional location labels; auto-generated country-style codes if empty.
  std::vector<std::string> location_names;
};

}  // namespace dspot

#endif  // DSPOT_DATAGEN_SCENARIO_H_
