// Tests for src/datagen: generator invariants and the scenario catalog.

#include <gtest/gtest.h>

#include "datagen/catalog.h"
#include "datagen/generator.h"

namespace dspot {
namespace {

TEST(Generator, DimensionsAndNames) {
  GeneratorConfig config = GoogleTrendsConfig();
  config.n_ticks = 100;
  config.num_locations = 5;
  config.num_outlier_locations = 1;
  auto generated = GenerateTensor({GrammyScenario()}, config);
  ASSERT_TRUE(generated.ok());
  EXPECT_EQ(generated->tensor.num_keywords(), 1u);
  EXPECT_EQ(generated->tensor.num_locations(), 5u);
  EXPECT_EQ(generated->tensor.num_ticks(), 100u);
  EXPECT_EQ(generated->tensor.keywords()[0], "grammy");
  EXPECT_EQ(generated->tensor.locations()[0], "US");
  // Trailing outlier gets an outlier code.
  EXPECT_EQ(generated->tensor.locations()[4], "LA");
  EXPECT_TRUE(generated->truth.is_outlier[4]);
  EXPECT_FALSE(generated->truth.is_outlier[0]);
}

TEST(Generator, DeterministicGivenSeed) {
  GeneratorConfig config = GoogleTrendsConfig(99);
  config.n_ticks = 64;
  config.num_locations = 3;
  auto a = GenerateTensor({GrammyScenario()}, config);
  auto b = GenerateTensor({GrammyScenario()}, config);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t j = 0; j < 3; ++j) {
    for (size_t t = 0; t < 64; ++t) {
      ASSERT_DOUBLE_EQ(a->tensor.at(0, j, t), b->tensor.at(0, j, t));
    }
  }
}

TEST(Generator, SeedChangesData) {
  GeneratorConfig a_cfg = GoogleTrendsConfig(1);
  GeneratorConfig b_cfg = GoogleTrendsConfig(2);
  a_cfg.n_ticks = b_cfg.n_ticks = 64;
  a_cfg.num_locations = b_cfg.num_locations = 2;
  auto a = GenerateTensor({GrammyScenario()}, a_cfg);
  auto b = GenerateTensor({GrammyScenario()}, b_cfg);
  ASSERT_TRUE(a.ok() && b.ok());
  bool differs = false;
  for (size_t t = 0; t < 64 && !differs; ++t) {
    differs = a->tensor.at(0, 0, t) != b->tensor.at(0, 0, t);
  }
  EXPECT_TRUE(differs);
}

TEST(Generator, ValuesNonNegative) {
  GeneratorConfig config = GoogleTrendsConfig();
  config.n_ticks = 200;
  auto generated = GenerateTensor(TrendingKeywordSuite(), config);
  ASSERT_TRUE(generated.ok());
  const ActivityTensor& t = generated->tensor;
  for (size_t i = 0; i < t.num_keywords(); ++i) {
    for (size_t j = 0; j < t.num_locations(); ++j) {
      for (size_t k = 0; k < t.num_ticks(); ++k) {
        if (!IsMissing(t.at(i, j, k))) {
          ASSERT_GE(t.at(i, j, k), 0.0);
        }
      }
    }
  }
}

TEST(Generator, MissingRateRoughlyHonored) {
  GeneratorConfig config = GoogleTrendsConfig();
  config.n_ticks = 500;
  config.num_locations = 4;
  config.missing_rate = 0.2;
  auto generated = GenerateTensor({GrammyScenario()}, config);
  ASSERT_TRUE(generated.ok());
  const size_t total = 4 * 500;
  const size_t observed = generated->tensor.ObservedCount();
  const double missing_frac =
      1.0 - static_cast<double>(observed) / static_cast<double>(total);
  EXPECT_NEAR(missing_frac, 0.2, 0.05);
}

TEST(Generator, TruthRecordsStrengthsAndPopulations) {
  GeneratorConfig config = GoogleTrendsConfig();
  config.n_ticks = 160;
  config.num_locations = 3;
  KeywordScenario sc = GrammyScenario();
  auto generated = GenerateTensor({sc}, config);
  ASSERT_TRUE(generated.ok());
  ASSERT_EQ(generated->truth.shock_strengths.size(), 1u);
  ASSERT_EQ(generated->truth.shock_strengths[0].size(), sc.shocks.size());
  // Occurrences of the annual shock within 160 ticks: at 6, 58, 110 = 3.
  EXPECT_EQ(generated->truth.shock_strengths[0][0].size(), 3u);
  EXPECT_EQ(generated->truth.local_population.rows(), 1u);
  EXPECT_EQ(generated->truth.local_population.cols(), 3u);
  // Population shares sum to the scenario population.
  double sum = 0.0;
  for (size_t j = 0; j < 3; ++j) sum += generated->truth.local_population(0, j);
  EXPECT_NEAR(sum, sc.population, 1e-6);
}

TEST(Generator, RejectsBadConfigs) {
  GeneratorConfig config;
  EXPECT_FALSE(GenerateTensor({}, config).ok());
  config.num_locations = 0;
  EXPECT_FALSE(GenerateTensor({GrammyScenario()}, config).ok());
  GeneratorConfig mismatch = GoogleTrendsConfig();
  mismatch.num_locations = 3;
  mismatch.location_names = {"a", "b"};
  EXPECT_FALSE(GenerateTensor({GrammyScenario()}, mismatch).ok());
}

TEST(Generator, CustomLocationNames) {
  GeneratorConfig config = GoogleTrendsConfig();
  config.n_ticks = 64;
  config.num_locations = 2;
  config.location_names = {"AA", "BB"};
  auto generated = GenerateTensor({GrammyScenario()}, config);
  ASSERT_TRUE(generated.ok());
  EXPECT_EQ(generated->tensor.locations()[1], "BB");
}

TEST(Catalog, SuiteHasEightKeywords) {
  const auto suite = TrendingKeywordSuite();
  EXPECT_EQ(suite.size(), 8u);
  for (const KeywordScenario& sc : suite) {
    EXPECT_FALSE(sc.name.empty());
    EXPECT_GT(sc.population, 0.0);
  }
}

TEST(Catalog, ScenarioStructuresMatchTheirStories) {
  // Harry Potter: two biennial trains + one one-shot.
  const KeywordScenario hp = HarryPotterScenario();
  ASSERT_EQ(hp.shocks.size(), 3u);
  EXPECT_EQ(hp.shocks[0].period, 104u);
  EXPECT_EQ(hp.shocks[1].period, 104u);
  EXPECT_EQ(hp.shocks[2].period, 0u);
  // Amazon: growth effect at the paper's tick 343.
  const KeywordScenario az = AmazonScenario();
  EXPECT_EQ(az.growth_start, 343u);
  EXPECT_GT(az.growth_rate, 0.0);
  // Grammy: annual.
  EXPECT_EQ(GrammyScenario().shocks[0].period, 52u);
  // Olympics: quadrennial.
  EXPECT_EQ(OlympicsScenario().shocks[0].period, 208u);
  // Memes: single one-shot burst, fast decay.
  const KeywordScenario meme = Meme3Scenario();
  ASSERT_EQ(meme.shocks.size(), 1u);
  EXPECT_EQ(meme.shocks[0].period, 0u);
  EXPECT_GT(meme.delta, 0.5);
}

TEST(Catalog, ConfigsMatchDatasetShapes) {
  EXPECT_EQ(GoogleTrendsConfig().n_ticks, 575u);
  EXPECT_EQ(TwitterConfig().n_ticks, 240u);
  EXPECT_EQ(MemeTrackerConfig().n_ticks, 92u);
}

}  // namespace
}  // namespace dspot
