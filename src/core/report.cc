#include "core/report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace dspot {

namespace {
const char* const kMonths[] = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                               "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};
}  // namespace

std::string TickToCalendar(size_t tick, const CalendarConfig& calendar) {
  const size_t per_year = std::max<size_t>(calendar.ticks_per_year, 1);
  const size_t year = static_cast<size_t>(calendar.start_year) + tick / per_year;
  const size_t offset = tick % per_year;
  const size_t month = std::min<size_t>(offset * 12 / per_year, 11);
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%zu-%s", year, kMonths[month]);
  return buf;
}

std::string DescribeShock(const Shock& shock, const CalendarConfig& calendar) {
  std::ostringstream os;
  if (shock.IsCyclic()) {
    const double years = static_cast<double>(shock.period) /
                         static_cast<double>(std::max<size_t>(
                             calendar.ticks_per_year, 1));
    os << "cyclic event ";
    if (years >= 0.75) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "every ~%.1f year(s)", years);
      os << buf;
    } else {
      os << "every " << shock.period << " ticks";
    }
    os << " from " << TickToCalendar(shock.start, calendar);
  } else {
    os << "one-shot event at " << TickToCalendar(shock.start, calendar);
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf), ", %zu tick(s) wide, strength %.2f (%zu occurrence%s)",
                shock.width, shock.base_strength,
                shock.global_strengths.size(),
                shock.global_strengths.size() == 1 ? "" : "s");
  os << buf;
  return os.str();
}

std::vector<EventSummary> SummarizeEvents(const ModelParamSet& params,
                                          const CalendarConfig& calendar) {
  std::vector<EventSummary> out;
  out.reserve(params.shocks.size());
  for (const Shock& shock : params.shocks) {
    EventSummary e;
    e.keyword = shock.keyword;
    e.cyclic = shock.IsCyclic();
    e.start = shock.start;
    e.period = shock.period;
    e.width = shock.width;
    e.strength = shock.base_strength;
    e.occurrences = shock.global_strengths.size();
    e.description = DescribeShock(shock, calendar);
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(),
            [](const EventSummary& a, const EventSummary& b) {
              return a.strength > b.strength;
            });
  return out;
}

std::string RenderReport(const ModelParamSet& params,
                         const std::vector<std::string>& keyword_names,
                         const CalendarConfig& calendar) {
  std::ostringstream os;
  os << "Δ-SPOT model report: " << params.num_keywords << " keyword(s), "
     << params.num_locations << " location(s), " << params.num_ticks
     << " tick(s)\n";
  for (size_t i = 0; i < params.global.size(); ++i) {
    const KeywordGlobalParams& g = params.global[i];
    const std::string name = i < keyword_names.size()
                                 ? keyword_names[i]
                                 : "keyword " + std::to_string(i);
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "\n[%s]\n  base dynamics: N=%.1f beta=%.3f delta=%.3f "
                  "gamma=%.3f\n",
                  name.c_str(), g.population, g.beta, g.delta, g.gamma);
    os << buf;
    if (g.has_growth()) {
      std::snprintf(buf, sizeof(buf),
                    "  growth effect: eta0=%.3f from %s (tick %zu)\n",
                    g.growth_rate,
                    TickToCalendar(g.growth_start, calendar).c_str(),
                    g.growth_start);
      os << buf;
    }
    bool any = false;
    for (const EventSummary& e : SummarizeEvents(params, calendar)) {
      if (e.keyword != i) continue;
      os << "  * " << e.description << "\n";
      any = true;
    }
    if (!any) {
      os << "  (no external events detected)\n";
    }
  }
  return os.str();
}

}  // namespace dspot
