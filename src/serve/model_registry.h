#ifndef DSPOT_SERVE_MODEL_REGISTRY_H_
#define DSPOT_SERVE_MODEL_REGISTRY_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "core/global_fit.h"
#include "core/params.h"
#include "snapshot/snapshot.h"

namespace dspot {

/// dspot_serve's model store: a sharded, LRU-evicted map from keyword to
/// its fitted single-keyword model, bounded by a resident-byte budget and
/// (optionally) backed by per-keyword "DSPOTSNP" snapshot files.
///
/// The registry is a *cache over durable snapshots*, not the source of
/// truth: Put() writes the snapshot through to the spill directory before
/// the entry becomes resident, eviction merely drops the resident copy,
/// and a Get() miss reloads — warm-starts — the model from its snapshot.
/// With a spill directory configured, the set of resident entries is thus
/// pure performance state: any interleaving of hits, misses, and
/// evictions serves bit-identical models (snapshot round-trips are
/// bit-exact by the codec's contract). Without one, eviction forgets the
/// model and a later Get() reports NotFound.
///
/// THREAD SAFETY: all methods are safe from any thread. Keywords map to
/// shards by hash; operations on different shards never contend.

struct RegistryOptions {
  /// Number of independently locked shards (clamped to >= 1).
  size_t num_shards = 8;
  /// Whole-registry resident budget, split evenly across shards. After
  /// every insert the owning shard evicts least-recently-used entries
  /// until it fits its slice (the just-touched entry is never evicted, so
  /// one oversized model degrades to cache-of-one instead of thrashing).
  uint64_t max_resident_bytes = 256ull << 20;
  /// Directory for per-keyword snapshot spill files; "" disables spill
  /// (evictions forget, reload never happens). The caller creates it.
  std::string spill_dir;
  /// When true, spill writes go through AtomicWriteFile (fsync + rename).
  /// Default off: a spill file is a rebuildable cache entry, and a fit is
  /// pinned by whatever durability layer owns the request log, so paying
  /// an fsync per Put would buy nothing. Either way the write is a temp
  /// file + rename, so no reader (or restart) ever sees a torn file —
  /// non-durable only skips the fsyncs.
  bool durable_spill = false;
};

/// One keyword's servable model — the global SIV parameters plus the
/// shock inventory, in fit-local coordinates (tick 0 = first fitted
/// tick). Round-trips bit-exactly through a single-keyword ModelSnapshot.
struct ServedModel {
  std::string keyword;
  KeywordGlobalParams params;
  std::vector<Shock> shocks;  ///< shock.keyword == 0 (single-keyword set)
  uint64_t fit_ticks = 0;     ///< length of the fitted range
  double rmse = 0.0;
  double cost_bits = 0.0;
  FitHealth health;

  /// Approximate resident footprint used against the byte budget.
  uint64_t ResidentBytes() const;

  /// The single-keyword snapshot encoding of this model.
  ModelSnapshot ToSnapshot() const;

  /// Extracts `keyword`'s model from a snapshot — by NAME, never by a
  /// stored index: the snapshot's keyword set may differ from the
  /// registry's interned table (a stale spill file, a hostile file, a
  /// multi-keyword batch snapshot), so stored indices are remapped through
  /// the label lookup. NotFound when the snapshot does not carry the
  /// keyword; InvalidArgument when its shape is inconsistent. `context`
  /// labels errors (typically the file path).
  static StatusOr<ServedModel> FromSnapshot(const ModelSnapshot& snapshot,
                                            std::string_view keyword,
                                            const std::string& context);

  /// The warm-start seed RefitGlobalSequence expects (estimate carries
  /// only its length — the fitted values are re-derived by simulation).
  GlobalSequenceFit ToWarmStart() const;
};

/// Monotonic counters (also exported as serve.registry.* obs metrics when
/// the registry is armed) plus a point-in-time residency snapshot.
struct RegistryStats {
  uint64_t hits = 0;       ///< Get served from a resident entry
  uint64_t misses = 0;     ///< Get found nothing resident
  uint64_t reloads = 0;    ///< misses recovered from a spill file
  uint64_t evictions = 0;  ///< entries dropped by the byte budget
  uint64_t spills = 0;     ///< snapshot files written
  uint64_t resident_bytes = 0;
  uint64_t resident_models = 0;
};

class ModelRegistry {
 public:
  explicit ModelRegistry(const RegistryOptions& options);

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Inserts or replaces the keyword's model: spills its snapshot (when a
  /// spill dir is configured), makes it the shard's most-recent entry, and
  /// evicts LRU entries until the shard fits its budget slice.
  Status Put(const ServedModel& model);

  /// A copy of the keyword's model. Resident entries are returned directly
  /// (and refreshed in the LRU order); a miss attempts a reload from the
  /// spill directory, re-admitting the model. NotFound when neither holds
  /// the keyword.
  StatusOr<ServedModel> Get(std::string_view keyword);

  /// True iff the keyword is resident right now (test/bench hook; the
  /// answer can be stale by the time the caller acts on it).
  bool Resident(std::string_view keyword) const;

  RegistryStats stats() const;

  /// The spill file path for `keyword` ("" without a spill dir).
  std::string SpillPath(std::string_view keyword) const;

 private:
  struct Entry {
    ServedModel model;
    uint64_t bytes = 0;
    std::list<std::string>::iterator lru;  ///< position in Shard::lru
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<std::string> lru;  ///< front = most recently used
    std::unordered_map<std::string, Entry> entries;
    uint64_t resident_bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t reloads = 0;
    uint64_t evictions = 0;
    uint64_t spills = 0;
  };

  Shard& ShardFor(std::string_view keyword);
  const Shard& ShardFor(std::string_view keyword) const;
  /// Inserts under the shard lock; the caller already spilled.
  void AdmitLocked(Shard& shard, ServedModel model);
  Status Spill(const ServedModel& model);

  RegistryOptions options_;
  uint64_t shard_budget_ = 0;
  std::vector<Shard> shards_;
};

}  // namespace dspot

#endif  // DSPOT_SERVE_MODEL_REGISTRY_H_
