#ifndef DSPOT_OPTIMIZE_LEVENBERG_MARQUARDT_H_
#define DSPOT_OPTIMIZE_LEVENBERG_MARQUARDT_H_

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "guard/guard.h"
#include "linalg/matrix.h"
#include "linalg/solvers.h"
#include "optimize/objective.h"

namespace dspot {

/// Fills `*jac` (pre-sized num_residuals x num_params by the solver) with
/// the Jacobian dr_i/dp_j of the residual vector at `params`. Used to
/// supply closed-form / forward-mode derivatives in place of the solver's
/// forward-difference Jacobian.
using JacobianIntoFn =
    std::function<Status(std::span<const double> params, Matrix* jac)>;

/// Configuration for the Levenberg-Marquardt solver.
struct LmOptions {
  /// Maximum number of accepted iterations.
  int max_iterations = 100;
  /// Stop when the relative decrease of the cost falls below this.
  double cost_tolerance = 1e-10;
  /// Stop when the infinity-norm of the step falls below this.
  double step_tolerance = 1e-10;
  /// Stop when the infinity-norm of the gradient falls below this.
  double gradient_tolerance = 1e-12;
  /// Initial damping factor lambda.
  double initial_lambda = 1e-3;
  /// Multiplicative lambda update on rejected / accepted steps.
  double lambda_up = 10.0;
  double lambda_down = 0.3;
  /// Cap beyond which the solve gives up increasing lambda.
  double max_lambda = 1e12;
  /// Relative step for the forward-difference Jacobian.
  double jacobian_step = 1e-6;
  /// Analytic Jacobian of the residual function. When set, each outer
  /// iteration calls it once instead of running the O(num_params)
  /// re-evaluations of the forward-difference Jacobian (for the SIV
  /// recurrence a forward-mode dual pass yields every column in one
  /// simulation). Leave unset to keep the numeric path — the cross-check
  /// mode callers expose as `use_numeric_jacobian`.
  JacobianIntoFn analytic_jacobian;
  /// Worker threads for evaluating numeric-Jacobian columns (0 = hardware
  /// concurrency, 1 = serial). Each column probe is independent, so the
  /// Jacobian — and therefore the whole solve — is bit-identical at any
  /// thread count. With more than one thread the residual function must
  /// be safe to call concurrently (each call gets its own probe vector
  /// and residual buffer).
  size_t num_threads = 1;
  /// Columns are only parallelized once the parameter count reaches this
  /// grain threshold; below it, the per-task overhead outweighs the probe
  /// work (the Δ-SPOT base fit has 5 parameters and stays serial —
  /// parallelism comes from the keyword/location layers above it).
  size_t parallel_jacobian_min_params = 8;
  /// Divergence recovery: when the cost turns non-finite (or blows past
  /// 1e100) — at the initial point or on a trial step — the solver rewinds
  /// to its best-so-far iterate and retries from a deterministically
  /// jittered start, up to this many times. 0 disables recovery (a
  /// non-finite initial cost is then an immediate NumericalError, the
  /// pre-guard behavior). Restarts share the max_iterations budget, so
  /// recovery never multiplies the worst-case work.
  int max_restarts = 2;
  /// Relative magnitude of the restart jitter around the rewind anchor.
  double restart_jitter = 0.05;
  /// Seed for the restart jitter; attempt k draws from
  /// Random(restart_seed).Child(k), so recovery is a pure function of the
  /// options — bit-identical across runs and thread counts.
  uint64_t restart_seed = 0x5eedfa17ULL;
  /// Deadline/cancellation pair, checked once per outer iteration. On
  /// deadline expiry the solver returns OK with its best-so-far iterate
  /// and health.termination == kDeadlineExceeded; on cancellation it
  /// returns Status::Cancelled. Inactive by default.
  GuardContext guard;
};

/// Diagnostics returned alongside the solution.
struct LmResult {
  std::vector<double> params;
  /// 0.5 * sum of squared residuals at the solution.
  double final_cost = 0.0;
  double initial_cost = 0.0;
  int iterations = 0;
  /// True if a convergence criterion (rather than the iteration cap) fired.
  bool converged = false;
  /// Restarts taken, wall time, and why the solve stopped (kConverged /
  /// kStalled / kMaxIterations / kDeadlineExceeded).
  FitHealth health;
};

/// Scratch storage for the workspace-based LevenbergMarquardt overload.
/// One workspace serves any sequence of solves (sizes may vary between
/// solves); buffers retain capacity, so repeated solves of same-shaped
/// problems — and every iteration within one solve — allocate nothing.
/// Not thread-safe: concurrent solves need one workspace per worker.
struct LmWorkspace {
  std::vector<double> p;
  std::vector<double> r;
  std::vector<double> r_new;
  std::vector<double> candidate;
  std::vector<double> actual_step;
  std::vector<double> jtr;
  std::vector<double> neg_jtr;
  std::vector<double> step;
  /// Serial numeric-Jacobian scratch (parallel blocks own their scratch).
  std::vector<double> probe;
  std::vector<double> probe_r;
  /// Best-so-far iterate across divergence-recovery restarts.
  std::vector<double> best_p;
  Matrix jac;
  Matrix jtj;
  Matrix damped;
  LdltWorkspace ldlt;
};

/// Minimizes 0.5 * ||r(p)||^2 with the Levenberg-Marquardt algorithm
/// (Levenberg 1944, as cited by the paper), using a forward-difference
/// Jacobian and box constraints enforced by clamped steps. Steps that do
/// not decrease the cost are rejected and the damping is increased.
///
/// `initial` must lie inside `bounds` (it is clamped if not). The residual
/// function must be deterministic; it is called O(np) times per iteration.
StatusOr<LmResult> LevenbergMarquardt(const ResidualFn& residual_fn,
                                      const std::vector<double>& initial,
                                      const Bounds& bounds = Bounds(),
                                      const LmOptions& options = LmOptions());

/// Workspace-based core: the residual function writes into a caller-sized
/// buffer of `num_residuals` entries and all solver scratch lives in
/// `*workspace`, so iterations allocate nothing once the workspace is warm.
/// Runs the exact same floating-point sequence as the allocating overload
/// (which is now an adapter over this one), so results are bit-identical.
StatusOr<LmResult> LevenbergMarquardt(const ResidualIntoFn& residual_fn,
                                      size_t num_residuals,
                                      const std::vector<double>& initial,
                                      const Bounds& bounds,
                                      const LmOptions& options,
                                      LmWorkspace* workspace);

}  // namespace dspot

#endif  // DSPOT_OPTIMIZE_LEVENBERG_MARQUARDT_H_
