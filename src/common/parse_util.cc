#include "common/parse_util.h"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <string>

namespace dspot {

namespace {

std::string Quoted(std::string_view text) {
  return "'" + std::string(text) + "'";
}

}  // namespace

StatusOr<int64_t> ParseInt64Text(std::string_view text) {
  if (text.empty()) {
    return Status::InvalidArgument("expected an integer, got empty text");
  }
  // from_chars accepts a leading '-' but not '+'; tolerate the explicit
  // plus sign since "+5" is unambiguous.
  std::string_view body = text;
  if (body.front() == '+') {
    body.remove_prefix(1);
    if (body.empty() || body.front() == '-') {
      return Status::InvalidArgument("not an integer: " + Quoted(text));
    }
  }
  int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(body.data(), body.data() + body.size(), value, 10);
  if (ec == std::errc::result_out_of_range) {
    return Status::InvalidArgument("integer out of range: " + Quoted(text));
  }
  if (ec != std::errc() || ptr != body.data() + body.size()) {
    return Status::InvalidArgument("not an integer: " + Quoted(text));
  }
  return value;
}

StatusOr<double> ParseDoubleText(std::string_view text) {
  if (text.empty()) {
    return Status::InvalidArgument("expected a number, got empty text");
  }
  // strtod instead of from_chars<double>: full-consumption checking works
  // the same way and avoids relying on library support for the
  // floating-point overloads. The copy guarantees NUL termination.
  const std::string buffer(text);
  const char* begin = buffer.c_str();
  char* end = nullptr;
  const double value = std::strtod(begin, &end);
  if (end != begin + buffer.size() || end == begin) {
    return Status::InvalidArgument("not a number: " + Quoted(text));
  }
  if (!std::isfinite(value)) {
    return Status::InvalidArgument("number out of range: " + Quoted(text));
  }
  return value;
}

}  // namespace dspot
