#ifndef DSPOT_TIMESERIES_METRICS_H_
#define DSPOT_TIMESERIES_METRICS_H_

#include <span>
#include <vector>

#include "timeseries/series.h"

namespace dspot {

/// Fit/forecast quality metrics. All skip positions where the actual value
/// is missing, and compare over min(actual.size(), estimate.size()) ticks.

/// Root-mean-square error — the headline accuracy metric of the paper
/// (Fig. 9).
double Rmse(const Series& actual, const Series& estimate);

/// Mean absolute error.
double Mae(const Series& actual, const Series& estimate);

/// Normalized RMSE: RMSE divided by the observed range of `actual`
/// (max - min); 0 when the range is degenerate.
double NormalizedRmse(const Series& actual, const Series& estimate);

/// Coefficient of determination R^2 (can be negative for bad fits).
double RSquared(const Series& actual, const Series& estimate);

/// Span / vector forms used internally. Same floating-point sequence as
/// the Series overload, so results are bit-identical.
double Rmse(std::span<const double> actual, std::span<const double> estimate);
double Rmse(const std::vector<double>& actual,
            const std::vector<double>& estimate);

}  // namespace dspot

#endif  // DSPOT_TIMESERIES_METRICS_H_
