#ifndef DSPOT_SERVE_PROTOCOL_H_
#define DSPOT_SERVE_PROTOCOL_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "serve/serve_engine.h"

namespace dspot {

/// The dspot_serve wire format: length-prefixed frames over a byte
/// stream (the CLI speaks it on stdin/stdout; tests speak it over
/// stringstreams).
///
/// One frame = a little-endian u32 payload length followed by that many
/// payload bytes. The payload reuses the snapshot codec's primitives
/// (ByteWriter/ByteReader) and leads with a tag word so a reader can
/// reject a stream of the wrong kind with a located error instead of
/// misparsing it:
///
///   request:  "DSRQ" id:u64 op:u32 keyword:str horizon:u64
///             deadline_ms:f64 values:u64+f64[]
///   reply:    "DSRP" id:u64 code:u32 message:str rmse:f64
///             cost_bits:f64 values:u64+f64[]
///
/// Encoding is canonical (no padding, no optional fields), so identical
/// replies are identical bytes — the determinism gates compare frames
/// directly.

/// Frame tags ("DSRQ" / "DSRP" as little-endian u32).
inline constexpr uint32_t kServeRequestTag = 0x51525344;
inline constexpr uint32_t kServeReplyTag = 0x50525344;

/// Upper bound on a frame's payload length; a declared length beyond it
/// is rejected as DataLoss (a desynchronized or hostile stream would
/// otherwise trigger a giant allocation).
inline constexpr uint32_t kServeMaxFrameBytes = 64u << 20;

/// Serializes one request/reply frame. IoError on stream failure.
Status WriteRequestFrame(const ServeRequest& request, std::ostream& out);
Status WriteReplyFrame(const ServeReply& reply, std::ostream& out);

/// Reads one frame into `*out`. Returns false on clean EOF (the stream
/// ended exactly on a frame boundary), true on success; located
/// DataLoss/InvalidArgument on truncation, a bad tag, or impossible
/// values. `context` labels errors (e.g. "stdin").
StatusOr<bool> ReadRequestFrame(std::istream& in, const std::string& context,
                                ServeRequest* out);
StatusOr<bool> ReadReplyFrame(std::istream& in, const std::string& context,
                              ServeReply* out);

/// Payload-level codecs (exposed for tests; the frame functions add the
/// length prefix).
std::vector<uint8_t> EncodeRequestPayload(const ServeRequest& request);
std::vector<uint8_t> EncodeReplyPayload(const ServeReply& reply);
StatusOr<ServeRequest> DecodeRequestPayload(const uint8_t* data, size_t size,
                                            const std::string& context);
StatusOr<ServeReply> DecodeReplyPayload(const uint8_t* data, size_t size,
                                        const std::string& context);

}  // namespace dspot

#endif  // DSPOT_SERVE_PROTOCOL_H_
