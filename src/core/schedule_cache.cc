#include "core/schedule_cache.h"

#include <algorithm>

namespace dspot {

namespace {

/// Flattens everything a keyword's global epsilon depends on: per-shock
/// time descriptors and strengths, in shock order (reordering rebuilds).
/// size_t fields are exact as doubles (tick counts are far below 2^53).
void AppendGlobalShockKey(const std::vector<Shock>& shocks, size_t keyword,
                          std::vector<double>* key) {
  for (const Shock& shock : shocks) {
    if (shock.keyword != keyword) continue;
    key->push_back(static_cast<double>(shock.period));
    key->push_back(static_cast<double>(shock.start));
    key->push_back(static_cast<double>(shock.width));
    key->push_back(shock.base_strength);
    key->push_back(static_cast<double>(shock.global_strengths.size()));
    for (double s : shock.global_strengths) {
      key->push_back(s);
    }
  }
}

/// Additionally flattens the local-strength column the schedule reads.
void AppendLocalShockKey(const std::vector<Shock>& shocks, size_t keyword,
                         size_t location, std::vector<double>* key) {
  for (const Shock& shock : shocks) {
    if (shock.keyword != keyword) continue;
    const Matrix& local = shock.local_strengths;
    key->push_back(local.empty() ? 0.0 : 1.0);
    key->push_back(static_cast<double>(local.rows()));
    key->push_back(static_cast<double>(local.cols()));
    if (!local.empty() && location < local.cols()) {
      for (size_t r = 0; r < local.rows(); ++r) {
        key->push_back(local(r, location));
      }
    }
  }
}

}  // namespace

void BuildEtaInto(double growth_rate, size_t growth_start, size_t n_ticks,
                  std::vector<double>* out) {
  if (growth_start == kNpos || growth_rate == 0.0) {
    out->clear();
    return;
  }
  out->assign(n_ticks, 0.0);
  for (size_t t = growth_start; t < n_ticks; ++t) {
    (*out)[t] = growth_rate;
  }
}

template <typename BuildFn>
std::span<const double> ScheduleCache::Lookup(Slot* slot,
                                              const BuildFn& build) {
  if (!slot->valid || slot->key != key_scratch_) {
    // Swap rather than copy so both vectors keep circulating capacity.
    std::swap(slot->key, key_scratch_);
    build(&slot->values);
    slot->valid = true;
  }
  return slot->values;
}

std::span<const double> ScheduleCache::GlobalEpsilon(
    const std::vector<Shock>& shocks, size_t keyword, size_t n_ticks) {
  key_scratch_.clear();
  key_scratch_.push_back(static_cast<double>(n_ticks));
  key_scratch_.push_back(static_cast<double>(keyword));
  AppendGlobalShockKey(shocks, keyword, &key_scratch_);
  return Lookup(&global_, [&](std::vector<double>* out) {
    BuildGlobalEpsilonInto(shocks, keyword, n_ticks, out);
  });
}

std::span<const double> ScheduleCache::LocalEpsilon(
    const std::vector<Shock>& shocks, size_t keyword, size_t location,
    size_t n_ticks) {
  key_scratch_.clear();
  key_scratch_.push_back(static_cast<double>(n_ticks));
  key_scratch_.push_back(static_cast<double>(keyword));
  key_scratch_.push_back(static_cast<double>(location));
  AppendGlobalShockKey(shocks, keyword, &key_scratch_);
  AppendLocalShockKey(shocks, keyword, location, &key_scratch_);
  return Lookup(&local_, [&](std::vector<double>* out) {
    BuildLocalEpsilonInto(shocks, keyword, location, n_ticks, out);
  });
}

std::span<const double> ScheduleCache::Eta(double growth_rate,
                                           size_t growth_start,
                                           size_t n_ticks) {
  key_scratch_.clear();
  key_scratch_.push_back(growth_rate);
  key_scratch_.push_back(static_cast<double>(growth_start));
  key_scratch_.push_back(static_cast<double>(n_ticks));
  return Lookup(&eta_, [&](std::vector<double>* out) {
    BuildEtaInto(growth_rate, growth_start, n_ticks, out);
  });
}

void ScheduleCache::Invalidate() {
  global_.valid = false;
  local_.valid = false;
  eta_.valid = false;
}

}  // namespace dspot
