#include "optimize/levenberg_marquardt.h"

#include <algorithm>
#include <cmath>

#include "linalg/matrix.h"
#include "linalg/solvers.h"
#include "linalg/vector_ops.h"
#include "parallel/parallel_for.h"

namespace dspot {

namespace {

/// Computes the forward-difference Jacobian of `fn` at `p`. `r0` is the
/// residual vector already evaluated at `p`. Steps are clamped so probe
/// points stay inside `bounds` (by stepping backwards when at the upper
/// bound). Columns are evaluated in parallel once the parameter count
/// reaches `options.parallel_jacobian_min_params` (and
/// `options.num_threads != 1`); each task owns one probe vector and one
/// scratch residual buffer reused across its whole block of columns, so
/// concurrent probes do not churn allocations. Column j writes only
/// column j of the Jacobian, so the result is bit-identical at any
/// thread count.
StatusOr<Matrix> NumericJacobian(const ResidualFn& fn,
                                 const std::vector<double>& p,
                                 const std::vector<double>& r0,
                                 const Bounds& bounds,
                                 const LmOptions& options) {
  const size_t np = p.size();
  const size_t m = r0.size();
  Matrix jac(m, np);
  std::vector<Status> statuses(np, Status::Ok());
  // One invocation per contiguous column block; scratch lives across the
  // block. On error the rest of the block is skipped — the first failing
  // column (lowest index, see below) decides the returned status, exactly
  // like the serial early return did.
  auto eval_columns = [&](size_t begin, size_t end) {
    std::vector<double> probe = p;
    std::vector<double> r1;
    r1.reserve(m);
    for (size_t j = begin; j < end; ++j) {
      double h = options.jacobian_step * std::max(1.0, std::fabs(p[j]));
      // Step backwards if a forward step would leave the box.
      if (!bounds.empty() && p[j] + h > bounds.upper[j]) {
        h = -h;
      }
      probe[j] = p[j] + h;
      Status s = fn(probe, &r1);
      probe[j] = p[j];
      if (!s.ok()) {
        statuses[j] = std::move(s);
        return;
      }
      if (r1.size() != m) {
        statuses[j] =
            Status::Internal("residual size changed between LM evaluations");
        return;
      }
      const double inv_h = 1.0 / h;
      for (size_t i = 0; i < m; ++i) {
        jac(i, j) = (r1[i] - r0[i]) * inv_h;
      }
    }
  };
  const size_t threads = EffectiveNumThreads(options.num_threads);
  if (threads <= 1 || np < options.parallel_jacobian_min_params) {
    eval_columns(0, np);
  } else {
    ParallelOptions popts;
    popts.num_threads = options.num_threads;
    // One block per runner: scratch allocations stay O(threads).
    popts.grain = (np + threads - 1) / threads;
    ParallelForBlocks(np, popts, eval_columns);
  }
  for (size_t j = 0; j < np; ++j) {
    if (!statuses[j].ok()) {
      return statuses[j];
    }
  }
  return jac;
}

double HalfSumSquares(const std::vector<double>& r) {
  return 0.5 * SumSquares(r);
}

}  // namespace

StatusOr<LmResult> LevenbergMarquardt(const ResidualFn& residual_fn,
                                      const std::vector<double>& initial,
                                      const Bounds& bounds,
                                      const LmOptions& options) {
  if (initial.empty()) {
    return Status::InvalidArgument("LevenbergMarquardt: empty parameters");
  }
  if (!bounds.empty() && (bounds.lower.size() != initial.size() ||
                          bounds.upper.size() != initial.size())) {
    return Status::InvalidArgument(
        "LevenbergMarquardt: bounds size does not match parameters");
  }

  std::vector<double> p = initial;
  bounds.Clamp(&p);

  std::vector<double> r;
  DSPOT_RETURN_IF_ERROR(residual_fn(p, &r));
  if (r.empty()) {
    return Status::InvalidArgument("LevenbergMarquardt: empty residuals");
  }
  double cost = HalfSumSquares(r);
  if (!std::isfinite(cost)) {
    return Status::NumericalError(
        "LevenbergMarquardt: non-finite cost at the initial point");
  }

  LmResult result;
  result.initial_cost = cost;
  double lambda = options.initial_lambda;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    DSPOT_ASSIGN_OR_RETURN(
        Matrix jac, NumericJacobian(residual_fn, p, r, bounds, options));
    // Normal equations: (J^T J + lambda I) step = -J^T r.
    Matrix jtj = jac.Gram();
    std::vector<double> jtr = jac.TransposedTimes(r);
    if (NormInf(jtr) < options.gradient_tolerance) {
      result.converged = true;
      break;
    }

    bool accepted = false;
    while (lambda <= options.max_lambda) {
      Matrix damped = jtj;
      damped.AddToDiagonal(lambda);
      auto step_or = RegularizedLdltSolve(damped, Scaled(jtr, -1.0));
      if (!step_or.ok()) {
        lambda *= options.lambda_up;
        continue;
      }
      std::vector<double> candidate = Add(p, step_or.value());
      bounds.Clamp(&candidate);
      const std::vector<double> actual_step = Sub(candidate, p);

      std::vector<double> r_new;
      Status s = residual_fn(candidate, &r_new);
      if (!s.ok()) {
        return s;
      }
      const double cost_new = HalfSumSquares(r_new);
      if (std::isfinite(cost_new) && cost_new < cost) {
        const double rel_decrease = (cost - cost_new) / std::max(cost, 1e-30);
        const double step_norm = NormInf(actual_step);
        p = std::move(candidate);
        r = std::move(r_new);
        cost = cost_new;
        lambda = std::max(lambda * options.lambda_down, 1e-12);
        accepted = true;
        ++result.iterations;
        if (rel_decrease < options.cost_tolerance ||
            step_norm < options.step_tolerance) {
          result.converged = true;
        }
        break;
      }
      lambda *= options.lambda_up;
    }
    if (!accepted || result.converged) {
      // Either lambda blew past its cap (stuck) or we converged.
      result.converged = result.converged || !accepted;
      break;
    }
  }

  result.params = std::move(p);
  result.final_cost = cost;
  return result;
}

}  // namespace dspot
