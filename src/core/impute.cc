#include "core/impute.h"

#include "core/simulate.h"

namespace dspot {

StatusOr<Series> ImputeGlobalSequence(const Series& sequence,
                                      const ModelParamSet& params,
                                      size_t keyword) {
  if (keyword >= params.global.size()) {
    return Status::OutOfRange("ImputeGlobalSequence: bad keyword index");
  }
  const Series estimate = SimulateGlobal(params, keyword, sequence.size());
  Series out = sequence;
  for (size_t t = 0; t < out.size(); ++t) {
    if (!out.IsObserved(t)) {
      out[t] = estimate[t];
    }
  }
  return out;
}

StatusOr<ActivityTensor> ImputeTensor(const ActivityTensor& tensor,
                                      const ModelParamSet& params) {
  if (params.global.size() != tensor.num_keywords() ||
      params.num_ticks != tensor.num_ticks()) {
    return Status::FailedPrecondition(
        "ImputeTensor: parameter set does not match the tensor");
  }
  if (tensor.num_locations() > 1 && !params.has_local()) {
    return Status::FailedPrecondition(
        "ImputeTensor: LocalFit required for multi-location tensors");
  }
  ActivityTensor out = tensor;
  // One cache + buffer for the whole d x l sweep: adjacent cells of a
  // keyword share their global schedules, so most simulations only rebuild
  // the location-dependent pieces.
  ScheduleCache cache;
  std::vector<double> estimate;
  for (size_t i = 0; i < tensor.num_keywords(); ++i) {
    for (size_t j = 0; j < tensor.num_locations(); ++j) {
      bool simulated = false;
      for (size_t t = 0; t < tensor.num_ticks(); ++t) {
        if (!IsMissing(tensor.at(i, j, t))) continue;
        if (!simulated) {
          estimate.resize(tensor.num_ticks());
          SimulateLocalInto(params, i, j, &cache, estimate);
          simulated = true;
        }
        out.at(i, j, t) = estimate[t];
      }
    }
  }
  return out;
}

}  // namespace dspot
