// dspot_serve — the DSPOT model server.
//
// Speaks the length-prefixed frame protocol of src/serve/protocol.h on
// stdin/stdout: each request frame is admitted into a bounded queue,
// batched onto the worker pool, and answered with one reply frame IN
// ADMISSION ORDER. Replies are a pure function of the request sequence —
// bit-identical at any --threads setting — as long as a --spill-dir is
// configured (so LRU evictions reload exactly) and deadlines are off.
//
// Modes:
//   (default)          serve: request frames on stdin -> replies on stdout
//     [--threads T]              worker threads (default 1; 0 = hardware)
//     [--queue-cap N]            admission bound; overflow sheds the
//                                oldest request with ResourceExhausted
//     [--tenant-quota N]         per-tenant queue slots (0 = no slicing);
//                                a flooding tenant sheds only itself
//     [--deadline-ms MS]         default per-request budget (0 = none)
//     [--max-resident-bytes B]   registry budget; accepts 64M / 2GiB / ...
//     [--spill-dir D]            snapshot spill directory (created)
//     [--shards N]               registry shards (default 8)
//     [--max-batch N]            dispatcher batch size (default 64)
//     [--metrics-json F]         write an obs metrics snapshot on exit
//   --listen PORT      serve the same frame protocol over TCP (epoll event
//                      loop on 127.0.0.1; 0 = ephemeral port) instead of
//                      stdin/stdout
//     [--max-conns N]            connection cap (default 256)
//     [--port-file F]            write the bound port to F (for scripts
//                                using --listen 0)
//   --connect HOST:PORT  client: stream request frames from stdin to a
//                      server, reply frames from the server to stdout,
//                      byte-for-byte
//     [--tenant NAME]            send a tenant handshake first
//   --gen-requests N   generate a deterministic request stream on stdout
//     [--gen-keywords K] [--gen-ticks T] [--gen-horizon H] [--seed S]
//   --print-replies    decode reply frames on stdin to readable text
//
// SIGINT/SIGTERM drain gracefully in both serve modes: stdin mode stops
// reading, answers every in-flight request and flushes stdout; TCP mode
// stops accepting/reading, flushes in-flight replies to every connection.
// Either way --metrics-json is still written and the exit code is 0.
//
// Numeric flags parse strictly (see src/common/parse_util.h): empty
// values, trailing garbage and unknown suffixes are usage errors naming
// the flag, never silently zero.
//
// Exit code 0 on success (including error *replies* — those belong to
// their requests), 1 on a transport or usage error.

#include <atomic>
#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <future>
#include <iostream>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#ifndef _WIN32
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "common/parse_util.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "serve/model_registry.h"
#include "serve/net_server.h"
#include "serve/protocol.h"
#include "serve/serve_engine.h"

namespace dspot {
namespace {

/// Signal plumbing shared by both serve transports. The handler does only
/// async-signal-safe work: store the signal number, poke the net server's
/// wake pipe (an atomic store + a write), and write to the self-pipe the
/// stdin pump polls alongside fd 0.
std::sig_atomic_t volatile g_signal = 0;
std::atomic<NetServer*> g_net_server{nullptr};
int g_signal_pipe[2] = {-1, -1};

extern "C" void HandleShutdownSignal(int sig) {
  g_signal = sig;
  NetServer* server = g_net_server.load(std::memory_order_acquire);
  if (server != nullptr) {
    server->Shutdown();
  }
#ifndef _WIN32
  if (g_signal_pipe[1] >= 0) {
    const uint8_t byte = 0;
    [[maybe_unused]] ssize_t ignored = ::write(g_signal_pipe[1], &byte, 1);
  }
#endif
}

bool InstallShutdownHandlers() {
#ifndef _WIN32
  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "dspot_serve: signal pipe: %s\n",
                 std::strerror(errno));
    return false;
  }
  for (int fd : g_signal_pipe) {
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL) | O_NONBLOCK);
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  }
  struct sigaction action{};
  action.sa_handler = HandleShutdownSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: poll() must return on the signal
  if (::sigaction(SIGINT, &action, nullptr) != 0 ||
      ::sigaction(SIGTERM, &action, nullptr) != 0) {
    std::fprintf(stderr, "dspot_serve: sigaction: %s\n",
                 std::strerror(errno));
    return false;
  }
#endif
  return true;
}

/// Minimal flag parser: --key value and --key=value (same contract as
/// dspot_cli's).
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc;) {
      std::string key = argv[i];
      const size_t eq = key.find('=');
      if (key.rfind("--", 0) == 0 && eq != std::string::npos) {
        const std::string value = key.substr(eq + 1);
        key = key.substr(0, eq);
        present_.push_back(key);
        values_[key] = value;
        i += 1;
        continue;
      }
      present_.push_back(key);
      if (key.rfind("--", 0) == 0 && i + 1 < argc &&
          std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[i + 1];
        i += 2;
      } else {
        i += 1;
      }
    }
  }

  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  bool HasValue(const std::string& key) const {
    return values_.find(key) != values_.end();
  }

  bool Has(const std::string& key) const {
    for (const std::string& p : present_) {
      if (p == key) return true;
    }
    return false;
  }

  /// Every token seen on the command line (flags and positionals alike),
  /// for strict unknown-flag rejection.
  const std::vector<std::string>& Present() const { return present_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> present_;
};

/// Located usage error: "dspot_serve: --queue-cap: not an integer: '2x'".
void FlagError(const char* key, const Status& status) {
  std::fprintf(stderr, "dspot_serve: %s: %s\n", key,
               status.message().c_str());
}

bool ParseIntFlag(const Flags& flags, const char* key, int64_t fallback,
                  int64_t min_value, int64_t max_value, int64_t* out) {
  *out = fallback;
  if (!flags.Has(key)) {
    return true;
  }
  if (!flags.HasValue(key)) {
    std::fprintf(stderr, "dspot_serve: %s: requires an integer value\n", key);
    return false;
  }
  auto parsed = ParseInt64Text(flags.GetString(key));
  if (!parsed.ok()) {
    FlagError(key, parsed.status());
    return false;
  }
  if (*parsed < min_value || *parsed > max_value) {
    std::fprintf(stderr,
                 "dspot_serve: %s: %" PRId64 " is out of range [%" PRId64
                 ", %" PRId64 "]\n",
                 key, *parsed, min_value, max_value);
    return false;
  }
  *out = *parsed;
  return true;
}

bool ParseDoubleFlag(const Flags& flags, const char* key, double fallback,
                     double min_value, double* out) {
  *out = fallback;
  if (!flags.Has(key)) {
    return true;
  }
  if (!flags.HasValue(key)) {
    std::fprintf(stderr, "dspot_serve: %s: requires a numeric value\n", key);
    return false;
  }
  auto parsed = ParseDoubleText(flags.GetString(key));
  if (!parsed.ok()) {
    FlagError(key, parsed.status());
    return false;
  }
  if (*parsed < min_value) {
    std::fprintf(stderr, "dspot_serve: %s: %g must be >= %g\n", key, *parsed,
                 min_value);
    return false;
  }
  *out = *parsed;
  return true;
}

bool ParseByteSizeFlag(const Flags& flags, const char* key, uint64_t fallback,
                       uint64_t* out) {
  *out = fallback;
  if (!flags.Has(key)) {
    return true;
  }
  if (!flags.HasValue(key)) {
    std::fprintf(stderr, "dspot_serve: %s: requires a byte size value\n", key);
    return false;
  }
  auto parsed = ParseByteSizeText(flags.GetString(key));
  if (!parsed.ok()) {
    FlagError(key, parsed.status());
    return false;
  }
  *out = *parsed;
  return true;
}

/// xorshift64* — the deterministic generator behind --gen-requests.
uint64_t NextRand(uint64_t* state) {
  uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return x * 0x2545F4914F6CDD1Dull;
}

/// A synthetic activity series for keyword `kw`: baseline + weekly wave +
/// one burst, with LCG jitter. Deterministic in (seed, kw, n_ticks).
std::vector<double> SyntheticSeries(uint64_t seed, uint64_t kw,
                                    size_t n_ticks) {
  std::vector<double> values(n_ticks);
  uint64_t state = seed * 1000003u + kw * 7919u + 1;
  const double base = 40.0 + static_cast<double>(kw % 17) * 3.0;
  const size_t burst = 20 + static_cast<size_t>(NextRand(&state) % 40);
  for (size_t t = 0; t < n_ticks; ++t) {
    double v = base + 10.0 * std::sin(2.0 * 3.141592653589793 *
                                      static_cast<double>(t) / 7.0);
    if (t >= burst && t < burst + 3) {
      v += 60.0;
    }
    v += static_cast<double>(NextRand(&state) % 1000) / 500.0 - 1.0;
    values[t] = v < 0.0 ? 0.0 : v;
  }
  return values;
}

int GenerateRequests(const Flags& flags) {
  int64_t n = 0;
  int64_t keywords = 0;
  int64_t ticks = 0;
  int64_t horizon = 0;
  int64_t seed = 0;
  const int64_t kMax = std::numeric_limits<int64_t>::max();
  if (!ParseIntFlag(flags, "--gen-requests", 200, 1, kMax, &n) ||
      !ParseIntFlag(flags, "--gen-keywords", 20, 1, kMax, &keywords) ||
      !ParseIntFlag(flags, "--gen-ticks", 96, 16, kMax, &ticks) ||
      !ParseIntFlag(flags, "--gen-horizon", 8, 1, kMax, &horizon) ||
      !ParseIntFlag(flags, "--seed", 42, 0, kMax, &seed)) {
    return 1;
  }
  uint64_t state = static_cast<uint64_t>(seed) ^ 0x9E3779B97F4A7C15ull;
  uint64_t id = 0;
  // One cold fit per keyword first, so every later request has a model.
  for (int64_t kw = 0; kw < keywords; ++kw) {
    ServeRequest request;
    request.id = id++;
    request.op = ServeOp::kFit;
    request.keyword = "kw" + std::to_string(kw);
    request.values = SyntheticSeries(static_cast<uint64_t>(seed),
                                     static_cast<uint64_t>(kw),
                                     static_cast<size_t>(ticks));
    Status status = WriteRequestFrame(request, std::cout);
    if (!status.ok()) {
      std::fprintf(stderr, "dspot_serve: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  // Then a mixed read-mostly tail: ~90% forecast, ~8% outlier-score,
  // ~2% refit over a longer window.
  for (int64_t i = keywords; i < n; ++i) {
    const uint64_t kw = NextRand(&state) % static_cast<uint64_t>(keywords);
    const uint64_t dice = NextRand(&state) % 100;
    ServeRequest request;
    request.id = id++;
    request.keyword = "kw" + std::to_string(kw);
    if (dice < 90) {
      request.op = ServeOp::kForecast;
      request.horizon = static_cast<uint64_t>(horizon);
    } else if (dice < 98) {
      request.op = ServeOp::kOutlierScore;
      request.values = SyntheticSeries(static_cast<uint64_t>(seed), kw,
                                       static_cast<size_t>(ticks / 2));
    } else {
      request.op = ServeOp::kRefit;
      request.values = SyntheticSeries(static_cast<uint64_t>(seed), kw,
                                       static_cast<size_t>(ticks + 8));
    }
    Status status = WriteRequestFrame(request, std::cout);
    if (!status.ok()) {
      std::fprintf(stderr, "dspot_serve: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  std::cout.flush();
  return std::cout ? 0 : 1;
}

int PrintReplies() {
  ServeReply reply;
  uint64_t count = 0;
  for (;;) {
    StatusOr<bool> have = ReadReplyFrame(std::cin, "stdin", &reply);
    if (!have.ok()) {
      std::fprintf(stderr, "dspot_serve: %s\n",
                   have.status().ToString().c_str());
      return 1;
    }
    if (!*have) {
      break;
    }
    ++count;
    std::printf("reply id=%" PRIu64 " status=%s values=%zu rmse=%.6g",
                reply.id, StatusCodeName(reply.status.code()),
                reply.values.size(), reply.rmse);
    if (!reply.values.empty()) {
      std::printf(" first=%.6g", reply.values.front());
    }
    if (!reply.status.ok()) {
      std::printf(" message=\"%s\"", reply.status.message().c_str());
    }
    std::printf("\n");
  }
  std::printf("total replies: %" PRIu64 "\n", count);
  return 0;
}

/// The stdin/stdout pump: poll {stdin, signal pipe}, reassemble frames
/// through FrameAssembler, submit, answer in admission order with a
/// bounded in-flight window. Returns 0 on clean EOF OR a graceful
/// signal-driven drain, 1 on a transport error.
int PumpStdio(ServeEngine& engine, size_t queue_cap) {
#ifdef _WIN32
  std::fprintf(stderr, "dspot_serve: stdio pump requires POSIX fds\n");
  return 1;
#else
  // The in-flight window is bounded so a huge request file cannot hold
  // every reply in memory at once.
  const size_t kMaxInFlight = std::max<size_t>(queue_cap, size_t{256});
  std::deque<std::future<ServeReply>> in_flight;
  auto drain_one = [&in_flight]() -> Status {
    ServeReply reply = in_flight.front().get();
    in_flight.pop_front();
    return WriteReplyFrame(reply, std::cout);
  };
  FrameAssembler assembler("stdin");
  std::vector<uint8_t> chunk(size_t{64} << 10);
  std::vector<uint8_t> payload;
  bool eof = false;
  while (!eof && g_signal == 0) {
    pollfd fds[2] = {{STDIN_FILENO, POLLIN, 0}, {g_signal_pipe[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "dspot_serve: poll: %s\n", std::strerror(errno));
      return 1;
    }
    if (fds[1].revents != 0 || g_signal != 0) break;
    if ((fds[0].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    const ssize_t n = ::read(STDIN_FILENO, chunk.data(), chunk.size());
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      std::fprintf(stderr, "dspot_serve: stdin: %s\n", std::strerror(errno));
      return 1;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    assembler.Append(chunk.data(), static_cast<size_t>(n));
    for (;;) {
      StatusOr<bool> have = assembler.Next(&payload);
      if (!have.ok()) {
        std::fprintf(stderr, "dspot_serve: %s\n",
                     have.status().ToString().c_str());
        return 1;
      }
      if (!*have) break;
      StatusOr<ServeRequest> request =
          DecodeRequestPayload(payload.data(), payload.size(), "stdin");
      if (!request.ok()) {
        std::fprintf(stderr, "dspot_serve: %s\n",
                     request.status().ToString().c_str());
        return 1;
      }
      in_flight.push_back(engine.Submit(std::move(*request)));
      while (in_flight.size() >= kMaxInFlight) {
        Status status = drain_one();
        if (!status.ok()) {
          std::fprintf(stderr, "dspot_serve: %s\n", status.ToString().c_str());
          return 1;
        }
      }
    }
  }
  if (eof && assembler.buffered() != 0) {
    std::fprintf(stderr,
                 "dspot_serve: stdin: byte %" PRIu64
                 ": %zu trailing bytes form an incomplete frame\n",
                 assembler.stream_offset(), assembler.buffered());
    return 1;
  }
  // Drain: every admitted request still gets its reply — a signal must
  // not drop in-flight work on the floor.
  while (!in_flight.empty()) {
    Status status = drain_one();
    if (!status.ok()) {
      std::fprintf(stderr, "dspot_serve: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  std::cout.flush();
  if (g_signal != 0) {
    std::fprintf(stderr,
                 "dspot_serve: caught signal %d; drained in-flight replies "
                 "and shut down\n",
                 static_cast<int>(g_signal));
  }
  return std::cout ? 0 : 1;
#endif
}

int Serve(const Flags& flags) {
  int64_t threads = 0;
  int64_t queue_cap = 0;
  int64_t shards = 0;
  int64_t max_batch = 0;
  int64_t tenant_quota = 0;
  int64_t listen_port = 0;
  int64_t max_conns = 0;
  double deadline_ms = 0.0;
  uint64_t max_resident_bytes = 0;
  const int64_t kMax = std::numeric_limits<int64_t>::max();
  if (!ParseIntFlag(flags, "--threads", 1, 0, kMax, &threads) ||
      !ParseIntFlag(flags, "--queue-cap", 1024, 1, kMax, &queue_cap) ||
      !ParseIntFlag(flags, "--shards", 8, 1, kMax, &shards) ||
      !ParseIntFlag(flags, "--max-batch", 64, 1, kMax, &max_batch) ||
      !ParseIntFlag(flags, "--tenant-quota", 0, 0, kMax, &tenant_quota) ||
      !ParseIntFlag(flags, "--listen", 0, 0, 65535, &listen_port) ||
      !ParseIntFlag(flags, "--max-conns", 256, 1, kMax, &max_conns) ||
      !ParseDoubleFlag(flags, "--deadline-ms", 0.0, 0.0, &deadline_ms) ||
      !ParseByteSizeFlag(flags, "--max-resident-bytes", 256ull << 20,
                         &max_resident_bytes)) {
    return 1;
  }
  const std::string metrics_path = flags.GetString("--metrics-json");
  if (!metrics_path.empty()) {
    ObsRegistry::Instance().Enable();
  }
  if (!InstallShutdownHandlers()) {
    return 1;
  }

  RegistryOptions registry_options;
  registry_options.num_shards = static_cast<size_t>(shards);
  registry_options.max_resident_bytes = max_resident_bytes;
  registry_options.spill_dir = flags.GetString("--spill-dir");
  if (!registry_options.spill_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(registry_options.spill_dir, ec);
    if (ec) {
      std::fprintf(stderr, "dspot_serve: --spill-dir: cannot create '%s': %s\n",
                   registry_options.spill_dir.c_str(), ec.message().c_str());
      return 1;
    }
  }
  ModelRegistry registry(registry_options);

  ServeOptions serve_options;
  serve_options.num_threads = static_cast<size_t>(threads);
  serve_options.queue_cap = static_cast<size_t>(queue_cap);
  serve_options.max_batch = static_cast<size_t>(max_batch);
  serve_options.default_deadline_ms = deadline_ms;
  serve_options.tenant_quota = static_cast<size_t>(tenant_quota);
  ServeEngine engine(&registry, serve_options);

  int exit_code = 0;
  if (flags.Has("--listen")) {
    NetServerOptions net_options;
    net_options.port = static_cast<uint16_t>(listen_port);
    net_options.max_conns = static_cast<size_t>(max_conns);
    NetServer server(&engine, net_options);
    Status status = server.Start();
    if (!status.ok()) {
      std::fprintf(stderr, "dspot_serve: --listen: %s\n",
                   status.ToString().c_str());
      engine.Stop();
      return 1;
    }
    // Scripts that pass --listen 0 read the kernel-chosen port here.
    const std::string port_file = flags.GetString("--port-file");
    if (!port_file.empty()) {
      std::ofstream out(port_file, std::ios::trunc);
      out << server.port() << "\n";
      out.flush();
      if (!out) {
        std::fprintf(stderr, "dspot_serve: --port-file: cannot write '%s'\n",
                     port_file.c_str());
        engine.Stop();
        return 1;
      }
    }
    std::fprintf(stderr, "dspot_serve: listening on %s:%u\n",
                 net_options.bind_address.c_str(),
                 static_cast<unsigned>(server.port()));
    g_net_server.store(&server, std::memory_order_release);
    if (g_signal != 0) {
      server.Shutdown();  // the signal raced Start(); drain immediately
    }
    status = server.Run();
    g_net_server.store(nullptr, std::memory_order_release);
    if (!status.ok()) {
      std::fprintf(stderr, "dspot_serve: %s\n", status.ToString().c_str());
      exit_code = 1;
    }
    // Engine callbacks reference the server: Stop() must drain them
    // before `server` leaves scope.
    engine.Stop();
    const NetServerStats net = server.stats();
    std::fprintf(stderr,
                 "dspot_serve: tcp: %" PRIu64 " conns (%" PRIu64
                 " over cap, %" PRIu64 " desync teardowns), %" PRIu64
                 " requests in / %" PRIu64 " replies out, %" PRIu64
                 " B in / %" PRIu64 " B out\n",
                 net.accepted, net.rejected_at_capacity, net.desync_teardowns,
                 net.requests, net.replies, net.bytes_in, net.bytes_out);
    if (g_signal != 0) {
      std::fprintf(stderr,
                   "dspot_serve: caught signal %d; drained connections and "
                   "shut down\n",
                   static_cast<int>(g_signal));
    }
  } else {
    exit_code = PumpStdio(engine, static_cast<size_t>(queue_cap));
    engine.Stop();
  }

  const ServeStats stats = engine.stats();
  const RegistryStats reg = registry.stats();
  std::fprintf(stderr,
               "dspot_serve: served %" PRIu64 " requests (%" PRIu64
               " shed, %" PRIu64 " deadline-expired); registry %" PRIu64
               " hits / %" PRIu64 " misses / %" PRIu64 " reloads / %" PRIu64
               " evictions, %" PRIu64 " models resident\n",
               stats.completed, stats.admission_rejects,
               stats.deadline_expired, reg.hits, reg.misses, reg.reloads,
               reg.evictions, reg.resident_models);
  // Written even on a signal-driven drain: the operator's last metrics
  // snapshot must survive a SIGTERM'd server.
  if (!metrics_path.empty()) {
    Status status = WriteMetricsJson(metrics_path);
    if (!status.ok()) {
      std::fprintf(stderr, "dspot_serve: --metrics-json: %s\n",
                   status.ToString().c_str());
      return 1;
    }
  }
  return exit_code;
}

#ifndef _WIN32
/// write()s all of `data` to `fd` (MSG_NOSIGNAL when it is a socket, so a
/// dead peer surfaces as EPIPE instead of killing the process).
bool SendAll(int fd, const void* data, size_t size, bool is_socket) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = is_socket ? ::send(fd, p, size, MSG_NOSIGNAL)
                                : ::write(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}
#endif

/// --connect HOST:PORT — a transparent frame pipe: stdin bytes go to the
/// server verbatim, server bytes come back on stdout verbatim (so replies
/// stay byte-comparable against stdin-mode output), with an optional
/// tenant handshake sent first.
int Connect(const Flags& flags) {
#ifdef _WIN32
  std::fprintf(stderr, "dspot_serve: --connect requires POSIX sockets\n");
  return 1;
#else
  const std::string target = flags.GetString("--connect");
  if (target.empty()) {
    std::fprintf(stderr, "dspot_serve: --connect: requires HOST:PORT\n");
    return 1;
  }
  std::string host = "127.0.0.1";
  std::string port_text = target;
  const size_t colon = target.rfind(':');
  if (colon != std::string::npos) {
    host = target.substr(0, colon);
    port_text = target.substr(colon + 1);
    if (host.empty()) host = "127.0.0.1";
  }
  auto port = ParseInt64Text(port_text);
  if (!port.ok() || *port < 1 || *port > 65535) {
    std::fprintf(stderr,
                 "dspot_serve: --connect: '%s' is not a port in [1, 65535]\n",
                 port_text.c_str());
    return 1;
  }
  const std::string tenant = flags.GetString("--tenant");
  if (!tenant.empty()) {
    Status status = ValidateTenantName(tenant);
    if (!status.ok()) {
      std::fprintf(stderr, "dspot_serve: --tenant: %s\n",
                   status.message().c_str());
      return 1;
    }
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(*port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr,
                 "dspot_serve: --connect: '%s' is not an IPv4 address\n",
                 host.c_str());
    return 1;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    std::fprintf(stderr, "dspot_serve: socket: %s\n", std::strerror(errno));
    return 1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    std::fprintf(stderr, "dspot_serve: connect %s:%" PRId64 ": %s\n",
                 host.c_str(), *port, std::strerror(errno));
    ::close(fd);
    return 1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  if (!tenant.empty()) {
    const std::vector<uint8_t> payload = EncodeHelloPayload(tenant);
    const uint32_t len = static_cast<uint32_t>(payload.size());
    const uint8_t prefix[4] = {
        static_cast<uint8_t>(len & 0xFF),
        static_cast<uint8_t>((len >> 8) & 0xFF),
        static_cast<uint8_t>((len >> 16) & 0xFF),
        static_cast<uint8_t>((len >> 24) & 0xFF)};
    if (!SendAll(fd, prefix, sizeof(prefix), /*is_socket=*/true) ||
        !SendAll(fd, payload.data(), payload.size(), /*is_socket=*/true)) {
      std::fprintf(stderr, "dspot_serve: handshake send: %s\n",
                   std::strerror(errno));
      ::close(fd);
      return 1;
    }
  }

  // Reader: server -> stdout, byte-for-byte, until the server half-closes.
  std::atomic<bool> reader_failed{false};
  std::thread reader([fd, &reader_failed]() {
    std::vector<char> buf(size_t{64} << 10);
    for (;;) {
      const ssize_t n = ::recv(fd, buf.data(), buf.size(), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        std::fprintf(stderr, "dspot_serve: recv: %s\n", std::strerror(errno));
        reader_failed.store(true, std::memory_order_relaxed);
        return;
      }
      if (n == 0) return;
      if (!SendAll(STDOUT_FILENO, buf.data(), static_cast<size_t>(n),
                   /*is_socket=*/false)) {
        std::fprintf(stderr, "dspot_serve: stdout: %s\n",
                     std::strerror(errno));
        reader_failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  });

  // Writer (this thread): stdin -> server, then half-close so the server
  // sees EOF and can retire the connection once replies flush.
  bool write_ok = true;
  std::vector<char> buf(size_t{64} << 10);
  for (;;) {
    const ssize_t n = ::read(STDIN_FILENO, buf.data(), buf.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "dspot_serve: stdin: %s\n", std::strerror(errno));
      write_ok = false;
      break;
    }
    if (n == 0) break;
    if (!SendAll(fd, buf.data(), static_cast<size_t>(n), /*is_socket=*/true)) {
      std::fprintf(stderr, "dspot_serve: send: %s\n", std::strerror(errno));
      write_ok = false;
      break;
    }
  }
  ::shutdown(fd, SHUT_WR);
  reader.join();
  ::close(fd);
  return (write_ok && !reader_failed.load(std::memory_order_relaxed)) ? 0 : 1;
#endif
}

/// A typo'd flag on a long-running server must fail fast at startup, not
/// be silently ignored while the operator believes it took effect.
bool RejectUnknownArguments(const Flags& flags) {
  static const char* kKnown[] = {
      "--help",         "--threads",      "--queue-cap",
      "--shards",       "--max-batch",    "--deadline-ms",
      "--max-resident-bytes",             "--spill-dir",
      "--metrics-json", "--gen-requests", "--gen-keywords",
      "--gen-ticks",    "--gen-horizon",  "--seed",
      "--print-replies", "--tenant-quota", "--listen",
      "--max-conns",    "--port-file",    "--connect",
      "--tenant"};
  for (const std::string& token : flags.Present()) {
    if (token.rfind("--", 0) != 0) {
      std::fprintf(stderr, "dspot_serve: unexpected argument '%s'\n",
                   token.c_str());
      return false;
    }
    bool known = false;
    for (const char* k : kKnown) {
      if (token == k) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::fprintf(stderr,
                   "dspot_serve: unknown flag '%s' (see --help)\n",
                   token.c_str());
      return false;
    }
  }
  return true;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv, 1);
  if (!RejectUnknownArguments(flags)) {
    return 1;
  }
  if (flags.Has("--help")) {
    std::fprintf(stderr,
                 "usage: dspot_serve [--threads T] [--queue-cap N] "
                 "[--deadline-ms MS]\n"
                 "                   [--max-resident-bytes B] [--spill-dir D] "
                 "[--shards N]\n"
                 "                   [--max-batch N] [--tenant-quota N] "
                 "[--metrics-json F]\n"
                 "       dspot_serve --listen PORT [--max-conns N] "
                 "[--port-file F]\n"
                 "                   [...all serve flags above]\n"
                 "       dspot_serve --connect HOST:PORT [--tenant NAME]\n"
                 "       dspot_serve --gen-requests N [--gen-keywords K] "
                 "[--gen-ticks T]\n"
                 "                   [--gen-horizon H] [--seed S]\n"
                 "       dspot_serve --print-replies\n");
    return 1;
  }
  if (flags.Has("--gen-requests")) {
    return GenerateRequests(flags);
  }
  if (flags.Has("--print-replies")) {
    return PrintReplies();
  }
  if (flags.Has("--connect")) {
    return Connect(flags);
  }
  return Serve(flags);
}

}  // namespace
}  // namespace dspot

int main(int argc, char** argv) { return dspot::Main(argc, argv); }
