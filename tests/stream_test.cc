// dspot_stream: bounded-memory streaming ingestion. The suite covers the
// append hot path's rejection contract (out-of-order, pre-origin, bad
// counts, keyword caps), ring eviction and gap restarts, the triage ladder
// (cold fit -> scheduled warm refit -> burst escalation), lock-free
// forecast reads, and the two determinism oracles the design hangs on:
// bit-identical encoded state at any thread count, and across a
// save/restore cycle mid-stream.

#include "stream/stream_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "datagen/tick_stream.h"
#include "guard/guard.h"

namespace dspot {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Small-but-busy streaming options: fits become possible after 32 ticks,
/// scheduled refits every 16, rings hold 64 ticks.
StreamOptions SmallOptions(size_t num_threads = 1) {
  StreamOptions options;
  options.ring_capacity = 64;
  options.min_fit_ticks = 32;
  options.refit_interval = 16;
  options.forecast_horizon = 8;
  options.num_threads = num_threads;
  return options;
}

/// Deterministic quiet activity: a gentle level + wiggle the fit explains
/// well enough that its continuation never trips the 4-sigma burst test.
double QuietCount(int64_t t) {
  return 20.0 + static_cast<double>(t % 5) +
         3.0 * std::sin(static_cast<double>(t) / 7.0);
}

/// Replays `records` into `engine` in order, flushing whenever stream time
/// crosses a `flush_every`-tick boundary (the CLI's cadence), plus once at
/// the end.
void Replay(StreamEngine* engine, const std::vector<TickRecord>& records,
            int64_t flush_every) {
  auto flush = [&]() {
    auto report = engine->Flush();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
  };
  int64_t last_bucket = INT64_MIN;
  for (const TickRecord& r : records) {
    const int64_t bucket = r.timestamp / flush_every;
    if (last_bucket != INT64_MIN && bucket > last_bucket) {
      flush();
    }
    last_bucket = bucket;
    Status s = engine->AppendById(r.keyword, r.timestamp, r.count);
    ASSERT_TRUE(s.ok()) << s.ToString();
  }
  flush();
}

/// The synthetic mixed stream: a few hot keywords with an injected burst,
/// a quiet tail that never reaches min_fit_ticks.
TickStreamConfig MixedConfig() {
  TickStreamConfig config;
  config.num_keywords = 24;
  config.hot_keywords = 4;
  config.num_ticks = 96;
  config.quiet_ticks = 8;
  config.burst_start = 48;
  config.burst_width = 4;
  return config;
}

void InternAll(StreamEngine* engine, const TickStreamConfig& config) {
  for (size_t i = 0; i < config.num_keywords; ++i) {
    auto id = engine->EnsureKeyword(
        TickStreamKeywordName(static_cast<uint32_t>(i)));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
  }
}

// ---------------------------------------------------------------------------
// Append contract

TEST(Stream, AppendRejectsOutOfOrderTimestamps) {
  StreamEngine engine(SmallOptions());
  ASSERT_TRUE(engine.Append("kw", "all", 5, 1.0).ok());
  Status s = engine.Append("kw", "all", 3, 1.0);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("out of order"), std::string::npos)
      << s.ToString();
  // Equal timestamps accumulate into the same tick; later ones proceed.
  EXPECT_TRUE(engine.Append("kw", "all", 5, 2.0).ok());
  EXPECT_TRUE(engine.Append("kw", "all", 6, 1.0).ok());
  EXPECT_EQ(engine.stats().rejected, 1u);
  auto window = engine.Window(0);
  ASSERT_TRUE(window.ok());
  EXPECT_DOUBLE_EQ(window->values[0], 3.0);  // 1.0 + 2.0 at tick 5
}

TEST(Stream, AppendRejectsBadCountsAndPreOriginTimestamps) {
  StreamOptions options = SmallOptions();
  options.origin = 100;
  StreamEngine engine(options);
  EXPECT_EQ(engine.Append("kw", "all", 100, std::nan("")).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.Append("kw", "all", 100, -1.0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.Append("kw", "all", 99, 1.0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.stats().rejected, 3u);
  EXPECT_TRUE(engine.Append("kw", "all", 100, 1.0).ok());
}

TEST(Stream, AppendByIdRejectsUnknownIndex) {
  StreamEngine engine(SmallOptions());
  Status s = engine.AppendById(7, 0, 1.0);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("out of range"), std::string::npos);
}

TEST(Stream, EnsureKeywordEnforcesCapAndNonEmptyName) {
  StreamOptions options = SmallOptions();
  options.max_keywords = 2;
  StreamEngine engine(options);
  EXPECT_EQ(engine.EnsureKeyword("").status().code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(engine.EnsureKeyword("a").ok());
  ASSERT_TRUE(engine.EnsureKeyword("b").ok());
  // Existing keywords resolve fine past the cap; new ones are rejected.
  EXPECT_TRUE(engine.EnsureKeyword("a").ok());
  EXPECT_EQ(engine.EnsureKeyword("c").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.num_keywords(), 2u);
}

// ---------------------------------------------------------------------------
// Ring buffer behavior

TEST(Stream, RingEvictsOldestTicksAtCapacity) {
  StreamEngine engine(SmallOptions());  // ring_capacity 64
  for (int64_t t = 0; t < 200; ++t) {
    ASSERT_TRUE(engine.Append("kw", "all", t, static_cast<double>(t)).ok());
  }
  auto window = engine.Window(0);
  ASSERT_TRUE(window.ok());
  EXPECT_EQ(window->start_tick, 200 - 64);
  ASSERT_EQ(window->values.size(), 64u);
  for (size_t i = 0; i < 64; ++i) {
    EXPECT_DOUBLE_EQ(window->values[i], static_cast<double>(136 + i));
  }
  EXPECT_EQ(engine.stats().evicted_ticks, 136u);
  // The ring is bounded: well under capacity + forecast-cell overhead.
  EXPECT_LE(engine.stats().buffer_bytes, 64 * sizeof(double) + 1024);
}

TEST(Stream, LargeGapRestartsTheWindowWithZeroFill) {
  StreamEngine engine(SmallOptions());
  for (int64_t t = 0; t < 10; ++t) {
    ASSERT_TRUE(engine.Append("kw", "all", t, 1.0).ok());
  }
  ASSERT_TRUE(engine.Append("kw", "all", 1000, 5.0).ok());
  auto window = engine.Window(0);
  ASSERT_TRUE(window.ok());
  // The whole old window fell off; the new one ends at tick 1000 and the
  // skipped ticks are genuine zeros (the stream reported no activity).
  EXPECT_EQ(window->start_tick, 1001 - 64);
  ASSERT_EQ(window->values.size(), 64u);
  EXPECT_DOUBLE_EQ(window->values[63], 5.0);
  EXPECT_DOUBLE_EQ(window->values[0], 0.0);
  EXPECT_EQ(engine.stats().evicted_ticks, 10u);
}

// ---------------------------------------------------------------------------
// Triage ladder: cold -> warm -> escalate

TEST(Stream, TriageColdFitsThenWarmRefitsThenEscalatesOnBurst) {
  StreamOptions options = SmallOptions();
  options.refit_interval = 8;  // == forecast_horizon, see below
  StreamEngine engine(options);
  ASSERT_TRUE(engine.EnsureKeyword("quiet").ok());
  ASSERT_TRUE(engine.EnsureKeyword("burst").ok());

  // Warm-up on noisy Poisson activity (deterministic seed): both keywords
  // cross min_fit_ticks and the first flush cold-fits them. The noise
  // keeps the fit's residual floor comfortably above zero, which the
  // burst z-score needs for calibration.
  Random rng(7);
  for (int64_t t = 0; t < 40; ++t) {
    ASSERT_TRUE(
        engine.AppendById(0, t, static_cast<double>(rng.Poisson(20.0))).ok());
    ASSERT_TRUE(
        engine.AppendById(1, t, static_cast<double>(rng.Poisson(20.0))).ok());
  }
  auto first = engine.Flush();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->keywords_triaged, 2u);
  EXPECT_EQ(first->cold_fits, 2u);
  EXPECT_EQ(first->escalations, 0u);
  EXPECT_TRUE(engine.HasFit(0));
  EXPECT_TRUE(engine.HasFit(1));

  // refit_interval more ticks: "quiet" follows the model's own forecast
  // exactly (zero residual by construction — can never burst), "burst"
  // deviates by hundreds over 4 consecutive ticks.
  auto quiet_path = engine.Forecast(0);
  auto burst_path = engine.Forecast(1);
  ASSERT_TRUE(quiet_path.ok() && burst_path.ok());
  for (int64_t t = 40; t < 48; ++t) {
    const size_t k = static_cast<size_t>(t - 40);
    const double spike = (t >= 42 && t < 46) ? 500.0 : 0.0;
    ASSERT_TRUE(
        engine.AppendById(0, t, std::max(quiet_path->values[k], 0.0)).ok());
    ASSERT_TRUE(
        engine
            .AppendById(1, t, std::max(burst_path->values[k], 0.0) + spike)
            .ok());
  }
  auto second = engine.Flush();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->keywords_triaged, 2u);
  EXPECT_EQ(second->escalations, 1u);  // only the bursting keyword
  EXPECT_EQ(second->warm_refits, 1u);  // the quiet one took maintenance
  EXPECT_EQ(second->cold_fits, 0u);

  const StreamStats stats = engine.stats();
  EXPECT_EQ(stats.cold_fits, 2u);
  EXPECT_EQ(stats.warm_refits, 1u);
  EXPECT_EQ(stats.escalations, 1u);
}

TEST(Stream, KeywordsBelowMinFitTicksStayUnfitted) {
  StreamEngine engine(SmallOptions());
  for (int64_t t = 0; t < 8; ++t) {
    ASSERT_TRUE(engine.Append("tail", "all", t, 1.0).ok());
  }
  auto report = engine.Flush();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->keywords_triaged, 1u);
  EXPECT_EQ(report->cold_fits, 0u);
  EXPECT_FALSE(engine.HasFit(0));
  EXPECT_EQ(engine.Forecast(0).status().code(), StatusCode::kNotFound);
}

TEST(Stream, CleanFlushTriagesNothing) {
  StreamEngine engine(SmallOptions());
  for (int64_t t = 0; t < 40; ++t) {
    ASSERT_TRUE(engine.Append("kw", "all", t, QuietCount(t)).ok());
  }
  ASSERT_TRUE(engine.Flush().ok());
  // No appends since the last flush: nothing is dirty, nothing refits.
  auto report = engine.Flush();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->keywords_triaged, 0u);
  EXPECT_EQ(report->cold_fits + report->warm_refits + report->escalations, 0u);
}

// ---------------------------------------------------------------------------
// Forecast reads

TEST(Stream, ForecastLifecycleAndShapeChecks) {
  StreamEngine engine(SmallOptions());
  ASSERT_TRUE(engine.EnsureKeyword("kw").ok());
  EXPECT_EQ(engine.Forecast(0).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.Forecast(3).status().code(), StatusCode::kInvalidArgument);

  for (int64_t t = 0; t < 40; ++t) {
    ASSERT_TRUE(engine.AppendById(0, t, QuietCount(t)).ok());
  }
  ASSERT_TRUE(engine.Flush().ok());

  auto forecast = engine.Forecast(0);
  ASSERT_TRUE(forecast.ok()) << forecast.status().ToString();
  // The forecast starts directly past the fitted window and spans the
  // configured horizon with finite values.
  EXPECT_EQ(forecast->start_tick, 40);
  ASSERT_EQ(forecast->values.size(), 8u);
  for (const double v : forecast->values) {
    EXPECT_TRUE(std::isfinite(v));
  }

  std::vector<double> wrong(3);
  Status s = engine.ForecastInto(0, wrong, nullptr);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  std::vector<double> right(8);
  int64_t start = 0;
  ASSERT_TRUE(engine.ForecastInto(0, right, &start).ok());
  EXPECT_EQ(start, forecast->start_tick);
  for (size_t k = 0; k < right.size(); ++k) {
    EXPECT_DOUBLE_EQ(right[k], forecast->values[k]);
  }
}

TEST(Stream, ConcurrentForecastReadsDuringFlushesAreSafe) {
  // The seqlock surface: one ingest thread appending and flushing (which
  // republishes forecasts), reader threads hammering the lock-free read
  // path the whole time. TSan certifies the absence of data races; the
  // assertions certify that readers only ever observe complete
  // publications (finite values, monotone start ticks).
  StreamOptions options = SmallOptions(2);
  options.refit_interval = 4;
  StreamEngine engine(options);
  ASSERT_TRUE(engine.EnsureKeyword("kw").ok());
  Random rng(11);
  int64_t t = 0;
  for (; t < 40; ++t) {
    ASSERT_TRUE(
        engine.AppendById(0, t, static_cast<double>(rng.Poisson(20.0))).ok());
  }
  ASSERT_TRUE(engine.Flush().ok());

  std::atomic<bool> stop{false};
  std::atomic<size_t> good_reads{0};
  std::thread reader([&] {
    std::vector<double> out(8);
    int64_t last_start = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      int64_t start = 0;
      if (!engine.ForecastInto(0, out, &start).ok()) continue;
      bool finite = true;
      for (const double v : out) finite &= std::isfinite(v);
      if (finite && start >= last_start) {
        last_start = start;
        good_reads.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  for (int round = 0; round < 12; ++round) {
    for (int k = 0; k < 4; ++k, ++t) {
      ASSERT_TRUE(
          engine.AppendById(0, t, static_cast<double>(rng.Poisson(20.0)))
              .ok());
    }
    ASSERT_TRUE(engine.Flush().ok());  // republishes through the seqlock
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_GT(good_reads.load(), 0u);
}

// ---------------------------------------------------------------------------
// Determinism oracles

TEST(Stream, EncodedStateIsBitIdenticalAcrossThreadCounts) {
  const TickStreamConfig config = MixedConfig();
  const std::vector<TickRecord> records = GenerateTickStream(config);

  StreamEngine serial(SmallOptions(1));
  InternAll(&serial, config);
  Replay(&serial, records, /*flush_every=*/16);

  StreamEngine threaded(SmallOptions(8));
  InternAll(&threaded, config);
  Replay(&threaded, records, /*flush_every=*/16);

  // The streams produced fits (otherwise the oracle is vacuous).
  EXPECT_GT(serial.stats().cold_fits, 0u);
  EXPECT_EQ(serial.EncodeState(), threaded.EncodeState());
}

TEST(Stream, ReplayingTheSameStreamReproducesTheSameState) {
  const TickStreamConfig config = MixedConfig();
  const std::vector<TickRecord> records = GenerateTickStream(config);
  std::vector<uint8_t> states[2];
  for (auto& state : states) {
    StreamEngine engine(SmallOptions());
    InternAll(&engine, config);
    Replay(&engine, records, /*flush_every=*/16);
    state = engine.EncodeState();
  }
  EXPECT_FALSE(states[0].empty());
  EXPECT_EQ(states[0], states[1]);
}

TEST(Stream, SaveRestoreMidStreamConvergesWithTheOriginal) {
  const TickStreamConfig config = MixedConfig();
  const std::vector<TickRecord> records = GenerateTickStream(config);
  // Split mid-burst so the restored engine must carry warm models, dirty
  // flags, and partially-filled rings — not just a clean checkpoint.
  const size_t split = records.size() / 2;

  StreamEngine original(SmallOptions());
  InternAll(&original, config);
  const std::vector<TickRecord> first(records.begin(),
                                      records.begin() + split);
  Replay(&original, first, /*flush_every=*/16);

  const std::string path = TempPath("stream_mid.state");
  ASSERT_TRUE(original.SaveState(path).ok());
  auto restored = StreamEngine::LoadState(path, SmallOptions());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(original.EncodeState(), (*restored)->EncodeState());

  // Both engines absorb the rest of the stream and must stay in lockstep.
  const std::vector<TickRecord> rest(records.begin() + split, records.end());
  Replay(&original, rest, /*flush_every=*/16);
  Replay(restored->get(), rest, /*flush_every=*/16);
  EXPECT_EQ(original.EncodeState(), (*restored)->EncodeState());

  // Forecasts agree too (they are part of the encoded state, but compare
  // through the public read path for good measure).
  for (size_t i = 0; i < original.num_keywords(); ++i) {
    ASSERT_EQ(original.HasFit(i), (*restored)->HasFit(i)) << i;
    if (!original.HasFit(i)) continue;
    auto a = original.Forecast(i);
    auto b = (*restored)->Forecast(i);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->start_tick, b->start_tick);
    for (size_t k = 0; k < a->values.size(); ++k) {
      EXPECT_DOUBLE_EQ(a->values[k], b->values[k]) << i << ":" << k;
    }
  }
}

// ---------------------------------------------------------------------------
// Persistence error paths

TEST(Stream, LoadStateReportsMissingFile) {
  auto loaded = StreamEngine::LoadState(TempPath("no_such.state"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(Stream, LoadStateRejectsForeignMagic) {
  const std::string path = TempPath("foreign.state");
  std::ofstream os(path, std::ios::binary);
  os << "NOTSTM00" << std::string(64, '\0');
  os.close();
  auto loaded = StreamEngine::LoadState(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("bad magic"), std::string::npos);
}

TEST(Stream, LoadStateDetectsCorruptedPayload) {
  StreamEngine engine(SmallOptions());
  for (int64_t t = 0; t < 40; ++t) {
    ASSERT_TRUE(engine.Append("kw", "all", t, QuietCount(t)).ok());
  }
  ASSERT_TRUE(engine.Flush().ok());
  const std::string path = TempPath("corrupt.state");
  ASSERT_TRUE(engine.SaveState(path).ok());

  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekg(64, std::ios::beg);  // well inside the payload
  const char byte = static_cast<char>(f.get());
  f.seekp(64, std::ios::beg);
  f.put(static_cast<char>(byte ^ 0x5a));  // guaranteed to differ
  f.close();

  auto loaded = StreamEngine::LoadState(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

// ---------------------------------------------------------------------------
// Guard integration

TEST(Stream, FlushHonorsCancellation) {
  StreamOptions options = SmallOptions();
  options.cancel = CancellationToken::Cancellable();
  StreamEngine engine(options);
  for (int64_t t = 0; t < 40; ++t) {
    ASSERT_TRUE(engine.Append("kw", "all", t, QuietCount(t)).ok());
  }
  options.cancel.Cancel();
  auto report = engine.Flush();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kCancelled);
  EXPECT_FALSE(engine.HasFit(0));
}

// Regression (PR 9): a persisted forecast_horizon that fails the
// constructor's invariant (0 here — the constructor normalizes it to 1)
// must be REJECTED with a located InvalidArgument. Before the fix the
// engine was rebuilt with the normalized horizon while the payload's
// forecast cells were sized by the raw value, so every forecast read
// after the first keyword was misaligned.
TEST(Stream, DecodeStateRejectsDenormalizedForecastHorizon) {
  const TickStreamConfig config = MixedConfig();
  StreamEngine engine(SmallOptions());
  InternAll(&engine, config);
  Replay(&engine, GenerateTickStream(config), /*flush_every=*/16);
  std::vector<uint8_t> state = engine.EncodeState();

  // forecast_horizon is the 6th u64 of the options block: bytes [40, 48).
  ASSERT_GE(state.size(), 48u);
  for (size_t i = 40; i < 48; ++i) {
    state[i] = 0;
  }
  auto decoded = StreamEngine::DecodeState(state.data(), state.size(),
                                           SmallOptions(), "patched-state");
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument)
      << decoded.status().ToString();
  EXPECT_NE(decoded.status().message().find("forecast_horizon"),
            std::string::npos)
      << decoded.status().ToString();
  EXPECT_NE(decoded.status().message().find("patched-state"),
            std::string::npos)
      << decoded.status().ToString();

  // The unpatched payload still decodes (the patch, not the codec, is
  // what broke it).
  std::vector<uint8_t> pristine = engine.EncodeState();
  auto ok = StreamEngine::DecodeState(pristine.data(), pristine.size(),
                                      SmallOptions(), "pristine-state");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ((*ok)->EncodeState(), pristine);
}

}  // namespace
}  // namespace dspot
