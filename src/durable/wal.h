#ifndef DSPOT_DURABLE_WAL_H_
#define DSPOT_DURABLE_WAL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "durable/durable_file.h"

namespace dspot {

/// The write-ahead log: fixed-size CRC-framed records appended through
/// DurableFile. One WAL segment file holds the records logged since the
/// checkpoint it is named after; DurableEngine rotates to a fresh segment
/// at every checkpoint and prunes segments that no surviving checkpoint
/// needs.
///
/// Record frame (48 bytes, little-endian, 8-byte aligned):
///
///   u32 crc        CRC-32 of everything after this field, extension
///                  included — a torn or flipped frame cannot pass
///   u32 type_ext   low 8 bits: record type; high 24 bits: extension
///                  length in bytes (multiple of 8, kIntern only)
///   u64 seq        strictly increasing by 1 across the whole log
///   u64 a, b, c    payload fields (meaning per type, see WalRecordType)
///   u64 reserved   zero (keeps the frame a round 48 bytes)
///   [extension]    ext_len bytes: keyword name, zero-padded to 8 bytes
///
/// The fixed frame makes torn-tail detection trivial: a crash mid-append
/// leaves fewer than 48 valid bytes (or a frame whose CRC fails) at the
/// very end of the last segment, and recovery truncates there. A CRC
/// failure that is *followed* by a valid frame is not a torn tail — it is
/// mid-stream corruption, reported as located kDataLoss, never silently
/// skipped.

enum class WalRecordType : uint8_t {
  /// A keyword was interned: a = keyword id, extension = keyword name.
  /// Replay re-interns and verifies the id matches (intern order is
  /// part of the engine state).
  kIntern = 1,
  /// One accepted append: a = keyword id, b = timestamp (two's
  /// complement), c = IEEE-754 bit pattern of the count.
  kAppend = 2,
  /// A completed Flush(). Replay re-runs the flush, reproducing the
  /// triage/refit work deterministically.
  kFlushMark = 3,
  /// First record of a fresh segment: a = the sequence number of the
  /// checkpoint the segment follows. Replay no-op; a consistency anchor
  /// for debugging and tests.
  kCheckpointRef = 4,
};

struct WalRecord {
  WalRecordType type = WalRecordType::kAppend;
  uint64_t seq = 0;
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;
  std::string name;  ///< kIntern extension
};

/// Fixed frame size; extensions are appended in 8-byte units.
inline constexpr size_t kWalFrameBytes = 48;
/// Cap on the kIntern name extension (also the decode-time guard that a
/// corrupt length cannot drive a runaway read).
inline constexpr size_t kWalMaxExtBytes = 4096;

/// Appends records to one segment file. Single writer; Sync() placement
/// is the caller's FsyncPolicy decision.
class WalWriter {
 public:
  /// Opens (creating or continuing) a segment whose next record will
  /// carry `next_seq`.
  static StatusOr<WalWriter> Open(const std::string& path, uint64_t next_seq,
                                  const RetryPolicy& retry);

  /// Appends one record, assigning it the next sequence number (returned
  /// through `seq_out` when non-null). `name` must be empty except for
  /// kIntern and at most kWalMaxExtBytes long.
  Status Append(WalRecordType type, uint64_t a, uint64_t b, uint64_t c,
                std::string_view name = {}, uint64_t* seq_out = nullptr);

  Status Sync() { return file_.Sync(); }

  uint64_t next_seq() const { return next_seq_; }
  uint64_t size() const { return file_.size(); }
  const std::string& path() const { return file_.path(); }

 private:
  WalWriter(DurableFile file, uint64_t next_seq)
      : file_(std::move(file)), next_seq_(next_seq) {}

  DurableFile file_;
  uint64_t next_seq_ = 1;
  std::vector<uint8_t> frame_;  ///< encode scratch, reused across appends
};

/// One parsed segment.
struct WalSegmentScan {
  std::vector<WalRecord> records;
  /// Length of the clean prefix; bytes past it (if any) are a torn tail.
  uint64_t valid_bytes = 0;
  /// Bytes past valid_bytes that recovery should truncate (only ever
  /// non-zero for the final segment of the log).
  uint64_t truncated_bytes = 0;
};

/// Parses a segment file. Records must carry consecutive sequence numbers
/// starting at `expected_first_seq`. When `allow_torn_tail` is set (the
/// log's final segment), an invalid trailing region with no valid frame
/// after it is reported as truncated_bytes rather than an error. Any
/// invalid frame *followed* by a valid one — or any invalid frame in a
/// non-final segment — returns located kDataLoss.
StatusOr<WalSegmentScan> ReadWalSegment(const std::string& path,
                                        uint64_t expected_first_seq,
                                        bool allow_torn_tail);

}  // namespace dspot

#endif  // DSPOT_DURABLE_WAL_H_
