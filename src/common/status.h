#ifndef DSPOT_COMMON_STATUS_H_
#define DSPOT_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace dspot {

/// Error codes used across the library. Modeled on the RocksDB `Status`
/// idiom: recoverable failures are reported through return values rather
/// than exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kFailedPrecondition,
  kNumericalError,
  kIoError,
  kUnimplemented,
  kInternal,
  /// A time budget (Deadline) ran out before the operation finished. The
  /// operation may have produced a usable partial result; see the guard
  /// library's FitHealth contract.
  kDeadlineExceeded,
  /// A CancellationToken was triggered; the operation stopped cooperatively.
  kCancelled,
  /// Stored data (e.g. a model snapshot) is unrecoverably corrupt: checksum
  /// mismatch, truncation inside a declared payload, or an impossible value
  /// for the stated format version.
  kDataLoss,
  /// A bounded resource (an admission queue, a byte budget) is full and the
  /// request was shed rather than blocking. Retryable by design: unlike
  /// kInvalidArgument the same request can succeed later.
  kResourceExhausted,
};

/// Lightweight result-of-an-operation value. A `Status` is either OK or
/// carries an error code plus a human-readable message. All fallible public
/// APIs in this library return `Status` (or `StatusOr<T>`).
///
/// Typical use:
///
///   Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per error code.
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NumericalError(std::string msg) {
    return Status(StatusCode::kNumericalError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code name>: <message>"; intended for logs and test output.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Returns the canonical name of `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Propagates errors: evaluates `expr` and returns from the enclosing
/// function if the resulting Status is not OK.
#define DSPOT_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::dspot::Status _dspot_status_tmp = (expr);      \
    if (!_dspot_status_tmp.ok()) {                   \
      return _dspot_status_tmp;                      \
    }                                                \
  } while (false)

}  // namespace dspot

#endif  // DSPOT_COMMON_STATUS_H_
