// Regression tests for the zero-allocation workspace pipeline:
//
//  * bit-identity between the buffer-writing kernels and the allocating
//    wrappers they replaced on the hot paths (SimulateSivInto vs
//    SimulateSiv, workspace LevenbergMarquardt vs the allocating overload,
//    workspace TotalCostBits vs the plain one);
//  * ScheduleCache serves exactly what the builders produce and rebuilds
//    when its inputs change;
//  * an operator-new counting hook proving that warm workspace-based LM
//    iterations and SimulateSivInto calls allocate nothing.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <span>
#include <vector>

#include "core/cost.h"
#include "core/params.h"
#include "core/schedule_cache.h"
#include "core/shock.h"
#include "core/simulate.h"
#include "datagen/catalog.h"
#include "datagen/generator.h"
#include "optimize/levenberg_marquardt.h"
#include "timeseries/series.h"

// --- Global operator-new counting hook --------------------------------
//
// Counts every scalar/array heap allocation while enabled. Only the six
// non-aligned forms are replaced; they stay malloc/free-compatible with
// the library defaults, and nothing in the solver uses over-aligned
// types. The counter is process-wide, so counted regions must not run
// concurrently with other allocating threads (all counted tests below
// run the solver serially).

namespace {
std::atomic<bool> g_count_allocations{false};
std::atomic<std::size_t> g_allocation_count{0};
}  // namespace

// GCC cannot see that the replaced operator new below is malloc-based, so
// it flags the free() in the matching operator delete; the pairing is the
// standard malloc/free replacement pattern and is correct.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  if (g_count_allocations.load(std::memory_order_relaxed)) {
    g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#pragma GCC diagnostic pop

namespace dspot {
namespace {

/// RAII window that zeroes the counter on entry and reads it on exit.
class AllocationCounter {
 public:
  AllocationCounter() {
    g_allocation_count.store(0, std::memory_order_relaxed);
    g_count_allocations.store(true, std::memory_order_relaxed);
  }
  ~AllocationCounter() { g_count_allocations.store(false, std::memory_order_relaxed); }
  std::size_t count() const {
    return g_allocation_count.load(std::memory_order_relaxed);
  }
};

// --- Shared fixtures ---------------------------------------------------

/// Deterministic pseudo-noise in [-0.5, 0.5) from a tiny LCG; keeps the
/// test data reproducible without <random> (whose distributions are not
/// specified bit-for-bit across standard libraries).
double Noise(uint64_t* state) {
  *state = *state * 6364136223846793005ULL + 1442695040888963407ULL;
  return static_cast<double>((*state >> 33) & 0xFFFFFF) / 16777216.0 - 0.5;
}

/// Synthetic observations of y = a * exp(-b * t) + c with noise, the
/// classic nonlinear least-squares benchmark for the LM identity tests.
std::vector<double> ExpDecayData(size_t m) {
  std::vector<double> data(m);
  uint64_t state = 42;
  for (size_t t = 0; t < m; ++t) {
    data[t] = 5.0 * std::exp(-0.35 * static_cast<double>(t)) + 1.5 +
              0.05 * Noise(&state);
  }
  return data;
}

void ExpDecayResiduals(std::span<const double> p,
                       std::span<const double> data, std::span<double> r) {
  for (size_t t = 0; t < data.size(); ++t) {
    r[t] = p[0] * std::exp(-p[1] * static_cast<double>(t)) + p[2] - data[t];
  }
}

/// A parameter set with shocks + growth covering every schedule branch.
ModelParamSet TestParams(size_t n_ticks) {
  ModelParamSet params;
  params.num_keywords = 1;
  params.num_locations = 1;
  params.num_ticks = n_ticks;
  params.global.resize(1);
  params.global[0].population = 800.0;
  params.global[0].beta = 0.3;
  params.global[0].delta = 0.12;
  params.global[0].gamma = 0.04;
  params.global[0].i0 = 2.0;
  params.global[0].growth_rate = 0.01;
  params.global[0].growth_start = n_ticks / 3;
  Shock annual;
  annual.keyword = 0;
  annual.period = 52;
  annual.start = 10;
  annual.width = 3;
  annual.base_strength = 1.4;
  annual.global_strengths = {1.4, 2.0, 1.1};
  Shock oneshot;
  oneshot.keyword = 0;
  oneshot.period = Shock::kNonCyclic;
  oneshot.start = 80;
  oneshot.width = 5;
  oneshot.base_strength = 3.0;
  oneshot.global_strengths = {3.0};
  params.shocks = {annual, oneshot};
  return params;
}

// --- Bit-identity: simulate kernels -----------------------------------

TEST(WorkspaceIdentity, SimulateSivIntoMatchesSimulateSiv) {
  const size_t n = 160;
  SivInputs inputs;
  inputs.population = 500.0;
  inputs.beta = 0.4;
  inputs.delta = 0.15;
  inputs.gamma = 0.05;
  inputs.i0 = 3.0;
  inputs.epsilon.assign(n, 1.0);
  for (size_t t = 30; t < 36; ++t) inputs.epsilon[t] += 2.5;
  inputs.eta = BuildEta(0.02, 40, n);

  const Series reference = SimulateSiv(inputs, n);

  const SivDynamics dynamics{inputs.population, inputs.beta, inputs.delta,
                             inputs.gamma, inputs.i0};
  std::vector<double> buffer(n);
  SimulateSivInto(dynamics, inputs.epsilon, inputs.eta, buffer);
  ASSERT_EQ(reference.size(), buffer.size());
  for (size_t t = 0; t < n; ++t) {
    EXPECT_EQ(reference[t], buffer[t]) << "tick " << t;
  }

  // Empty schedules mean eps = 1 / eta = 0, same as the wrapper's default.
  SivInputs plain = inputs;
  plain.epsilon.clear();
  plain.eta.clear();
  const Series plain_reference = SimulateSiv(plain, n);
  SimulateSivInto(dynamics, {}, {}, buffer);
  for (size_t t = 0; t < n; ++t) {
    EXPECT_EQ(plain_reference[t], buffer[t]) << "tick " << t;
  }
}

TEST(WorkspaceIdentity, SimulateGlobalIntoMatchesSimulateGlobal) {
  const size_t n = 156;
  ModelParamSet params = TestParams(n);

  const Series reference = SimulateGlobal(params, 0, n);
  ScheduleCache cache;
  std::vector<double> buffer(n);
  SimulateGlobalInto(params, 0, &cache, buffer);
  for (size_t t = 0; t < n; ++t) {
    EXPECT_EQ(reference[t], buffer[t]) << "tick " << t;
  }

  // Second call hits the memoized schedules; output must not change.
  std::vector<double> again(n);
  SimulateGlobalInto(params, 0, &cache, again);
  EXPECT_EQ(buffer, again);

  // Mutating a strength must invalidate the cached epsilon schedule.
  params.shocks[0].global_strengths[1] = 5.0;
  const Series mutated_reference = SimulateGlobal(params, 0, n);
  SimulateGlobalInto(params, 0, &cache, buffer);
  for (size_t t = 0; t < n; ++t) {
    EXPECT_EQ(mutated_reference[t], buffer[t]) << "tick " << t;
  }
}

TEST(WorkspaceIdentity, ScheduleCacheMatchesBuilders) {
  const size_t n = 120;
  ModelParamSet params = TestParams(n);
  ScheduleCache cache;

  const std::vector<double> eps_ref =
      BuildGlobalEpsilon(params.shocks, 0, n);
  std::span<const double> eps = cache.GlobalEpsilon(params.shocks, 0, n);
  ASSERT_EQ(eps.size(), eps_ref.size());
  for (size_t t = 0; t < n; ++t) EXPECT_EQ(eps[t], eps_ref[t]);

  const std::vector<double> eta_ref = BuildEta(0.01, n / 3, n);
  std::span<const double> eta = cache.Eta(0.01, n / 3, n);
  ASSERT_EQ(eta.size(), eta_ref.size());
  for (size_t t = 0; t < eta.size(); ++t) EXPECT_EQ(eta[t], eta_ref[t]);

  // Disabled growth stays an empty schedule through the cache too.
  EXPECT_TRUE(cache.Eta(0.0, 10, n).empty());
  EXPECT_TRUE(cache.Eta(0.5, kNpos, n).empty());

  // A changed shock set must rebuild, not serve the stale slot.
  params.shocks[1].base_strength = 7.0;
  params.shocks[1].global_strengths = {7.0};
  const std::vector<double> eps_ref2 =
      BuildGlobalEpsilon(params.shocks, 0, n);
  std::span<const double> eps2 = cache.GlobalEpsilon(params.shocks, 0, n);
  for (size_t t = 0; t < n; ++t) EXPECT_EQ(eps2[t], eps_ref2[t]);
}

// --- Bit-identity: Levenberg-Marquardt --------------------------------

TEST(WorkspaceIdentity, WorkspaceLmMatchesAllocatingLm) {
  const std::vector<double> data = ExpDecayData(48);
  const std::vector<double> initial = {1.0, 0.05, 0.0};
  Bounds bounds;
  bounds.lower = {0.0, 0.0, -10.0};
  bounds.upper = {50.0, 5.0, 10.0};
  LmOptions options;

  ResidualFn allocating_fn = [&data](const std::vector<double>& p,
                                     std::vector<double>* r) {
    r->resize(data.size());
    ExpDecayResiduals(p, data, *r);
    return Status::Ok();
  };
  auto allocating = LevenbergMarquardt(allocating_fn, initial, bounds, options);
  ASSERT_TRUE(allocating.ok()) << allocating.status().ToString();

  ResidualIntoFn into_fn = [&data](std::span<const double> p,
                                   std::span<double> r) {
    ExpDecayResiduals(p, data, r);
    return Status::Ok();
  };
  LmWorkspace workspace;
  auto ws = LevenbergMarquardt(into_fn, data.size(), initial, bounds, options,
                               &workspace);
  ASSERT_TRUE(ws.ok()) << ws.status().ToString();

  EXPECT_TRUE(ws->converged);
  ASSERT_EQ(allocating->params.size(), ws->params.size());
  for (size_t k = 0; k < ws->params.size(); ++k) {
    EXPECT_EQ(allocating->params[k], ws->params[k]) << "param " << k;
  }
  EXPECT_EQ(allocating->final_cost, ws->final_cost);
  EXPECT_EQ(allocating->initial_cost, ws->initial_cost);
  EXPECT_EQ(allocating->iterations, ws->iterations);
  EXPECT_EQ(allocating->converged, ws->converged);

  // Reusing the (now differently-shaped) workspace must not perturb a
  // second solve: re-running yields the exact same solution.
  auto again = LevenbergMarquardt(into_fn, data.size(), initial, bounds,
                                  options, &workspace);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->params, ws->params);
  EXPECT_EQ(again->final_cost, ws->final_cost);
}

// --- Bit-identity: workspace TotalCostBits ----------------------------

TEST(WorkspaceIdentity, TotalCostBitsWorkspaceMatchesAllocating) {
  GeneratorConfig config = GoogleTrendsConfig(7);
  config.n_ticks = 104;
  config.num_locations = 3;
  auto generated = GenerateTensor({GrammyScenario()}, config);
  ASSERT_TRUE(generated.ok());

  ModelParamSet params = TestParams(config.n_ticks);
  params.num_locations = config.num_locations;

  const double reference = TotalCostBits(generated->tensor, params);
  CostWorkspace workspace;
  const double with_workspace =
      TotalCostBits(generated->tensor, params, &workspace);
  EXPECT_EQ(reference, with_workspace);

  // Warm reuse of the same workspace stays identical.
  EXPECT_EQ(reference, TotalCostBits(generated->tensor, params, &workspace));
}

// --- Allocation guards -------------------------------------------------

TEST(WorkspaceAllocation, WarmSimulateSivIntoAllocatesNothing) {
  const size_t n = 200;
  std::vector<double> epsilon(n, 1.0);
  for (size_t t = 50; t < 55; ++t) epsilon[t] += 2.0;
  const std::vector<double> eta = BuildEta(0.015, 60, n);
  const SivDynamics dynamics{600.0, 0.35, 0.1, 0.05, 2.0};
  std::vector<double> out(n);

  SimulateSivInto(dynamics, epsilon, eta, out);  // warm-up (no-op here)

  AllocationCounter counter;
  for (int rep = 0; rep < 100; ++rep) {
    SimulateSivInto(dynamics, epsilon, eta, out);
  }
  EXPECT_EQ(counter.count(), 0u);
}

TEST(WorkspaceAllocation, WarmLmIterationsAllocateNothing) {
  const std::vector<double> data = ExpDecayData(48);
  // Start far from the optimum with all tolerances off, so the solver
  // performs exactly max_iterations accepted steps in both runs below.
  const std::vector<double> initial = {0.5, 0.01, 0.0};
  Bounds bounds;
  bounds.lower = {0.0, 0.0, -10.0};
  bounds.upper = {50.0, 5.0, 10.0};
  LmOptions options;
  options.cost_tolerance = 0.0;
  options.step_tolerance = 0.0;
  options.gradient_tolerance = 0.0;

  ResidualIntoFn into_fn = [&data](std::span<const double> p,
                                   std::span<double> r) {
    ExpDecayResiduals(p, data, r);
    return Status::Ok();
  };
  LmWorkspace workspace;

  // Warm the workspace at the largest iteration budget used below.
  options.max_iterations = 8;
  auto warmup = LevenbergMarquardt(into_fn, data.size(), initial, bounds,
                                   options, &workspace);
  ASSERT_TRUE(warmup.ok()) << warmup.status().ToString();
  ASSERT_EQ(warmup->iterations, 8);

  const auto count_solve = [&](int max_iterations) {
    options.max_iterations = max_iterations;
    AllocationCounter counter;
    auto result = LevenbergMarquardt(into_fn, data.size(), initial, bounds,
                                     options, &workspace);
    const std::size_t count = counter.count();
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result->iterations, max_iterations);
    return count;
  };

  const std::size_t short_solve = count_solve(2);
  const std::size_t long_solve = count_solve(8);

  // The per-solve overhead (returning LmResult::params) is constant; the
  // six extra iterations of the long solve must allocate nothing.
  EXPECT_EQ(long_solve, short_solve)
      << "steady-state LM iterations allocate (short=" << short_solve
      << ", long=" << long_solve << ")";
}

}  // namespace
}  // namespace dspot
