// Unit tests for src/linalg: Matrix, vector ops and the dense solvers.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "linalg/matrix.h"
#include "linalg/solvers.h"
#include "linalg/vector_ops.h"

namespace dspot {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(Matrix, IdentityAndMultiply) {
  Matrix id = Matrix::Identity(3);
  Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}, {7, 8, 10}});
  Matrix prod = a * id;
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(prod(r, c), a(r, c));
    }
  }
}

TEST(Matrix, MultiplyKnownResult) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MatrixVectorProduct) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  std::vector<double> v = {1.0, -1.0};
  std::vector<double> out = a * v;
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], -1.0);
  EXPECT_DOUBLE_EQ(out[1], -1.0);
}

TEST(Matrix, TransposeRoundTrip) {
  Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix t = a.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  Matrix tt = t.Transposed();
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(tt(r, c), a(r, c));
    }
  }
}

TEST(Matrix, GramMatchesExplicitProduct) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  Matrix gram = a.Gram();
  Matrix expected = a.Transposed() * a;
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 2; ++c) {
      EXPECT_NEAR(gram(r, c), expected(r, c), 1e-12);
    }
  }
}

TEST(Matrix, TransposedTimesMatchesExplicit) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  std::vector<double> v = {1.0, 0.5, -1.0};
  std::vector<double> got = a.TransposedTimes(v);
  std::vector<double> expected = a.Transposed() * v;
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], expected[i], 1e-12);
  }
}

TEST(Matrix, AddSubScaleDiagonal) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{4, 3}, {2, 1}});
  Matrix sum = a + b;
  Matrix diff = a - b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(diff(1, 1), 3.0);
  a.Scale(2.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 6.0);
  a.AddToDiagonal(1.0);
  EXPECT_DOUBLE_EQ(a(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(a(1, 1), 9.0);
}

TEST(Matrix, Norms) {
  Matrix a = Matrix::FromRows({{3, 0}, {0, 4}});
  EXPECT_DOUBLE_EQ(a.FrobeniusNorm(), 5.0);
  EXPECT_DOUBLE_EQ(a.MaxAbs(), 4.0);
  EXPECT_DOUBLE_EQ(Matrix().MaxAbs(), 0.0);
}

TEST(VectorOps, DotAndNorms) {
  const std::vector<double> a = {1, 2, 3};
  const std::vector<double> b = {4, -5, 6};
  EXPECT_DOUBLE_EQ(Dot(a, b), 12.0);
  EXPECT_DOUBLE_EQ(Norm2({3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(NormInf(b), 6.0);
  EXPECT_DOUBLE_EQ(SumSquares(a), 14.0);
}

TEST(VectorOps, AddSubScaleAxpy) {
  std::vector<double> a = {1, 2};
  const std::vector<double> b = {3, 4};
  EXPECT_EQ(Add(a, b), (std::vector<double>{4, 6}));
  EXPECT_EQ(Sub(a, b), (std::vector<double>{-2, -2}));
  EXPECT_EQ(Scaled(a, 3.0), (std::vector<double>{3, 6}));
  Axpy(2.0, b, &a);
  EXPECT_EQ(a, (std::vector<double>{7, 10}));
}

TEST(Solvers, CholeskySolvesSpdSystem) {
  Matrix a = Matrix::FromRows({{4, 2}, {2, 3}});
  std::vector<double> x_true = {1.0, -2.0};
  std::vector<double> b = a * x_true;
  auto x = CholeskySolve(a, b);
  ASSERT_TRUE(x.ok()) << x.status().ToString();
  EXPECT_NEAR((*x)[0], 1.0, 1e-10);
  EXPECT_NEAR((*x)[1], -2.0, 1e-10);
}

TEST(Solvers, CholeskyRejectsIndefinite) {
  Matrix a = Matrix::FromRows({{1, 2}, {2, 1}});  // eigenvalues 3, -1
  auto r = CholeskyFactor(a);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNumericalError);
}

TEST(Solvers, CholeskyRejectsNonSquare) {
  Matrix a(2, 3);
  EXPECT_EQ(CholeskyFactor(a).status().code(), StatusCode::kInvalidArgument);
}

TEST(Solvers, RegularizedLdltHandlesSingular) {
  // Rank-1 matrix: plain Cholesky would fail; the regularized solve
  // returns a finite solution.
  Matrix a = Matrix::FromRows({{1, 1}, {1, 1}});
  auto x = RegularizedLdltSolve(a, {1.0, 1.0});
  ASSERT_TRUE(x.ok()) << x.status().ToString();
  EXPECT_TRUE(std::isfinite((*x)[0]));
  EXPECT_TRUE(std::isfinite((*x)[1]));
}

TEST(Solvers, RegularizedLdltMatchesCholeskyOnSpd) {
  Matrix a = Matrix::FromRows({{5, 1, 0}, {1, 4, 1}, {0, 1, 3}});
  std::vector<double> b = {1, 2, 3};
  auto x1 = CholeskySolve(a, b);
  auto x2 = RegularizedLdltSolve(a, b);
  ASSERT_TRUE(x1.ok() && x2.ok());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR((*x1)[i], (*x2)[i], 1e-9);
  }
}

TEST(Solvers, QrLeastSquaresExactSystem) {
  Matrix a = Matrix::FromRows({{2, 0}, {0, 3}});
  auto x = QrLeastSquares(a, {4.0, 9.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 2.0, 1e-10);
  EXPECT_NEAR((*x)[1], 3.0, 1e-10);
}

TEST(Solvers, QrLeastSquaresOverdetermined) {
  // Fit y = a + b*t through noisy-free collinear points: exact recovery.
  Matrix a = Matrix::FromRows({{1, 0}, {1, 1}, {1, 2}, {1, 3}});
  std::vector<double> b = {1.0, 3.0, 5.0, 7.0};  // y = 1 + 2t
  auto x = QrLeastSquares(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-10);
  EXPECT_NEAR((*x)[1], 2.0, 1e-10);
}

TEST(Solvers, QrRejectsUnderdetermined) {
  Matrix a(1, 2);
  EXPECT_EQ(QrLeastSquares(a, {1.0}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Solvers, QrRejectsRankDeficient) {
  Matrix a = Matrix::FromRows({{1, 1}, {2, 2}, {3, 3}});
  EXPECT_EQ(QrLeastSquares(a, {1.0, 2.0, 3.0}).status().code(),
            StatusCode::kNumericalError);
}

TEST(Solvers, LuSolveGeneralSystem) {
  Matrix a = Matrix::FromRows({{0, 2, 1}, {1, -2, -3}, {-1, 1, 2}});
  std::vector<double> x_true = {2.0, -1.0, 3.0};
  std::vector<double> b = a * x_true;
  auto x = LuSolve(a, b);
  ASSERT_TRUE(x.ok()) << x.status().ToString();
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR((*x)[i], x_true[i], 1e-9);
  }
}

TEST(Solvers, LuRejectsSingular) {
  Matrix a = Matrix::FromRows({{1, 2}, {2, 4}});
  EXPECT_EQ(LuSolve(a, {1.0, 2.0}).status().code(),
            StatusCode::kNumericalError);
}

/// Property sweep: random SPD systems of several sizes are solved to high
/// accuracy by both Cholesky and the regularized LDLT.
class SpdSolveProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(SpdSolveProperty, RandomSystemsSolveAccurately) {
  const size_t n = GetParam();
  Random rng(1000 + n);
  for (int rep = 0; rep < 5; ++rep) {
    Matrix g(n, n);
    for (size_t r = 0; r < n; ++r) {
      for (size_t c = 0; c < n; ++c) {
        g(r, c) = rng.Gaussian();
      }
    }
    Matrix a = g.Gram();  // SPD (almost surely)
    a.AddToDiagonal(0.5);
    std::vector<double> x_true(n);
    for (double& v : x_true) v = rng.Gaussian();
    std::vector<double> b = a * x_true;
    auto x1 = CholeskySolve(a, b);
    auto x2 = RegularizedLdltSolve(a, b);
    ASSERT_TRUE(x1.ok() && x2.ok());
    EXPECT_LT(Norm2(Sub(*x1, x_true)), 1e-6 * (1.0 + Norm2(x_true)));
    EXPECT_LT(Norm2(Sub(*x2, x_true)), 1e-6 * (1.0 + Norm2(x_true)));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SpdSolveProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

}  // namespace
}  // namespace dspot
