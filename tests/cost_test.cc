// Unit tests for src/core/cost: the MDL terms of Eq. (2).

#include <gtest/gtest.h>

#include "core/cost.h"
#include "core/simulate.h"
#include "mdl/mdl.h"

namespace dspot {
namespace {

Shock MakeShock(size_t occurrences, double base, size_t deviations) {
  Shock s;
  s.keyword = 0;
  s.period = 52;
  s.start = 0;
  s.width = 2;
  s.base_strength = base;
  s.global_strengths.assign(occurrences, base);
  for (size_t m = 0; m < deviations && m < occurrences; ++m) {
    s.global_strengths[m] = base + 1.0;
  }
  return s;
}

TEST(Cost, SharedStrengthCostsOneFloat) {
  const Shock s = MakeShock(10, 2.0, 0);
  const double bits = ShockModelCostBits(s, 4, 8, 500, false);
  // log2(4) + 3*log2(500) + one float.
  EXPECT_NEAR(bits, 2.0 + 3.0 * LogChoiceCost(500) + kFloatCostBits, 1e-9);
}

TEST(Cost, DeviationsChargedIndividually) {
  const Shock none = MakeShock(10, 2.0, 0);
  const Shock two = MakeShock(10, 2.0, 2);
  const double d = ShockModelCostBits(two, 4, 8, 500, false) -
                   ShockModelCostBits(none, 4, 8, 500, false);
  EXPECT_NEAR(d, 2.0 * (LogChoiceCost(10) + kFloatCostBits), 1e-9);
}

TEST(Cost, LocalStrengthsChargedWhenIncluded) {
  Shock s = MakeShock(3, 2.0, 0);
  s.local_strengths = Matrix(3, 4);
  s.local_strengths(0, 0) = 1.0;
  s.local_strengths(2, 3) = 5.0;
  const double without = ShockModelCostBits(s, 4, 8, 500, false);
  const double with = ShockModelCostBits(s, 4, 8, 500, true);
  const double per_entry =
      LogChoiceCost(4) + LogChoiceCost(8) + LogChoiceCost(500) +
      kFloatCostBits;
  EXPECT_NEAR(with - without, 2.0 * per_entry, 1e-9);
}

TEST(Cost, ShockTensorIncludesLogStarOfCount) {
  std::vector<Shock> shocks = {MakeShock(2, 1.0, 0), MakeShock(3, 1.0, 0)};
  const double total = ShockTensorModelCostBits(shocks, 4, 8, 500, false);
  const double parts = ShockModelCostBits(shocks[0], 4, 8, 500, false) +
                       ShockModelCostBits(shocks[1], 4, 8, 500, false);
  EXPECT_NEAR(total - parts, LogStar(3.0), 1e-9);
}

TEST(Cost, GrowthTermPaysExtra) {
  KeywordGlobalParams without;
  KeywordGlobalParams with = without;
  with.growth_rate = 0.2;
  with.growth_start = 100;
  EXPECT_GT(KeywordGlobalModelCostBits(with, 500),
            KeywordGlobalModelCostBits(without, 500));
}

TEST(Cost, BetterFitCodesCheaper) {
  // Same model structure, residuals differ: lower-variance residuals give
  // a lower total.
  Series data(std::vector<double>{10, 12, 11, 13, 12, 11, 10, 12});
  Series good(std::vector<double>{10, 12, 11, 13, 12, 11, 10, 12});
  Series bad(std::vector<double>{0, 20, 0, 20, 0, 20, 0, 20});
  KeywordGlobalParams params;
  const double cost_good =
      GlobalKeywordCostBits(data, good, params, {}, 0, 1, 8);
  const double cost_bad = GlobalKeywordCostBits(data, bad, params, {}, 0, 1, 8);
  EXPECT_LT(cost_good, cost_bad);
}

TEST(Cost, LocalSequenceCostCountsStrengths) {
  Series data(std::vector<double>{1, 2, 3});
  Series est = data;
  const double c0 = LocalSequenceCostBits(data, est, 0, 2, 4, 100);
  const double c3 = LocalSequenceCostBits(data, est, 3, 2, 4, 100);
  const double per = LogChoiceCost(2) + LogChoiceCost(4) + LogChoiceCost(100) +
                     kFloatCostBits;
  EXPECT_NEAR(c3 - c0, 3.0 * per, 1e-9);
}

TEST(Cost, TotalCostGlobalOnlyVsLocal) {
  // A 1-keyword, 2-location tensor; the total cost function switches from
  // global coding to local coding once local matrices exist.
  ActivityTensor tensor(1, 2, 50);
  ModelParamSet params;
  params.num_keywords = 1;
  params.num_locations = 2;
  params.num_ticks = 50;
  KeywordGlobalParams g;
  g.population = 10.0;
  g.beta = 0.5;
  g.delta = 0.4;
  g.gamma = 0.3;
  g.i0 = 0.5;
  params.global = {g};
  Series sim = SimulateGlobal(params, 0, 50);
  for (size_t j = 0; j < 2; ++j) {
    Series local(50);
    for (size_t t = 0; t < 50; ++t) local[t] = sim[t] / 2.0;
    ASSERT_TRUE(tensor.SetLocalSequence(0, j, local).ok());
  }
  const double global_only = TotalCostBits(tensor, params);
  EXPECT_TRUE(std::isfinite(global_only));

  params.base_local = Matrix(1, 2, 5.0);
  params.growth_local = Matrix(1, 2);
  const double with_local = TotalCostBits(tensor, params);
  EXPECT_TRUE(std::isfinite(with_local));
  // Local coding pays the 2*d*l float cost on top.
  EXPECT_NE(global_only, with_local);
}

}  // namespace
}  // namespace dspot
