// Model snapshots: bit-exact round-trips through both backends, the
// warm-start refit path they feed, and the incremental UpdateFit built on
// top. Serving correctness demands exactness, so the round-trip tests
// compare canonical payload bytes (every double bit for bit), not
// tolerances.

#include "snapshot/snapshot.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "core/dspot.h"
#include "core/forecast.h"
#include "core/report.h"
#include "core/simulate.h"
#include "datagen/catalog.h"
#include "datagen/generator.h"
#include "obs/metrics.h"
#include "snapshot/update.h"

namespace dspot {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// A small but non-trivial fitted model: two keywords, a handful of
/// locations, shocks present.
struct Fitted {
  ActivityTensor tensor;
  DspotResult result;
};

Fitted FitSmallTensor(size_t num_threads = 1) {
  GeneratorConfig config = GoogleTrendsConfig(11);
  config.n_ticks = 156;
  config.num_locations = 3;
  config.num_outlier_locations = 0;
  auto generated =
      GenerateTensor({GrammyScenario(), HarryPotterScenario()}, config);
  EXPECT_TRUE(generated.ok()) << generated.status().ToString();
  DspotOptions options;
  options.num_threads = num_threads;
  auto fit = FitDspot(generated->tensor, options);
  EXPECT_TRUE(fit.ok()) << fit.status().ToString();
  return Fitted{generated->tensor, std::move(*fit)};
}

TEST(Snapshot, BinaryRoundTripIsBitExact) {
  const Fitted fitted = FitSmallTensor();
  const ModelSnapshot snapshot = MakeSnapshot(fitted.result, fitted.tensor);
  const std::string path = TempPath("roundtrip.snap");
  ASSERT_TRUE(SaveSnapshot(snapshot, path).ok());
  auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // Canonical payload equality covers every field — params, shocks,
  // labels, scales, rmse, cost, health — bit for bit.
  EXPECT_EQ(EncodeSnapshotPayload(snapshot), EncodeSnapshotPayload(*loaded));
  // And the loaded model serves identically: same report, same forecast.
  EXPECT_EQ(RenderReport(snapshot.params, snapshot.keywords),
            RenderReport(loaded->params, loaded->keywords));
  for (size_t i = 0; i < snapshot.params.num_keywords; ++i) {
    auto want = ForecastGlobal(snapshot.params, i, 20);
    auto got = ForecastGlobal(loaded->params, i, 20);
    ASSERT_TRUE(want.ok() && got.ok());
    ASSERT_EQ(want->size(), got->size());
    for (size_t t = 0; t < want->size(); ++t) {
      EXPECT_EQ((*want)[t], (*got)[t]) << "keyword " << i << " tick " << t;
    }
  }
}

TEST(Snapshot, JsonRoundTripIsBitExactAndAgreesWithBinary) {
  const Fitted fitted = FitSmallTensor();
  ModelSnapshot snapshot = MakeSnapshot(fitted.result, fitted.tensor);
  // Exercise the ScaleInfo field too, including a non-trivial factor.
  snapshot.scales.resize(snapshot.keywords.size());
  snapshot.scales[0].factor = 0.3725290298461914;  // not a power of two
  const std::string bin_path = TempPath("agree.snap");
  const std::string json_path = TempPath("agree.json");
  ASSERT_TRUE(SaveSnapshot(snapshot, bin_path).ok());
  ASSERT_TRUE(
      SaveSnapshot(snapshot, json_path, SnapshotFormat::kJson).ok());
  auto from_bin = LoadSnapshot(bin_path);
  auto from_json = LoadSnapshot(json_path);
  ASSERT_TRUE(from_bin.ok()) << from_bin.status().ToString();
  ASSERT_TRUE(from_json.ok()) << from_json.status().ToString();
  const std::vector<uint8_t> want = EncodeSnapshotPayload(snapshot);
  EXPECT_EQ(want, EncodeSnapshotPayload(*from_bin));
  EXPECT_EQ(want, EncodeSnapshotPayload(*from_json));
}

TEST(Snapshot, JsonSurvivesNonFiniteAndSentinelValues) {
  ModelSnapshot snapshot;
  ModelParamSet& params = snapshot.params;
  params.num_keywords = 1;
  params.num_locations = 1;
  params.num_ticks = 10;
  params.global.resize(1);
  params.global[0].growth_start = kNpos;  // disabled sentinel
  params.global[0].beta = 1e-310;         // subnormal
  params.global[0].i0 = std::numeric_limits<double>::infinity();
  snapshot.keywords = {"kw \"quoted\" \\ tab\t"};
  snapshot.locations = {"loc"};
  snapshot.global_rmse = {std::nan("")};
  const std::string path = TempPath("nonfinite.json");
  ASSERT_TRUE(SaveSnapshot(snapshot, path, SnapshotFormat::kJson).ok());
  auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(EncodeSnapshotPayload(snapshot), EncodeSnapshotPayload(*loaded));
  EXPECT_EQ(loaded->params.global[0].growth_start, kNpos);
  EXPECT_TRUE(std::isinf(loaded->params.global[0].i0));
  EXPECT_TRUE(std::isnan(loaded->global_rmse[0]));
}

TEST(Snapshot, FitIsThreadCountInvariantThroughSnapshots) {
  // The determinism contract extends through persistence: fit at 1 and 8
  // threads, snapshot both, and the canonical payloads agree except for
  // wall-clock health (zeroed here — it is honest timing, not model).
  Fitted serial = FitSmallTensor(1);
  Fitted threaded = FitSmallTensor(8);
  ModelSnapshot a = MakeSnapshot(serial.result, serial.tensor);
  ModelSnapshot b = MakeSnapshot(threaded.result, threaded.tensor);
  a.health = FitHealth();
  b.health = FitHealth();
  EXPECT_EQ(EncodeSnapshotPayload(a), EncodeSnapshotPayload(b));
}

TEST(Snapshot, WarmStartRefitUsesFewerLmIterations) {
  ObsRegistry::Instance().Enable(ObsOptions());
  const Fitted fitted = FitSmallTensor();
  const ModelSnapshot snapshot = MakeSnapshot(fitted.result, fitted.tensor);
  const std::string path = TempPath("warm.snap");
  ASSERT_TRUE(SaveSnapshot(snapshot, path).ok());
  auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  ObsRegistry::Instance().Reset();
  auto cold = FitDspot(fitted.tensor);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  const ObsSnapshot cold_obs = ObsRegistry::Instance().Snapshot();
  const uint64_t cold_iters = cold_obs.CounterValue("lm.iterations");
  EXPECT_EQ(cold_obs.CounterValue("global_fit.cold_starts"),
            fitted.tensor.num_keywords());
  EXPECT_EQ(cold_obs.CounterValue("global_fit.warm_starts"), 0u);

  ObsRegistry::Instance().Reset();
  DspotOptions options;
  options.warm_start = &loaded->params;
  auto warm = FitDspot(fitted.tensor, options);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  const ObsSnapshot warm_obs = ObsRegistry::Instance().Snapshot();
  const uint64_t warm_iters = warm_obs.CounterValue("lm.iterations");
  EXPECT_EQ(warm_obs.CounterValue("global_fit.warm_starts"),
            fitted.tensor.num_keywords());
  EXPECT_EQ(warm_obs.CounterValue("global_fit.cold_starts"), 0u);

  // The tentpole's measurable claim: seeding from the snapshot skips the
  // cold multi-start search, and the solver does strictly less work.
  EXPECT_LT(warm_iters, cold_iters);
  // And the refit model still explains the data comparably well.
  EXPECT_LE(warm->total_cost_bits, cold->total_cost_bits * 1.05);
}

TEST(Snapshot, WarmStartRejectsShrinkingTensor) {
  const Fitted fitted = FitSmallTensor();
  ModelParamSet params = fitted.result.params;
  params.num_ticks = fitted.tensor.num_ticks() + 1;  // claims more history
  DspotOptions options;
  options.warm_start = &params;
  auto fit = FitDspot(fitted.tensor, options);
  ASSERT_FALSE(fit.ok());
  EXPECT_EQ(fit.status().code(), StatusCode::kInvalidArgument);
}

/// Extends the tensor with `appended` ticks that track the model's own
/// extrapolation, split evenly across locations — the appended window a
/// well-served model expects, with no bursts.
ActivityTensor ExtendAlongModel(const ActivityTensor& tensor,
                                const ModelParamSet& params,
                                size_t appended) {
  const size_t old_n = tensor.num_ticks();
  ActivityTensor out(tensor.num_keywords(), tensor.num_locations(),
                     old_n + appended);
  for (size_t i = 0; i < tensor.num_keywords(); ++i) {
    (void)out.SetKeywordName(i, tensor.keywords()[i]);
    const Series extrapolated = SimulateGlobal(params, i, old_n + appended);
    for (size_t j = 0; j < tensor.num_locations(); ++j) {
      for (size_t t = 0; t < old_n; ++t) {
        out.at(i, j, t) = tensor.at(i, j, t);
      }
      for (size_t t = old_n; t < old_n + appended; ++t) {
        out.at(i, j, t) = extrapolated[t] /
                          static_cast<double>(tensor.num_locations());
      }
    }
  }
  for (size_t j = 0; j < tensor.num_locations(); ++j) {
    (void)out.SetLocationName(j, tensor.locations()[j]);
  }
  return out;
}

TEST(Snapshot, UpdateFitKeepsCachedScheduleOnQuietData) {
  const Fitted fitted = FitSmallTensor();
  const ModelSnapshot snapshot = MakeSnapshot(fitted.result, fitted.tensor);
  const ActivityTensor extended =
      ExtendAlongModel(fitted.tensor, snapshot.params, 26);
  auto update = UpdateFit(snapshot, extended);
  ASSERT_TRUE(update.ok()) << update.status().ToString();
  EXPECT_EQ(update->appended_ticks, 26u);
  for (size_t i = 0; i < update->redetected.size(); ++i) {
    EXPECT_FALSE(update->redetected[i]) << "keyword " << i;
  }
  // The cached schedule survived: no keyword gained shocks.
  for (size_t i = 0; i < fitted.tensor.num_keywords(); ++i) {
    size_t before = 0, after = 0;
    for (const Shock& s : snapshot.params.shocks) before += s.keyword == i;
    for (const Shock& s : update->result.params.shocks) {
      after += s.keyword == i;
    }
    EXPECT_LE(after, before) << "keyword " << i;
  }
  EXPECT_EQ(update->result.params.num_ticks, extended.num_ticks());
}

TEST(Snapshot, UpdateFitRedetectsOnBurstingData) {
  const Fitted fitted = FitSmallTensor();
  const ModelSnapshot snapshot = MakeSnapshot(fitted.result, fitted.tensor);
  ActivityTensor extended =
      ExtendAlongModel(fitted.tensor, snapshot.params, 26);
  // A sustained, massive burst on keyword 0 only.
  const size_t old_n = fitted.tensor.num_ticks();
  for (size_t t = old_n + 5; t < old_n + 12; ++t) {
    for (size_t j = 0; j < extended.num_locations(); ++j) {
      extended.at(0, j, t) += 1e4;
    }
  }
  auto update = UpdateFit(snapshot, extended);
  ASSERT_TRUE(update.ok()) << update.status().ToString();
  EXPECT_TRUE(update->redetected[0]);
  for (size_t i = 1; i < update->redetected.size(); ++i) {
    EXPECT_FALSE(update->redetected[i]) << "keyword " << i;
  }
}

TEST(Snapshot, UpdateFitRejectsMismatchedTensors) {
  const Fitted fitted = FitSmallTensor();
  const ModelSnapshot snapshot = MakeSnapshot(fitted.result, fitted.tensor);

  ActivityTensor wrong_keywords(fitted.tensor.num_keywords() + 1,
                                fitted.tensor.num_locations(),
                                fitted.tensor.num_ticks());
  auto r1 = UpdateFit(snapshot, wrong_keywords);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kInvalidArgument);

  ActivityTensor wrong_locations(fitted.tensor.num_keywords(),
                                 fitted.tensor.num_locations() + 2,
                                 fitted.tensor.num_ticks());
  auto r2 = UpdateFit(snapshot, wrong_locations);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);

  ActivityTensor shrunk(fitted.tensor.num_keywords(),
                        fitted.tensor.num_locations(),
                        fitted.tensor.num_ticks() - 1);
  auto r3 = UpdateFit(snapshot, shrunk);
  ASSERT_FALSE(r3.ok());
  EXPECT_EQ(r3.status().code(), StatusCode::kInvalidArgument);
}

/// A tiny labeled tensor with at(i, j, t) = base + t, for concatenation
/// checks where value provenance must be visible.
ActivityTensor SmallTensor(size_t n_ticks, double base) {
  ActivityTensor tensor(2, 2, n_ticks);
  EXPECT_TRUE(tensor.SetKeywordName(0, "alpha").ok());
  EXPECT_TRUE(tensor.SetKeywordName(1, "beta").ok());
  EXPECT_TRUE(tensor.SetLocationName(0, "us").ok());
  EXPECT_TRUE(tensor.SetLocationName(1, "jp").ok());
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 2; ++j) {
      for (size_t t = 0; t < n_ticks; ++t) {
        tensor.at(i, j, t) = base + static_cast<double>(t);
      }
    }
  }
  return tensor;
}

TEST(Snapshot, ConcatTicksAppendsDirectlyAfterTheBase) {
  const ActivityTensor base = SmallTensor(10, 0.0);
  const ActivityTensor extra = SmallTensor(4, 100.0);
  // Both the explicit placement and the legacy relative-tick default.
  for (const size_t placement : {size_t{10}, kNpos}) {
    auto combined = ConcatTicks(base, extra, placement);
    ASSERT_TRUE(combined.ok()) << combined.status().ToString();
    EXPECT_EQ(combined->num_ticks(), 14u);
    EXPECT_EQ(combined->keywords()[0], "alpha");
    EXPECT_EQ(combined->locations()[1], "jp");
    EXPECT_DOUBLE_EQ(combined->at(1, 0, 9), 9.0);
    EXPECT_DOUBLE_EQ(combined->at(1, 0, 10), 100.0);
    EXPECT_DOUBLE_EQ(combined->at(0, 1, 13), 103.0);
  }
}

TEST(Snapshot, ConcatTicksRejectsOverlappingPlacement) {
  // Regression: an append whose ticks the base already covers used to be
  // silently concatenated after the base, double-counting the overlap
  // under shifted timestamps. It must be a located error instead.
  const ActivityTensor base = SmallTensor(10, 0.0);
  const ActivityTensor extra = SmallTensor(4, 100.0);
  auto overlapped = ConcatTicks(base, extra, /*extra_first_tick=*/6);
  ASSERT_FALSE(overlapped.ok());
  EXPECT_EQ(overlapped.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(overlapped.status().message().find("already covers"),
            std::string::npos)
      << overlapped.status().ToString();
  // A duplicate replay of the same range is the degenerate overlap.
  EXPECT_FALSE(ConcatTicks(base, extra, 0).ok());
}

TEST(Snapshot, ConcatTicksRejectsGappedPlacement) {
  const ActivityTensor base = SmallTensor(10, 0.0);
  const ActivityTensor extra = SmallTensor(4, 100.0);
  auto gapped = ConcatTicks(base, extra, /*extra_first_tick=*/13);
  ASSERT_FALSE(gapped.ok());
  EXPECT_EQ(gapped.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(gapped.status().message().find("gap"), std::string::npos)
      << gapped.status().ToString();
}

TEST(Snapshot, ConcatTicksRejectsMismatchedLabels) {
  const ActivityTensor base = SmallTensor(10, 0.0);
  ActivityTensor renamed = SmallTensor(4, 100.0);
  ASSERT_TRUE(renamed.SetKeywordName(1, "gamma").ok());
  EXPECT_FALSE(ConcatTicks(base, renamed, 10).ok());

  ActivityTensor wrong_shape(2, 3, 4);
  EXPECT_FALSE(ConcatTicks(base, wrong_shape, 10).ok());
}

TEST(Snapshot, LoadReportsMissingFile) {
  auto loaded = LoadSnapshot(TempPath("does_not_exist.snap"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("does_not_exist"),
            std::string::npos);
}

// Regression (PR 9): a hostile file whose label table disagrees with its
// declared dimensions must be rejected at load time. Before the fix such
// a snapshot decoded "successfully" and every by-name consumer (the serve
// registry's reload path above all) indexed past the label table or onto
// the wrong keyword.
TEST(Snapshot, LoadRejectsLabelCountMismatch) {
  ModelSnapshot hostile;
  hostile.params.num_keywords = 3;
  hostile.params.num_locations = 0;
  hostile.params.num_ticks = 10;
  hostile.params.global.resize(3);
  hostile.keywords = {"only-one-label"};  // claims 3 keywords
  hostile.global_rmse = {1.0, 1.0, 1.0};
  const std::string path = TempPath("hostile_label_count.snap");
  // SaveSnapshot writes what it is given; the LOAD side owns validation.
  ASSERT_TRUE(SaveSnapshot(hostile, path).ok());
  auto loaded = LoadSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss)
      << loaded.status().ToString();
  EXPECT_NE(loaded.status().message().find("keyword label count"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST(Snapshot, LoadRejectsDuplicateKeywordLabels) {
  ModelSnapshot hostile;
  hostile.params.num_keywords = 2;
  hostile.params.num_locations = 0;
  hostile.params.num_ticks = 10;
  hostile.params.global.resize(2);
  hostile.keywords = {"grammy", "grammy"};  // by-name lookup is ambiguous
  hostile.global_rmse = {1.0, 2.0};
  const std::string path = TempPath("hostile_dup_labels.snap");
  ASSERT_TRUE(SaveSnapshot(hostile, path).ok());
  auto loaded = LoadSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss)
      << loaded.status().ToString();
  EXPECT_NE(loaded.status().message().find("duplicate keyword label"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST(Snapshot, LoadRejectsRmseCountMismatch) {
  ModelSnapshot hostile;
  hostile.params.num_keywords = 2;
  hostile.params.num_locations = 0;
  hostile.params.num_ticks = 10;
  hostile.params.global.resize(2);
  hostile.keywords = {"a", "b"};
  hostile.global_rmse = {1.0};  // one entry for two keywords
  const std::string path = TempPath("hostile_rmse_count.snap");
  ASSERT_TRUE(SaveSnapshot(hostile, path).ok());
  auto loaded = LoadSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss)
      << loaded.status().ToString();
  EXPECT_NE(loaded.status().message().find("rmse count"), std::string::npos)
      << loaded.status().ToString();
}

}  // namespace
}  // namespace dspot
