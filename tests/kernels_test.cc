// Kernel-layer contracts (src/kernels): the SIMD batch SIV simulation is
// bit-identical to the scalar recurrence, SIMD reductions stay within the
// documented golden tolerance of a scalar left fold, the forward-mode dual
// Jacobian matches numeric differentiation, and the branch-free calendar
// arithmetic handles pre-epoch timestamps — including through the event
// log's calendar bucketing mode.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "core/global_fit.h"
#include "epidemics/sir_family.h"
#include "kernels/calendar.h"
#include "kernels/dspot_simd.h"
#include "kernels/dual.h"
#include "kernels/reduce.h"
#include "kernels/siv_kernel.h"
#include "tensor/event_log.h"
#include "timeseries/series.h"

namespace dspot {
namespace {

using kernels::Dual;
using kernels::SivParams;

// --- scalar reference implementations ---------------------------------

/// The seed repository's SimulateSivInto loop, kept verbatim as the
/// reference the kernel layer must reproduce bit-for-bit.
void ReferenceSiv(const SivParams& p, std::span<const double> epsilon,
                  std::span<const double> eta, std::span<double> out) {
  const double n = std::max(p.population, 1e-9);
  double i = std::clamp(p.i0, 0.0, n);
  double s = n - i;
  double v = 0.0;
  const double delta = std::clamp(p.delta, 0.0, 1.0);
  const double gamma = std::clamp(p.gamma, 0.0, 1.0);
  for (size_t t = 0; t < out.size(); ++t) {
    out[t] = i;
    const double eps = t < epsilon.size() ? epsilon[t] : 1.0;
    const double eta_t = t < eta.size() ? eta[t] : 0.0;
    const double raw_infect = p.beta * (s / n) * eps * i * (1.0 + eta_t);
    const double infect = std::clamp(raw_infect, 0.0, s);
    const double recover = delta * i;
    const double wane = gamma * v;
    s += wane - infect;
    i += infect - recover;
    v += recover - wane;
  }
}

SivParams RandomParams(std::mt19937* rng) {
  std::uniform_real_distribution<double> u(0.0, 1.0);
  SivParams p;
  p.population = 50.0 + 400.0 * u(*rng);
  p.beta = 0.05 + 0.9 * u(*rng);
  p.delta = 0.05 + 0.9 * u(*rng);
  p.gamma = 0.02 + 0.9 * u(*rng);
  p.i0 = 0.5 + 5.0 * u(*rng);
  return p;
}

std::vector<double> RandomSchedule(size_t n, double lo, double hi,
                                   std::mt19937* rng) {
  std::uniform_real_distribution<double> u(lo, hi);
  std::vector<double> out(n);
  for (double& x : out) x = u(*rng);
  return out;
}

// --- SIV: scalar path bit-identity ------------------------------------

TEST(SivKernelTest, ScalarMatchesSeedRecurrenceBitForBit) {
  std::mt19937 rng(1234);
  for (int trial = 0; trial < 25; ++trial) {
    const SivParams p = RandomParams(&rng);
    const size_t n = 1 + static_cast<size_t>(trial) * 23;
    const std::vector<double> eps = RandomSchedule(n, 0.5, 10.0, &rng);
    const std::vector<double> eta = RandomSchedule(n / 2, 0.0, 2.0, &rng);
    std::vector<double> expected(n), got(n);
    ReferenceSiv(p, eps, eta, expected);
    kernels::SimulateSivScalarInto(p, eps, eta, got);
    for (size_t t = 0; t < n; ++t) {
      ASSERT_EQ(expected[t], got[t]) << "trial " << trial << " tick " << t;
    }
  }
}

TEST(SivKernelTest, ExtremeParamsStillBitIdentical) {
  // Clamp-active corners: zero population, i0 above N, rates outside
  // [0, 1], huge shocks.
  const SivParams corners[] = {
      {0.0, 0.5, 0.4, 0.3, 1.0},   {100.0, 0.5, 0.4, 0.3, 500.0},
      {100.0, 0.5, 1.7, -0.2, 1.0}, {100.0, 5.0, 0.4, 0.3, 1.0},
      {1e-12, 0.5, 0.4, 0.3, 1.0},
  };
  const std::vector<double> eps(64, 50.0);
  for (const SivParams& p : corners) {
    std::vector<double> expected(64), got(64);
    ReferenceSiv(p, eps, {}, expected);
    kernels::SimulateSivScalarInto(p, eps, {}, got);
    for (size_t t = 0; t < 64; ++t) {
      ASSERT_EQ(expected[t], got[t]);
    }
  }
}

// --- SIV: SoA/SIMD batch bit-identity ---------------------------------

TEST(SivKernelTest, BatchMatchesScalarBitForBitAllLanes) {
  // Counts straddling the SIMD width exercise full vectors, the scalar
  // tail, and the all-tail case.
  for (const size_t count : {1ul, 3ul, 4ul, 7ul, 8ul, 21ul}) {
    std::mt19937 rng(99 + count);
    const size_t n_ticks = 173;
    std::vector<SivParams> params(count);
    std::vector<double> population(count), beta(count), delta(count),
        gamma(count), i0(count);
    for (size_t l = 0; l < count; ++l) {
      params[l] = RandomParams(&rng);
      population[l] = params[l].population;
      beta[l] = params[l].beta;
      delta[l] = params[l].delta;
      gamma[l] = params[l].gamma;
      i0[l] = params[l].i0;
    }
    // Packed per-lane schedules [t * count + l].
    std::vector<double> eps_soa(n_ticks * count), eta_soa(n_ticks * count);
    std::vector<std::vector<double>> eps_lane(count), eta_lane(count);
    for (size_t l = 0; l < count; ++l) {
      eps_lane[l] = RandomSchedule(n_ticks, 0.5, 10.0, &rng);
      eta_lane[l] = RandomSchedule(n_ticks, 0.0, 2.0, &rng);
      for (size_t t = 0; t < n_ticks; ++t) {
        eps_soa[t * count + l] = eps_lane[l][t];
        eta_soa[t * count + l] = eta_lane[l][t];
      }
    }
    const kernels::SivBatchSoA batch{population.data(), beta.data(),
                                     delta.data(),      gamma.data(),
                                     i0.data(),         eps_soa.data(),
                                     eta_soa.data()};
    std::vector<double> out(n_ticks * count);
    kernels::SimulateSivBatchInto(batch, count, n_ticks, out.data());
    std::vector<double> lane(n_ticks);
    for (size_t l = 0; l < count; ++l) {
      kernels::SimulateSivScalarInto(params[l], eps_lane[l], eta_lane[l],
                                     lane);
      for (size_t t = 0; t < n_ticks; ++t) {
        ASSERT_EQ(lane[t], out[t * count + l])
            << "count " << count << " lane " << l << " tick " << t;
      }
    }
  }
}

TEST(SivKernelTest, BatchNullSchedulesMeanNoShocksNoGrowth) {
  const size_t count = 5, n_ticks = 60;
  std::mt19937 rng(7);
  std::vector<SivParams> params(count);
  std::vector<double> population(count), beta(count), delta(count),
      gamma(count), i0(count);
  for (size_t l = 0; l < count; ++l) {
    params[l] = RandomParams(&rng);
    population[l] = params[l].population;
    beta[l] = params[l].beta;
    delta[l] = params[l].delta;
    gamma[l] = params[l].gamma;
    i0[l] = params[l].i0;
  }
  const kernels::SivBatchSoA batch{population.data(), beta.data(),
                                   delta.data(),      gamma.data(),
                                   i0.data(),         nullptr,
                                   nullptr};
  std::vector<double> out(n_ticks * count), lane(n_ticks);
  kernels::SimulateSivBatchInto(batch, count, n_ticks, out.data());
  for (size_t l = 0; l < count; ++l) {
    kernels::SimulateSivScalarInto(params[l], {}, {}, lane);
    for (size_t t = 0; t < n_ticks; ++t) {
      ASSERT_EQ(lane[t], out[t * count + l]);
    }
  }
}

// --- Dual numbers: value path and Jacobians ---------------------------

TEST(DualJacobianTest, DualValuePathBitIdenticalToDouble) {
  std::mt19937 rng(55);
  const SivParams p = RandomParams(&rng);
  const size_t n = 128;
  const std::vector<double> eps = RandomSchedule(n, 0.5, 10.0, &rng);
  std::vector<double> scalar_out(n);
  kernels::SimulateSivScalarInto(p, eps, {}, scalar_out);

  using D = Dual<5>;
  std::vector<D> dual_out(n);
  kernels::SimulateSivT<D>(D::Var(p.population, 0), D::Var(p.beta, 1),
                           D::Var(p.delta, 2), D::Var(p.gamma, 3),
                           D::Var(p.i0, 4), eps, {}, dual_out);
  for (size_t t = 0; t < n; ++t) {
    ASSERT_EQ(scalar_out[t], dual_out[t].v) << "tick " << t;
  }
}

/// Property: the analytic Jacobian agrees with central differences of the
/// scalar recurrence, column by column, over random parameter draws.
TEST(DualJacobianTest, AnalyticMatchesNumericJacobian) {
  std::mt19937 rng(77);
  const size_t n = 96;
  for (int trial = 0; trial < 10; ++trial) {
    const SivParams p = RandomParams(&rng);
    const std::vector<double> eps = RandomSchedule(n, 0.5, 6.0, &rng);
    const std::vector<double> eta = RandomSchedule(n, 0.0, 1.0, &rng);
    std::vector<size_t> observed;
    for (size_t t = 1; t < n; t += 3) observed.push_back(t);

    std::vector<double> jac(observed.size() * kernels::kSivNumParams);
    kernels::SivJacobianInto(p, eps, eta, observed, n, jac.data(),
                             kernels::kSivNumParams);

    double base[5] = {p.population, p.beta, p.delta, p.gamma, p.i0};
    std::vector<double> lo(n), hi(n);
    for (size_t c = 0; c < 5; ++c) {
      const double h = std::max(1e-6 * std::fabs(base[c]), 1e-7);
      double probe[5];
      std::copy(base, base + 5, probe);
      probe[c] = base[c] + h;
      kernels::SimulateSivScalarInto(
          {probe[0], probe[1], probe[2], probe[3], probe[4]}, eps, eta, hi);
      probe[c] = base[c] - h;
      kernels::SimulateSivScalarInto(
          {probe[0], probe[1], probe[2], probe[3], probe[4]}, eps, eta, lo);
      for (size_t k = 0; k < observed.size(); ++k) {
        const double numeric = (hi[observed[k]] - lo[observed[k]]) / (2.0 * h);
        const double analytic = jac[k * kernels::kSivNumParams + c];
        const double scale = std::max({std::fabs(numeric),
                                       std::fabs(analytic), 1.0});
        ASSERT_NEAR(analytic, numeric, 1e-4 * scale)
            << "trial " << trial << " col " << c << " row " << k;
      }
    }
  }
}

TEST(DualJacobianTest, JacobianRowsFollowObservedOrder) {
  // Sparse, non-contiguous observation pattern: row k must differentiate
  // I(observed[k]), not I(k).
  const SivParams p{200.0, 0.5, 0.45, 0.5, 1.0};
  const size_t n = 40;
  const std::vector<size_t> observed = {0, 7, 8, 31, 39};
  std::vector<double> jac(observed.size() * 5);
  kernels::SivJacobianInto(p, {}, {}, observed, n, jac.data(), 5);

  using D = Dual<5>;
  std::vector<D> dual_out(n);
  kernels::SimulateSivT<D>(D::Var(p.population, 0), D::Var(p.beta, 1),
                           D::Var(p.delta, 2), D::Var(p.gamma, 3),
                           D::Var(p.i0, 4), {}, {}, dual_out);
  for (size_t k = 0; k < observed.size(); ++k) {
    for (size_t c = 0; c < 5; ++c) {
      ASSERT_EQ(dual_out[observed[k]].d[c], jac[k * 5 + c]);
    }
  }
}

/// End-to-end cross-check at the fit layer: the analytic-Jacobian default
/// and the numeric cross-check option land on the same SIV fit.
TEST(DualJacobianTest, GlobalFitAnalyticMatchesNumericWithinTolerance) {
  const size_t n = 104;
  Series data(n);
  {
    const SivParams truth{180.0, 0.55, 0.4, 0.45, 1.5};
    std::vector<double> clean(n);
    kernels::SimulateSivScalarInto(truth, {}, {}, clean);
    for (size_t t = 0; t < n; ++t) data[t] = clean[t];
  }
  GlobalFitOptions analytic_options;
  analytic_options.allow_shocks = false;
  analytic_options.allow_growth = false;
  GlobalFitOptions numeric_options = analytic_options;
  numeric_options.use_numeric_jacobian = true;

  auto analytic = FitGlobalSequence(data, 0, 1, analytic_options);
  auto numeric = FitGlobalSequence(data, 0, 1, numeric_options);
  ASSERT_TRUE(analytic.ok()) << analytic.status().ToString();
  ASSERT_TRUE(numeric.ok()) << numeric.status().ToString();
  EXPECT_NEAR(analytic->rmse, numeric->rmse,
              1e-3 * std::max(1.0, numeric->rmse));
  const double params_a[] = {analytic->params.population, analytic->params.beta,
                             analytic->params.delta, analytic->params.gamma};
  const double params_n[] = {numeric->params.population, numeric->params.beta,
                             numeric->params.delta, numeric->params.gamma};
  for (size_t k = 0; k < 4; ++k) {
    EXPECT_NEAR(params_a[k], params_n[k],
                1e-2 * std::max(1.0, std::fabs(params_n[k])))
        << "param " << k;
  }
}

TEST(DualJacobianTest, EpidemicFitsAgreeAcrossJacobianModes) {
  const size_t n = 80;
  SirsParams truth;
  truth.population = 300.0;
  truth.beta = 0.6;
  truth.delta = 0.3;
  truth.gamma = 0.1;
  truth.i0 = 2.0;
  const Series data = SimulateSirs(truth, n);

  EpidemicFitOptions analytic;  // default: dual-number Jacobian
  EpidemicFitOptions numeric;
  numeric.use_numeric_jacobian = true;
  auto fit_a = FitSirs(data, analytic);
  auto fit_n = FitSirs(data, numeric);
  ASSERT_TRUE(fit_a.ok()) << fit_a.status().ToString();
  ASSERT_TRUE(fit_n.ok()) << fit_n.status().ToString();
  // Both modes must explain the data essentially perfectly (noise-free
  // input) and land on comparable optima.
  EXPECT_LT(fit_a->info.rmse, 1e-3 * truth.population);
  EXPECT_LT(fit_n->info.rmse, 1e-3 * truth.population);
}

// --- reductions: golden tolerance & mask equivalence ------------------

TEST(ReduceKernelTest, SumSquaresWithinGoldenTolerance) {
  std::mt19937 rng(31);
  std::uniform_real_distribution<double> u(-5.0, 5.0);
  for (const size_t n : {0ul, 1ul, 3ul, 8ul, 17ul, 1000ul, 4097ul}) {
    std::vector<double> v(n);
    for (double& x : v) x = u(rng);
    double scalar = 0.0;
    for (const double x : v) scalar += x * x;
    const double simd = kernels::SumSquares(v);
    const double tol =
        simd::kReduceRelTol * static_cast<double>(std::max<size_t>(n, 1)) *
        std::max(std::fabs(scalar), 1.0);
    EXPECT_NEAR(simd, scalar, tol) << "n " << n;
  }
}

TEST(ReduceKernelTest, ResidualIntoBitIdentical) {
  std::mt19937 rng(41);
  std::uniform_real_distribution<double> u(-5.0, 5.0);
  const size_t n = 301;
  std::vector<double> estimate(n), data(n), out(n);
  for (size_t t = 0; t < n; ++t) {
    estimate[t] = u(rng);
    data[t] = u(rng);
  }
  kernels::ResidualInto(estimate, data, out);
  for (size_t t = 0; t < n; ++t) {
    ASSERT_EQ(estimate[t] - data[t], out[t]);
  }
}

TEST(ReduceKernelTest, MaskedMomentsSkipExactlyNonFiniteResiduals) {
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> actual = {1.0, kMissingValue, 3.0, inf, 5.0, 6.0, 2.0};
  std::vector<double> estimate = {0.5, 1.0, kMissingValue, 2.0, -inf, 5.0,
                                  1.0};
  // Scalar reference with the historical skip rule.
  double count = 0.0, sum = 0.0;
  for (size_t t = 0; t < actual.size(); ++t) {
    if (IsMissing(actual[t]) || IsMissing(estimate[t])) continue;
    const double r = actual[t] - estimate[t];
    if (!std::isfinite(r)) continue;
    count += 1.0;
    sum += r;
  }
  const kernels::MaskedMoments m =
      kernels::MaskedResidualMoments(actual, estimate);
  EXPECT_EQ(count, m.count);
  EXPECT_NEAR(sum, m.sum, 1e-12 * std::max(std::fabs(sum), 1.0));

  const double mean = m.sum / m.count;
  double ss = 0.0;
  for (size_t t = 0; t < actual.size(); ++t) {
    if (IsMissing(actual[t]) || IsMissing(estimate[t])) continue;
    const double r = actual[t] - estimate[t];
    if (!std::isfinite(r)) continue;
    ss += (r - mean) * (r - mean);
  }
  const double simd_ss =
      kernels::MaskedResidualSumSqDev(actual, estimate, mean);
  EXPECT_NEAR(ss, simd_ss, 1e-12 * std::max(ss, 1.0));
}

TEST(ReduceKernelTest, ResidualVectorOverloadMatchesTwoSpanForm) {
  std::mt19937 rng(61);
  std::uniform_real_distribution<double> u(-3.0, 3.0);
  const size_t n = 517;
  std::vector<double> actual(n), estimate(n), residuals(n);
  for (size_t t = 0; t < n; ++t) {
    actual[t] = u(rng);
    estimate[t] = u(rng);
    residuals[t] = actual[t] - estimate[t];
  }
  for (size_t t = 0; t < n; t += 53) {
    actual[t] = kMissingValue;
    residuals[t] = kMissingValue;
  }
  const kernels::MaskedMoments two_span =
      kernels::MaskedResidualMoments(actual, estimate);
  const kernels::MaskedMoments vec = kernels::MaskedMomentsOf(residuals);
  // Identical accumulation structure => identical bits.
  EXPECT_EQ(two_span.count, vec.count);
  EXPECT_EQ(two_span.sum, vec.sum);
  const double mean = vec.sum / vec.count;
  EXPECT_EQ(kernels::MaskedResidualSumSqDev(actual, estimate, mean),
            kernels::MaskedSumSqDevOf(residuals, mean));
}

TEST(ReduceKernelTest, ReportsIsaAndLanes) {
  EXPECT_GE(kernels::SimdNumLanes(), 1u);
  EXPECT_NE(kernels::SimdIsaName(), nullptr);
}

// --- calendar: branch-free arithmetic & pre-epoch ---------------------

TEST(CalendarKernelTest, FloorDivFloorModPreEpoch) {
  EXPECT_EQ(kernels::FloorDiv(0, 86400), 0);
  EXPECT_EQ(kernels::FloorDiv(86399, 86400), 0);
  EXPECT_EQ(kernels::FloorDiv(86400, 86400), 1);
  EXPECT_EQ(kernels::FloorDiv(-1, 86400), -1);
  EXPECT_EQ(kernels::FloorDiv(-86400, 86400), -1);
  EXPECT_EQ(kernels::FloorDiv(-86401, 86400), -2);
  EXPECT_EQ(kernels::FloorMod(-1, 86400), 86399);
  EXPECT_EQ(kernels::FloorMod(-86400, 86400), 0);
  // FloorDiv/FloorMod identity on a grid straddling zero.
  for (int64_t a = -300; a <= 300; ++a) {
    for (const int64_t b : {1, 2, 7, 86400}) {
      EXPECT_EQ(kernels::FloorDiv(a, b) * b + kernels::FloorMod(a, b), a);
      EXPECT_GE(kernels::FloorMod(a, b), 0);
      EXPECT_LT(kernels::FloorMod(a, b), b);
    }
  }
}

TEST(CalendarKernelTest, CivilRoundTripIncludingPreEpoch) {
  for (int64_t day = -800000; day <= 800000; day += 37) {
    const kernels::CivilDay c = kernels::CivilFromDays(day);
    EXPECT_EQ(kernels::DaysFromCivil(c.year, c.month, c.day), day);
    EXPECT_GE(c.month, 1);
    EXPECT_LE(c.month, 12);
    EXPECT_GE(c.day, 1);
    EXPECT_LE(c.day, 31);
  }
  const kernels::CivilDay epoch = kernels::CivilFromDays(0);
  EXPECT_EQ(epoch.year, 1970);
  EXPECT_EQ(epoch.month, 1);
  EXPECT_EQ(epoch.day, 1);
  const kernels::CivilDay before = kernels::CivilFromDays(-1);
  EXPECT_EQ(before.year, 1969);
  EXPECT_EQ(before.month, 12);
  EXPECT_EQ(before.day, 31);
  EXPECT_EQ(before.yday, 364);
}

TEST(CalendarKernelTest, BucketIndicesTilePreEpochBoundary) {
  // The historical truncate-toward-zero bug folded seconds -86400..-1 and
  // 0..86399 into the same day bucket; floor bucketing must not.
  EXPECT_EQ(kernels::DaysFromSeconds(0), 0);
  EXPECT_EQ(kernels::DaysFromSeconds(86399), 0);
  EXPECT_EQ(kernels::DaysFromSeconds(-1), -1);
  EXPECT_EQ(kernels::DaysFromSeconds(-86400), -1);
  EXPECT_EQ(kernels::DaysFromSeconds(-86401), -2);
  // 1970-01-01 was a Thursday; ISO weeks start Monday. Day -3 is Monday
  // 1969-12-29 (week 0 starts there); day -4 is Sunday, week -1.
  EXPECT_EQ(kernels::WeekIndexFromDays(0), 0);
  EXPECT_EQ(kernels::WeekIndexFromDays(3), 0);
  EXPECT_EQ(kernels::WeekIndexFromDays(4), 1);
  EXPECT_EQ(kernels::WeekIndexFromDays(-3), 0);
  EXPECT_EQ(kernels::WeekIndexFromDays(-4), -1);
  EXPECT_EQ(kernels::MonthIndexFromDays(0), 0);
  EXPECT_EQ(kernels::MonthIndexFromDays(30), 0);
  EXPECT_EQ(kernels::MonthIndexFromDays(31), 1);
  EXPECT_EQ(kernels::MonthIndexFromDays(-1), -1);
  EXPECT_EQ(kernels::MonthIndexFromDays(-31), -1);
  EXPECT_EQ(kernels::MonthIndexFromDays(-32), -2);
  EXPECT_EQ(kernels::YearFromDays(0), 1970);
  EXPECT_EQ(kernels::YearFromDays(-1), 1969);
  EXPECT_EQ(kernels::YearFromDays(365), 1971);
}

// --- event log: calendar bucketing, pre-1970 regression ---------------

EventRecord Rec(const char* kw, const char* loc, int64_t ts,
                double count = 1.0) {
  EventRecord r;
  r.keyword = kw;
  r.location = loc;
  r.timestamp = ts;
  r.count = count;
  return r;
}

TEST(EventLogCalendarTest, DayBucketsPre1970) {
  AggregationConfig config;
  config.calendar_unit = CalendarUnit::kDay;
  config.origin = -3 * 86400;  // 1969-12-29
  const std::vector<EventRecord> records = {
      Rec("flu", "us", -3 * 86400),      // first second of origin day
      Rec("flu", "us", -2 * 86400 - 1),  // last second of origin day
      Rec("flu", "us", -1),              // 1969-12-31 -> tick 2
      Rec("flu", "us", 0),               // 1970-01-01 -> tick 3
      Rec("flu", "us", 86399),           // still tick 3
      Rec("flu", "us", 86400),           // tick 4
  };
  auto tensor = AggregateEvents(records, config);
  ASSERT_TRUE(tensor.ok()) << tensor.status().ToString();
  ASSERT_EQ(tensor->num_ticks(), 5u);
  EXPECT_DOUBLE_EQ(tensor->at(0, 0, 0), 2.0);
  EXPECT_DOUBLE_EQ(tensor->at(0, 0, 1), 0.0);
  EXPECT_DOUBLE_EQ(tensor->at(0, 0, 2), 1.0);
  EXPECT_DOUBLE_EQ(tensor->at(0, 0, 3), 2.0);
  EXPECT_DOUBLE_EQ(tensor->at(0, 0, 4), 1.0);
}

TEST(EventLogCalendarTest, WeekBucketsAlignToMondayAcrossEpoch) {
  AggregationConfig config;
  config.calendar_unit = CalendarUnit::kWeek;
  config.origin = -7 * 86400;  // Thursday 1969-12-25, week -1
  const std::vector<EventRecord> records = {
      Rec("a", "x", -7 * 86400),      // week of Mon 1969-12-22 -> tick 0
      Rec("a", "x", -3 * 86400),      // Mon 1969-12-29 -> tick 1
      Rec("a", "x", 0),               // Thu 1970-01-01, same ISO week
      Rec("a", "x", 4 * 86400),       // Mon 1970-01-05 -> tick 2
  };
  auto tensor = AggregateEvents(records, config);
  ASSERT_TRUE(tensor.ok()) << tensor.status().ToString();
  ASSERT_EQ(tensor->num_ticks(), 3u);
  EXPECT_DOUBLE_EQ(tensor->at(0, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(tensor->at(0, 0, 1), 2.0);
  EXPECT_DOUBLE_EQ(tensor->at(0, 0, 2), 1.0);
}

TEST(EventLogCalendarTest, MonthBucketsHaveTrueLengths) {
  AggregationConfig config;
  config.calendar_unit = CalendarUnit::kMonth;
  config.origin = kernels::DaysFromCivil(1969, 11, 1) * 86400;
  const std::vector<EventRecord> records = {
      Rec("a", "x", kernels::DaysFromCivil(1969, 11, 30) * 86400),  // Nov 69
      Rec("a", "x", kernels::DaysFromCivil(1969, 12, 1) * 86400),   // Dec 69
      Rec("a", "x", kernels::DaysFromCivil(1970, 1, 31) * 86400),   // Jan 70
      Rec("a", "x", kernels::DaysFromCivil(1970, 2, 1) * 86400),    // Feb 70
  };
  auto tensor = AggregateEvents(records, config);
  ASSERT_TRUE(tensor.ok()) << tensor.status().ToString();
  ASSERT_EQ(tensor->num_ticks(), 4u);
  for (size_t t = 0; t < 4; ++t) {
    EXPECT_DOUBLE_EQ(tensor->at(0, 0, t), 1.0) << "tick " << t;
  }
}

TEST(EventLogCalendarTest, PreOriginRecordsStillRejected) {
  AggregationConfig config;
  config.calendar_unit = CalendarUnit::kDay;
  config.origin = 0;
  EventAggregator aggregator(config);
  EXPECT_FALSE(aggregator.Add(Rec("a", "x", -1)).ok());
  EXPECT_TRUE(aggregator.Add(Rec("a", "x", 0)).ok());
}

TEST(EventLogCalendarTest, RawModeUnchangedAndFloorSafe) {
  // kNone keeps the historical fixed-width semantics (timestamp >= origin
  // enforced, truncating == floor on the non-negative difference),
  // including with a negative origin.
  AggregationConfig config;
  config.ticks_resolution = 10;
  config.origin = -25;
  const std::vector<EventRecord> records = {
      Rec("a", "x", -25),  // tick 0
      Rec("a", "x", -16),  // tick 0
      Rec("a", "x", -15),  // tick 1
      Rec("a", "x", 5),    // tick 3
  };
  auto tensor = AggregateEvents(records, config);
  ASSERT_TRUE(tensor.ok()) << tensor.status().ToString();
  ASSERT_EQ(tensor->num_ticks(), 4u);
  EXPECT_DOUBLE_EQ(tensor->at(0, 0, 0), 2.0);
  EXPECT_DOUBLE_EQ(tensor->at(0, 0, 1), 1.0);
  EXPECT_DOUBLE_EQ(tensor->at(0, 0, 3), 1.0);
}

}  // namespace
}  // namespace dspot
