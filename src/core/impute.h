#ifndef DSPOT_CORE_IMPUTE_H_
#define DSPOT_CORE_IMPUTE_H_

#include "common/statusor.h"
#include "core/params.h"
#include "tensor/activity_tensor.h"
#include "timeseries/series.h"

namespace dspot {

/// Model-based missing-value imputation: the paper's problem statement
/// includes tensors "with missing values"; once Δ-SPOT is fitted, the
/// model itself is the best interpolator — missing entries are replaced by
/// the simulated I(t), which respects spikes and growth in a way linear
/// interpolation cannot.

/// Returns a copy of `sequence` with missing ticks replaced by the global
/// estimate of `keyword` under `params`. Observed ticks are untouched.
StatusOr<Series> ImputeGlobalSequence(const Series& sequence,
                                      const ModelParamSet& params,
                                      size_t keyword);

/// Returns a copy of `tensor` with every missing cell replaced by the
/// local estimate under `params` (requires LocalFit when l > 1; with a
/// single location the even-share fallback is exact).
StatusOr<ActivityTensor> ImputeTensor(const ActivityTensor& tensor,
                                      const ModelParamSet& params);

}  // namespace dspot

#endif  // DSPOT_CORE_IMPUTE_H_
