#include "guard/fault_injector.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/random.h"

namespace dspot {

namespace {

/// Decorrelates the draw streams of distinct sites: two sites armed with
/// the same seed must not fire on the same draw indices.
constexpr uint64_t kSiteSalt[] = {
    0x9e3779b97f4a7c15ULL,  // kNanAtResidual
    0xbf58476d1ce4e5b9ULL,  // kSolverFailure
    0x94d049bb133111ebULL,  // kAllocation
    0xd6e8feb86659fd93ULL,  // kDeadlineExpiry
    0xa0761d6478bd642fULL,  // kIoShortWrite
    0xe7037ed1a0b428dbULL,  // kIoNoSpace
    0x8ebc6af09c88c6e3ULL,  // kIoFsyncFailure
    0x589965cc75374cc3ULL,  // kIoRenameFailure
};

}  // namespace

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kNanAtResidual:
      return "NanAtResidual";
    case FaultSite::kSolverFailure:
      return "SolverFailure";
    case FaultSite::kAllocation:
      return "Allocation";
    case FaultSite::kDeadlineExpiry:
      return "DeadlineExpiry";
    case FaultSite::kIoShortWrite:
      return "IoShortWrite";
    case FaultSite::kIoNoSpace:
      return "IoNoSpace";
    case FaultSite::kIoFsyncFailure:
      return "IoFsyncFailure";
    case FaultSite::kIoRenameFailure:
      return "IoRenameFailure";
    case FaultSite::kNumSites:
      break;
  }
  return "Unknown";
}

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(uint64_t seed, double rate) {
  for (size_t s = 0; s < kNumSites; ++s) {
    ArmSite(static_cast<FaultSite>(s), seed, rate);
  }
}

void FaultInjector::ArmSite(FaultSite site, uint64_t seed, double rate) {
  SiteState& state = sites_[static_cast<size_t>(site)];
  state.draws.store(0, std::memory_order_relaxed);
  state.fired.store(0, std::memory_order_relaxed);
  state.exact.store(kNoExact, std::memory_order_relaxed);
  state.seed.store(seed, std::memory_order_relaxed);
  // rate in [0, 1] -> 64-bit fixed-point threshold; rate >= 1 always fires.
  const double clamped = std::clamp(rate, 0.0, 1.0);
  const uint64_t threshold =
      clamped >= 1.0 ? ~uint64_t{0}
                     : static_cast<uint64_t>(std::ldexp(clamped, 64));
  state.threshold.store(threshold, std::memory_order_relaxed);
  state.armed.store(true, std::memory_order_relaxed);
  RefreshAnyArmed();
}

void FaultInjector::ArmExact(FaultSite site, uint64_t nth) {
  SiteState& state = sites_[static_cast<size_t>(site)];
  state.draws.store(0, std::memory_order_relaxed);
  state.fired.store(0, std::memory_order_relaxed);
  state.threshold.store(0, std::memory_order_relaxed);
  state.exact.store(nth, std::memory_order_relaxed);
  state.armed.store(true, std::memory_order_relaxed);
  RefreshAnyArmed();
}

void FaultInjector::Disarm() {
  for (SiteState& state : sites_) {
    state.armed.store(false, std::memory_order_relaxed);
    state.draws.store(0, std::memory_order_relaxed);
    state.fired.store(0, std::memory_order_relaxed);
    state.exact.store(kNoExact, std::memory_order_relaxed);
    state.threshold.store(0, std::memory_order_relaxed);
  }
  any_armed_.store(false, std::memory_order_relaxed);
}

void FaultInjector::RefreshAnyArmed() {
  bool any = false;
  for (const SiteState& state : sites_) {
    any = any || state.armed.load(std::memory_order_relaxed);
  }
  any_armed_.store(any, std::memory_order_relaxed);
}

bool FaultInjector::ShouldFire(FaultSite site) {
  SiteState& state = sites_[static_cast<size_t>(site)];
  if (!state.armed.load(std::memory_order_relaxed)) {
    return false;
  }
  const uint64_t n = state.draws.fetch_add(1, std::memory_order_relaxed);
  const uint64_t exact = state.exact.load(std::memory_order_relaxed);
  bool fire;
  if (exact != kNoExact) {
    fire = n == exact;
  } else {
    const uint64_t seed = state.seed.load(std::memory_order_relaxed);
    const uint64_t salt = kSiteSalt[static_cast<size_t>(site)];
    const uint64_t draw = SplitMix64(seed ^ (salt + n));
    fire = draw < state.threshold.load(std::memory_order_relaxed);
  }
  if (fire) {
    state.fired.fetch_add(1, std::memory_order_relaxed);
  }
  return fire;
}

uint64_t FaultInjector::draws(FaultSite site) const {
  return sites_[static_cast<size_t>(site)].draws.load(
      std::memory_order_relaxed);
}

uint64_t FaultInjector::fired(FaultSite site) const {
  return sites_[static_cast<size_t>(site)].fired.load(
      std::memory_order_relaxed);
}

uint64_t FaultInjector::SeedFromEnv(uint64_t fallback) {
  const char* raw = std::getenv("DSPOT_FAULT_SEED");
  if (raw == nullptr || *raw == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(raw, &end, 10);
  if (end == raw) {
    return fallback;
  }
  return static_cast<uint64_t>(parsed);
}

}  // namespace dspot
