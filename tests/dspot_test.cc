// Integration tests for the DSpot facade (Algorithm 1) and ModelParamSet.

#include <gtest/gtest.h>

#include "core/dspot.h"
#include "datagen/catalog.h"
#include "datagen/generator.h"
#include "timeseries/metrics.h"

namespace dspot {
namespace {

TEST(ModelParamSet, ShockBookkeeping) {
  ModelParamSet params;
  params.global.resize(3);
  Shock a;
  a.keyword = 0;
  Shock b;
  b.keyword = 2;
  Shock c;
  c.keyword = 0;
  params.shocks = {a, b, c};
  EXPECT_EQ(params.ShockCountFor(0), 2u);
  EXPECT_EQ(params.ShockCountFor(1), 0u);
  EXPECT_EQ(params.ShockIndicesFor(0), (std::vector<size_t>{0, 2}));
  EXPECT_FALSE(params.has_local());
  EXPECT_NE(params.ToString().find("shocks=2"), std::string::npos);
}

TEST(DSpot, EndToEndTwoKeywords) {
  GeneratorConfig config = GoogleTrendsConfig(5);
  config.n_ticks = 312;
  config.num_locations = 5;
  config.num_outlier_locations = 1;
  auto generated = GenerateTensor({GrammyScenario(), EbolaScenario()}, config);
  ASSERT_TRUE(generated.ok());
  // Keep the ebola burst inside the shortened horizon.
  auto scenarios = std::vector<KeywordScenario>{GrammyScenario()};

  auto result = FitDspot(generated->tensor);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->global_estimates.size(), 2u);
  EXPECT_EQ(result->global_rmse.size(), 2u);
  EXPECT_TRUE(result->params.has_local());
  EXPECT_TRUE(std::isfinite(result->total_cost_bits));

  // Keyword 0 (grammy) should fit well; keyword 1's burst at tick 553 is
  // outside this 312-tick horizon, so it is essentially flat — fit should
  // still be finite and sane.
  const Series g0 = generated->tensor.GlobalSequence(0);
  EXPECT_LT(result->global_rmse[0], 0.15 * (g0.MaxValue() - g0.MinValue()));

  // Local estimate accessor works and tracks the data.
  const Series local = generated->tensor.LocalSequence(0, 0);
  const Series est = result->LocalEstimate(0, 0);
  EXPECT_EQ(est.size(), local.size());

  // Shock descriptions mention the annual event.
  const auto descriptions = result->DescribeShocks(0);
  EXPECT_FALSE(descriptions.empty());
}

TEST(DSpot, SingleSequenceConvenience) {
  GeneratorConfig config = GoogleTrendsConfig(9);
  config.n_ticks = 260;
  config.num_locations = 4;
  config.num_outlier_locations = 0;
  auto sequence = GenerateGlobalSequence(GrammyScenario(), config);
  ASSERT_TRUE(sequence.ok());
  auto result = FitDspotSingle(*sequence);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->params.num_keywords, 1u);
  EXPECT_FALSE(result->params.has_local());
  EXPECT_GE(result->params.ShockCountFor(0), 1u);
}

TEST(DSpot, FitLocalCanBeSkipped) {
  GeneratorConfig config = GoogleTrendsConfig(5);
  config.n_ticks = 260;
  config.num_locations = 4;
  config.num_outlier_locations = 0;
  auto generated = GenerateTensor({GrammyScenario()}, config);
  ASSERT_TRUE(generated.ok());
  DspotOptions options;
  options.fit_local = false;
  auto result = FitDspot(generated->tensor, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->params.has_local());
}

TEST(DSpot, RejectsEmptyTensor) {
  EXPECT_FALSE(FitDspot(ActivityTensor()).ok());
}

}  // namespace
}  // namespace dspot
