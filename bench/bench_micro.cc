// Micro-benchmarks (google-benchmark) for the numeric kernels underlying
// the pipeline: SIV simulation, epsilon construction, LM on a canonical
// problem, and the dense solvers.

#include <benchmark/benchmark.h>

#include "core/dspot.h"
#include "core/shock.h"
#include "core/simulate.h"
#include "datagen/catalog.h"
#include "datagen/generator.h"
#include "guard/fault_injector.h"
#include "linalg/matrix.h"
#include "linalg/solvers.h"
#include "mdl/mdl.h"
#include "obs/metrics.h"
#include "optimize/levenberg_marquardt.h"
#include "optimize/line_search.h"
#include "timeseries/peaks.h"
#include "timeseries/stats.h"

namespace dspot {
namespace {

void BM_SimulateSiv(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  SivInputs inputs;
  inputs.population = 200.0;
  inputs.beta = 0.5;
  inputs.delta = 0.45;
  inputs.gamma = 0.5;
  inputs.i0 = 1.0;
  inputs.epsilon.assign(n, 1.0);
  for (size_t t = 30; t < n; t += 52) {
    inputs.epsilon[t] = 9.0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimulateSiv(inputs, n));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_SimulateSiv)->Arg(128)->Arg(575)->Arg(2048);

/// The bare recurrence with caller-owned schedules and output buffer — the
/// floor every residual evaluation pays. The loop is a serial FP
/// dependency chain (one divide + chained multiplies per tick), so this
/// does not vectorize; the workspace refactor removes everything *around*
/// it, not the chain itself.
void BM_SimulateSivInto(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> epsilon(n, 1.0);
  for (size_t t = 30; t < n; t += 52) {
    epsilon[t] = 9.0;
  }
  const SivDynamics dynamics{200.0, 0.5, 0.45, 0.5, 1.0};
  std::vector<double> out(n);
  for (auto _ : state) {
    SimulateSivInto(dynamics, epsilon, {}, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_SimulateSivInto)->Arg(128)->Arg(575)->Arg(2048);

/// Fixture mirroring GLOBALFIT's per-keyword state: the data sequence,
/// the keyword's shocks, and the SIV scalars under optimization.
struct ResidualFixture {
  Series data;
  std::vector<Shock> shocks;
  double population = 200.0;
  double beta = 0.5;
  double delta = 0.45;
  double gamma = 0.5;
  double i0 = 1.0;
};

ResidualFixture MakeResidualFixture(size_t n) {
  ResidualFixture f;
  f.data = Series(n);
  for (size_t t = 0; t < n; ++t) {
    f.data[t] = 5.0 + 2.0 * std::sin(0.2 * static_cast<double>(t));
  }
  f.shocks.resize(1);
  f.shocks[0].period = 52;
  f.shocks[0].start = 30;
  f.shocks[0].width = 3;
  f.shocks[0].global_strengths.assign(f.shocks[0].NumOccurrences(n), 8.0);
  return f;
}

/// One residual evaluation as the pre-workspace base fit performed it:
/// copy the fit state (data + shocks), rebuild the epsilon/eta schedules,
/// allocate a fresh Series trajectory, and grow the residual vector with
/// push_back — on every single LM residual call.
void BM_ResidualSimulateAllocating(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const ResidualFixture fixture = MakeResidualFixture(n);
  std::vector<double> residuals;
  for (auto _ : state) {
    ResidualFixture probe = fixture;
    SivInputs inputs;
    inputs.population = probe.population;
    inputs.beta = probe.beta;
    inputs.delta = probe.delta;
    inputs.gamma = probe.gamma;
    inputs.i0 = probe.i0;
    inputs.epsilon = BuildGlobalEpsilon(probe.shocks, 0, n);
    inputs.eta = BuildEta(0.01, n / 3, n);
    const Series est = SimulateSiv(inputs, n);
    residuals.clear();
    for (size_t t = 0; t < n; ++t) {
      if (!probe.data.IsObserved(t)) continue;
      residuals.push_back(est[t] - probe.data[t]);
    }
    benchmark::DoNotOptimize(residuals.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_ResidualSimulateAllocating)->Arg(128)->Arg(575)->Arg(2048);

/// The same residual evaluation on the workspace path: schedules hoisted
/// out of the solve (ScheduleCache serves memoized spans), the trajectory
/// written into a caller-owned buffer, and residuals written through the
/// precomputed observed-tick index — what every LM residual call costs
/// after the refactor.
void BM_ResidualSimulateWorkspace(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const ResidualFixture fixture = MakeResidualFixture(n);
  ScheduleCache cache;
  const std::span<const double> epsilon =
      cache.GlobalEpsilon(fixture.shocks, 0, n);
  const std::span<const double> eta = cache.Eta(0.01, n / 3, n);
  std::vector<size_t> observed;
  for (size_t t = 0; t < n; ++t) {
    if (fixture.data.IsObserved(t)) observed.push_back(t);
  }
  const std::span<const double> data = fixture.data.values();
  std::vector<double> estimate(n);
  std::vector<double> residuals(observed.size());
  for (auto _ : state) {
    const SivDynamics dynamics{fixture.population, fixture.beta,
                               fixture.delta, fixture.gamma, fixture.i0};
    SimulateSivInto(dynamics, epsilon, eta, estimate);
    for (size_t k = 0; k < observed.size(); ++k) {
      const size_t t = observed[k];
      residuals[k] = estimate[t] - data[t];
    }
    benchmark::DoNotOptimize(residuals.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_ResidualSimulateWorkspace)->Arg(128)->Arg(575)->Arg(2048);

void BM_BuildGlobalEpsilon(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<Shock> shocks(4);
  for (size_t k = 0; k < shocks.size(); ++k) {
    shocks[k].keyword = 0;
    shocks[k].period = 52;
    shocks[k].start = 5 + 3 * k;
    shocks[k].width = 3;
    shocks[k].global_strengths.assign(shocks[k].NumOccurrences(n), 5.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildGlobalEpsilon(shocks, 0, n));
  }
}
BENCHMARK(BM_BuildGlobalEpsilon)->Arg(575)->Arg(2048);

void BM_LevenbergMarquardtRosenbrock(benchmark::State& state) {
  auto residual_fn = [](const std::vector<double>& p,
                        std::vector<double>* r) -> Status {
    r->assign({10.0 * (p[1] - p[0] * p[0]), 1.0 - p[0]});
    return Status::Ok();
  };
  for (auto _ : state) {
    auto result = LevenbergMarquardt(residual_fn, {-1.2, 1.0});
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_LevenbergMarquardtRosenbrock);

void BM_LevenbergMarquardtWorkspace(benchmark::State& state) {
  ResidualIntoFn residual_fn = [](std::span<const double> p,
                                  std::span<double> r) -> Status {
    r[0] = 10.0 * (p[1] - p[0] * p[0]);
    r[1] = 1.0 - p[0];
    return Status::Ok();
  };
  LmWorkspace workspace;
  const std::vector<double> initial = {-1.2, 1.0};
  for (auto _ : state) {
    auto result = LevenbergMarquardt(residual_fn, 2, initial, Bounds(),
                                     LmOptions(), &workspace);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_LevenbergMarquardtWorkspace);

/// End-to-end Δ-SPOT fit on a small synthetic tensor (1 keyword, 3
/// locations, 2 years of weekly ticks): the macro view of the workspace
/// refactor, covering GLOBALFIT's alternation, LOCALFIT, and the final
/// MDL scoring.
void BM_FitDspotSmall(benchmark::State& state) {
  GeneratorConfig config = GoogleTrendsConfig(3);
  config.n_ticks = 104;
  config.num_locations = 3;
  config.num_outlier_locations = 0;
  auto generated = GenerateTensor({GrammyScenario()}, config);
  if (!generated.ok()) {
    state.SkipWithError("tensor generation failed");
    return;
  }
  DspotOptions options;
  options.global.max_outer_rounds = 1;
  options.num_threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto result = FitDspot(generated->tensor, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FitDspotSmall)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_CholeskySolve(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      a(i, j) = (i == j) ? 4.0 : 1.0 / static_cast<double>(1 + i + j);
    }
  }
  std::vector<double> b(n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CholeskySolve(a, b));
  }
}
BENCHMARK(BM_CholeskySolve)->Arg(8)->Arg(32)->Arg(128);

Series SpikyFixture(size_t n) {
  Series s(n);
  for (size_t t = 0; t < n; ++t) {
    s[t] = 10.0 + 3.0 * std::sin(0.37 * static_cast<double>(t));
  }
  for (size_t t = 6; t < n; t += 52) {
    s[t] = 120.0;
  }
  return s;
}

void BM_Autocorrelation(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Series s = SpikyFixture(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Autocorrelation(s, n / 2));
  }
}
BENCHMARK(BM_Autocorrelation)->Arg(575)->Arg(2048);

void BM_FindBursts(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Series s = SpikyFixture(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindBursts(s));
  }
}
BENCHMARK(BM_FindBursts)->Arg(575)->Arg(2048);

void BM_GaussianCodingCost(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Series a = SpikyFixture(n);
  Series e = a;
  for (size_t t = 0; t < n; ++t) e[t] += 0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GaussianCodingCost(a, e));
  }
}
BENCHMARK(BM_GaussianCodingCost)->Arg(575)->Arg(2048);

void BM_PoissonCodingCost(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Series a = SpikyFixture(n);
  Series e = a;
  for (size_t t = 0; t < n; ++t) e[t] += 0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PoissonCodingCost(a, e));
  }
}
BENCHMARK(BM_PoissonCodingCost)->Arg(575)->Arg(2048);

void BM_GoldenSection(benchmark::State& state) {
  auto fn = [](double x) { return (x - 3.3) * (x - 3.3); };
  for (auto _ : state) {
    benchmark::DoNotOptimize(GoldenSectionMinimize(fn, 0.0, 50.0, 1e-6));
  }
}
BENCHMARK(BM_GoldenSection);

// --- dspot_obs probe cost ---------------------------------------------
//
// The observability contract is "disarmed probes are free": one relaxed
// atomic load, the same budget the FaultInjector probe pays. These four
// benchmarks pin that claim — the disarmed counter and span should match
// BM_FaultInjectorProbeDisarmed within noise, and the armed variants show
// what turning DSPOT_OBS=1 actually costs per probe.

void BM_FaultInjectorProbeDisarmed(benchmark::State& state) {
  FaultInjector::Instance().Disarm();
  for (auto _ : state) {
    benchmark::DoNotOptimize(FaultInjector::Instance().armed());
  }
}
BENCHMARK(BM_FaultInjectorProbeDisarmed);

void BM_ObsCounterDisarmed(benchmark::State& state) {
  ObsRegistry::Instance().Disable();
  for (auto _ : state) {
    DSPOT_COUNT("bench.disarmed.counter", 1);
  }
}
BENCHMARK(BM_ObsCounterDisarmed);

void BM_ObsSpanDisarmed(benchmark::State& state) {
  ObsRegistry::Instance().Disable();
  for (auto _ : state) {
    DSPOT_SPAN("bench.disarmed.span");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ObsSpanDisarmed);

void BM_ObsCounterArmed(benchmark::State& state) {
  ObsRegistry::Instance().Enable(ObsOptions{});
  for (auto _ : state) {
    DSPOT_COUNT("bench.armed.counter", 1);
  }
  ObsRegistry::Instance().Disable();
  ObsRegistry::Instance().Reset();
}
BENCHMARK(BM_ObsCounterArmed);

void BM_ObsSpanArmed(benchmark::State& state) {
  ObsRegistry::Instance().Enable(ObsOptions{});  // metrics only, no trace
  for (auto _ : state) {
    DSPOT_SPAN("bench.armed.span");
    benchmark::ClobberMemory();
  }
  ObsRegistry::Instance().Disable();
  ObsRegistry::Instance().Reset();
}
BENCHMARK(BM_ObsSpanArmed);

}  // namespace
}  // namespace dspot
