// Fig. 8 reproduction: local fitting power on "Ebola" (the 2014 burst).
// Δ-SPOT captures (a) countries behaving like the global trend (AU, RU,
// GB, US, JP in the paper) and (b) low-connectivity outliers (LA, NP, CG)
// whose local shock participation is ~zero, plus the world-reaction map.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/dspot.h"
#include "datagen/catalog.h"
#include "datagen/generator.h"
#include "timeseries/metrics.h"

namespace dspot {
namespace {

int Run() {
  std::printf("=== Fig. 8 — local fitting power on 'Ebola' ===\n\n");
  GeneratorConfig config = GoogleTrendsConfig();
  config.num_locations = 12;
  config.num_outlier_locations = 3;
  auto generated = GenerateTensor({EbolaScenario()}, config);
  if (!generated.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  auto result = FitDspot(generated->tensor);
  if (!result.ok()) {
    std::fprintf(stderr, "fit: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("global fit RMSE %.3f; detected events:\n",
              result->global_rmse[0]);
  for (const Shock& shock : result->params.shocks) {
    std::printf("  * %s   (truth: one-shot %s)\n",
                bench::DescribeEvent(shock).c_str(),
                bench::WeekToCalendar(10 * 52 + 33).c_str());
  }

  std::printf("\n(a) per-country fits (sorted by fitted population):\n");
  struct Row {
    size_t j;
    double population;
  };
  std::vector<Row> rows;
  for (size_t j = 0; j < 12; ++j) {
    rows.push_back({j, result->params.base_local(0, j)});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.population > b.population; });
  std::printf("%-6s %10s %10s %10s %10s  %s\n", "ctry", "pop_fit", "strength",
              "rmse", "peak", "class");
  for (const Row& row : rows) {
    const size_t j = row.j;
    const Series data = generated->tensor.LocalSequence(0, j);
    const Series est = result->LocalEstimate(0, j);
    double strength = 0.0;
    size_t count = 0;
    for (const Shock& shock : result->params.shocks) {
      for (size_t m = 0; m < shock.local_strengths.rows(); ++m) {
        strength += shock.local_strengths(m, j);
        ++count;
      }
    }
    strength = count == 0 ? 0.0 : strength / static_cast<double>(count);
    std::printf("%-6s %10.2f %10.3f %10.3f %10.1f  %s\n",
                generated->tensor.locations()[j].c_str(), row.population,
                strength, Rmse(data, est), data.MaxValue(),
                generated->truth.is_outlier[j]
                    ? "OUTLIER (low connectivity)"
                    : "follows global trend");
  }

  std::printf("\n(b) two representative local fits:\n");
  {
    const Series us = generated->tensor.LocalSequence(0, 0);
    bench::PrintFitPair("US (similar)", us, result->LocalEstimate(0, 0));
    const Series outlier = generated->tensor.LocalSequence(0, 11);
    bench::PrintFitPair("outlier", outlier, result->LocalEstimate(0, 11));
  }
  std::printf("\nExpected shape: big countries share the global burst with "
              "positive strengths; outliers fit flat with ~zero strength.\n");
  return 0;
}

}  // namespace
}  // namespace dspot

int main() { return dspot::Run(); }
