#ifndef DSPOT_LINALG_SOLVERS_H_
#define DSPOT_LINALG_SOLVERS_H_

#include <span>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "linalg/matrix.h"

namespace dspot {

/// Direct solvers for the small dense systems that appear in the
/// Levenberg-Marquardt normal equations and the AR least-squares fit.

/// Cholesky factorization A = L L^T of a symmetric positive-definite matrix.
/// Returns the lower-triangular factor, or NumericalError if A is not
/// (numerically) positive definite.
StatusOr<Matrix> CholeskyFactor(const Matrix& a);

/// Solves A x = b for symmetric positive-definite A via Cholesky.
StatusOr<std::vector<double>> CholeskySolve(const Matrix& a,
                                            const std::vector<double>& b);

/// Solves A x = b for symmetric A via LDL^T with diagonal regularization:
/// if a pivot falls below `min_pivot`, it is lifted to `min_pivot`. This is
/// what LM uses, since its damped Hessians can be near-singular.
StatusOr<std::vector<double>> RegularizedLdltSolve(
    const Matrix& a, const std::vector<double>& b, double min_pivot = 1e-12);

/// Scratch storage for RegularizedLdltSolveInto. Reused across solves of the
/// same (or any) size; buffers only grow, so repeated solves of a fixed-size
/// system allocate nothing after the first call.
struct LdltWorkspace {
  Matrix l;
  std::vector<double> d;
  std::vector<double> z;
};

/// RegularizedLdltSolve into caller-owned storage. `x` must have size
/// a.rows(); `ws` provides the factor/scratch buffers. Runs the exact same
/// floating-point sequence as the allocating overload.
Status RegularizedLdltSolveInto(const Matrix& a, std::span<const double> b,
                                std::span<double> x, LdltWorkspace* ws,
                                double min_pivot = 1e-12);

/// Least-squares solution of min ||A x - b||_2 via Householder QR with
/// column norm checks. A must have rows() >= cols(). Returns
/// NumericalError for rank-deficient systems.
StatusOr<std::vector<double>> QrLeastSquares(const Matrix& a,
                                             const std::vector<double>& b);

/// Solves a general square system A x = b via partial-pivoting LU.
StatusOr<std::vector<double>> LuSolve(const Matrix& a,
                                      const std::vector<double>& b);

}  // namespace dspot

#endif  // DSPOT_LINALG_SOLVERS_H_
