#include "snapshot/update.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/cost.h"
#include "core/global_fit.h"
#include "core/local_fit.h"
#include "core/schedule_cache.h"
#include "core/simulate.h"
#include "obs/metrics.h"
#include "parallel/parallel_for.h"
#include "timeseries/metrics.h"

namespace dspot {

namespace {

// RMS residual of the old model over the already-explained range — the
// noise floor the appended window is judged against. Missing ticks are
// skipped; a floor keeps a perfectly fit prefix from flagging every
// appended tick.
double OldWindowSigma(std::span<const double> actual,
                      std::span<const double> estimate, size_t old_n) {
  double sum_sq = 0.0;
  size_t count = 0;
  for (size_t t = 0; t < old_n; ++t) {
    if (IsMissing(actual[t])) continue;
    const double r = actual[t] - estimate[t];
    sum_sq += r * r;
    ++count;
  }
  if (count == 0) return 0.0;
  return std::sqrt(sum_sq / static_cast<double>(count));
}

}  // namespace

StatusOr<ActivityTensor> ConcatTicks(const ActivityTensor& base,
                                     const ActivityTensor& extra,
                                     size_t extra_first_tick) {
  if (base.num_keywords() != extra.num_keywords() ||
      base.num_locations() != extra.num_locations()) {
    return Status::InvalidArgument(
        "ConcatTicks: append tensor is " +
        std::to_string(extra.num_keywords()) + "x" +
        std::to_string(extra.num_locations()) + " but the base tensor is " +
        std::to_string(base.num_keywords()) + "x" +
        std::to_string(base.num_locations()));
  }
  for (size_t i = 0; i < base.num_keywords(); ++i) {
    if (base.keywords()[i] != extra.keywords()[i]) {
      return Status::InvalidArgument(
          "ConcatTicks: append keyword " + std::to_string(i) + " is '" +
          extra.keywords()[i] + "' but the base tensor has '" +
          base.keywords()[i] + "'");
    }
  }
  for (size_t j = 0; j < base.num_locations(); ++j) {
    if (base.locations()[j] != extra.locations()[j]) {
      return Status::InvalidArgument(
          "ConcatTicks: append location " + std::to_string(j) + " is '" +
          extra.locations()[j] + "' but the base tensor has '" +
          base.locations()[j] + "'");
    }
  }
  // A declared placement must be exactly one past the base range: below it
  // the append re-delivers ticks the base already holds, above it the
  // stitched axis would invent unobserved ticks.
  if (extra_first_tick != kNpos && extra_first_tick < base.num_ticks()) {
    return Status::InvalidArgument(
        "ConcatTicks: append tensor starts at tick " +
        std::to_string(extra_first_tick) + " but the base tensor already " +
        "covers ticks [0, " + std::to_string(base.num_ticks()) +
        ") — duplicate or out-of-order ticks cannot be appended");
  }
  if (extra_first_tick != kNpos && extra_first_tick > base.num_ticks()) {
    return Status::InvalidArgument(
        "ConcatTicks: append tensor starts at tick " +
        std::to_string(extra_first_tick) + " but the base tensor ends at tick " +
        std::to_string(base.num_ticks()) +
        " — the gap of " +
        std::to_string(extra_first_tick - base.num_ticks()) +
        " tick(s) has no observations");
  }
  ActivityTensor out(base.num_keywords(), base.num_locations(),
                     base.num_ticks() + extra.num_ticks());
  for (size_t i = 0; i < base.num_keywords(); ++i) {
    DSPOT_RETURN_IF_ERROR(out.SetKeywordName(i, base.keywords()[i]));
  }
  for (size_t j = 0; j < base.num_locations(); ++j) {
    DSPOT_RETURN_IF_ERROR(out.SetLocationName(j, base.locations()[j]));
  }
  for (size_t i = 0; i < base.num_keywords(); ++i) {
    for (size_t j = 0; j < base.num_locations(); ++j) {
      for (size_t t = 0; t < base.num_ticks(); ++t) {
        out.at(i, j, t) = base.at(i, j, t);
      }
      for (size_t t = 0; t < extra.num_ticks(); ++t) {
        out.at(i, j, base.num_ticks() + t) = extra.at(i, j, t);
      }
    }
  }
  return out;
}

StatusOr<UpdateResult> UpdateFit(const ModelSnapshot& model,
                                 const ActivityTensor& tensor,
                                 const UpdateOptions& options) {
  DSPOT_SPAN("update_fit");
  DSPOT_COUNT("update_fit.calls", 1);
  const ModelParamSet& old = model.params;
  const size_t d = tensor.num_keywords();
  const size_t old_n = old.num_ticks;
  const size_t new_n = tensor.num_ticks();
  if (d != old.num_keywords || d != old.global.size()) {
    return Status::InvalidArgument(
        "UpdateFit: tensor has " + std::to_string(d) +
        " keywords but the model was fit on " +
        std::to_string(old.num_keywords));
  }
  if (tensor.num_locations() != old.num_locations) {
    return Status::InvalidArgument(
        "UpdateFit: tensor has " + std::to_string(tensor.num_locations()) +
        " locations but the model was fit on " +
        std::to_string(old.num_locations));
  }
  if (new_n < old_n) {
    return Status::InvalidArgument(
        "UpdateFit: tensor spans " + std::to_string(new_n) +
        " ticks but the model was fit on " + std::to_string(old_n) +
        " — updates only append, never shrink");
  }

  GuardContext guard;
  guard.deadline = options.fit.time_budget_ms > 0.0
                       ? Deadline::AfterMillis(options.fit.time_budget_ms)
                       : Deadline::Infinite();
  guard.cancel = options.fit.cancel;

  GlobalFitOptions global_options = options.fit.global;
  global_options.num_threads = options.fit.num_threads;
  global_options.guard = guard;
  global_options.on_keyword_error = options.fit.on_keyword_error;
  global_options.warm_start = nullptr;  // UpdateFit seeds refits itself

  UpdateResult update;
  update.appended_ticks = new_n - old_n;
  update.redetected.assign(d, false);

  // Phase 1: per keyword, extrapolate the old model over the appended
  // window and decide whether its cached shock schedule still explains
  // the new data (burst test). This is read-only on the old model, so
  // keywords run concurrently; the verdicts land in pre-assigned slots.
  ParallelOptions popts;
  popts.num_threads = options.fit.num_threads;
  popts.cancel = guard.cancel;
  std::vector<double> actual_storage(d * new_n);
  // Byte-per-keyword verdicts: vector<bool> packs bits, and adjacent-bit
  // writes from concurrent workers would race.
  std::vector<uint8_t> burst_verdict(d, 0);
  ParallelFor(d, popts, [&](size_t i) {
    std::span<double> actual(actual_storage.data() + i * new_n, new_n);
    tensor.GlobalSequenceInto(i, actual);
    const Series extrapolated = SimulateGlobal(old, i, new_n);
    const double sigma =
        OldWindowSigma(actual, extrapolated.values(), old_n);
    // A degenerate noise floor (empty or perfectly fit prefix) cannot
    // calibrate a z-score; fall back to full re-detection.
    if (sigma <= 0.0) {
      burst_verdict[i] = 1;
      return;
    }
    size_t bursting = 0;
    for (size_t t = old_n; t < new_n; ++t) {
      if (IsMissing(actual[t])) continue;
      if (std::fabs(actual[t] - extrapolated[t]) >
          options.burst_threshold * sigma) {
        ++bursting;
      }
    }
    burst_verdict[i] =
        bursting >= std::max<size_t>(options.min_burst_ticks, 1) ? 1 : 0;
  });
  for (size_t i = 0; i < d; ++i) {
    update.redetected[i] = burst_verdict[i] != 0;
  }
  if (guard.cancel.cancelled()) {
    return Status::Cancelled("UpdateFit: cancelled");
  }

  // Phase 2: warm refit every keyword. Quiet keywords reuse the cached
  // schedule — the shock cap is pinned at the current inventory, so the
  // alternation re-optimizes strengths and base parameters but proposes
  // no new events. Bursting keywords refit with detection wide open.
  DspotResult& result = update.result;
  ModelParamSet& params = result.params;
  params.num_keywords = d;
  params.num_locations = tensor.num_locations();
  params.num_ticks = new_n;
  std::vector<StatusOr<GlobalSequenceFit>> fits =
      ParallelTryMap<GlobalSequenceFit>(d, popts, [&](size_t i) {
        GlobalSequenceFit previous;
        previous.params = old.global[i];
        for (const Shock& shock : old.shocks) {
          if (shock.keyword == i) previous.shocks.push_back(shock);
        }
        previous.estimate = Series(old_n);
        GlobalFitOptions keyword_options = global_options;
        if (!update.redetected[i]) {
          keyword_options.max_shocks_per_keyword = previous.shocks.size();
        } else {
          DSPOT_COUNT("update_fit.keywords_redetected", 1);
        }
        return RefitGlobalSequence(tensor.GlobalSequence(i), i, d, previous,
                                   keyword_options);
      });
  if (guard.cancel.cancelled()) {
    return Status::Cancelled("UpdateFit: cancelled");
  }
  result.keyword_status.reserve(d);
  params.global.reserve(d);
  for (StatusOr<GlobalSequenceFit>& fit : fits) {
    result.keyword_status.push_back(fit.status());
    if (!fit.ok()) {
      if (global_options.on_keyword_error == KeywordErrorPolicy::kFail) {
        return fit.status();
      }
      params.global.push_back(KeywordGlobalParams());
      continue;
    }
    result.health.Merge(fit->health);
    params.global.push_back(fit->params);
    for (Shock& shock : fit->shocks) {
      params.shocks.push_back(std::move(shock));
    }
  }

  if (options.fit.fit_local && tensor.num_locations() > 1) {
    LocalFitOptions local_options = options.fit.local;
    local_options.num_threads = options.fit.num_threads;
    local_options.guard = guard;
    FitHealth local_health;
    DSPOT_RETURN_IF_ERROR(
        LocalFit(tensor, &params, local_options, &local_health));
    result.health.Merge(local_health);
  }

  result.global_estimates.resize(d);
  result.global_rmse.resize(d);
  ParallelFor(d, popts, [&](size_t i) {
    Series estimate(new_n);
    ScheduleCache cache;
    SimulateGlobalInto(params, i, &cache, estimate.mutable_values());
    std::span<const double> actual(actual_storage.data() + i * new_n, new_n);
    result.global_rmse[i] =
        Rmse(actual, std::span<const double>(estimate.values()));
    result.global_estimates[i] = std::move(estimate);
  });
  CostWorkspace cost_workspace;
  result.total_cost_bits = TotalCostBits(tensor, params, &cost_workspace);
  size_t total_redetected = 0;
  for (size_t i = 0; i < d; ++i) {
    total_redetected += update.redetected[i] ? 1u : 0u;
  }
  DSPOT_GAUGE_SET("update_fit.redetected_fraction",
                  d == 0 ? 0.0
                         : static_cast<double>(total_redetected) /
                               static_cast<double>(d));
  return update;
}

}  // namespace dspot
