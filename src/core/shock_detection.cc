#include "core/shock_detection.h"

#include <algorithm>
#include <cstdlib>
#include <set>

#include "obs/metrics.h"
#include "timeseries/stats.h"

namespace dspot {

namespace {

/// Distance of `value` from the nearest multiple of `period`.
size_t CycleDrift(size_t value, size_t period) {
  const size_t mod = value % period;
  return std::min(mod, period - mod);
}

/// Median of a small vector (by copy).
size_t MedianOf(std::vector<size_t> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

std::vector<Shock> ProposeShockCandidates(
    const Series& residual, size_t keyword,
    const ShockDetectionOptions& options) {
  DSPOT_SPAN("shock_detection.propose");
  const size_t n = residual.size();
  const std::vector<Burst> bursts = FindBursts(residual, options.burst_options);
  if (bursts.empty()) {
    return {};
  }
  const Burst& anchor = bursts[0];

  std::vector<Shock> candidates;
  // Hypothesis 0: one-shot shock at the anchor burst.
  {
    Shock shock;
    shock.keyword = keyword;
    shock.period = Shock::kNonCyclic;
    shock.start = anchor.start;
    shock.width = anchor.width;
    shock.global_strengths.assign(shock.NumOccurrences(n), 0.0);
    candidates.push_back(std::move(shock));
  }
  if (!options.allow_cyclic || bursts.size() < options.min_aligned_bursts) {
    DSPOT_COUNT("shock_detection.candidates", candidates.size());
    return candidates;
  }

  // Period hypotheses come from two sources. First, the autocorrelation of
  // the residual itself — robust when occurrence strengths vary enough that
  // burst-gap analysis latches onto every-other-spike periods (2P instead
  // of P).
  std::set<size_t> periods;
  for (size_t p : CandidatePeriods(residual, n / 2)) {
    if (p >= options.min_period) {
      periods.insert(p);
    }
  }
  // Second, gaps between the anchor and every other burst, and integer
  // divisors of those gaps (a biennial event observed 3 times shows gaps
  // 2P and 4P; the divisor walk recovers P).
  for (const Burst& b : bursts) {
    const size_t gap = b.start > anchor.start ? b.start - anchor.start
                                              : anchor.start - b.start;
    if (gap < options.min_period) continue;
    for (size_t div = 1; div <= 4; ++div) {
      const size_t p = gap / div;
      if (p >= options.min_period && gap % div == 0) {
        periods.insert(p);
      }
    }
  }

  struct PeriodScore {
    size_t period;
    size_t aligned;
    size_t earliest_start;
    size_t width;
  };
  std::vector<PeriodScore> scored;
  for (size_t period : periods) {
    // A period below 2 is not a cycle: period 0 would divide by zero in
    // CycleDrift and period 1 aligns every burst with every other, so a
    // degenerate min_period cannot be allowed to reach the scorer.
    if (period < 2) continue;
    // Dense combs are not events (see max_occurrences doc).
    if ((n / period) + 1 > options.max_occurrences) {
      continue;
    }
    std::vector<size_t> aligned_starts;
    std::vector<size_t> aligned_widths;
    for (const Burst& b : bursts) {
      const size_t gap = b.start > anchor.start ? b.start - anchor.start
                                                : anchor.start - b.start;
      if (gap == 0 || CycleDrift(gap, period) <= options.alignment_tolerance) {
        aligned_starts.push_back(b.start);
        aligned_widths.push_back(b.width);
      }
    }
    if (aligned_starts.size() < options.min_aligned_bursts) continue;
    PeriodScore score;
    score.period = period;
    score.aligned = aligned_starts.size();
    score.earliest_start =
        *std::min_element(aligned_starts.begin(), aligned_starts.end());
    score.width = MedianOf(aligned_widths);
    scored.push_back(score);
  }
  // Prefer hypotheses that explain more bursts; break ties toward longer
  // periods (fewer phantom occurrences to pay for).
  std::sort(scored.begin(), scored.end(),
            [](const PeriodScore& a, const PeriodScore& b) {
              if (a.aligned != b.aligned) return a.aligned > b.aligned;
              return a.period > b.period;
            });
  for (size_t k = 0; k < scored.size() && k < options.max_period_candidates;
       ++k) {
    Shock shock;
    shock.keyword = keyword;
    shock.period = scored[k].period;
    shock.start = scored[k].earliest_start;
    shock.width = std::max<size_t>(scored[k].width, 1);
    shock.global_strengths.assign(shock.NumOccurrences(n), 0.0);
    candidates.push_back(std::move(shock));
  }
  DSPOT_COUNT("shock_detection.candidates", candidates.size());
  return candidates;
}

}  // namespace dspot
