#ifndef DSPOT_KERNELS_DUAL_H_
#define DSPOT_KERNELS_DUAL_H_

#include <cstddef>

namespace dspot {
namespace kernels {

/// Forward-mode dual number: a value plus N partial derivatives carried
/// through every arithmetic operation. Seeding parameter p with
/// d[p] = 1 and running a computation once yields the value and the full
/// gradient row simultaneously — for the SIV recurrence this turns the
/// O(np) re-simulations of a numeric Jacobian into one pass.
///
/// The value component performs EXACTLY the same operation sequence as a
/// plain double computation, so value(f(Dual inputs)) is bit-identical to
/// f(double inputs). Branchy primitives (Min/Max/Clamp below) select by
/// value and take the chosen branch's partials; at clamp boundaries the
/// derivative is the one-sided derivative of the active branch, which is
/// what LM wants (the same convention a forward-difference step lands on).
///
/// Plain portable C++ — the partial loops are trivially unrolled or
/// autovectorized by the compiler in the flagged kernels TU; no intrinsics
/// so the type can be used from any TU (e.g. epidemics/sir_family.cc).
template <size_t N>
struct Dual {
  double v = 0.0;
  double d[N] = {};

  Dual() = default;
  /// Constant (zero derivative).
  Dual(double value) : v(value) {}  // NOLINT(google-explicit-constructor)

  /// Independent variable: seed slot `slot` with derivative 1.
  static Dual Var(double value, size_t slot) {
    Dual x(value);
    x.d[slot] = 1.0;
    return x;
  }

  Dual& operator+=(const Dual& o) {
    v += o.v;
    for (size_t k = 0; k < N; ++k) d[k] += o.d[k];
    return *this;
  }
  Dual& operator-=(const Dual& o) {
    v -= o.v;
    for (size_t k = 0; k < N; ++k) d[k] -= o.d[k];
    return *this;
  }

  friend Dual operator+(Dual a, const Dual& b) { return a += b; }
  friend Dual operator-(Dual a, const Dual& b) { return a -= b; }
  friend Dual operator-(const Dual& a) {
    Dual r;
    r.v = -a.v;
    for (size_t k = 0; k < N; ++k) r.d[k] = -a.d[k];
    return r;
  }

  friend Dual operator*(const Dual& a, const Dual& b) {
    Dual r;
    r.v = a.v * b.v;
    for (size_t k = 0; k < N; ++k) r.d[k] = a.d[k] * b.v + a.v * b.d[k];
    return r;
  }

  friend Dual operator/(const Dual& a, const Dual& b) {
    Dual r;
    r.v = a.v / b.v;
    const double inv_b2 = 1.0 / (b.v * b.v);
    for (size_t k = 0; k < N; ++k) {
      r.d[k] = (a.d[k] * b.v - a.v * b.d[k]) * inv_b2;
    }
    return r;
  }

  friend bool operator<(const Dual& a, const Dual& b) { return a.v < b.v; }
  friend bool operator<=(const Dual& a, const Dual& b) { return a.v <= b.v; }
  friend bool operator>(const Dual& a, const Dual& b) { return a.v > b.v; }
  friend bool operator>=(const Dual& a, const Dual& b) { return a.v >= b.v; }
};

/// Generic numeric primitives shared by the templated recurrences. The
/// double overloads reproduce std::max / std::min / std::clamp exactly
/// (same comparison, same operand returned) so the templated kernels are
/// bit-identical to the scalar originals when instantiated for double.
inline double TMax(double a, double b) { return a < b ? b : a; }
inline double TMin(double a, double b) { return b < a ? b : a; }
inline double TClamp(double x, double lo, double hi) {
  return x < lo ? lo : (hi < x ? hi : x);
}

template <size_t N>
Dual<N> TMax(const Dual<N>& a, const Dual<N>& b) {
  return a.v < b.v ? b : a;
}
template <size_t N>
Dual<N> TMin(const Dual<N>& a, const Dual<N>& b) {
  return b.v < a.v ? b : a;
}
template <size_t N>
Dual<N> TClamp(const Dual<N>& x, const Dual<N>& lo, const Dual<N>& hi) {
  return x.v < lo.v ? lo : (hi.v < x.v ? hi : x);
}

/// The value component, uniformly for double and Dual operands.
inline double ValueOf(double x) { return x; }
template <size_t N>
double ValueOf(const Dual<N>& x) {
  return x.v;
}

}  // namespace kernels
}  // namespace dspot

#endif  // DSPOT_KERNELS_DUAL_H_
