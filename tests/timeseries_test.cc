// Unit tests for src/timeseries: Series, metrics, stats, smoothing, peaks.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/random.h"
#include "timeseries/metrics.h"
#include "timeseries/peaks.h"
#include "timeseries/series.h"
#include "timeseries/smoothing.h"
#include "timeseries/stats.h"

namespace dspot {
namespace {

TEST(Series, BasicsAndMissing) {
  Series s(5);
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s.observed_count(), 5u);
  s[2] = kMissingValue;
  EXPECT_EQ(s.observed_count(), 4u);
  EXPECT_FALSE(s.IsObserved(2));
  EXPECT_TRUE(s.IsObserved(0));
}

TEST(Series, SliceClampsEnd) {
  Series s(std::vector<double>{0, 1, 2, 3, 4});
  Series mid = s.Slice(1, 3);
  ASSERT_EQ(mid.size(), 2u);
  EXPECT_DOUBLE_EQ(mid[0], 1.0);
  EXPECT_DOUBLE_EQ(mid[1], 2.0);
  EXPECT_EQ(s.Slice(3, 100).size(), 2u);
  EXPECT_EQ(s.Slice(4, 2).size(), 0u);
}

TEST(Series, AddTogetherPropagatesMissing) {
  Series a(std::vector<double>{1, kMissingValue, 3});
  Series b(std::vector<double>{10, 20, 30});
  Series sum = Series::AddTogether(a, b);
  EXPECT_DOUBLE_EQ(sum[0], 11.0);
  EXPECT_TRUE(IsMissing(sum[1]));
  EXPECT_DOUBLE_EQ(sum[2], 33.0);
}

TEST(Series, InterpolationFillsGaps) {
  Series s(std::vector<double>{kMissingValue, 2.0, kMissingValue,
                               kMissingValue, 8.0, kMissingValue});
  Series filled = s.Interpolated();
  EXPECT_DOUBLE_EQ(filled[0], 2.0);  // edge takes nearest
  EXPECT_DOUBLE_EQ(filled[1], 2.0);
  EXPECT_DOUBLE_EQ(filled[2], 4.0);  // linear between 2 and 8
  EXPECT_DOUBLE_EQ(filled[3], 6.0);
  EXPECT_DOUBLE_EQ(filled[4], 8.0);
  EXPECT_DOUBLE_EQ(filled[5], 8.0);
}

TEST(Series, InterpolationAllMissingBecomesZero) {
  Series s(std::vector<double>{kMissingValue, kMissingValue});
  Series filled = s.Interpolated();
  EXPECT_DOUBLE_EQ(filled[0], 0.0);
  EXPECT_DOUBLE_EQ(filled[1], 0.0);
}

TEST(Series, RescaledToMax) {
  Series s(std::vector<double>{1, 2, 4});
  Series r = s.RescaledToMax(100.0);
  EXPECT_DOUBLE_EQ(r[2], 100.0);
  EXPECT_DOUBLE_EQ(r[0], 25.0);
  // Non-positive max: no-op.
  Series z(std::vector<double>{0, 0});
  EXPECT_DOUBLE_EQ(z.RescaledToMax(10.0)[0], 0.0);
}

TEST(Series, ToStringTruncates) {
  Series s(20);
  const std::string str = s.ToString(4);
  EXPECT_NE(str.find("(20 total)"), std::string::npos);
}

TEST(Metrics, RmseKnownValue) {
  Series a(std::vector<double>{0, 0, 0, 0});
  Series e(std::vector<double>{1, -1, 1, -1});
  EXPECT_DOUBLE_EQ(Rmse(a, e), 1.0);
}

TEST(Metrics, RmseSkipsMissing) {
  Series a(std::vector<double>{0, kMissingValue, 0});
  Series e(std::vector<double>{3, 100, 4});
  EXPECT_DOUBLE_EQ(Rmse(a, e), 3.5355339059327378);  // sqrt((9+16)/2)
}

TEST(Metrics, RmseIdenticalIsZero) {
  Series a(std::vector<double>{1, 2, 3});
  EXPECT_DOUBLE_EQ(Rmse(a, a), 0.0);
}

TEST(Metrics, MaeAndNormalizedRmse) {
  Series a(std::vector<double>{0, 10});
  Series e(std::vector<double>{2, 8});
  EXPECT_DOUBLE_EQ(Mae(a, e), 2.0);
  EXPECT_DOUBLE_EQ(NormalizedRmse(a, e), 0.2);
}

TEST(Metrics, RSquaredPerfectAndPoor) {
  Series a(std::vector<double>{1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(RSquared(a, a), 1.0);
  Series bad(std::vector<double>{4, 3, 2, 1});
  EXPECT_LT(RSquared(a, bad), 0.0);
}

TEST(Stats, AutocorrelationOfPeriodicSignal) {
  const size_t period = 10;
  Series s(100);
  for (size_t t = 0; t < s.size(); ++t) {
    s[t] = std::sin(2.0 * M_PI * static_cast<double>(t) / period);
  }
  auto acf = Autocorrelation(s, 30);
  EXPECT_NEAR(acf[0], 1.0, 1e-9);
  EXPECT_GT(acf[period], 0.8);
  EXPECT_LT(acf[period / 2], -0.5);
}

TEST(Stats, AutocorrelationConstantSeriesIsZero) {
  Series s(std::vector<double>(50, 3.0));
  auto acf = Autocorrelation(s, 10);
  for (double v : acf) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(Stats, PeriodogramPeaksAtTruePeriod) {
  const size_t period = 16;
  Series s(128);
  for (size_t t = 0; t < s.size(); ++t) {
    s[t] = std::cos(2.0 * M_PI * static_cast<double>(t) / period);
  }
  auto power = PeriodogramByPeriod(s, 40);
  size_t best = 2;
  for (size_t p = 2; p < power.size(); ++p) {
    if (power[p] > power[best]) best = p;
  }
  EXPECT_EQ(best, period);
}

TEST(Stats, CandidatePeriodsFindsSpikeTrainPeriod) {
  Series s(260);
  for (size_t t = 6; t < s.size(); t += 52) {
    s[t] = 100.0;
    if (t + 1 < s.size()) s[t + 1] = 60.0;
  }
  auto candidates = CandidatePeriods(s, 130);
  ASSERT_FALSE(candidates.empty());
  EXPECT_NEAR(static_cast<double>(candidates[0]), 52.0, 1.0);
}

TEST(Stats, CandidatePeriodsEmptyForNoise) {
  Random rng(5);
  Series s(64);
  for (size_t t = 0; t < s.size(); ++t) s[t] = rng.Gaussian();
  // White noise may admit weak spurious peaks; require none above 0.5.
  auto candidates = CandidatePeriods(s, 32, /*min_acf=*/0.5);
  EXPECT_TRUE(candidates.empty());
}

TEST(Stats, AutocorrelationInfiniteSampleIsZero) {
  // An inf sample survives interpolation (which only patches NaN) and used
  // to make the mean, the denominator, and hence every ACF entry NaN.
  Series s(50);
  for (size_t t = 0; t < s.size(); ++t) s[t] = static_cast<double>(t % 7);
  s[20] = std::numeric_limits<double>::infinity();
  auto acf = Autocorrelation(s, 10);
  for (double v : acf) {
    EXPECT_TRUE(std::isfinite(v)) << v;
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(Stats, PeriodogramInfiniteSampleIsZero) {
  Series s(64);
  for (size_t t = 0; t < s.size(); ++t) s[t] = static_cast<double>(t % 5);
  s[10] = -std::numeric_limits<double>::infinity();
  auto power = PeriodogramByPeriod(s, 20);
  for (double v : power) {
    EXPECT_TRUE(std::isfinite(v)) << v;
  }
}

TEST(Stats, CandidatePeriodsDegenerateSeries) {
  // Constant series: no structure, no candidates, no NaN peaks.
  EXPECT_TRUE(CandidatePeriods(Series(std::vector<double>(40, 5.0)), 20)
                  .empty());
  // All-missing series interpolates to zeros: same.
  Series missing(30);
  for (size_t t = 0; t < missing.size(); ++t) missing[t] = kMissingValue;
  EXPECT_TRUE(CandidatePeriods(missing, 15).empty());
  // Shorter than two periods: max_period clamps below 2 and returns empty
  // rather than out-of-range lags.
  Series three(std::vector<double>{1.0, 2.0, 3.0});
  EXPECT_TRUE(CandidatePeriods(three, 50).empty());
  // Inf contamination: the ACF is all zero, so no candidate can surface.
  Series inf_series(40);
  for (size_t t = 0; t < inf_series.size(); ++t) {
    inf_series[t] = static_cast<double>(t % 8);
  }
  inf_series[5] = std::numeric_limits<double>::infinity();
  for (size_t p : CandidatePeriods(inf_series, 20)) {
    EXPECT_LE(p, 20u);
  }
}

TEST(Stats, ZScoresInfiniteSampleDegradesToZeros) {
  Series s(std::vector<double>{1.0, 2.0,
                               std::numeric_limits<double>::infinity()});
  auto z = ZScores(s);
  for (double v : z) {
    EXPECT_TRUE(std::isfinite(v)) << v;
  }
}

TEST(Stats, ZScoresStandardize) {
  Series s(std::vector<double>{0, 10});
  auto z = ZScores(s);
  EXPECT_NEAR(z[0], -1.0, 1e-9);
  EXPECT_NEAR(z[1], 1.0, 1e-9);
}

TEST(Smoothing, MovingAverageFlattens) {
  Series s(std::vector<double>{0, 10, 0, 10, 0});
  Series ma = MovingAverage(s, 1);
  EXPECT_NEAR(ma[2], 20.0 / 3.0, 1e-9);
  EXPECT_NEAR(ma[0], 5.0, 1e-9);  // window [0, 1]
}

TEST(Smoothing, EwmaConverges) {
  Series s(std::vector<double>(50, 10.0));
  s[0] = 0.0;
  Series e = Ewma(s, 0.5);
  EXPECT_NEAR(e[49], 10.0, 1e-9);
}

TEST(Smoothing, DifferenceBasics) {
  Series s(std::vector<double>{1, 4, 9});
  Series d = Difference(s);
  EXPECT_DOUBLE_EQ(d[0], 0.0);
  EXPECT_DOUBLE_EQ(d[1], 3.0);
  EXPECT_DOUBLE_EQ(d[2], 5.0);
}

TEST(Peaks, FindsSingleBurst) {
  Series residual(100);
  for (size_t t = 40; t < 44; ++t) residual[t] = 50.0;
  auto bursts = FindBursts(residual);
  ASSERT_EQ(bursts.size(), 1u);
  EXPECT_EQ(bursts[0].start, 40u);
  EXPECT_GE(bursts[0].width, 3u);
  EXPECT_DOUBLE_EQ(bursts[0].peak_value, 50.0);
}

TEST(Peaks, OrdersByPeakHeight) {
  Series residual(100);
  residual[20] = 30.0;
  residual[60] = 80.0;
  auto bursts = FindBursts(residual);
  ASSERT_GE(bursts.size(), 2u);
  EXPECT_EQ(bursts[0].start, 60u);
  EXPECT_EQ(bursts[1].start, 20u);
}

TEST(Peaks, NoBurstsInFlatSeries) {
  Series residual(std::vector<double>(50, 1.0));
  EXPECT_TRUE(FindBursts(residual).empty());
}

TEST(Peaks, NegativeResidualsIgnored) {
  Series residual(100);
  for (size_t t = 0; t < 100; ++t) residual[t] = -10.0;
  residual[50] = 5.0;
  auto bursts = FindBursts(residual);
  ASSERT_EQ(bursts.size(), 1u);
  EXPECT_EQ(bursts[0].start, 50u);
}

TEST(Peaks, HasBurstNearTolerance) {
  std::vector<Burst> bursts = {{.start = 40, .width = 3}};
  EXPECT_TRUE(HasBurstNear(bursts, 41, 0));
  EXPECT_TRUE(HasBurstNear(bursts, 38, 2));
  EXPECT_FALSE(HasBurstNear(bursts, 50, 2));
}

TEST(Peaks, RespectsMaxBursts) {
  Series residual(200);
  for (size_t t = 5; t < 200; t += 10) residual[t] = 100.0;
  BurstOptions options;
  options.max_bursts = 3;
  EXPECT_EQ(FindBursts(residual, options).size(), 3u);
}

}  // namespace
}  // namespace dspot
