// End-to-end smoke test: generate a small synthetic tensor, fit Δ-SPOT,
// and check the fit is sane. Deeper behaviour is covered by the per-module
// suites.

#include <gtest/gtest.h>

#include "core/dspot.h"
#include "datagen/catalog.h"
#include "datagen/generator.h"
#include "timeseries/metrics.h"

namespace dspot {
namespace {

TEST(Smoke, FitGrammyGlobal) {
  GeneratorConfig config = GoogleTrendsConfig();
  config.n_ticks = 260;  // 5 years is plenty for a smoke test
  config.num_locations = 4;
  config.num_outlier_locations = 0;
  auto generated = GenerateTensor({GrammyScenario()}, config);
  ASSERT_TRUE(generated.ok()) << generated.status().ToString();

  DspotOptions options;
  options.fit_local = false;
  auto result = FitDspot(generated->tensor, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const Series global = generated->tensor.GlobalSequence(0);
  const double range = global.MaxValue() - global.MinValue();
  EXPECT_LT(result->global_rmse[0], 0.3 * range)
      << "fit should track the sequence within 30% of its range";
  EXPECT_GE(result->params.ShockCountFor(0), 1u)
      << "the annual Grammy shock should be detected";
}

}  // namespace
}  // namespace dspot
