#include "core/simulate.h"

#include <algorithm>
#include <cmath>

namespace dspot {

SivTrajectory SimulateSivFull(const SivInputs& inputs, size_t n_ticks) {
  SivTrajectory traj;
  traj.susceptible = Series(n_ticks);
  traj.infective = Series(n_ticks);
  traj.vigilant = Series(n_ticks);

  const double n = std::max(inputs.population, 1e-9);
  double i = std::clamp(inputs.i0, 0.0, n);
  double s = n - i;
  double v = 0.0;
  const double delta = std::clamp(inputs.delta, 0.0, 1.0);
  const double gamma = std::clamp(inputs.gamma, 0.0, 1.0);

  for (size_t t = 0; t < n_ticks; ++t) {
    traj.susceptible[t] = s;
    traj.infective[t] = i;
    traj.vigilant[t] = v;

    const double eps =
        t < inputs.epsilon.size() ? inputs.epsilon[t] : 1.0;
    const double eta = t < inputs.eta.size() ? inputs.eta[t] : 0.0;
    const double raw_infect =
        inputs.beta * (s / n) * eps * i * (1.0 + eta);
    const double infect = std::clamp(raw_infect, 0.0, s);
    const double recover = delta * i;
    const double wane = gamma * v;

    s += wane - infect;
    i += infect - recover;
    v += recover - wane;
  }
  return traj;
}

Series SimulateSiv(const SivInputs& inputs, size_t n_ticks) {
  return SimulateSivFull(inputs, n_ticks).infective;
}

std::vector<double> BuildEta(double growth_rate, size_t growth_start,
                             size_t n_ticks) {
  std::vector<double> eta(n_ticks, 0.0);
  if (growth_start == kNpos || growth_rate == 0.0) {
    return eta;
  }
  for (size_t t = growth_start; t < n_ticks; ++t) {
    eta[t] = growth_rate;
  }
  return eta;
}

Series SimulateGlobal(const ModelParamSet& params, size_t keyword,
                      size_t n_ticks) {
  const KeywordGlobalParams& g = params.global[keyword];
  SivInputs inputs;
  inputs.population = g.population;
  inputs.beta = g.beta;
  inputs.delta = g.delta;
  inputs.gamma = g.gamma;
  inputs.i0 = g.i0;
  inputs.epsilon = BuildGlobalEpsilon(params.shocks, keyword, n_ticks);
  inputs.eta = g.has_growth()
                   ? BuildEta(g.growth_rate, g.growth_start, n_ticks)
                   : std::vector<double>();
  return SimulateSiv(inputs, n_ticks);
}

Series SimulateLocal(const ModelParamSet& params, size_t keyword,
                     size_t location, size_t n_ticks) {
  const KeywordGlobalParams& g = params.global[keyword];
  SivInputs inputs;
  inputs.beta = g.beta;
  inputs.delta = g.delta;
  inputs.gamma = g.gamma;
  inputs.epsilon = BuildLocalEpsilon(params.shocks, keyword, location,
                                     n_ticks);
  if (params.has_local()) {
    const double local_pop = params.base_local(keyword, location);
    inputs.population = local_pop;
    inputs.i0 = g.i0 * local_pop / std::max(g.population, 1e-9);
    const double local_growth =
        params.growth_local.empty() ? 0.0
                                    : params.growth_local(keyword, location);
    inputs.eta = g.has_growth()
                     ? BuildEta(local_growth, g.growth_start, n_ticks)
                     : std::vector<double>();
  } else {
    // LocalFit has not run yet: assume an even population share.
    const double share =
        1.0 / static_cast<double>(std::max<size_t>(params.num_locations, 1));
    inputs.population = g.population * share;
    inputs.i0 = g.i0 * share;
    inputs.eta = g.has_growth()
                     ? BuildEta(g.growth_rate, g.growth_start, n_ticks)
                     : std::vector<double>();
  }
  return SimulateSiv(inputs, n_ticks);
}

}  // namespace dspot
