// dspot_stream ingestion benchmark: drives a synthetic 100k+ keyword tick
// stream (a long quiet tail plus a small hot head with injected bursts)
// through StreamEngine, measuring the append hot path (p50/p99 latency),
// flush cost, LM work, and peak buffered bytes — then replays the same
// stream at 8 threads and checks the encoded engine state is bit-identical
// to the single-threaded run. A third leg repeats the serial run through
// DurableEngine (write-ahead log on), quantifying the WAL append tax and
// the crash-recovery replay rate. Emits BENCH_stream.json for CI.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "datagen/tick_stream.h"
#include "durable/durable_engine.h"
#include "guard/guard.h"
#include "obs/metrics.h"
#include "stream/stream_engine.h"

namespace dspot {
namespace {

/// Flush cadence in ticks: the engine triages dirty keywords every
/// kFlushEvery ticks of stream time, like a periodic ingest batch.
constexpr int64_t kFlushEvery = 16;

/// Every kSampleEvery-th append is timed individually for the latency
/// percentiles (timing all ~800k appends would measure the clock, not the
/// engine).
constexpr size_t kSampleEvery = 16;

double LmIterations() {
  return static_cast<double>(
      ObsRegistry::Instance().Snapshot().CounterValue("lm.iterations"));
}

double Percentile(std::vector<double>* sorted_in_place, double p) {
  if (sorted_in_place->empty()) return 0.0;
  std::sort(sorted_in_place->begin(), sorted_in_place->end());
  const size_t idx = std::min(
      sorted_in_place->size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_in_place->size())));
  return (*sorted_in_place)[idx];
}

struct RunResult {
  bool ok = false;
  double wall_ms = 0.0;
  double flush_ms = 0.0;       ///< total time inside Flush()
  double append_p50_us = 0.0;  ///< quiet-keyword append latency
  double append_p99_us = 0.0;
  double lm_iters = 0.0;
  size_t flushes = 0;
  size_t forecasts = 0;  ///< keywords with a readable forecast at the end
  StreamStats stats;
  std::vector<uint8_t> state;
};

StreamOptions BenchStreamOptions(size_t threads) {
  StreamOptions options;
  options.num_threads = threads;
  options.ring_capacity = 128;
  options.min_fit_ticks = 32;
  options.refit_interval = 32;
  options.forecast_horizon = 16;
  return options;
}

/// Drives the tick stream through `api` (a StreamEngine, or a DurableEngine
/// wrapping one — both expose EnsureKeyword/AppendById/Flush) and reads the
/// final state back from `eng`.
template <typename Api>
RunResult DriveStream(const TickStreamConfig& config, Api& api,
                      StreamEngine& eng) {
  RunResult result;

  // Intern every keyword up front so the hot loop measures AppendById, the
  // allocation-free path a resolved ingest pipeline uses.
  for (size_t i = 0; i < config.num_keywords; ++i) {
    auto interned = api.EnsureKeyword(TickStreamKeywordName(
        static_cast<uint32_t>(i)));
    if (!interned.ok()) {
      std::fprintf(stderr, "intern failed: %s\n",
                   interned.status().ToString().c_str());
      return result;
    }
  }

  ObsRegistry::Instance().Reset();
  std::vector<double> append_us;
  append_us.reserve(config.num_keywords * config.quiet_ticks / kSampleEvery +
                    1024);
  size_t appended = 0;
  int64_t last_flushed_tick = -1;
  bool failed = false;

  const auto t0 = std::chrono::steady_clock::now();
  ForEachStreamTick(config, [&](const TickRecord& r) {
    if (failed) return;
    const int64_t tick = (r.timestamp - config.origin) /
                         std::max<int64_t>(config.ticks_resolution, 1);
    if (tick / kFlushEvery > last_flushed_tick / kFlushEvery &&
        last_flushed_tick >= 0) {
      const auto f0 = std::chrono::steady_clock::now();
      auto report = api.Flush();
      result.flush_ms += ElapsedMs(f0);
      if (!report.ok()) {
        std::fprintf(stderr, "flush failed: %s\n",
                     report.status().ToString().c_str());
        failed = true;
        return;
      }
      ++result.flushes;
    }
    last_flushed_tick = tick;

    Status status;
    const bool quiet = r.keyword >= 64;  // hot head is the first 64 ids
    if (quiet && appended % kSampleEvery == 0) {
      const auto a0 = std::chrono::steady_clock::now();
      status = api.AppendById(r.keyword, r.timestamp, r.count);
      append_us.push_back(ElapsedMs(a0) * 1000.0);
    } else {
      status = api.AppendById(r.keyword, r.timestamp, r.count);
    }
    ++appended;
    if (!status.ok()) {
      std::fprintf(stderr, "append failed: %s\n", status.ToString().c_str());
      failed = true;
    }
  });
  if (failed) return result;

  const auto f0 = std::chrono::steady_clock::now();
  auto report = api.Flush();
  result.flush_ms += ElapsedMs(f0);
  if (!report.ok()) {
    std::fprintf(stderr, "final flush failed: %s\n",
                 report.status().ToString().c_str());
    return result;
  }
  ++result.flushes;
  result.wall_ms = ElapsedMs(t0);

  // Exercise the O(1) read path on every keyword; count published models.
  std::vector<double> horizon(eng.options().forecast_horizon);
  for (size_t i = 0; i < eng.num_keywords(); ++i) {
    int64_t start = 0;
    if (eng.ForecastInto(i, horizon, &start).ok()) {
      ++result.forecasts;
    }
  }

  result.append_p50_us = Percentile(&append_us, 0.50);
  result.append_p99_us = Percentile(&append_us, 0.99);
  result.lm_iters = LmIterations();
  result.stats = eng.stats();
  result.state = eng.EncodeState();
  result.ok = true;
  return result;
}

RunResult RunStream(const TickStreamConfig& config, size_t threads) {
  StreamEngine engine(BenchStreamOptions(threads));
  return DriveStream(config, engine, engine);
}

RunResult RunStreamWal(const TickStreamConfig& config,
                       const DurableOptions& doptions,
                       const std::string& wal_dir) {
  auto opened = DurableEngine::Open(wal_dir, doptions);
  if (!opened.ok()) {
    std::fprintf(stderr, "durable open failed: %s\n",
                 opened.status().ToString().c_str());
    return RunResult();
  }
  return DriveStream(config, **opened, (*opened)->engine());
}

void PrintRun(const char* label, const RunResult& r) {
  std::printf(
      "%-10s wall %8.1f ms | flush %7.1f ms (%zu) | append p50 %6.2f us "
      "p99 %6.2f us | lm %7.0f | fits c/w/e %zu/%zu/%zu | peak %7.2f MiB | "
      "forecasts %zu\n",
      label, r.wall_ms, r.flush_ms, r.flushes, r.append_p50_us,
      r.append_p99_us, r.lm_iters, static_cast<size_t>(r.stats.cold_fits),
      static_cast<size_t>(r.stats.warm_refits),
      static_cast<size_t>(r.stats.escalations),
      static_cast<double>(r.stats.peak_buffer_bytes) / (1024.0 * 1024.0),
      r.forecasts);
}

void AddRow(bench::BenchJson* json, const char* label, size_t threads,
            const RunResult& r) {
  json->AddRow();
  json->SetRow("label", std::string(label));
  json->SetRow("threads", static_cast<double>(threads));
  json->SetRow("wall_ms", r.wall_ms);
  json->SetRow("flush_ms", r.flush_ms);
  json->SetRow("flushes", static_cast<double>(r.flushes));
  json->SetRow("append_p50_us", r.append_p50_us);
  json->SetRow("append_p99_us", r.append_p99_us);
  json->SetRow("lm_iterations", r.lm_iters);
  json->SetRow("appends", static_cast<double>(r.stats.appends));
  json->SetRow("cold_fits", static_cast<double>(r.stats.cold_fits));
  json->SetRow("warm_refits", static_cast<double>(r.stats.warm_refits));
  json->SetRow("escalations", static_cast<double>(r.stats.escalations));
  json->SetRow("peak_buffer_bytes",
               static_cast<double>(r.stats.peak_buffer_bytes));
  json->SetRow("forecasts", static_cast<double>(r.forecasts));
}

int Main() {
  TickStreamConfig config;
  config.num_keywords = 100064;  // 64 hot + 100k quiet tail
  config.hot_keywords = 64;
  config.num_ticks = 96;
  config.quiet_ticks = 8;  // below min_fit_ticks: pure append path
  config.burst_start = 48;
  config.burst_width = 4;

  std::printf("dspot_stream ingest: %zu keywords (%zu hot), %zu ticks, "
              "flush every %lld ticks\n\n",
              config.num_keywords, config.hot_keywords, config.num_ticks,
              static_cast<long long>(kFlushEvery));
  ObsRegistry::Instance().Enable(ObsOptions());

  const RunResult serial = RunStream(config, /*threads=*/1);
  if (!serial.ok) return 1;
  PrintRun("1 thread", serial);

  const RunResult parallel = RunStream(config, /*threads=*/8);
  if (!parallel.ok) return 1;
  PrintRun("8 threads", parallel);

  // WAL leg: the serial run again, but through DurableEngine with the log
  // on. Auto-checkpointing is disabled so the whole run stays in the WAL
  // tail and the reopen below measures a worst-case full replay.
  const std::string wal_dir = "bench_stream_wal";
  std::system(("rm -rf " + wal_dir).c_str());
  DurableOptions doptions;
  doptions.stream = BenchStreamOptions(/*threads=*/1);
  doptions.fsync_policy = FsyncPolicy::kOnFlush;
  doptions.checkpoint_every_flushes = 0;
  doptions.max_wal_bytes = 0;
  const RunResult wal = RunStreamWal(config, doptions, wal_dir);
  if (!wal.ok) return 1;
  PrintRun("wal 1t", wal);

  const auto r0 = std::chrono::steady_clock::now();
  auto reopened = DurableEngine::Open(wal_dir, doptions);
  const double recovery_ms = ElapsedMs(r0);
  if (!reopened.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 reopened.status().ToString().c_str());
    return 1;
  }
  const std::vector<uint8_t> recovered_state = (*reopened)->engine().EncodeState();
  const uint64_t replayed = (*reopened)->recovery().replayed_appends;
  const double recovery_per_million =
      replayed > 0 ? recovery_ms * 1e6 / static_cast<double>(replayed) : 0.0;
  reopened->reset();
  std::system(("rm -rf " + wal_dir).c_str());

  const bool deterministic =
      serial.state.size() == parallel.state.size() &&
      std::memcmp(serial.state.data(), parallel.state.data(),
                  serial.state.size()) == 0;
  const bool wal_matches =
      serial.state.size() == wal.state.size() &&
      std::memcmp(serial.state.data(), wal.state.data(),
                  serial.state.size()) == 0;
  const bool recovered_matches =
      wal.state.size() == recovered_state.size() &&
      std::memcmp(wal.state.data(), recovered_state.data(),
                  wal.state.size()) == 0;
  std::printf("\nengine state 1 vs 8 threads: %s (%zu bytes)\n",
              deterministic ? "bit-identical" : "DIVERGED",
              serial.state.size());
  std::printf("engine state plain vs WAL-on: %s\n",
              wal_matches ? "bit-identical" : "DIVERGED");
  std::printf("crash recovery: replayed %llu append(s) in %.1f ms "
              "(%.1f ms per million ticks), state %s\n",
              static_cast<unsigned long long>(replayed), recovery_ms,
              recovery_per_million,
              recovered_matches ? "bit-identical" : "DIVERGED");

  bench::BenchJson json("stream");
  json.Set("num_keywords", static_cast<double>(config.num_keywords));
  json.Set("hot_keywords", static_cast<double>(config.hot_keywords));
  json.Set("wall_ms", parallel.wall_ms);
  json.Set("append_p50_us", parallel.append_p50_us);
  json.Set("append_p99_us", parallel.append_p99_us);
  json.Set("peak_buffer_bytes",
           static_cast<double>(parallel.stats.peak_buffer_bytes));
  json.Set("lm_iterations", parallel.lm_iters);
  json.Set("threads", 8.0);
  json.Set("deterministic", deterministic ? 1.0 : 0.0);
  json.Set("wal_append_p50_us", wal.append_p50_us);
  json.Set("wal_append_p99_us", wal.append_p99_us);
  json.Set("wal_wall_ms", wal.wall_ms);
  json.Set("wal_state_matches", wal_matches ? 1.0 : 0.0);
  json.Set("recovery_ms", recovery_ms);
  json.Set("recovery_ms_per_million_ticks", recovery_per_million);
  json.Set("recovered_state_matches", recovered_matches ? 1.0 : 0.0);
  AddRow(&json, "serial", 1, serial);
  AddRow(&json, "parallel", 8, parallel);
  AddRow(&json, "wal", 1, wal);
  if (json.WriteTo("BENCH_stream.json")) {
    std::printf("wrote BENCH_stream.json\n");
  }
  return (deterministic && wal_matches && recovered_matches) ? 0 : 1;
}

}  // namespace
}  // namespace dspot

int main() { return dspot::Main(); }
