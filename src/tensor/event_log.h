#ifndef DSPOT_TENSOR_EVENT_LOG_H_
#define DSPOT_TENSOR_EVENT_LOG_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "tensor/activity_tensor.h"
#include "tensor/csv_options.h"

namespace dspot {

/// Raw-event ingestion: the paper's input is a stream of time-stamped
/// activities of the form (query, location, time-tick) — e.g. one row per
/// search/post/mention — which is aggregated into the activity tensor X.
/// This module is that aggregation layer: it buckets raw timestamps into
/// ticks (hourly stamps into weeks, etc.) and counts entries per
/// (keyword, location, bucket) cell.

/// One raw activity record. `timestamp` is in arbitrary integer units
/// (e.g. seconds or hours since the epoch of the dataset).
struct EventRecord {
  std::string keyword;
  std::string location;
  int64_t timestamp = 0;
  /// Weight of the record (1 for a single search; aggregated sources may
  /// carry pre-summed counts).
  double count = 1.0;
};

/// How timestamps are bucketed into ticks.
enum class CalendarUnit {
  /// Fixed-width buckets of `ticks_resolution` timestamp units (the
  /// historical behavior; unit-agnostic).
  kNone = 0,
  /// Calendar-aligned buckets over Unix-seconds timestamps: civil days,
  /// ISO (Monday-start) weeks, civil months, civil years. Unlike kNone
  /// with resolution 604800, week/month/year buckets align to calendar
  /// boundaries rather than to the origin, and months/years have their
  /// true unequal lengths.
  kDay,
  kWeek,
  kMonth,
  kYear,
};

/// Aggregation configuration.
struct AggregationConfig {
  /// Timestamp units per tick (e.g. 604800 for weekly ticks over
  /// second-resolution stamps). Must be positive. Ignored when
  /// `calendar_unit != kNone`.
  int64_t ticks_resolution = 1;
  /// Timestamp mapped to tick 0; records before it are rejected. With a
  /// calendar unit, tick 0 is the calendar bucket CONTAINING the origin,
  /// and both origin and timestamps may be pre-epoch (negative Unix
  /// seconds): bucketing uses floor division throughout, so 1969 dates
  /// land in their own buckets instead of folding into bucket 0.
  int64_t origin = 0;
  /// Calendar bucketing mode; kNone (default) keeps fixed-width ticks.
  CalendarUnit calendar_unit = CalendarUnit::kNone;
  /// Drop (instead of error on) records past this tick count; 0 = no cap.
  size_t max_ticks = 0;
};

/// Aggregates raw records into a dense tensor. Keywords/locations are
/// indexed in first-appearance order; the tick axis spans 0..max bucket
/// seen (or `max_ticks`). Records with negative bucketed ticks are an
/// InvalidArgument error.
StatusOr<ActivityTensor> AggregateEvents(
    const std::vector<EventRecord>& records,
    const AggregationConfig& config = AggregationConfig());

/// Streaming builder variant: add records one at a time, then Build().
/// Useful when the log does not fit in one vector or arrives incrementally.
class EventAggregator {
 public:
  explicit EventAggregator(const AggregationConfig& config)
      : config_(config) {}

  /// Adds one record; returns InvalidArgument for pre-origin records and
  /// silently drops post-cap records (counted in dropped()).
  Status Add(const EventRecord& record);

  /// Number of records dropped by the max_ticks cap.
  size_t dropped() const { return dropped_; }
  size_t accepted() const { return accepted_; }

  /// Materializes the dense tensor. Empty aggregations are an error.
  StatusOr<ActivityTensor> Build() const;

 private:
  struct Cell {
    size_t keyword;
    size_t location;
    size_t tick;
  };
  size_t InternKeyword(const std::string& name);
  size_t InternLocation(const std::string& name);

  AggregationConfig config_;
  std::vector<std::string> keywords_;
  std::vector<std::string> locations_;
  /// Sparse accumulation: (cell -> count), flattened per add order. A
  /// simple sorted merge happens at Build().
  std::vector<std::pair<Cell, double>> cells_;
  size_t max_tick_ = 0;
  size_t dropped_ = 0;
  size_t accepted_ = 0;
};

/// Streams a raw event log CSV ("keyword,location,timestamp[,count]" with
/// header) row by row in file order, invoking `fn` per parsed record —
/// the ingestion path for consumers that must see arrival order (e.g.
/// `dspot_cli stream` replaying a log into a StreamEngine) instead of an
/// aggregated tensor. A malformed row, or a record `fn` rejects, is an
/// InvalidArgument error with "<path>:<line>: column <c>" context — or is
/// skipped and counted under `read_options.skip_bad_rows`.
Status ForEachEventCsv(
    const std::string& path, const CsvReadOptions& read_options,
    const std::function<Status(const EventRecord&)>& fn);

/// Reads a raw event log from CSV ("keyword,location,timestamp[,count]"
/// with header) and aggregates it. Malformed rows — missing fields,
/// non-numeric timestamp/count, trailing garbage, or records the
/// aggregator rejects (pre-origin timestamps, empty labels) — are
/// InvalidArgument errors with "<path>:<line>: column <c>" context, or
/// skipped and counted under `read_options.skip_bad_rows`.
StatusOr<ActivityTensor> LoadAndAggregateEventsCsv(
    const std::string& path,
    const AggregationConfig& config = AggregationConfig(),
    const CsvReadOptions& read_options = CsvReadOptions());

}  // namespace dspot

#endif  // DSPOT_TENSOR_EVENT_LOG_H_
