#ifndef DSPOT_CORE_SIMULATE_H_
#define DSPOT_CORE_SIMULATE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "core/params.h"
#include "core/schedule_cache.h"
#include "timeseries/series.h"

namespace dspot {

/// Inputs for one run of the SIV recurrence (Model 1):
///
///   S(t+1) = S(t) - beta*(S(t)/N)*eps(t)*I(t)*(1+eta(t)) + gamma*V(t)
///   I(t+1) = I(t) + beta*(S(t)/N)*eps(t)*I(t)*(1+eta(t)) - delta*I(t)
///   V(t+1) = V(t) + delta*I(t) - gamma*V(t)
///
/// The infection term is normalized by N (per-capita contact rate), which
/// keeps beta O(1) as in the paper's reported values. Flows are clamped so
/// compartments never go negative; the invariant S+I+V = N holds exactly.
struct SivInputs {
  double population = 1.0;
  double beta = 0.1;
  double delta = 0.1;
  double gamma = 0.05;
  double i0 = 1.0;
  /// eps(t) per tick; empty means eps = 1 everywhere.
  std::vector<double> epsilon;
  /// eta(t) per tick; empty means eta = 0 everywhere.
  std::vector<double> eta;
};

/// Full compartment trajectory.
struct SivTrajectory {
  Series susceptible;
  Series infective;
  Series vigilant;
};

/// The scalar part of SivInputs, used by the buffer-writing kernel below
/// (schedules come in as spans, so callers can feed cached vectors without
/// copying them into a SivInputs).
struct SivDynamics {
  double population = 1.0;
  double beta = 0.1;
  double delta = 0.1;
  double gamma = 0.05;
  double i0 = 1.0;
};

/// Runs the recurrence for out.size() steps and writes I(t) into `out`.
/// `epsilon` / `eta` may be shorter than the horizon (missing ticks use
/// eps = 1 / eta = 0, so an empty span means "no shocks" / "no growth").
/// Allocation-free; this is the hot kernel every residual evaluation hits.
void SimulateSivInto(const SivDynamics& dynamics,
                     std::span<const double> epsilon,
                     std::span<const double> eta, std::span<double> out);

/// Runs the recurrence for `n_ticks` steps and returns I(t) (the modeled
/// activity volume).
Series SimulateSiv(const SivInputs& inputs, size_t n_ticks);

/// Runs the recurrence and returns all three compartments.
SivTrajectory SimulateSivFull(const SivInputs& inputs, size_t n_ticks);

/// Builds the step function eta(t) = growth_rate * 1[t >= growth_start].
/// Returns an EMPTY vector when growth is disabled (growth_start == kNpos
/// or growth_rate == 0); the simulator's `t < eta.size()` guard treats the
/// missing ticks as eta = 0.
std::vector<double> BuildEta(double growth_rate, size_t growth_start,
                             size_t n_ticks);

/// Simulates the global-level sequence of keyword `i` under `params` for
/// `n_ticks` ticks (which may exceed params.num_ticks for forecasting).
Series SimulateGlobal(const ModelParamSet& params, size_t keyword,
                      size_t n_ticks);

/// SimulateGlobal into caller-owned storage (out.size() is the horizon):
/// schedules come from `*cache` and are rebuilt only when the shock set or
/// growth parameters changed. Allocation-free once the cache is warm.
void SimulateGlobalInto(const ModelParamSet& params, size_t keyword,
                        ScheduleCache* cache, std::span<double> out);

/// Simulates the local-level sequence of (keyword, location). Requires
/// `params.has_local()`; falls back to a population share of 1/l of the
/// global dynamics when local matrices are absent.
Series SimulateLocal(const ModelParamSet& params, size_t keyword,
                     size_t location, size_t n_ticks);

/// SimulateLocal into caller-owned storage, schedules served by `*cache`.
void SimulateLocalInto(const ModelParamSet& params, size_t keyword,
                       size_t location, ScheduleCache* cache,
                       std::span<double> out);

}  // namespace dspot

#endif  // DSPOT_CORE_SIMULATE_H_
