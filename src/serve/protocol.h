#ifndef DSPOT_SERVE_PROTOCOL_H_
#define DSPOT_SERVE_PROTOCOL_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "serve/serve_engine.h"

namespace dspot {

/// The dspot_serve wire format: length-prefixed frames over a byte
/// stream (the CLI speaks it on stdin/stdout; tests speak it over
/// stringstreams).
///
/// One frame = a little-endian u32 payload length followed by that many
/// payload bytes. The payload reuses the snapshot codec's primitives
/// (ByteWriter/ByteReader) and leads with a tag word so a reader can
/// reject a stream of the wrong kind with a located error instead of
/// misparsing it:
///
///   request:  "DSRQ" id:u64 op:u32 keyword:str horizon:u64
///             deadline_ms:f64 values:u64+f64[]
///   reply:    "DSRP" id:u64 code:u32 message:str rmse:f64
///             cost_bits:f64 values:u64+f64[]
///
/// Encoding is canonical (no padding, no optional fields), so identical
/// replies are identical bytes — the determinism gates compare frames
/// directly.

/// Frame tags ("DSRQ" / "DSRP" / "DSRH" as little-endian u32). "DSRH" is
/// the optional tenant handshake a TCP client may send as its FIRST
/// frame: `"DSRH" version:u32 tenant:str`. It binds every later request
/// on that connection to the named admission tenant; without it the
/// connection serves under the default tenant "".
inline constexpr uint32_t kServeRequestTag = 0x51525344;
inline constexpr uint32_t kServeReplyTag = 0x50525344;
inline constexpr uint32_t kServeHelloTag = 0x48525344;

/// Handshake protocol version this build speaks.
inline constexpr uint32_t kServeHelloVersion = 1;

/// Longest accepted tenant name, bytes. Tenant names feed quota maps,
/// log lines and metrics labels, so they are kept short and printable.
inline constexpr size_t kServeMaxTenantBytes = 128;

/// Upper bound on a frame's payload length; a declared length beyond it
/// is rejected as DataLoss (a desynchronized or hostile stream would
/// otherwise trigger a giant allocation).
inline constexpr uint32_t kServeMaxFrameBytes = 64u << 20;

/// Serializes one request/reply frame. IoError on stream failure.
Status WriteRequestFrame(const ServeRequest& request, std::ostream& out);
Status WriteReplyFrame(const ServeReply& reply, std::ostream& out);

/// Reads one frame into `*out`. Returns false on clean EOF (the stream
/// ended exactly on a frame boundary), true on success; located
/// DataLoss/InvalidArgument on truncation, a bad tag, or impossible
/// values. `context` labels errors (e.g. "stdin").
StatusOr<bool> ReadRequestFrame(std::istream& in, const std::string& context,
                                ServeRequest* out);
StatusOr<bool> ReadReplyFrame(std::istream& in, const std::string& context,
                              ServeReply* out);

/// Payload-level codecs (exposed for tests; the frame functions add the
/// length prefix).
std::vector<uint8_t> EncodeRequestPayload(const ServeRequest& request);
std::vector<uint8_t> EncodeReplyPayload(const ServeReply& reply);
StatusOr<ServeRequest> DecodeRequestPayload(const uint8_t* data, size_t size,
                                            const std::string& context);
StatusOr<ServeReply> DecodeReplyPayload(const uint8_t* data, size_t size,
                                        const std::string& context);

/// Tenant handshake codec. ValidateTenantName enforces the shared rule
/// (1..kServeMaxTenantBytes printable non-space ASCII bytes) for both the
/// decoder and the CLI's --tenant flag.
Status ValidateTenantName(const std::string& tenant);
std::vector<uint8_t> EncodeHelloPayload(const std::string& tenant);
StatusOr<std::string> DecodeHelloPayload(const uint8_t* data, size_t size,
                                         const std::string& context);
Status WriteHelloFrame(const std::string& tenant, std::ostream& out);

/// The leading tag word of a decoded payload (kServeRequestTag, ...);
/// located DataLoss when the payload is shorter than a tag. Transports
/// use it to route a frame before committing to a payload decoder.
StatusOr<uint32_t> PeekPayloadTag(const uint8_t* data, size_t size,
                                  const std::string& context);

/// Incremental frame reassembly for transports that deliver the byte
/// stream in arbitrary chunks (TCP segments, pipe reads): Append() bytes
/// as they arrive, then pop complete payloads with Next() until it
/// reports that more bytes are needed. Frames split at ANY byte boundary
/// — mid-prefix, mid-payload — reassemble exactly; a declared length over
/// kServeMaxFrameBytes poisons the assembler with a located DataLoss
/// (the stream is desynchronized or hostile, and no later byte can be
/// trusted).
class FrameAssembler {
 public:
  /// `context` labels errors (e.g. "conn 127.0.0.1:51724" or "stdin").
  explicit FrameAssembler(std::string context);

  /// Appends raw stream bytes. Internal storage compacts as frames are
  /// consumed, so long-lived connections stay at O(largest frame).
  void Append(const uint8_t* data, size_t n);

  /// Ok(true): one complete frame payload moved into `*payload`.
  /// Ok(false): the buffered bytes end mid-frame — Append more.
  /// DataLoss: desynchronized (over-cap declared length); every later
  /// call returns the same error.
  StatusOr<bool> Next(std::vector<uint8_t>* payload);

  /// Bytes currently buffered (a partial frame, or zero at a boundary).
  size_t buffered() const { return buf_.size() - pos_; }

  /// Absolute stream offset of the first unconsumed byte — the location
  /// error messages point at.
  uint64_t stream_offset() const { return consumed_ + pos_; }

 private:
  std::vector<uint8_t> buf_;
  size_t pos_ = 0;        ///< parse cursor inside buf_
  uint64_t consumed_ = 0; ///< bytes compacted away before buf_[0]
  std::string context_;
  Status poison_ = Status::Ok();
};

}  // namespace dspot

#endif  // DSPOT_SERVE_PROTOCOL_H_
