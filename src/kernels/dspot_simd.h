#ifndef DSPOT_KERNELS_DSPOT_SIMD_H_
#define DSPOT_KERNELS_DSPOT_SIMD_H_

#include <cstddef>

// Portable SIMD abstraction for the double-precision hot kernels.
//
// Dispatch is compile-time, per translation unit:
//   - __AVX2__        -> 4 x double (__m256d)
//   - __SSE2__/x86_64 -> 2 x double (__m128d)
//   - __ARM_NEON      -> 2 x double (float64x2_t)
//   - otherwise       -> scalar fallback (1 x double)
// The dspot_kernels library is the only target compiled with the widest
// ISA the build enables (see src/kernels/CMakeLists.txt), so every SIMD
// kernel lives out-of-line in a kernels .cc file; this header is safe to
// include anywhere but the lane width it exposes depends on the flags of
// the including TU.
//
// === Bit-identity vs golden-tolerance policy =========================
//
// The kernel layer makes two distinct floating-point guarantees, both
// asserted by tests/kernels_test.cc:
//
// 1. BIT-IDENTICAL — element-wise kernels and per-lane recurrences
//    (SimulateSivBatchInto lanes, ResidualInto). Each lane performs the
//    same IEEE-754 correctly-rounded operations in the same order as the
//    scalar reference, so outputs match bit for bit. To keep this true
//    the kernels TU is compiled with -ffp-contract=off (no silent FMA
//    contraction on one side of the comparison) and the vector ops used
//    are limited to add/sub/mul/div/min/max — no FMA, no approximate
//    reciprocals.
//
// 2. GOLDEN TOLERANCE — reductions (SumSquares, the residual-moment
//    kernels behind GaussianCodingCost). SIMD accumulates kNumLanes
//    partial sums and combines them in a fixed order, which reorders the
//    additions relative to the scalar left fold. The result is still
//    deterministic (identical across runs, thread counts, and machines
//    with the same lane width) but differs from the scalar reference by
//    rounding; tests pin |simd - scalar| <= kReduceRelTol * |scalar|
//    (plus an absolute floor for near-zero sums).
//
// Selecting the scalar path (building with DSPOT_SIMD=OFF, or any TU
// compiled without SSE2/NEON) restores bit-identity everywhere: the
// fallback runs the exact scalar reference sequence.

#if defined(DSPOT_SIMD_FORCE_SCALAR)
#define DSPOT_SIMD_SCALAR 1
#elif defined(__AVX2__)
#include <immintrin.h>
#define DSPOT_SIMD_AVX2 1
#elif defined(__SSE2__) || defined(_M_X64) || defined(__x86_64__)
#include <emmintrin.h>
#define DSPOT_SIMD_SSE2 1
#elif defined(__ARM_NEON) || defined(__aarch64__)
#include <arm_neon.h>
#define DSPOT_SIMD_NEON 1
#else
#define DSPOT_SIMD_SCALAR 1
#endif

namespace dspot {
namespace simd {

/// Relative tolerance the reduction kernels are held to against the
/// scalar reference (per element of the reduction; tests scale by n).
inline constexpr double kReduceRelTol = 1e-12;

#if defined(DSPOT_SIMD_AVX2)

inline constexpr size_t kNumLanes = 4;
inline constexpr const char* kIsaName = "avx2";

/// 4 doubles. Thin value wrapper over the native vector type; all
/// operations are IEEE correctly-rounded per lane (no FMA — see policy).
struct VecD {
  __m256d v;

  static VecD Zero() { return {_mm256_setzero_pd()}; }
  static VecD Splat(double x) { return {_mm256_set1_pd(x)}; }
  static VecD Load(const double* p) { return {_mm256_loadu_pd(p)}; }
  void Store(double* p) const { _mm256_storeu_pd(p, v); }

  friend VecD operator+(VecD a, VecD b) { return {_mm256_add_pd(a.v, b.v)}; }
  friend VecD operator-(VecD a, VecD b) { return {_mm256_sub_pd(a.v, b.v)}; }
  friend VecD operator*(VecD a, VecD b) { return {_mm256_mul_pd(a.v, b.v)}; }
  friend VecD operator/(VecD a, VecD b) { return {_mm256_div_pd(a.v, b.v)}; }
};

inline VecD Min(VecD a, VecD b) { return {_mm256_min_pd(a.v, b.v)}; }
inline VecD Max(VecD a, VecD b) { return {_mm256_max_pd(a.v, b.v)}; }

/// Opaque lane mask, "on" where the lane is finite; combine with Select.
/// Masking is bitwise, not multiplicative, so NaN lanes are really zeroed
/// (NaN * 0.0 would stay NaN).
inline VecD FiniteMask(VecD x) {
  // x - x == 0 exactly when x is finite (inf-inf and NaN-NaN are NaN).
  const __m256d diff = _mm256_sub_pd(x.v, x.v);
  return {_mm256_cmp_pd(diff, _mm256_setzero_pd(), _CMP_EQ_OQ)};
}

/// x in lanes where `mask` is on, +0.0 elsewhere.
inline VecD Select(VecD mask, VecD x) { return {_mm256_and_pd(mask.v, x.v)}; }

/// Horizontal sum in a fixed lane order: (l0+l2) + (l1+l3) — the order is
/// part of the determinism contract, do not "optimize" it.
inline double HorizontalSum(VecD x) {
  const __m128d lo = _mm256_castpd256_pd128(x.v);
  const __m128d hi = _mm256_extractf128_pd(x.v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);  // {l0+l2, l1+l3}
  return _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
}

inline double Lane(VecD x, size_t i) {
  alignas(32) double tmp[4];
  _mm256_store_pd(tmp, x.v);
  return tmp[i];
}

#elif defined(DSPOT_SIMD_SSE2)

inline constexpr size_t kNumLanes = 2;
inline constexpr const char* kIsaName = "sse2";

struct VecD {
  __m128d v;

  static VecD Zero() { return {_mm_setzero_pd()}; }
  static VecD Splat(double x) { return {_mm_set1_pd(x)}; }
  static VecD Load(const double* p) { return {_mm_loadu_pd(p)}; }
  void Store(double* p) const { _mm_storeu_pd(p, v); }

  friend VecD operator+(VecD a, VecD b) { return {_mm_add_pd(a.v, b.v)}; }
  friend VecD operator-(VecD a, VecD b) { return {_mm_sub_pd(a.v, b.v)}; }
  friend VecD operator*(VecD a, VecD b) { return {_mm_mul_pd(a.v, b.v)}; }
  friend VecD operator/(VecD a, VecD b) { return {_mm_div_pd(a.v, b.v)}; }
};

inline VecD Min(VecD a, VecD b) { return {_mm_min_pd(a.v, b.v)}; }
inline VecD Max(VecD a, VecD b) { return {_mm_max_pd(a.v, b.v)}; }

inline VecD FiniteMask(VecD x) {
  const __m128d diff = _mm_sub_pd(x.v, x.v);
  return {_mm_cmpeq_pd(diff, _mm_setzero_pd())};
}

inline VecD Select(VecD mask, VecD x) { return {_mm_and_pd(mask.v, x.v)}; }

inline double HorizontalSum(VecD x) {
  return _mm_cvtsd_f64(x.v) + _mm_cvtsd_f64(_mm_unpackhi_pd(x.v, x.v));
}

inline double Lane(VecD x, size_t i) {
  alignas(16) double tmp[2];
  _mm_store_pd(tmp, x.v);
  return tmp[i];
}

#elif defined(DSPOT_SIMD_NEON)

inline constexpr size_t kNumLanes = 2;
inline constexpr const char* kIsaName = "neon";

struct VecD {
  float64x2_t v;

  static VecD Zero() { return {vdupq_n_f64(0.0)}; }
  static VecD Splat(double x) { return {vdupq_n_f64(x)}; }
  static VecD Load(const double* p) { return {vld1q_f64(p)}; }
  void Store(double* p) const { vst1q_f64(p, v); }

  friend VecD operator+(VecD a, VecD b) { return {vaddq_f64(a.v, b.v)}; }
  friend VecD operator-(VecD a, VecD b) { return {vsubq_f64(a.v, b.v)}; }
  friend VecD operator*(VecD a, VecD b) { return {vmulq_f64(a.v, b.v)}; }
  friend VecD operator/(VecD a, VecD b) { return {vdivq_f64(a.v, b.v)}; }
};

inline VecD Min(VecD a, VecD b) { return {vminq_f64(a.v, b.v)}; }
inline VecD Max(VecD a, VecD b) { return {vmaxq_f64(a.v, b.v)}; }

inline VecD FiniteMask(VecD x) {
  const float64x2_t diff = vsubq_f64(x.v, x.v);
  return {vreinterpretq_f64_u64(vceqq_f64(diff, vdupq_n_f64(0.0)))};
}

inline VecD Select(VecD mask, VecD x) {
  return {vreinterpretq_f64_u64(vandq_u64(vreinterpretq_u64_f64(mask.v),
                                          vreinterpretq_u64_f64(x.v)))};
}

inline double HorizontalSum(VecD x) {
  return vgetq_lane_f64(x.v, 0) + vgetq_lane_f64(x.v, 1);
}

inline double Lane(VecD x, size_t i) {
  double tmp[2];
  vst1q_f64(tmp, x.v);
  return tmp[i];
}

#else  // scalar fallback

inline constexpr size_t kNumLanes = 1;
inline constexpr const char* kIsaName = "scalar";

struct VecD {
  double v;

  static VecD Zero() { return {0.0}; }
  static VecD Splat(double x) { return {x}; }
  static VecD Load(const double* p) { return {*p}; }
  void Store(double* p) const { *p = v; }

  friend VecD operator+(VecD a, VecD b) { return {a.v + b.v}; }
  friend VecD operator-(VecD a, VecD b) { return {a.v - b.v}; }
  friend VecD operator*(VecD a, VecD b) { return {a.v * b.v}; }
  friend VecD operator/(VecD a, VecD b) { return {a.v / b.v}; }
};

inline VecD Min(VecD a, VecD b) { return {b.v < a.v ? b.v : a.v}; }
inline VecD Max(VecD a, VecD b) { return {a.v < b.v ? b.v : a.v}; }

inline VecD FiniteMask(VecD x) { return {(x.v - x.v) == 0.0 ? 1.0 : 0.0}; }
inline VecD Select(VecD mask, VecD x) { return {mask.v != 0.0 ? x.v : 0.0}; }

inline double HorizontalSum(VecD x) { return x.v; }
inline double Lane(VecD x, size_t) { return x.v; }

#endif

}  // namespace simd
}  // namespace dspot

#endif  // DSPOT_KERNELS_DSPOT_SIMD_H_
