#ifndef DSPOT_DATAGEN_TICK_STREAM_H_
#define DSPOT_DATAGEN_TICK_STREAM_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace dspot {

/// Synthetic arrival-ordered tick stream for dspot_stream: ticks are
/// emitted in tick-major order (every keyword's record for tick t before
/// any record of tick t+1), matching how a real ingest pipeline delivers
/// bucketed activity. Two keyword classes:
///
///  * hot keywords (the first `hot_keywords` indices) emit every tick with
///    Poisson(base_rate) activity, boosted by `burst_strength` inside the
///    injected burst window — the keywords the escalation path must catch;
///  * quiet keywords emit only their first `quiet_ticks` ticks and then go
///    silent — the long tail that must stay on the O(1) append path.
///
/// Per-keyword counts come from Random::Child(keyword), so the stream is a
/// pure function of the config: the same records in the same order on
/// every run, at any consumer parallelism.
struct TickStreamConfig {
  size_t num_keywords = 16;
  size_t hot_keywords = 2;
  /// Ticks emitted per hot keyword.
  size_t num_ticks = 96;
  /// Ticks emitted per quiet keyword before it goes silent.
  size_t quiet_ticks = 8;
  /// Poisson mean of per-tick activity outside bursts.
  double base_rate = 20.0;
  /// Burst injection (hot keywords only): activity inside
  /// [burst_start, burst_start + burst_width) is scaled by burst_strength.
  double burst_strength = 6.0;
  size_t burst_start = 48;
  size_t burst_width = 4;
  /// Timestamp of tick t is origin + t * ticks_resolution.
  int64_t ticks_resolution = 1;
  int64_t origin = 0;
  uint64_t seed = 42;
};

/// One record of the stream, ready for StreamEngine::AppendById.
struct TickRecord {
  uint32_t keyword = 0;
  int64_t timestamp = 0;
  double count = 0.0;
};

/// Canonical name of stream keyword `keyword` ("kw000042").
std::string TickStreamKeywordName(uint32_t keyword);

/// Invokes `fn` for every record in arrival order without materializing
/// the stream — the form bench_stream uses to drive 100k+ keywords.
void ForEachStreamTick(const TickStreamConfig& config,
                       const std::function<void(const TickRecord&)>& fn);

/// The materialized stream, for tests and replay files.
std::vector<TickRecord> GenerateTickStream(const TickStreamConfig& config);

/// Writes the stream as an event-log CSV ("keyword,location,timestamp,
/// count" with a single "all" location) replayable by `dspot_cli stream`.
/// Returns false on I/O failure.
bool WriteTickStreamCsv(const TickStreamConfig& config,
                        const std::string& path);

}  // namespace dspot

#endif  // DSPOT_DATAGEN_TICK_STREAM_H_
