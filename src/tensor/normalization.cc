#include "tensor/normalization.h"

#include <algorithm>
#include <cmath>

namespace dspot {

namespace {

// Scale factor mapping an observed maximum `mx` to `target_max`, or 1.0
// (identity) whenever the quotient would not be a usable scale: mx missing
// or non-positive (all-missing / all-zero / negative-only series), mx
// infinite (factor would be 0 and inf * 0 poisons values with NaN), or mx
// so small that target_max / mx overflows to infinity (subnormal maxima).
double SafeFactor(double mx, double target_max) {
  if (IsMissing(mx) || !(mx > 0.0)) return 1.0;
  const double f = target_max / mx;
  if (!std::isfinite(f) || f <= 0.0) return 1.0;
  return f;
}

}  // namespace

Series NormalizeToMax(const Series& s, ScaleInfo* info, double target_max) {
  ScaleInfo local;
  local.factor = SafeFactor(s.MaxValue(), target_max);
  if (info != nullptr) {
    *info = local;
  }
  Series out = s;
  if (local.factor == 1.0) return out;
  for (double& v : out.mutable_values()) {
    if (!IsMissing(v)) v *= local.factor;
  }
  return out;
}

Series Denormalize(const Series& s, const ScaleInfo& info) {
  Series out = s;
  // Invalid or identity scale: return the series untouched. Dividing by
  // `factor` (rather than multiplying by a pre-rounded 1 / factor) keeps
  // Denormalize(NormalizeToMax(s)) exact to within one rounding per value.
  if (!info.Valid() || !std::isfinite(info.factor) || info.factor == 1.0) {
    return out;
  }
  for (double& v : out.mutable_values()) {
    if (!IsMissing(v)) v /= info.factor;
  }
  return out;
}

ActivityTensor NormalizeTensorPerKeyword(const ActivityTensor& tensor,
                                         std::vector<ScaleInfo>* infos,
                                         double target_max) {
  const size_t d = tensor.num_keywords();
  const size_t l = tensor.num_locations();
  const size_t n = tensor.num_ticks();
  if (infos != nullptr) {
    infos->assign(d, ScaleInfo());
  }
  ActivityTensor out = tensor;
  for (size_t i = 0; i < d; ++i) {
    // One factor per keyword: the max over all of its local sequences.
    double mx = 0.0;
    for (size_t j = 0; j < l; ++j) {
      for (size_t t = 0; t < n; ++t) {
        const double v = tensor.at(i, j, t);
        if (!IsMissing(v)) mx = std::max(mx, v);
      }
    }
    ScaleInfo info;
    info.factor = SafeFactor(mx, target_max);
    if (infos != nullptr) {
      (*infos)[i] = info;
    }
    if (info.factor == 1.0) continue;
    for (size_t j = 0; j < l; ++j) {
      for (size_t t = 0; t < n; ++t) {
        double& v = out.at(i, j, t);
        if (!IsMissing(v)) v *= info.factor;
      }
    }
  }
  return out;
}

}  // namespace dspot
