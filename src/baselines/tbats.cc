#include "baselines/tbats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "optimize/nelder_mead.h"
#include "timeseries/stats.h"

namespace dspot {

namespace {
constexpr double kTwoPi = 6.283185307179586;
}  // namespace

double TbatsModel::RunFilter(const Series& data, Series* fitted,
                             double* level_out, double* trend_out,
                             std::vector<double>* seasonal_out,
                             std::vector<double>* seasonal_star_out) const {
  TbatsWorkspace workspace;
  return RunFilter(data, fitted, level_out, trend_out, seasonal_out,
                   seasonal_star_out, &workspace);
}

double TbatsModel::RunFilter(const Series& data, Series* fitted,
                             double* level_out, double* trend_out,
                             std::vector<double>* seasonal_out,
                             std::vector<double>* seasonal_star_out,
                             TbatsWorkspace* workspace) const {
  const size_t n = data.size();
  const size_t k = harmonics_;
  double level = init_level_;
  double trend = init_trend_;
  std::vector<double>& s = workspace->s;
  std::vector<double>& s_star = workspace->s_star;
  s.assign(k, 0.0);
  s_star.assign(k, 0.0);

  if (fitted != nullptr && fitted->size() != n) {
    *fitted = Series(n);
  }

  // The rotation coefficients are constant over the pass, so cos/sin run
  // once per harmonic here instead of once per (tick, harmonic).
  std::vector<double>& lambda = workspace->lambda;
  std::vector<double>& cos_lambda = workspace->cos_lambda;
  std::vector<double>& sin_lambda = workspace->sin_lambda;
  lambda.resize(k);
  cos_lambda.resize(k);
  sin_lambda.resize(k);
  for (size_t j = 0; j < k; ++j) {
    lambda[j] = kTwoPi * static_cast<double>(j + 1) /
                static_cast<double>(std::max<size_t>(period_, 2));
    cos_lambda[j] = std::cos(lambda[j]);
    sin_lambda[j] = std::sin(lambda[j]);
  }

  double sse = 0.0;
  for (size_t t = 0; t < n; ++t) {
    double seasonal = 0.0;
    for (size_t j = 0; j < k; ++j) {
      seasonal += s[j];
    }
    const double pred = level + phi_ * trend + seasonal;
    if (fitted != nullptr) {
      (*fitted)[t] = pred;
    }
    const double innovation = data[t] - pred;
    sse += innovation * innovation;

    // State update.
    level = level + phi_ * trend + alpha_ * innovation;
    trend = phi_ * trend + beta_ * innovation;
    for (size_t j = 0; j < k; ++j) {
      const double c = cos_lambda[j];
      const double d = sin_lambda[j];
      const double sj = s[j];
      const double sj_star = s_star[j];
      s[j] = sj * c + sj_star * d + gamma1_ * innovation;
      s_star[j] = -sj * d + sj_star * c + gamma2_ * innovation;
    }
  }
  if (level_out != nullptr) *level_out = level;
  if (trend_out != nullptr) *trend_out = trend;
  if (seasonal_out != nullptr) *seasonal_out = s;
  if (seasonal_star_out != nullptr) *seasonal_star_out = s_star;
  return sse;
}

StatusOr<TbatsModel> TbatsModel::Fit(const Series& data,
                                     const TbatsConfig& config) {
  if (data.observed_count() < 12) {
    return Status::InvalidArgument("TbatsModel::Fit: too few observations");
  }
  const Series filled = data.Interpolated();
  const size_t n = filled.size();

  size_t period = config.period;
  if (period == 0) {
    const std::vector<size_t> candidates = CandidatePeriods(filled, n / 3);
    period = candidates.empty() ? std::max<size_t>(n / 4, 4) : candidates[0];
  }
  if (n < 3 * period) {
    return Status::InvalidArgument(
        "TbatsModel::Fit: need at least 3 seasonal cycles");
  }

  TbatsModel model;
  model.period_ = period;
  model.harmonics_ = std::min(config.harmonics, period / 2);
  if (model.harmonics_ == 0) model.harmonics_ = 1;
  model.init_level_ = filled.MeanValue();
  model.init_trend_ = 0.0;

  // Optimize the smoothing parameters on the one-step-ahead SSE. One
  // workspace serves every evaluation of the search.
  TbatsWorkspace workspace;
  auto objective = [&](const std::vector<double>& p) -> double {
    TbatsModel candidate = model;
    candidate.alpha_ = p[0];
    candidate.beta_ = p[1];
    candidate.phi_ = p[2];
    candidate.gamma1_ = p[3];
    candidate.gamma2_ = p[4];
    const double sse = candidate.RunFilter(filled, nullptr, nullptr, nullptr,
                                           nullptr, nullptr, &workspace);
    return std::isfinite(sse) ? sse
                              : std::numeric_limits<double>::infinity();
  };
  Bounds bounds;
  bounds.lower = {1e-4, 0.0, 0.6, 0.0, 0.0};
  bounds.upper = {1.0, 0.5, 1.0, 0.5, 0.5};
  NelderMeadOptions nm_options;
  nm_options.max_evaluations = config.max_evaluations;
  const std::vector<std::vector<double>> starts = {
      {0.2, 0.01, 0.98, 0.05, 0.05},
      {0.6, 0.10, 0.90, 0.20, 0.20},
  };
  double best = std::numeric_limits<double>::infinity();
  std::vector<double> best_params = starts[0];
  for (const auto& init : starts) {
    auto result = NelderMead(objective, init, bounds, nm_options);
    if (result.ok() && result->final_value < best) {
      best = result->final_value;
      best_params = result->params;
    }
  }
  model.alpha_ = best_params[0];
  model.beta_ = best_params[1];
  model.phi_ = best_params[2];
  model.gamma1_ = best_params[3];
  model.gamma2_ = best_params[4];
  return model;
}

Series TbatsModel::PredictInSample(const Series& data) const {
  const Series filled = data.Interpolated();
  Series fitted(filled.size());
  RunFilter(filled, &fitted, nullptr, nullptr, nullptr, nullptr);
  return fitted;
}

Series TbatsModel::Forecast(const Series& history, size_t horizon) const {
  const Series filled = history.Interpolated();
  double level = 0.0;
  double trend = 0.0;
  std::vector<double> s;
  std::vector<double> s_star;
  RunFilter(filled, nullptr, &level, &trend, &s, &s_star);

  std::vector<double> lambda(harmonics_);
  for (size_t j = 0; j < harmonics_; ++j) {
    lambda[j] = kTwoPi * static_cast<double>(j + 1) /
                static_cast<double>(std::max<size_t>(period_, 2));
  }

  Series out(horizon);
  for (size_t h = 0; h < horizon; ++h) {
    double seasonal = 0.0;
    for (size_t j = 0; j < harmonics_; ++j) {
      seasonal += s[j];
    }
    out[h] = level + phi_ * trend + seasonal;
    // Deterministic (innovation-free) state propagation.
    level = level + phi_ * trend;
    trend = phi_ * trend;
    for (size_t j = 0; j < harmonics_; ++j) {
      const double c = std::cos(lambda[j]);
      const double d = std::sin(lambda[j]);
      const double sj = s[j];
      const double sj_star = s_star[j];
      s[j] = sj * c + sj_star * d;
      s_star[j] = -sj * d + sj_star * c;
    }
  }
  return out;
}

}  // namespace dspot
