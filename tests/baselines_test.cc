// Unit tests for src/baselines: AR, TBATS-style smoothing, FUNNEL.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/ar.h"
#include "baselines/funnel.h"
#include "baselines/tbats.h"
#include "common/random.h"
#include "timeseries/metrics.h"

namespace dspot {
namespace {

TEST(Ar, RecoversAr1Coefficients) {
  // y(t) = 0.8 y(t-1) + e, e ~ N(0,1): the innovation variance must be
  // comparable to the process variance or the regression is
  // ill-conditioned (constant column vs near-constant lag column).
  Random rng(17);
  Series s(2000);
  s[0] = 0.0;
  for (size_t t = 1; t < s.size(); ++t) {
    s[t] = 0.8 * s[t - 1] + rng.Gaussian(0.0, 1.0);
  }
  auto model = ArModel::Fit(s, 1);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_NEAR(model->coefficients()[0], 0.8, 0.05);
  EXPECT_NEAR(model->intercept(), 0.0, 0.15);
}

TEST(Ar, RecoversAr2Coefficients) {
  Random rng(18);
  Series s(3000);
  s[0] = 0.0;
  s[1] = 0.0;
  for (size_t t = 2; t < s.size(); ++t) {
    s[t] = 0.5 * s[t - 1] - 0.3 * s[t - 2] + rng.Gaussian(0.0, 1.0);
  }
  auto model = ArModel::Fit(s, 2);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->coefficients()[0], 0.5, 0.06);
  EXPECT_NEAR(model->coefficients()[1], -0.3, 0.06);
}

TEST(Ar, InSamplePredictionTracksSignal) {
  Series s(200);
  for (size_t t = 0; t < s.size(); ++t) {
    s[t] = std::sin(0.3 * static_cast<double>(t)) * 10.0 + 20.0;
  }
  auto model = ArModel::Fit(s, 4);
  ASSERT_TRUE(model.ok());
  Series pred = model->PredictInSample(s);
  EXPECT_LT(Rmse(s, pred), 1.0);
}

TEST(Ar, ForecastConstantSeries) {
  Series s(std::vector<double>(60, 7.0));
  auto model = ArModel::Fit(s, 3);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  Series f = model->Forecast(s, 10);
  for (size_t t = 0; t < f.size(); ++t) {
    EXPECT_NEAR(f[t], 7.0, 0.1);
  }
}

TEST(Ar, ForecastHorizonLength) {
  Series s(100);
  for (size_t t = 0; t < 100; ++t) s[t] = static_cast<double>(t % 7);
  auto model = ArModel::Fit(s, 7);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->Forecast(s, 23).size(), 23u);
}

TEST(Ar, RejectsBadInputs) {
  EXPECT_FALSE(ArModel::Fit(Series(100), 0).ok());
  EXPECT_FALSE(ArModel::Fit(Series(10), 8).ok());
}

TEST(Ar, HandlesMissingByInterpolation) {
  Series s(120);
  for (size_t t = 0; t < s.size(); ++t) {
    s[t] = 5.0 + std::sin(0.5 * static_cast<double>(t));
  }
  s[50] = kMissingValue;
  s[51] = kMissingValue;
  auto model = ArModel::Fit(s, 3);
  ASSERT_TRUE(model.ok());
}

TEST(Tbats, FitsAndForecastsSeasonalSignal) {
  const size_t period = 24;
  Series s(24 * 8);
  for (size_t t = 0; t < s.size(); ++t) {
    s[t] = 50.0 + 10.0 * std::sin(2.0 * M_PI * static_cast<double>(t) /
                                  static_cast<double>(period));
  }
  TbatsConfig config;
  config.period = period;
  auto model = TbatsModel::Fit(s, config);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  // In-sample tracking.
  Series pred = model->PredictInSample(s);
  EXPECT_LT(Rmse(s.Slice(period, s.size()), pred.Slice(period, s.size())),
            3.0);
  // Forecast continues the sinusoid.
  Series f = model->Forecast(s, period);
  Series expected(period);
  for (size_t h = 0; h < period; ++h) {
    const size_t t = s.size() + h;
    expected[h] = 50.0 + 10.0 * std::sin(2.0 * M_PI * static_cast<double>(t) /
                                         static_cast<double>(period));
  }
  EXPECT_LT(Rmse(expected, f), 4.0);
}

TEST(Tbats, AutoPeriodFromAcf) {
  const size_t period = 20;
  Series s(200);
  for (size_t t = 0; t < s.size(); ++t) {
    s[t] = 10.0 * std::cos(2.0 * M_PI * static_cast<double>(t) /
                           static_cast<double>(period));
  }
  auto model = TbatsModel::Fit(s);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(static_cast<double>(model->period()),
              static_cast<double>(period), 2.0);
}

TEST(Tbats, RejectsTooFewCycles) {
  TbatsConfig config;
  config.period = 50;
  EXPECT_FALSE(TbatsModel::Fit(Series(100), config).ok());
  EXPECT_FALSE(TbatsModel::Fit(Series(8)).ok());
}

TEST(Funnel, SimulateMatchesSkipsWithoutShocks) {
  FunnelParams p;
  p.base.population = 100.0;
  p.base.beta0 = 0.5;
  p.base.delta = 0.2;
  p.base.gamma = 0.1;
  p.base.amplitude = 0.3;
  p.base.period = 26.0;
  p.base.i0 = 1.0;
  Series a = SimulateFunnel(p, 120);
  Series b = SimulateSkips(p.base, 120);
  for (size_t t = 0; t < 120; ++t) {
    EXPECT_NEAR(a[t], b[t], 1e-9);
  }
}

TEST(Funnel, ShockBoostsInfection) {
  FunnelParams p;
  p.base.population = 100.0;
  p.base.beta0 = 0.5;
  p.base.delta = 0.3;
  p.base.gamma = 0.1;
  p.base.amplitude = 0.0;
  p.base.i0 = 1.0;
  Series without = SimulateFunnel(p, 100);
  p.shocks.push_back({.start = 50, .width = 3, .strength = 10.0});
  Series with = SimulateFunnel(p, 100);
  EXPECT_GT(with[53], without[53] + 1.0);
  // Before the shock, identical.
  for (size_t t = 0; t < 50; ++t) {
    EXPECT_NEAR(with[t], without[t], 1e-12);
  }
}

TEST(Funnel, FitDetectsOneShotShock) {
  FunnelParams truth;
  truth.base.population = 150.0;
  truth.base.beta0 = 0.55;
  truth.base.delta = 0.35;
  truth.base.gamma = 0.15;
  truth.base.amplitude = 0.2;
  truth.base.period = 26.0;
  truth.base.i0 = 1.0;
  truth.shocks.push_back({.start = 70, .width = 3, .strength = 12.0});
  Series data = SimulateFunnel(truth, 130);
  auto fit = FitFunnel(data);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  const double range = data.MaxValue() - data.MinValue();
  EXPECT_LT(fit->rmse, 0.25 * range);
}

TEST(Funnel, LocalRefitScalesPopulation) {
  FunnelParams truth;
  truth.base.population = 200.0;
  truth.base.beta0 = 0.5;
  truth.base.delta = 0.3;
  truth.base.gamma = 0.1;
  truth.base.amplitude = 0.3;
  truth.base.period = 26.0;
  truth.base.i0 = 2.0;
  Series global = SimulateFunnel(truth, 120);
  // A "location" at 10% of the global volume.
  FunnelParams small = truth;
  small.base.population = 20.0;
  small.base.i0 = 0.2;
  Series local = SimulateFunnel(small, 120);

  FunnelFit global_fit;
  global_fit.params = truth;
  auto local_fit = FitFunnelLocal(local, global_fit);
  ASSERT_TRUE(local_fit.ok()) << local_fit.status().ToString();
  EXPECT_NEAR(local_fit->params.base.population, 20.0, 4.0);
}

TEST(Funnel, RejectsTinySeries) {
  EXPECT_FALSE(FitFunnel(Series(8)).ok());
}

}  // namespace
}  // namespace dspot
