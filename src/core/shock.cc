#include "core/shock.h"

#include <algorithm>
#include <sstream>

namespace dspot {

size_t Shock::NumOccurrences(size_t n_ticks) const {
  if (start >= n_ticks) {
    return 0;
  }
  if (!IsCyclic()) {
    return 1;
  }
  return (n_ticks - 1 - start) / period + 1;
}

size_t Shock::OccurrenceIndexAt(size_t t) const {
  if (t < start) {
    return kNpos;
  }
  const size_t offset = t - start;
  if (!IsCyclic()) {
    return offset < width ? 0 : kNpos;
  }
  const size_t m = offset / period;
  return (offset - m * period) < width ? m : kNpos;
}

double Shock::MeanGlobalStrength() const {
  if (global_strengths.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double s : global_strengths) {
    sum += s;
  }
  return sum / static_cast<double>(global_strengths.size());
}

double Shock::GlobalStrengthAt(size_t t) const {
  const size_t m = OccurrenceIndexAt(t);
  if (m == kNpos) {
    return 0.0;
  }
  if (m < global_strengths.size()) {
    return global_strengths[m];
  }
  return base_strength;
}

size_t Shock::DeviatingOccurrences() const {
  size_t count = 0;
  for (double s : global_strengths) {
    if (s != base_strength) ++count;
  }
  return count;
}

double Shock::LocalStrengthAt(size_t t, size_t location) const {
  const size_t m = OccurrenceIndexAt(t);
  if (m == kNpos) {
    return 0.0;
  }
  if (local_strengths.empty()) {
    // LocalFit has not run: fall back to the global strength.
    return GlobalStrengthAt(t);
  }
  if (location >= local_strengths.cols()) {
    return 0.0;
  }
  if (m < local_strengths.rows()) {
    return local_strengths(m, location);
  }
  // Beyond the fitted range (forecasting): this location's mean strength.
  double sum = 0.0;
  for (size_t r = 0; r < local_strengths.rows(); ++r) {
    sum += local_strengths(r, location);
  }
  return local_strengths.rows() == 0
             ? 0.0
             : sum / static_cast<double>(local_strengths.rows());
}

std::string Shock::ToString() const {
  std::ostringstream os;
  os << "shock(kw=" << keyword << ", t_s=" << start << ", t_w=" << width;
  if (IsCyclic()) {
    os << ", t_p=" << period;
  } else {
    os << ", t_p=inf";
  }
  os << ", occurrences=" << global_strengths.size() << ")";
  return os.str();
}

std::vector<double> BuildGlobalEpsilon(const std::vector<Shock>& shocks,
                                       size_t keyword, size_t n_ticks) {
  std::vector<double> eps(n_ticks, 1.0);
  for (const Shock& shock : shocks) {
    if (shock.keyword != keyword) continue;
    for (size_t t = 0; t < n_ticks; ++t) {
      eps[t] += shock.GlobalStrengthAt(t);
    }
  }
  return eps;
}

std::vector<double> BuildLocalEpsilon(const std::vector<Shock>& shocks,
                                      size_t keyword, size_t location,
                                      size_t n_ticks) {
  std::vector<double> eps(n_ticks, 1.0);
  for (const Shock& shock : shocks) {
    if (shock.keyword != keyword) continue;
    for (size_t t = 0; t < n_ticks; ++t) {
      eps[t] += shock.LocalStrengthAt(t, location);
    }
  }
  return eps;
}

}  // namespace dspot
