// dspot_serve — the DSPOT model server.
//
// Speaks the length-prefixed frame protocol of src/serve/protocol.h on
// stdin/stdout: each request frame is admitted into a bounded queue,
// batched onto the worker pool, and answered with one reply frame IN
// ADMISSION ORDER. Replies are a pure function of the request sequence —
// bit-identical at any --threads setting — as long as a --spill-dir is
// configured (so LRU evictions reload exactly) and deadlines are off.
//
// Modes:
//   (default)          serve: request frames on stdin -> replies on stdout
//     [--threads T]              worker threads (default 1; 0 = hardware)
//     [--queue-cap N]            admission bound; overflow sheds the
//                                oldest request with ResourceExhausted
//     [--deadline-ms MS]         default per-request budget (0 = none)
//     [--max-resident-bytes B]   registry budget; accepts 64M / 2GiB / ...
//     [--spill-dir D]            snapshot spill directory (created)
//     [--shards N]               registry shards (default 8)
//     [--max-batch N]            dispatcher batch size (default 64)
//     [--metrics-json F]         write an obs metrics snapshot on exit
//   --gen-requests N   generate a deterministic request stream on stdout
//     [--gen-keywords K] [--gen-ticks T] [--gen-horizon H] [--seed S]
//   --print-replies    decode reply frames on stdin to readable text
//
// Numeric flags parse strictly (see src/common/parse_util.h): empty
// values, trailing garbage and unknown suffixes are usage errors naming
// the flag, never silently zero.
//
// Exit code 0 on success (including error *replies* — those belong to
// their requests), 1 on a transport or usage error.

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <future>
#include <iostream>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/parse_util.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "serve/model_registry.h"
#include "serve/protocol.h"
#include "serve/serve_engine.h"

namespace dspot {
namespace {

/// Minimal flag parser: --key value and --key=value (same contract as
/// dspot_cli's).
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc;) {
      std::string key = argv[i];
      const size_t eq = key.find('=');
      if (key.rfind("--", 0) == 0 && eq != std::string::npos) {
        const std::string value = key.substr(eq + 1);
        key = key.substr(0, eq);
        present_.push_back(key);
        values_[key] = value;
        i += 1;
        continue;
      }
      present_.push_back(key);
      if (key.rfind("--", 0) == 0 && i + 1 < argc &&
          std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[i + 1];
        i += 2;
      } else {
        i += 1;
      }
    }
  }

  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  bool HasValue(const std::string& key) const {
    return values_.find(key) != values_.end();
  }

  bool Has(const std::string& key) const {
    for (const std::string& p : present_) {
      if (p == key) return true;
    }
    return false;
  }

  /// Every token seen on the command line (flags and positionals alike),
  /// for strict unknown-flag rejection.
  const std::vector<std::string>& Present() const { return present_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> present_;
};

/// Located usage error: "dspot_serve: --queue-cap: not an integer: '2x'".
void FlagError(const char* key, const Status& status) {
  std::fprintf(stderr, "dspot_serve: %s: %s\n", key,
               status.message().c_str());
}

bool ParseIntFlag(const Flags& flags, const char* key, int64_t fallback,
                  int64_t min_value, int64_t max_value, int64_t* out) {
  *out = fallback;
  if (!flags.Has(key)) {
    return true;
  }
  if (!flags.HasValue(key)) {
    std::fprintf(stderr, "dspot_serve: %s: requires an integer value\n", key);
    return false;
  }
  auto parsed = ParseInt64Text(flags.GetString(key));
  if (!parsed.ok()) {
    FlagError(key, parsed.status());
    return false;
  }
  if (*parsed < min_value || *parsed > max_value) {
    std::fprintf(stderr,
                 "dspot_serve: %s: %" PRId64 " is out of range [%" PRId64
                 ", %" PRId64 "]\n",
                 key, *parsed, min_value, max_value);
    return false;
  }
  *out = *parsed;
  return true;
}

bool ParseDoubleFlag(const Flags& flags, const char* key, double fallback,
                     double min_value, double* out) {
  *out = fallback;
  if (!flags.Has(key)) {
    return true;
  }
  if (!flags.HasValue(key)) {
    std::fprintf(stderr, "dspot_serve: %s: requires a numeric value\n", key);
    return false;
  }
  auto parsed = ParseDoubleText(flags.GetString(key));
  if (!parsed.ok()) {
    FlagError(key, parsed.status());
    return false;
  }
  if (*parsed < min_value) {
    std::fprintf(stderr, "dspot_serve: %s: %g must be >= %g\n", key, *parsed,
                 min_value);
    return false;
  }
  *out = *parsed;
  return true;
}

bool ParseByteSizeFlag(const Flags& flags, const char* key, uint64_t fallback,
                       uint64_t* out) {
  *out = fallback;
  if (!flags.Has(key)) {
    return true;
  }
  if (!flags.HasValue(key)) {
    std::fprintf(stderr, "dspot_serve: %s: requires a byte size value\n", key);
    return false;
  }
  auto parsed = ParseByteSizeText(flags.GetString(key));
  if (!parsed.ok()) {
    FlagError(key, parsed.status());
    return false;
  }
  *out = *parsed;
  return true;
}

/// xorshift64* — the deterministic generator behind --gen-requests.
uint64_t NextRand(uint64_t* state) {
  uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return x * 0x2545F4914F6CDD1Dull;
}

/// A synthetic activity series for keyword `kw`: baseline + weekly wave +
/// one burst, with LCG jitter. Deterministic in (seed, kw, n_ticks).
std::vector<double> SyntheticSeries(uint64_t seed, uint64_t kw,
                                    size_t n_ticks) {
  std::vector<double> values(n_ticks);
  uint64_t state = seed * 1000003u + kw * 7919u + 1;
  const double base = 40.0 + static_cast<double>(kw % 17) * 3.0;
  const size_t burst = 20 + static_cast<size_t>(NextRand(&state) % 40);
  for (size_t t = 0; t < n_ticks; ++t) {
    double v = base + 10.0 * std::sin(2.0 * 3.141592653589793 *
                                      static_cast<double>(t) / 7.0);
    if (t >= burst && t < burst + 3) {
      v += 60.0;
    }
    v += static_cast<double>(NextRand(&state) % 1000) / 500.0 - 1.0;
    values[t] = v < 0.0 ? 0.0 : v;
  }
  return values;
}

int GenerateRequests(const Flags& flags) {
  int64_t n = 0;
  int64_t keywords = 0;
  int64_t ticks = 0;
  int64_t horizon = 0;
  int64_t seed = 0;
  const int64_t kMax = std::numeric_limits<int64_t>::max();
  if (!ParseIntFlag(flags, "--gen-requests", 200, 1, kMax, &n) ||
      !ParseIntFlag(flags, "--gen-keywords", 20, 1, kMax, &keywords) ||
      !ParseIntFlag(flags, "--gen-ticks", 96, 16, kMax, &ticks) ||
      !ParseIntFlag(flags, "--gen-horizon", 8, 1, kMax, &horizon) ||
      !ParseIntFlag(flags, "--seed", 42, 0, kMax, &seed)) {
    return 1;
  }
  uint64_t state = static_cast<uint64_t>(seed) ^ 0x9E3779B97F4A7C15ull;
  uint64_t id = 0;
  // One cold fit per keyword first, so every later request has a model.
  for (int64_t kw = 0; kw < keywords; ++kw) {
    ServeRequest request;
    request.id = id++;
    request.op = ServeOp::kFit;
    request.keyword = "kw" + std::to_string(kw);
    request.values = SyntheticSeries(static_cast<uint64_t>(seed),
                                     static_cast<uint64_t>(kw),
                                     static_cast<size_t>(ticks));
    Status status = WriteRequestFrame(request, std::cout);
    if (!status.ok()) {
      std::fprintf(stderr, "dspot_serve: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  // Then a mixed read-mostly tail: ~90% forecast, ~8% outlier-score,
  // ~2% refit over a longer window.
  for (int64_t i = keywords; i < n; ++i) {
    const uint64_t kw = NextRand(&state) % static_cast<uint64_t>(keywords);
    const uint64_t dice = NextRand(&state) % 100;
    ServeRequest request;
    request.id = id++;
    request.keyword = "kw" + std::to_string(kw);
    if (dice < 90) {
      request.op = ServeOp::kForecast;
      request.horizon = static_cast<uint64_t>(horizon);
    } else if (dice < 98) {
      request.op = ServeOp::kOutlierScore;
      request.values = SyntheticSeries(static_cast<uint64_t>(seed), kw,
                                       static_cast<size_t>(ticks / 2));
    } else {
      request.op = ServeOp::kRefit;
      request.values = SyntheticSeries(static_cast<uint64_t>(seed), kw,
                                       static_cast<size_t>(ticks + 8));
    }
    Status status = WriteRequestFrame(request, std::cout);
    if (!status.ok()) {
      std::fprintf(stderr, "dspot_serve: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  std::cout.flush();
  return std::cout ? 0 : 1;
}

int PrintReplies() {
  ServeReply reply;
  uint64_t count = 0;
  for (;;) {
    StatusOr<bool> have = ReadReplyFrame(std::cin, "stdin", &reply);
    if (!have.ok()) {
      std::fprintf(stderr, "dspot_serve: %s\n",
                   have.status().ToString().c_str());
      return 1;
    }
    if (!*have) {
      break;
    }
    ++count;
    std::printf("reply id=%" PRIu64 " status=%s values=%zu rmse=%.6g",
                reply.id, StatusCodeName(reply.status.code()),
                reply.values.size(), reply.rmse);
    if (!reply.values.empty()) {
      std::printf(" first=%.6g", reply.values.front());
    }
    if (!reply.status.ok()) {
      std::printf(" message=\"%s\"", reply.status.message().c_str());
    }
    std::printf("\n");
  }
  std::printf("total replies: %" PRIu64 "\n", count);
  return 0;
}

int Serve(const Flags& flags) {
  int64_t threads = 0;
  int64_t queue_cap = 0;
  int64_t shards = 0;
  int64_t max_batch = 0;
  double deadline_ms = 0.0;
  uint64_t max_resident_bytes = 0;
  const int64_t kMax = std::numeric_limits<int64_t>::max();
  if (!ParseIntFlag(flags, "--threads", 1, 0, kMax, &threads) ||
      !ParseIntFlag(flags, "--queue-cap", 1024, 1, kMax, &queue_cap) ||
      !ParseIntFlag(flags, "--shards", 8, 1, kMax, &shards) ||
      !ParseIntFlag(flags, "--max-batch", 64, 1, kMax, &max_batch) ||
      !ParseDoubleFlag(flags, "--deadline-ms", 0.0, 0.0, &deadline_ms) ||
      !ParseByteSizeFlag(flags, "--max-resident-bytes", 256ull << 20,
                         &max_resident_bytes)) {
    return 1;
  }
  const std::string metrics_path = flags.GetString("--metrics-json");
  if (!metrics_path.empty()) {
    ObsRegistry::Instance().Enable();
  }

  RegistryOptions registry_options;
  registry_options.num_shards = static_cast<size_t>(shards);
  registry_options.max_resident_bytes = max_resident_bytes;
  registry_options.spill_dir = flags.GetString("--spill-dir");
  if (!registry_options.spill_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(registry_options.spill_dir, ec);
    if (ec) {
      std::fprintf(stderr, "dspot_serve: --spill-dir: cannot create '%s': %s\n",
                   registry_options.spill_dir.c_str(), ec.message().c_str());
      return 1;
    }
  }
  ModelRegistry registry(registry_options);

  ServeOptions serve_options;
  serve_options.num_threads = static_cast<size_t>(threads);
  serve_options.queue_cap = static_cast<size_t>(queue_cap);
  serve_options.max_batch = static_cast<size_t>(max_batch);
  serve_options.default_deadline_ms = deadline_ms;
  ServeEngine engine(&registry, serve_options);

  // Pump: admit from stdin, answer to stdout in admission order. The
  // in-flight window is bounded so a huge request file cannot hold every
  // reply in memory at once.
  const size_t kMaxInFlight =
      std::max<size_t>(static_cast<size_t>(queue_cap), size_t{256});
  std::deque<std::future<ServeReply>> in_flight;
  auto drain_one = [&in_flight]() -> Status {
    ServeReply reply = in_flight.front().get();
    in_flight.pop_front();
    return WriteReplyFrame(reply, std::cout);
  };
  ServeRequest request;
  for (;;) {
    StatusOr<bool> have = ReadRequestFrame(std::cin, "stdin", &request);
    if (!have.ok()) {
      std::fprintf(stderr, "dspot_serve: %s\n",
                   have.status().ToString().c_str());
      return 1;
    }
    if (!*have) {
      break;
    }
    in_flight.push_back(engine.Submit(std::move(request)));
    while (in_flight.size() >= kMaxInFlight) {
      Status status = drain_one();
      if (!status.ok()) {
        std::fprintf(stderr, "dspot_serve: %s\n", status.ToString().c_str());
        return 1;
      }
    }
  }
  while (!in_flight.empty()) {
    Status status = drain_one();
    if (!status.ok()) {
      std::fprintf(stderr, "dspot_serve: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  std::cout.flush();
  engine.Stop();

  const ServeStats stats = engine.stats();
  const RegistryStats reg = registry.stats();
  std::fprintf(stderr,
               "dspot_serve: served %" PRIu64 " requests (%" PRIu64
               " shed, %" PRIu64 " deadline-expired); registry %" PRIu64
               " hits / %" PRIu64 " misses / %" PRIu64 " reloads / %" PRIu64
               " evictions, %" PRIu64 " models resident\n",
               stats.completed, stats.admission_rejects,
               stats.deadline_expired, reg.hits, reg.misses, reg.reloads,
               reg.evictions, reg.resident_models);
  if (!metrics_path.empty()) {
    Status status = WriteMetricsJson(metrics_path);
    if (!status.ok()) {
      std::fprintf(stderr, "dspot_serve: --metrics-json: %s\n",
                   status.ToString().c_str());
      return 1;
    }
  }
  return std::cout ? 0 : 1;
}

/// A typo'd flag on a long-running server must fail fast at startup, not
/// be silently ignored while the operator believes it took effect.
bool RejectUnknownArguments(const Flags& flags) {
  static const char* kKnown[] = {
      "--help",         "--threads",      "--queue-cap",
      "--shards",       "--max-batch",    "--deadline-ms",
      "--max-resident-bytes",             "--spill-dir",
      "--metrics-json", "--gen-requests", "--gen-keywords",
      "--gen-ticks",    "--gen-horizon",  "--seed",
      "--print-replies"};
  for (const std::string& token : flags.Present()) {
    if (token.rfind("--", 0) != 0) {
      std::fprintf(stderr, "dspot_serve: unexpected argument '%s'\n",
                   token.c_str());
      return false;
    }
    bool known = false;
    for (const char* k : kKnown) {
      if (token == k) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::fprintf(stderr,
                   "dspot_serve: unknown flag '%s' (see --help)\n",
                   token.c_str());
      return false;
    }
  }
  return true;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv, 1);
  if (!RejectUnknownArguments(flags)) {
    return 1;
  }
  if (flags.Has("--help")) {
    std::fprintf(stderr,
                 "usage: dspot_serve [--threads T] [--queue-cap N] "
                 "[--deadline-ms MS]\n"
                 "                   [--max-resident-bytes B] [--spill-dir D] "
                 "[--shards N]\n"
                 "                   [--max-batch N] [--metrics-json F]\n"
                 "       dspot_serve --gen-requests N [--gen-keywords K] "
                 "[--gen-ticks T]\n"
                 "                   [--gen-horizon H] [--seed S]\n"
                 "       dspot_serve --print-replies\n");
    return 1;
  }
  if (flags.Has("--gen-requests")) {
    return GenerateRequests(flags);
  }
  if (flags.Has("--print-replies")) {
    return PrintReplies();
  }
  return Serve(flags);
}

}  // namespace
}  // namespace dspot

int main(int argc, char** argv) { return dspot::Main(argc, argv); }
