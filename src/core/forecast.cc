#include "core/forecast.h"

#include <string>

#include "core/simulate.h"

namespace dspot {

namespace {

// Rejects local matrices whose shape disagrees with the declared
// dimensions. `params.base_local(keyword, location)` on a mis-shaped
// matrix (e.g. from a hand-built or corrupted parameter set) is an
// out-of-bounds read in Release builds, so shapes are checked up front.
Status ValidateLocalShape(const ModelParamSet& params, const char* fn) {
  const size_t d = params.global.size();
  const size_t l = params.num_locations;
  if (params.base_local.rows() != d || params.base_local.cols() != l) {
    return Status::FailedPrecondition(
        std::string(fn) + ": base_local shape (" +
        std::to_string(params.base_local.rows()) + "x" +
        std::to_string(params.base_local.cols()) +
        ") does not match declared dimensions (" + std::to_string(d) + "x" +
        std::to_string(l) + ")");
  }
  if (!params.growth_local.empty() &&
      (params.growth_local.rows() != d || params.growth_local.cols() != l)) {
    return Status::FailedPrecondition(
        std::string(fn) + ": growth_local shape (" +
        std::to_string(params.growth_local.rows()) + "x" +
        std::to_string(params.growth_local.cols()) +
        ") does not match declared dimensions (" + std::to_string(d) + "x" +
        std::to_string(l) + ")");
  }
  return Status::Ok();
}

}  // namespace

StatusOr<Series> ForecastGlobal(const ModelParamSet& params, size_t keyword,
                                size_t horizon) {
  if (keyword >= params.global.size()) {
    return Status::OutOfRange("ForecastGlobal: keyword index out of range");
  }
  if (horizon == 0) {
    return Series();  // nothing past the training range was asked for
  }
  const size_t total = params.num_ticks + horizon;
  const Series full = SimulateGlobal(params, keyword, total);
  return full.Slice(params.num_ticks, total);
}

StatusOr<Series> ForecastLocal(const ModelParamSet& params, size_t keyword,
                               size_t location, size_t horizon) {
  if (keyword >= params.global.size()) {
    return Status::OutOfRange("ForecastLocal: keyword index out of range");
  }
  if (location >= params.num_locations) {
    return Status::OutOfRange("ForecastLocal: location index out of range");
  }
  if (!params.has_local()) {
    return Status::FailedPrecondition(
        "ForecastLocal: LocalFit has not populated local parameters");
  }
  DSPOT_RETURN_IF_ERROR(ValidateLocalShape(params, "ForecastLocal"));
  if (horizon == 0) {
    return Series();
  }
  const size_t total = params.num_ticks + horizon;
  const Series full = SimulateLocal(params, keyword, location, total);
  return full.Slice(params.num_ticks, total);
}

StatusOr<Series> FitAndForecastGlobal(const ModelParamSet& params,
                                      size_t keyword, size_t horizon) {
  if (keyword >= params.global.size()) {
    return Status::OutOfRange(
        "FitAndForecastGlobal: keyword index out of range");
  }
  return SimulateGlobal(params, keyword, params.num_ticks + horizon);
}

}  // namespace dspot
