#include "serve/serve_engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <unordered_map>
#include <utility>

#include "core/schedule_cache.h"
#include "core/simulate.h"
#include "obs/metrics.h"
#include "parallel/parallel_for.h"
#include "timeseries/series.h"

namespace dspot {

namespace {

/// Smallest RMSE used as an outlier-score denominator; a perfectly fitted
/// model would otherwise turn every residual into an infinite z-score.
constexpr double kMinScoreRmse = 1e-9;

/// The single-keyword parameter set SimulateGlobalInto expects, spanning
/// `n_ticks` (which may exceed the fitted range for forecasting).
ModelParamSet BuildSingleKeywordSet(const ServedModel& model, size_t n_ticks) {
  ModelParamSet set;
  set.global = {model.params};
  set.shocks = model.shocks;
  set.num_keywords = 1;
  set.num_locations = 1;
  set.num_ticks = n_ticks;
  return set;
}

}  // namespace

const char* ServeOpName(ServeOp op) {
  switch (op) {
    case ServeOp::kFit:
      return "fit";
    case ServeOp::kRefit:
      return "refit";
    case ServeOp::kForecast:
      return "forecast";
    case ServeOp::kOutlierScore:
      return "outlier-score";
  }
  return nullptr;
}

ServeEngine::ServeEngine(ModelRegistry* registry, const ServeOptions& options)
    : registry_(registry), options_(options) {
  options_.queue_cap = std::max<size_t>(size_t{1}, options_.queue_cap);
  options_.max_batch = std::max<size_t>(size_t{1}, options_.max_batch);
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

ServeEngine::~ServeEngine() { Stop(); }

std::future<ServeReply> ServeEngine::Submit(ServeRequest request) {
  auto promise = std::make_shared<std::promise<ServeReply>>();
  std::future<ServeReply> future = promise->get_future();
  SubmitWithCallback(std::move(request), [promise](ServeReply reply) {
    promise->set_value(std::move(reply));
  });
  return future;
}

std::deque<ServeEngine::Pending>::iterator ServeEngine::ShedVictimLocked(
    const std::string& tenant) {
  // Quota slice first: a tenant already holding its full share must make
  // room inside its OWN slice, so the victim is that tenant's oldest
  // queued request — other tenants' slots are untouchable.
  if (options_.tenant_quota > 0) {
    const uint64_t quota = static_cast<uint64_t>(
        std::min(options_.tenant_quota, options_.queue_cap));
    const auto mine = queued_per_tenant_.find(tenant);
    if (mine != queued_per_tenant_.end() && mine->second >= quota) {
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->request.tenant == tenant) {
          return it;
        }
      }
    }
  }
  if (queue_.size() < options_.queue_cap) {
    return queue_.end();
  }
  // Whole-queue overflow: shed the oldest request of the FULLEST tenant
  // (the offender by occupancy), never simply the global front — the
  // front is typically a fair tenant that queued early.
  uint64_t max_count = 0;
  for (const auto& [t, count] : queued_per_tenant_) {
    max_count = std::max(max_count, count);
  }
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    const auto count = queued_per_tenant_.find(it->request.tenant);
    if (count != queued_per_tenant_.end() && count->second == max_count) {
      return it;
    }
  }
  return queue_.end();
}

void ServeEngine::SubmitWithCallback(ServeRequest request,
                                     std::function<void(ServeReply)> done) {
  Pending pending;
  const double budget = request.deadline_ms > 0.0
                            ? request.deadline_ms
                            : options_.default_deadline_ms;
  if (budget > 0.0) {
    pending.deadline = Deadline::AfterMillis(budget);
  }
  pending.done = std::move(done);
  std::function<void(ServeReply)> shed_done;
  ServeReply shed_reply;
  bool shed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ServeReply reply;
      reply.id = request.id;
      reply.status = Status::Cancelled("serve engine is stopping");
      pending.done(std::move(reply));
      return;
    }
    const auto victim = ShedVictimLocked(request.tenant);
    if (victim != queue_.end()) {
      // Shed the chosen OLDEST request: under overload the freshest work
      // survives, and the shed client gets an immediate, retryable error
      // instead of a timeout.
      shed = true;
      const std::string& victim_tenant = victim->request.tenant;
      shed_reply.id = victim->request.id;
      shed_reply.status = Status::ResourceExhausted(
          victim_tenant == request.tenant && options_.tenant_quota > 0 &&
                  queue_.size() < options_.queue_cap
              ? "tenant '" + victim_tenant + "' admission quota full (" +
                    std::to_string(std::min(options_.tenant_quota,
                                            options_.queue_cap)) +
                    " slots); request shed by a newer arrival from the "
                    "same tenant"
              : "admission queue full (cap " +
                    std::to_string(options_.queue_cap) +
                    "); request shed by a newer arrival");
      shed_done = std::move(victim->done);
      ++tenant_stats_[victim_tenant].shed;
      auto count = queued_per_tenant_.find(victim_tenant);
      if (count != queued_per_tenant_.end() && --count->second == 0) {
        queued_per_tenant_.erase(count);
      }
      queue_.erase(victim);
      ++stats_.admission_rejects;
      DSPOT_COUNT("serve.admission_rejects", 1);
    }
    if (options_.record_log) {
      request_log_.push_back(request);
    }
    ++queued_per_tenant_[request.tenant];
    ++tenant_stats_[request.tenant].submitted;
    pending.request = std::move(request);
    queue_.push_back(std::move(pending));
    ++stats_.submitted;
    stats_.max_queue_depth = std::max<uint64_t>(
        stats_.max_queue_depth, static_cast<uint64_t>(queue_.size()));
    DSPOT_GAUGE_SET("serve.queue.depth", static_cast<double>(queue_.size()));
  }
  cv_.notify_one();
  if (shed) {
    shed_done(std::move(shed_reply));
  }
}

ServeReply ServeEngine::Call(ServeRequest request) {
  return Submit(std::move(request)).get();
}

void ServeEngine::Stop() {
  std::deque<Pending> drained;
  std::thread dispatcher;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    drained.swap(queue_);
    queued_per_tenant_.clear();
    // Claim the dispatcher thread under the lock: concurrent Stop()
    // calls (e.g. an explicit Stop racing the destructor) must not both
    // see a joinable thread and join it twice — that is UB. Exactly one
    // caller moves the handle out and joins; the others find it empty.
    dispatcher = std::move(dispatcher_);
  }
  cv_.notify_all();
  for (Pending& pending : drained) {
    ServeReply reply;
    reply.id = pending.request.id;
    reply.status = Status::Cancelled("serve engine stopped");
    pending.done(std::move(reply));
  }
  if (dispatcher.joinable()) {
    dispatcher.join();
  }
}

ServeStats ServeEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::map<std::string, TenantCounters> ServeEngine::tenant_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenant_stats_;
}

std::vector<ServeRequest> ServeEngine::TakeRequestLog() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ServeRequest> log;
  log.swap(request_log_);
  return log;
}

void ServeEngine::DispatchLoop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) {
        return;
      }
      const size_t take = std::min(options_.max_batch, queue_.size());
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        auto count = queued_per_tenant_.find(queue_.front().request.tenant);
        if (count != queued_per_tenant_.end() && --count->second == 0) {
          queued_per_tenant_.erase(count);
        }
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      DSPOT_GAUGE_SET("serve.queue.depth", static_cast<double>(queue_.size()));
      ++stats_.batches;
    }
    ExecuteBatch(std::move(batch));
  }
}

void ServeEngine::ExecuteBatch(std::vector<Pending> batch) {
  // Group the batch by keyword, PRESERVING admission order inside each
  // group: a fit admitted before a forecast of the same keyword must be
  // visible to it. Groups of different keywords commute (every model is
  // keyed by its own keyword), so they run concurrently; each request's
  // reply lands in its own pre-assigned slot, making the reply set
  // bit-identical at any thread count.
  std::vector<std::vector<size_t>> groups;
  {
    std::unordered_map<std::string, size_t> group_of;
    for (size_t i = 0; i < batch.size(); ++i) {
      auto [it, inserted] =
          group_of.emplace(batch[i].request.keyword, groups.size());
      if (inserted) {
        groups.emplace_back();
      }
      groups[it->second].push_back(i);
    }
  }
  std::vector<ServeReply> replies(batch.size());
  ParallelOptions parallel;
  parallel.num_threads = options_.num_threads;
  ParallelFor(groups.size(), parallel, [this, &batch, &groups,
                                        &replies](size_t g) {
    for (size_t index : groups[g]) {
      replies[index] = Execute(batch[index].request, batch[index].deadline);
    }
  });
  uint64_t expired = 0;
  for (const ServeReply& reply : replies) {
    if (reply.status.code() == StatusCode::kDeadlineExceeded) {
      ++expired;
    }
  }
  // Stats move BEFORE the replies are delivered: a client returning from
  // Call() must observe its own request in the counters.
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.completed += batch.size();
    stats_.deadline_expired += expired;
    for (const Pending& pending : batch) {
      ++tenant_stats_[pending.request.tenant].completed;
    }
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    batch[i].done(std::move(replies[i]));
  }
}

ServeReply ServeEngine::Execute(const ServeRequest& request,
                                const Deadline& deadline) {
  const auto start = std::chrono::steady_clock::now();
  ServeReply reply;
  reply.id = request.id;
  DSPOT_COUNT("serve.requests", 1);

  const char* op_name = ServeOpName(request.op);
  if (op_name == nullptr) {
    reply.status = Status::InvalidArgument(
        "request " + std::to_string(request.id) + ": unknown op code " +
        std::to_string(static_cast<uint32_t>(request.op)));
    return reply;
  }
  // An already-expired deadline is rejected before any state is touched:
  // the model store must not absorb a fit the client has given up on.
  if (deadline.expired()) {
    DSPOT_COUNT("serve.deadline_expired", 1);
    reply.status = Status::DeadlineExceeded(
        "request " + std::to_string(request.id) + " (" + op_name +
        " '" + request.keyword + "'): deadline expired before execution");
    return reply;
  }
  GuardContext guard;
  guard.deadline = deadline;

  switch (request.op) {
    case ServeOp::kFit:
    case ServeOp::kRefit: {
      if (request.values.empty()) {
        reply.status = Status::InvalidArgument(
            "request " + std::to_string(request.id) + " (" + op_name +
            " '" + request.keyword + "'): no observed values");
        break;
      }
      GlobalFitOptions fit_options = options_.fit;
      fit_options.guard = guard;
      const Series data(std::vector<double>(request.values));
      StatusOr<GlobalSequenceFit> fit =
          Status::Internal("serve: fit not attempted");
      bool warm = false;
      if (request.op == ServeOp::kRefit) {
        StatusOr<ServedModel> previous = registry_->Get(request.keyword);
        // A refit without a stored model — or with fewer observations than
        // the stored fit covers — degenerates to a cold fit rather than
        // failing: the client's intent is "make the model current".
        if (previous.ok() &&
            previous->fit_ticks <= request.values.size()) {
          warm = true;
          const GlobalSequenceFit seed = previous->ToWarmStart();
          fit = RefitGlobalSequence(data, 0, 1, seed, fit_options);
        } else if (!previous.ok() &&
                   previous.status().code() != StatusCode::kNotFound) {
          // A corrupt spill file is a real error, not a cold-start case.
          reply.status = previous.status();
          break;
        }
      }
      if (!warm) {
        fit = FitGlobalSequence(data, 0, 1, fit_options);
      }
      if (!fit.ok()) {
        reply.status = fit.status();
        break;
      }
      ServedModel model;
      model.keyword = request.keyword;
      model.params = fit->params;
      model.shocks = fit->shocks;
      model.fit_ticks = request.values.size();
      model.rmse = fit->rmse;
      model.cost_bits = fit->cost_bits;
      model.health = fit->health;
      reply.status = registry_->Put(model);
      if (reply.status.ok()) {
        reply.rmse = fit->rmse;
        reply.cost_bits = fit->cost_bits;
      }
      break;
    }
    case ServeOp::kForecast: {
      if (request.horizon == 0) {
        reply.status = Status::InvalidArgument(
            "request " + std::to_string(request.id) + " (forecast '" +
            request.keyword + "'): horizon must be >= 1");
        break;
      }
      // The horizon is an unvalidated u64 off the wire: reject it BEFORE
      // sizing the simulation buffer, or `fit_ticks + horizon` can wrap
      // size_t (out-of-bounds iterator, UB) or request an absurd
      // allocation that kills the server with bad_alloc.
      if (request.horizon > kServeMaxForecastTicks) {
        reply.status = Status::InvalidArgument(
            "request " + std::to_string(request.id) + " (forecast '" +
            request.keyword + "'): horizon " +
            std::to_string(request.horizon) + " exceeds cap " +
            std::to_string(kServeMaxForecastTicks));
        break;
      }
      StatusOr<ServedModel> model = registry_->Get(request.keyword);
      if (!model.ok()) {
        reply.status = model.status();
        break;
      }
      // fit_ticks comes from the spill file, which may be hostile: bound
      // it by the same cap so the sum below cannot overflow.
      if (model->fit_ticks > kServeMaxForecastTicks) {
        reply.status = Status::InvalidArgument(
            "request " + std::to_string(request.id) + " (forecast '" +
            request.keyword + "'): stored model spans " +
            std::to_string(model->fit_ticks) + " ticks, exceeding cap " +
            std::to_string(kServeMaxForecastTicks));
        break;
      }
      const size_t fit_ticks = static_cast<size_t>(model->fit_ticks);
      const size_t total = fit_ticks + static_cast<size_t>(request.horizon);
      const ModelParamSet set = BuildSingleKeywordSet(*model, total);
      std::vector<double> curve(total, 0.0);
      ScheduleCache cache;
      SimulateGlobalInto(set, 0, &cache, curve);
      reply.values.assign(curve.begin() + static_cast<ptrdiff_t>(fit_ticks),
                          curve.end());
      reply.rmse = model->rmse;
      reply.cost_bits = model->cost_bits;
      break;
    }
    case ServeOp::kOutlierScore: {
      if (request.values.empty()) {
        reply.status = Status::InvalidArgument(
            "request " + std::to_string(request.id) + " (outlier-score '" +
            request.keyword + "'): no observed values");
        break;
      }
      StatusOr<ServedModel> model = registry_->Get(request.keyword);
      if (!model.ok()) {
        reply.status = model.status();
        break;
      }
      // z_t = (observed - modeled) / rmse over the observed window; ticks
      // past the fitted range score against the model's forecast, so a
      // fresh spike shows up immediately.
      const size_t n = request.values.size();
      const ModelParamSet set = BuildSingleKeywordSet(*model, n);
      std::vector<double> estimate(n, 0.0);
      ScheduleCache cache;
      SimulateGlobalInto(set, 0, &cache, estimate);
      const double denom = std::max(model->rmse, kMinScoreRmse);
      reply.values.resize(n);
      for (size_t t = 0; t < n; ++t) {
        reply.values[t] = (request.values[t] - estimate[t]) / denom;
      }
      reply.rmse = model->rmse;
      break;
    }
  }

  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  switch (request.op) {
    case ServeOp::kFit:
      DSPOT_OBSERVE("serve.latency.fit_ms", elapsed_ms);
      break;
    case ServeOp::kRefit:
      DSPOT_OBSERVE("serve.latency.refit_ms", elapsed_ms);
      break;
    case ServeOp::kForecast:
      DSPOT_OBSERVE("serve.latency.forecast_ms", elapsed_ms);
      break;
    case ServeOp::kOutlierScore:
      DSPOT_OBSERVE("serve.latency.outlier_ms", elapsed_ms);
      break;
  }
  return reply;
}

}  // namespace dspot
