#ifndef DSPOT_CORE_SCHEDULE_CACHE_H_
#define DSPOT_CORE_SCHEDULE_CACHE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "core/shock.h"

namespace dspot {

/// BuildEta into caller-owned storage. Leaves `*out` EMPTY when growth is
/// disabled (growth_start == kNpos or growth_rate == 0): the simulator's
/// `t < eta.size()` guard treats missing ticks as eta = 0, so an empty
/// schedule is equivalent to a materialized all-zeros one.
void BuildEtaInto(double growth_rate, size_t growth_start, size_t n_ticks,
                  std::vector<double>* out);

/// Single-slot memo for the three per-fit schedules (global epsilon, local
/// epsilon, eta). Accessors return a view of an internally owned vector
/// that stays valid until the next call for the same schedule kind (or
/// Invalidate()).
///
/// Invalidation is by exact key comparison, not hashing: each slot stores
/// a flattened copy of everything the schedule depends on (tick count,
/// keyword/location, and per-shock descriptors + strengths), and rebuilds
/// whenever any of it differs. A hash could silently serve a stale
/// schedule on collision; the exact key cannot. Key comparison is
/// O(total strengths), which is far below the O(n_ticks * shocks) rebuild
/// it saves. NaN strengths never compare equal, so they conservatively
/// force a rebuild.
///
/// Not thread-safe: use one cache per worker (the fit layers keep one in
/// each per-keyword / per-location-block scratch).
class ScheduleCache {
 public:
  /// eps(t) over [0, n_ticks) for `keyword`'s shocks at the global level.
  std::span<const double> GlobalEpsilon(const std::vector<Shock>& shocks,
                                        size_t keyword, size_t n_ticks);

  /// eps(t) over [0, n_ticks) for (keyword, location) at the local level.
  std::span<const double> LocalEpsilon(const std::vector<Shock>& shocks,
                                       size_t keyword, size_t location,
                                       size_t n_ticks);

  /// eta(t) over [0, n_ticks); EMPTY when growth is disabled (see
  /// BuildEtaInto).
  std::span<const double> Eta(double growth_rate, size_t growth_start,
                              size_t n_ticks);

  /// Drops all memoized schedules (buffers keep their capacity).
  void Invalidate();

 private:
  struct Slot {
    bool valid = false;
    std::vector<double> key;
    std::vector<double> values;
  };

  /// Returns slot.values after rebuilding it if key_scratch_ differs from
  /// the stored key. `build` fills slot.values from the current inputs.
  template <typename BuildFn>
  std::span<const double> Lookup(Slot* slot, const BuildFn& build);

  Slot global_;
  Slot local_;
  Slot eta_;
  std::vector<double> key_scratch_;
};

}  // namespace dspot

#endif  // DSPOT_CORE_SCHEDULE_CACHE_H_
