#ifndef DSPOT_TIMESERIES_PEAKS_H_
#define DSPOT_TIMESERIES_PEAKS_H_

#include <cstddef>
#include <vector>

#include "timeseries/series.h"

namespace dspot {

/// A contiguous burst in a residual series: [start, start+width) with the
/// given peak position/height. The shock detector turns these into
/// candidate external shocks.
struct Burst {
  size_t start = 0;
  size_t width = 1;
  size_t peak = 0;
  double peak_value = 0.0;
  /// Sum of residual mass over the burst window.
  double mass = 0.0;
};

/// Options for burst extraction.
struct BurstOptions {
  /// A burst begins where the residual exceeds mean + threshold_sigmas *
  /// stddev of the positive part of the residual.
  double threshold_sigmas = 2.0;
  /// Bursts are extended while the residual stays above this fraction of
  /// the entry threshold.
  double sustain_fraction = 0.4;
  /// Minimum / maximum admissible widths.
  size_t min_width = 1;
  size_t max_width = 26;
  /// Maximum number of bursts returned (strongest first).
  size_t max_bursts = 32;
};

/// Extracts positive bursts from `residual` (typically data minus current
/// model estimate). Returned strongest-peak first. Missing entries break
/// bursts.
std::vector<Burst> FindBursts(const Series& residual,
                              const BurstOptions& options = BurstOptions());

/// True iff a burst near tick `t` (within `tolerance`) exists in `bursts`.
bool HasBurstNear(const std::vector<Burst>& bursts, size_t t,
                  size_t tolerance);

}  // namespace dspot

#endif  // DSPOT_TIMESERIES_PEAKS_H_
