// dspot_cli — command-line front end for the DSPOT library.
//
// Subcommands:
//   scenarios                             list built-in synthetic scenarios
//   generate  --scenario NAME --output F  write a synthetic tensor (CSV)
//             [--ticks N] [--locations L] [--outliers K] [--seed S]
//             [--series]                  write the global sequence instead
//   fit       --series F                  fit one sequence (CSV from
//             [--forecast H]              SaveSeriesCsv / "tick,value")
//             [--forecast-output F]
//             [--save-model F]            write a model snapshot after the
//             [--model-json]              fit (binary unless --model-json)
//             [--threads T]               T >= 1; default: hardware conc.
//             [--time-budget-ms MS]       deadline; partial fit on expiry
//             [--skip-bad-rows]           tolerate malformed CSV rows
//             [--metrics-json F]          write an obs metrics snapshot
//             [--trace-out F]             write a Chrome trace-event file
//   fit-tensor --input F                  fit a full tensor (long-form CSV)
//             [--outliers-for KEYWORD]
//             [--save-model F]            write a model snapshot after the
//             [--model-json]              fit (binary unless --model-json)
//             [--threads T]               T >= 1; default: hardware conc.
//             [--time-budget-ms MS]       deadline; partial fit on expiry
//             [--skip-bad-keywords]       fit what fits, report the rest
//             [--skip-bad-rows]           tolerate malformed CSV rows
//             [--metrics-json F]          write an obs metrics snapshot
//             [--trace-out F]             write a Chrome trace-event file
//   refit     --model F                   refit a saved model on (new)
//             --series F | --input F      data, warm-starting GLOBALFIT
//             [--cold]                    from the snapshot; --cold forces
//             [--save-model F]            the full multi-start MDL search
//             [--model-json]              for comparison
//             [--threads T] [--time-budget-ms MS] [--skip-bad-rows]
//             [--metrics-json F] [--trace-out F]
//   update    --model F --input F         absorb newly appended ticks into
//             [--append F]                a saved model: --input spans the
//             [--save-model F]            original range (plus any new
//             [--model-json]              ticks); --append concatenates a
//             [--threads T]               second tensor's ticks after it.
//             [--time-budget-ms MS]       Shock re-detection runs only for
//             [--skip-bad-rows]           keywords whose appended window
//             [--metrics-json F]          bursts against the old model.
//             [--trace-out F]
//   stream    --events F                  replay a raw event log (CSV
//             [--resolution N] [--origin T]  "keyword,location,timestamp
//             [--flush-every N]           [,count]") through the streaming
//             [--ring N] [--horizon H]    engine: appends in arrival order,
//             [--threads T]               flushes (triage + incremental
//             [--flush-budget-ms MS]      refits) every N ticks of stream
//             [--load-state F]            time, prints the final forecasts.
//             [--save-state F]            --load/--save-state resume and
//             [--forecast KEYWORD]        persist the engine across runs
//             [--skip-bad-rows]           without refitting.
//             [--metrics-json F]
//             [--trace-out F]
//             [--wal-dir D]               durable mode: appends and flushes
//             [--fsync-policy P]          go through a write-ahead log in D
//             [--recover]                 (P: never|flush|everyn); opening
//                                         an existing D recovers the newest
//                                         checkpoint + WAL tail. --recover
//                                         alone reports the recovered state
//                                         without requiring --events.
//
// Flags accept both "--key value" and "--key=value". Numeric flags are
// parsed strictly: empty values, trailing garbage ("12x"), and
// out-of-range magnitudes are usage errors, never silently zero.
//
// Exit code 0 on success, 1 on any error (message on stderr). A fit cut
// short by --time-budget-ms still exits 0: the partial model is usable
// and the health line says "DeadlineExceeded".

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/parse_util.h"
#include "core/dspot.h"
#include "durable/durable_engine.h"
#include "durable/durable_file.h"
#include "core/outliers.h"
#include "core/report.h"
#include "datagen/catalog.h"
#include "datagen/generator.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "snapshot/snapshot.h"
#include "snapshot/update.h"
#include "stream/stream_engine.h"
#include "tensor/event_log.h"
#include "tensor/tensor_io.h"
#include "timeseries/metrics.h"

namespace dspot {
namespace {

/// Minimal flag parser: --key value and --key=value after the subcommand.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc;) {
      std::string key = argv[i];
      // "--key=value" carries its value in the same token.
      const size_t eq = key.find('=');
      if (key.rfind("--", 0) == 0 && eq != std::string::npos) {
        const std::string value = key.substr(eq + 1);
        key = key.substr(0, eq);
        present_.push_back(key);
        values_[key] = value;
        i += 1;
        continue;
      }
      present_.push_back(key);
      // "--key value" pairs consume two tokens; a flag followed by another
      // flag (or nothing) is boolean.
      if (key.rfind("--", 0) == 0 && i + 1 < argc &&
          std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[i + 1];
        i += 2;
      } else {
        i += 1;
      }
    }
  }

  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  bool HasValue(const std::string& key) const {
    return values_.find(key) != values_.end();
  }

  bool Has(const std::string& key) const {
    for (const std::string& p : present_) {
      if (p == key) return true;
    }
    return false;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> present_;
};

/// Strict integer flag: absent -> fallback; present -> the whole value
/// must parse as an integer in [min_value, max_value], else a usage error
/// is printed and false returned. This replaces atol(), whose silent
/// "garbage parses as 0" turned typos like --threads=1O into requests for
/// zero threads.
bool ParseIntFlag(const Flags& flags, const char* key, long fallback,
                  long min_value, long max_value, long* out) {
  *out = fallback;
  if (!flags.Has(key)) {
    return true;
  }
  if (!flags.HasValue(key)) {
    std::fprintf(stderr, "flag %s requires an integer value\n", key);
    return false;
  }
  auto parsed = ParseInt64Text(flags.GetString(key));
  if (!parsed.ok()) {
    std::fprintf(stderr, "flag %s: %s\n", key,
                 parsed.status().message().c_str());
    return false;
  }
  if (*parsed < min_value || *parsed > max_value) {
    if (max_value == std::numeric_limits<long>::max()) {
      std::fprintf(stderr, "flag %s: %lld must be >= %ld\n", key,
                   static_cast<long long>(*parsed), min_value);
    } else {
      std::fprintf(stderr, "flag %s: %lld is out of range [%ld, %ld]\n", key,
                   static_cast<long long>(*parsed), min_value, max_value);
    }
    return false;
  }
  *out = static_cast<long>(*parsed);
  return true;
}

/// Shared handling of --metrics-json / --trace-out on the fit commands.
/// Arms the observation layer before the fit when either flag is present
/// (so the spans cover the whole pipeline), and writes the requested
/// exports afterwards.
struct ObsExportRequest {
  std::string metrics_path;
  std::string trace_path;

  static ObsExportRequest FromFlags(const Flags& flags) {
    ObsExportRequest request;
    request.metrics_path = flags.GetString("--metrics-json");
    request.trace_path = flags.GetString("--trace-out");
    if (!request.metrics_path.empty() || !request.trace_path.empty()) {
      ObsOptions options;
      options.trace = !request.trace_path.empty();
      ObsRegistry::Instance().Enable(options);
    }
    return request;
  }

  int Write() const {
    if (!metrics_path.empty()) {
      if (Status s = WriteMetricsJson(metrics_path); !s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
      std::printf("wrote metrics snapshot to %s\n", metrics_path.c_str());
    }
    if (!trace_path.empty()) {
      if (Status s = WriteChromeTrace(trace_path); !s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
      std::printf("wrote Chrome trace to %s\n", trace_path.c_str());
    }
    return 0;
  }
};

/// Shared handling of --save-model / --model-json on the fitting
/// commands: writes `snapshot` to the requested path (binary unless
/// --model-json), or does nothing when the flag is absent.
int SaveModelIfRequested(const Flags& flags, const ModelSnapshot& snapshot) {
  const std::string path = flags.GetString("--save-model");
  if (path.empty()) {
    return 0;
  }
  const bool json = flags.Has("--model-json");
  const SnapshotFormat format =
      json ? SnapshotFormat::kJson : SnapshotFormat::kBinary;
  if (Status s = SaveSnapshot(snapshot, path, format); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s model snapshot to %s\n", json ? "JSON" : "binary",
              path.c_str());
  return 0;
}

/// Loads the snapshot named by --model, printing usage/errors on failure.
StatusOr<ModelSnapshot> LoadModelFlag(const Flags& flags) {
  const std::string path = flags.GetString("--model");
  if (path.empty()) {
    return Status::InvalidArgument("--model FILE is required");
  }
  return LoadSnapshot(path);
}

std::map<std::string, KeywordScenario> ScenarioCatalog() {
  std::map<std::string, KeywordScenario> catalog;
  for (const KeywordScenario& sc : TrendingKeywordSuite()) {
    catalog[sc.name] = sc;
  }
  catalog[HashtagAppleScenario().name] = HashtagAppleScenario();
  catalog[HashtagBackToSchoolScenario().name] = HashtagBackToSchoolScenario();
  catalog[Meme3Scenario().name] = Meme3Scenario();
  catalog[Meme16Scenario().name] = Meme16Scenario();
  return catalog;
}

int CmdScenarios() {
  std::printf("built-in scenarios:\n");
  for (const auto& [name, sc] : ScenarioCatalog()) {
    std::printf("  %-22s %zu event(s)%s\n", name.c_str(), sc.shocks.size(),
                sc.growth_start != kNpos ? " + growth effect" : "");
  }
  return 0;
}

int CmdGenerate(const Flags& flags) {
  const std::string name = flags.GetString("--scenario");
  const std::string output = flags.GetString("--output");
  if (name.empty() || output.empty()) {
    std::fprintf(stderr,
                 "usage: dspot_cli generate --scenario NAME --output FILE "
                 "[--ticks N] [--locations L] [--outliers K] [--seed S] "
                 "[--series]\n");
    return 1;
  }
  const auto catalog = ScenarioCatalog();
  const auto it = catalog.find(name);
  if (it == catalog.end()) {
    std::fprintf(stderr, "unknown scenario '%s' (try: dspot_cli scenarios)\n",
                 name.c_str());
    return 1;
  }
  long seed = 0, ticks = 0, locations = 0, outliers = 0;
  const long kMaxLong = std::numeric_limits<long>::max();
  if (!ParseIntFlag(flags, "--seed", 42, std::numeric_limits<long>::min(),
                    kMaxLong, &seed) ||
      !ParseIntFlag(flags, "--ticks", 575, 1, kMaxLong, &ticks) ||
      !ParseIntFlag(flags, "--locations", 20, 1, kMaxLong, &locations) ||
      !ParseIntFlag(flags, "--outliers", 3, 0, kMaxLong, &outliers)) {
    return 1;
  }
  GeneratorConfig config = GoogleTrendsConfig(static_cast<uint64_t>(seed));
  config.n_ticks = static_cast<size_t>(ticks);
  config.num_locations = static_cast<size_t>(locations);
  config.num_outlier_locations = static_cast<size_t>(outliers);

  if (flags.Has("--series")) {
    auto series = GenerateGlobalSequence(it->second, config);
    if (!series.ok()) {
      std::fprintf(stderr, "%s\n", series.status().ToString().c_str());
      return 1;
    }
    if (Status s = SaveSeriesCsv(*series, output); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu-tick series to %s\n", series->size(),
                output.c_str());
    return 0;
  }
  auto generated = GenerateTensor({it->second}, config);
  if (!generated.ok()) {
    std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
    return 1;
  }
  if (Status s = SaveTensorCsv(generated->tensor, output); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zux%zux%zu tensor to %s\n",
              generated->tensor.num_keywords(),
              generated->tensor.num_locations(),
              generated->tensor.num_ticks(), output.c_str());
  return 0;
}

/// Prints the pipeline FitHealth (and, when interrupted, a reminder that
/// the model is partial) after a fit.
void PrintHealth(const FitHealth& health) {
  std::printf("fit health: %s\n", health.ToString().c_str());
  if (health.interrupted()) {
    std::printf("note: the time budget ran out; this is the best partial "
                "model found in time\n");
  }
}

int CmdFit(const Flags& flags) {
  const std::string input = flags.GetString("--series");
  if (input.empty()) {
    std::fprintf(stderr,
                 "usage: dspot_cli fit --series FILE [--forecast H] "
                 "[--forecast-output FILE] [--threads T>=1] "
                 "[--time-budget-ms MS>=0] [--skip-bad-rows] "
                 "[--metrics-json FILE] [--trace-out FILE]\n");
    return 1;
  }
  const long kMaxLong = std::numeric_limits<long>::max();
  long threads = 0, time_budget_ms = 0, horizon = 0;
  // --threads must be >= 1 when given: an explicit 0 is almost always a
  // mangled value (atol("bad") was 0), and "auto" is spelled by omitting
  // the flag. Leaving it out still selects hardware concurrency.
  if (!ParseIntFlag(flags, "--threads", 0, 1, kMaxLong, &threads) ||
      !ParseIntFlag(flags, "--time-budget-ms", 0, 0, kMaxLong,
                    &time_budget_ms) ||
      !ParseIntFlag(flags, "--forecast", 0, 0, kMaxLong, &horizon)) {
    return 1;
  }
  CsvReadOptions read_options;
  read_options.skip_bad_rows = flags.Has("--skip-bad-rows");
  size_t skipped_rows = 0;
  read_options.skipped_rows = &skipped_rows;
  auto series = LoadSeriesCsv(input, read_options);
  if (!series.ok()) {
    std::fprintf(stderr, "%s\n", series.status().ToString().c_str());
    return 1;
  }
  if (skipped_rows > 0) {
    std::fprintf(stderr, "warning: skipped %zu malformed row(s) in %s\n",
                 skipped_rows, input.c_str());
  }
  DspotOptions options;
  // 0 = hardware concurrency; the fit is bit-identical at any setting.
  options.num_threads = static_cast<size_t>(threads);
  options.time_budget_ms = static_cast<double>(time_budget_ms);
  const ObsExportRequest obs_export = ObsExportRequest::FromFlags(flags);
  auto fit = FitDspotSingle(*series, options);
  if (!fit.ok()) {
    std::fprintf(stderr, "%s\n", fit.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", RenderReport(fit->params).c_str());
  std::printf("\nfit RMSE %.3f over %zu ticks; MDL total %.0f bits\n",
              fit->global_rmse[0], series->size(), fit->total_cost_bits);
  PrintHealth(fit->health);
  ModelSnapshot snapshot;
  snapshot.params = fit->params;
  snapshot.keywords = {"series"};
  snapshot.locations = {"global"};
  snapshot.global_rmse = fit->global_rmse;
  snapshot.total_cost_bits = fit->total_cost_bits;
  snapshot.health = fit->health;
  if (const int rc = SaveModelIfRequested(flags, snapshot); rc != 0) {
    return rc;
  }
  if (const int rc = obs_export.Write(); rc != 0) {
    return rc;
  }

  if (horizon > 0) {
    auto forecast =
        ForecastGlobal(fit->params, 0, static_cast<size_t>(horizon));
    if (!forecast.ok()) {
      std::fprintf(stderr, "%s\n", forecast.status().ToString().c_str());
      return 1;
    }
    const std::string out = flags.GetString("--forecast-output");
    if (!out.empty()) {
      if (Status s = SaveSeriesCsv(*forecast, out); !s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
      std::printf("wrote %ld-tick forecast to %s\n", horizon, out.c_str());
    } else {
      std::printf("\nforecast (%ld ticks):\n", horizon);
      for (size_t t = 0; t < forecast->size(); ++t) {
        std::printf("%zu,%.3f\n", series->size() + t, (*forecast)[t]);
      }
    }
  }
  return 0;
}

int CmdFitTensor(const Flags& flags) {
  const std::string input = flags.GetString("--input");
  if (input.empty()) {
    std::fprintf(stderr,
                 "usage: dspot_cli fit-tensor --input FILE "
                 "[--outliers-for KEYWORD] [--threads T>=1] "
                 "[--time-budget-ms MS>=0] [--skip-bad-keywords] "
                 "[--skip-bad-rows] [--metrics-json FILE] "
                 "[--trace-out FILE]\n");
    return 1;
  }
  const long kMaxLong = std::numeric_limits<long>::max();
  long threads = 0, time_budget_ms = 0;
  if (!ParseIntFlag(flags, "--threads", 0, 1, kMaxLong, &threads) ||
      !ParseIntFlag(flags, "--time-budget-ms", 0, 0, kMaxLong,
                    &time_budget_ms)) {
    return 1;
  }
  CsvReadOptions read_options;
  read_options.skip_bad_rows = flags.Has("--skip-bad-rows");
  size_t skipped_rows = 0;
  read_options.skipped_rows = &skipped_rows;
  auto tensor =
      LoadTensorCsv(input, /*fill_absent_with_zero=*/true, read_options);
  if (!tensor.ok()) {
    std::fprintf(stderr, "%s\n", tensor.status().ToString().c_str());
    return 1;
  }
  if (skipped_rows > 0) {
    std::fprintf(stderr, "warning: skipped %zu malformed row(s) in %s\n",
                 skipped_rows, input.c_str());
  }
  DspotOptions options;
  // 0 = hardware concurrency; the fit is bit-identical at any setting.
  options.num_threads = static_cast<size_t>(threads);
  options.time_budget_ms = static_cast<double>(time_budget_ms);
  if (flags.Has("--skip-bad-keywords")) {
    options.on_keyword_error = KeywordErrorPolicy::kSkipAndReport;
  }
  const ObsExportRequest obs_export = ObsExportRequest::FromFlags(flags);
  auto result = FitDspot(*tensor, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", RenderReport(result->params, tensor->keywords()).c_str());
  std::printf("\nper-keyword fit RMSE:\n");
  for (size_t i = 0; i < tensor->num_keywords(); ++i) {
    const bool failed = i < result->keyword_status.size() &&
                        !result->keyword_status[i].ok();
    if (failed) {
      std::printf("  %-20s SKIPPED (%s)\n", tensor->keywords()[i].c_str(),
                  result->keyword_status[i].ToString().c_str());
    } else {
      std::printf("  %-20s %.3f\n", tensor->keywords()[i].c_str(),
                  result->global_rmse[i]);
    }
  }
  PrintHealth(result->health);
  if (const int rc =
          SaveModelIfRequested(flags, MakeSnapshot(*result, *tensor));
      rc != 0) {
    return rc;
  }
  if (const int rc = obs_export.Write(); rc != 0) {
    return rc;
  }

  const std::string outlier_kw = flags.GetString("--outliers-for");
  if (!outlier_kw.empty()) {
    const size_t i = tensor->KeywordIndex(outlier_kw);
    if (i == kNpos) {
      std::fprintf(stderr, "unknown keyword '%s'\n", outlier_kw.c_str());
      return 1;
    }
    auto reactions = ScoreLocationReactions(result->params, i);
    if (!reactions.ok()) {
      std::fprintf(stderr, "%s\n", reactions.status().ToString().c_str());
      return 1;
    }
    std::printf("\nlocation reactions for '%s':\n", outlier_kw.c_str());
    for (const LocationReaction& r : *reactions) {
      std::printf("  %-8s participation %.2f zero-frac %.2f %s\n",
                  tensor->locations()[r.location].c_str(),
                  r.participation_ratio, r.zero_fraction,
                  r.is_outlier ? "OUTLIER" : "");
    }
  }
  return 0;
}

int CmdAggregate(const Flags& flags) {
  const std::string input = flags.GetString("--events");
  const std::string output = flags.GetString("--output");
  if (input.empty() || output.empty()) {
    std::fprintf(stderr,
                 "usage: dspot_cli aggregate --events FILE --output FILE "
                 "[--resolution N] [--origin T] [--skip-bad-rows]\n");
    return 1;
  }
  long resolution = 0, origin = 0;
  if (!ParseIntFlag(flags, "--resolution", 1, 1,
                    std::numeric_limits<long>::max(), &resolution) ||
      !ParseIntFlag(flags, "--origin", 0, std::numeric_limits<long>::min(),
                    std::numeric_limits<long>::max(), &origin)) {
    return 1;
  }
  AggregationConfig config;
  config.ticks_resolution = resolution;
  config.origin = origin;
  CsvReadOptions read_options;
  read_options.skip_bad_rows = flags.Has("--skip-bad-rows");
  size_t skipped_rows = 0;
  read_options.skipped_rows = &skipped_rows;
  auto tensor = LoadAndAggregateEventsCsv(input, config, read_options);
  if (!tensor.ok()) {
    std::fprintf(stderr, "%s\n", tensor.status().ToString().c_str());
    return 1;
  }
  if (skipped_rows > 0) {
    std::fprintf(stderr, "warning: skipped %zu malformed row(s) in %s\n",
                 skipped_rows, input.c_str());
  }
  if (Status s = SaveTensorCsv(*tensor, output); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("aggregated into %zux%zux%zu tensor -> %s\n",
              tensor->num_keywords(), tensor->num_locations(),
              tensor->num_ticks(), output.c_str());
  return 0;
}

int CmdRefit(const Flags& flags) {
  const std::string series_path = flags.GetString("--series");
  const std::string tensor_path = flags.GetString("--input");
  if ((series_path.empty() == tensor_path.empty()) ||
      !flags.HasValue("--model")) {
    std::fprintf(stderr,
                 "usage: dspot_cli refit --model FILE "
                 "(--series FILE | --input FILE) [--cold] "
                 "[--save-model FILE] [--model-json] [--threads T>=1] "
                 "[--time-budget-ms MS>=0] [--skip-bad-rows] "
                 "[--metrics-json FILE] [--trace-out FILE]\n");
    return 1;
  }
  const long kMaxLong = std::numeric_limits<long>::max();
  long threads = 0, time_budget_ms = 0;
  if (!ParseIntFlag(flags, "--threads", 0, 1, kMaxLong, &threads) ||
      !ParseIntFlag(flags, "--time-budget-ms", 0, 0, kMaxLong,
                    &time_budget_ms)) {
    return 1;
  }
  auto model = LoadModelFlag(flags);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  CsvReadOptions read_options;
  read_options.skip_bad_rows = flags.Has("--skip-bad-rows");
  size_t skipped_rows = 0;
  read_options.skipped_rows = &skipped_rows;

  DspotOptions options;
  options.num_threads = static_cast<size_t>(threads);
  options.time_budget_ms = static_cast<double>(time_budget_ms);
  const bool cold = flags.Has("--cold");
  if (!cold) {
    options.warm_start = &model->params;
  }
  const ObsExportRequest obs_export = ObsExportRequest::FromFlags(flags);

  StatusOr<DspotResult> fit = Status::Internal("unreachable");
  std::vector<std::string> keywords;
  std::vector<std::string> locations;
  if (!series_path.empty()) {
    auto series = LoadSeriesCsv(series_path, read_options);
    if (!series.ok()) {
      std::fprintf(stderr, "%s\n", series.status().ToString().c_str());
      return 1;
    }
    keywords = {"series"};
    locations = {"global"};
    fit = FitDspotSingle(*series, options);
  } else {
    auto tensor = LoadTensorCsv(tensor_path, /*fill_absent_with_zero=*/true,
                                read_options);
    if (!tensor.ok()) {
      std::fprintf(stderr, "%s\n", tensor.status().ToString().c_str());
      return 1;
    }
    keywords = tensor->keywords();
    locations = tensor->locations();
    fit = FitDspot(*tensor, options);
  }
  if (skipped_rows > 0) {
    std::fprintf(stderr, "warning: skipped %zu malformed row(s)\n",
                 skipped_rows);
  }
  if (!fit.ok()) {
    std::fprintf(stderr, "%s\n", fit.status().ToString().c_str());
    return 1;
  }
  std::printf("%s refit from %s\n", cold ? "cold" : "warm",
              flags.GetString("--model").c_str());
  std::printf("%s", RenderReport(fit->params, keywords).c_str());
  std::printf("\nrefit RMSE:\n");
  for (size_t i = 0; i < fit->global_rmse.size(); ++i) {
    std::printf("  %-20s %.3f\n",
                (i < keywords.size() ? keywords[i] : "?").c_str(),
                fit->global_rmse[i]);
  }
  std::printf("MDL total %.0f bits\n", fit->total_cost_bits);
  PrintHealth(fit->health);
  ModelSnapshot snapshot;
  snapshot.params = fit->params;
  snapshot.keywords = keywords;
  snapshot.locations = locations;
  snapshot.global_rmse = fit->global_rmse;
  snapshot.total_cost_bits = fit->total_cost_bits;
  snapshot.health = fit->health;
  if (const int rc = SaveModelIfRequested(flags, snapshot); rc != 0) {
    return rc;
  }
  return obs_export.Write();
}

int CmdUpdate(const Flags& flags) {
  const std::string input = flags.GetString("--input");
  if (input.empty() || !flags.HasValue("--model")) {
    std::fprintf(stderr,
                 "usage: dspot_cli update --model FILE --input FILE "
                 "[--append FILE] [--append-start TICK] "
                 "[--save-model FILE] [--model-json] "
                 "[--threads T>=1] [--time-budget-ms MS>=0] "
                 "[--skip-bad-rows] [--metrics-json FILE] "
                 "[--trace-out FILE]\n");
    return 1;
  }
  const long kMaxLong = std::numeric_limits<long>::max();
  long threads = 0, time_budget_ms = 0, append_start = -1;
  if (!ParseIntFlag(flags, "--threads", 0, 1, kMaxLong, &threads) ||
      !ParseIntFlag(flags, "--time-budget-ms", 0, 0, kMaxLong,
                    &time_budget_ms) ||
      !ParseIntFlag(flags, "--append-start", -1, 0, kMaxLong,
                    &append_start)) {
    return 1;
  }
  auto model = LoadModelFlag(flags);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  CsvReadOptions read_options;
  read_options.skip_bad_rows = flags.Has("--skip-bad-rows");
  size_t skipped_rows = 0;
  read_options.skipped_rows = &skipped_rows;
  auto tensor =
      LoadTensorCsv(input, /*fill_absent_with_zero=*/true, read_options);
  if (!tensor.ok()) {
    std::fprintf(stderr, "%s\n", tensor.status().ToString().c_str());
    return 1;
  }
  const std::string append_path = flags.GetString("--append");
  if (!append_path.empty()) {
    auto extra = LoadTensorCsv(append_path, /*fill_absent_with_zero=*/true,
                               read_options);
    if (!extra.ok()) {
      std::fprintf(stderr, "%s\n", extra.status().ToString().c_str());
      return 1;
    }
    // --append-start declares where the append file's tick 0 belongs on
    // the base tensor's axis; ConcatTicks rejects overlaps and gaps.
    // Without it the append is trusted to start directly after the base
    // (the historical relative-tick contract).
    auto combined =
        ConcatTicks(*tensor, *extra,
                    append_start < 0 ? kNpos
                                     : static_cast<size_t>(append_start));
    if (!combined.ok()) {
      std::fprintf(stderr, "%s\n", combined.status().ToString().c_str());
      return 1;
    }
    tensor = std::move(combined);
  }
  if (skipped_rows > 0) {
    std::fprintf(stderr, "warning: skipped %zu malformed row(s)\n",
                 skipped_rows);
  }
  UpdateOptions options;
  options.fit.num_threads = static_cast<size_t>(threads);
  options.fit.time_budget_ms = static_cast<double>(time_budget_ms);
  const ObsExportRequest obs_export = ObsExportRequest::FromFlags(flags);
  auto update = UpdateFit(*model, *tensor, options);
  if (!update.ok()) {
    std::fprintf(stderr, "%s\n", update.status().ToString().c_str());
    return 1;
  }
  const DspotResult& result = update->result;
  std::printf("absorbed %zu appended tick(s) into %s\n",
              update->appended_ticks, flags.GetString("--model").c_str());
  std::printf("%s", RenderReport(result.params, tensor->keywords()).c_str());
  std::printf("\nper-keyword update:\n");
  for (size_t i = 0; i < tensor->num_keywords(); ++i) {
    std::printf("  %-20s RMSE %.3f  %s\n", tensor->keywords()[i].c_str(),
                result.global_rmse[i],
                update->redetected[i] ? "re-detected shocks"
                                      : "kept cached schedule");
  }
  std::printf("MDL total %.0f bits\n", result.total_cost_bits);
  PrintHealth(result.health);
  if (const int rc =
          SaveModelIfRequested(flags, MakeSnapshot(result, *tensor));
      rc != 0) {
    return rc;
  }
  return obs_export.Write();
}

int CmdStream(const Flags& flags) {
  const std::string events = flags.GetString("--events");
  const std::string load_path = flags.GetString("--load-state");
  const std::string wal_dir = flags.GetString("--wal-dir");
  const bool recover_only = flags.Has("--recover");
  if (events.empty() && load_path.empty() && wal_dir.empty()) {
    std::fprintf(stderr,
                 "usage: dspot_cli stream --events FILE [--resolution N>=1] "
                 "[--origin T] [--flush-every N>=1] [--ring N>=16] "
                 "[--horizon H>=1] [--threads T>=1] [--flush-budget-ms MS>=0] "
                 "[--load-state FILE] [--save-state FILE] "
                 "[--wal-dir DIR] [--fsync-policy never|flush|everyn] "
                 "[--recover] [--forecast KEYWORD] [--skip-bad-rows] "
                 "[--metrics-json FILE] [--trace-out FILE]\n");
    return 1;
  }
  if (!wal_dir.empty() && !load_path.empty()) {
    std::fprintf(stderr,
                 "--wal-dir and --load-state are mutually exclusive: a WAL "
                 "directory carries its own recovered state\n");
    return 1;
  }
  if (recover_only && wal_dir.empty()) {
    std::fprintf(stderr, "--recover requires --wal-dir DIR\n");
    return 1;
  }
  FsyncPolicy fsync_policy = FsyncPolicy::kOnFlush;
  if (const std::string policy = flags.GetString("--fsync-policy");
      !policy.empty()) {
    if (wal_dir.empty()) {
      std::fprintf(stderr, "--fsync-policy requires --wal-dir DIR\n");
      return 1;
    }
    if (policy == "never") {
      fsync_policy = FsyncPolicy::kNever;
    } else if (policy == "flush") {
      fsync_policy = FsyncPolicy::kOnFlush;
    } else if (policy == "everyn") {
      fsync_policy = FsyncPolicy::kEveryN;
    } else {
      std::fprintf(stderr,
                   "--fsync-policy must be one of never|flush|everyn, "
                   "got '%s'\n",
                   policy.c_str());
      return 1;
    }
  }
  const long kMaxLong = std::numeric_limits<long>::max();
  long resolution = 0, origin = 0, flush_every = 0, ring = 0, horizon = 0;
  long threads = 0, flush_budget_ms = 0, kill_after = 0;
  if (!ParseIntFlag(flags, "--resolution", 1, 1, kMaxLong, &resolution) ||
      !ParseIntFlag(flags, "--origin", 0, std::numeric_limits<long>::min(),
                    kMaxLong, &origin) ||
      !ParseIntFlag(flags, "--flush-every", 16, 1, kMaxLong, &flush_every) ||
      !ParseIntFlag(flags, "--ring", 256, 16, kMaxLong, &ring) ||
      !ParseIntFlag(flags, "--horizon", 16, 1, kMaxLong, &horizon) ||
      !ParseIntFlag(flags, "--threads", 1, 1, kMaxLong, &threads) ||
      !ParseIntFlag(flags, "--flush-budget-ms", 0, 0, kMaxLong,
                    &flush_budget_ms) ||
      // Undocumented crash hook for the durability smoke test: SIGKILL the
      // process right after the Nth accepted append (0 = disabled).
      !ParseIntFlag(flags, "--kill-after", 0, 0, kMaxLong, &kill_after)) {
    return 1;
  }
  const ObsExportRequest obs_export = ObsExportRequest::FromFlags(flags);

  StreamOptions options;
  options.ticks_resolution = resolution;
  options.origin = origin;
  options.ring_capacity = static_cast<size_t>(ring);
  options.forecast_horizon = static_cast<size_t>(horizon);
  options.num_threads = static_cast<size_t>(threads);
  options.flush_budget_ms = static_cast<double>(flush_budget_ms);

  std::unique_ptr<StreamEngine> owned;
  std::unique_ptr<DurableEngine> durable;
  StreamEngine* engine = nullptr;
  if (!wal_dir.empty()) {
    DurableOptions doptions;
    doptions.stream = options;
    doptions.fsync_policy = fsync_policy;
    auto opened = DurableEngine::Open(wal_dir, doptions);
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
      return 1;
    }
    durable = std::move(*opened);
    engine = &durable->engine();
    const RecoveryReport& rec = durable->recovery();
    if (rec.fresh) {
      if (recover_only && events.empty()) {
        std::fprintf(stderr, "nothing to recover: %s was empty\n",
                     wal_dir.c_str());
        return 1;
      }
      std::printf("initialized WAL dir %s\n", wal_dir.c_str());
    } else {
      std::printf(
          "recovered %s: checkpoint seq %llu, replayed %llu append(s) and "
          "%llu flush(es) from the WAL tail, truncated %llu torn byte(s)\n",
          wal_dir.c_str(),
          static_cast<unsigned long long>(rec.checkpoint_seq),
          static_cast<unsigned long long>(rec.replayed_appends),
          static_cast<unsigned long long>(rec.replayed_flushes),
          static_cast<unsigned long long>(rec.truncated_bytes));
      if (rec.checkpoints_discarded > 0) {
        std::fprintf(stderr,
                     "warning: %zu damaged checkpoint(s) discarded — "
                     "recovered from an older one\n",
                     rec.checkpoints_discarded);
      }
    }
  } else if (!load_path.empty()) {
    // Semantic options (bucketing, ring size, thresholds) come from the
    // state file; the flags above only set this run's runtime knobs.
    auto loaded = StreamEngine::LoadState(load_path, options);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    owned = std::move(*loaded);
    engine = owned.get();
    std::printf("resumed %zu keyword(s) from %s\n", engine->num_keywords(),
                load_path.c_str());
  } else {
    owned = std::make_unique<StreamEngine>(options);
    engine = owned.get();
  }

  // stats.appends/rejected are lifetime counters and survive --load-state;
  // report only this run's replay work, not the resumed history.
  const StreamStats before = engine->stats();
  size_t flushes = 0;
  StreamFlushReport totals;
  auto flush_now = [&]() -> Status {
    auto report = durable ? durable->Flush() : engine->Flush();
    if (!report.ok()) return report.status();
    ++flushes;
    totals.keywords_triaged += report->keywords_triaged;
    totals.cold_fits += report->cold_fits;
    totals.warm_refits += report->warm_refits;
    totals.escalations += report->escalations;
    totals.refit_errors += report->refit_errors;
    totals.deadline_hit |= report->deadline_hit;
    return Status::Ok();
  };

  if (!events.empty()) {
    CsvReadOptions read_options;
    read_options.skip_bad_rows = flags.Has("--skip-bad-rows");
    size_t skipped_rows = 0;
    read_options.skipped_rows = &skipped_rows;
    const int64_t eng_resolution =
        std::max<int64_t>(engine->options().ticks_resolution, 1);
    const int64_t eng_origin = engine->options().origin;
    int64_t last_flush_bucket = std::numeric_limits<int64_t>::min();
    long accepted_appends = 0;
    Status replay = ForEachEventCsv(
        events, read_options, [&](const EventRecord& r) -> Status {
          // Flush whenever stream time crosses a --flush-every boundary,
          // like a periodic ingest batch.
          const int64_t tick = (r.timestamp - eng_origin) / eng_resolution;
          const int64_t bucket = tick / flush_every;
          if (last_flush_bucket != std::numeric_limits<int64_t>::min() &&
              bucket > last_flush_bucket) {
            DSPOT_RETURN_IF_ERROR(flush_now());
          }
          last_flush_bucket = bucket;
          DSPOT_RETURN_IF_ERROR(
              durable
                  ? durable->Append(r.keyword, r.location, r.timestamp,
                                    r.count)
                  : engine->Append(r.keyword, r.location, r.timestamp,
                                   r.count));
          if (kill_after > 0 && ++accepted_appends >= kill_after) {
            std::raise(SIGKILL);
          }
          return Status::Ok();
        });
    if (!replay.ok()) {
      std::fprintf(stderr, "%s\n", replay.ToString().c_str());
      return 1;
    }
    if (skipped_rows > 0) {
      std::fprintf(stderr, "warning: skipped %zu bad row(s) in %s\n",
                   skipped_rows, events.c_str());
    }
  }
  if (Status s = flush_now(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  if (durable && !events.empty()) {
    // Fold the replayed tail into a fresh checkpoint so the next open
    // starts from here instead of re-replaying the whole WAL.
    if (Status s = durable->Checkpoint(); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("checkpointed %s at seq %llu\n", wal_dir.c_str(),
                static_cast<unsigned long long>(
                    durable->last_checkpoint_seq()));
  }

  const StreamStats stats = engine->stats();
  std::printf("replayed %llu append(s) into %zu keyword(s), %llu rejected\n",
              static_cast<unsigned long long>(stats.appends - before.appends),
              stats.num_keywords,
              static_cast<unsigned long long>(stats.rejected - before.rejected));
  std::printf("%zu flush(es): %zu cold fit(s), %zu warm refit(s), "
              "%zu escalation(s), %zu refit error(s)%s\n",
              flushes, totals.cold_fits, totals.warm_refits,
              totals.escalations, totals.refit_errors,
              totals.deadline_hit ? " [deadline hit]" : "");
  std::printf("buffers: %.1f KiB now, %.1f KiB peak\n",
              static_cast<double>(stats.buffer_bytes) / 1024.0,
              static_cast<double>(stats.peak_buffer_bytes) / 1024.0);

  // Print the requested keyword's forecast, or (without --forecast) a
  // sample of the first few fitted keywords'.
  const std::string forecast_kw = flags.GetString("--forecast");
  constexpr size_t kMaxPrinted = 8;
  size_t fitted = 0, printed = 0;
  for (size_t i = 0; i < engine->num_keywords(); ++i) {
    if (!engine->HasFit(i)) continue;
    ++fitted;
    if (forecast_kw.empty() ? printed >= kMaxPrinted
                            : engine->KeywordName(static_cast<uint32_t>(i)) !=
                                  forecast_kw) {
      continue;
    }
    auto forecast = engine->Forecast(i);
    if (!forecast.ok()) continue;
    ++printed;
    std::printf("forecast %-16s from tick %lld:",
                engine->KeywordName(static_cast<uint32_t>(i)).c_str(),
                static_cast<long long>(forecast->start_tick));
    for (const double v : forecast->values) {
      std::printf(" %.1f", v);
    }
    std::printf("\n");
  }
  if (!forecast_kw.empty() && engine->KeywordIndex(forecast_kw) == kNpos) {
    std::fprintf(stderr, "keyword '%s' not in the stream\n",
                 forecast_kw.c_str());
    return 1;
  }
  std::printf("%zu keyword(s) carry a fitted model\n", fitted);

  const std::string save_path = flags.GetString("--save-state");
  if (!save_path.empty()) {
    if (Status s = engine->SaveState(save_path); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote engine state to %s\n", save_path.c_str());
  }
  return obs_export.Write();
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: dspot_cli <scenarios|generate|aggregate|fit|"
                 "fit-tensor|refit|update|stream> [flags]\n");
    return 1;
  }
  const std::string command = argv[1];
  const Flags flags(argc, argv, 2);
  if (command == "scenarios") return CmdScenarios();
  if (command == "generate") return CmdGenerate(flags);
  if (command == "aggregate") return CmdAggregate(flags);
  if (command == "fit") return CmdFit(flags);
  if (command == "fit-tensor") return CmdFitTensor(flags);
  if (command == "refit") return CmdRefit(flags);
  if (command == "update") return CmdUpdate(flags);
  if (command == "stream") return CmdStream(flags);
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return 1;
}

}  // namespace
}  // namespace dspot

int main(int argc, char** argv) { return dspot::Main(argc, argv); }
