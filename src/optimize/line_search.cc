#include "optimize/line_search.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dspot {

double GoldenSectionMinimize(const Scalar1dFn& fn, double lo, double hi,
                             double tolerance, int max_iterations) {
  if (hi < lo) {
    std::swap(lo, hi);
  }
  constexpr double kInvPhi = 0.6180339887498949;  // 1/phi
  double a = lo, b = hi;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = fn(x1);
  double f2 = fn(x2);
  for (int i = 0; i < max_iterations && (b - a) > tolerance; ++i) {
    if (f1 <= f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = fn(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = fn(x2);
    }
  }
  return (f1 <= f2) ? x1 : x2;
}

double GridMinimize(const Scalar1dFn& fn, double lo, double hi, size_t steps) {
  if (steps == 0 || hi <= lo) {
    return lo;
  }
  double best_x = lo;
  double best_f = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i <= steps; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(steps);
    const double f = fn(x);
    if (std::isfinite(f) && f < best_f) {
      best_f = f;
      best_x = x;
    }
  }
  return best_x;
}

double GridThenGoldenMinimize(const Scalar1dFn& fn, double lo, double hi,
                              size_t grid_steps, double tolerance) {
  const double seed = GridMinimize(fn, lo, hi, grid_steps);
  const double cell = (hi - lo) / static_cast<double>(std::max<size_t>(grid_steps, 1));
  const double a = std::max(lo, seed - cell);
  const double b = std::min(hi, seed + cell);
  return GoldenSectionMinimize(fn, a, b, tolerance);
}

double GuardedMinimize(const Scalar1dFn& fn, double lo, double hi,
                       double current, size_t grid_steps, double tolerance) {
  const double f_current = fn(current);
  const double candidate =
      GridThenGoldenMinimize(fn, lo, hi, grid_steps, tolerance);
  const double f_candidate = fn(candidate);
  return f_candidate < f_current ? candidate : current;
}

}  // namespace dspot
