#include "core/params.h"

#include <sstream>

namespace dspot {

std::vector<size_t> ModelParamSet::ShockIndicesFor(size_t keyword) const {
  std::vector<size_t> out;
  for (size_t k = 0; k < shocks.size(); ++k) {
    if (shocks[k].keyword == keyword) {
      out.push_back(k);
    }
  }
  return out;
}

size_t ModelParamSet::ShockCountFor(size_t keyword) const {
  size_t count = 0;
  for (const Shock& s : shocks) {
    if (s.keyword == keyword) ++count;
  }
  return count;
}

std::string ModelParamSet::ToString() const {
  std::ostringstream os;
  os << "ModelParamSet(d=" << num_keywords << ", l=" << num_locations
     << ", n=" << num_ticks << ")\n";
  for (size_t i = 0; i < global.size(); ++i) {
    const KeywordGlobalParams& g = global[i];
    os << "  kw" << i << ": N=" << g.population << " beta=" << g.beta
       << " delta=" << g.delta << " gamma=" << g.gamma;
    if (g.has_growth()) {
      os << " eta0=" << g.growth_rate << " t_eta=" << g.growth_start;
    }
    os << " shocks=" << ShockCountFor(i) << "\n";
  }
  return os.str();
}

}  // namespace dspot
