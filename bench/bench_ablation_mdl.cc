// Ablation D1: MDL-gated model selection vs "no gate". Δ-SPOT accepts a
// shock or growth term only when the total code length justifies it; this
// bench disables the parsimony machinery (backward pruning off, tiny
// forward thresholds) and measures what the gate buys: comparable fit on
// the training range but fewer parameters and a better forecast (the
// ungated model overfits noise bursts that never recur).

#include <cstdio>

#include "core/dspot.h"
#include "datagen/catalog.h"
#include "datagen/generator.h"
#include "timeseries/metrics.h"

namespace dspot {
namespace {

struct Outcome {
  size_t shocks = 0;
  double fit_rmse = 0.0;
  double forecast_rmse = 0.0;
  double cost_bits = 0.0;
};

Outcome Evaluate(const Series& train, const Series& test,
                 const GlobalFitOptions& options) {
  Outcome out;
  auto fit = FitGlobalSequence(train, 0, 1, options);
  if (!fit.ok()) {
    std::fprintf(stderr, "fit failed: %s\n", fit.status().ToString().c_str());
    return out;
  }
  out.shocks = fit->shocks.size();
  out.fit_rmse = fit->rmse;
  out.cost_bits = fit->cost_bits;
  ModelParamSet params;
  params.num_keywords = 1;
  params.num_locations = 1;
  params.num_ticks = train.size();
  params.global = {fit->params};
  params.shocks = fit->shocks;
  auto fc = ForecastGlobal(params, 0, test.size());
  out.forecast_rmse = fc.ok() ? Rmse(test, *fc) : -1.0;
  return out;
}

int Run() {
  std::printf("=== Ablation D1 — MDL model selection vs no gate ===\n\n");
  GeneratorConfig config = GoogleTrendsConfig();
  auto full = GenerateGlobalSequence(GrammyScenario(), config);
  if (!full.ok()) {
    std::fprintf(stderr, "generate: %s\n", full.status().ToString().c_str());
    return 1;
  }
  const Series train = full->Slice(0, 400);
  const Series test = full->Slice(400, full->size());

  GlobalFitOptions mdl;  // defaults: the real Δ-SPOT
  GlobalFitOptions ungated = mdl;
  ungated.min_rmse_decrease = 0.002;   // accept nearly any improvement
  ungated.prune_slack_bits = -1e12;    // never prune
  ungated.max_shocks_per_keyword = 16;
  ungated.return_final_state = true;   // keep the greedy state, not MDL-best

  const Outcome with_mdl = Evaluate(train, test, mdl);
  const Outcome without = Evaluate(train, test, ungated);

  std::printf("%-24s %8s %12s %14s %12s\n", "variant", "#shocks", "fit RMSE",
              "forecast RMSE", "MDL bits");
  std::printf("%-24s %8zu %12.3f %14.3f %12.0f\n", "MDL-gated (Δ-SPOT)",
              with_mdl.shocks, with_mdl.fit_rmse, with_mdl.forecast_rmse,
              with_mdl.cost_bits);
  std::printf("%-24s %8zu %12.3f %14.3f %12.0f\n", "no gate",
              without.shocks, without.fit_rmse, without.forecast_rmse,
              without.cost_bits);
  std::printf("\nExpected shape: the ungated variant uses more shocks for a "
              "marginally better training fit, pays more description bits "
              "and forecasts no better (or worse).\n");
  return 0;
}

}  // namespace
}  // namespace dspot

int main() { return dspot::Run(); }
