// Tests for forecasting (Section 6): cyclic events recur in the future,
// errors are reported for bad inputs.

#include <gtest/gtest.h>

#include <cmath>

#include "core/dspot.h"
#include "core/forecast.h"
#include "core/simulate.h"
#include "datagen/catalog.h"
#include "datagen/generator.h"
#include "timeseries/metrics.h"

namespace dspot {
namespace {

ModelParamSet HandBuiltParams() {
  ModelParamSet params;
  params.num_keywords = 1;
  params.num_locations = 1;
  params.num_ticks = 200;
  KeywordGlobalParams g;
  g.population = 100.0;
  g.beta = 0.5;
  g.delta = 0.45;
  g.gamma = 0.5;
  g.i0 = 1.0;
  params.global = {g};
  Shock s;
  s.keyword = 0;
  s.start = 20;
  s.period = 50;
  s.width = 2;
  s.base_strength = 8.0;
  s.global_strengths.assign(s.NumOccurrences(200), 8.0);
  params.shocks.push_back(s);
  return params;
}

TEST(Forecast, LengthAndContinuity) {
  ModelParamSet params = HandBuiltParams();
  auto fc = ForecastGlobal(params, 0, 60);
  ASSERT_TRUE(fc.ok());
  EXPECT_EQ(fc->size(), 60u);
  // The forecast is the continuation of the full simulation.
  Series full = SimulateGlobal(params, 0, 260);
  for (size_t h = 0; h < 60; ++h) {
    ASSERT_NEAR((*fc)[h], full[200 + h], 1e-12);
  }
}

TEST(Forecast, CyclicShockRecursInFuture) {
  ModelParamSet params = HandBuiltParams();
  // Occurrences at 20, 70, 120, 170, 220, 270; the last two are in the
  // forecast range (200..299).
  auto fc = ForecastGlobal(params, 0, 100);
  ASSERT_TRUE(fc.ok());
  // A spike should appear shortly after forecast offsets 20 and 70.
  double base = (*fc)[10];
  EXPECT_GT((*fc)[23], base * 1.5);
  EXPECT_GT((*fc)[73], base * 1.5);
}

TEST(Forecast, OneShotShockDoesNotRecur) {
  ModelParamSet params = HandBuiltParams();
  params.shocks[0].period = Shock::kNonCyclic;
  params.shocks[0].global_strengths = {8.0};
  auto fc = ForecastGlobal(params, 0, 100);
  ASSERT_TRUE(fc.ok());
  // No spikes: the forecast decays to the endemic level.
  double lo = 1e18;
  double hi = -1e18;
  for (size_t h = 20; h < 100; ++h) {
    lo = std::min(lo, (*fc)[h]);
    hi = std::max(hi, (*fc)[h]);
  }
  EXPECT_LT(hi - lo, 2.0);
}

TEST(Forecast, FitAndForecastConcatenates) {
  ModelParamSet params = HandBuiltParams();
  auto full = FitAndForecastGlobal(params, 0, 40);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->size(), 240u);
}

TEST(Forecast, ErrorsOnBadIndices) {
  ModelParamSet params = HandBuiltParams();
  EXPECT_EQ(ForecastGlobal(params, 5, 10).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(ForecastLocal(params, 0, 5, 10).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(FitAndForecastGlobal(params, 9, 10).status().code(),
            StatusCode::kOutOfRange);
}

TEST(Forecast, LocalRequiresLocalFit) {
  ModelParamSet params = HandBuiltParams();
  EXPECT_EQ(ForecastLocal(params, 0, 0, 10).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(Forecast, ZeroHorizonReturnsEmptyOk) {
  ModelParamSet params = HandBuiltParams();
  auto fc = ForecastGlobal(params, 0, 0);
  ASSERT_TRUE(fc.ok()) << fc.status().ToString();
  EXPECT_EQ(fc->size(), 0u);
  params.num_locations = 1;
  params.base_local = Matrix(1, 1, 50.0);
  auto lc = ForecastLocal(params, 0, 0, 0);
  ASSERT_TRUE(lc.ok()) << lc.status().ToString();
  EXPECT_EQ(lc->size(), 0u);
}

TEST(Forecast, TrainingShorterThanFittedPeriodIsOk) {
  // A shock whose period exceeds the training range has occurrences in
  // the forecast window with no fitted strength; they must fall back to
  // base_strength rather than read past global_strengths.
  ModelParamSet params = HandBuiltParams();
  params.num_ticks = 30;  // shorter than the shock period (50)
  params.shocks[0].global_strengths = {8.0};  // only the first occurrence fit
  auto fc = ForecastGlobal(params, 0, 100);
  ASSERT_TRUE(fc.ok()) << fc.status().ToString();
  ASSERT_EQ(fc->size(), 100u);
  for (size_t h = 0; h < fc->size(); ++h) {
    EXPECT_TRUE(std::isfinite((*fc)[h]));
  }
  // Occurrence at tick 70 (forecast offset 40) still fires.
  EXPECT_GT((*fc)[43], (*fc)[30] * 1.5);
}

TEST(Forecast, LocalRejectsMisshapenLocalMatrices) {
  // Regression: base_local(keyword, location) on a matrix whose shape
  // disagrees with num_locations was an out-of-bounds read in Release
  // builds (assert-only protection). Now a FailedPrecondition.
  ModelParamSet params = HandBuiltParams();
  params.num_locations = 3;
  params.base_local = Matrix(1, 2, 50.0);  // 2 cols, 3 declared locations
  EXPECT_EQ(ForecastLocal(params, 0, 2, 10).status().code(),
            StatusCode::kFailedPrecondition);
  params.base_local = Matrix(1, 3, 50.0);
  params.growth_local = Matrix(2, 3);  // wrong row count
  EXPECT_EQ(ForecastLocal(params, 0, 2, 10).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(Forecast, LocalWorksAfterLocalMatrices) {
  ModelParamSet params = HandBuiltParams();
  params.num_locations = 2;
  params.base_local = Matrix(1, 2, 50.0);
  params.growth_local = Matrix(1, 2);
  params.shocks[0].local_strengths =
      Matrix(params.shocks[0].global_strengths.size(), 2, 8.0);
  auto fc = ForecastLocal(params, 0, 1, 30);
  ASSERT_TRUE(fc.ok()) << fc.status().ToString();
  EXPECT_EQ(fc->size(), 30u);
}

TEST(Forecast, EndToEndGrammyBeatsNaive) {
  // Train on 5 years, forecast 1: the model's forecast should beat the
  // "repeat the training mean" baseline thanks to the recurring event.
  GeneratorConfig config = GoogleTrendsConfig(21);
  config.n_ticks = 312;
  config.num_locations = 6;
  config.num_outlier_locations = 0;
  auto full = GenerateGlobalSequence(GrammyScenario(), config);
  ASSERT_TRUE(full.ok());
  Series train = full->Slice(0, 260);
  Series test = full->Slice(260, 312);
  auto fit = FitDspotSingle(train);
  ASSERT_TRUE(fit.ok());
  auto fc = ForecastGlobal(fit->params, 0, test.size());
  ASSERT_TRUE(fc.ok());
  Series naive(test.size());
  for (size_t t = 0; t < naive.size(); ++t) naive[t] = train.MeanValue();
  EXPECT_LT(Rmse(test, *fc), Rmse(test, naive));
}

}  // namespace
}  // namespace dspot
