#include "epidemics/sir_family.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <vector>

#include "kernels/dual.h"
#include "linalg/matrix.h"
#include "optimize/levenberg_marquardt.h"
#include "timeseries/metrics.h"

namespace dspot {

namespace {

using kernels::Dual;
using kernels::TMax;
using kernels::TMin;

/// The three recurrences, templated over the scalar type so one definition
/// serves both the plain double simulation and the forward-mode dual pass
/// that yields the LM Jacobian. The double instantiations run EXACTLY the
/// operation sequence of the historical scalar loops (TMin/TMax reproduce
/// std::min/std::max operand selection — see kernels/dual.h), so the
/// refactor is bit-identical on the value path.

template <typename T>
void SimulateSiT(const T& population, const T& beta, const T& i0,
                 std::span<T> out) {
  const T n = TMax(population, T(1e-9));
  T s = TMax(n - i0, T(0.0));
  T i = TMin(i0, n);
  for (size_t t = 0; t < out.size(); ++t) {
    out[t] = i;
    const T flow = TMin(beta * (s / n) * i, s);
    s -= flow;
    i += flow;
  }
}

template <typename T>
void SimulateSirT(const T& population, const T& beta, const T& delta,
                  const T& i0, std::span<T> out) {
  const T n = TMax(population, T(1e-9));
  T s = TMax(n - i0, T(0.0));
  T i = TMin(i0, n);
  for (size_t t = 0; t < out.size(); ++t) {
    out[t] = i;
    const T infect = TMin(beta * (s / n) * i, s);
    const T recover = TMin(delta, T(1.0)) * i;
    s -= infect;
    i += infect - recover;
    i = TMax(i, T(0.0));
  }
}

template <typename T>
void SimulateSirsT(const T& population, const T& beta, const T& delta,
                   const T& gamma, const T& i0, std::span<T> out) {
  const T n = TMax(population, T(1e-9));
  T s = TMax(n - i0, T(0.0));
  T i = TMin(i0, n);
  T v = T(0.0);
  for (size_t t = 0; t < out.size(); ++t) {
    out[t] = i;
    const T infect = TMin(beta * (s / n) * i, s);
    const T recover = TMin(delta, T(1.0)) * i;
    const T wane = TMin(gamma, T(1.0)) * v;
    s += wane - infect;
    i += infect - recover;
    v += recover - wane;
    s = TMax(s, T(0.0));
    i = TMax(i, T(0.0));
    v = TMax(v, T(0.0));
  }
}

/// Shared per-fit scratch: the LM workspace, the simulation buffer, and
/// the observed-tick index list the residual loop walks.
struct EpidemicScratch {
  LmWorkspace lm;
  std::vector<double> estimate;
  std::vector<size_t> observed;

  void Prepare(const Series& data) {
    estimate.resize(data.size());
    observed.clear();
    for (size_t t = 0; t < data.size(); ++t) {
      if (data.IsObserved(t)) observed.push_back(t);
    }
  }
};

/// Shared residual builder: model I(t) minus data over observed ticks.
template <typename SimulateInto>
Status ResidualsFor(const Series& data, const SimulateInto& simulate_into,
                    EpidemicScratch* scratch, std::span<double> r) {
  simulate_into(std::span<double>(scratch->estimate));
  for (size_t k = 0; k < scratch->observed.size(); ++k) {
    const size_t t = scratch->observed[k];
    r[k] = scratch->estimate[t] - data[t];
  }
  return Status::Ok();
}

/// Copies the derivative rows of a finished dual simulation into the LM
/// Jacobian: row k holds dI(observed[k]) / d(param 0..NP-1).
template <size_t NP>
void DualRowsInto(const std::vector<Dual<NP>>& trajectory,
                  const std::vector<size_t>& observed, Matrix* jac) {
  for (size_t k = 0; k < observed.size(); ++k) {
    const Dual<NP>& it = trajectory[observed[k]];
    for (size_t c = 0; c < NP; ++c) (*jac)(k, c) = it.d[c];
  }
}

constexpr int kMinObserved = 8;

/// Initial guesses shared by the family: population scaled off the peak,
/// a handful of (beta, delta) starting pairs.
struct Start {
  double beta;
  double delta;
  double gamma;
};

const Start kStarts[] = {
    {0.3, 0.1, 0.05}, {0.6, 0.4, 0.2}, {0.9, 0.7, 0.5}, {0.2, 0.5, 0.1}};

}  // namespace

void SimulateSiInto(const SiParams& params, std::span<double> out) {
  SimulateSiT<double>(params.population, params.beta, params.i0, out);
}

Series SimulateSi(const SiParams& params, size_t n_ticks) {
  Series out(n_ticks);
  SimulateSiInto(params, out.mutable_values());
  return out;
}

void SimulateSirInto(const SirParams& params, std::span<double> out) {
  SimulateSirT<double>(params.population, params.beta, params.delta, params.i0,
                       out);
}

Series SimulateSir(const SirParams& params, size_t n_ticks) {
  Series out(n_ticks);
  SimulateSirInto(params, out.mutable_values());
  return out;
}

void SimulateSirsInto(const SirsParams& params, std::span<double> out) {
  SimulateSirsT<double>(params.population, params.beta, params.delta,
                        params.gamma, params.i0, out);
}

Series SimulateSirs(const SirsParams& params, size_t n_ticks) {
  Series out(n_ticks);
  SimulateSirsInto(params, out.mutable_values());
  return out;
}

StatusOr<SiFit> FitSi(const Series& data, const EpidemicFitOptions& options) {
  if (data.observed_count() < kMinObserved) {
    return Status::InvalidArgument("FitSi: too few observations");
  }
  const double peak = std::max(data.MaxValue(), 1.0);

  EpidemicScratch scratch;
  scratch.Prepare(data);
  auto residual_fn = [&](std::span<const double> p,
                         std::span<double> r) -> Status {
    SiParams params{p[0], p[1], p[2]};
    return ResidualsFor(
        data, [&](std::span<double> out) { SimulateSiInto(params, out); },
        &scratch, r);
  };
  LmOptions lm_options;
  std::vector<Dual<3>> dual_trajectory;
  if (!options.use_numeric_jacobian) {
    dual_trajectory.resize(data.size());
    lm_options.analytic_jacobian = [&](std::span<const double> p,
                                       Matrix* jac) -> Status {
      using D = Dual<3>;
      SimulateSiT<D>(D::Var(p[0], 0), D::Var(p[1], 1), D::Var(p[2], 2),
                     std::span<D>(dual_trajectory));
      DualRowsInto(dual_trajectory, scratch.observed, jac);
      return Status::Ok();
    };
  }
  Bounds bounds;
  bounds.lower = {peak * 1.05, 1e-6, 1e-6};
  bounds.upper = {peak * 100.0, 5.0, peak};

  SiFit best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const Start& start : kStarts) {
    std::vector<double> init = {peak * 2.0, start.beta, 1.0};
    auto fit_or = LevenbergMarquardt(residual_fn, scratch.observed.size(),
                                     init, bounds, lm_options, &scratch.lm);
    if (!fit_or.ok()) continue;
    if (fit_or->final_cost < best_cost) {
      best_cost = fit_or->final_cost;
      best.params = {fit_or->params[0], fit_or->params[1], fit_or->params[2]};
      best.info.lm_iterations = fit_or->iterations;
    }
  }
  if (!std::isfinite(best_cost)) {
    return Status::NumericalError("FitSi: all starts failed");
  }
  SimulateSiInto(best.params, scratch.estimate);
  best.info.rmse = Rmse(std::span<const double>(data.values()),
                        std::span<const double>(scratch.estimate));
  return best;
}

StatusOr<SirFit> FitSir(const Series& data, const EpidemicFitOptions& options) {
  if (data.observed_count() < kMinObserved) {
    return Status::InvalidArgument("FitSir: too few observations");
  }
  const double peak = std::max(data.MaxValue(), 1.0);

  EpidemicScratch scratch;
  scratch.Prepare(data);
  auto residual_fn = [&](std::span<const double> p,
                         std::span<double> r) -> Status {
    SirParams params{p[0], p[1], p[2], p[3]};
    return ResidualsFor(
        data, [&](std::span<double> out) { SimulateSirInto(params, out); },
        &scratch, r);
  };
  LmOptions lm_options;
  std::vector<Dual<4>> dual_trajectory;
  if (!options.use_numeric_jacobian) {
    dual_trajectory.resize(data.size());
    lm_options.analytic_jacobian = [&](std::span<const double> p,
                                       Matrix* jac) -> Status {
      using D = Dual<4>;
      SimulateSirT<D>(D::Var(p[0], 0), D::Var(p[1], 1), D::Var(p[2], 2),
                      D::Var(p[3], 3), std::span<D>(dual_trajectory));
      DualRowsInto(dual_trajectory, scratch.observed, jac);
      return Status::Ok();
    };
  }
  Bounds bounds;
  bounds.lower = {peak * 1.05, 1e-6, 1e-6, 1e-6};
  bounds.upper = {peak * 100.0, 5.0, 1.0, peak};

  SirFit best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const Start& start : kStarts) {
    std::vector<double> init = {peak * 2.0, start.beta, start.delta, 1.0};
    auto fit_or = LevenbergMarquardt(residual_fn, scratch.observed.size(),
                                     init, bounds, lm_options, &scratch.lm);
    if (!fit_or.ok()) continue;
    if (fit_or->final_cost < best_cost) {
      best_cost = fit_or->final_cost;
      best.params = {fit_or->params[0], fit_or->params[1], fit_or->params[2],
                     fit_or->params[3]};
      best.info.lm_iterations = fit_or->iterations;
    }
  }
  if (!std::isfinite(best_cost)) {
    return Status::NumericalError("FitSir: all starts failed");
  }
  SimulateSirInto(best.params, scratch.estimate);
  best.info.rmse = Rmse(std::span<const double>(data.values()),
                        std::span<const double>(scratch.estimate));
  return best;
}

StatusOr<SirsFit> FitSirs(const Series& data,
                          const EpidemicFitOptions& options) {
  if (data.observed_count() < kMinObserved) {
    return Status::InvalidArgument("FitSirs: too few observations");
  }
  const double peak = std::max(data.MaxValue(), 1.0);

  EpidemicScratch scratch;
  scratch.Prepare(data);
  auto residual_fn = [&](std::span<const double> p,
                         std::span<double> r) -> Status {
    SirsParams params{p[0], p[1], p[2], p[3], p[4]};
    return ResidualsFor(
        data, [&](std::span<double> out) { SimulateSirsInto(params, out); },
        &scratch, r);
  };
  LmOptions lm_options;
  std::vector<Dual<5>> dual_trajectory;
  if (!options.use_numeric_jacobian) {
    dual_trajectory.resize(data.size());
    lm_options.analytic_jacobian = [&](std::span<const double> p,
                                       Matrix* jac) -> Status {
      using D = Dual<5>;
      SimulateSirsT<D>(D::Var(p[0], 0), D::Var(p[1], 1), D::Var(p[2], 2),
                       D::Var(p[3], 3), D::Var(p[4], 4),
                       std::span<D>(dual_trajectory));
      DualRowsInto(dual_trajectory, scratch.observed, jac);
      return Status::Ok();
    };
  }
  Bounds bounds;
  bounds.lower = {peak * 1.05, 1e-6, 1e-6, 1e-6, 1e-6};
  bounds.upper = {peak * 100.0, 5.0, 1.0, 1.0, peak};

  SirsFit best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const Start& start : kStarts) {
    std::vector<double> init = {peak * 2.0, start.beta, start.delta,
                                start.gamma, 1.0};
    auto fit_or = LevenbergMarquardt(residual_fn, scratch.observed.size(),
                                     init, bounds, lm_options, &scratch.lm);
    if (!fit_or.ok()) continue;
    if (fit_or->final_cost < best_cost) {
      best_cost = fit_or->final_cost;
      best.params = {fit_or->params[0], fit_or->params[1], fit_or->params[2],
                     fit_or->params[3], fit_or->params[4]};
      best.info.lm_iterations = fit_or->iterations;
    }
  }
  if (!std::isfinite(best_cost)) {
    return Status::NumericalError("FitSirs: all starts failed");
  }
  SimulateSirsInto(best.params, scratch.estimate);
  best.info.rmse = Rmse(std::span<const double>(data.values()),
                        std::span<const double>(scratch.estimate));
  return best;
}

}  // namespace dspot
