// The TCP transport: frame reassembly at hostile byte boundaries, the
// tenant handshake codec, and the epoll server end-to-end over loopback
// sockets — split writes, desync teardown isolation, connection caps,
// and graceful drain. The transport must never let one bad connection
// take down the process or another client's stream.

#include "serve/net_server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "serve/model_registry.h"
#include "serve/protocol.h"
#include "serve/serve_engine.h"

#ifdef __linux__
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace dspot {
namespace {

/// splitmix64 — deterministic "randomness" for the split fuzzers.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

ServeRequest MakeRequest(uint64_t id) {
  ServeRequest request;
  request.id = id;
  request.op = ServeOp::kForecast;
  request.keyword = "kw" + std::to_string(id % 7);
  request.horizon = 4 + id % 5;
  request.deadline_ms = 0.0;
  return request;
}

/// One frame's wire bytes: LE u32 length + payload.
std::vector<uint8_t> FrameBytes(const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> wire;
  const uint32_t len = static_cast<uint32_t>(payload.size());
  wire.push_back(static_cast<uint8_t>(len & 0xFF));
  wire.push_back(static_cast<uint8_t>((len >> 8) & 0xFF));
  wire.push_back(static_cast<uint8_t>((len >> 16) & 0xFF));
  wire.push_back(static_cast<uint8_t>((len >> 24) & 0xFF));
  wire.insert(wire.end(), payload.begin(), payload.end());
  return wire;
}

// ---------------------------------------------------------------------------
// FrameAssembler

TEST(FrameAssembler, ReassemblesFramesSplitAtEveryByte) {
  // A multi-frame stream fed one byte at a time must decode to exactly
  // the frames that were encoded.
  std::vector<uint8_t> stream;
  std::vector<std::vector<uint8_t>> expected;
  for (uint64_t id = 1; id <= 8; ++id) {
    expected.push_back(EncodeRequestPayload(MakeRequest(id)));
    const auto wire = FrameBytes(expected.back());
    stream.insert(stream.end(), wire.begin(), wire.end());
  }

  FrameAssembler assembler("test");
  std::vector<uint8_t> payload;
  std::vector<std::vector<uint8_t>> decoded;
  for (uint8_t byte : stream) {
    assembler.Append(&byte, 1);
    for (;;) {
      auto have = assembler.Next(&payload);
      ASSERT_TRUE(have.ok()) << have.status().ToString();
      if (!*have) break;
      decoded.push_back(payload);
    }
  }
  ASSERT_EQ(decoded.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(decoded[i], expected[i]) << "frame " << i;
  }
  EXPECT_EQ(assembler.buffered(), 0u);
  EXPECT_EQ(assembler.stream_offset(), stream.size());
}

TEST(FrameAssembler, ReassemblesFramesAcrossRandomSplits) {
  // 50 deterministic shatterings of the same stream, chunk sizes 1..17:
  // every one must reassemble to identical frames. This is the TCP
  // segmentation model — the peer controls where reads end.
  std::vector<uint8_t> stream;
  std::vector<std::vector<uint8_t>> expected;
  for (uint64_t id = 1; id <= 12; ++id) {
    ServeRequest request = MakeRequest(id);
    if (id % 3 == 0) {  // some bulky frames so splits land mid-payload
      request.op = ServeOp::kOutlierScore;
      request.values.assign(64, 1.25 * static_cast<double>(id));
    }
    expected.push_back(EncodeRequestPayload(request));
    const auto wire = FrameBytes(expected.back());
    stream.insert(stream.end(), wire.begin(), wire.end());
  }

  for (uint64_t round = 0; round < 50; ++round) {
    FrameAssembler assembler("test");
    std::vector<uint8_t> payload;
    std::vector<std::vector<uint8_t>> decoded;
    size_t pos = 0;
    uint64_t state = round * 1000003u + 17;
    while (pos < stream.size()) {
      state = Mix(state);
      const size_t n = std::min<size_t>(1 + state % 17, stream.size() - pos);
      assembler.Append(stream.data() + pos, n);
      pos += n;
      for (;;) {
        auto have = assembler.Next(&payload);
        ASSERT_TRUE(have.ok()) << have.status().ToString();
        if (!*have) break;
        decoded.push_back(payload);
      }
    }
    ASSERT_EQ(decoded.size(), expected.size()) << "round " << round;
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(decoded[i], expected[i]) << "round " << round << " frame "
                                         << i;
    }
  }
}

TEST(FrameAssembler, TruncationIsIncompleteNeverAnError) {
  // Every proper prefix of a valid stream must report "need more bytes",
  // not an error — a slow peer is not a hostile peer.
  const auto payload_full = EncodeRequestPayload(MakeRequest(42));
  const auto wire = FrameBytes(payload_full);
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    FrameAssembler assembler("test");
    assembler.Append(wire.data(), cut);
    std::vector<uint8_t> payload;
    auto have = assembler.Next(&payload);
    ASSERT_TRUE(have.ok()) << "cut " << cut << ": "
                           << have.status().ToString();
    EXPECT_FALSE(*have) << "cut " << cut;
    EXPECT_EQ(assembler.buffered(), cut);
  }
}

TEST(FrameAssembler, OverCapLengthPoisonsWithLocatedDataLoss) {
  // A declared length past kServeMaxFrameBytes marks the stream
  // desynchronized: located DataLoss now, and the same error forever —
  // no later Append can resurrect a conn whose framing is lost.
  const auto good = FrameBytes(EncodeRequestPayload(MakeRequest(1)));
  FrameAssembler assembler("conn test-peer");
  assembler.Append(good.data(), good.size());
  std::vector<uint8_t> payload;
  auto have = assembler.Next(&payload);
  ASSERT_TRUE(have.ok());
  ASSERT_TRUE(*have);

  const uint32_t huge = kServeMaxFrameBytes + 1;
  uint8_t prefix[4] = {static_cast<uint8_t>(huge & 0xFF),
                       static_cast<uint8_t>((huge >> 8) & 0xFF),
                       static_cast<uint8_t>((huge >> 16) & 0xFF),
                       static_cast<uint8_t>((huge >> 24) & 0xFF)};
  assembler.Append(prefix, sizeof(prefix));
  auto bad = assembler.Next(&payload);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kDataLoss);
  // Located at the byte where framing desynchronized (after frame 1).
  EXPECT_NE(bad.status().message().find("conn test-peer"), std::string::npos)
      << bad.status().ToString();
  EXPECT_NE(
      bad.status().message().find("byte " + std::to_string(good.size())),
      std::string::npos)
      << bad.status().ToString();

  // Poisoned: more bytes never un-poison it.
  assembler.Append(good.data(), good.size());
  auto still_bad = assembler.Next(&payload);
  ASSERT_FALSE(still_bad.ok());
  EXPECT_EQ(still_bad.status().code(), StatusCode::kDataLoss);
}

TEST(FrameAssembler, BitFlippedPrefixesNeverHangOrOverrun) {
  // Flip each bit of each length prefix in a 4-frame stream. Decoding
  // must terminate (bounded work) in one of the legal outcomes: located
  // DataLoss, a decode-level rejection, or a short/garbled stream — and
  // never an unbounded wait or crash.
  std::vector<uint8_t> stream;
  std::vector<size_t> prefix_offsets;
  for (uint64_t id = 1; id <= 4; ++id) {
    prefix_offsets.push_back(stream.size());
    const auto wire = FrameBytes(EncodeRequestPayload(MakeRequest(id)));
    stream.insert(stream.end(), wire.begin(), wire.end());
  }
  for (size_t offset : prefix_offsets) {
    for (int bit = 0; bit < 32; ++bit) {
      std::vector<uint8_t> corrupt = stream;
      corrupt[offset + static_cast<size_t>(bit / 8)] ^=
          static_cast<uint8_t>(1u << (bit % 8));
      FrameAssembler assembler("test");
      assembler.Append(corrupt.data(), corrupt.size());
      std::vector<uint8_t> payload;
      // At most 5 frames can come out of a 4-frame stream whose lengths
      // shrank; the loop is bounded by construction.
      for (int frames = 0; frames < 8; ++frames) {
        auto have = assembler.Next(&payload);
        if (!have.ok()) {
          EXPECT_EQ(have.status().code(), StatusCode::kDataLoss);
          break;
        }
        if (!*have) break;  // incomplete: reader would wait for more bytes
        // A reassembled payload may no longer decode — that is the
        // transport's located-error teardown path, also legal.
        auto decoded =
            DecodeRequestPayload(payload.data(), payload.size(), "test");
        (void)decoded;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Deadline validation bugfix (wire-level)

TEST(ServeProtocol, DecodeRejectsNonFiniteAndNegativeDeadlines) {
  // Regression: these all decoded successfully before the fix — NaN and
  // -1 silently aliased "no deadline" through the `> 0` arming test and
  // +inf armed a deadline that could never expire.
  const double hostile[] = {std::nan(""), -1.0,
                            -std::numeric_limits<double>::infinity(),
                            std::numeric_limits<double>::infinity()};
  for (double deadline : hostile) {
    ServeRequest request = MakeRequest(9);
    request.deadline_ms = deadline;
    const auto payload = EncodeRequestPayload(request);
    auto decoded = DecodeRequestPayload(payload.data(), payload.size(), "t");
    ASSERT_FALSE(decoded.ok()) << "deadline_ms " << deadline << " decoded";
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(decoded.status().message().find("deadline_ms"),
              std::string::npos)
        << decoded.status().ToString();
  }
  // The boundary values stay valid: 0 = no deadline, positive = armed.
  for (double deadline : {0.0, 1.5}) {
    ServeRequest request = MakeRequest(9);
    request.deadline_ms = deadline;
    const auto payload = EncodeRequestPayload(request);
    auto decoded = DecodeRequestPayload(payload.data(), payload.size(), "t");
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->deadline_ms, deadline);
  }
}

// ---------------------------------------------------------------------------
// Tenant handshake codec

TEST(ServeProtocol, TenantNameValidationSharedRule) {
  EXPECT_TRUE(ValidateTenantName("team-a_01.prod").ok());
  EXPECT_FALSE(ValidateTenantName("").ok());
  EXPECT_FALSE(ValidateTenantName("has space").ok());
  EXPECT_FALSE(ValidateTenantName(std::string("x\x01y")).ok());
  EXPECT_FALSE(ValidateTenantName(std::string(kServeMaxTenantBytes + 1, 'a'))
                   .ok());
  EXPECT_TRUE(ValidateTenantName(std::string(kServeMaxTenantBytes, 'a')).ok());
}

TEST(ServeProtocol, HelloPayloadRoundTripsAndRejectsBadVersions) {
  const auto payload = EncodeHelloPayload("tenant-7");
  auto tag = PeekPayloadTag(payload.data(), payload.size(), "t");
  ASSERT_TRUE(tag.ok());
  EXPECT_EQ(*tag, kServeHelloTag);
  auto tenant = DecodeHelloPayload(payload.data(), payload.size(), "t");
  ASSERT_TRUE(tenant.ok()) << tenant.status().ToString();
  EXPECT_EQ(*tenant, "tenant-7");

  // Flip the version word (bytes 4..8) to an unknown value.
  std::vector<uint8_t> wrong_version = payload;
  wrong_version[4] = 99;
  auto rejected =
      DecodeHelloPayload(wrong_version.data(), wrong_version.size(), "t");
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);

  // Trailing bytes mean a codec mismatch, not extra features.
  std::vector<uint8_t> trailing = payload;
  trailing.push_back(0);
  auto corrupt = DecodeHelloPayload(trailing.data(), trailing.size(), "t");
  EXPECT_FALSE(corrupt.ok());
}

#ifdef __linux__

// ---------------------------------------------------------------------------
// NetServer over loopback sockets

/// A synthetic fitted model so forecasts have something to serve.
ServedModel MakeModel(const std::string& keyword) {
  ServedModel model;
  model.keyword = keyword;
  model.params.population = 1000.0;
  model.params.beta = 0.2;
  model.params.delta = 0.11;
  model.params.gamma = 0.07;
  model.params.i0 = 2.0;
  model.params.growth_rate = 0.5;
  model.params.growth_start = 40;
  Shock shock;
  shock.keyword = 0;
  shock.period = 7;
  shock.start = 3;
  shock.width = 2;
  shock.base_strength = 1.5;
  shock.global_strengths = {1.5, 1.7, 1.5};
  model.shocks.push_back(shock);
  model.fit_ticks = 64;
  model.rmse = 3.25;
  model.cost_bits = 812.5;
  return model;
}

bool SendAll(int fd, const uint8_t* data, size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return true;
}

int ConnectTo(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Blocks for one frame payload; false on EOF/error/desync.
bool RecvFrame(int fd, FrameAssembler* assembler,
               std::vector<uint8_t>* payload) {
  uint8_t chunk[4096];
  for (;;) {
    auto have = assembler->Next(payload);
    if (!have.ok() || *have) return have.ok();
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    assembler->Append(chunk, static_cast<size_t>(n));
  }
}

/// True once the peer half-closes (a torn-down connection drains to EOF).
bool RecvEof(int fd) {
  uint8_t chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno == ECONNRESET;  // RST is also a teardown
    }
    if (n == 0) return true;
  }
}

/// Registry + engine + running server, torn down in the contract order
/// (Shutdown -> join Run -> engine.Stop -> destructors).
struct ServerHarness {
  explicit ServerHarness(NetServerOptions net_options = {},
                         ServeOptions serve_options = {})
      : registry(RegistryOptions{}),
        engine(&registry, serve_options),
        server(&engine, net_options) {
    for (int i = 0; i < 7; ++i) {
      EXPECT_TRUE(registry.Put(MakeModel("kw" + std::to_string(i))).ok());
    }
    Status status = server.Start();
    EXPECT_TRUE(status.ok()) << status.ToString();
    loop = std::thread([this]() { run_status = server.Run(); });
  }

  ~ServerHarness() {
    server.Shutdown();
    loop.join();
    engine.Stop();
    EXPECT_TRUE(run_status.ok()) << run_status.ToString();
  }

  ModelRegistry registry;
  ServeEngine engine;
  NetServer server;
  std::thread loop;
  Status run_status = Status::Ok();
};

TEST(NetServer, RoundTripsRequestsSplitAtHostileBoundaries) {
  ServerHarness harness;
  const int fd = ConnectTo(harness.server.port());
  ASSERT_GE(fd, 0);

  // One byte stream of 20 requests, written in 3-byte chunks so every
  // frame crosses several TCP writes.
  std::vector<uint8_t> stream;
  for (uint64_t id = 1; id <= 20; ++id) {
    const auto wire = FrameBytes(EncodeRequestPayload(MakeRequest(id)));
    stream.insert(stream.end(), wire.begin(), wire.end());
  }
  for (size_t pos = 0; pos < stream.size(); pos += 3) {
    const size_t n = std::min<size_t>(3, stream.size() - pos);
    ASSERT_TRUE(SendAll(fd, stream.data() + pos, n));
  }

  FrameAssembler assembler("client");
  std::vector<uint8_t> payload;
  for (uint64_t id = 1; id <= 20; ++id) {
    ASSERT_TRUE(RecvFrame(fd, &assembler, &payload)) << "reply " << id;
    auto reply = DecodeReplyPayload(payload.data(), payload.size(), "client");
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    // Replies come back in request order on one connection.
    EXPECT_EQ(reply->id, id);
    EXPECT_TRUE(reply->status.ok()) << reply->status.ToString();
  }
  ::close(fd);

  // The transport saw exactly what we sent.
  for (int spin = 0; spin < 10000; ++spin) {
    if (harness.server.stats().requests == 20) break;
    std::this_thread::yield();
  }
  const NetServerStats stats = harness.server.stats();
  EXPECT_EQ(stats.requests, 20u);
  EXPECT_EQ(stats.replies, 20u);
  EXPECT_EQ(stats.desync_teardowns, 0u);
}

TEST(NetServer, HostileConnectionTearsDownAloneOthersKeepServing) {
  ServerHarness harness;
  const int good = ConnectTo(harness.server.port());
  const int evil = ConnectTo(harness.server.port());
  ASSERT_GE(good, 0);
  ASSERT_GE(evil, 0);

  // Desynchronized garbage: a length prefix way over the cap.
  const uint8_t junk[] = {0xFF, 0xFF, 0xFF, 0xFF, 0xDE, 0xAD, 0xBE, 0xEF};
  ASSERT_TRUE(SendAll(evil, junk, sizeof(junk)));
  EXPECT_TRUE(RecvEof(evil));  // torn down with a located error
  ::close(evil);

  // The good connection is unaffected, before and after the teardown.
  const auto wire = FrameBytes(EncodeRequestPayload(MakeRequest(3)));
  ASSERT_TRUE(SendAll(good, wire.data(), wire.size()));
  FrameAssembler assembler("client");
  std::vector<uint8_t> payload;
  ASSERT_TRUE(RecvFrame(good, &assembler, &payload));
  auto reply = DecodeReplyPayload(payload.data(), payload.size(), "client");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->id, 3u);
  EXPECT_TRUE(reply->status.ok()) << reply->status.ToString();
  ::close(good);

  for (int spin = 0; spin < 10000; ++spin) {
    if (harness.server.stats().desync_teardowns == 1) break;
    std::this_thread::yield();
  }
  EXPECT_EQ(harness.server.stats().desync_teardowns, 1u);
}

TEST(NetServer, UndecodableRequestPayloadTearsDown) {
  ServerHarness harness;
  const int fd = ConnectTo(harness.server.port());
  ASSERT_GE(fd, 0);
  // A well-framed payload with a valid request tag but truncated body.
  std::vector<uint8_t> payload = EncodeRequestPayload(MakeRequest(1));
  payload.resize(payload.size() / 2);
  const auto wire = FrameBytes(payload);
  ASSERT_TRUE(SendAll(fd, wire.data(), wire.size()));
  EXPECT_TRUE(RecvEof(fd));
  ::close(fd);
}

TEST(NetServer, HelloBindsTenantAndMustBeFirst) {
  ServeOptions serve_options;
  serve_options.tenant_quota = 4;
  ServerHarness harness(NetServerOptions{}, serve_options);

  // Handshake then a request: served under the named tenant.
  const int fd = ConnectTo(harness.server.port());
  ASSERT_GE(fd, 0);
  const auto hello = FrameBytes(EncodeHelloPayload("team-x"));
  ASSERT_TRUE(SendAll(fd, hello.data(), hello.size()));
  const auto wire = FrameBytes(EncodeRequestPayload(MakeRequest(5)));
  ASSERT_TRUE(SendAll(fd, wire.data(), wire.size()));
  FrameAssembler assembler("client");
  std::vector<uint8_t> payload;
  ASSERT_TRUE(RecvFrame(fd, &assembler, &payload));
  auto reply = DecodeReplyPayload(payload.data(), payload.size(), "client");
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply->status.ok()) << reply->status.ToString();

  // A second hello mid-stream is a protocol violation.
  ASSERT_TRUE(SendAll(fd, hello.data(), hello.size()));
  EXPECT_TRUE(RecvEof(fd));
  ::close(fd);

  const auto tenants = harness.engine.tenant_stats();
  auto it = tenants.find("team-x");
  ASSERT_NE(it, tenants.end());
  EXPECT_EQ(it->second.submitted, 1u);
  EXPECT_EQ(it->second.completed, 1u);
}

TEST(NetServer, MalformedHelloTearsDown) {
  ServerHarness harness;
  const int fd = ConnectTo(harness.server.port());
  ASSERT_GE(fd, 0);
  std::vector<uint8_t> bad_version = EncodeHelloPayload("t");
  bad_version[4] = 42;  // unknown handshake version
  const auto wire = FrameBytes(bad_version);
  ASSERT_TRUE(SendAll(fd, wire.data(), wire.size()));
  EXPECT_TRUE(RecvEof(fd));
  ::close(fd);
}

TEST(NetServer, ConnectionCapAcceptsThenCloses) {
  NetServerOptions net_options;
  net_options.max_conns = 1;
  ServerHarness harness(net_options);
  const int first = ConnectTo(harness.server.port());
  ASSERT_GE(first, 0);
  // Prove the first conn is registered before racing the second one in.
  const auto wire = FrameBytes(EncodeRequestPayload(MakeRequest(1)));
  ASSERT_TRUE(SendAll(first, wire.data(), wire.size()));
  FrameAssembler assembler("client");
  std::vector<uint8_t> payload;
  ASSERT_TRUE(RecvFrame(first, &assembler, &payload));

  const int second = ConnectTo(harness.server.port());
  ASSERT_GE(second, 0);  // accept()ed...
  EXPECT_TRUE(RecvEof(second));  // ...then closed: over capacity
  ::close(second);
  ::close(first);

  for (int spin = 0; spin < 10000; ++spin) {
    if (harness.server.stats().rejected_at_capacity == 1) break;
    std::this_thread::yield();
  }
  EXPECT_EQ(harness.server.stats().rejected_at_capacity, 1u);
}

TEST(NetServer, ShutdownDrainsInFlightRepliesBeforeClosing) {
  ServerHarness harness;
  const int fd = ConnectTo(harness.server.port());
  ASSERT_GE(fd, 0);

  // A cold fit keeps the engine busy long enough for Shutdown() to race
  // real in-flight work.
  ServeRequest slow;
  slow.id = 77;
  slow.op = ServeOp::kFit;
  slow.keyword = "fresh";
  slow.values.resize(256);
  for (size_t t = 0; t < slow.values.size(); ++t) {
    slow.values[t] =
        30.0 + 8.0 * std::sin(0.9 * static_cast<double>(t)) +
        (t >= 20 && t < 23 ? 40.0 : 0.0);
  }
  const auto wire = FrameBytes(EncodeRequestPayload(slow));
  ASSERT_TRUE(SendAll(fd, wire.data(), wire.size()));
  // Drain finishes ADMITTED work: wait until the transport has submitted
  // the request before asking for shutdown, or there is nothing in
  // flight to drain.
  while (harness.server.stats().requests < 1) {
    std::this_thread::yield();
  }
  harness.server.Shutdown();

  // The reply still arrives, then the server closes the connection.
  FrameAssembler assembler("client");
  std::vector<uint8_t> payload;
  ASSERT_TRUE(RecvFrame(fd, &assembler, &payload));
  auto reply = DecodeReplyPayload(payload.data(), payload.size(), "client");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->id, 77u);
  EXPECT_TRUE(reply->status.ok()) << reply->status.ToString();
  EXPECT_TRUE(RecvEof(fd));
  ::close(fd);
}

#endif  // __linux__

}  // namespace
}  // namespace dspot
