// Tests for src/tensor/event_log (raw-record aggregation) and
// src/tensor/normalization (Trends-style scaling).

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <limits>
#include <string>

#include "common/random.h"
#include "tensor/event_log.h"
#include "tensor/normalization.h"

namespace dspot {
namespace {

TEST(EventLog, AggregatesCountsIntoBuckets) {
  std::vector<EventRecord> records = {
      {"ebola", "US", 0},
      {"ebola", "US", 3},       // same bucket with resolution 7
      {"ebola", "US", 7},       // next bucket
      {"ebola", "JP", 8},
      {"grammy", "US", 14, 5.0},  // pre-aggregated weight
  };
  AggregationConfig config;
  config.ticks_resolution = 7;
  auto tensor = AggregateEvents(records, config);
  ASSERT_TRUE(tensor.ok()) << tensor.status().ToString();
  EXPECT_EQ(tensor->num_keywords(), 2u);
  EXPECT_EQ(tensor->num_locations(), 2u);
  EXPECT_EQ(tensor->num_ticks(), 3u);
  EXPECT_DOUBLE_EQ(tensor->at(0, 0, 0), 2.0);
  EXPECT_DOUBLE_EQ(tensor->at(0, 0, 1), 1.0);
  EXPECT_DOUBLE_EQ(tensor->at(0, 1, 1), 1.0);
  EXPECT_DOUBLE_EQ(tensor->at(1, 0, 2), 5.0);
  EXPECT_EQ(tensor->KeywordIndex("grammy"), 1u);
}

TEST(EventLog, OriginShiftsTickZero) {
  AggregationConfig config;
  config.ticks_resolution = 10;
  config.origin = 100;
  auto tensor = AggregateEvents({{"a", "US", 125}}, config);
  ASSERT_TRUE(tensor.ok());
  EXPECT_EQ(tensor->num_ticks(), 3u);  // tick (125-100)/10 = 2
  EXPECT_DOUBLE_EQ(tensor->at(0, 0, 2), 1.0);
}

TEST(EventLog, RejectsPreOriginRecords) {
  AggregationConfig config;
  config.origin = 100;
  EXPECT_EQ(AggregateEvents({{"a", "US", 50}}, config).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EventLog, RejectsEmptyFields) {
  EXPECT_FALSE(AggregateEvents({{"", "US", 5}}).ok());
  EXPECT_FALSE(AggregateEvents({{"a", "", 5}}).ok());
}

TEST(EventLog, MaxTicksCapDrops) {
  AggregationConfig config;
  config.ticks_resolution = 1;
  config.max_ticks = 10;
  EventAggregator aggregator(config);
  ASSERT_TRUE(aggregator.Add({"a", "US", 5}).ok());
  ASSERT_TRUE(aggregator.Add({"a", "US", 50}).ok());  // dropped silently
  EXPECT_EQ(aggregator.dropped(), 1u);
  EXPECT_EQ(aggregator.accepted(), 1u);
  auto tensor = aggregator.Build();
  ASSERT_TRUE(tensor.ok());
  EXPECT_EQ(tensor->num_ticks(), 6u);
}

TEST(EventLog, EmptyBuildFails) {
  EventAggregator aggregator(AggregationConfig{});
  EXPECT_EQ(aggregator.Build().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(EventLog, CsvRoundTrip) {
  const std::string path = ::testing::TempDir() + "/events.csv";
  {
    std::ofstream os(path);
    os << "keyword,location,timestamp,count\n";
    os << "ebola,US,0\n";
    os << "ebola,US,6\n";
    os << "ebola,JP,8,2.5\n";
  }
  AggregationConfig config;
  config.ticks_resolution = 7;
  auto tensor = LoadAndAggregateEventsCsv(path, config);
  ASSERT_TRUE(tensor.ok()) << tensor.status().ToString();
  EXPECT_DOUBLE_EQ(tensor->at(0, 0, 0), 2.0);
  EXPECT_DOUBLE_EQ(tensor->at(0, 1, 1), 2.5);
}

TEST(EventLog, CsvRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/events_bad.csv";
  {
    std::ofstream os(path);
    os << "keyword,location,timestamp\n";
    os << "ebola,US,notanumber\n";
  }
  const Status status = LoadAndAggregateEventsCsv(path).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find(path + ":2"), std::string::npos)
      << status.message();
}

TEST(EventLog, CsvSkipBadRowsAggregatesTheRest) {
  const std::string path = ::testing::TempDir() + "/events_lenient.csv";
  {
    std::ofstream os(path);
    os << "keyword,location,timestamp\n";
    os << "ebola,US,0\n";
    os << "ebola,US,12abc\n";  // trailing garbage
    os << "ebola,US\n";        // missing timestamp
    os << "ebola,US,1\n";
  }
  CsvReadOptions read_options;
  read_options.skip_bad_rows = true;
  size_t skipped = 0;
  read_options.skipped_rows = &skipped;
  auto tensor =
      LoadAndAggregateEventsCsv(path, AggregationConfig(), read_options);
  ASSERT_TRUE(tensor.ok()) << tensor.status().ToString();
  EXPECT_EQ(skipped, 2u);
  EXPECT_DOUBLE_EQ(tensor->at(0, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(tensor->at(0, 0, 1), 1.0);
}

TEST(Normalization, SeriesRoundTrip) {
  Series s(std::vector<double>{10, 20, 50});
  ScaleInfo info;
  Series normalized = NormalizeToMax(s, &info);
  EXPECT_DOUBLE_EQ(normalized[2], 100.0);
  EXPECT_DOUBLE_EQ(normalized[0], 20.0);
  Series back = Denormalize(normalized, info);
  for (size_t t = 0; t < s.size(); ++t) {
    EXPECT_NEAR(back[t], s[t], 1e-12);
  }
}

TEST(Normalization, DegenerateSeriesUnchanged) {
  Series zeros(std::vector<double>{0, 0});
  ScaleInfo info;
  Series normalized = NormalizeToMax(zeros, &info);
  EXPECT_DOUBLE_EQ(info.factor, 1.0);
  EXPECT_DOUBLE_EQ(normalized[0], 0.0);
}

TEST(Normalization, MissingEntriesPreserved) {
  Series s(std::vector<double>{kMissingValue, 50.0});
  Series normalized = NormalizeToMax(s, nullptr);
  EXPECT_TRUE(IsMissing(normalized[0]));
  EXPECT_DOUBLE_EQ(normalized[1], 100.0);
}

TEST(Normalization, AllMissingSeriesIsIdentity) {
  Series s(std::vector<double>{kMissingValue, kMissingValue, kMissingValue});
  ScaleInfo info;
  Series normalized = NormalizeToMax(s, &info);
  EXPECT_DOUBLE_EQ(info.factor, 1.0);
  EXPECT_TRUE(info.Valid());
  for (size_t t = 0; t < s.size(); ++t) {
    EXPECT_TRUE(IsMissing(normalized[t]));
  }
  Series back = Denormalize(normalized, info);
  for (size_t t = 0; t < s.size(); ++t) {
    EXPECT_TRUE(IsMissing(back[t]));
  }
}

TEST(Normalization, InfiniteMaxDoesNotPoisonValues) {
  // Regression: target_max / inf == 0, and inf * 0 == NaN — the seed code
  // zeroed finite values and turned the infinity itself into NaN.
  Series s(std::vector<double>{5.0, std::numeric_limits<double>::infinity()});
  ScaleInfo info;
  Series normalized = NormalizeToMax(s, &info);
  EXPECT_DOUBLE_EQ(info.factor, 1.0);
  EXPECT_DOUBLE_EQ(normalized[0], 5.0);
  EXPECT_TRUE(std::isinf(normalized[1]));
  Series back = Denormalize(normalized, info);
  EXPECT_DOUBLE_EQ(back[0], 5.0);
}

TEST(Normalization, SubnormalMaxDoesNotOverflowFactor) {
  // Regression: target_max / 1e-310 overflows to inf, so every value
  // became inf and Denormalize produced NaN.
  Series s(std::vector<double>{1e-310, 5e-311});
  ScaleInfo info;
  Series normalized = NormalizeToMax(s, &info);
  EXPECT_TRUE(std::isfinite(info.factor));
  EXPECT_DOUBLE_EQ(info.factor, 1.0);
  Series back = Denormalize(normalized, info);
  for (size_t t = 0; t < s.size(); ++t) {
    EXPECT_TRUE(std::isfinite(back[t]));
    EXPECT_DOUBLE_EQ(back[t], s[t]);
  }
}

TEST(Normalization, RoundTripPropertyOverRandomSeries) {
  // Property: for any series (missing values included, degenerate scales
  // included), Denormalize(NormalizeToMax(s)) returns each observed value
  // to within 1 ulp-ish relative error, preserves missingness exactly, and
  // the recorded ScaleInfo is always finite and valid.
  Random rng(20260805);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = static_cast<size_t>(rng.UniformInt(1, 40));
    // Vary the magnitude regime across trials, hitting tiny and huge.
    const double scale = std::pow(10.0, rng.Uniform(-12.0, 12.0));
    Series s(n);
    for (size_t t = 0; t < n; ++t) {
      const double u = rng.Uniform();
      if (u < 0.2) {
        s[t] = kMissingValue;
      } else if (u < 0.3) {
        s[t] = 0.0;
      } else {
        s[t] = rng.Uniform(0.0, scale);
      }
    }
    ScaleInfo info;
    Series normalized = NormalizeToMax(s, &info);
    ASSERT_TRUE(info.Valid());
    ASSERT_TRUE(std::isfinite(info.factor));
    Series back = Denormalize(normalized, info);
    ASSERT_EQ(back.size(), s.size());
    for (size_t t = 0; t < n; ++t) {
      if (IsMissing(s[t])) {
        EXPECT_TRUE(IsMissing(normalized[t])) << "trial " << trial;
        EXPECT_TRUE(IsMissing(back[t])) << "trial " << trial;
      } else {
        ASSERT_TRUE(std::isfinite(back[t]))
            << "trial " << trial << " t=" << t << " v=" << s[t];
        EXPECT_NEAR(back[t], s[t], 4e-16 * std::fabs(s[t]) + 1e-300)
            << "trial " << trial << " t=" << t;
      }
    }
  }
}

TEST(Normalization, TensorPerKeywordSharedFactor) {
  ActivityTensor tensor(2, 2, 2);
  tensor.at(0, 0, 0) = 10.0;  // keyword 0: max 40
  tensor.at(0, 1, 1) = 40.0;
  tensor.at(1, 0, 0) = 400.0;  // keyword 1: max 400
  std::vector<ScaleInfo> infos;
  ActivityTensor normalized = NormalizeTensorPerKeyword(tensor, &infos);
  ASSERT_EQ(infos.size(), 2u);
  // Keyword 0: both locations scaled by the same factor 2.5.
  EXPECT_DOUBLE_EQ(normalized.at(0, 0, 0), 25.0);
  EXPECT_DOUBLE_EQ(normalized.at(0, 1, 1), 100.0);
  // Keyword 1 scaled independently.
  EXPECT_DOUBLE_EQ(normalized.at(1, 0, 0), 100.0);
  // Local shares within a keyword are preserved.
  EXPECT_DOUBLE_EQ(normalized.at(0, 1, 1) / normalized.at(0, 0, 0),
                   tensor.at(0, 1, 1) / tensor.at(0, 0, 0));
}

}  // namespace
}  // namespace dspot
