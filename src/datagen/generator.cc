#include "datagen/generator.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "core/shock.h"
#include "core/simulate.h"

namespace dspot {

namespace {

/// Default country-style codes for auto-naming locations; cycled with
/// numeric suffixes when more are needed.
const char* const kCountryCodes[] = {
    "US", "GB", "JP", "DE", "FR", "BR", "IN", "CA", "AU", "RU",
    "IT", "ES", "MX", "KR", "NL", "SE", "PL", "TR", "ID", "AR",
    "ZA", "EG", "TH", "VN", "PH", "MY", "SG", "NZ", "IE", "PT"};
const char* const kOutlierCodes[] = {"LA", "NP", "CG", "TD", "ER"};

std::vector<std::string> MakeLocationNames(const GeneratorConfig& config) {
  if (!config.location_names.empty()) {
    return config.location_names;
  }
  std::vector<std::string> names;
  names.reserve(config.num_locations);
  const size_t regulars =
      config.num_locations -
      std::min(config.num_outlier_locations, config.num_locations);
  constexpr size_t kNumCodes = std::size(kCountryCodes);
  for (size_t j = 0; j < regulars; ++j) {
    std::string name = kCountryCodes[j % kNumCodes];
    if (j >= kNumCodes) {
      name += std::to_string(j / kNumCodes);
    }
    names.push_back(std::move(name));
  }
  constexpr size_t kNumOutlierCodes = std::size(kOutlierCodes);
  for (size_t j = regulars; j < config.num_locations; ++j) {
    const size_t o = j - regulars;
    std::string name = kOutlierCodes[o % kNumOutlierCodes];
    if (o >= kNumOutlierCodes) {
      name += std::to_string(o / kNumOutlierCodes);
    }
    names.push_back(std::move(name));
  }
  return names;
}

/// Zipf-like normalized population shares; outlier locations get a fixed
/// tiny share.
std::vector<double> MakeShares(const GeneratorConfig& config) {
  const size_t l = config.num_locations;
  const size_t outliers = std::min(config.num_outlier_locations, l);
  const size_t regulars = l - outliers;
  std::vector<double> shares(l, 0.0);
  double sum = 0.0;
  for (size_t j = 0; j < regulars; ++j) {
    shares[j] = 1.0 / std::pow(static_cast<double>(j + 1), config.share_alpha);
    sum += shares[j];
  }
  for (size_t j = regulars; j < l; ++j) {
    shares[j] = 0.002;  // outliers: ~0.2% of the main mass
    sum += shares[j];
  }
  for (double& s : shares) {
    s /= sum;
  }
  return shares;
}

}  // namespace

StatusOr<GeneratedTensor> GenerateTensor(
    const std::vector<KeywordScenario>& scenarios,
    const GeneratorConfig& config) {
  if (scenarios.empty()) {
    return Status::InvalidArgument("GenerateTensor: no scenarios");
  }
  if (config.num_locations == 0 || config.n_ticks < 8) {
    return Status::InvalidArgument("GenerateTensor: degenerate dimensions");
  }
  if (!config.location_names.empty() &&
      config.location_names.size() != config.num_locations) {
    return Status::InvalidArgument(
        "GenerateTensor: location_names size mismatch");
  }

  const size_t d = scenarios.size();
  const size_t l = config.num_locations;
  const size_t n = config.n_ticks;
  // Root engine: only used to derive per-keyword children, so each
  // keyword's draws are a pure function of (seed, keyword index). That
  // keeps a keyword's data identical whatever other keywords are in the
  // batch, and lets a future parallel generator fan out per keyword
  // without sharing an engine (Random is single-threaded; see random.h).
  const Random root(config.seed);

  GeneratedTensor out;
  out.tensor = ActivityTensor(d, l, n);
  out.truth.local_population = Matrix(d, l);
  out.truth.shock_strengths.resize(d);
  out.truth.is_outlier.assign(l, false);
  const size_t outliers = std::min(config.num_outlier_locations, l);
  for (size_t j = l - outliers; j < l; ++j) {
    out.truth.is_outlier[j] = true;
  }

  const std::vector<std::string> names = MakeLocationNames(config);
  for (size_t j = 0; j < l; ++j) {
    DSPOT_RETURN_IF_ERROR(out.tensor.SetLocationName(j, names[j]));
  }
  const std::vector<double> shares = MakeShares(config);

  for (size_t i = 0; i < d; ++i) {
    const KeywordScenario& scenario = scenarios[i];
    Random rng = root.Child(i);
    DSPOT_RETURN_IF_ERROR(out.tensor.SetKeywordName(i, scenario.name));

    // Draw per-occurrence global strengths (jittered) once per shock, then
    // per-location participation masks.
    out.truth.shock_strengths[i].resize(scenario.shocks.size());
    std::vector<Shock> truth_shocks(scenario.shocks.size());
    for (size_t k = 0; k < scenario.shocks.size(); ++k) {
      const ShockSpec& spec = scenario.shocks[k];
      Shock shock;
      shock.keyword = i;
      shock.period = spec.period;
      shock.start = spec.start;
      shock.width = std::max<size_t>(spec.width, 1);
      shock.base_strength = spec.strength;
      const size_t occ = shock.NumOccurrences(n);
      shock.global_strengths.resize(occ);
      for (size_t m = 0; m < occ; ++m) {
        const double jitter =
            1.0 + spec.strength_jitter * rng.Gaussian(0.0, 1.0);
        shock.global_strengths[m] =
            std::max(spec.strength * jitter, spec.strength * 0.2);
      }
      out.truth.shock_strengths[i][k] = shock.global_strengths;
      // Per-location strengths: participation mask; outliers participate
      // rarely.
      shock.local_strengths = Matrix(occ, l);
      for (size_t m = 0; m < occ; ++m) {
        for (size_t j = 0; j < l; ++j) {
          const double participation =
              out.truth.is_outlier[j] ? 0.15 : config.participation_rate;
          if (rng.Bernoulli(participation)) {
            shock.local_strengths(m, j) =
                shock.global_strengths[m] *
                (1.0 + 0.15 * rng.Gaussian(0.0, 1.0));
          }
        }
      }
      truth_shocks[k] = std::move(shock);
    }

    for (size_t j = 0; j < l; ++j) {
      const double local_pop = scenario.population * shares[j];
      out.truth.local_population(i, j) = local_pop;

      SivInputs inputs;
      inputs.population = std::max(local_pop, 1e-6);
      inputs.beta = scenario.beta;
      inputs.delta = scenario.delta;
      inputs.gamma = scenario.gamma;
      inputs.i0 = std::max(scenario.i0 * shares[j], 1e-6);
      inputs.epsilon.assign(n, 1.0);
      for (const Shock& shock : truth_shocks) {
        for (size_t t = 0; t < n; ++t) {
          inputs.epsilon[t] += shock.LocalStrengthAt(t, j);
        }
      }
      if (scenario.growth_start != kNpos) {
        inputs.eta = BuildEta(scenario.growth_rate, scenario.growth_start, n);
      }
      const Series clean = SimulateSiv(inputs, n);
      Series noisy(n);
      const double noise =
          config.noise_stddev * std::max(shares[j] * 10.0, 0.05);
      for (size_t t = 0; t < n; ++t) {
        if (config.missing_rate > 0.0 && rng.Bernoulli(config.missing_rate)) {
          noisy[t] = kMissingValue;
          continue;
        }
        noisy[t] = std::max(clean[t] + rng.Gaussian(0.0, noise), 0.0);
      }
      DSPOT_RETURN_IF_ERROR(out.tensor.SetLocalSequence(i, j, noisy));
    }
  }
  return out;
}

StatusOr<Series> GenerateGlobalSequence(const KeywordScenario& scenario,
                                        const GeneratorConfig& config) {
  DSPOT_ASSIGN_OR_RETURN(GeneratedTensor generated,
                         GenerateTensor({scenario}, config));
  return generated.tensor.GlobalSequence(0);
}

}  // namespace dspot
