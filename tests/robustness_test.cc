// Failure-injection and degenerate-input robustness: the fitter and its
// substrates must return clean errors or sane fits — never crash, hang or
// emit non-finite values — on hostile inputs.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/ar.h"
#include "baselines/tbats.h"
#include "core/dspot.h"
#include "core/global_fit.h"
#include "common/random.h"
#include "datagen/catalog.h"
#include "datagen/generator.h"
#include "epidemics/sir_family.h"
#include "timeseries/metrics.h"

namespace dspot {
namespace {

Series ConstantSeries(size_t n, double v) {
  Series s(n);
  for (size_t t = 0; t < n; ++t) s[t] = v;
  return s;
}

TEST(Robustness, ConstantSeriesFitsWithoutEvents) {
  auto fit = FitGlobalSequence(ConstantSeries(128, 25.0), 0, 1);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  EXPECT_TRUE(fit->shocks.empty());
  EXPECT_LT(fit->rmse, 2.0);
  for (size_t t = 0; t < fit->estimate.size(); ++t) {
    ASSERT_TRUE(std::isfinite(fit->estimate[t]));
  }
}

TEST(Robustness, AllZeroSeries) {
  auto fit = FitGlobalSequence(ConstantSeries(96, 0.0), 0, 1);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  EXPECT_LT(fit->rmse, 1.0);
}

TEST(Robustness, MostlyMissingSeriesRejectedOrFit) {
  Series s(100);
  for (size_t t = 0; t < 100; ++t) s[t] = kMissingValue;
  // 10 observed points: below the fitter's floor -> clean error.
  for (size_t t = 0; t < 10; ++t) s[t * 10] = 5.0;
  auto fit = FitGlobalSequence(s, 0, 1);
  EXPECT_FALSE(fit.ok());
  EXPECT_EQ(fit.status().code(), StatusCode::kInvalidArgument);
}

TEST(Robustness, HalfMissingStillFits) {
  GeneratorConfig config = GoogleTrendsConfig(3);
  config.n_ticks = 260;
  config.num_locations = 4;
  config.num_outlier_locations = 0;
  config.missing_rate = 0.5;
  auto data = GenerateGlobalSequence(GrammyScenario(), config);
  ASSERT_TRUE(data.ok());
  auto fit = FitGlobalSequence(*data, 0, 1);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  for (size_t t = 0; t < fit->estimate.size(); ++t) {
    ASSERT_TRUE(std::isfinite(fit->estimate[t]));
  }
}

TEST(Robustness, SingleExtremeOutlierDoesNotPoisonFit) {
  Series s = ConstantSeries(200, 10.0);
  s[77] = 1e5;  // a data glitch, not an event the base should absorb
  auto fit = FitGlobalSequence(s, 0, 1);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  // Away from the glitch, the fit stays at the signal's order of
  // magnitude — not dragged toward the 1e5 outlier (N >= peak forces the
  // dynamics to a huge population, so some level distortion is expected).
  double err = 0.0;
  size_t count = 0;
  for (size_t t = 0; t < 60; ++t) {
    err += std::fabs(fit->estimate[t] - 10.0);
    ++count;
  }
  EXPECT_LT(err / static_cast<double>(count), 50.0);
}

TEST(Robustness, TinyMagnitudeSeries) {
  Random rng(5);
  Series s(128);
  for (size_t t = 0; t < s.size(); ++t) {
    s[t] = 1e-4 * (1.0 + 0.1 * rng.Gaussian());
  }
  auto fit = FitGlobalSequence(s, 0, 1);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  EXPECT_TRUE(std::isfinite(fit->rmse));
}

TEST(Robustness, HugeMagnitudeSeries) {
  Random rng(6);
  Series s(128);
  for (size_t t = 0; t < s.size(); ++t) {
    s[t] = 1e8 * (1.0 + 0.1 * rng.Gaussian());
  }
  auto fit = FitGlobalSequence(s, 0, 1);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  EXPECT_TRUE(std::isfinite(fit->rmse));
  EXPECT_LT(fit->rmse, 1e8);
}

TEST(Robustness, PureNoiseFindsFewOrNoEvents) {
  Random rng(8);
  Series s(312);
  for (size_t t = 0; t < s.size(); ++t) {
    s[t] = std::max(20.0 + rng.Gaussian(0.0, 4.0), 0.0);
  }
  auto fit = FitGlobalSequence(s, 0, 1);
  ASSERT_TRUE(fit.ok());
  // White noise admits no justified events (allow at most one marginal
  // false positive across the whole sequence).
  EXPECT_LE(fit->shocks.size(), 1u);
}

TEST(Robustness, BaselinesHandleConstantInput) {
  const Series s = ConstantSeries(120, 5.0);
  EXPECT_TRUE(ArModel::Fit(s, 4).ok());
  auto sirs = FitSirs(s);
  ASSERT_TRUE(sirs.ok());
  EXPECT_TRUE(std::isfinite(sirs->info.rmse));
}

TEST(Robustness, TbatsConstantInput) {
  TbatsConfig config;
  config.period = 12;
  auto model = TbatsModel::Fit(ConstantSeries(120, 5.0), config);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  Series f = model->Forecast(ConstantSeries(120, 5.0), 12);
  for (size_t t = 0; t < f.size(); ++t) {
    EXPECT_NEAR(f[t], 5.0, 1.0);
  }
}

TEST(Robustness, ForecastHorizonZero) {
  ModelParamSet params;
  params.num_keywords = 1;
  params.num_locations = 1;
  params.num_ticks = 64;
  params.global.resize(1);
  auto fc = ForecastGlobal(params, 0, 0);
  ASSERT_TRUE(fc.ok());
  EXPECT_EQ(fc->size(), 0u);
}

TEST(Robustness, TensorWithOneTick) {
  // Degenerate duration: generation refuses (< 8 ticks).
  GeneratorConfig config;
  config.n_ticks = 4;
  config.num_locations = 2;
  EXPECT_FALSE(GenerateTensor({GrammyScenario()}, config).ok());
}

TEST(Robustness, FitDspotSingleOnShortButValidSeries) {
  GeneratorConfig config = GoogleTrendsConfig(4);
  config.n_ticks = 64;
  config.num_locations = 3;
  config.num_outlier_locations = 0;
  KeywordScenario sc = GrammyScenario();
  sc.shocks[0].period = 26;
  sc.shocks[0].start = 6;
  auto data = GenerateGlobalSequence(sc, config);
  ASSERT_TRUE(data.ok());
  auto fit = FitDspotSingle(*data);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
}

}  // namespace
}  // namespace dspot
