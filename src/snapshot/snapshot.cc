#include "snapshot/snapshot.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>

#include "durable/durable_file.h"
#include "obs/metrics.h"
#include "snapshot/codec.h"

namespace dspot {

namespace {

constexpr char kMagic[8] = {'D', 'S', 'P', 'O', 'T', 'S', 'N', 'P'};

// Caps on decoded counts. Far above any real model, far below anything
// that could drive a pathological allocation from a corrupt length field.
constexpr uint64_t kMaxDim = 1u << 24;        // keywords / locations / ticks
constexpr uint64_t kMaxShocks = 1u << 20;
constexpr uint64_t kMaxLabelLen = 1u << 16;

// ---------------------------------------------------------------------------
// Canonical payload
// ---------------------------------------------------------------------------

void PutMatrix(ByteWriter* w, const Matrix& m) {
  w->PutU64(m.rows());
  w->PutU64(m.cols());
  for (double v : m.data()) {
    w->PutDouble(v);
  }
}

StatusOr<Matrix> GetMatrix(ByteReader* r, const char* what) {
  DSPOT_ASSIGN_OR_RETURN(uint64_t rows, r->GetCount(kMaxDim, what));
  DSPOT_ASSIGN_OR_RETURN(uint64_t cols, r->GetCount(kMaxDim, what));
  if (rows * cols > r->remaining() / 8) {
    return r->CorruptAt(std::string(what) + " matrix " +
                        std::to_string(rows) + "x" + std::to_string(cols) +
                        " larger than the remaining payload");
  }
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      DSPOT_ASSIGN_OR_RETURN(m(i, j), r->GetDouble());
    }
  }
  return m;
}

// Cross-field shape validation shared by both decode backends. The codec
// reads each list behind its own length prefix, so a hostile file can
// declare num_keywords = 3 while storing one label (or the same label
// thrice); any consumer that indexes the label table by a stored keyword
// index would then read out of bounds — or serve model A under model B's
// name. Returns an empty string when the snapshot is consistent.
std::string SnapshotShapeProblem(const ModelSnapshot& s) {
  const ModelParamSet& p = s.params;
  if (s.keywords.size() != p.num_keywords) {
    return "keyword label count " + std::to_string(s.keywords.size()) +
           " does not match num_keywords " + std::to_string(p.num_keywords);
  }
  for (size_t i = 0; i < s.keywords.size(); ++i) {
    for (size_t j = i + 1; j < s.keywords.size(); ++j) {
      if (s.keywords[i] == s.keywords[j]) {
        return "duplicate keyword label '" + s.keywords[i] + "'";
      }
    }
  }
  if (s.locations.size() != p.num_locations) {
    return "location label count " + std::to_string(s.locations.size()) +
           " does not match num_locations " + std::to_string(p.num_locations);
  }
  if (!s.scales.empty() && s.scales.size() != p.num_keywords) {
    return "scale count " + std::to_string(s.scales.size()) +
           " does not match num_keywords " + std::to_string(p.num_keywords);
  }
  if (s.global_rmse.size() != p.num_keywords) {
    return "rmse count " + std::to_string(s.global_rmse.size()) +
           " does not match num_keywords " + std::to_string(p.num_keywords);
  }
  return std::string();
}

}  // namespace

std::vector<uint8_t> EncodeSnapshotPayload(const ModelSnapshot& s) {
  ByteWriter w;
  const ModelParamSet& p = s.params;
  w.PutU64(p.num_keywords);
  w.PutU64(p.num_locations);
  w.PutU64(p.num_ticks);
  w.PutU64(p.global.size());
  for (const KeywordGlobalParams& g : p.global) {
    w.PutDouble(g.population);
    w.PutDouble(g.beta);
    w.PutDouble(g.delta);
    w.PutDouble(g.gamma);
    w.PutDouble(g.i0);
    w.PutDouble(g.growth_rate);
    w.PutU64(g.growth_start);  // kNpos (all-ones) encodes "disabled"
  }
  PutMatrix(&w, p.base_local);
  PutMatrix(&w, p.growth_local);
  w.PutU64(p.shocks.size());
  for (const Shock& shock : p.shocks) {
    w.PutU64(shock.keyword);
    w.PutU64(shock.period);
    w.PutU64(shock.start);
    w.PutU64(shock.width);
    w.PutDouble(shock.base_strength);
    w.PutU64(shock.global_strengths.size());
    for (double v : shock.global_strengths) {
      w.PutDouble(v);
    }
    PutMatrix(&w, shock.local_strengths);
  }
  w.PutU64(s.keywords.size());
  for (const std::string& k : s.keywords) {
    w.PutString(k);
  }
  w.PutU64(s.locations.size());
  for (const std::string& l : s.locations) {
    w.PutString(l);
  }
  w.PutU64(s.scales.size());
  for (const ScaleInfo& info : s.scales) {
    w.PutDouble(info.factor);
  }
  w.PutU64(s.global_rmse.size());
  for (double v : s.global_rmse) {
    w.PutDouble(v);
  }
  w.PutDouble(s.total_cost_bits);
  w.PutU64(static_cast<uint64_t>(s.health.iterations));
  w.PutU64(static_cast<uint64_t>(s.health.restarts));
  w.PutDouble(s.health.wall_time_ms);
  w.PutU64(static_cast<uint64_t>(s.health.termination));
  return std::move(w).TakeBytes();
}

namespace {

StatusOr<ModelSnapshot> DecodeSnapshotPayload(ByteReader* r) {
  ModelSnapshot s;
  ModelParamSet& p = s.params;
  DSPOT_ASSIGN_OR_RETURN(p.num_keywords, r->GetCount(kMaxDim, "num_keywords"));
  DSPOT_ASSIGN_OR_RETURN(p.num_locations,
                         r->GetCount(kMaxDim, "num_locations"));
  DSPOT_ASSIGN_OR_RETURN(p.num_ticks, r->GetCount(kMaxDim, "num_ticks"));
  DSPOT_ASSIGN_OR_RETURN(uint64_t n_global,
                         r->GetCount(kMaxDim, "global param count"));
  if (n_global != p.num_keywords) {
    return r->CorruptAt("global param count " + std::to_string(n_global) +
                        " does not match num_keywords " +
                        std::to_string(p.num_keywords));
  }
  p.global.resize(n_global);
  for (KeywordGlobalParams& g : p.global) {
    DSPOT_ASSIGN_OR_RETURN(g.population, r->GetDouble());
    DSPOT_ASSIGN_OR_RETURN(g.beta, r->GetDouble());
    DSPOT_ASSIGN_OR_RETURN(g.delta, r->GetDouble());
    DSPOT_ASSIGN_OR_RETURN(g.gamma, r->GetDouble());
    DSPOT_ASSIGN_OR_RETURN(g.i0, r->GetDouble());
    DSPOT_ASSIGN_OR_RETURN(g.growth_rate, r->GetDouble());
    DSPOT_ASSIGN_OR_RETURN(uint64_t gs, r->GetU64());
    g.growth_start = static_cast<size_t>(gs);
  }
  DSPOT_ASSIGN_OR_RETURN(p.base_local, GetMatrix(r, "base_local"));
  DSPOT_ASSIGN_OR_RETURN(p.growth_local, GetMatrix(r, "growth_local"));
  DSPOT_ASSIGN_OR_RETURN(uint64_t n_shocks,
                         r->GetCount(kMaxShocks, "shock count"));
  p.shocks.resize(n_shocks);
  for (Shock& shock : p.shocks) {
    DSPOT_ASSIGN_OR_RETURN(shock.keyword, r->GetU64());
    DSPOT_ASSIGN_OR_RETURN(shock.period, r->GetU64());
    DSPOT_ASSIGN_OR_RETURN(shock.start, r->GetU64());
    DSPOT_ASSIGN_OR_RETURN(shock.width, r->GetU64());
    if (shock.keyword >= p.num_keywords) {
      return r->CorruptAt("shock keyword " + std::to_string(shock.keyword) +
                          " out of range (num_keywords " +
                          std::to_string(p.num_keywords) + ")");
    }
    DSPOT_ASSIGN_OR_RETURN(shock.base_strength, r->GetDouble());
    DSPOT_ASSIGN_OR_RETURN(
        uint64_t n_str, r->GetCount(r->remaining() / 8, "strength count"));
    shock.global_strengths.resize(n_str);
    for (double& v : shock.global_strengths) {
      DSPOT_ASSIGN_OR_RETURN(v, r->GetDouble());
    }
    DSPOT_ASSIGN_OR_RETURN(shock.local_strengths,
                           GetMatrix(r, "local_strengths"));
  }
  DSPOT_ASSIGN_OR_RETURN(uint64_t n_kw,
                         r->GetCount(kMaxDim, "keyword label count"));
  s.keywords.resize(n_kw);
  for (std::string& k : s.keywords) {
    DSPOT_ASSIGN_OR_RETURN(k, r->GetString());
    if (k.size() > kMaxLabelLen) {
      return r->CorruptAt("keyword label longer than " +
                          std::to_string(kMaxLabelLen));
    }
  }
  DSPOT_ASSIGN_OR_RETURN(uint64_t n_loc,
                         r->GetCount(kMaxDim, "location label count"));
  s.locations.resize(n_loc);
  for (std::string& l : s.locations) {
    DSPOT_ASSIGN_OR_RETURN(l, r->GetString());
  }
  DSPOT_ASSIGN_OR_RETURN(uint64_t n_scales,
                         r->GetCount(kMaxDim, "scale count"));
  s.scales.resize(n_scales);
  for (ScaleInfo& info : s.scales) {
    DSPOT_ASSIGN_OR_RETURN(info.factor, r->GetDouble());
  }
  DSPOT_ASSIGN_OR_RETURN(uint64_t n_rmse,
                         r->GetCount(kMaxDim, "rmse count"));
  s.global_rmse.resize(n_rmse);
  for (double& v : s.global_rmse) {
    DSPOT_ASSIGN_OR_RETURN(v, r->GetDouble());
  }
  DSPOT_ASSIGN_OR_RETURN(s.total_cost_bits, r->GetDouble());
  DSPOT_ASSIGN_OR_RETURN(uint64_t iters, r->GetU64());
  DSPOT_ASSIGN_OR_RETURN(uint64_t restarts, r->GetU64());
  s.health.iterations = static_cast<int>(iters);
  s.health.restarts = static_cast<int>(restarts);
  DSPOT_ASSIGN_OR_RETURN(s.health.wall_time_ms, r->GetDouble());
  DSPOT_ASSIGN_OR_RETURN(uint64_t term, r->GetU64());
  if (term > static_cast<uint64_t>(FitTermination::kCancelled)) {
    return r->CorruptAt("impossible termination value " +
                        std::to_string(term));
  }
  s.health.termination = static_cast<FitTermination>(term);
  if (r->remaining() != 0) {
    return r->CorruptAt(std::to_string(r->remaining()) +
                        " trailing bytes after the payload");
  }
  if (const std::string problem = SnapshotShapeProblem(s); !problem.empty()) {
    return r->CorruptAt(problem);
  }
  return s;
}

// ---------------------------------------------------------------------------
// JSON backend
// ---------------------------------------------------------------------------

// Shortest decimal rendering that parses back to the same double, so the
// JSON backend is value-exact like the binary one. Non-finite values are
// not valid JSON numbers and travel as strings.
std::string JsonDouble(double v) {
  if (std::isnan(v)) return "\"nan\"";
  if (std::isinf(v)) return v > 0 ? "\"inf\"" : "\"-inf\"";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.15g", v);
  if (std::strtod(buf, nullptr) != v) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += "\"";
  return out;
}

void JsonMatrix(std::ostream& os, const Matrix& m) {
  os << "{\"rows\":" << m.rows() << ",\"cols\":" << m.cols() << ",\"data\":[";
  for (size_t i = 0; i < m.data().size(); ++i) {
    if (i) os << ",";
    os << JsonDouble(m.data()[i]);
  }
  os << "]}";
}

// --- Minimal JSON value parser (objects, arrays, strings, numbers) -------
//
// Just enough JSON for the snapshot schema; numbers are parsed as doubles
// and the "inf"/"-inf"/"nan" string spellings are accepted wherever a
// number is expected. Parse errors carry the byte offset into the file.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;
};

class JsonParser {
 public:
  JsonParser(const std::string& text, std::string context)
      : text_(text), context_(std::move(context)) {}

  StatusOr<JsonValue> Parse() {
    DSPOT_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing content after the top-level value");
    }
    return v;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::DataLoss(context_ + ": offset " + std::to_string(pos_) +
                            ": " + what);
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  StatusOr<JsonValue> ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      DSPOT_ASSIGN_OR_RETURN(v.str, ParseString());
      return v;
    }
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') {
      if (text_.compare(pos_, 4, "null") != 0) return Error("bad literal");
      pos_ += 4;
      return JsonValue();
    }
    return ParseNumber();
  }

  StatusOr<JsonValue> ParseBool() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
      return v;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
      return v;
    }
    return Error("bad literal");
  }

  StatusOr<std::string> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return Error("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + i];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= h - '0';
              else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
              else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
              else return Error("bad \\u escape");
            }
            pos_ += 4;
            // Snapshot labels are ASCII; anything else is preserved
            // byte-wise only for the low range.
            out += static_cast<char>(code & 0xFF);
            break;
          }
          default:
            return Error("unknown escape");
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= text_.size()) return Error("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  StatusOr<JsonValue> ParseNumber() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    const std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) {
      return Error("malformed number '" + tok + "'");
    }
    return v;
  }

  StatusOr<JsonValue> ParseArray() {
    ++pos_;  // '['
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      DSPOT_ASSIGN_OR_RETURN(JsonValue elem, ParseValue());
      v.array.push_back(std::move(elem));
      SkipWs();
      if (pos_ >= text_.size()) return Error("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return v;
      }
      return Error("expected ',' or ']' in array");
    }
  }

  StatusOr<JsonValue> ParseObject() {
    ++pos_;  // '{'
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected a key string in object");
      }
      DSPOT_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Error("expected ':' after key '" + key + "'");
      }
      ++pos_;
      DSPOT_ASSIGN_OR_RETURN(JsonValue val, ParseValue());
      v.object.emplace(std::move(key), std::move(val));
      SkipWs();
      if (pos_ >= text_.size()) return Error("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return v;
      }
      return Error("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string context_;
};

// --- JSON -> snapshot field extraction -----------------------------------

Status FieldError(const std::string& context, const std::string& what) {
  return Status::DataLoss(context + ": " + what);
}

StatusOr<const JsonValue*> GetField(const JsonValue& obj,
                                    const std::string& key,
                                    const std::string& context) {
  if (obj.kind != JsonValue::Kind::kObject) {
    return FieldError(context, "expected an object around '" + key + "'");
  }
  auto it = obj.object.find(key);
  if (it == obj.object.end()) {
    return FieldError(context, "missing field '" + key + "'");
  }
  return &it->second;
}

StatusOr<double> GetNumber(const JsonValue& obj, const std::string& key,
                           const std::string& context) {
  DSPOT_ASSIGN_OR_RETURN(const JsonValue* v, GetField(obj, key, context));
  if (v->kind == JsonValue::Kind::kNumber) return v->number;
  if (v->kind == JsonValue::Kind::kString) {
    if (v->str == "inf") return std::numeric_limits<double>::infinity();
    if (v->str == "-inf") return -std::numeric_limits<double>::infinity();
    if (v->str == "nan") return std::numeric_limits<double>::quiet_NaN();
  }
  return FieldError(context, "field '" + key + "' is not a number");
}

StatusOr<double> NumberValue(const JsonValue& v, const std::string& context) {
  if (v.kind == JsonValue::Kind::kNumber) return v.number;
  if (v.kind == JsonValue::Kind::kString) {
    if (v.str == "inf") return std::numeric_limits<double>::infinity();
    if (v.str == "-inf") return -std::numeric_limits<double>::infinity();
    if (v.str == "nan") return std::numeric_limits<double>::quiet_NaN();
  }
  return FieldError(context, "expected a numeric array element");
}

StatusOr<uint64_t> GetUint(const JsonValue& obj, const std::string& key,
                           const std::string& context) {
  DSPOT_ASSIGN_OR_RETURN(double d, GetNumber(obj, key, context));
  if (!(d >= 0) || d != std::floor(d) || d > 1.8e19) {
    return FieldError(context,
                      "field '" + key + "' is not a non-negative integer");
  }
  return static_cast<uint64_t>(d);
}

// size_t fields that use kNpos as a sentinel travel as -1 in JSON.
StatusOr<size_t> GetIndexOrNpos(const JsonValue& obj, const std::string& key,
                                const std::string& context) {
  DSPOT_ASSIGN_OR_RETURN(double d, GetNumber(obj, key, context));
  if (d == -1.0) return kNpos;
  if (!(d >= 0) || d != std::floor(d)) {
    return FieldError(context, "field '" + key + "' is not an index or -1");
  }
  return static_cast<size_t>(d);
}

StatusOr<std::vector<double>> GetDoubleArray(const JsonValue& obj,
                                             const std::string& key,
                                             const std::string& context) {
  DSPOT_ASSIGN_OR_RETURN(const JsonValue* v, GetField(obj, key, context));
  if (v->kind != JsonValue::Kind::kArray) {
    return FieldError(context, "field '" + key + "' is not an array");
  }
  std::vector<double> out;
  out.reserve(v->array.size());
  for (const JsonValue& e : v->array) {
    DSPOT_ASSIGN_OR_RETURN(double d, NumberValue(e, context));
    out.push_back(d);
  }
  return out;
}

StatusOr<Matrix> GetJsonMatrix(const JsonValue& obj, const std::string& key,
                               const std::string& context) {
  DSPOT_ASSIGN_OR_RETURN(const JsonValue* v, GetField(obj, key, context));
  DSPOT_ASSIGN_OR_RETURN(uint64_t rows, GetUint(*v, "rows", context));
  DSPOT_ASSIGN_OR_RETURN(uint64_t cols, GetUint(*v, "cols", context));
  DSPOT_ASSIGN_OR_RETURN(std::vector<double> data,
                         GetDoubleArray(*v, "data", context));
  if (rows > kMaxDim || cols > kMaxDim || data.size() != rows * cols) {
    return FieldError(context, "matrix '" + key + "' has " +
                                   std::to_string(data.size()) +
                                   " entries for shape " +
                                   std::to_string(rows) + "x" +
                                   std::to_string(cols));
  }
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      m(i, j) = data[i * cols + j];
    }
  }
  return m;
}

StatusOr<std::vector<std::string>> GetStringArray(const JsonValue& obj,
                                                  const std::string& key,
                                                  const std::string& context) {
  DSPOT_ASSIGN_OR_RETURN(const JsonValue* v, GetField(obj, key, context));
  if (v->kind != JsonValue::Kind::kArray) {
    return FieldError(context, "field '" + key + "' is not an array");
  }
  std::vector<std::string> out;
  out.reserve(v->array.size());
  for (const JsonValue& e : v->array) {
    if (e.kind != JsonValue::Kind::kString) {
      return FieldError(context, "non-string element in '" + key + "'");
    }
    out.push_back(e.str);
  }
  return out;
}

void WriteJsonSnapshot(std::ostream& os, const ModelSnapshot& s,
                       uint32_t payload_crc) {
  const ModelParamSet& p = s.params;
  os << "{\n";
  os << "  \"format\": \"dspot_snapshot\",\n";
  os << "  \"version\": " << kSnapshotVersion << ",\n";
  os << "  \"payload_crc32\": " << payload_crc << ",\n";
  os << "  \"num_keywords\": " << p.num_keywords << ",\n";
  os << "  \"num_locations\": " << p.num_locations << ",\n";
  os << "  \"num_ticks\": " << p.num_ticks << ",\n";
  os << "  \"global\": [";
  for (size_t i = 0; i < p.global.size(); ++i) {
    const KeywordGlobalParams& g = p.global[i];
    os << (i ? ",\n    " : "\n    ");
    os << "{\"population\":" << JsonDouble(g.population)
       << ",\"beta\":" << JsonDouble(g.beta)
       << ",\"delta\":" << JsonDouble(g.delta)
       << ",\"gamma\":" << JsonDouble(g.gamma)
       << ",\"i0\":" << JsonDouble(g.i0)
       << ",\"growth_rate\":" << JsonDouble(g.growth_rate)
       << ",\"growth_start\":"
       << (g.growth_start == kNpos ? std::string("-1")
                                   : std::to_string(g.growth_start))
       << "}";
  }
  os << "\n  ],\n";
  os << "  \"base_local\": ";
  JsonMatrix(os, p.base_local);
  os << ",\n  \"growth_local\": ";
  JsonMatrix(os, p.growth_local);
  os << ",\n  \"shocks\": [";
  for (size_t i = 0; i < p.shocks.size(); ++i) {
    const Shock& shock = p.shocks[i];
    os << (i ? ",\n    " : "\n    ");
    os << "{\"keyword\":" << shock.keyword << ",\"period\":" << shock.period
       << ",\"start\":" << shock.start << ",\"width\":" << shock.width
       << ",\"base_strength\":" << JsonDouble(shock.base_strength)
       << ",\"global_strengths\":[";
    for (size_t k = 0; k < shock.global_strengths.size(); ++k) {
      if (k) os << ",";
      os << JsonDouble(shock.global_strengths[k]);
    }
    os << "],\"local_strengths\":";
    JsonMatrix(os, shock.local_strengths);
    os << "}";
  }
  os << "\n  ],\n";
  os << "  \"keywords\": [";
  for (size_t i = 0; i < s.keywords.size(); ++i) {
    os << (i ? "," : "") << JsonString(s.keywords[i]);
  }
  os << "],\n  \"locations\": [";
  for (size_t i = 0; i < s.locations.size(); ++i) {
    os << (i ? "," : "") << JsonString(s.locations[i]);
  }
  os << "],\n  \"scales\": [";
  for (size_t i = 0; i < s.scales.size(); ++i) {
    os << (i ? "," : "") << JsonDouble(s.scales[i].factor);
  }
  os << "],\n  \"global_rmse\": [";
  for (size_t i = 0; i < s.global_rmse.size(); ++i) {
    os << (i ? "," : "") << JsonDouble(s.global_rmse[i]);
  }
  os << "],\n";
  os << "  \"total_cost_bits\": " << JsonDouble(s.total_cost_bits) << ",\n";
  os << "  \"health\": {\"iterations\":" << s.health.iterations
     << ",\"restarts\":" << s.health.restarts
     << ",\"wall_time_ms\":" << JsonDouble(s.health.wall_time_ms)
     << ",\"termination\":" << static_cast<int>(s.health.termination)
     << "}\n";
  os << "}\n";
}

StatusOr<ModelSnapshot> ParseJsonSnapshot(const std::string& text,
                                          const std::string& path) {
  JsonParser parser(text, path);
  DSPOT_ASSIGN_OR_RETURN(JsonValue root, parser.Parse());
  // Identity and version gate first: a random JSON file is
  // InvalidArgument, not DataLoss.
  if (root.kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument(path + ": not a dspot snapshot object");
  }
  auto fmt = root.object.find("format");
  if (fmt == root.object.end() ||
      fmt->second.kind != JsonValue::Kind::kString ||
      fmt->second.str != "dspot_snapshot") {
    return Status::InvalidArgument(
        path + ": missing \"format\": \"dspot_snapshot\" marker");
  }
  DSPOT_ASSIGN_OR_RETURN(uint64_t version, GetUint(root, "version", path));
  if (version != kSnapshotVersion) {
    return Status::InvalidArgument(
        path + ": unsupported snapshot version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kSnapshotVersion) +
        ")");
  }
  DSPOT_ASSIGN_OR_RETURN(uint64_t stored_crc,
                         GetUint(root, "payload_crc32", path));

  ModelSnapshot s;
  ModelParamSet& p = s.params;
  DSPOT_ASSIGN_OR_RETURN(p.num_keywords, GetUint(root, "num_keywords", path));
  DSPOT_ASSIGN_OR_RETURN(p.num_locations,
                         GetUint(root, "num_locations", path));
  DSPOT_ASSIGN_OR_RETURN(p.num_ticks, GetUint(root, "num_ticks", path));
  DSPOT_ASSIGN_OR_RETURN(const JsonValue* global,
                         GetField(root, "global", path));
  if (global->kind != JsonValue::Kind::kArray) {
    return FieldError(path, "'global' is not an array");
  }
  for (const JsonValue& gv : global->array) {
    KeywordGlobalParams g;
    DSPOT_ASSIGN_OR_RETURN(g.population, GetNumber(gv, "population", path));
    DSPOT_ASSIGN_OR_RETURN(g.beta, GetNumber(gv, "beta", path));
    DSPOT_ASSIGN_OR_RETURN(g.delta, GetNumber(gv, "delta", path));
    DSPOT_ASSIGN_OR_RETURN(g.gamma, GetNumber(gv, "gamma", path));
    DSPOT_ASSIGN_OR_RETURN(g.i0, GetNumber(gv, "i0", path));
    DSPOT_ASSIGN_OR_RETURN(g.growth_rate, GetNumber(gv, "growth_rate", path));
    DSPOT_ASSIGN_OR_RETURN(g.growth_start,
                           GetIndexOrNpos(gv, "growth_start", path));
    p.global.push_back(g);
  }
  DSPOT_ASSIGN_OR_RETURN(p.base_local,
                         GetJsonMatrix(root, "base_local", path));
  DSPOT_ASSIGN_OR_RETURN(p.growth_local,
                         GetJsonMatrix(root, "growth_local", path));
  DSPOT_ASSIGN_OR_RETURN(const JsonValue* shocks,
                         GetField(root, "shocks", path));
  if (shocks->kind != JsonValue::Kind::kArray) {
    return FieldError(path, "'shocks' is not an array");
  }
  for (const JsonValue& sv : shocks->array) {
    Shock shock;
    DSPOT_ASSIGN_OR_RETURN(shock.keyword, GetUint(sv, "keyword", path));
    DSPOT_ASSIGN_OR_RETURN(shock.period, GetUint(sv, "period", path));
    DSPOT_ASSIGN_OR_RETURN(shock.start, GetUint(sv, "start", path));
    DSPOT_ASSIGN_OR_RETURN(shock.width, GetUint(sv, "width", path));
    DSPOT_ASSIGN_OR_RETURN(shock.base_strength,
                           GetNumber(sv, "base_strength", path));
    DSPOT_ASSIGN_OR_RETURN(shock.global_strengths,
                           GetDoubleArray(sv, "global_strengths", path));
    DSPOT_ASSIGN_OR_RETURN(shock.local_strengths,
                           GetJsonMatrix(sv, "local_strengths", path));
    p.shocks.push_back(std::move(shock));
  }
  DSPOT_ASSIGN_OR_RETURN(s.keywords, GetStringArray(root, "keywords", path));
  DSPOT_ASSIGN_OR_RETURN(s.locations,
                         GetStringArray(root, "locations", path));
  DSPOT_ASSIGN_OR_RETURN(std::vector<double> scales,
                         GetDoubleArray(root, "scales", path));
  s.scales.resize(scales.size());
  for (size_t i = 0; i < scales.size(); ++i) {
    s.scales[i].factor = scales[i];
  }
  DSPOT_ASSIGN_OR_RETURN(s.global_rmse,
                         GetDoubleArray(root, "global_rmse", path));
  DSPOT_ASSIGN_OR_RETURN(s.total_cost_bits,
                         GetNumber(root, "total_cost_bits", path));
  DSPOT_ASSIGN_OR_RETURN(const JsonValue* health,
                         GetField(root, "health", path));
  DSPOT_ASSIGN_OR_RETURN(uint64_t iters, GetUint(*health, "iterations", path));
  DSPOT_ASSIGN_OR_RETURN(uint64_t restarts,
                         GetUint(*health, "restarts", path));
  s.health.iterations = static_cast<int>(iters);
  s.health.restarts = static_cast<int>(restarts);
  DSPOT_ASSIGN_OR_RETURN(s.health.wall_time_ms,
                         GetNumber(*health, "wall_time_ms", path));
  DSPOT_ASSIGN_OR_RETURN(uint64_t term, GetUint(*health, "termination", path));
  if (term > static_cast<uint64_t>(FitTermination::kCancelled)) {
    return FieldError(path,
                      "impossible termination value " + std::to_string(term));
  }
  s.health.termination = static_cast<FitTermination>(term);
  if (const std::string problem = SnapshotShapeProblem(s); !problem.empty()) {
    return FieldError(path, problem);
  }

  // The backends share one source of truth: re-encode what we parsed into
  // the canonical payload and hold it against the stored checksum. Any
  // drift — an edited value, a lost digit, a field the writer and reader
  // disagree on — fails loudly here instead of serving a wrong model.
  const std::vector<uint8_t> payload = EncodeSnapshotPayload(s);
  const uint32_t crc = Crc32(payload.data(), payload.size());
  if (crc != stored_crc) {
    return Status::DataLoss(
        path + ": payload checksum mismatch (stored " +
        std::to_string(stored_crc) + ", canonical re-encode " +
        std::to_string(crc) + ") — the snapshot was modified or corrupted");
  }
  return s;
}

// ---------------------------------------------------------------------------
// File I/O
// ---------------------------------------------------------------------------

StatusOr<ModelSnapshot> LoadBinarySnapshot(const std::string& bytes,
                                           const std::string& path) {
  const uint8_t* data = reinterpret_cast<const uint8_t*>(bytes.data());
  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(path +
                                   ": not a dspot snapshot (bad magic)");
  }
  ByteReader r(data + sizeof(kMagic), bytes.size() - sizeof(kMagic),
               path);
  DSPOT_ASSIGN_OR_RETURN(uint32_t version, r.GetU32());
  if (version != kSnapshotVersion) {
    return Status::InvalidArgument(
        path + ": unsupported snapshot version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kSnapshotVersion) +
        ")");
  }
  DSPOT_ASSIGN_OR_RETURN(
      uint64_t payload_len,
      r.GetCount(r.remaining() > 4 ? r.remaining() - 4 : 0,
                 "payload length"));
  const size_t payload_off = sizeof(kMagic) + r.offset();
  const uint8_t* payload = data + payload_off;
  ByteReader trailer(payload + payload_len,
                     bytes.size() - payload_off - payload_len, path);
  DSPOT_ASSIGN_OR_RETURN(uint32_t stored_crc, trailer.GetU32());
  const uint32_t crc = Crc32(payload, payload_len);
  if (crc != stored_crc) {
    return Status::DataLoss(path + ": offset " + std::to_string(payload_off) +
                            ": payload checksum mismatch (stored " +
                            std::to_string(stored_crc) + ", computed " +
                            std::to_string(crc) + ")");
  }
  ByteReader payload_reader(payload, payload_len, path);
  return DecodeSnapshotPayload(&payload_reader);
}

}  // namespace

ModelSnapshot MakeSnapshot(const DspotResult& result,
                           const ActivityTensor& tensor,
                           const std::vector<ScaleInfo>& scales) {
  ModelSnapshot s;
  s.params = result.params;
  s.keywords = tensor.keywords();
  s.locations = tensor.locations();
  s.scales = scales;
  s.global_rmse = result.global_rmse;
  s.total_cost_bits = result.total_cost_bits;
  s.health = result.health;
  return s;
}

std::vector<uint8_t> EncodeSnapshotFile(const ModelSnapshot& snapshot) {
  const std::vector<uint8_t> payload = EncodeSnapshotPayload(snapshot);
  ByteWriter file;
  file.PutBytes(kMagic, sizeof(kMagic));
  file.PutU32(kSnapshotVersion);
  file.PutU64(payload.size());
  file.PutBytes(payload.data(), payload.size());
  file.PutU32(Crc32(payload.data(), payload.size()));
  return std::move(file).TakeBytes();
}

Status SaveSnapshot(const ModelSnapshot& snapshot, const std::string& path,
                    SnapshotFormat format) {
  DSPOT_SPAN("snapshot.save");
  // Assemble the full file in memory, then replace the destination
  // atomically: a crashed or failed save leaves any previous snapshot
  // exactly as it was, never a truncated hybrid.
  if (format == SnapshotFormat::kBinary) {
    const std::vector<uint8_t> file = EncodeSnapshotFile(snapshot);
    DSPOT_RETURN_IF_ERROR(AtomicWriteFile(path, file.data(), file.size()));
    DSPOT_COUNT("snapshot.saves", 1);
    DSPOT_OBSERVE("snapshot.save_bytes", static_cast<double>(file.size()));
    return Status::Ok();
  }
  const std::vector<uint8_t> payload = EncodeSnapshotPayload(snapshot);
  const uint32_t crc = Crc32(payload.data(), payload.size());
  {
    std::ostringstream os;
    WriteJsonSnapshot(os, snapshot, crc);
    const std::string text = os.str();
    DSPOT_RETURN_IF_ERROR(AtomicWriteFile(path, text.data(), text.size()));
  }
  DSPOT_COUNT("snapshot.saves", 1);
  DSPOT_OBSERVE("snapshot.save_bytes",
                static_cast<double>(payload.size()));
  return Status::Ok();
}

StatusOr<ModelSnapshot> LoadSnapshot(const std::string& path) {
  DSPOT_SPAN("snapshot.load");
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  if (!is && !is.eof()) {
    return Status::IoError("read failed: " + path);
  }
  const std::string bytes = buf.str();
  if (bytes.empty()) {
    return Status::InvalidArgument(path + ": empty file");
  }
  // Sniff: binary snapshots start with the magic; the JSON backend (like
  // any JSON document we emit) starts with '{'.
  StatusOr<ModelSnapshot> loaded = Status::InvalidArgument(
      path + ": not a dspot snapshot (unrecognized leading bytes)");
  if (bytes.size() >= sizeof(kMagic) &&
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) == 0) {
    loaded = LoadBinarySnapshot(bytes, path);
  } else if (bytes[0] == '{') {
    loaded = ParseJsonSnapshot(bytes, path);
  }
  if (loaded.ok()) {
    DSPOT_COUNT("snapshot.loads", 1);
  } else {
    DSPOT_COUNT("snapshot.load_errors", 1);
  }
  return loaded;
}

}  // namespace dspot
