#include "serve/model_registry.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <functional>
#include <utility>

#include "durable/durable_file.h"
#include "obs/metrics.h"
#include "snapshot/snapshot.h"
#include "timeseries/series.h"

namespace dspot {

namespace {

/// Spill filenames must be filesystem-safe for arbitrary keyword labels:
/// lowercase alnum, '_', '-' pass through; every other byte — including
/// uppercase letters — becomes %XX (uppercase hex). The mapping is
/// injective even after case folding, so distinct keywords never collide
/// on one file on case-insensitive filesystems (macOS/Windows defaults),
/// where letting 'Foo' and 'foo' pass through verbatim would make one
/// keyword's Put clobber the other's spill.
std::string SanitizeKeyword(std::string_view keyword) {
  std::string out;
  out.reserve(keyword.size());
  for (unsigned char c : keyword) {
    const bool safe = (c >= 'a' && c <= 'z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (safe) {
      out.push_back(static_cast<char>(c));
    } else {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X", c);
      out.append(buf);
    }
  }
  return out;
}

}  // namespace

uint64_t ServedModel::ResidentBytes() const {
  uint64_t bytes = sizeof(ServedModel) + keyword.capacity();
  for (const Shock& s : shocks) {
    bytes += sizeof(Shock) + s.global_strengths.capacity() * sizeof(double) +
             s.local_strengths.rows() * s.local_strengths.cols() *
                 sizeof(double);
  }
  return bytes;
}

ModelSnapshot ServedModel::ToSnapshot() const {
  ModelSnapshot s;
  s.params.global = {params};
  s.params.shocks = shocks;
  for (Shock& shock : s.params.shocks) {
    shock.keyword = 0;
  }
  s.params.num_keywords = 1;
  s.params.num_locations = 0;
  s.params.num_ticks = static_cast<size_t>(fit_ticks);
  s.keywords = {keyword};
  s.global_rmse = {rmse};
  s.total_cost_bits = cost_bits;
  s.health = health;
  return s;
}

StatusOr<ServedModel> ServedModel::FromSnapshot(const ModelSnapshot& snapshot,
                                                std::string_view keyword,
                                                const std::string& context) {
  // Locate the keyword by label. The snapshot's keyword ids are private to
  // the snapshot: a spill file written under an older interned table (or a
  // multi-keyword batch snapshot, or a hostile file) stores the SAME
  // keyword under a DIFFERENT index, so trusting a stored id would serve
  // some other keyword's parameters without any error.
  const auto it =
      std::find(snapshot.keywords.begin(), snapshot.keywords.end(), keyword);
  if (it == snapshot.keywords.end()) {
    return Status::NotFound(context + ": snapshot does not contain keyword '" +
                            std::string(keyword) + "'");
  }
  const size_t idx =
      static_cast<size_t>(it - snapshot.keywords.begin());
  const ModelParamSet& p = snapshot.params;
  if (idx >= p.global.size()) {
    return Status::InvalidArgument(
        context + ": keyword '" + std::string(keyword) + "' has label index " +
        std::to_string(idx) + " but the snapshot carries only " +
        std::to_string(p.global.size()) + " parameter rows");
  }
  if (idx >= snapshot.global_rmse.size()) {
    return Status::InvalidArgument(
        context + ": keyword '" + std::string(keyword) +
        "' has no rmse entry (index " + std::to_string(idx) + ", " +
        std::to_string(snapshot.global_rmse.size()) + " entries)");
  }
  ServedModel m;
  m.keyword = std::string(keyword);
  m.params = p.global[idx];
  for (const Shock& s : p.shocks) {
    if (s.keyword == idx) {
      Shock local = s;
      local.keyword = 0;  // single-keyword coordinates
      m.shocks.push_back(std::move(local));
    }
  }
  m.fit_ticks = p.num_ticks;
  m.rmse = snapshot.global_rmse[idx];
  m.cost_bits = snapshot.total_cost_bits;
  m.health = snapshot.health;
  return m;
}

GlobalSequenceFit ServedModel::ToWarmStart() const {
  GlobalSequenceFit fit;
  fit.params = params;
  fit.shocks = shocks;
  // RefitGlobalSequence only reads the estimate's LENGTH (the fitted prefix
  // size); the values are re-derived by simulation.
  fit.estimate = Series(static_cast<size_t>(fit_ticks));
  fit.cost_bits = cost_bits;
  fit.rmse = rmse;
  fit.health = health;
  return fit;
}

ModelRegistry::ModelRegistry(const RegistryOptions& options)
    : options_(options),
      shards_(std::max<size_t>(size_t{1}, options.num_shards)) {
  options_.num_shards = shards_.size();
  shard_budget_ = options_.max_resident_bytes / shards_.size();
}

ModelRegistry::Shard& ModelRegistry::ShardFor(std::string_view keyword) {
  return shards_[std::hash<std::string_view>{}(keyword) % shards_.size()];
}

const ModelRegistry::Shard& ModelRegistry::ShardFor(
    std::string_view keyword) const {
  return shards_[std::hash<std::string_view>{}(keyword) % shards_.size()];
}

std::string ModelRegistry::SpillPath(std::string_view keyword) const {
  if (options_.spill_dir.empty()) {
    return std::string();
  }
  return options_.spill_dir + "/" + SanitizeKeyword(keyword) + ".dspotsnp";
}

Status ModelRegistry::Spill(const ServedModel& model) {
  const std::string path = SpillPath(model.keyword);
  const std::vector<uint8_t> bytes = EncodeSnapshotFile(model.ToSnapshot());
  if (options_.durable_spill) {
    DSPOT_RETURN_IF_ERROR(AtomicWriteFile(path, bytes.data(), bytes.size()));
  } else {
    // A spill file is a rebuildable cache entry, so no fsync — but the
    // write still goes through a temp file + rename (atomic, cheap): a
    // truncating in-place write would let a crash mid-write, or a reader
    // in another process, observe a torn file that reloads as DataLoss —
    // which kRefit treats as a hard error, not a cold-start case.
    const std::string tmp = path + ".tmp";
    {
      std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
      if (!os) {
        return Status::IoError("cannot open for writing: " + tmp);
      }
      os.write(reinterpret_cast<const char*>(bytes.data()),
               static_cast<std::streamsize>(bytes.size()));
      os.flush();
      if (!os) {
        std::remove(tmp.c_str());
        return Status::IoError("short write: " + tmp);
      }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::remove(tmp.c_str());
      return Status::IoError("cannot rename " + tmp + " -> " + path);
    }
  }
  DSPOT_COUNT("serve.registry.spills", 1);
  return Status::Ok();
}

void ModelRegistry::AdmitLocked(Shard& shard, ServedModel model) {
  const uint64_t bytes = model.ResidentBytes();
  auto it = shard.entries.find(model.keyword);
  if (it != shard.entries.end()) {
    shard.resident_bytes -= it->second.bytes;
    it->second.model = std::move(model);
    it->second.bytes = bytes;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru);
  } else {
    shard.lru.push_front(model.keyword);
    Entry entry;
    entry.model = std::move(model);
    entry.bytes = bytes;
    entry.lru = shard.lru.begin();
    shard.entries.emplace(shard.lru.front(), std::move(entry));
  }
  shard.resident_bytes += bytes;
  // Evict from the cold end until the shard fits its slice. The
  // just-admitted entry sits at the front and is never evicted (lru.size()
  // > 1 guard), so one oversized model degrades to a cache of one.
  while (shard.resident_bytes > shard_budget_ && shard.lru.size() > 1) {
    const std::string& victim = shard.lru.back();
    auto vit = shard.entries.find(victim);
    shard.resident_bytes -= vit->second.bytes;
    shard.entries.erase(vit);
    shard.lru.pop_back();
    ++shard.evictions;
    DSPOT_COUNT("serve.registry.evictions", 1);
  }
}

Status ModelRegistry::Put(const ServedModel& model) {
  Shard& shard = ShardFor(model.keyword);
  std::lock_guard<std::mutex> lock(shard.mu);
  // Write-through UNDER the shard lock: the snapshot hits the spill dir
  // before the entry is admitted (so an eviction at any later point can
  // always reload), and racing Puts of the same keyword leave the
  // resident entry and its spill file with the same winner — the
  // thread-safety contract. Get's reload path already does file I/O
  // under this lock, so the contention profile is unchanged.
  if (!options_.spill_dir.empty()) {
    DSPOT_RETURN_IF_ERROR(Spill(model));
    ++shard.spills;
  }
  AdmitLocked(shard, model);
  return Status::Ok();
}

StatusOr<ServedModel> ModelRegistry::Get(std::string_view keyword) {
  Shard& shard = ShardFor(keyword);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(std::string(keyword));
  if (it != shard.entries.end()) {
    ++shard.hits;
    DSPOT_COUNT("serve.registry.hits", 1);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru);
    return it->second.model;
  }
  ++shard.misses;
  DSPOT_COUNT("serve.registry.misses", 1);
  if (options_.spill_dir.empty()) {
    return Status::NotFound("keyword '" + std::string(keyword) +
                            "' is not in the registry");
  }
  const std::string path = SpillPath(keyword);
  StatusOr<ModelSnapshot> snapshot = LoadSnapshot(path);
  if (!snapshot.ok()) {
    if (snapshot.status().code() == StatusCode::kIoError) {
      // No spill file: the keyword was never Put (or its spill failed).
      return Status::NotFound("keyword '" + std::string(keyword) +
                              "' is not in the registry and has no spill "
                              "file (" +
                              snapshot.status().message() + ")");
    }
    // A corrupt or hostile spill file keeps its located DataLoss /
    // InvalidArgument diagnosis.
    return snapshot.status();
  }
  DSPOT_ASSIGN_OR_RETURN(ServedModel model,
                         ServedModel::FromSnapshot(*snapshot, keyword, path));
  ++shard.reloads;
  DSPOT_COUNT("serve.registry.reloads", 1);
  AdmitLocked(shard, std::move(model));
  return shard.entries.find(std::string(keyword))->second.model;
}

bool ModelRegistry::Resident(std::string_view keyword) const {
  const Shard& shard = ShardFor(keyword);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.entries.count(std::string(keyword)) != 0;
}

RegistryStats ModelRegistry::stats() const {
  RegistryStats stats;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.reloads += shard.reloads;
    stats.evictions += shard.evictions;
    stats.spills += shard.spills;
    stats.resident_bytes += shard.resident_bytes;
    stats.resident_models += shard.entries.size();
  }
  return stats;
}

}  // namespace dspot
