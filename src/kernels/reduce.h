#ifndef DSPOT_KERNELS_REDUCE_H_
#define DSPOT_KERNELS_REDUCE_H_

#include <cstddef>
#include <span>

namespace dspot {
namespace kernels {

/// SIMD reduction kernels. These follow the GOLDEN TOLERANCE policy from
/// dspot_simd.h: results are deterministic (fixed lane/accumulator
/// combination order, identical across runs and thread counts) but differ
/// from a scalar left fold by reordering rounding; tests pin them to the
/// scalar reference within simd::kReduceRelTol * n.

/// ISA the kernels translation unit was compiled for ("avx2", "sse2",
/// "neon", or "scalar") and its double lane count — surfaced so benches
/// and BENCH_*.json can record which path produced the numbers.
const char* SimdIsaName();
size_t SimdNumLanes();

/// Sum of v[i]^2 over the whole span.
double SumSquares(std::span<const double> v);

/// Elementwise residual out[t] = estimate[t] - data[t]. BIT-IDENTICAL
/// policy (pure lane-wise subtraction, no reduction).
void ResidualInto(std::span<const double> estimate,
                  std::span<const double> data, std::span<double> out);

/// First pass of the Gaussian coding cost over the residual stream
/// r_t = actual[t] - estimate[t] (t < min(sizes)): the count and sum of
/// the finite residuals. A residual is skipped exactly when r_t is
/// non-finite — equivalent to the scalar rule "IsMissing(actual) ||
/// IsMissing(estimate) || !isfinite(r)" because a NaN operand makes r NaN
/// and an infinite operand makes r non-finite (finite - finite can only
/// overflow to inf, which the scalar rule also skips).
struct MaskedMoments {
  double count = 0.0;
  double sum = 0.0;
};
MaskedMoments MaskedResidualMoments(std::span<const double> actual,
                                    std::span<const double> estimate);

/// Second pass: sum of (r_t - mean)^2 over the same finite-residual mask.
double MaskedResidualSumSqDev(std::span<const double> actual,
                              std::span<const double> estimate, double mean);

/// Same two passes for a pre-materialized residual vector (the other
/// GaussianCodingCost overload). Shares the accumulation structure with
/// the two-span forms above, so both overloads remain bit-identical to
/// each other.
MaskedMoments MaskedMomentsOf(std::span<const double> residuals);
double MaskedSumSqDevOf(std::span<const double> residuals, double mean);

}  // namespace kernels
}  // namespace dspot

#endif  // DSPOT_KERNELS_REDUCE_H_
