#include "obs/export.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <string>

namespace dspot {

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// JSON has no NaN/Infinity literals; degenerate stats export as 0.
double JsonSafe(double v) { return std::isfinite(v) ? v : 0.0; }

void AppendF(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  *out += buf;
}

}  // namespace

std::string RenderMetricsTable(const ObsSnapshot& snapshot) {
  std::string out;
  out += "metric                                    kind       count"
         "        total         mean          min          max\n";
  for (const MetricSnapshot& m : snapshot.metrics) {
    switch (m.kind) {
      case MetricKind::kCounter:
        AppendF(&out, "%-40s  counter  %8llu\n", m.name.c_str(),
                static_cast<unsigned long long>(m.count));
        break;
      case MetricKind::kGauge:
        AppendF(&out, "%-40s  gauge           -  %12.3f\n", m.name.c_str(),
                m.value);
        break;
      case MetricKind::kHistogram: {
        const double mean =
            m.count > 0 ? m.sum / static_cast<double>(m.count) : 0.0;
        AppendF(&out,
                "%-40s  histo    %8llu  %12.3f %12.3f %12.3f %12.3f\n",
                m.name.c_str(), static_cast<unsigned long long>(m.count),
                m.sum, mean, m.min, m.max);
        break;
      }
    }
  }
  return out;
}

std::string MetricsToJson(const ObsSnapshot& snapshot) {
  std::string counters, gauges, histograms;
  for (const MetricSnapshot& m : snapshot.metrics) {
    const std::string name = JsonEscape(m.name);
    switch (m.kind) {
      case MetricKind::kCounter:
        if (!counters.empty()) counters += ",";
        AppendF(&counters, "{\"name\":\"%s\",\"value\":%llu}", name.c_str(),
                static_cast<unsigned long long>(m.count));
        break;
      case MetricKind::kGauge:
        if (!gauges.empty()) gauges += ",";
        AppendF(&gauges, "{\"name\":\"%s\",\"value\":%.17g}", name.c_str(),
                JsonSafe(m.value));
        break;
      case MetricKind::kHistogram: {
        if (!histograms.empty()) histograms += ",";
        AppendF(&histograms,
                "{\"name\":\"%s\",\"count\":%llu,\"sum\":%.17g,"
                "\"min\":%.17g,\"max\":%.17g,\"buckets\":[",
                name.c_str(), static_cast<unsigned long long>(m.count),
                JsonSafe(m.sum), JsonSafe(m.min), JsonSafe(m.max));
        for (size_t b = 0; b < m.buckets.size(); ++b) {
          AppendF(&histograms, "%s%llu", b == 0 ? "" : ",",
                  static_cast<unsigned long long>(m.buckets[b]));
        }
        histograms += "]}";
        break;
      }
    }
  }
  return "{\"counters\":[" + counters + "],\"gauges\":[" + gauges +
         "],\"histograms\":[" + histograms + "]}";
}

std::string TraceEventsToJson(const std::vector<TraceEvent>& events) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out += ",";
    first = false;
    AppendF(&out,
            "{\"name\":\"%s\",\"cat\":\"dspot\",\"ph\":\"X\",\"pid\":1,"
            "\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f}",
            JsonEscape(event.name != nullptr ? event.name : "").c_str(),
            event.tid, JsonSafe(event.ts_us), JsonSafe(event.dur_us));
  }
  out += "]}";
  return out;
}

namespace {

Status WriteStringToFile(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open for writing: " + path);
  }
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const int close_rc = std::fclose(f);
  if (written != body.size() || close_rc != 0) {
    return Status::IoError("short write: " + path);
  }
  return Status::Ok();
}

}  // namespace

Status WriteMetricsJson(const std::string& path) {
  return WriteStringToFile(
      path, MetricsToJson(ObsRegistry::Instance().Snapshot()) + "\n");
}

Status WriteChromeTrace(const std::string& path) {
  return WriteStringToFile(
      path, TraceEventsToJson(ObsRegistry::Instance().TraceEvents()) + "\n");
}

}  // namespace dspot
