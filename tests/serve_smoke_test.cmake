# dspot_serve CLI smoke, run via `cmake -P` from a ctest entry. Exercises
# the strict flag parsing (garbage must fail with a located usage error,
# not mis-parse to zero) and the full stdin/stdout protocol path: generate
# a deterministic request stream, serve it at 1 and at 8 worker threads,
# and require the reply bytes to be identical — the CLI-level face of the
# engine's determinism contract.
#
# Expects:
#   -DDSPOT_SERVE=<path to the dspot_serve binary>
#   -DWORK_DIR=<scratch directory>

if(NOT DEFINED DSPOT_SERVE OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR
          "serve_smoke_test.cmake needs -DDSPOT_SERVE and -DWORK_DIR")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(requests_bin "${WORK_DIR}/requests.bin")

# A rejected invocation must exit non-zero AND say why on stderr; an
# accidental exit-1 from a different failure would make this test pass
# vacuously without the expected_error check.
function(expect_usage_error expected_error)
  set(cmd ${ARGN})
  execute_process(COMMAND ${cmd}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(rc EQUAL 0)
    message(FATAL_ERROR "expected failure for: ${cmd}\n${out}")
  endif()
  if(NOT err MATCHES "${expected_error}")
    message(FATAL_ERROR
            "expected stderr matching '${expected_error}' for: ${cmd}\n"
            "got:\n${err}")
  endif()
endfunction()

# --- Strict flag rejections -------------------------------------------------
expect_usage_error("dspot_serve: --queue-cap: not an integer: '10x'"
                   "${DSPOT_SERVE}" --queue-cap 10x)
expect_usage_error("dspot_serve: --queue-cap: 0 is out of range"
                   "${DSPOT_SERVE}" --queue-cap=0)
expect_usage_error("dspot_serve: --deadline-ms: not a number: 'fast'"
                   "${DSPOT_SERVE}" --deadline-ms fast)
expect_usage_error("dspot_serve: --deadline-ms: -1 must be >= 0"
                   "${DSPOT_SERVE}" --deadline-ms=-1)
expect_usage_error("dspot_serve: --max-resident-bytes: not a byte size: '64Q'"
                   "${DSPOT_SERVE}" --max-resident-bytes 64Q)
expect_usage_error("dspot_serve: --max-resident-bytes: not a byte size: '-1'"
                   "${DSPOT_SERVE}" --max-resident-bytes=-1)
expect_usage_error("dspot_serve: --threads: requires an integer value"
                   "${DSPOT_SERVE}" --threads)
expect_usage_error("dspot_serve: unknown flag '--no-such-flag'"
                   "${DSPOT_SERVE}" --no-such-flag 1)
expect_usage_error("dspot_serve: unexpected argument 'serve'"
                   "${DSPOT_SERVE}" serve)

# --- Request generator ------------------------------------------------------
execute_process(COMMAND "${DSPOT_SERVE}" --gen-requests 40 --gen-keywords 4
                        --gen-ticks 48
                OUTPUT_FILE "${requests_bin}"
                ERROR_VARIABLE err
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "generator failed: ${err}")
endif()
file(SIZE "${requests_bin}" requests_size)
if(requests_size EQUAL 0)
  message(FATAL_ERROR "generator produced an empty ${requests_bin}")
endif()

# --- Protocol round trip: replies identical at 1 and 8 threads --------------
foreach(threads 1 8)
  execute_process(COMMAND "${DSPOT_SERVE}" --threads ${threads}
                          --spill-dir "${WORK_DIR}/spill_${threads}"
                  INPUT_FILE "${requests_bin}"
                  OUTPUT_FILE "${WORK_DIR}/replies_${threads}.bin"
                  ERROR_VARIABLE err
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "serve at ${threads} threads failed: ${err}")
  endif()
endforeach()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        "${WORK_DIR}/replies_1.bin"
                        "${WORK_DIR}/replies_8.bin"
                RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR
          "replies diverge between 1 and 8 worker threads — the serve "
          "determinism contract is broken at the CLI level")
endif()

# --- Reply decoder ----------------------------------------------------------
execute_process(COMMAND "${DSPOT_SERVE}" --print-replies
                INPUT_FILE "${WORK_DIR}/replies_1.bin"
                OUTPUT_VARIABLE decoded
                ERROR_VARIABLE err
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--print-replies failed: ${err}")
endif()
foreach(needle "reply id=0 " "status=OK" "total replies: 40")
  if(NOT decoded MATCHES "${needle}")
    message(FATAL_ERROR
            "--print-replies output missing '${needle}':\n${decoded}")
  endif()
endforeach()

# Feeding the decoder a REQUEST stream (wrong frame type) must surface
# DataLoss, not decode garbage.
execute_process(COMMAND "${DSPOT_SERVE}" --print-replies
                INPUT_FILE "${requests_bin}"
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err
                RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR "--print-replies accepted a request stream:\n${out}")
endif()
if(NOT err MATCHES "DataLoss")
  message(FATAL_ERROR
          "expected DataLoss decoding a request stream, got:\n${err}")
endif()

message(STATUS "serve smoke OK")
