#include "stream/stream_engine.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <utility>

#include "core/simulate.h"
#include "obs/metrics.h"
#include "parallel/parallel_for.h"
#include "timeseries/series.h"

namespace dspot {

namespace {

/// Wraps one keyword's streaming model as a single-keyword ModelParamSet so
/// the shared simulation kernel (and its ScheduleCache) can extrapolate it.
/// All coordinates are fit-local: tick 0 is the keyword's fit_window_start.
void BuildSingleKeywordSet(const KeywordGlobalParams& params,
                           const std::vector<Shock>& shocks, size_t n_ticks,
                           ModelParamSet* set) {
  set->global.assign(1, params);
  set->shocks = shocks;
  for (Shock& shock : set->shocks) {
    shock.keyword = 0;
  }
  set->num_keywords = 1;
  set->num_locations = 1;
  set->num_ticks = n_ticks;
}

/// Translates a fit-local shock inventory forward by `shift` ticks (the
/// ring evicted that many ticks since the fit), dropping what fell off the
/// window. One-shots keep only their still-visible tail; cyclic shocks drop
/// fully evicted occurrences (a boundary-straddling occurrence is dropped
/// whole — the refit re-estimates strengths anyway) and keep their phase.
/// Shocks with no occurrence left inside `window_len` ticks vanish; if they
/// matter, re-detection will find them again.
std::vector<Shock> RebaseShocks(const std::vector<Shock>& shocks, size_t shift,
                                size_t window_len) {
  std::vector<Shock> rebased;
  rebased.reserve(shocks.size());
  for (const Shock& shock : shocks) {
    Shock moved = shock;
    if (!shock.IsCyclic()) {
      const size_t end = shock.start + shock.width;
      if (end <= shift) continue;  // fully evicted
      if (shock.start >= shift) {
        moved.start = shock.start - shift;
      } else {
        moved.start = 0;
        moved.width = end - shift;
      }
    } else {
      // First occurrence whose start survives the shift.
      const size_t m0 =
          shift <= shock.start
              ? 0
              : (shift - shock.start + shock.period - 1) / shock.period;
      moved.start = shock.start + m0 * shock.period - shift;
      if (m0 > 0 && m0 <= moved.global_strengths.size()) {
        moved.global_strengths.erase(moved.global_strengths.begin(),
                                     moved.global_strengths.begin() +
                                         static_cast<ptrdiff_t>(m0));
      } else if (m0 > moved.global_strengths.size()) {
        moved.global_strengths.clear();
      }
    }
    if (moved.start >= window_len) continue;  // nothing left in the window
    rebased.push_back(std::move(moved));
  }
  return rebased;
}

}  // namespace

StreamEngine::StreamEngine(const StreamOptions& options) : options_(options) {
  // Normalize the knobs instead of failing construction: the floors are
  // contracts of the layers underneath (the fit layer needs 16
  // observations; a ring must hold at least one fit window).
  options_.ticks_resolution = std::max<int64_t>(options_.ticks_resolution, 1);
  options_.min_fit_ticks = std::max<size_t>(options_.min_fit_ticks, 16);
  options_.ring_capacity =
      std::max(options_.ring_capacity, options_.min_fit_ticks);
  options_.refit_interval = std::max<size_t>(options_.refit_interval, 1);
  options_.forecast_horizon = std::max<size_t>(options_.forecast_horizon, 1);
  options_.max_keywords = std::max<size_t>(options_.max_keywords, 1);
}

StreamEngine::~StreamEngine() = default;

StatusOr<uint32_t> StreamEngine::EnsureKeyword(std::string_view keyword) {
  if (keyword.empty()) {
    return Status::InvalidArgument("StreamEngine: keyword must be non-empty");
  }
  const auto it = index_.find(keyword);
  if (it != index_.end()) {
    return it->second;
  }
  if (keywords_.size() >= options_.max_keywords) {
    ++rejected_;
    DSPOT_COUNT("stream.rejected", 1);
    return Status::InvalidArgument(
        "StreamEngine: keyword '" + std::string(keyword) +
        "' would exceed max_keywords = " +
        std::to_string(options_.max_keywords));
  }
  const uint32_t id = static_cast<uint32_t>(keywords_.size());
  keywords_.emplace_back();
  keywords_.back().name = std::string(keyword);
  index_.emplace(keywords_.back().name, id);
  return id;
}

size_t StreamEngine::KeywordIndex(std::string_view keyword) const {
  const auto it = index_.find(keyword);
  return it == index_.end() ? kNpos : it->second;
}

const std::string& StreamEngine::KeywordName(uint32_t keyword) const {
  return keywords_[keyword].name;
}

Status StreamEngine::Append(std::string_view keyword, std::string_view location,
                            int64_t timestamp, double count) {
  // The stream models the paper's global level: every location's activity
  // folds into the keyword's global sequence (see the header).
  (void)location;
  DSPOT_ASSIGN_OR_RETURN(const uint32_t id, EnsureKeyword(keyword));
  return AppendById(id, timestamp, count);
}

Status StreamEngine::AppendById(uint32_t keyword, int64_t timestamp,
                                double count) {
  if (keyword >= keywords_.size()) {
    return Status::InvalidArgument(
        "StreamEngine::Append: keyword index " + std::to_string(keyword) +
        " out of range (" + std::to_string(keywords_.size()) + " interned)");
  }
  KeywordState& ks = keywords_[keyword];
  if (!std::isfinite(count) || count < 0.0) {
    ++rejected_;
    DSPOT_COUNT("stream.rejected", 1);
    return Status::InvalidArgument(
        "StreamEngine::Append: keyword '" + ks.name + "': count " +
        std::to_string(count) + " must be finite and non-negative");
  }
  if (timestamp < options_.origin) {
    ++rejected_;
    DSPOT_COUNT("stream.rejected", 1);
    return Status::InvalidArgument(
        "StreamEngine::Append: keyword '" + ks.name + "': timestamp " +
        std::to_string(timestamp) + " precedes the stream origin " +
        std::to_string(options_.origin));
  }
  if (ks.has_appends && timestamp < ks.last_timestamp) {
    ++rejected_;
    DSPOT_COUNT("stream.rejected", 1);
    return Status::InvalidArgument(
        "StreamEngine::Append: keyword '" + ks.name + "': timestamp " +
        std::to_string(timestamp) + " is out of order (latest accepted " +
        std::to_string(ks.last_timestamp) +
        ") — per-keyword timestamps must be non-decreasing");
  }
  const int64_t tick = (timestamp - options_.origin) / options_.ticks_resolution;
  DSPOT_RETURN_IF_ERROR(AppendTick(&ks, tick, count));
  ks.last_timestamp = timestamp;
  ks.has_appends = true;
  if (!ks.dirty) {
    ks.dirty = true;
    dirty_.push_back(keyword);
  }
  ++appends_;
  DSPOT_COUNT("stream.appends", 1);
  return Status::Ok();
}

Status StreamEngine::AppendTick(KeywordState* ks, int64_t tick, double count) {
  const size_t cap = options_.ring_capacity;
  if (!ks->has_appends) {
    ks->window_start = tick;
    ks->head = 0;
    ks->len = 0;
  }
  if (tick < ks->window_start) {
    // Unreachable through the public API (timestamps are monotone and
    // eviction only ever chases the newest tick), kept as a tripwire.
    return Status::Internal("StreamEngine: tick below the retained window");
  }
  int64_t end = ks->window_start + static_cast<int64_t>(ks->len);
  if (tick >= end) {
    const int64_t new_end = tick + 1;
    int64_t new_start = new_end - static_cast<int64_t>(cap);
    if (new_start < ks->window_start) {
      new_start = ks->window_start;
    }
    if (new_start >= end) {
      // The gap swallowed the whole old window; restart compactly.
      evicted_ticks_ += ks->len;
      DSPOT_COUNT("stream.evicted_ticks", ks->len);
      ks->window_start = new_start;
      ks->head = 0;
      ks->len = 0;
    } else if (new_start > ks->window_start) {
      const size_t evict = static_cast<size_t>(new_start - ks->window_start);
      evicted_ticks_ += evict;
      DSPOT_COUNT("stream.evicted_ticks", evict);
      ks->head = (ks->head + evict) % ks->ring.size();
      ks->window_start = new_start;
      ks->len -= evict;
    }
    const size_t needed = static_cast<size_t>(new_end - ks->window_start);
    if (ks->ring.size() < needed) {
      // Geometric growth from 8 slots up to the capacity cap, linearizing
      // the live window so slot arithmetic stays uniform.
      size_t size = ks->ring.empty() ? 8 : ks->ring.size();
      while (size < needed) {
        size *= 2;
      }
      size = std::min(size, std::max(cap, needed));
      std::vector<double> fresh(size, 0.0);
      for (size_t i = 0; i < ks->len; ++i) {
        fresh[i] = ks->ring[(ks->head + i) % ks->ring.size()];
      }
      AddBufferBytes(static_cast<int64_t>((size - ks->ring.size()) *
                                          sizeof(double)));
      ks->ring.swap(fresh);
      ks->head = 0;
    }
    // Ticks the stream skipped are genuinely zero activity, not missing:
    // an arrival-ordered stream with nothing to report simply says nothing.
    while (ks->window_start + static_cast<int64_t>(ks->len) < new_end) {
      ks->ring[(ks->head + ks->len) % ks->ring.size()] = 0.0;
      ++ks->len;
    }
  }
  const size_t offset = static_cast<size_t>(tick - ks->window_start);
  ks->ring[(ks->head + offset) % ks->ring.size()] += count;
  return Status::Ok();
}

void StreamEngine::CopyWindow(const KeywordState& ks,
                              std::vector<double>* out) const {
  out->resize(ks.len);
  for (size_t i = 0; i < ks.len; ++i) {
    (*out)[i] = ks.ring[(ks.head + i) % ks.ring.size()];
  }
}

StreamEngine::Action StreamEngine::Triage(KeywordState* ks) const {
  if (ks->len < options_.min_fit_ticks) {
    return Action::kNone;  // still warming up — the O(1) quiet path
  }
  if (!ks->has_fit || ks->window_start < ks->fit_window_start) {
    return Action::kCold;
  }
  const size_t shift =
      static_cast<size_t>(ks->window_start - ks->fit_window_start);
  if (shift >= ks->fit_ticks) {
    return Action::kCold;  // the fitted range was fully evicted
  }
  const size_t fit_end = ks->fit_ticks;       // fit-local window coordinates:
  const size_t window_end = shift + ks->len;  // tick 0 = fit_window_start
  if (window_end <= fit_end) {
    return Action::kNone;  // no ticks beyond the fitted range
  }
  const size_t new_ticks = window_end - fit_end;
  const size_t burst_quorum = std::max<size_t>(options_.min_burst_ticks, 1);
  if (new_ticks >= burst_quorum) {
    // UpdateFit's residual-burst test, windowed: extrapolate the current
    // model over the appended ticks and compare against the RMS residual
    // of the still-retained explained range.
    ModelParamSet set;
    BuildSingleKeywordSet(ks->params, ks->shocks, window_end, &set);
    std::vector<double> estimate(window_end);
    SimulateGlobalInto(set, 0, &ks->cache, estimate);
    double sum_sq = 0.0;
    size_t explained = 0;
    for (size_t t = shift; t < fit_end; ++t) {
      const double actual = ks->ring[(ks->head + (t - shift)) % ks->ring.size()];
      const double r = actual - estimate[t];
      sum_sq += r * r;
      ++explained;
    }
    const double sigma =
        explained == 0
            ? 0.0
            : std::sqrt(sum_sq / static_cast<double>(explained));
    if (sigma <= 0.0) {
      // A degenerate noise floor cannot calibrate the z-score (same
      // fallback as UpdateFit): re-detect.
      return Action::kEscalate;
    }
    size_t bursting = 0;
    for (size_t t = fit_end; t < window_end; ++t) {
      const double actual = ks->ring[(ks->head + (t - shift)) % ks->ring.size()];
      if (std::fabs(actual - estimate[t]) > options_.burst_threshold * sigma) {
        ++bursting;
      }
    }
    if (bursting >= burst_quorum) {
      return Action::kEscalate;
    }
  }
  if (new_ticks >= options_.refit_interval) {
    return Action::kWarm;
  }
  return Action::kNone;
}

StatusOr<StreamFlushReport> StreamEngine::Flush() {
  DSPOT_SPAN("stream.flush");
  ++flushes_;
  DSPOT_COUNT("stream.flushes", 1);

  GuardContext guard;
  guard.deadline = options_.flush_budget_ms > 0.0
                       ? Deadline::AfterMillis(options_.flush_budget_ms)
                       : Deadline::Infinite();
  guard.cancel = options_.cancel;
  if (guard.cancel.cancelled()) {
    return Status::Cancelled("StreamEngine::Flush: cancelled");
  }

  // Claim the dirty set in ascending keyword order — append order depends
  // on arrival interleaving, index order is canonical.
  std::vector<uint32_t> dirty;
  dirty.swap(dirty_);
  std::sort(dirty.begin(), dirty.end());
  for (const uint32_t i : dirty) {
    keywords_[i].dirty = false;
  }
  StreamFlushReport report;
  report.keywords_triaged = dirty.size();

  ParallelOptions popts;
  popts.num_threads = options_.num_threads;
  popts.cancel = guard.cancel;

  // Phase 1: triage verdicts land in pre-assigned slots (read-only on the
  // models, per-keyword scratch) — deterministic at any thread count.
  std::vector<uint8_t> verdicts(dirty.size(), 0);
  ParallelFor(dirty.size(), popts, [&](size_t j) {
    verdicts[j] = static_cast<uint8_t>(Triage(&keywords_[dirty[j]]));
  });
  if (guard.cancel.cancelled()) {
    return Status::Cancelled("StreamEngine::Flush: cancelled");
  }

  struct Job {
    uint32_t keyword;
    Action action;
  };
  std::vector<Job> jobs;
  for (size_t j = 0; j < dirty.size(); ++j) {
    const Action action = static_cast<Action>(verdicts[j]);
    if (action != Action::kNone) {
      jobs.push_back(Job{dirty[j], action});
    }
  }

  GlobalFitOptions base_options = options_.fit;
  base_options.num_threads = 1;  // one keyword per pool slot already
  base_options.guard = guard;

  // Phase 2: the selected fits fan out over the pool, every result in its
  // job's slot. Fit failures stay in their slot (the old model survives);
  // a fired deadline lets in-flight fits return their best partial model.
  std::vector<StatusOr<GlobalSequenceFit>> fits =
      ParallelTryMap<GlobalSequenceFit>(
          jobs.size(), popts, [&](size_t j) -> StatusOr<GlobalSequenceFit> {
            KeywordState& ks = keywords_[jobs[j].keyword];
            std::vector<double> window;
            CopyWindow(ks, &window);
            const Series data(std::move(window));
            GlobalFitOptions fit_options = base_options;
            if (jobs[j].action == Action::kCold) {
              return FitGlobalSequence(data, 0, 1, fit_options);
            }
            // Warm start from the current model, rebased into the ring's
            // present window (the ring may have evicted ticks the model
            // was fit on).
            const size_t shift = static_cast<size_t>(ks.window_start -
                                                     ks.fit_window_start);
            GlobalSequenceFit previous;
            previous.params = ks.params;
            if (previous.params.has_growth()) {
              previous.params.growth_start =
                  previous.params.growth_start > shift
                      ? previous.params.growth_start - shift
                      : 0;
            }
            previous.shocks = RebaseShocks(ks.shocks, shift, ks.len);
            previous.estimate = Series(ks.fit_ticks - shift);
            if (jobs[j].action == Action::kWarm) {
              // Scheduled maintenance: pin the shock cap at the current
              // inventory so the refit re-optimizes strengths and base
              // parameters but proposes no new events.
              fit_options.max_shocks_per_keyword = previous.shocks.size();
            }
            return RefitGlobalSequence(data, 0, 1, previous, fit_options);
          });
  if (guard.cancel.cancelled()) {
    return Status::Cancelled("StreamEngine::Flush: cancelled");
  }

  // Phase 3: serial apply in job (= keyword) order.
  std::vector<double> scratch;
  for (size_t j = 0; j < jobs.size(); ++j) {
    StatusOr<GlobalSequenceFit>& fit = fits[j];
    if (!fit.ok()) {
      if (fit.status().code() == StatusCode::kCancelled) {
        return fit.status();
      }
      ++refit_errors_;
      ++report.refit_errors;
      DSPOT_COUNT("stream.refit_errors", 1);
      continue;
    }
    switch (jobs[j].action) {
      case Action::kCold:
        ++cold_fits_;
        ++report.cold_fits;
        DSPOT_COUNT("stream.cold_fits", 1);
        break;
      case Action::kWarm:
        ++warm_refits_;
        ++report.warm_refits;
        DSPOT_COUNT("stream.warm_refits", 1);
        break;
      case Action::kEscalate:
        ++escalations_;
        ++report.escalations;
        DSPOT_COUNT("stream.escalations", 1);
        break;
      case Action::kNone:
        break;
    }
    KeywordState& ks = keywords_[jobs[j].keyword];
    ks.has_fit = true;
    ks.params = fit->params;
    ks.shocks = std::move(fit->shocks);
    for (Shock& shock : ks.shocks) {
      shock.keyword = 0;
    }
    ks.fit_window_start = ks.window_start;
    ks.fit_ticks = ks.len;
    ks.fit_cost_bits = fit->cost_bits;
    ks.fit_rmse = fit->rmse;
    if (fit->health.termination == FitTermination::kDeadlineExceeded) {
      report.deadline_hit = true;
    }
    DSPOT_OBSERVE("stream.keyword_update_ms", fit->health.wall_time_ms);
    PublishForecast(&ks, &scratch);
  }

  DSPOT_GAUGE_SET("stream.keywords", static_cast<double>(keywords_.size()));
  DSPOT_GAUGE_SET("stream.buffer_bytes", static_cast<double>(buffer_bytes_));
  return report;
}

void StreamEngine::PublishForecast(KeywordState* ks,
                                   std::vector<double>* scratch) {
  const size_t horizon = options_.forecast_horizon;
  // The model was just refreshed, so fit-local coordinates and window
  // coordinates agree: simulate fit_ticks + horizon ticks and publish the
  // tail past the fitted range.
  const size_t total = ks->fit_ticks + horizon;
  scratch->resize(total);
  ModelParamSet set;
  BuildSingleKeywordSet(ks->params, ks->shocks, ks->fit_ticks, &set);
  SimulateGlobalInto(set, 0, &ks->cache, *scratch);
  const int64_t start_tick =
      ks->fit_window_start + static_cast<int64_t>(ks->fit_ticks);

  ForecastCell* cell = ks->forecast.load(std::memory_order_relaxed);
  if (cell == nullptr) {
    // First publication: fill the fresh cell before the pointer store, so
    // any reader that can see the cell sees a stable, complete forecast.
    cell = new ForecastCell(horizon);
    AddBufferBytes(static_cast<int64_t>(sizeof(ForecastCell) +
                                        horizon * sizeof(ForecastCell::Cell)));
    for (size_t k = 0; k < horizon; ++k) {
      cell->values[k].v.store((*scratch)[ks->fit_ticks + k],
                              std::memory_order_relaxed);
    }
    cell->start_tick.store(start_tick, std::memory_order_relaxed);
    ks->forecast.store(cell, std::memory_order_release);
    return;
  }
  // Seqlock writer (Boehm's fence recipe): odd version opens the critical
  // section, the release fence orders it before the value stores, the
  // closing release store republishes an even version.
  const uint64_t v = cell->version.load(std::memory_order_relaxed);
  cell->version.store(v + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  for (size_t k = 0; k < horizon; ++k) {
    cell->values[k].v.store((*scratch)[ks->fit_ticks + k],
                            std::memory_order_relaxed);
  }
  cell->start_tick.store(start_tick, std::memory_order_relaxed);
  cell->version.store(v + 2, std::memory_order_release);
}

Status StreamEngine::ForecastInto(size_t keyword, std::span<double> out,
                                  int64_t* start_tick) const {
  if (keyword >= keywords_.size()) {
    return Status::InvalidArgument(
        "StreamEngine::Forecast: keyword index " + std::to_string(keyword) +
        " out of range (" + std::to_string(keywords_.size()) + " interned)");
  }
  if (out.size() != options_.forecast_horizon) {
    return Status::InvalidArgument(
        "StreamEngine::Forecast: out spans " + std::to_string(out.size()) +
        " values but forecast_horizon is " +
        std::to_string(options_.forecast_horizon));
  }
  const KeywordState& ks = keywords_[keyword];
  const ForecastCell* cell = ks.forecast.load(std::memory_order_acquire);
  if (cell == nullptr) {
    return Status::NotFound("StreamEngine::Forecast: keyword '" + ks.name +
                            "' has no published forecast yet (no fit)");
  }
  // Seqlock reader: retry while a publication is in flight. The writer
  // holds the lock only for O(horizon) stores, so the retry loop is short.
  for (;;) {
    const uint64_t v1 = cell->version.load(std::memory_order_acquire);
    if ((v1 & 1) != 0) {
      continue;
    }
    for (size_t k = 0; k < out.size(); ++k) {
      out[k] = cell->values[k].v.load(std::memory_order_relaxed);
    }
    const int64_t start = cell->start_tick.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (cell->version.load(std::memory_order_relaxed) == v1) {
      if (start_tick != nullptr) {
        *start_tick = start;
      }
      return Status::Ok();
    }
  }
}

StatusOr<StreamForecast> StreamEngine::Forecast(size_t keyword) const {
  StreamForecast forecast;
  forecast.values.resize(options_.forecast_horizon);
  DSPOT_RETURN_IF_ERROR(
      ForecastInto(keyword, forecast.values, &forecast.start_tick));
  return forecast;
}

bool StreamEngine::HasFit(size_t keyword) const {
  return keyword < keywords_.size() &&
         keywords_[keyword].forecast.load(std::memory_order_acquire) != nullptr;
}

StatusOr<StreamForecast> StreamEngine::Window(size_t keyword) const {
  if (keyword >= keywords_.size()) {
    return Status::InvalidArgument(
        "StreamEngine::Window: keyword index " + std::to_string(keyword) +
        " out of range (" + std::to_string(keywords_.size()) + " interned)");
  }
  const KeywordState& ks = keywords_[keyword];
  StreamForecast window;
  window.start_tick = ks.window_start;
  CopyWindow(ks, &window.values);
  return window;
}

StreamStats StreamEngine::stats() const {
  StreamStats stats;
  stats.appends = appends_;
  stats.rejected = rejected_;
  stats.evicted_ticks = evicted_ticks_;
  stats.flushes = flushes_;
  stats.cold_fits = cold_fits_;
  stats.warm_refits = warm_refits_;
  stats.escalations = escalations_;
  stats.refit_errors = refit_errors_;
  stats.num_keywords = keywords_.size();
  stats.buffer_bytes = buffer_bytes_;
  stats.peak_buffer_bytes = peak_buffer_bytes_;
  return stats;
}

void StreamEngine::AddBufferBytes(int64_t delta) {
  buffer_bytes_ = static_cast<size_t>(static_cast<int64_t>(buffer_bytes_) +
                                      delta);
  peak_buffer_bytes_ = std::max(peak_buffer_bytes_, buffer_bytes_);
}

}  // namespace dspot
