#ifndef DSPOT_TENSOR_NORMALIZATION_H_
#define DSPOT_TENSOR_NORMALIZATION_H_

#include "tensor/activity_tensor.h"
#include "timeseries/series.h"

namespace dspot {

/// Google-Trends-style normalization. Trends reports search interest
/// scaled so the maximum of a series is 100; fitting works on any scale,
/// but reproducing the paper's axes (and mixing sources) needs explicit,
/// invertible scaling.

/// A recorded scaling, so fitted/forecast values can be mapped back to
/// the original units.
struct ScaleInfo {
  double factor = 1.0;  ///< normalized = original * factor
  bool Valid() const { return factor > 0.0; }
};

/// Scales `s` so its observed maximum equals `target_max` (default 100,
/// the Trends convention). Returns the scaled series and records the
/// factor. Degenerate maxima — missing (all-missing series), non-positive
/// (all-zero / negative-only), infinite, or so small the factor would
/// overflow — leave the series unchanged (factor = 1), so
/// Denormalize(NormalizeToMax(s)) always round-trips without NaN
/// poisoning or divide-by-zero.
Series NormalizeToMax(const Series& s, ScaleInfo* info,
                      double target_max = 100.0);

/// Inverse of `NormalizeToMax`.
Series Denormalize(const Series& s, const ScaleInfo& info);

/// Normalizes every keyword of the tensor *jointly across its locations*
/// (one factor per keyword, so local shares stay comparable — scaling
/// each location separately would destroy the area-specificity signal).
/// Factors are returned per keyword via `infos` (resized to d).
ActivityTensor NormalizeTensorPerKeyword(const ActivityTensor& tensor,
                                         std::vector<ScaleInfo>* infos,
                                         double target_max = 100.0);

}  // namespace dspot

#endif  // DSPOT_TENSOR_NORMALIZATION_H_
