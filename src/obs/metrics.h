#ifndef DSPOT_OBS_METRICS_H_
#define DSPOT_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dspot {

/// dspot_obs — the observability layer threaded through the fit pipeline.
///
/// Three metric kinds, all process-wide and registered by name:
///
///  * Counter   — monotonically increasing event count (LM iterations,
///                shocks added, locations fitted). Sharded per thread;
///                totals are a pure function of the work performed, so
///                they are identical at any thread count (the fit itself
///                is bit-identical by the parallel runtime's contract).
///  * Gauge     — a last-write-wins scalar (final cost bits).
///  * Histogram — count/sum/min/max plus log2 buckets of observed values;
///                stage spans record wall-time milliseconds here, so the
///                count is deterministic but the time statistics are not.
///
/// Collection sites go through the DSPOT_SPAN / DSPOT_COUNT /
/// DSPOT_GAUGE_SET macros, which are compiled in unconditionally but
/// disarmed by default: the disarmed cost is one relaxed atomic load and
/// a predictable branch, the same budget as a FaultInjector probe, and
/// the disarmed path performs no allocation (metric registration itself
/// is deferred until the first *armed* pass over a site).
///
/// Observation never feeds back into the fit: enabling it cannot change
/// any fitted output, at any thread count (tests/obs_test.cc holds the
/// pipeline to that bit-identity).
///
/// THREAD SAFETY: recording through handles or macros is safe from any
/// thread. Enable/Disable/Reset must not race with in-flight fits — arm,
/// run, export, disarm (the CLI and tests do exactly this).

namespace obs_internal {
/// The process-wide arming flag, inline so every probe compiles to a
/// relaxed load of one well-known atomic.
inline std::atomic<bool> g_obs_enabled{false};
/// Whether armed spans additionally append Chrome trace events.
inline std::atomic<bool> g_obs_trace{false};
}  // namespace obs_internal

/// Fast-path gate: true iff the registry is armed.
inline bool ObsEnabled() {
  return obs_internal::g_obs_enabled.load(std::memory_order_relaxed);
}

/// Number of per-thread metric shards. Threads map onto shards by a
/// monotonically assigned slot modulo this count, so any concurrency level
/// is safe; with at most kObsShards recording threads each shard is
/// single-writer and increments never contend.
inline constexpr size_t kObsShards = 64;

/// log2 duration buckets per histogram; bucket i covers values in
/// [2^(i-7), 2^(i-6)) milliseconds, clamped at both ends.
inline constexpr size_t kObsHistogramBuckets = 20;

/// The recording thread's shard slot (assigned on first use).
size_t ObsThreadSlot();

/// A named monotonic counter. Add() is wait-free: one relaxed fetch_add on
/// the calling thread's shard cell.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    cells_[ObsThreadSlot()].value.fetch_add(n, std::memory_order_relaxed);
  }

  /// Sums the shards in slot order (deterministic merge).
  uint64_t Total() const;

  const std::string& name() const { return name_; }

 private:
  friend class ObsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}

  struct alignas(64) Cell {
    std::atomic<uint64_t> value{0};
  };
  std::string name_;
  std::array<Cell, kObsShards> cells_;
};

/// A named last-write-wins scalar.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class ObsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::atomic<double> value_{0.0};
};

/// A named histogram of doubles (span durations in milliseconds, cost-bit
/// deltas, ...). Per-shard count/sum/min/max plus log2 buckets; Record()
/// touches only the calling thread's shard.
class Histogram {
 public:
  void Record(double v);

  const std::string& name() const { return name_; }

 private:
  friend class ObsRegistry;
  explicit Histogram(std::string name) : name_(std::move(name)) {}

  struct alignas(64) Shard {
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{0.0};
    std::atomic<double> max{0.0};
    std::array<std::atomic<uint64_t>, kObsHistogramBuckets> buckets{};
  };
  std::string name_;
  std::array<Shard, kObsShards> shards_;
};

/// One completed span, in Chrome trace-event terms: a complete ("ph":"X")
/// event on thread `tid` starting `ts_us` microseconds after the registry
/// was armed and lasting `dur_us` microseconds.
struct TraceEvent {
  const char* name = nullptr;
  uint32_t tid = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Point-in-time copy of one metric (see ObsRegistry::Snapshot).
struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  /// Counter total, or histogram observation count.
  uint64_t count = 0;
  /// Gauge value.
  double value = 0.0;
  /// Histogram statistics (milliseconds for span-backed histograms).
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::array<uint64_t, kObsHistogramBuckets> buckets{};
};

/// Deterministically ordered (by kind, then name) copy of every metric.
struct ObsSnapshot {
  std::vector<MetricSnapshot> metrics;

  /// First metric with the given name, or nullptr.
  const MetricSnapshot* Find(std::string_view name) const;
  /// Counter total by name (0 when absent).
  uint64_t CounterValue(std::string_view name) const;
  /// Histogram observation count by name (0 when absent).
  uint64_t HistogramCount(std::string_view name) const;
};

/// Arming options for ObsRegistry::Enable.
struct ObsOptions {
  /// Also buffer Chrome trace events for every armed span. Off by default:
  /// tracing appends to per-shard vectors, which allocates while armed.
  bool trace = false;
};

/// The process-wide metric/trace registry.
class ObsRegistry {
 public:
  static ObsRegistry& Instance();

  /// Registers (or finds) a metric. Handles stay valid for the process
  /// lifetime; metrics are never unregistered, and Reset() zeroes values
  /// without invalidating handles.
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  /// Arms collection (and, optionally, tracing). Also rebases the trace
  /// clock: subsequent trace events are timestamped relative to this call.
  void Enable(const ObsOptions& options = {});

  /// Disarms collection; recorded values and trace events are kept for
  /// export until Reset().
  void Disable();

  bool enabled() const { return ObsEnabled(); }
  bool trace_enabled() const {
    return obs_internal::g_obs_trace.load(std::memory_order_relaxed);
  }

  /// Zeroes every metric and clears the trace buffers. Arming state is
  /// unchanged.
  void Reset();

  /// Deterministically ordered copy of every registered metric: counters,
  /// then gauges, then histograms, each sorted by name, with shard values
  /// merged in slot order.
  ObsSnapshot Snapshot() const;

  /// All buffered trace events, sorted by (ts, tid, name) so the export is
  /// reproducible for a fixed set of events.
  std::vector<TraceEvent> TraceEvents() const;

  /// Appends one complete span event (no-op unless tracing is armed).
  void AppendTraceEvent(const char* name,
                        std::chrono::steady_clock::time_point start,
                        std::chrono::steady_clock::time_point end);

 private:
  ObsRegistry();

  mutable std::mutex mu_;  // registration maps + enable state
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;

  struct TraceShard {
    std::mutex mu;
    std::vector<TraceEvent> events;
  };
  mutable std::array<TraceShard, kObsShards> trace_shards_;
  std::chrono::steady_clock::time_point trace_base_{};
};

/// RAII stage span. Default-constructed spans are inert; Start() arms one
/// against a histogram (the DSPOT_SPAN macro calls it only when the
/// registry is armed). On destruction an armed span records its wall time
/// into the histogram and, when tracing, appends a trace event.
class ObsSpan {
 public:
  ObsSpan() = default;
  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

  void Start(Histogram& histogram, const char* name) {
    histogram_ = &histogram;
    name_ = name;
    start_ = std::chrono::steady_clock::now();
  }

  ~ObsSpan();

 private:
  Histogram* histogram_ = nullptr;
  const char* name_ = nullptr;
  std::chrono::steady_clock::time_point start_{};
};

#define DSPOT_OBS_CONCAT_INNER(a, b) a##b
#define DSPOT_OBS_CONCAT(a, b) DSPOT_OBS_CONCAT_INNER(a, b)

/// Times the enclosing scope under `name` (a string literal). Disarmed:
/// one relaxed load, no allocation, no clock read. Armed: registers the
/// histogram once, then two clock reads plus one shard record per pass.
#define DSPOT_SPAN(name)                                                      \
  ::dspot::ObsSpan DSPOT_OBS_CONCAT(dspot_obs_span_, __LINE__);               \
  if (::dspot::ObsEnabled()) {                                                \
    static ::dspot::Histogram& DSPOT_OBS_CONCAT(dspot_obs_hist_, __LINE__) =  \
        ::dspot::ObsRegistry::Instance().GetHistogram(name);                  \
    DSPOT_OBS_CONCAT(dspot_obs_span_, __LINE__)                               \
        .Start(DSPOT_OBS_CONCAT(dspot_obs_hist_, __LINE__), name);            \
  }                                                                           \
  static_assert(true, "")

/// Adds `n` to the counter `name` (a string literal) when armed.
#define DSPOT_COUNT(name, n)                                                  \
  do {                                                                        \
    if (::dspot::ObsEnabled()) {                                              \
      static ::dspot::Counter& dspot_obs_counter =                            \
          ::dspot::ObsRegistry::Instance().GetCounter(name);                  \
      dspot_obs_counter.Add(n);                                               \
    }                                                                         \
  } while (0)

/// Sets the gauge `name` (a string literal) when armed.
#define DSPOT_GAUGE_SET(name, v)                                              \
  do {                                                                        \
    if (::dspot::ObsEnabled()) {                                              \
      static ::dspot::Gauge& dspot_obs_gauge =                                \
          ::dspot::ObsRegistry::Instance().GetGauge(name);                    \
      dspot_obs_gauge.Set(v);                                                 \
    }                                                                         \
  } while (0)

/// Records `v` into the histogram `name` (a string literal) when armed.
#define DSPOT_OBSERVE(name, v)                                                \
  do {                                                                        \
    if (::dspot::ObsEnabled()) {                                              \
      static ::dspot::Histogram& dspot_obs_hist =                             \
          ::dspot::ObsRegistry::Instance().GetHistogram(name);                \
      dspot_obs_hist.Record(v);                                               \
    }                                                                         \
  } while (0)

}  // namespace dspot

#endif  // DSPOT_OBS_METRICS_H_
