// Fig. 11-style serving benchmark: cold fit vs snapshot warm-started
// refit vs incremental UpdateFit, on tensors of growing size. The warm
// paths skip the cold multi-start MDL search, so both wall-clock and the
// "lm.iterations" counter should drop sharply while the MDL cost of the
// refit model stays at (or below) the cold fit's.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/dspot.h"
#include "datagen/catalog.h"
#include "datagen/generator.h"
#include "obs/metrics.h"
#include "snapshot/snapshot.h"
#include "snapshot/update.h"

namespace dspot {
namespace {

double LmIterations() {
  return static_cast<double>(
      ObsRegistry::Instance().Snapshot().CounterValue("lm.iterations"));
}

struct Timed {
  double ms = -1.0;
  double lm_iters = 0.0;
  double cost_bits = 0.0;
};

ActivityTensor MakeTensor(size_t d, size_t l, size_t n, uint64_t seed) {
  GeneratorConfig config = GoogleTrendsConfig(seed);
  config.n_ticks = n;
  config.num_locations = l;
  config.num_outlier_locations = 0;
  std::vector<KeywordScenario> suite = TrendingKeywordSuite();
  std::vector<KeywordScenario> scenarios;
  for (size_t i = 0; i < d; ++i) {
    KeywordScenario s = suite[i % suite.size()];
    s.name += "_" + std::to_string(i);
    for (auto& shock : s.shocks) {
      shock.start %= std::max<size_t>(n / 2, 1);
    }
    scenarios.push_back(std::move(s));
  }
  auto generated = GenerateTensor(scenarios, config);
  if (!generated.ok()) {
    std::fprintf(stderr, "generate failed: %s\n",
                 generated.status().ToString().c_str());
    return ActivityTensor();
  }
  return generated->tensor;
}

/// Extends `tensor` by `appended` ticks that repeat the last observed
/// value — quiet data that should not trigger shock re-detection.
ActivityTensor ExtendQuiet(const ActivityTensor& tensor, size_t appended) {
  ActivityTensor out(tensor.num_keywords(), tensor.num_locations(),
                     tensor.num_ticks() + appended);
  for (size_t i = 0; i < tensor.num_keywords(); ++i) {
    (void)out.SetKeywordName(i, tensor.keywords()[i]);
    for (size_t j = 0; j < tensor.num_locations(); ++j) {
      for (size_t t = 0; t < tensor.num_ticks(); ++t) {
        out.at(i, j, t) = tensor.at(i, j, t);
      }
      for (size_t t = 0; t < appended; ++t) {
        out.at(i, j, tensor.num_ticks() + t) =
            tensor.at(i, j, tensor.num_ticks() - 1);
      }
    }
  }
  return out;
}

void Row(size_t d, size_t l, size_t n, bench::BenchJson* json) {
  const ActivityTensor tensor = MakeTensor(d, l, n, /*seed=*/7);
  if (tensor.empty()) return;

  Timed cold;
  ObsRegistry::Instance().Reset();
  auto t0 = std::chrono::steady_clock::now();
  auto cold_fit = FitDspot(tensor);
  if (!cold_fit.ok()) {
    std::fprintf(stderr, "cold fit failed: %s\n",
                 cold_fit.status().ToString().c_str());
    return;
  }
  cold.ms = ElapsedMs(t0);
  cold.lm_iters = LmIterations();
  cold.cost_bits = cold_fit->total_cost_bits;

  // Round-trip the model through the binary snapshot backend so the warm
  // paths measure serving reality (load + refit), not an in-memory copy.
  const std::string path = "bench_warm_start.model";
  const ModelSnapshot snapshot = MakeSnapshot(*cold_fit, tensor);
  if (Status s = SaveSnapshot(snapshot, path); !s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return;
  }
  auto loaded = LoadSnapshot(path);
  std::remove(path.c_str());
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return;
  }

  Timed warm;
  ObsRegistry::Instance().Reset();
  t0 = std::chrono::steady_clock::now();
  DspotOptions warm_options;
  warm_options.warm_start = &loaded->params;
  auto warm_fit = FitDspot(tensor, warm_options);
  if (!warm_fit.ok()) {
    std::fprintf(stderr, "warm refit failed: %s\n",
                 warm_fit.status().ToString().c_str());
    return;
  }
  warm.ms = ElapsedMs(t0);
  warm.lm_iters = LmIterations();
  warm.cost_bits = warm_fit->total_cost_bits;

  Timed update;
  const ActivityTensor extended = ExtendQuiet(tensor, /*appended=*/26);
  ObsRegistry::Instance().Reset();
  t0 = std::chrono::steady_clock::now();
  auto updated = UpdateFit(*loaded, extended);
  if (!updated.ok()) {
    std::fprintf(stderr, "update failed: %s\n",
                 updated.status().ToString().c_str());
    return;
  }
  update.ms = ElapsedMs(t0);
  update.lm_iters = LmIterations();
  update.cost_bits = updated->result.total_cost_bits;

  std::printf("%4zu %4zu %5zu | %9.0f %8.0f %9.0f | %9.0f %8.0f %9.0f "
              "(%4.1fx) | %9.0f %8.0f\n",
              d, l, n, cold.ms, cold.lm_iters, cold.cost_bits, warm.ms,
              warm.lm_iters, warm.cost_bits,
              warm.ms > 0 ? cold.ms / warm.ms : 0.0, update.ms,
              update.lm_iters);

  json->AddRow();
  json->SetRow("keywords", static_cast<double>(d));
  json->SetRow("locations", static_cast<double>(l));
  json->SetRow("ticks", static_cast<double>(n));
  json->SetRow("cold_ms", cold.ms);
  json->SetRow("cold_lm_iterations", cold.lm_iters);
  json->SetRow("cold_cost_bits", cold.cost_bits);
  json->SetRow("warm_ms", warm.ms);
  json->SetRow("warm_lm_iterations", warm.lm_iters);
  json->SetRow("warm_cost_bits", warm.cost_bits);
  json->SetRow("update_ms", update.ms);
  json->SetRow("update_lm_iterations", update.lm_iters);
}

}  // namespace
}  // namespace dspot

int main() {
  std::printf("Δ-SPOT serving: cold fit vs warm (snapshot) refit vs "
              "incremental update\n\n");
  std::printf("%4s %4s %5s | %9s %8s %9s | %9s %8s %9s %7s | %9s %8s\n", "d",
              "l", "n", "cold ms", "lm it", "bits", "warm ms", "lm it",
              "bits", "speedup", "upd ms", "lm it");
  dspot::ObsRegistry::Instance().Enable(dspot::ObsOptions());
  const auto t0 = std::chrono::steady_clock::now();
  dspot::bench::BenchJson json("warm_start");
  dspot::Row(1, 4, 104, &json);
  dspot::Row(2, 4, 208, &json);
  dspot::Row(4, 8, 208, &json);
  dspot::Row(8, 8, 208, &json);
  json.Set("wall_ms", std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count());
  json.Set("threads", 1.0);
  if (json.WriteTo("BENCH_warm_start.json")) {
    std::printf("\nwrote BENCH_warm_start.json\n");
  }
  return 0;
}
