#include "baselines/spikem.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <vector>

#include "optimize/levenberg_marquardt.h"
#include "timeseries/metrics.h"
#include "timeseries/peaks.h"

namespace dspot {

namespace {
constexpr double kTwoPi = 6.283185307179586;
constexpr double kDecayExponent = -1.5;
}  // namespace

void SimulateSpikeMInto(const SpikeMParams& params, SpikeMWorkspace* workspace,
                        std::span<double> out) {
  const size_t n_ticks = out.size();
  if (n_ticks == 0) {
    return;
  }
  const double n_total = std::max(params.population, 1e-9);
  // The power-law kernel f(tau) = beta * tau^{-1.5} factors into a
  // beta-independent decay (cached per horizon — the pow calls dominate
  // the kernel build) times the current beta.
  std::vector<double>& decay = workspace->decay;
  if (decay.size() != n_ticks + 1) {
    decay.assign(n_ticks + 1, 0.0);
    for (size_t tau = 1; tau <= n_ticks; ++tau) {
      decay[tau] = std::pow(static_cast<double>(tau), kDecayExponent);
    }
  }
  std::vector<double>& kernel = workspace->kernel;
  kernel.resize(n_ticks + 1);
  kernel[0] = 0.0;
  for (size_t tau = 1; tau <= n_ticks; ++tau) {
    kernel[tau] = params.beta * decay[tau];
  }
  auto modulation = [&](size_t t) {
    if (params.period < 2.0 || params.periodicity_amplitude <= 0.0) {
      return 1.0;
    }
    const double phase =
        kTwoPi * (static_cast<double>(t) + params.periodicity_shift) /
        params.period;
    return 1.0 - 0.5 * std::clamp(params.periodicity_amplitude, 0.0, 1.0) *
                     (std::sin(phase) + 1.0);
  };

  double informed = 0.0;  // B(t)
  out[0] = 0.0;
  for (size_t t = 0; t + 1 < n_ticks; ++t) {
    double influence = 0.0;
    for (size_t s = params.shock_start; s <= t; ++s) {
      const double source =
          out[s] + (s == params.shock_start ? params.shock_size : 0.0);
      influence += source * kernel[t + 1 - s];
    }
    const double available = std::max(n_total - informed, 0.0);
    double next = modulation(t + 1) *
                  (available / n_total * influence + params.background);
    next = std::clamp(next, 0.0, available);
    out[t + 1] = next;
    informed += next;
  }
}

Series SimulateSpikeM(const SpikeMParams& params, size_t n_ticks) {
  Series delta(n_ticks);
  SpikeMWorkspace workspace;
  SimulateSpikeMInto(params, &workspace, delta.mutable_values());
  return delta;
}

StatusOr<SpikeMFit> FitSpikeM(const Series& data,
                              const SpikeMOptions& options) {
  if (data.observed_count() < 12) {
    return Status::InvalidArgument("FitSpikeM: too few observations");
  }
  const size_t n = data.size();
  const double peak = std::max(data.MaxValue(), 1.0);
  const double volume = std::max(data.SumValue(), peak);

  // Candidate shock starts: the strongest bursts, plus a coarse grid.
  std::vector<size_t> candidates;
  for (const Burst& b : FindBursts(data)) {
    candidates.push_back(b.start > 2 ? b.start - 2 : 0);
    if (candidates.size() >= 4) break;
  }
  const size_t grid = std::max<size_t>(options.start_grid, 2);
  for (size_t g = 0; g < grid; ++g) {
    candidates.push_back(n * g / grid);
  }

  // One scratch for every candidate-start solve: observed-tick indices,
  // the simulation buffer and workspace (the cached decay kernel survives
  // across all solves — the horizon never changes), and the LM workspace.
  std::vector<size_t> observed;
  for (size_t t = 0; t < n; ++t) {
    if (data.IsObserved(t)) observed.push_back(t);
  }
  std::vector<double> estimate(n);
  SpikeMWorkspace sim_workspace;
  LmWorkspace lm_workspace;

  SpikeMFit best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (size_t start : candidates) {
    if (start + 4 >= n) continue;
    const bool periodic = options.period >= 2.0;
    auto residual_fn = [&](std::span<const double> p,
                           std::span<double> r) -> Status {
      SpikeMParams params;
      params.population = p[0];
      params.beta = p[1];
      params.shock_size = p[2];
      params.background = p[3];
      params.shock_start = start;
      params.period = options.period;
      if (periodic) {
        params.periodicity_amplitude = p[4];
        params.periodicity_shift = p[5];
      }
      SimulateSpikeMInto(params, &sim_workspace, estimate);
      for (size_t k = 0; k < observed.size(); ++k) {
        const size_t t = observed[k];
        r[k] = estimate[t] - data[t];
      }
      return Status::Ok();
    };
    Bounds bounds;
    bounds.lower = {volume * 0.2, 1e-4, 0.0, 0.0};
    bounds.upper = {volume * 50.0, 10.0, peak * 20.0, peak};
    std::vector<double> init = {volume, 0.5, peak, 0.1};
    if (periodic) {
      bounds.lower.insert(bounds.lower.end(), {0.0, 0.0});
      bounds.upper.insert(bounds.upper.end(), {1.0, options.period});
      init.insert(init.end(), {0.3, 0.0});
    }
    auto fit_or = LevenbergMarquardt(residual_fn, observed.size(), init,
                                     bounds, LmOptions(), &lm_workspace);
    if (!fit_or.ok()) continue;
    if (fit_or->final_cost < best_cost) {
      best_cost = fit_or->final_cost;
      const auto& p = fit_or->params;
      best.params.population = p[0];
      best.params.beta = p[1];
      best.params.shock_size = p[2];
      best.params.background = p[3];
      best.params.shock_start = start;
      best.params.period = options.period;
      if (periodic) {
        best.params.periodicity_amplitude = p[4];
        best.params.periodicity_shift = p[5];
      }
    }
  }
  if (!std::isfinite(best_cost)) {
    return Status::NumericalError("FitSpikeM: all starts failed");
  }
  SimulateSpikeMInto(best.params, &sim_workspace, estimate);
  best.rmse = Rmse(std::span<const double>(data.values()),
                   std::span<const double>(estimate));
  return best;
}

}  // namespace dspot
