#ifndef DSPOT_BENCH_BENCH_UTIL_H_
#define DSPOT_BENCH_BENCH_UTIL_H_

// Shared console-output helpers for the figure-reproduction benches:
// ASCII sparklines (so each "figure" is eyeballable in a terminal) and
// calendar rendering for the weekly GoogleTrends-style time axis.

#include <algorithm>
#include <cstdio>
#include <string>

#include "core/shock.h"
#include "timeseries/series.h"

namespace dspot {
namespace bench {

/// Renders `s` as a one-line ASCII sparkline of `columns` buckets
/// (max-pooled so narrow spikes stay visible).
inline std::string Sparkline(const Series& s, size_t columns = 96) {
  static const char kLevels[] = " .:-=+*#%@";
  constexpr size_t kNumLevels = sizeof(kLevels) - 2;  // last index
  if (s.empty()) {
    return "";
  }
  const double lo = std::min(0.0, s.MinValue());
  const double hi = std::max(s.MaxValue(), lo + 1e-9);
  std::string out;
  columns = std::min(columns, s.size());
  for (size_t c = 0; c < columns; ++c) {
    const size_t begin = c * s.size() / columns;
    const size_t end = std::max(begin + 1, (c + 1) * s.size() / columns);
    double bucket = 0.0;
    for (size_t t = begin; t < end && t < s.size(); ++t) {
      if (s.IsObserved(t)) bucket = std::max(bucket, s[t]);
    }
    const double frac = (bucket - lo) / (hi - lo);
    out += kLevels[static_cast<size_t>(frac * kNumLevels + 0.5)];
  }
  return out;
}

/// Prints an original/fitted sparkline pair with a label.
inline void PrintFitPair(const std::string& label, const Series& data,
                         const Series& estimate) {
  std::printf("%-18s data |%s|\n", label.c_str(),
              Sparkline(data).c_str());
  std::printf("%-18s fit  |%s|\n", "", Sparkline(estimate).c_str());
}

/// Week tick -> "YYYY-Mon" label on the paper's axis (tick 0 = Jan 2004,
/// 52 ticks per year).
inline std::string WeekToCalendar(size_t tick) {
  static const char* kMonths[] = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                                  "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};
  const size_t year = 2004 + tick / 52;
  const size_t week = tick % 52;
  const size_t month = std::min<size_t>(week * 12 / 52, 11);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%zu-%s", year, kMonths[month]);
  return buf;
}

/// Human description of a detected shock on the weekly calendar axis.
inline std::string DescribeEvent(const Shock& shock) {
  std::string out;
  if (shock.IsCyclic()) {
    const double years = static_cast<double>(shock.period) / 52.0;
    char buf[64];
    if (shock.period % 52 <= 2 || shock.period % 52 >= 50) {
      std::snprintf(buf, sizeof(buf), "every ~%.0f year(s)", years);
    } else {
      std::snprintf(buf, sizeof(buf), "every %zu weeks", shock.period);
    }
    out = std::string("cyclic (") + buf + ") from " +
          WeekToCalendar(shock.start);
  } else {
    out = "one-shot at " + WeekToCalendar(shock.start);
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                ", width %zu wk, strength %.2f, %zu occurrence(s)",
                shock.width, shock.base_strength,
                shock.global_strengths.size());
  out += buf;
  return out;
}

}  // namespace bench
}  // namespace dspot

#endif  // DSPOT_BENCH_BENCH_UTIL_H_
