#include "optimize/levenberg_marquardt.h"

#include <cmath>

#include "linalg/matrix.h"
#include "linalg/solvers.h"
#include "linalg/vector_ops.h"

namespace dspot {

namespace {

/// Computes the forward-difference Jacobian of `fn` at `p`. `r0` is the
/// residual vector already evaluated at `p`. Steps are clamped so probe
/// points stay inside `bounds` (by stepping backwards when at the upper
/// bound).
StatusOr<Matrix> NumericJacobian(const ResidualFn& fn,
                                 const std::vector<double>& p,
                                 const std::vector<double>& r0,
                                 const Bounds& bounds, double rel_step) {
  const size_t np = p.size();
  const size_t m = r0.size();
  Matrix jac(m, np);
  std::vector<double> probe = p;
  std::vector<double> r1;
  for (size_t j = 0; j < np; ++j) {
    double h = rel_step * std::max(1.0, std::fabs(p[j]));
    // Step backwards if a forward step would leave the box.
    if (!bounds.empty() && p[j] + h > bounds.upper[j]) {
      h = -h;
    }
    probe[j] = p[j] + h;
    Status s = fn(probe, &r1);
    probe[j] = p[j];
    if (!s.ok()) {
      return s;
    }
    if (r1.size() != m) {
      return Status::Internal("residual size changed between LM evaluations");
    }
    const double inv_h = 1.0 / h;
    for (size_t i = 0; i < m; ++i) {
      jac(i, j) = (r1[i] - r0[i]) * inv_h;
    }
  }
  return jac;
}

double HalfSumSquares(const std::vector<double>& r) {
  return 0.5 * SumSquares(r);
}

}  // namespace

StatusOr<LmResult> LevenbergMarquardt(const ResidualFn& residual_fn,
                                      const std::vector<double>& initial,
                                      const Bounds& bounds,
                                      const LmOptions& options) {
  if (initial.empty()) {
    return Status::InvalidArgument("LevenbergMarquardt: empty parameters");
  }
  if (!bounds.empty() && (bounds.lower.size() != initial.size() ||
                          bounds.upper.size() != initial.size())) {
    return Status::InvalidArgument(
        "LevenbergMarquardt: bounds size does not match parameters");
  }

  std::vector<double> p = initial;
  bounds.Clamp(&p);

  std::vector<double> r;
  DSPOT_RETURN_IF_ERROR(residual_fn(p, &r));
  if (r.empty()) {
    return Status::InvalidArgument("LevenbergMarquardt: empty residuals");
  }
  double cost = HalfSumSquares(r);
  if (!std::isfinite(cost)) {
    return Status::NumericalError(
        "LevenbergMarquardt: non-finite cost at the initial point");
  }

  LmResult result;
  result.initial_cost = cost;
  double lambda = options.initial_lambda;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    DSPOT_ASSIGN_OR_RETURN(
        Matrix jac, NumericJacobian(residual_fn, p, r, bounds,
                                    options.jacobian_step));
    // Normal equations: (J^T J + lambda I) step = -J^T r.
    Matrix jtj = jac.Gram();
    std::vector<double> jtr = jac.TransposedTimes(r);
    if (NormInf(jtr) < options.gradient_tolerance) {
      result.converged = true;
      break;
    }

    bool accepted = false;
    while (lambda <= options.max_lambda) {
      Matrix damped = jtj;
      damped.AddToDiagonal(lambda);
      auto step_or = RegularizedLdltSolve(damped, Scaled(jtr, -1.0));
      if (!step_or.ok()) {
        lambda *= options.lambda_up;
        continue;
      }
      std::vector<double> candidate = Add(p, step_or.value());
      bounds.Clamp(&candidate);
      const std::vector<double> actual_step = Sub(candidate, p);

      std::vector<double> r_new;
      Status s = residual_fn(candidate, &r_new);
      if (!s.ok()) {
        return s;
      }
      const double cost_new = HalfSumSquares(r_new);
      if (std::isfinite(cost_new) && cost_new < cost) {
        const double rel_decrease = (cost - cost_new) / std::max(cost, 1e-30);
        const double step_norm = NormInf(actual_step);
        p = std::move(candidate);
        r = std::move(r_new);
        cost = cost_new;
        lambda = std::max(lambda * options.lambda_down, 1e-12);
        accepted = true;
        ++result.iterations;
        if (rel_decrease < options.cost_tolerance ||
            step_norm < options.step_tolerance) {
          result.converged = true;
        }
        break;
      }
      lambda *= options.lambda_up;
    }
    if (!accepted || result.converged) {
      // Either lambda blew past its cap (stuck) or we converged.
      result.converged = result.converged || !accepted;
      break;
    }
  }

  result.params = std::move(p);
  result.final_cost = cost;
  return result;
}

}  // namespace dspot
