#ifndef DSPOT_KERNELS_CALENDAR_H_
#define DSPOT_KERNELS_CALENDAR_H_

#include <cstdint>

namespace dspot {
namespace kernels {

/// Branch-free calendar arithmetic for event-log bucketing, modeled on
/// timeslide's days-to-components decomposition. Everything here is pure
/// integer arithmetic with no data-dependent branches (conditions reduce
/// to 0/1 arithmetic), so bucketing a billion-row log neither stalls the
/// branch predictor nor goes wrong for pre-epoch (negative) timestamps —
/// the historical bug this replaces was C++'s truncate-toward-zero
/// division mapping seconds -1..-86400 and 0..86399 into the SAME day
/// bucket 0.

/// Floor division: largest q with q*b <= a. Unlike `/` (which truncates
/// toward zero), FloorDiv(-1, 86400) == -1.  b must be non-zero.
constexpr int64_t FloorDiv(int64_t a, int64_t b) {
  const int64_t q = a / b;
  const int64_t r = a % b;
  return q - ((r != 0) & ((r < 0) != (b < 0)));
}

/// Floor modulus: a - FloorDiv(a, b) * b, always in [0, |b|) for b > 0.
constexpr int64_t FloorMod(int64_t a, int64_t b) {
  return a - FloorDiv(a, b) * b;
}

/// Civil (proleptic Gregorian) date components.
struct CivilDay {
  int64_t year = 1970;
  int32_t month = 1;  ///< 1..12
  int32_t day = 1;    ///< 1..31
  int32_t yday = 0;   ///< 0-based day of year, 0..365
};

/// Days since 1970-01-01 -> civil date (Howard Hinnant's civil_from_days,
/// era decomposition made branch-free with FloorDiv / 0-1 arithmetic).
/// Valid over +-5.8 million years; negative inputs (pre-epoch) decode
/// correctly: CivilFromDays(-1) == 1969-12-31.
CivilDay CivilFromDays(int64_t days_since_epoch);

/// Civil date -> days since 1970-01-01 (inverse of CivilFromDays).
int64_t DaysFromCivil(int64_t year, int32_t month, int32_t day);

/// Unix seconds -> days since epoch, floor semantics (second -1 is day -1).
constexpr int64_t DaysFromSeconds(int64_t seconds) {
  return FloorDiv(seconds, 86400);
}

/// Calendar bucket indices for Unix-seconds timestamps. All are floor
/// aligned, so consecutive buckets tile the timeline with no double-wide
/// bucket at the epoch.
///
/// Weeks start on Monday (ISO): day 0 (Thursday 1970-01-01) falls in week
/// 0, which begins Monday 1969-12-29 (day -3).
constexpr int64_t WeekIndexFromDays(int64_t days_since_epoch) {
  return FloorDiv(days_since_epoch + 3, 7);
}

/// Month index: (year - 1970) * 12 + (month - 1); January 1970 is 0,
/// December 1969 is -1.
int64_t MonthIndexFromDays(int64_t days_since_epoch);

/// Year index relative to nothing: the civil year itself (1970, 1969, …).
int64_t YearFromDays(int64_t days_since_epoch);

}  // namespace kernels
}  // namespace dspot

#endif  // DSPOT_KERNELS_CALENDAR_H_
