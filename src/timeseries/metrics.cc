#include "timeseries/metrics.h"

#include <algorithm>
#include <cmath>
#include <tuple>

namespace dspot {

namespace {

template <typename Get>
double RmseImpl(size_t n, const Get& get_pair) {
  double sum = 0.0;
  size_t count = 0;
  for (size_t t = 0; t < n; ++t) {
    auto [a, e, valid] = get_pair(t);
    if (!valid) continue;
    sum += Square(a - e);
    ++count;
  }
  return count == 0 ? 0.0 : std::sqrt(sum / static_cast<double>(count));
}

}  // namespace

double Rmse(const Series& actual, const Series& estimate) {
  return Rmse(std::span<const double>(actual.values()),
              std::span<const double>(estimate.values()));
}

double Rmse(std::span<const double> actual, std::span<const double> estimate) {
  const size_t n = std::min(actual.size(), estimate.size());
  return RmseImpl(n, [&](size_t t) {
    const double a = actual[t];
    const double e = estimate[t];
    return std::tuple<double, double, bool>(a, e,
                                            !IsMissing(a) && !IsMissing(e));
  });
}

double Rmse(const std::vector<double>& actual,
            const std::vector<double>& estimate) {
  return Rmse(std::span<const double>(actual), std::span<const double>(estimate));
}

double Mae(const Series& actual, const Series& estimate) {
  const size_t n = std::min(actual.size(), estimate.size());
  double sum = 0.0;
  size_t count = 0;
  for (size_t t = 0; t < n; ++t) {
    if (IsMissing(actual[t]) || IsMissing(estimate[t])) continue;
    sum += std::fabs(actual[t] - estimate[t]);
    ++count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double NormalizedRmse(const Series& actual, const Series& estimate) {
  const double range = actual.MaxValue() - actual.MinValue();
  if (!(range > 0.0)) {
    return 0.0;
  }
  return Rmse(actual, estimate) / range;
}

double RSquared(const Series& actual, const Series& estimate) {
  const size_t n = std::min(actual.size(), estimate.size());
  const double mu = actual.MeanValue();
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (size_t t = 0; t < n; ++t) {
    if (IsMissing(actual[t]) || IsMissing(estimate[t])) continue;
    ss_res += Square(actual[t] - estimate[t]);
    ss_tot += Square(actual[t] - mu);
  }
  if (ss_tot <= 0.0) {
    return ss_res <= 0.0 ? 1.0 : 0.0;
  }
  return 1.0 - ss_res / ss_tot;
}

}  // namespace dspot
