// Fig. 6 reproduction: global fits on two popular Twitter hashtags —
// "#apple" (two product-launch bursts) and "#backtoschool" (one seasonal
// burst) — at daily resolution over ~8 months.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/global_fit.h"
#include "core/simulate.h"
#include "datagen/catalog.h"
#include "datagen/generator.h"
#include "timeseries/metrics.h"

namespace dspot {
namespace {

int Run() {
  std::printf("=== Fig. 6 — Twitter hashtags (daily, 8 months) ===\n\n");
  GeneratorConfig config = TwitterConfig();
  auto generated = GenerateTensor(
      {HashtagAppleScenario(), HashtagBackToSchoolScenario()}, config);
  if (!generated.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  auto params = GlobalFit(generated->tensor);
  if (!params.ok()) {
    std::fprintf(stderr, "fit: %s\n", params.status().ToString().c_str());
    return 1;
  }
  for (size_t i = 0; i < 2; ++i) {
    const Series data = generated->tensor.GlobalSequence(i);
    const Series estimate = SimulateGlobal(*params, i, data.size());
    const double range = data.MaxValue() - data.MinValue();
    std::printf("--- %s: RMSE %.3f (%.1f%% of range) ---\n",
                generated->tensor.keywords()[i].c_str(),
                Rmse(data, estimate), 100.0 * Rmse(data, estimate) / range);
    bench::PrintFitPair(generated->tensor.keywords()[i], data, estimate);
    for (const Shock& shock : params->shocks) {
      if (shock.keyword != i) continue;
      std::printf("  event: start day %zu, width %zu, strength %.2f%s\n",
                  shock.start, shock.width, shock.base_strength,
                  shock.IsCyclic() ? " (cyclic)" : "");
    }
    std::printf("\n");
  }
  std::printf("Ground truth: #apple bursts at days 60 and 150; "
              "#backtoschool burst at day 75 (sustained).\n");
  return 0;
}

}  // namespace
}  // namespace dspot

int main() { return dspot::Run(); }
