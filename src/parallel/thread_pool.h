#ifndef DSPOT_PARALLEL_THREAD_POOL_H_
#define DSPOT_PARALLEL_THREAD_POOL_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "guard/guard.h"

namespace dspot {

/// Number of worker threads implied by `num_threads == 0` (the hardware
/// concurrency, with a floor of 1 when the runtime cannot report it).
size_t EffectiveNumThreads(size_t num_threads);

/// A fixed-size work-stealing thread pool.
///
/// Each worker owns a deque in the Chase-Lev discipline: the owner pushes
/// and pops at the bottom (LIFO, cache-friendly for nested fan-out) while
/// thieves steal from the top (FIFO, oldest-first). The deques are guarded
/// by small per-worker mutexes rather than lock-free operations — steals
/// are rare for the coarse fitting tasks this pool runs, and the mutexes
/// keep the implementation obviously correct under ThreadSanitizer. Idle
/// workers park on a condition variable and are woken on submission.
///
/// Determinism contract: the pool schedules tasks in an unspecified order,
/// so callers that need reproducible results must make tasks independent
/// and write results into pre-assigned slots (see ParallelFor /
/// ParallelMap in parallel_for.h, which layer exactly that discipline on
/// top).
///
/// Threads blocked waiting for a set of tasks should help drain the pool
/// via RunOneTask() (TaskGroup::Wait does this), which makes nested
/// parallel sections deadlock-free even on a single-worker pool.
class ThreadPool {
 public:
  /// Hard cap on pool size; requests beyond it are clamped.
  static constexpr size_t kMaxWorkers = 64;

  /// Starts `num_threads` workers (0 = hardware concurrency).
  explicit ThreadPool(size_t num_threads = 0);

  /// Joins all workers. Outstanding tasks submitted before destruction are
  /// drained first; submitting during destruction is a usage error.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const {
    return num_workers_.load(std::memory_order_acquire);
  }

  /// Enqueues `task`. Called from a pool worker, the task lands on that
  /// worker's own deque (bottom); called from any other thread, it lands
  /// on the shared inject queue.
  void Submit(std::function<void()> task);

  /// Runs one queued task on the calling thread, if any task is queued
  /// anywhere (own deque, inject queue, or stolen from another worker).
  /// Returns false when every queue was empty. Safe to call from any
  /// thread; this is the "help while waiting" primitive.
  bool RunOneTask();

  /// Grows the pool to at least `n` workers (clamped to kMaxWorkers).
  /// Never shrinks.
  void EnsureWorkers(size_t n);

  /// The process-wide shared pool used by ParallelFor/ParallelMap. Grown
  /// on demand to `min_workers` (0 = hardware concurrency); never
  /// destroyed, so worker threads outlive static teardown safely.
  static ThreadPool& Shared(size_t min_workers = 0);

 private:
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;  // bottom = back, top = front
    std::thread thread;
  };

  void WorkerLoop(size_t index);

  /// Dequeues one task: `self` (own deque, pass kNpos for non-workers),
  /// then the inject queue, then steals round-robin from the others.
  bool PopTask(size_t self, std::function<void()>* task);

  /// Workers are appended, never removed: slot `i` is immutable once
  /// `num_workers_` (release-published) covers it, so readers index the
  /// array with only an acquire load.
  std::array<std::unique_ptr<Worker>, kMaxWorkers> workers_;
  std::atomic<size_t> num_workers_{0};
  std::mutex grow_mu_;  // serializes EnsureWorkers

  std::mutex inject_mu_;
  std::deque<std::function<void()>> inject_;

  /// Queued-but-unclaimed task count; lets sleepers check for work without
  /// taking every deque mutex.
  std::atomic<size_t> pending_{0};
  std::mutex sleep_mu_;
  std::condition_variable wake_cv_;
  std::atomic<bool> stop_{false};
};

/// A fan-out/join scope for irregular task sets: Run() submits tasks to
/// the pool (or runs them inline when constructed without one), Wait()
/// blocks until all of them finished, helping the pool drain in the
/// meantime. The first exception thrown by any task is captured and
/// rethrown from Wait(); later exceptions are dropped. Status-returning
/// work should aggregate through ParallelMap instead, which reports the
/// first error *in index order* (deterministically).
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool = nullptr) : pool_(pool) {}

  /// Cancellation-aware group: once `cancel` fires, tasks that have not
  /// yet *started* are dropped at dequeue time (they still count as
  /// finished for Wait()), so a cancelled fan-out drains in the time it
  /// takes the in-flight tasks to notice the token — not the time it
  /// would take to run the whole backlog. In-flight tasks are expected to
  /// poll the same token cooperatively.
  TaskGroup(ThreadPool* pool, CancellationToken cancel)
      : pool_(pool), cancel_(std::move(cancel)) {}

  /// Waits for stragglers, but swallows their exceptions — call Wait()
  /// explicitly on every success path.
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Submits `fn`; runs it inline when the group has no pool.
  void Run(std::function<void()> fn);

  /// Blocks until every task submitted so far has finished. The calling
  /// thread executes queued tasks while it waits, so nested groups cannot
  /// deadlock. Rethrows the first captured exception.
  void Wait();

 private:
  void WaitNoThrow();

  ThreadPool* pool_;
  CancellationToken cancel_;  // inert unless the two-arg ctor was used
  std::mutex mu_;
  std::condition_variable cv_;
  size_t pending_ = 0;              // guarded by mu_
  std::exception_ptr first_error_;  // guarded by mu_
};

}  // namespace dspot

#endif  // DSPOT_PARALLEL_THREAD_POOL_H_
