#ifndef DSPOT_CORE_SHOCK_H_
#define DSPOT_CORE_SHOCK_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/math_util.h"
#include "linalg/matrix.h"

namespace dspot {

/// One external shock event s = {s^(D), s^(N), s^(L)} (Definition 6).
///
/// * s^(D): which keyword the shock belongs to (`keyword`).
/// * s^(N): the time descriptor {t_p, t_s, t_w} — periodicity, start,
///   width. `period == kNonCyclic` (0) encodes t_p = infinity, i.e. a
///   one-shot event.
/// * s^(L): per-occurrence strengths. At the global level each of the
///   ceil((n - t_s) / t_p) occurrences carries one strength
///   (`global_strengths`); after LocalFit, `local_strengths` holds the
///   (occurrences x locations) strength matrix of the paper.
///
/// The shock enters the dynamics through the temporal susceptible rate
/// eps(t) = 1 + sum_k f(t; s_k): occurrence m covers ticks
/// [start + m*period, start + m*period + width).
struct Shock {
  /// Sentinel period for non-cyclic (one-shot) shocks.
  static constexpr size_t kNonCyclic = 0;

  size_t keyword = 0;
  size_t period = kNonCyclic;  ///< t_p in ticks; 0 = one-shot
  size_t start = 0;            ///< t_s, first active tick
  size_t width = 1;            ///< t_w in ticks, >= 1

  /// The event's shared strength eps_0 (the single strength of the paper's
  /// single-sequence model). Future occurrences (forecasting) use this.
  double base_strength = 0.0;

  /// Per-occurrence strengths at the global level. Entries equal to
  /// `base_strength` are "default" and cost nothing extra under MDL;
  /// deviating entries are charged individually (mirroring the sparse
  /// s^(L) of Definition 6).
  std::vector<double> global_strengths;

  /// Occurrences x locations strengths (s^(L)); empty until LocalFit.
  /// Zero entries mean "no local reaction" and cost nothing under MDL.
  Matrix local_strengths;

  /// Number of occurrences within a horizon of `n_ticks` ticks.
  size_t NumOccurrences(size_t n_ticks) const;

  /// Occurrence index covering tick `t`, or kNpos when the shock is not
  /// active at `t`. Works for ticks beyond the training range (cyclic
  /// shocks keep recurring), which forecasting relies on.
  size_t OccurrenceIndexAt(size_t t) const;

  /// Global-level strength contribution at tick `t` (0 if inactive).
  /// Occurrences past the fitted range use `base_strength`, so a cyclic
  /// event keeps firing in forecasts.
  double GlobalStrengthAt(size_t t) const;

  /// Number of occurrences whose fitted strength deviates from
  /// `base_strength` (these are the individually MDL-charged entries).
  size_t DeviatingOccurrences() const;

  /// Local-level strength contribution at tick `t` for location `j`.
  /// Falls back to `GlobalStrengthAt` scaled by nothing if the local
  /// matrix is empty; occurrences beyond the matrix reuse that location's
  /// mean strength.
  double LocalStrengthAt(size_t t, size_t location) const;

  /// Mean of the fitted global strengths (0 if none).
  double MeanGlobalStrength() const;

  /// True for t_p != infinity.
  bool IsCyclic() const { return period != kNonCyclic; }

  /// Debug rendering, e.g. "shock(kw=0, t_s=28, t_w=3, t_p=104, k=6)".
  std::string ToString() const;
};

/// eps(t) = 1 + sum of global strengths of `shocks` belonging to `keyword`,
/// evaluated per tick over [0, n_ticks).
std::vector<double> BuildGlobalEpsilon(const std::vector<Shock>& shocks,
                                       size_t keyword, size_t n_ticks);

/// Local-level eps(t) for (keyword, location).
std::vector<double> BuildLocalEpsilon(const std::vector<Shock>& shocks,
                                      size_t keyword, size_t location,
                                      size_t n_ticks);

/// Builders into caller-owned storage (`*out` is resized to n_ticks and
/// fully overwritten, so its capacity is reused across calls). They sweep
/// occurrence windows instead of scanning every tick per shock; since each
/// tick receives at most one contribution per shock, the accumulated
/// values are bit-identical to the per-tick scan (which delegates here).
void BuildGlobalEpsilonInto(const std::vector<Shock>& shocks, size_t keyword,
                            size_t n_ticks, std::vector<double>* out);
void BuildLocalEpsilonInto(const std::vector<Shock>& shocks, size_t keyword,
                           size_t location, size_t n_ticks,
                           std::vector<double>* out);

/// Adds candidate occurrence strengths of one shock into an existing
/// epsilon schedule: occurrence m contributes `strengths[m]` over its
/// window (occurrences beyond `strengths.size()` contribute nothing).
/// Windowed counterpart of the per-tick `OccurrenceIndexAt` scan used by
/// LocalFit's coordinate descent, where the strengths under test live
/// outside the shock.
void AddOccurrenceStrengthsInto(const Shock& shock,
                                std::span<const double> strengths,
                                std::span<double> epsilon);

}  // namespace dspot

#endif  // DSPOT_CORE_SHOCK_H_
