#include "kernels/calendar.h"

namespace dspot {
namespace kernels {

CivilDay CivilFromDays(int64_t days_since_epoch) {
  // Hinnant's civil_from_days over 400-year eras, with the sign branch of
  // the era computation replaced by FloorDiv and the month/year fix-ups
  // expressed as 0-1 arithmetic.
  const int64_t z = days_since_epoch + 719468;  // shift epoch to 0000-03-01
  const int64_t era = FloorDiv(z, 146097);
  const int64_t doe = z - era * 146097;  // day-of-era, [0, 146096]
  const int64_t yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;  // [0, 399]
  const int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const int64_t mp = (5 * doy + 2) / 153;  // March-based month, [0, 11]
  const int64_t d = doy - (153 * mp + 2) / 5 + 1;              // [1, 31]
  const int64_t m = mp + 3 - 12 * (mp >= 10);                  // [1, 12]
  const int64_t y = yoe + era * 400 + (m <= 2);

  CivilDay out;
  out.year = y;
  out.month = static_cast<int32_t>(m);
  out.day = static_cast<int32_t>(d);
  out.yday = static_cast<int32_t>(days_since_epoch - DaysFromCivil(y, 1, 1));
  return out;
}

int64_t DaysFromCivil(int64_t year, int32_t month, int32_t day) {
  const int64_t y = year - (month <= 2);
  const int64_t era = FloorDiv(y, 400);
  const int64_t yoe = y - era * 400;  // [0, 399]
  const int64_t mp = month + 12 * (month <= 2) - 3;  // March-based, [0, 11]
  const int64_t doy = (153 * mp + 2) / 5 + day - 1;  // [0, 365]
  const int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + doe - 719468;
}

int64_t MonthIndexFromDays(int64_t days_since_epoch) {
  const CivilDay civil = CivilFromDays(days_since_epoch);
  return (civil.year - 1970) * 12 + (civil.month - 1);
}

int64_t YearFromDays(int64_t days_since_epoch) {
  return CivilFromDays(days_since_epoch).year;
}

}  // namespace kernels
}  // namespace dspot
