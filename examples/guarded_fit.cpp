// Guarded fit: run Δ-SPOT under a wall-clock budget and a cancellation
// token, and inspect the FitHealth report that explains how the fit ended.
//
// Three scenarios on the same synthetic tensor:
//   1. unguarded    — the baseline: fit to convergence
//   2. time budget  — a deadline far too small for a full fit; the call
//                     still returns OK, with the best partial model and
//                     health.termination == DeadlineExceeded
//   3. cancellation — a token cancelled from another thread; the call
//                     aborts with Status::Cancelled and no result
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/guarded_fit

#include <chrono>
#include <cstdio>
#include <thread>

#include "core/dspot.h"
#include "datagen/catalog.h"
#include "datagen/generator.h"
#include "guard/guard.h"

int main() {
  using namespace dspot;  // NOLINT: example brevity

  GeneratorConfig config = GoogleTrendsConfig();
  config.num_locations = 6;
  auto generated = GenerateTensor(TrendingKeywordSuite(), config);
  if (!generated.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  const ActivityTensor& tensor = generated->tensor;
  std::printf("Tensor: %zu keywords x %zu locations x %zu ticks\n\n",
              tensor.num_keywords(), tensor.num_locations(),
              tensor.num_ticks());

  // 1. Unguarded baseline.
  {
    DspotOptions options;
    auto fit = FitDspot(tensor, options);
    if (!fit.ok()) {
      std::fprintf(stderr, "fit failed: %s\n", fit.status().ToString().c_str());
      return 1;
    }
    std::printf("[unguarded]   %s\n", fit->health.ToString().c_str());
  }

  // 2. A deadline far smaller than the full fit needs. The result is the
  // best model reachable within the budget — usable for a preview, a
  // dashboard refresh, or a warm start for a later full fit.
  {
    DspotOptions options;
    options.time_budget_ms = 50.0;
    const auto t0 = std::chrono::steady_clock::now();
    auto fit = FitDspot(tensor, options);
    const double elapsed = ElapsedMs(t0);
    if (!fit.ok()) {
      std::fprintf(stderr, "fit failed: %s\n", fit.status().ToString().c_str());
      return 1;
    }
    std::printf("[50ms budget] %s (returned after %.0f ms)\n",
                fit->health.ToString().c_str(), elapsed);
    if (fit->health.interrupted()) {
      std::printf("              partial model: %zu keyword(s), "
                  "%zu shock(s) found so far\n",
                  fit->params.global.size(), fit->params.shocks.size());
    }
  }

  // 3. Cancellation from another thread: unlike a deadline, this aborts.
  {
    DspotOptions options;
    options.cancel = CancellationToken::Cancellable();
    std::thread canceller([token = options.cancel] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      token.Cancel();
    });
    auto fit = FitDspot(tensor, options);
    canceller.join();
    if (fit.ok()) {
      // Raced to completion before the token fired — possible on a very
      // fast machine, and perfectly fine.
      std::printf("[cancelled]   fit finished before the token fired\n");
    } else {
      std::printf("[cancelled]   status: %s\n",
                  fit.status().ToString().c_str());
    }
  }
  return 0;
}
