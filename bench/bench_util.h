#ifndef DSPOT_BENCH_BENCH_UTIL_H_
#define DSPOT_BENCH_BENCH_UTIL_H_

// Shared console-output helpers for the figure-reproduction benches:
// ASCII sparklines (so each "figure" is eyeballable in a terminal),
// calendar rendering for the weekly GoogleTrends-style time axis, and the
// machine-readable BENCH_<name>.json emitter the CI perf trajectory
// ingests.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "core/shock.h"
#include "timeseries/series.h"

namespace dspot {
namespace bench {

/// Peak resident set size of this process in bytes (0 where unavailable).
/// getrusage reports ru_maxrss in KiB on Linux and bytes on macOS; the
/// number is monotone over the process lifetime, so sampling it at export
/// time captures the high-water mark of the whole bench run.
inline double PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    return 0.0;
  }
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss);
#else
  return static_cast<double>(usage.ru_maxrss) * 1024.0;
#endif
#else
  return 0.0;
#endif
}

/// Machine-readable bench results: top-level scalar metrics plus an
/// optional array of per-configuration rows, written as one JSON document
/// ({"bench": ..., "metrics": {...}, "rows": [{...}, ...]}). Insertion
/// order is preserved so diffs between runs line up; non-finite values
/// are emitted as null (JSON has no NaN/inf).
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  void Set(const std::string& key, double value) {
    metrics_.emplace_back(key, Number(value));
  }
  void Set(const std::string& key, const std::string& value) {
    metrics_.emplace_back(key, Quote(value));
  }

  /// Starts a new row; subsequent SetRow calls fill it.
  void AddRow() { rows_.emplace_back(); }
  void SetRow(const std::string& key, double value) {
    rows_.back().emplace_back(key, Number(value));
  }
  void SetRow(const std::string& key, const std::string& value) {
    rows_.back().emplace_back(key, Quote(value));
  }

  /// Writes the document; complains on stderr and returns false on I/O
  /// failure (benches report but do not abort on a failed export).
  bool WriteTo(const std::string& path) const {
    std::ofstream os(path);
    if (!os) {
      std::fprintf(stderr, "bench json: cannot open %s\n", path.c_str());
      return false;
    }
    // Every exported document carries the process peak RSS, sampled at
    // export time, so the CI perf trajectory tracks memory alongside
    // wall-clock without each bench opting in.
    Fields metrics = metrics_;
    metrics.emplace_back("peak_rss_bytes", Number(PeakRssBytes()));
    os << "{\n  \"bench\": " << Quote(name_) << ",\n  \"metrics\": {";
    WriteFields(os, metrics, "    ");
    os << "  }";
    if (!rows_.empty()) {
      os << ",\n  \"rows\": [\n";
      for (size_t r = 0; r < rows_.size(); ++r) {
        os << "    {";
        WriteFields(os, rows_[r], "      ");
        os << "    }" << (r + 1 < rows_.size() ? "," : "") << "\n";
      }
      os << "  ]";
    }
    os << "\n}\n";
    os.flush();
    if (!os) {
      std::fprintf(stderr, "bench json: write failed: %s\n", path.c_str());
      return false;
    }
    return true;
  }

 private:
  using Fields = std::vector<std::pair<std::string, std::string>>;

  static std::string Number(double value) {
    if (!std::isfinite(value)) {
      return "null";
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.10g", value);
    return buf;
  }

  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
      }
      out += c;
    }
    out += '"';
    return out;
  }

  static void WriteFields(std::ofstream& os, const Fields& fields,
                          const char* indent) {
    os << "\n";
    for (size_t i = 0; i < fields.size(); ++i) {
      os << indent << Quote(fields[i].first) << ": " << fields[i].second
         << (i + 1 < fields.size() ? "," : "") << "\n";
    }
  }

  std::string name_;
  Fields metrics_;
  std::vector<Fields> rows_;
};

/// Renders `s` as a one-line ASCII sparkline of `columns` buckets
/// (max-pooled so narrow spikes stay visible).
inline std::string Sparkline(const Series& s, size_t columns = 96) {
  static const char kLevels[] = " .:-=+*#%@";
  constexpr size_t kNumLevels = sizeof(kLevels) - 2;  // last index
  if (s.empty()) {
    return "";
  }
  const double lo = std::min(0.0, s.MinValue());
  const double hi = std::max(s.MaxValue(), lo + 1e-9);
  std::string out;
  columns = std::min(columns, s.size());
  for (size_t c = 0; c < columns; ++c) {
    const size_t begin = c * s.size() / columns;
    const size_t end = std::max(begin + 1, (c + 1) * s.size() / columns);
    double bucket = 0.0;
    for (size_t t = begin; t < end && t < s.size(); ++t) {
      if (s.IsObserved(t)) bucket = std::max(bucket, s[t]);
    }
    const double frac = (bucket - lo) / (hi - lo);
    out += kLevels[static_cast<size_t>(frac * kNumLevels + 0.5)];
  }
  return out;
}

/// Prints an original/fitted sparkline pair with a label.
inline void PrintFitPair(const std::string& label, const Series& data,
                         const Series& estimate) {
  std::printf("%-18s data |%s|\n", label.c_str(),
              Sparkline(data).c_str());
  std::printf("%-18s fit  |%s|\n", "", Sparkline(estimate).c_str());
}

/// Week tick -> "YYYY-Mon" label on the paper's axis (tick 0 = Jan 2004,
/// 52 ticks per year).
inline std::string WeekToCalendar(size_t tick) {
  static const char* kMonths[] = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                                  "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};
  const size_t year = 2004 + tick / 52;
  const size_t week = tick % 52;
  const size_t month = std::min<size_t>(week * 12 / 52, 11);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%zu-%s", year, kMonths[month]);
  return buf;
}

/// Human description of a detected shock on the weekly calendar axis.
inline std::string DescribeEvent(const Shock& shock) {
  std::string out;
  if (shock.IsCyclic()) {
    const double years = static_cast<double>(shock.period) / 52.0;
    char buf[64];
    if (shock.period % 52 <= 2 || shock.period % 52 >= 50) {
      std::snprintf(buf, sizeof(buf), "every ~%.0f year(s)", years);
    } else {
      std::snprintf(buf, sizeof(buf), "every %zu weeks", shock.period);
    }
    out = std::string("cyclic (") + buf + ") from " +
          WeekToCalendar(shock.start);
  } else {
    out = "one-shot at " + WeekToCalendar(shock.start);
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                ", width %zu wk, strength %.2f, %zu occurrence(s)",
                shock.width, shock.base_strength,
                shock.global_strengths.size());
  out += buf;
  return out;
}

}  // namespace bench
}  // namespace dspot

#endif  // DSPOT_BENCH_BENCH_UTIL_H_
