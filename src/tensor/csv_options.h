#ifndef DSPOT_TENSOR_CSV_OPTIONS_H_
#define DSPOT_TENSOR_CSV_OPTIONS_H_

#include <cstddef>

namespace dspot {

/// Error policy shared by the CSV readers (tensor_io.h, event_log.h).
///
/// Strict mode (the default) fails the whole load on the first malformed
/// row with Status::InvalidArgument carrying "<path>:<line>: column <c>"
/// context, so a bad export is caught at the door instead of surfacing as
/// a mysterious fit result. Lenient mode (`skip_bad_rows`) drops
/// malformed rows, counts them, and loads the rest — for large organic
/// logs where a handful of mangled lines should not discard the dataset.
struct CsvReadOptions {
  /// Skip malformed rows instead of failing the load.
  bool skip_bad_rows = false;
  /// When non-null, receives the number of rows skipped. Always written
  /// (0 in strict mode or when nothing was skipped).
  size_t* skipped_rows = nullptr;
};

}  // namespace dspot

#endif  // DSPOT_TENSOR_CSV_OPTIONS_H_
