// Extension experiment: forecast-error degradation with horizon. The
// paper demonstrates long-range forecasting qualitatively (Fig. 11); this
// bench quantifies it — mean absolute forecast error per half-year bucket
// of the forecast horizon, for Δ-SPOT and the AR/TBATS baselines. A model
// that merely extrapolates recent history degrades fast; an event-aware
// model stays flat because it knows when the next spikes land.

#include <cstdio>

#include "baselines/ar.h"
#include "baselines/tbats.h"
#include "core/evaluation.h"
#include "datagen/catalog.h"
#include "datagen/generator.h"

namespace dspot {
namespace {

int Run() {
  std::printf("=== Extension — forecast error by horizon ('Grammy') ===\n\n");
  GeneratorConfig config = GoogleTrendsConfig();
  auto full = GenerateGlobalSequence(GrammyScenario(), config);
  if (!full.ok()) {
    std::fprintf(stderr, "generate: %s\n", full.status().ToString().c_str());
    return 1;
  }
  const size_t train_ticks = 400;
  const size_t bucket = 26;  // half a year

  auto dspot_result = TrainAndForecast(*full, train_ticks);
  if (!dspot_result.ok()) {
    std::fprintf(stderr, "dspot: %s\n",
                 dspot_result.status().ToString().c_str());
    return 1;
  }
  const Series train = full->Slice(0, train_ticks);
  const Series test = full->Slice(train_ticks, full->size());

  std::printf("%-10s", "horizon");
  const size_t buckets =
      dspot_result->test_quality.error_by_horizon.size();
  for (size_t b = 0; b < buckets; ++b) {
    std::printf("  %4zu-%-4zu", b * bucket, (b + 1) * bucket);
  }
  std::printf("\n%-10s", "Δ-SPOT");
  for (double e : dspot_result->test_quality.error_by_horizon) {
    std::printf("  %9.2f", e);
  }
  std::printf("\n");

  auto ar = ArModel::Fit(train, 50);
  if (ar.ok()) {
    const ForecastQuality q =
        EvaluateForecast(test, ar->Forecast(train, test.size()), bucket);
    std::printf("%-10s", "AR(50)");
    for (double e : q.error_by_horizon) {
      std::printf("  %9.2f", e);
    }
    std::printf("\n");
  }
  auto tbats = TbatsModel::Fit(train);
  if (tbats.ok()) {
    const ForecastQuality q =
        EvaluateForecast(test, tbats->Forecast(train, test.size()), bucket);
    std::printf("%-10s", "TBATS");
    for (double e : q.error_by_horizon) {
      std::printf("  %9.2f", e);
    }
    std::printf("\n");
  }
  std::printf("\nExpected shape: Δ-SPOT's error stays roughly flat across "
              "horizons (events keep firing on schedule); the baselines' "
              "error is dominated by every missed spike.\n");
  return 0;
}

}  // namespace
}  // namespace dspot

int main() { return dspot::Run(); }
