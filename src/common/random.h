#ifndef DSPOT_COMMON_RANDOM_H_
#define DSPOT_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace dspot {

/// SplitMix64 finalizer (Steele, Lea & Flood 2014): bijectively mixes a
/// 64-bit value so that consecutive inputs map to decorrelated outputs.
/// Used to derive independent child seeds for parallel tasks; see
/// Random::Child.
uint64_t SplitMix64(uint64_t x);

/// Deterministic, seedable random source used by the synthetic-data
/// generators and the randomized tests. Wraps std::mt19937_64 so every
/// experiment in the repository is reproducible from its seed.
///
/// THREAD SAFETY: a Random instance is single-threaded — concurrent draws
/// from one engine are a data race *and* make the stream depend on thread
/// interleaving, destroying reproducibility. Parallel code must never
/// share an engine; instead each task derives its own child generator
/// with Child(index), whose seed (`seed ^ SplitMix64(index)`) depends
/// only on the parent seed and the task index, never on scheduling order.
class Random {
 public:
  /// Constructs a generator from an explicit seed. The default seed is
  /// arbitrary but fixed, so default-constructed generators are
  /// reproducible too.
  explicit Random(uint64_t seed = 0x5eedcafeULL)
      : seed_(seed), engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal draw scaled to N(mean, stddev^2).
  double Gaussian(double mean = 0.0, double stddev = 1.0);

  /// Poisson draw with the given mean; returns 0 for non-positive means.
  int64_t Poisson(double mean);

  /// Bernoulli draw with probability `p` of returning true.
  bool Bernoulli(double p);

  /// Exponential draw with the given rate (lambda).
  double Exponential(double rate);

  /// A vector of `n` i.i.d. Gaussian draws.
  std::vector<double> GaussianVector(size_t n, double mean, double stddev);

  /// A child generator for parallel (or order-independent) task `index`,
  /// seeded with `seed ^ SplitMix64(index)`. Children of distinct indices
  /// are decorrelated, and a child's stream is a pure function of
  /// (parent seed, index) — independent of how many draws the parent or
  /// sibling tasks have consumed.
  Random Child(uint64_t index) const {
    return Random(seed_ ^ SplitMix64(index));
  }

  /// The seed this engine was constructed (or last Reset) with.
  uint64_t seed() const { return seed_; }

  /// Re-seeds the underlying engine.
  void Reset(uint64_t seed) {
    seed_ = seed;
    engine_.seed(seed);
  }

 private:
  uint64_t seed_;
  std::mt19937_64 engine_;
};

}  // namespace dspot

#endif  // DSPOT_COMMON_RANDOM_H_
