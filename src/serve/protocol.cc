#include "serve/protocol.h"

#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>

#include "snapshot/codec.h"

namespace dspot {

namespace {

/// Each values entry costs at least 8 payload bytes, so this bound is
/// loose but allocation-safe under the frame cap.
constexpr uint64_t kMaxValues = kServeMaxFrameBytes / 8;

/// A maximal forecast reply (kServeMaxForecastTicks values plus the fixed
/// header fields) must still fit one frame, or the engine could produce a
/// reply WriteFrame has to reject.
static_assert(kServeMaxForecastTicks * 8 + 4096 <= kServeMaxFrameBytes,
              "forecast cap exceeds the wire frame cap");

Status WriteFrame(const std::vector<uint8_t>& payload, std::ostream& out) {
  // Never emit a frame no reader will accept: a payload over the cap
  // would be rejected as DataLoss on the far side (and a length over
  // UINT32_MAX would silently truncate the prefix, desynchronizing the
  // whole stream).
  if (payload.size() > kServeMaxFrameBytes) {
    return Status::InvalidArgument(
        "serve frame: payload " + std::to_string(payload.size()) +
        " bytes exceeds cap " + std::to_string(kServeMaxFrameBytes) +
        "; frame not written");
  }
  ByteWriter prefix;
  prefix.PutU32(static_cast<uint32_t>(payload.size()));
  out.write(reinterpret_cast<const char*>(prefix.bytes().data()),
            static_cast<std::streamsize>(prefix.size()));
  out.write(reinterpret_cast<const char*>(payload.data()),
            static_cast<std::streamsize>(payload.size()));
  if (!out) {
    return Status::IoError("serve frame: short write");
  }
  return Status::Ok();
}

/// Reads one length-prefixed payload. false = clean EOF before the first
/// prefix byte; a partial prefix or short payload is DataLoss.
StatusOr<bool> ReadFrame(std::istream& in, const std::string& context,
                         std::vector<uint8_t>* payload) {
  uint8_t prefix[4];
  in.read(reinterpret_cast<char*>(prefix), sizeof(prefix));
  if (in.gcount() == 0 && in.eof()) {
    return false;
  }
  if (in.gcount() != static_cast<std::streamsize>(sizeof(prefix))) {
    return Status::DataLoss(context + ": truncated frame length prefix (" +
                            std::to_string(in.gcount()) + " of 4 bytes)");
  }
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<uint32_t>(prefix[i]) << (8 * i);
  }
  if (length > kServeMaxFrameBytes) {
    return Status::DataLoss(context + ": frame length " +
                            std::to_string(length) + " exceeds cap " +
                            std::to_string(kServeMaxFrameBytes) +
                            " (desynchronized stream?)");
  }
  payload->resize(length);
  in.read(reinterpret_cast<char*>(payload->data()),
          static_cast<std::streamsize>(length));
  if (in.gcount() != static_cast<std::streamsize>(length)) {
    return Status::DataLoss(context + ": truncated frame payload (" +
                            std::to_string(in.gcount()) + " of " +
                            std::to_string(length) + " bytes)");
  }
  return true;
}

Status CheckTag(ByteReader& r, uint32_t want, const char* kind) {
  DSPOT_ASSIGN_OR_RETURN(uint32_t tag, r.GetU32());
  if (tag != want) {
    return r.CorruptAt(std::string("bad ") + kind + " frame tag " +
                       std::to_string(tag) + " (want " + std::to_string(want) +
                       ")");
  }
  return Status::Ok();
}

void PutValues(ByteWriter& w, const std::vector<double>& values) {
  w.PutU64(values.size());
  for (double v : values) {
    w.PutDouble(v);
  }
}

Status GetValues(ByteReader& r, std::vector<double>* values) {
  DSPOT_ASSIGN_OR_RETURN(uint64_t n, r.GetCount(kMaxValues, "values count"));
  values->resize(static_cast<size_t>(n));
  for (size_t i = 0; i < n; ++i) {
    DSPOT_ASSIGN_OR_RETURN((*values)[i], r.GetDouble());
  }
  return Status::Ok();
}

}  // namespace

std::vector<uint8_t> EncodeRequestPayload(const ServeRequest& request) {
  ByteWriter w;
  w.PutU32(kServeRequestTag);
  w.PutU64(request.id);
  w.PutU32(static_cast<uint32_t>(request.op));
  w.PutString(request.keyword);
  w.PutU64(request.horizon);
  w.PutDouble(request.deadline_ms);
  PutValues(w, request.values);
  return std::move(w).TakeBytes();
}

std::vector<uint8_t> EncodeReplyPayload(const ServeReply& reply) {
  ByteWriter w;
  w.PutU32(kServeReplyTag);
  w.PutU64(reply.id);
  w.PutU32(static_cast<uint32_t>(reply.status.code()));
  w.PutString(reply.status.message());
  w.PutDouble(reply.rmse);
  w.PutDouble(reply.cost_bits);
  PutValues(w, reply.values);
  return std::move(w).TakeBytes();
}

StatusOr<ServeRequest> DecodeRequestPayload(const uint8_t* data, size_t size,
                                            const std::string& context) {
  ByteReader r(data, size, context);
  DSPOT_RETURN_IF_ERROR(CheckTag(r, kServeRequestTag, "request"));
  ServeRequest request;
  DSPOT_ASSIGN_OR_RETURN(request.id, r.GetU64());
  DSPOT_ASSIGN_OR_RETURN(uint32_t op, r.GetU32());
  if (ServeOpName(static_cast<ServeOp>(op)) == nullptr) {
    return r.InvalidAt("unknown serve op code " + std::to_string(op));
  }
  request.op = static_cast<ServeOp>(op);
  DSPOT_ASSIGN_OR_RETURN(request.keyword, r.GetString());
  DSPOT_ASSIGN_OR_RETURN(request.horizon, r.GetU64());
  DSPOT_ASSIGN_OR_RETURN(request.deadline_ms, r.GetDouble());
  // The deadline is an arbitrary f64 off the wire. A NaN, infinity, or
  // negative value must not reach deadline arming: NaN poisons every
  // comparison downstream, and a negative budget would silently alias
  // "use the server default" (the > 0 test) while the client believes it
  // set one.
  if (!std::isfinite(request.deadline_ms) || request.deadline_ms < 0.0) {
    return r.InvalidAt("deadline_ms " + std::to_string(request.deadline_ms) +
                       " is not a finite non-negative millisecond budget");
  }
  DSPOT_RETURN_IF_ERROR(GetValues(r, &request.values));
  if (r.remaining() != 0) {
    return r.CorruptAt(std::to_string(r.remaining()) +
                       " trailing bytes after request payload");
  }
  return request;
}

StatusOr<ServeReply> DecodeReplyPayload(const uint8_t* data, size_t size,
                                        const std::string& context) {
  ByteReader r(data, size, context);
  DSPOT_RETURN_IF_ERROR(CheckTag(r, kServeReplyTag, "reply"));
  ServeReply reply;
  DSPOT_ASSIGN_OR_RETURN(reply.id, r.GetU64());
  DSPOT_ASSIGN_OR_RETURN(uint32_t code, r.GetU32());
  if (code > static_cast<uint32_t>(StatusCode::kResourceExhausted)) {
    return r.InvalidAt("unknown status code " + std::to_string(code));
  }
  DSPOT_ASSIGN_OR_RETURN(std::string message, r.GetString());
  reply.status = Status(static_cast<StatusCode>(code), std::move(message));
  DSPOT_ASSIGN_OR_RETURN(reply.rmse, r.GetDouble());
  DSPOT_ASSIGN_OR_RETURN(reply.cost_bits, r.GetDouble());
  DSPOT_RETURN_IF_ERROR(GetValues(r, &reply.values));
  if (r.remaining() != 0) {
    return r.CorruptAt(std::to_string(r.remaining()) +
                       " trailing bytes after reply payload");
  }
  return reply;
}

Status ValidateTenantName(const std::string& tenant) {
  if (tenant.empty()) {
    return Status::InvalidArgument(
        "tenant name is empty (omit the handshake for the default tenant)");
  }
  if (tenant.size() > kServeMaxTenantBytes) {
    return Status::InvalidArgument(
        "tenant name is " + std::to_string(tenant.size()) +
        " bytes, exceeding the cap of " +
        std::to_string(kServeMaxTenantBytes));
  }
  for (size_t i = 0; i < tenant.size(); ++i) {
    const unsigned char c = static_cast<unsigned char>(tenant[i]);
    // Printable non-space ASCII only: tenant names become map keys, log
    // lines, and metrics labels, so control bytes and spaces are refused
    // rather than escaped.
    if (c <= 0x20 || c >= 0x7f) {
      return Status::InvalidArgument(
          "tenant name byte " + std::to_string(i) + " (0x" +
          std::to_string(static_cast<unsigned>(c)) +
          ") is not printable non-space ASCII");
    }
  }
  return Status::Ok();
}

std::vector<uint8_t> EncodeHelloPayload(const std::string& tenant) {
  ByteWriter w;
  w.PutU32(kServeHelloTag);
  w.PutU32(kServeHelloVersion);
  w.PutString(tenant);
  return std::move(w).TakeBytes();
}

StatusOr<std::string> DecodeHelloPayload(const uint8_t* data, size_t size,
                                         const std::string& context) {
  ByteReader r(data, size, context);
  DSPOT_RETURN_IF_ERROR(CheckTag(r, kServeHelloTag, "hello"));
  DSPOT_ASSIGN_OR_RETURN(uint32_t version, r.GetU32());
  if (version != kServeHelloVersion) {
    return r.InvalidAt("unsupported handshake version " +
                       std::to_string(version) + " (this build speaks " +
                       std::to_string(kServeHelloVersion) + ")");
  }
  DSPOT_ASSIGN_OR_RETURN(std::string tenant, r.GetString());
  Status valid = ValidateTenantName(tenant);
  if (!valid.ok()) {
    return r.InvalidAt(valid.message());
  }
  if (r.remaining() != 0) {
    return r.CorruptAt(std::to_string(r.remaining()) +
                       " trailing bytes after hello payload");
  }
  return tenant;
}

Status WriteHelloFrame(const std::string& tenant, std::ostream& out) {
  DSPOT_RETURN_IF_ERROR(ValidateTenantName(tenant));
  return WriteFrame(EncodeHelloPayload(tenant), out);
}

StatusOr<uint32_t> PeekPayloadTag(const uint8_t* data, size_t size,
                                  const std::string& context) {
  if (size < 4) {
    return Status::DataLoss(context + ": payload of " + std::to_string(size) +
                            " bytes is shorter than a frame tag");
  }
  uint32_t tag = 0;
  for (int i = 0; i < 4; ++i) {
    tag |= static_cast<uint32_t>(data[i]) << (8 * i);
  }
  return tag;
}

FrameAssembler::FrameAssembler(std::string context)
    : context_(std::move(context)) {}

void FrameAssembler::Append(const uint8_t* data, size_t n) {
  // Compact once the consumed prefix dominates the buffer, so a
  // long-lived connection's memory stays proportional to its largest
  // in-flight frame rather than its whole history.
  if (pos_ > 4096 && pos_ * 2 >= buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(pos_));
    consumed_ += pos_;
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

StatusOr<bool> FrameAssembler::Next(std::vector<uint8_t>* payload) {
  if (!poison_.ok()) {
    return poison_;
  }
  if (buf_.size() - pos_ < 4) {
    return false;
  }
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<uint32_t>(buf_[pos_ + static_cast<size_t>(i)])
              << (8 * i);
  }
  if (length > kServeMaxFrameBytes) {
    // Beyond this point no byte boundary can be trusted; poison the
    // stream instead of resynchronizing on garbage.
    poison_ = Status::DataLoss(
        context_ + ": byte " + std::to_string(stream_offset()) +
        ": frame length " + std::to_string(length) + " exceeds cap " +
        std::to_string(kServeMaxFrameBytes) + " (desynchronized stream?)");
    return poison_;
  }
  if (buf_.size() - pos_ - 4 < length) {
    return false;
  }
  payload->assign(buf_.begin() + static_cast<ptrdiff_t>(pos_ + 4),
                  buf_.begin() + static_cast<ptrdiff_t>(pos_ + 4 + length));
  pos_ += 4 + static_cast<size_t>(length);
  return true;
}

Status WriteRequestFrame(const ServeRequest& request, std::ostream& out) {
  return WriteFrame(EncodeRequestPayload(request), out);
}

Status WriteReplyFrame(const ServeReply& reply, std::ostream& out) {
  return WriteFrame(EncodeReplyPayload(reply), out);
}

StatusOr<bool> ReadRequestFrame(std::istream& in, const std::string& context,
                                ServeRequest* out) {
  std::vector<uint8_t> payload;
  DSPOT_ASSIGN_OR_RETURN(bool have, ReadFrame(in, context, &payload));
  if (!have) {
    return false;
  }
  DSPOT_ASSIGN_OR_RETURN(*out, DecodeRequestPayload(payload.data(),
                                                    payload.size(), context));
  return true;
}

StatusOr<bool> ReadReplyFrame(std::istream& in, const std::string& context,
                              ServeReply* out) {
  std::vector<uint8_t> payload;
  DSPOT_ASSIGN_OR_RETURN(bool have, ReadFrame(in, context, &payload));
  if (!have) {
    return false;
  }
  DSPOT_ASSIGN_OR_RETURN(*out, DecodeReplyPayload(payload.data(),
                                                  payload.size(), context));
  return true;
}

}  // namespace dspot
