// Property sweeps for the forecasting baselines: AR stability and order
// sweeps, TBATS across periods/harmonics. These guard the Fig. 9/11
// comparisons — a broken baseline would flatter Δ-SPOT.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "baselines/ar.h"
#include "baselines/tbats.h"
#include "common/random.h"
#include "timeseries/metrics.h"

namespace dspot {
namespace {

/// AR(order) fit on a stable AR(2) process: residual variance close to the
/// innovation variance for any order >= 2 (higher orders must not blow up).
class ArOrderSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(ArOrderSweep, ResidualsNearInnovationVariance) {
  const size_t order = GetParam();
  Random rng(101);
  Series s(1500);
  s[0] = 0.0;
  s[1] = 0.0;
  for (size_t t = 2; t < s.size(); ++t) {
    s[t] = 0.6 * s[t - 1] - 0.2 * s[t - 2] + rng.Gaussian(0.0, 1.0);
  }
  auto model = ArModel::Fit(s, order);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  const Series pred = model->PredictInSample(s);
  // Compare from tick `order` on (earlier ticks just echo the data).
  const double rmse = Rmse(s.Slice(order, s.size()), pred.Slice(order, s.size()));
  EXPECT_GT(rmse, 0.8);   // cannot beat the innovation noise
  EXPECT_LT(rmse, 1.25);  // and must get close to it
}

INSTANTIATE_TEST_SUITE_P(Orders, ArOrderSweep,
                         ::testing::Values(2, 4, 8, 16, 32));

/// AR forecasts of a stationary process must not diverge over long
/// horizons, whatever the fitted order.
class ArForecastStability : public ::testing::TestWithParam<size_t> {};

TEST_P(ArForecastStability, LongHorizonStaysBounded) {
  const size_t order = GetParam();
  Random rng(202);
  Series s(800);
  for (size_t t = 1; t < s.size(); ++t) {
    s[t] = 5.0 + 0.7 * (s[t - 1] - 5.0) + rng.Gaussian(0.0, 0.5);
  }
  auto model = ArModel::Fit(s, order);
  ASSERT_TRUE(model.ok());
  const Series f = model->Forecast(s, 500);
  for (size_t h = 0; h < f.size(); ++h) {
    ASSERT_TRUE(std::isfinite(f[h])) << "horizon " << h;
    ASSERT_LT(std::fabs(f[h]), 100.0) << "horizon " << h;
  }
  // The tail converges toward the process mean.
  EXPECT_NEAR(f[499], 5.0, 1.5);
}

INSTANTIATE_TEST_SUITE_P(Orders, ArForecastStability,
                         ::testing::Values(1, 8, 26, 50));

/// TBATS across seasonal periods and harmonic counts: in-sample residual
/// well below the seasonal amplitude, forecast phase preserved.
class TbatsSweep
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(TbatsSweep, TracksAndExtendsSeasonality) {
  const auto [period, harmonics] = GetParam();
  Series s(period * 8);
  for (size_t t = 0; t < s.size(); ++t) {
    const double phase =
        2.0 * M_PI * static_cast<double>(t) / static_cast<double>(period);
    s[t] = 40.0 + 8.0 * std::sin(phase) + 3.0 * std::cos(2.0 * phase);
  }
  TbatsConfig config;
  config.period = period;
  config.harmonics = harmonics;
  auto model = TbatsModel::Fit(s, config);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  const Series pred = model->PredictInSample(s);
  EXPECT_LT(Rmse(s.Slice(2 * period, s.size()),
                 pred.Slice(2 * period, s.size())),
            4.0);
  // One-period forecast keeps the waveform.
  const Series f = model->Forecast(s, period);
  Series expected(period);
  for (size_t h = 0; h < period; ++h) {
    const size_t t = s.size() + h;
    const double phase =
        2.0 * M_PI * static_cast<double>(t) / static_cast<double>(period);
    expected[h] = 40.0 + 8.0 * std::sin(phase) + 3.0 * std::cos(2.0 * phase);
  }
  EXPECT_LT(Rmse(expected, f), 5.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TbatsSweep,
    ::testing::Combine(::testing::Values(12u, 24u, 52u),
                       ::testing::Values(2u, 3u, 5u)));

}  // namespace
}  // namespace dspot
