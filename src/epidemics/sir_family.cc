#include "epidemics/sir_family.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "optimize/levenberg_marquardt.h"
#include "timeseries/metrics.h"

namespace dspot {

namespace {

/// Shared residual builder: model I(t) minus data, skipping missing ticks.
template <typename Simulate>
Status ResidualsFor(const Series& data, const Simulate& simulate,
                    std::vector<double>* out) {
  const Series est = simulate();
  out->clear();
  out->reserve(data.size());
  for (size_t t = 0; t < data.size(); ++t) {
    if (!data.IsObserved(t)) continue;
    out->push_back(est[t] - data[t]);
  }
  return Status::Ok();
}

constexpr int kMinObserved = 8;

/// Initial guesses shared by the family: population scaled off the peak,
/// a handful of (beta, delta) starting pairs.
struct Start {
  double beta;
  double delta;
  double gamma;
};

const Start kStarts[] = {
    {0.3, 0.1, 0.05}, {0.6, 0.4, 0.2}, {0.9, 0.7, 0.5}, {0.2, 0.5, 0.1}};

}  // namespace

Series SimulateSi(const SiParams& params, size_t n_ticks) {
  Series out(n_ticks);
  const double n = std::max(params.population, 1e-9);
  double s = std::max(n - params.i0, 0.0);
  double i = std::min(params.i0, n);
  for (size_t t = 0; t < n_ticks; ++t) {
    out[t] = i;
    const double flow = std::min(params.beta * (s / n) * i, s);
    s -= flow;
    i += flow;
  }
  return out;
}

Series SimulateSir(const SirParams& params, size_t n_ticks) {
  Series out(n_ticks);
  const double n = std::max(params.population, 1e-9);
  double s = std::max(n - params.i0, 0.0);
  double i = std::min(params.i0, n);
  for (size_t t = 0; t < n_ticks; ++t) {
    out[t] = i;
    const double infect = std::min(params.beta * (s / n) * i, s);
    const double recover = std::min(params.delta, 1.0) * i;
    s -= infect;
    i += infect - recover;
    i = std::max(i, 0.0);
  }
  return out;
}

Series SimulateSirs(const SirsParams& params, size_t n_ticks) {
  Series out(n_ticks);
  const double n = std::max(params.population, 1e-9);
  double s = std::max(n - params.i0, 0.0);
  double i = std::min(params.i0, n);
  double v = 0.0;
  for (size_t t = 0; t < n_ticks; ++t) {
    out[t] = i;
    const double infect = std::min(params.beta * (s / n) * i, s);
    const double recover = std::min(params.delta, 1.0) * i;
    const double wane = std::min(params.gamma, 1.0) * v;
    s += wane - infect;
    i += infect - recover;
    v += recover - wane;
    s = std::max(s, 0.0);
    i = std::max(i, 0.0);
    v = std::max(v, 0.0);
  }
  return out;
}

StatusOr<SiFit> FitSi(const Series& data) {
  if (data.observed_count() < kMinObserved) {
    return Status::InvalidArgument("FitSi: too few observations");
  }
  const size_t n_ticks = data.size();
  const double peak = std::max(data.MaxValue(), 1.0);

  auto residual_fn = [&](const std::vector<double>& p,
                         std::vector<double>* r) -> Status {
    SiParams params{p[0], p[1], p[2]};
    return ResidualsFor(
        data, [&] { return SimulateSi(params, n_ticks); }, r);
  };
  Bounds bounds;
  bounds.lower = {peak * 1.05, 1e-6, 1e-6};
  bounds.upper = {peak * 100.0, 5.0, peak};

  SiFit best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const Start& start : kStarts) {
    std::vector<double> init = {peak * 2.0, start.beta, 1.0};
    auto fit_or = LevenbergMarquardt(residual_fn, init, bounds);
    if (!fit_or.ok()) continue;
    if (fit_or->final_cost < best_cost) {
      best_cost = fit_or->final_cost;
      best.params = {fit_or->params[0], fit_or->params[1], fit_or->params[2]};
      best.info.lm_iterations = fit_or->iterations;
    }
  }
  if (!std::isfinite(best_cost)) {
    return Status::NumericalError("FitSi: all starts failed");
  }
  best.info.rmse = Rmse(data, SimulateSi(best.params, n_ticks));
  return best;
}

StatusOr<SirFit> FitSir(const Series& data) {
  if (data.observed_count() < kMinObserved) {
    return Status::InvalidArgument("FitSir: too few observations");
  }
  const size_t n_ticks = data.size();
  const double peak = std::max(data.MaxValue(), 1.0);

  auto residual_fn = [&](const std::vector<double>& p,
                         std::vector<double>* r) -> Status {
    SirParams params{p[0], p[1], p[2], p[3]};
    return ResidualsFor(
        data, [&] { return SimulateSir(params, n_ticks); }, r);
  };
  Bounds bounds;
  bounds.lower = {peak * 1.05, 1e-6, 1e-6, 1e-6};
  bounds.upper = {peak * 100.0, 5.0, 1.0, peak};

  SirFit best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const Start& start : kStarts) {
    std::vector<double> init = {peak * 2.0, start.beta, start.delta, 1.0};
    auto fit_or = LevenbergMarquardt(residual_fn, init, bounds);
    if (!fit_or.ok()) continue;
    if (fit_or->final_cost < best_cost) {
      best_cost = fit_or->final_cost;
      best.params = {fit_or->params[0], fit_or->params[1], fit_or->params[2],
                     fit_or->params[3]};
      best.info.lm_iterations = fit_or->iterations;
    }
  }
  if (!std::isfinite(best_cost)) {
    return Status::NumericalError("FitSir: all starts failed");
  }
  best.info.rmse = Rmse(data, SimulateSir(best.params, n_ticks));
  return best;
}

StatusOr<SirsFit> FitSirs(const Series& data) {
  if (data.observed_count() < kMinObserved) {
    return Status::InvalidArgument("FitSirs: too few observations");
  }
  const size_t n_ticks = data.size();
  const double peak = std::max(data.MaxValue(), 1.0);

  auto residual_fn = [&](const std::vector<double>& p,
                         std::vector<double>* r) -> Status {
    SirsParams params{p[0], p[1], p[2], p[3], p[4]};
    return ResidualsFor(
        data, [&] { return SimulateSirs(params, n_ticks); }, r);
  };
  Bounds bounds;
  bounds.lower = {peak * 1.05, 1e-6, 1e-6, 1e-6, 1e-6};
  bounds.upper = {peak * 100.0, 5.0, 1.0, 1.0, peak};

  SirsFit best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const Start& start : kStarts) {
    std::vector<double> init = {peak * 2.0, start.beta, start.delta,
                                start.gamma, 1.0};
    auto fit_or = LevenbergMarquardt(residual_fn, init, bounds);
    if (!fit_or.ok()) continue;
    if (fit_or->final_cost < best_cost) {
      best_cost = fit_or->final_cost;
      best.params = {fit_or->params[0], fit_or->params[1], fit_or->params[2],
                     fit_or->params[3], fit_or->params[4]};
      best.info.lm_iterations = fit_or->iterations;
    }
  }
  if (!std::isfinite(best_cost)) {
    return Status::NumericalError("FitSirs: all starts failed");
  }
  best.info.rmse = Rmse(data, SimulateSirs(best.params, n_ticks));
  return best;
}

}  // namespace dspot
