#ifndef DSPOT_CORE_SHOCK_DETECTION_H_
#define DSPOT_CORE_SHOCK_DETECTION_H_

#include <cstddef>
#include <vector>

#include "core/shock.h"
#include "timeseries/peaks.h"
#include "timeseries/series.h"

namespace dspot {

/// Candidate-shock proposal (the discrete half of the circular dependency
/// Section 4.2.1 describes: a good base fit needs shocks filtered out, a
/// good shock filter needs a base fit). Given the residual of the current
/// model, this module proposes a small set of shock hypotheses anchored at
/// the strongest burst; GLOBALFIT then scores each under MDL.

struct ShockDetectionOptions {
  /// Burst extraction on the residual.
  BurstOptions burst_options;
  /// Cyclic hypotheses: minimum admissible period and how far bursts may
  /// drift from the exact cycle grid and still count as aligned.
  size_t min_period = 4;
  size_t alignment_tolerance = 2;
  /// A period is proposed only if at least this many bursts align with it.
  size_t min_aligned_bursts = 2;
  /// Cap on the number of period hypotheses per anchor burst.
  size_t max_period_candidates = 4;
  /// Reject period hypotheses with more occurrences than this. External
  /// events are rare (annual/biennial/quadrennial in the paper); a dense
  /// comb that fires every few ticks is a level effect masquerading as an
  /// event (it would shadow the growth term) or plain noise fitting.
  size_t max_occurrences = 16;
  /// Disables cyclic hypotheses entirely (ablation D2).
  bool allow_cyclic = true;
};

/// Proposes candidate shocks for keyword `keyword` from `residual`
/// (data minus current estimate): always the one-shot shock at the
/// strongest burst, plus one cyclic hypothesis per period that aligns
/// enough bursts with the anchor. Candidate strengths are left at zero —
/// the caller fits them. Returns an empty vector when the residual has no
/// bursts.
std::vector<Shock> ProposeShockCandidates(
    const Series& residual, size_t keyword,
    const ShockDetectionOptions& options = ShockDetectionOptions());

}  // namespace dspot

#endif  // DSPOT_CORE_SHOCK_DETECTION_H_
