#ifndef DSPOT_DURABLE_DURABLE_FILE_H_
#define DSPOT_DURABLE_DURABLE_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/statusor.h"

namespace dspot {

/// dspot_durable's lowest layer: a small POSIX file-descriptor wrapper
/// that makes the failure semantics of every durable write explicit.
///
/// The rest of the library used to write files through bare std::ofstream,
/// which has two crash problems the codec CRCs cannot fix:
///
///  1. No fsync: a "successful" save could sit entirely in the page cache
///     and vanish in a power loss.
///  2. In-place truncation: opening the destination path truncates it
///     first, so a crash *during* a save destroys the previous good file —
///     exactly the file that was supposed to rescue the restart.
///
/// DurableFile addresses (1) with an explicit Sync() that callers place
/// according to their FsyncPolicy, and AtomicWriteFile addresses (2) with
/// the classic temp -> fsync -> rename -> fsync-directory sequence: the
/// destination path always names either the complete old file or the
/// complete new file, never a prefix of either.
///
/// Every fallible syscall is threaded through the dspot_guard
/// FaultInjector (kIoShortWrite / kIoNoSpace / kIoFsyncFailure /
/// kIoRenameFailure), so tests exercise the short-write continuation,
/// retry exhaustion, and rename unwind paths deterministically instead of
/// hoping a real disk misbehaves on cue.

/// When the write-ahead log calls fsync. Checkpoints and AtomicWriteFile
/// always sync regardless of this policy — it governs only the WAL append
/// hot path.
enum class FsyncPolicy : uint8_t {
  /// Never fsync appends. Records survive a process kill (the page cache
  /// outlives the process) but not a power loss. The fastest option and
  /// the right one when the stream source can replay.
  kNever = 0,
  /// Fsync at flush markers and checkpoints: a completed Flush() is
  /// durable, appends since the last flush may be lost on power failure.
  kOnFlush,
  /// Fsync every N records (N = DurableOptions::fsync_every_n; N = 1 makes
  /// every acknowledged append durable). The bounded-loss knob.
  kEveryN,
};

const char* FsyncPolicyName(FsyncPolicy policy);

/// Bounded retry-with-backoff for transient write failures (EINTR retries
/// immediately and does not count; EAGAIN/ENOSPC and injected faults count
/// an attempt and back off exponentially). fsync failures are never
/// retried: after a failed fsync the kernel may already have dropped the
/// dirty pages, so retrying would report durability that does not exist.
struct RetryPolicy {
  int max_attempts = 4;      ///< total tries per write call
  int backoff_us = 100;      ///< sleep before retry k is backoff_us << (k-1)
};

/// Test-only crash hook: when set, invoked at named points inside the
/// durable I/O path ("file.write", "file.partial", "atomic.tmp_written",
/// "atomic.tmp_synced", "atomic.renamed"). The crash-kill harness installs
/// a hook that raises SIGKILL at the n-th invocation, turning "the process
/// died mid-checkpoint, between the rename and the directory sync" into a
/// deterministic test case. Must not be set concurrently with I/O.
using DurableCrashHook = void (*)(const char* point);
void SetDurableCrashHook(DurableCrashHook hook);

/// Invokes the installed crash hook, if any (internal + test use).
void DurableCrashPoint(const char* point);

/// An append-only file handle. Move-only; the destructor closes the fd
/// (without syncing — callers that need durability call Sync first).
class DurableFile {
 public:
  DurableFile() = default;
  ~DurableFile();
  DurableFile(DurableFile&& other) noexcept;
  DurableFile& operator=(DurableFile&& other) noexcept;
  DurableFile(const DurableFile&) = delete;
  DurableFile& operator=(const DurableFile&) = delete;

  /// Opens (creating if needed) for appending; writes go to the current
  /// end of file. `size()` reports the size observed at open time plus
  /// bytes written through this handle.
  static StatusOr<DurableFile> OpenAppend(const std::string& path,
                                          const RetryPolicy& retry);

  /// Creates or truncates `path` for writing from scratch.
  static StatusOr<DurableFile> CreateTruncate(const std::string& path,
                                              const RetryPolicy& retry);

  /// Writes all `n` bytes, looping over partial writes and retrying
  /// transient failures per the RetryPolicy. On failure some prefix of the
  /// bytes may have reached the file — append-only formats recover via
  /// their framing (the WAL truncates at the last valid CRC frame).
  Status WriteAll(const void* data, size_t n);

  /// fsync(2). Fails without retry (see RetryPolicy comment).
  Status Sync();

  /// Closes the fd, reporting the close error if any. Idempotent.
  Status Close();

  bool is_open() const { return fd_ >= 0; }
  uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  DurableFile(int fd, std::string path, uint64_t size, RetryPolicy retry)
      : fd_(fd), path_(std::move(path)), size_(size), retry_(retry) {}

  int fd_ = -1;
  std::string path_;
  uint64_t size_ = 0;
  RetryPolicy retry_;
};

/// Writes `n` bytes to `path` atomically: <path>.tmp.<pid> -> WriteAll ->
/// fsync -> rename -> fsync parent directory. On any failure the temp
/// file is removed and the destination is untouched — a crashed or failed
/// save can never leave a truncated file where a good one stood.
Status AtomicWriteFile(const std::string& path, const void* data, size_t n,
                       const RetryPolicy& retry = RetryPolicy());

/// fsyncs a directory so a rename/creation inside it is durable.
Status SyncDir(const std::string& dir);

/// Truncates `path` to `new_size` bytes and fsyncs it (crash recovery
/// uses this to drop a torn WAL tail).
Status TruncateFile(const std::string& path, uint64_t new_size);

/// The directory component of `path` ("." when there is none).
std::string DirOf(const std::string& path);

}  // namespace dspot

#endif  // DSPOT_DURABLE_DURABLE_FILE_H_
