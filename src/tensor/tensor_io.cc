#include "tensor/tensor_io.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <tuple>
#include <vector>

#include "durable/durable_file.h"

namespace dspot {

namespace {

/// Formats `v` with the fewest digits (15 or 17 significant) that parse
/// back to exactly the same double, so CSV save -> load is value-exact.
std::string FormatValue(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.15g", v);
  if (std::strtod(buf, nullptr) != v) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

/// Splits a CSV line on commas. No quoting support: labels in this library
/// are simple identifiers.
std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream is(line);
  while (std::getline(is, field, ',')) {
    out.push_back(field);
  }
  // Trailing comma yields a final empty field.
  if (!line.empty() && line.back() == ',') {
    out.push_back("");
  }
  return out;
}

/// True iff `end` points at nothing but trailing whitespace: a field like
/// "1.5abc" must be rejected, not silently coerced to 1.5.
bool FullyConsumed(const char* end) {
  while (*end == ' ' || *end == '\t' || *end == '\r') ++end;
  return *end == '\0';
}

StatusOr<double> ParseValue(const std::string& field) {
  if (field.empty() || field == "NaN" || field == "nan") {
    return kMissingValue;
  }
  char* end = nullptr;
  const double v = std::strtod(field.c_str(), &end);
  if (end == field.c_str() || !FullyConsumed(end)) {
    return Status::InvalidArgument("unparseable numeric field '" + field +
                                   "'");
  }
  return v;
}

StatusOr<size_t> ParseIndex(const std::string& field) {
  char* end = nullptr;
  const long long v = std::strtoll(field.c_str(), &end, 10);
  if (end == field.c_str() || !FullyConsumed(end) || v < 0) {
    return Status::InvalidArgument("unparseable index field '" + field + "'");
  }
  return static_cast<size_t>(v);
}

/// "<path>:<line>: column <column>: <what>" — enough context to fix the
/// offending row with a text editor. Columns are 1-based.
Status RowError(const std::string& path, size_t line_no, size_t column,
                const std::string& what) {
  return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                 ": column " + std::to_string(column) + ": " +
                                 what);
}

}  // namespace

Status SaveTensorCsv(const ActivityTensor& tensor, const std::string& path) {
  // Rendered in memory and written atomically (temp + rename), so a
  // failed export never leaves a truncated CSV where a good one stood.
  std::ostringstream os;
  os << "keyword,location,tick,value\n";
  for (size_t i = 0; i < tensor.num_keywords(); ++i) {
    for (size_t j = 0; j < tensor.num_locations(); ++j) {
      for (size_t t = 0; t < tensor.num_ticks(); ++t) {
        const double v = tensor.at(i, j, t);
        // Missing cells are written as explicit "NaN" rows: omitting them
        // would let a loader fill them with zero and would shrink the tick
        // dimension whenever the trailing ticks are all missing.
        os << tensor.keywords()[i] << ',' << tensor.locations()[j] << ',' << t
           << ',' << (IsMissing(v) ? "NaN" : FormatValue(v)) << '\n';
      }
    }
  }
  const std::string text = os.str();
  return AtomicWriteFile(path, text.data(), text.size());
}

StatusOr<ActivityTensor> LoadTensorCsv(const std::string& path,
                                       bool fill_absent_with_zero,
                                       const CsvReadOptions& read_options) {
  size_t skipped = 0;
  if (read_options.skipped_rows) *read_options.skipped_rows = 0;
  std::ifstream is(path);
  if (!is) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::string line;
  if (!std::getline(is, line)) {
    return Status::IoError("empty file: " + path);
  }
  // Records in file order; dimensions discovered on the fly.
  struct Record {
    size_t keyword;
    size_t location;
    size_t tick;
    double value;
  };
  std::vector<Record> records;
  std::vector<std::string> keywords;
  std::vector<std::string> locations;
  std::map<std::string, size_t> keyword_index;
  std::map<std::string, size_t> location_index;
  size_t max_tick = 0;
  size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::vector<std::string> fields = SplitCsvLine(line);
    if (fields.size() != 4) {
      if (read_options.skip_bad_rows) {
        ++skipped;
        continue;
      }
      return RowError(path, line_no, fields.size() < 4 ? fields.size() + 1 : 5,
                      "expected 4 fields, got " +
                          std::to_string(fields.size()));
    }
    // Parse the numeric fields *before* interning labels, so a malformed
    // (skipped) row cannot leak a phantom keyword or location into the
    // tensor's label sets.
    Record rec;
    StatusOr<size_t> tick_or = ParseIndex(fields[2]);
    if (!tick_or.ok()) {
      if (read_options.skip_bad_rows) {
        ++skipped;
        continue;
      }
      return RowError(path, line_no, 3, tick_or.status().message());
    }
    rec.tick = tick_or.value();
    StatusOr<double> value_or = ParseValue(fields[3]);
    if (!value_or.ok()) {
      if (read_options.skip_bad_rows) {
        ++skipped;
        continue;
      }
      return RowError(path, line_no, 4, value_or.status().message());
    }
    rec.value = value_or.value();
    auto [kit, kinserted] =
        keyword_index.emplace(fields[0], keywords.size());
    if (kinserted) keywords.push_back(fields[0]);
    rec.keyword = kit->second;
    auto [lit, linserted] =
        location_index.emplace(fields[1], locations.size());
    if (linserted) locations.push_back(fields[1]);
    rec.location = lit->second;
    max_tick = std::max(max_tick, rec.tick);
    records.push_back(rec);
  }
  if (read_options.skipped_rows) *read_options.skipped_rows = skipped;
  if (records.empty()) {
    return Status::IoError("no data rows in " + path);
  }
  ActivityTensor tensor(keywords.size(), locations.size(), max_tick + 1);
  if (!fill_absent_with_zero) {
    for (size_t i = 0; i < tensor.num_keywords(); ++i) {
      for (size_t j = 0; j < tensor.num_locations(); ++j) {
        for (size_t t = 0; t < tensor.num_ticks(); ++t) {
          tensor.at(i, j, t) = kMissingValue;
        }
      }
    }
  }
  for (size_t i = 0; i < keywords.size(); ++i) {
    DSPOT_RETURN_IF_ERROR(tensor.SetKeywordName(i, keywords[i]));
  }
  for (size_t j = 0; j < locations.size(); ++j) {
    DSPOT_RETURN_IF_ERROR(tensor.SetLocationName(j, locations[j]));
  }
  for (const Record& rec : records) {
    tensor.at(rec.keyword, rec.location, rec.tick) = rec.value;
  }
  return tensor;
}

Status SaveSeriesCsv(const Series& series, const std::string& path) {
  std::ostringstream os;
  os << "tick,value\n";
  for (size_t t = 0; t < series.size(); ++t) {
    os << t << ',';
    if (series.IsObserved(t)) {
      os << FormatValue(series[t]);
    } else {
      os << "NaN";
    }
    os << '\n';
  }
  const std::string text = os.str();
  return AtomicWriteFile(path, text.data(), text.size());
}

StatusOr<Series> LoadSeriesCsv(const std::string& path,
                               const CsvReadOptions& read_options) {
  size_t skipped = 0;
  if (read_options.skipped_rows) *read_options.skipped_rows = 0;
  std::ifstream is(path);
  if (!is) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::string line;
  if (!std::getline(is, line)) {
    return Status::IoError("empty file: " + path);
  }
  std::vector<std::pair<size_t, double>> rows;
  size_t max_tick = 0;
  size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::vector<std::string> fields = SplitCsvLine(line);
    if (fields.size() != 2) {
      if (read_options.skip_bad_rows) {
        ++skipped;
        continue;
      }
      return RowError(path, line_no, fields.size() < 2 ? fields.size() + 1 : 3,
                      "expected 2 fields, got " +
                          std::to_string(fields.size()));
    }
    StatusOr<size_t> tick_or = ParseIndex(fields[0]);
    if (!tick_or.ok()) {
      if (read_options.skip_bad_rows) {
        ++skipped;
        continue;
      }
      return RowError(path, line_no, 1, tick_or.status().message());
    }
    StatusOr<double> value_or = ParseValue(fields[1]);
    if (!value_or.ok()) {
      if (read_options.skip_bad_rows) {
        ++skipped;
        continue;
      }
      return RowError(path, line_no, 2, value_or.status().message());
    }
    max_tick = std::max(max_tick, tick_or.value());
    rows.emplace_back(tick_or.value(), value_or.value());
  }
  if (read_options.skipped_rows) *read_options.skipped_rows = skipped;
  if (rows.empty()) {
    return Status::IoError("no data rows in " + path);
  }
  Series s(max_tick + 1);
  for (double& v : s.mutable_values()) {
    v = kMissingValue;
  }
  for (const auto& [tick, value] : rows) {
    s[tick] = value;
  }
  return s;
}

}  // namespace dspot
