#include "timeseries/peaks.h"

#include <algorithm>
#include <cmath>

namespace dspot {

std::vector<Burst> FindBursts(const Series& residual,
                              const BurstOptions& options) {
  const size_t n = residual.size();
  // Threshold from the positive residual mass only: negative residuals are
  // fitting artifacts, not burst evidence.
  std::vector<double> positive;
  positive.reserve(n);
  for (size_t t = 0; t < n; ++t) {
    if (residual.IsObserved(t)) {
      positive.push_back(std::max(residual[t], 0.0));
    }
  }
  if (positive.empty()) {
    return {};
  }
  const double mu = Mean(positive);
  const double sd = StdDev(positive);
  const double enter = mu + options.threshold_sigmas * std::max(sd, 1e-12);
  const double sustain = enter * options.sustain_fraction;

  std::vector<Burst> bursts;
  size_t t = 0;
  while (t < n) {
    if (!residual.IsObserved(t) || residual[t] < enter) {
      ++t;
      continue;
    }
    Burst b;
    b.start = t;
    b.peak = t;
    b.peak_value = residual[t];
    b.mass = 0.0;
    size_t end = t;
    while (end < n && residual.IsObserved(end) && residual[end] >= sustain &&
           end - b.start < options.max_width) {
      b.mass += residual[end];
      if (residual[end] > b.peak_value) {
        b.peak_value = residual[end];
        b.peak = end;
      }
      ++end;
    }
    b.width = std::max(end - b.start, options.min_width);
    if (b.width >= options.min_width) {
      bursts.push_back(b);
    }
    t = end + 1;
  }
  std::sort(bursts.begin(), bursts.end(), [](const Burst& a, const Burst& b) {
    return a.peak_value > b.peak_value;
  });
  if (bursts.size() > options.max_bursts) {
    bursts.resize(options.max_bursts);
  }
  return bursts;
}

bool HasBurstNear(const std::vector<Burst>& bursts, size_t t,
                  size_t tolerance) {
  for (const Burst& b : bursts) {
    const size_t lo = b.start > tolerance ? b.start - tolerance : 0;
    const size_t hi = b.start + b.width + tolerance;
    if (t >= lo && t < hi) {
      return true;
    }
  }
  return false;
}

}  // namespace dspot
