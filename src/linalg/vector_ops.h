#ifndef DSPOT_LINALG_VECTOR_OPS_H_
#define DSPOT_LINALG_VECTOR_OPS_H_

#include <cstddef>
#include <span>
#include <vector>

namespace dspot {

/// Free-function helpers over std::vector<double>, used by the optimizers.
/// All binary operations assert equal sizes. The span overloads are the
/// primitives; the vector overloads delegate to them, so both flavors run
/// the exact same floating-point loop.

/// Dot product.
double Dot(std::span<const double> a, std::span<const double> b);
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean norm.
double Norm2(std::span<const double> v);
double Norm2(const std::vector<double>& v);

/// Infinity norm (max |v_i|).
double NormInf(std::span<const double> v);
double NormInf(const std::vector<double>& v);

/// a + b.
std::vector<double> Add(const std::vector<double>& a,
                        const std::vector<double>& b);

/// a - b.
std::vector<double> Sub(const std::vector<double>& a,
                        const std::vector<double>& b);

/// s * v.
std::vector<double> Scaled(const std::vector<double>& v, double s);

/// a += s * b (axpy), in place.
void Axpy(double s, const std::vector<double>& b, std::vector<double>* a);

/// Sum of squares of v.
double SumSquares(std::span<const double> v);
double SumSquares(const std::vector<double>& v);

}  // namespace dspot

#endif  // DSPOT_LINALG_VECTOR_OPS_H_
