#ifndef DSPOT_SNAPSHOT_UPDATE_H_
#define DSPOT_SNAPSHOT_UPDATE_H_

#include <cstddef>
#include <vector>

#include "common/statusor.h"
#include "core/dspot.h"
#include "snapshot/snapshot.h"
#include "tensor/activity_tensor.h"

namespace dspot {

/// Incremental model update: absorb newly arrived ticks into a previously
/// fitted (snapshot-loaded) model without re-running the full MDL search.
///
/// The loaded model's shock schedule is treated as a cache: every keyword
/// is warm-refit from its previous parameters, and *new* shock detection
/// runs only for keywords where the residual-burst detector fires on the
/// appended window — i.e. where the old model demonstrably fails to
/// explain the new data. Quiet keywords keep their shock inventory
/// (occurrence strengths and base parameters are still re-optimized over
/// the extended range).
struct UpdateOptions {
  /// Underlying fit knobs (threads, guard budget, coding model, ...).
  /// `fit.warm_start` is ignored — UpdateFit supplies its own seed.
  DspotOptions fit;
  /// The appended-window burst test: a tick bursts when its absolute
  /// residual against the old model's extrapolation exceeds
  /// `burst_threshold` x the RMS residual of the old (already-explained)
  /// range.
  double burst_threshold = 4.0;
  /// Number of bursting appended ticks required to trigger full shock
  /// re-detection for a keyword (>= 1; single-tick glitches are cheaper
  /// to absorb as noise than as an event).
  size_t min_burst_ticks = 2;
};

struct UpdateResult {
  DspotResult result;
  /// Per keyword: true iff the burst detector fired and full shock
  /// re-detection ran (false = cached schedule reused).
  std::vector<bool> redetected;
  /// Ticks appended beyond the snapshot's training range.
  size_t appended_ticks = 0;
};

/// Refits `model` on `tensor`, whose leading `model.params.num_ticks`
/// ticks are the data the model was originally fit on and whose tail is
/// newly appended. The tensor must span at least as many ticks as the
/// model and carry the same keyword/location counts (InvalidArgument
/// otherwise). With zero appended ticks this is a plain warm refit.
StatusOr<UpdateResult> UpdateFit(const ModelSnapshot& model,
                                 const ActivityTensor& tensor,
                                 const UpdateOptions& options = {});

/// Concatenates `extra`'s ticks directly after `base`'s. Keyword and
/// location labels must match position for position (InvalidArgument
/// names the first mismatch otherwise).
///
/// `extra_first_tick` declares where `extra`'s tick 0 belongs on `base`'s
/// tick axis. The only valid placement is `base.num_ticks()` — exactly one
/// past the existing range; anything smaller means `extra` re-delivers
/// ticks `base` already holds (duplicate/out-of-order timestamps) and
/// anything larger leaves an unobserved gap, both rejected with a located
/// InvalidArgument instead of silently mis-stitching the time axis.
/// Passing `kNpos` (the default) asserts the caller already normalized
/// `extra` to start directly after `base` (the historical contract of
/// relative-tick append files).
StatusOr<ActivityTensor> ConcatTicks(const ActivityTensor& base,
                                     const ActivityTensor& extra,
                                     size_t extra_first_tick = kNpos);

}  // namespace dspot

#endif  // DSPOT_SNAPSHOT_UPDATE_H_
