// Tests for src/guard: deadlines, cancellation tokens, fit-health
// reports, the deterministic fault injector, and how the LM / Nelder-Mead
// solvers behave under each guard signal and injected fault.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <thread>
#include <vector>

#include "guard/fault_injector.h"
#include "guard/guard.h"
#include "optimize/levenberg_marquardt.h"
#include "optimize/nelder_mead.h"

namespace dspot {
namespace {

// The injector is process-global: every test that arms it must disarm it,
// and a stale armed state from a buggy test must not poison its
// neighbors. The fixture guarantees both directions.
class GuardTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Instance().Disarm(); }
  void TearDown() override { FaultInjector::Instance().Disarm(); }
};

// ---------------------------------------------------------------------------
// Deadline

TEST_F(GuardTest, DefaultDeadlineIsInfinite) {
  Deadline d;
  EXPECT_FALSE(d.armed());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(std::isinf(d.remaining_ms()));
  EXPECT_FALSE(Deadline::Infinite().armed());
}

TEST_F(GuardTest, NonPositiveBudgetIsAlreadyExpired) {
  EXPECT_TRUE(Deadline::AfterMillis(0.0).expired());
  EXPECT_TRUE(Deadline::AfterMillis(-5.0).expired());
  EXPECT_LE(Deadline::AfterMillis(-5.0).remaining_ms(), 0.0);
}

TEST_F(GuardTest, GenerousBudgetIsNotExpired) {
  Deadline d = Deadline::AfterMillis(1e7);
  EXPECT_TRUE(d.armed());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_ms(), 0.0);
}

TEST_F(GuardTest, ExplicitInstantInThePastIsExpired) {
  const auto past =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  EXPECT_TRUE(Deadline::At(past).expired());
}

// ---------------------------------------------------------------------------
// CancellationToken

TEST_F(GuardTest, DefaultTokenIsInertAndCancelIsANoOp) {
  CancellationToken token;
  EXPECT_FALSE(token.armed());
  EXPECT_FALSE(token.cancelled());
  token.Cancel();  // must not crash or change anything
  EXPECT_FALSE(token.cancelled());
}

TEST_F(GuardTest, CancellableTokenCopiesShareTheFlag) {
  CancellationToken token = CancellationToken::Cancellable();
  CancellationToken copy = token;
  EXPECT_TRUE(token.armed());
  EXPECT_FALSE(token.cancelled());
  copy.Cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(copy.cancelled());
}

TEST_F(GuardTest, CancelFromAnotherThreadIsVisible) {
  CancellationToken token = CancellationToken::Cancellable();
  std::thread other([token] { token.Cancel(); });
  other.join();
  EXPECT_TRUE(token.cancelled());
}

// ---------------------------------------------------------------------------
// GuardContext

TEST_F(GuardTest, InactiveContextChecksOk) {
  GuardContext guard;
  EXPECT_FALSE(guard.active());
  EXPECT_TRUE(guard.Check("test").ok());
}

TEST_F(GuardTest, ExpiredDeadlineChecksDeadlineExceededWithContext) {
  GuardContext guard;
  guard.deadline = Deadline::AfterMillis(-1.0);
  EXPECT_TRUE(guard.active());
  Status status = guard.Check("MyCheckpoint");
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(status.message().find("MyCheckpoint"), std::string::npos);
}

TEST_F(GuardTest, CancellationBeatsDeadline) {
  GuardContext guard;
  guard.deadline = Deadline::AfterMillis(-1.0);
  guard.cancel = CancellationToken::Cancellable();
  guard.cancel.Cancel();
  EXPECT_EQ(guard.Check("test").code(), StatusCode::kCancelled);
}

TEST_F(GuardTest, InjectedDeadlineExpiryFiresWithoutWallTime) {
  FaultInjector::Instance().ArmExact(FaultSite::kDeadlineExpiry, 0);
  GuardContext guard;  // inactive, but the injected expiry still fires
  EXPECT_EQ(guard.Check("test").code(), StatusCode::kDeadlineExceeded);
  // The exact draw was consumed: later checks pass again.
  EXPECT_TRUE(guard.Check("test").ok());
}

// ---------------------------------------------------------------------------
// FitHealth

TEST_F(GuardTest, HealthMergeAddsCountersAndKeepsWorstTermination) {
  FitHealth a;
  a.iterations = 3;
  a.restarts = 1;
  a.wall_time_ms = 10.0;
  a.termination = FitTermination::kDeadlineExceeded;
  FitHealth b;
  b.iterations = 4;
  b.wall_time_ms = 2.5;
  b.termination = FitTermination::kMaxIterations;
  b.Merge(a);
  EXPECT_EQ(b.iterations, 7);
  EXPECT_EQ(b.restarts, 1);
  EXPECT_DOUBLE_EQ(b.wall_time_ms, 12.5);
  EXPECT_EQ(b.termination, FitTermination::kDeadlineExceeded);
  // Merging a milder report back does not downgrade the termination.
  FitHealth mild;
  b.Merge(mild);
  EXPECT_EQ(b.termination, FitTermination::kDeadlineExceeded);
}

TEST_F(GuardTest, HealthInterruptedFlagsOnlyGuardTerminations) {
  FitHealth h;
  EXPECT_FALSE(h.interrupted());
  h.termination = FitTermination::kStalled;
  EXPECT_FALSE(h.interrupted());
  h.termination = FitTermination::kDeadlineExceeded;
  EXPECT_TRUE(h.interrupted());
  h.termination = FitTermination::kCancelled;
  EXPECT_TRUE(h.interrupted());
}

TEST_F(GuardTest, HealthToStringNamesTheTermination) {
  FitHealth h;
  h.termination = FitTermination::kDeadlineExceeded;
  h.iterations = 12;
  EXPECT_NE(h.ToString().find("DeadlineExceeded"), std::string::npos);
  EXPECT_STREQ(FitTerminationName(FitTermination::kCancelled), "Cancelled");
}

// ---------------------------------------------------------------------------
// FaultInjector

TEST_F(GuardTest, DisarmedInjectorNeverFires) {
  EXPECT_FALSE(FaultInjector::Instance().armed());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(MaybeInjectFault(FaultSite::kNanAtResidual));
  }
}

TEST_F(GuardTest, RateOneFiresEveryDrawRateZeroNever) {
  FaultInjector& injector = FaultInjector::Instance();
  injector.Arm(/*seed=*/7, /*rate=*/1.0);
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(injector.ShouldFire(FaultSite::kSolverFailure));
  }
  injector.Arm(/*seed=*/7, /*rate=*/0.0);
  for (int i = 0; i < 16; ++i) {
    EXPECT_FALSE(injector.ShouldFire(FaultSite::kSolverFailure));
  }
  EXPECT_TRUE(injector.armed());  // armed at rate 0 still counts draws
  EXPECT_EQ(injector.draws(FaultSite::kSolverFailure), 16u);
  EXPECT_EQ(injector.fired(FaultSite::kSolverFailure), 0u);
}

TEST_F(GuardTest, ArmExactFiresExactlyTheNthDraw) {
  FaultInjector& injector = FaultInjector::Instance();
  injector.ArmExact(FaultSite::kAllocation, /*nth=*/2);
  EXPECT_FALSE(injector.ShouldFire(FaultSite::kAllocation));
  EXPECT_FALSE(injector.ShouldFire(FaultSite::kAllocation));
  EXPECT_TRUE(injector.ShouldFire(FaultSite::kAllocation));
  EXPECT_FALSE(injector.ShouldFire(FaultSite::kAllocation));
  EXPECT_EQ(injector.fired(FaultSite::kAllocation), 1u);
}

TEST_F(GuardTest, FiringSequenceIsAPureFunctionOfTheSeed) {
  FaultInjector& injector = FaultInjector::Instance();
  auto draw_sequence = [&](uint64_t seed) {
    injector.Arm(seed, /*rate=*/0.5);
    std::vector<bool> fires;
    for (int i = 0; i < 64; ++i) {
      fires.push_back(injector.ShouldFire(FaultSite::kNanAtResidual));
    }
    return fires;
  };
  const std::vector<bool> run1 = draw_sequence(42);
  const std::vector<bool> run2 = draw_sequence(42);
  EXPECT_EQ(run1, run2);
  EXPECT_NE(run1, draw_sequence(43));
}

TEST_F(GuardTest, ArmSiteLeavesOtherSitesDisarmed) {
  FaultInjector& injector = FaultInjector::Instance();
  injector.ArmSite(FaultSite::kNanAtResidual, /*seed=*/1, /*rate=*/1.0);
  EXPECT_TRUE(injector.ShouldFire(FaultSite::kNanAtResidual));
  EXPECT_FALSE(injector.ShouldFire(FaultSite::kSolverFailure));
  EXPECT_FALSE(injector.ShouldFire(FaultSite::kDeadlineExpiry));
}

TEST_F(GuardTest, DisarmResetsEverything) {
  FaultInjector& injector = FaultInjector::Instance();
  injector.Arm(/*seed=*/9, /*rate=*/1.0);
  (void)injector.ShouldFire(FaultSite::kAllocation);
  injector.Disarm();
  EXPECT_FALSE(injector.armed());
  EXPECT_FALSE(injector.ShouldFire(FaultSite::kAllocation));
  EXPECT_EQ(injector.draws(FaultSite::kAllocation), 0u);
  EXPECT_EQ(injector.fired(FaultSite::kAllocation), 0u);
}

TEST_F(GuardTest, SeedFromEnvParsesOrFallsBack) {
  ASSERT_EQ(::setenv("DSPOT_FAULT_SEED", "12345", 1), 0);
  EXPECT_EQ(FaultInjector::SeedFromEnv(7), 12345u);
  ASSERT_EQ(::setenv("DSPOT_FAULT_SEED", "not-a-number", 1), 0);
  EXPECT_EQ(FaultInjector::SeedFromEnv(7), 7u);
  ASSERT_EQ(::unsetenv("DSPOT_FAULT_SEED"), 0);
  EXPECT_EQ(FaultInjector::SeedFromEnv(7), 7u);
}

TEST_F(GuardTest, FaultSiteNamesAreStable) {
  EXPECT_STREQ(FaultSiteName(FaultSite::kNanAtResidual), "NanAtResidual");
  EXPECT_STREQ(FaultSiteName(FaultSite::kDeadlineExpiry), "DeadlineExpiry");
}

// ---------------------------------------------------------------------------
// Levenberg-Marquardt under guards and faults

// A benign 2-parameter least-squares problem: r = p - (3, -2). The solver
// reaches the optimum in a couple of iterations, so guard behavior — not
// optimization difficulty — decides each test's outcome.
ResidualFn QuadraticResidual() {
  return [](const std::vector<double>& p, std::vector<double>* r) {
    r->assign({p[0] - 3.0, p[1] + 2.0});
    return Status::Ok();
  };
}

TEST_F(GuardTest, LmUnguardedConverges) {
  auto result = LevenbergMarquardt(QuadraticResidual(), {0.0, 0.0});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->health.termination, FitTermination::kConverged);
  EXPECT_EQ(result->health.restarts, 0);
  EXPECT_NEAR(result->params[0], 3.0, 1e-6);
  EXPECT_NEAR(result->params[1], -2.0, 1e-6);
}

TEST_F(GuardTest, LmExpiredDeadlineReturnsBestSoFarAsOk) {
  LmOptions options;
  options.guard.deadline = Deadline::AfterMillis(-1.0);
  auto result = LevenbergMarquardt(QuadraticResidual(), {0.0, 0.0},
                                   Bounds(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->health.termination, FitTermination::kDeadlineExceeded);
  // No iteration ran, so the "best so far" is the initial point.
  ASSERT_EQ(result->params.size(), 2u);
  EXPECT_TRUE(std::isfinite(result->params[0]));
  EXPECT_TRUE(std::isfinite(result->final_cost));
}

TEST_F(GuardTest, LmCancellationAbortsWithStatus) {
  LmOptions options;
  options.guard.cancel = CancellationToken::Cancellable();
  options.guard.cancel.Cancel();
  auto result = LevenbergMarquardt(QuadraticResidual(), {0.0, 0.0},
                                   Bounds(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST_F(GuardTest, LmInjectedDeadlineExpiryUnwindsWithoutWallTime) {
  FaultInjector::Instance().ArmExact(FaultSite::kDeadlineExpiry, 0);
  auto result = LevenbergMarquardt(QuadraticResidual(), {0.0, 0.0});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->health.termination, FitTermination::kDeadlineExceeded);
}

TEST_F(GuardTest, LmNanAtInitialCostRecoversViaRestart) {
  FaultInjector::Instance().ArmExact(FaultSite::kNanAtResidual, 0);
  auto result = LevenbergMarquardt(QuadraticResidual(), {0.0, 0.0});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result->health.restarts, 1);
  EXPECT_EQ(result->health.termination, FitTermination::kConverged);
  EXPECT_NEAR(result->params[0], 3.0, 1e-6);
  EXPECT_NEAR(result->params[1], -2.0, 1e-6);
}

TEST_F(GuardTest, LmRestartRecoveryIsDeterministic) {
  auto run = [] {
    FaultInjector::Instance().ArmExact(FaultSite::kNanAtResidual, 0);
    auto result = LevenbergMarquardt(QuadraticResidual(), {0.0, 0.0});
    FaultInjector::Instance().Disarm();
    return result;
  };
  auto a = run();
  auto b = run();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Bit-identical, not merely close: restarts draw their jitter from
  // Random(restart_seed).Child(attempt), a pure function of the options.
  EXPECT_EQ(a->params, b->params);
  EXPECT_EQ(a->final_cost, b->final_cost);
  EXPECT_EQ(a->health.restarts, b->health.restarts);
}

TEST_F(GuardTest, LmNanWithRestartsDisabledIsACleanNumericalError) {
  FaultInjector::Instance().ArmExact(FaultSite::kNanAtResidual, 0);
  LmOptions options;
  options.max_restarts = 0;  // pre-guard behavior
  auto result = LevenbergMarquardt(QuadraticResidual(), {0.0, 0.0},
                                   Bounds(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNumericalError);
}

TEST_F(GuardTest, LmInjectedSolverFailureClimbsLambdaAndStillConverges) {
  FaultInjector::Instance().ArmExact(FaultSite::kSolverFailure, 0);
  auto result = LevenbergMarquardt(QuadraticResidual(), {0.0, 0.0});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NEAR(result->params[0], 3.0, 1e-6);
  for (double v : result->params) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST_F(GuardTest, LmInjectedAllocationFailureIsACleanInternalError) {
  FaultInjector::Instance().ArmExact(FaultSite::kAllocation, 0);
  auto result = LevenbergMarquardt(QuadraticResidual(), {0.0, 0.0});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("injected"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Nelder-Mead under guards

double Paraboloid(const std::vector<double>& p) {
  return (p[0] - 1.0) * (p[0] - 1.0) + (p[1] + 4.0) * (p[1] + 4.0);
}

TEST_F(GuardTest, NelderMeadUnguardedConverges) {
  auto result = NelderMead(Paraboloid, {0.0, 0.0});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->health.termination, FitTermination::kConverged);
  EXPECT_NEAR(result->params[0], 1.0, 1e-4);
}

TEST_F(GuardTest, NelderMeadExpiredDeadlineReturnsBestVertexAsOk) {
  NelderMeadOptions options;
  options.guard.deadline = Deadline::AfterMillis(-1.0);
  auto result = NelderMead(Paraboloid, {0.0, 0.0}, Bounds(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->health.termination, FitTermination::kDeadlineExceeded);
  ASSERT_EQ(result->params.size(), 2u);
  EXPECT_TRUE(std::isfinite(result->final_value));
}

TEST_F(GuardTest, NelderMeadCancellationAbortsWithStatus) {
  NelderMeadOptions options;
  options.guard.cancel = CancellationToken::Cancellable();
  options.guard.cancel.Cancel();
  auto result = NelderMead(Paraboloid, {0.0, 0.0}, Bounds(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST_F(GuardTest, NelderMeadInjectedDeadlineExpiryUnwinds) {
  FaultInjector::Instance().ArmExact(FaultSite::kDeadlineExpiry, 0);
  auto result = NelderMead(Paraboloid, {0.0, 0.0});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->health.termination, FitTermination::kDeadlineExceeded);
}

}  // namespace
}  // namespace dspot
