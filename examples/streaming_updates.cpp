// Streaming walkthrough: online services receive new ticks continuously.
// Instead of refitting from scratch each week, RefitGlobalSequence warm-
// starts from the previous model, extends cyclic events over the new
// range, and runs a short alternation — much cheaper, and the event
// inventory stays stable across updates.
//
// Demonstrates: FitGlobalSequence (cold), RefitGlobalSequence (warm),
// stability of the detected events, cost of each update.

#include <chrono>
#include <cstdio>

#include "core/global_fit.h"
#include "datagen/catalog.h"
#include "datagen/generator.h"

int main() {
  using namespace dspot;  // NOLINT: example brevity
  using Clock = std::chrono::steady_clock;

  // Full history: 11 years of an annual event.
  GeneratorConfig config = GoogleTrendsConfig();
  auto full = GenerateGlobalSequence(GrammyScenario(), config);
  if (!full.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 full.status().ToString().c_str());
    return 1;
  }

  // Cold fit on the first 6 years.
  const size_t initial_ticks = 312;
  auto t0 = Clock::now();
  auto model = FitGlobalSequence(full->Slice(0, initial_ticks), 0, 1);
  auto t1 = Clock::now();
  if (!model.ok()) {
    std::fprintf(stderr, "cold fit failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }
  std::printf("cold fit on %zu ticks: %.2fs, RMSE %.2f, %zu event(s)\n",
              initial_ticks,
              std::chrono::duration<double>(t1 - t0).count(), model->rmse,
              model->shocks.size());

  // Stream in the remaining years, one year at a time.
  for (size_t end = initial_ticks + 52; end <= full->size(); end += 52) {
    const Series history = full->Slice(0, end);
    t0 = Clock::now();
    auto updated = RefitGlobalSequence(history, 0, 1, *model);
    t1 = Clock::now();
    if (!updated.ok()) {
      std::fprintf(stderr, "refit failed: %s\n",
                   updated.status().ToString().c_str());
      return 1;
    }
    model = std::move(updated);
    std::printf("  +1 year -> %4zu ticks: %.2fs, RMSE %.2f, %zu event(s)\n",
                end, std::chrono::duration<double>(t1 - t0).count(),
                model->rmse, model->shocks.size());
  }

  std::printf("\nfinal event inventory after streaming updates:\n");
  for (const Shock& shock : model->shocks) {
    std::printf("  %s\n", shock.ToString().c_str());
  }
  std::printf("\nThe annual event persists across every update, with its "
              "occurrence list extended as new years arrive.\n");
  return 0;
}
