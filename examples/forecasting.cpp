// Forecasting walkthrough (Section 6 of the paper): train Δ-SPOT on part
// of a sequence with a recurring event and forecast years ahead — then
// compare against the AR and TBATS baselines shipped with this library.
//
// Demonstrates: train/test splitting, FitDspotSingle, ForecastGlobal,
// ArModel, TbatsModel, RMSE scoring.

#include <cstdio>

#include "baselines/ar.h"
#include "baselines/tbats.h"
#include "core/dspot.h"
#include "datagen/catalog.h"
#include "datagen/generator.h"
#include "timeseries/metrics.h"

int main() {
  using namespace dspot;  // NOLINT: example brevity

  // "Grammy": an annual February spike, 11 years of weekly data.
  GeneratorConfig config = GoogleTrendsConfig();
  auto full = GenerateGlobalSequence(GrammyScenario(), config);
  if (!full.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 full.status().ToString().c_str());
    return 1;
  }

  // Train on the first 400 ticks (~7.7 years), forecast the rest.
  const Series train = full->Slice(0, 400);
  const Series test = full->Slice(400, full->size());
  std::printf("training on %zu ticks, forecasting %zu ticks\n\n",
              train.size(), test.size());

  // Δ-SPOT: fit, then simply run the fitted dynamical system forward —
  // cyclic shocks keep recurring.
  auto fit = FitDspotSingle(train);
  if (!fit.ok()) {
    std::fprintf(stderr, "fit failed: %s\n", fit.status().ToString().c_str());
    return 1;
  }
  auto forecast = ForecastGlobal(fit->params, /*keyword=*/0, test.size());
  if (!forecast.ok()) {
    std::fprintf(stderr, "forecast failed: %s\n",
                 forecast.status().ToString().c_str());
    return 1;
  }
  std::printf("%-12s forecast RMSE %8.3f\n", "Δ-SPOT", Rmse(test, *forecast));

  // AR baselines with the paper's regression orders.
  for (size_t order : {8u, 26u, 50u}) {
    auto ar = ArModel::Fit(train, order);
    if (!ar.ok()) continue;
    std::printf("AR(%-2zu)       forecast RMSE %8.3f\n", order,
                Rmse(test, ar->Forecast(train, test.size())));
  }

  // TBATS-style trigonometric exponential smoothing.
  auto tbats = TbatsModel::Fit(train);
  if (tbats.ok()) {
    std::printf("%-12s forecast RMSE %8.3f (period %zu)\n", "TBATS",
                Rmse(test, tbats->Forecast(train, test.size())),
                tbats->period());
  }

  // Where does Δ-SPOT say the next event lands?
  std::printf("\nnext predicted spikes (forecast ticks where the fitted "
              "events fire):\n  ");
  for (const Shock& shock : fit->params.shocks) {
    if (!shock.IsCyclic()) continue;
    for (size_t t = 400; t < 400 + test.size(); ++t) {
      if (shock.OccurrenceIndexAt(t) != kNpos &&
          (t == 400 || shock.OccurrenceIndexAt(t - 1) == kNpos)) {
        std::printf("tick %zu  ", t);
      }
    }
  }
  std::printf("\n");
  return 0;
}
