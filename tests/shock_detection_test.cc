// Unit tests for src/core/shock_detection: candidate proposal from
// residual bursts.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/shock_detection.h"

namespace dspot {
namespace {

/// A residual with bursts at the given starts (each `width` ticks tall).
Series ResidualWithBursts(size_t n, const std::vector<size_t>& starts,
                          size_t width = 2, double height = 50.0) {
  Series r(n);
  for (size_t s : starts) {
    for (size_t w = 0; w < width && s + w < n; ++w) {
      r[s + w] = height;
    }
  }
  return r;
}

TEST(ShockDetection, EmptyResidualYieldsNoCandidates) {
  EXPECT_TRUE(ProposeShockCandidates(Series(100), 0).empty());
}

TEST(ShockDetection, SingleBurstYieldsOneShot) {
  Series r = ResidualWithBursts(200, {80});
  auto candidates = ProposeShockCandidates(r, 3);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].keyword, 3u);
  EXPECT_FALSE(candidates[0].IsCyclic());
  EXPECT_EQ(candidates[0].start, 80u);
  EXPECT_EQ(candidates[0].global_strengths.size(), 1u);
}

TEST(ShockDetection, PeriodicBurstsYieldCyclicHypothesis) {
  Series r = ResidualWithBursts(260, {6, 58, 110, 162, 214});
  auto candidates = ProposeShockCandidates(r, 0);
  bool found_52 = false;
  for (const Shock& c : candidates) {
    if (c.IsCyclic() && c.period >= 50 && c.period <= 54) {
      found_52 = true;
      EXPECT_LE(c.start, 8u);
      EXPECT_EQ(c.global_strengths.size(), c.NumOccurrences(260));
    }
  }
  EXPECT_TRUE(found_52);
}

TEST(ShockDetection, CyclicDisabledByOption) {
  Series r = ResidualWithBursts(260, {6, 58, 110, 162, 214});
  ShockDetectionOptions options;
  options.allow_cyclic = false;
  auto candidates = ProposeShockCandidates(r, 0, options);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_FALSE(candidates[0].IsCyclic());
}

TEST(ShockDetection, MixedTrainsDoNotAlign) {
  // Two interleaved trains 18 ticks apart; hypotheses for the anchor train
  // must not claim the other train's bursts (drift > tolerance).
  Series r = ResidualWithBursts(300, {20, 124, 228}, 2, 100.0);
  Series other = ResidualWithBursts(300, {38, 142, 246}, 2, 40.0);
  for (size_t t = 0; t < 300; ++t) {
    r[t] = std::max(r[t], other[t]);
  }
  auto candidates = ProposeShockCandidates(r, 0);
  bool found_104 = false;
  for (const Shock& c : candidates) {
    if (c.IsCyclic() && c.period == 104) {
      found_104 = true;
      EXPECT_EQ(c.start, 20u);
    }
  }
  EXPECT_TRUE(found_104);
}

TEST(ShockDetection, RespectsMinPeriod) {
  // Bursts 3 apart: below min_period, so only the one-shot remains.
  Series r = ResidualWithBursts(100, {40, 43, 46}, 1, 80.0);
  ShockDetectionOptions options;
  options.min_period = 10;
  auto candidates = ProposeShockCandidates(r, 0, options);
  for (const Shock& c : candidates) {
    if (c.IsCyclic()) {
      EXPECT_GE(c.period, 10u);
    }
  }
}

TEST(ShockDetection, CandidateCountBounded) {
  // Rich burst structure: at most 1 + max_period_candidates proposals.
  Series r = ResidualWithBursts(520, {6, 58, 110, 162, 214, 266, 318, 370});
  ShockDetectionOptions options;
  options.max_period_candidates = 2;
  auto candidates = ProposeShockCandidates(r, 0, options);
  EXPECT_LE(candidates.size(), 3u);
}

TEST(ShockDetection, DegenerateMinPeriodDoesNotCrash) {
  // min_period 0 used to let period-0/1 hypotheses through to the cycle
  // scorer, where CycleDrift computed `gap % 0` (undefined behavior) or
  // aligned every burst with every other. The scorer must skip them and
  // still return well-formed candidates.
  Series r = ResidualWithBursts(120, {10, 11, 12, 40, 41, 70, 71}, 1, 80.0);
  ShockDetectionOptions options;
  options.min_period = 0;
  auto candidates = ProposeShockCandidates(r, 0, options);
  ASSERT_FALSE(candidates.empty());
  for (const Shock& c : candidates) {
    if (c.IsCyclic()) {
      EXPECT_GE(c.period, 2u);
    }
  }
}

TEST(ShockDetection, StrengthsProposedAsZero) {
  Series r = ResidualWithBursts(260, {6, 58, 110});
  for (const Shock& c : ProposeShockCandidates(r, 0)) {
    for (double s : c.global_strengths) {
      EXPECT_DOUBLE_EQ(s, 0.0);
    }
  }
}

}  // namespace
}  // namespace dspot
