#include "core/evaluation.h"

#include <algorithm>
#include <cmath>

#include "core/forecast.h"
#include "core/simulate.h"
#include "timeseries/metrics.h"

namespace dspot {

FitQuality EvaluateFit(const Series& actual, const Series& estimate) {
  FitQuality q;
  q.rmse = Rmse(actual, estimate);
  q.mae = Mae(actual, estimate);
  q.normalized_rmse = NormalizedRmse(actual, estimate);
  q.r_squared = RSquared(actual, estimate);
  return q;
}

ForecastQuality EvaluateForecast(const Series& actual, const Series& forecast,
                                 size_t horizon_bucket) {
  ForecastQuality q;
  q.rmse = Rmse(actual, forecast);
  q.mae = Mae(actual, forecast);
  q.horizon_bucket = std::max<size_t>(horizon_bucket, 1);
  const size_t n = std::min(actual.size(), forecast.size());
  const size_t buckets = (n + q.horizon_bucket - 1) / q.horizon_bucket;
  q.error_by_horizon.assign(buckets, 0.0);
  std::vector<size_t> counts(buckets, 0);
  for (size_t t = 0; t < n; ++t) {
    if (IsMissing(actual[t]) || IsMissing(forecast[t])) continue;
    const size_t b = t / q.horizon_bucket;
    q.error_by_horizon[b] += std::fabs(actual[t] - forecast[t]);
    ++counts[b];
  }
  for (size_t b = 0; b < buckets; ++b) {
    if (counts[b] > 0) {
      q.error_by_horizon[b] /= static_cast<double>(counts[b]);
    } else {
      // A bucket with no scored pairs (all ticks missing in either series)
      // has no error — reporting 0.0 would be indistinguishable from a
      // perfect forecast, so it is marked missing instead.
      q.error_by_horizon[b] = kMissingValue;
    }
  }
  return q;
}

StatusOr<TrainTestResult> TrainAndForecast(const Series& full,
                                           size_t train_ticks,
                                           const GlobalFitOptions& options) {
  if (train_ticks < 16 || train_ticks >= full.size()) {
    return Status::InvalidArgument(
        "TrainAndForecast: train_ticks must be in [16, full.size())");
  }
  const Series train = full.Slice(0, train_ticks);
  const Series test = full.Slice(train_ticks, full.size());

  TrainTestResult result;
  DSPOT_ASSIGN_OR_RETURN(result.fit, FitGlobalSequence(train, 0, 1, options));
  result.train_quality = EvaluateFit(train, result.fit.estimate);

  ModelParamSet params;
  params.num_keywords = 1;
  params.num_locations = 1;
  params.num_ticks = train_ticks;
  params.global = {result.fit.params};
  params.shocks = result.fit.shocks;
  DSPOT_ASSIGN_OR_RETURN(result.forecast,
                         ForecastGlobal(params, 0, test.size()));
  result.test_quality = EvaluateForecast(test, result.forecast);
  return result;
}

}  // namespace dspot
