#ifndef DSPOT_CORE_DSPOT_H_
#define DSPOT_CORE_DSPOT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "core/forecast.h"
#include "core/global_fit.h"
#include "core/local_fit.h"
#include "core/params.h"
#include "tensor/activity_tensor.h"
#include "timeseries/series.h"

namespace dspot {

/// Top-level options for the full Δ-SPOT pipeline (Algorithm 1). The model
/// is parameter-free in the paper's sense: every field has a sensible
/// default driven by the MDL criterion, and nothing here trades accuracy
/// against correctness — only compute budget.
struct DspotOptions {
  GlobalFitOptions global;
  LocalFitOptions local;
  /// Skip LOCALFIT (e.g. for single-location tensors or global-only use).
  bool fit_local = true;
  /// Wall-clock budget for the whole pipeline, milliseconds; 0 = none.
  /// FitDspot builds one Deadline from this and threads it through
  /// GLOBALFIT, LOCALFIT, and every solver they run. When the budget runs
  /// out the fit returns OK with the best partial model found so far and
  /// result.health.termination == kDeadlineExceeded, within a small
  /// multiple of the budget (checks sit at solver-iteration granularity).
  double time_budget_ms = 0.0;
  /// Cooperative cancellation for the whole pipeline. Unlike a deadline,
  /// cancellation is an abort: FitDspot returns Status::Cancelled and no
  /// partial result. Inert by default.
  CancellationToken cancel;
  /// What to do when one keyword's GLOBALFIT fails (see
  /// KeywordErrorPolicy): fail the whole fit (default) or keep the
  /// keywords that fit and report the rest via result.keyword_status.
  KeywordErrorPolicy on_keyword_error = KeywordErrorPolicy::kFail;
  /// Worker threads for the whole pipeline: keywords fit concurrently in
  /// GLOBALFIT, locations concurrently in LOCALFIT, and Jacobian columns
  /// concurrently in high-dimensional LM solves. 0 = hardware
  /// concurrency, 1 = fully serial. FitDspot copies this value over
  /// `global.num_threads` and `local.num_threads`, so it is the single
  /// knob to set. The fit is bit-identical at any thread count — results
  /// land in pre-assigned slots and reductions stay in index order — so
  /// this trades only wall-clock, never output.
  size_t num_threads = 0;
  /// Optional warm start from a previously fitted (e.g. snapshot-loaded)
  /// model: GLOBALFIT seeds each keyword from the previous parameters and
  /// shock schedule instead of running the cold multi-start MDL search,
  /// and converges in measurably fewer solver iterations on similar data.
  /// The pointee must outlive the fit. Null (default) = cold fit,
  /// bit-identical to builds without warm-start support.
  const ModelParamSet* warm_start = nullptr;
};

/// The result of fitting Δ-SPOT on an activity tensor.
struct DspotResult {
  /// The complete parameter set F = {B_G, B_L, R_G, R_L, S}.
  ModelParamSet params;
  /// Per-keyword fitted global sequences and their RMSE (Fig. 5-style
  /// summaries).
  std::vector<Series> global_estimates;
  std::vector<double> global_rmse;
  /// Eq. (2) total code length of the final model.
  double total_cost_bits = 0.0;
  /// One Status per keyword: OK for fitted keywords, the fit error for
  /// keywords skipped under KeywordErrorPolicy::kSkipAndReport.
  std::vector<Status> keyword_status;
  /// Aggregated pipeline health: rounds, LM divergence restarts, wall
  /// time, and the most severe termination across all stages.
  /// health.termination == kDeadlineExceeded marks a partial fit produced
  /// under an exhausted time budget.
  FitHealth health;

  /// True iff every keyword fit cleanly (keyword_status has no errors).
  bool AllKeywordsOk() const;

  /// Fitted local sequence for (keyword, location).
  Series LocalEstimate(size_t keyword, size_t location) const;

  /// Shocks detected for `keyword`, as human-readable strings.
  std::vector<std::string> DescribeShocks(size_t keyword) const;
};

/// Δ-SPOT: fits the full model to a tensor — GLOBALFIT per keyword, then
/// LOCALFIT across locations (Algorithm 1).
StatusOr<DspotResult> FitDspot(const ActivityTensor& tensor,
                               const DspotOptions& options = DspotOptions());

/// Convenience: fits a single sequence (d = 1, l = 1) with the
/// single-sequence model of Section 3.2 and returns the same result type.
StatusOr<DspotResult> FitDspotSingle(
    const Series& sequence, const DspotOptions& options = DspotOptions());

}  // namespace dspot

#endif  // DSPOT_CORE_DSPOT_H_
