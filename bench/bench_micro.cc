// Micro-benchmarks (google-benchmark) for the numeric kernels underlying
// the pipeline: SIV simulation, epsilon construction, LM on a canonical
// problem, and the dense solvers.

#include <benchmark/benchmark.h>

#include "core/shock.h"
#include "core/simulate.h"
#include "linalg/matrix.h"
#include "linalg/solvers.h"
#include "mdl/mdl.h"
#include "optimize/levenberg_marquardt.h"
#include "optimize/line_search.h"
#include "timeseries/peaks.h"
#include "timeseries/stats.h"

namespace dspot {
namespace {

void BM_SimulateSiv(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  SivInputs inputs;
  inputs.population = 200.0;
  inputs.beta = 0.5;
  inputs.delta = 0.45;
  inputs.gamma = 0.5;
  inputs.i0 = 1.0;
  inputs.epsilon.assign(n, 1.0);
  for (size_t t = 30; t < n; t += 52) {
    inputs.epsilon[t] = 9.0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimulateSiv(inputs, n));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_SimulateSiv)->Arg(128)->Arg(575)->Arg(2048);

void BM_BuildGlobalEpsilon(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<Shock> shocks(4);
  for (size_t k = 0; k < shocks.size(); ++k) {
    shocks[k].keyword = 0;
    shocks[k].period = 52;
    shocks[k].start = 5 + 3 * k;
    shocks[k].width = 3;
    shocks[k].global_strengths.assign(shocks[k].NumOccurrences(n), 5.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildGlobalEpsilon(shocks, 0, n));
  }
}
BENCHMARK(BM_BuildGlobalEpsilon)->Arg(575)->Arg(2048);

void BM_LevenbergMarquardtRosenbrock(benchmark::State& state) {
  auto residual_fn = [](const std::vector<double>& p,
                        std::vector<double>* r) -> Status {
    r->assign({10.0 * (p[1] - p[0] * p[0]), 1.0 - p[0]});
    return Status::Ok();
  };
  for (auto _ : state) {
    auto result = LevenbergMarquardt(residual_fn, {-1.2, 1.0});
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_LevenbergMarquardtRosenbrock);

void BM_CholeskySolve(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      a(i, j) = (i == j) ? 4.0 : 1.0 / static_cast<double>(1 + i + j);
    }
  }
  std::vector<double> b(n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CholeskySolve(a, b));
  }
}
BENCHMARK(BM_CholeskySolve)->Arg(8)->Arg(32)->Arg(128);

Series SpikyFixture(size_t n) {
  Series s(n);
  for (size_t t = 0; t < n; ++t) {
    s[t] = 10.0 + 3.0 * std::sin(0.37 * static_cast<double>(t));
  }
  for (size_t t = 6; t < n; t += 52) {
    s[t] = 120.0;
  }
  return s;
}

void BM_Autocorrelation(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Series s = SpikyFixture(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Autocorrelation(s, n / 2));
  }
}
BENCHMARK(BM_Autocorrelation)->Arg(575)->Arg(2048);

void BM_FindBursts(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Series s = SpikyFixture(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindBursts(s));
  }
}
BENCHMARK(BM_FindBursts)->Arg(575)->Arg(2048);

void BM_GaussianCodingCost(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Series a = SpikyFixture(n);
  Series e = a;
  for (size_t t = 0; t < n; ++t) e[t] += 0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GaussianCodingCost(a, e));
  }
}
BENCHMARK(BM_GaussianCodingCost)->Arg(575)->Arg(2048);

void BM_PoissonCodingCost(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Series a = SpikyFixture(n);
  Series e = a;
  for (size_t t = 0; t < n; ++t) e[t] += 0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PoissonCodingCost(a, e));
  }
}
BENCHMARK(BM_PoissonCodingCost)->Arg(575)->Arg(2048);

void BM_GoldenSection(benchmark::State& state) {
  auto fn = [](double x) { return (x - 3.3) * (x - 3.3); };
  for (auto _ : state) {
    benchmark::DoNotOptimize(GoldenSectionMinimize(fn, 0.0, 50.0, 1e-6));
  }
}
BENCHMARK(BM_GoldenSection);

}  // namespace
}  // namespace dspot
