#include "optimize/line_search.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dspot {

namespace {

/// Shrink-toward-x1 decision for the golden-section bracket. For finite
/// costs this is exactly `f1 <= f2`; a NaN probe must lose to a finite one
/// (NaN compares false under both <= and >, so the plain comparison would
/// silently keep a NaN incumbent whenever it lands in f2).
bool PreferFirstProbe(double f1, double f2) {
  if (std::isnan(f2)) return true;
  if (std::isnan(f1)) return false;
  return f1 <= f2;
}

}  // namespace

double GoldenSectionMinimize(const Scalar1dFn& fn, double lo, double hi,
                             double tolerance, int max_iterations) {
  if (hi < lo) {
    std::swap(lo, hi);
  }
  constexpr double kInvPhi = 0.6180339887498949;  // 1/phi
  double a = lo, b = hi;
  if (!((b - a) > tolerance)) {
    // The bracket is already collapsed (or its width is NaN): there is
    // nothing to section, so return the better endpoint instead of an
    // interior probe of a degenerate interval.
    const double fa = fn(a);
    const double fb = fn(b);
    return fb < fa ? b : a;
  }
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = fn(x1);
  double f2 = fn(x2);
  for (int i = 0; i < max_iterations && (b - a) > tolerance; ++i) {
    if (PreferFirstProbe(f1, f2)) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = fn(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = fn(x2);
    }
  }
  return PreferFirstProbe(f1, f2) ? x1 : x2;
}

double GridMinimize(const Scalar1dFn& fn, double lo, double hi, size_t steps) {
  if (steps == 0 || hi <= lo) {
    return lo;
  }
  double best_x = lo;
  double best_f = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i <= steps; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(steps);
    const double f = fn(x);
    if (std::isfinite(f) && f < best_f) {
      best_f = f;
      best_x = x;
    }
  }
  return best_x;
}

double GridThenGoldenMinimize(const Scalar1dFn& fn, double lo, double hi,
                              size_t grid_steps, double tolerance) {
  const double seed = GridMinimize(fn, lo, hi, grid_steps);
  const double cell = (hi - lo) / static_cast<double>(std::max<size_t>(grid_steps, 1));
  const double a = std::max(lo, seed - cell);
  const double b = std::min(hi, seed + cell);
  return GoldenSectionMinimize(fn, a, b, tolerance);
}

double GuardedMinimize(const Scalar1dFn& fn, double lo, double hi,
                       double current, size_t grid_steps, double tolerance) {
  const double f_current = fn(current);
  const double candidate =
      GridThenGoldenMinimize(fn, lo, hi, grid_steps, tolerance);
  const double f_candidate = fn(candidate);
  if (std::isnan(f_current)) {
    // A NaN incumbent loses any `<` comparison, so the plain guard below
    // would keep it forever; accept any non-NaN candidate instead.
    return std::isnan(f_candidate) ? current : candidate;
  }
  return f_candidate < f_current ? candidate : current;
}

}  // namespace dspot
