// Cross-module integration tests: the full pipeline a downstream user
// runs — generate -> save CSV -> load -> fit -> report -> outliers ->
// impute -> forecast — plus an end-to-end property sweep over scenario
// structures.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/dspot.h"
#include "core/impute.h"
#include "core/outliers.h"
#include "core/report.h"
#include "datagen/catalog.h"
#include "datagen/generator.h"
#include "tensor/tensor_io.h"
#include "timeseries/metrics.h"

namespace dspot {
namespace {

TEST(Integration, CsvRoundTripThenFullPipeline) {
  // 1. Generate and persist.
  GeneratorConfig config = GoogleTrendsConfig(19);
  config.n_ticks = 312;
  config.num_locations = 6;
  config.num_outlier_locations = 2;
  config.missing_rate = 0.05;
  KeywordScenario sc = EbolaScenario();
  sc.shocks[0].start = 180;
  auto generated = GenerateTensor({sc}, config);
  ASSERT_TRUE(generated.ok());
  const std::string path = ::testing::TempDir() + "/integration_tensor.csv";
  ASSERT_TRUE(SaveTensorCsv(generated->tensor, path).ok());

  // 2. Load it back with missing cells preserved.
  auto loaded = LoadTensorCsv(path, /*fill_absent_with_zero=*/false);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_ticks(), 312u);
  EXPECT_LT(loaded->ObservedCount(), 6u * 312u);  // some cells missing

  // 3. Fit the full model on the loaded tensor.
  auto result = FitDspot(*loaded);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result->params.ShockCountFor(0), 1u);

  // 4. Report mentions the detected burst (tick 180 -> 2007).
  const std::string report =
      RenderReport(result->params, loaded->keywords());
  EXPECT_NE(report.find("ebola"), std::string::npos);
  EXPECT_NE(report.find("event"), std::string::npos);

  // 5. The generated outliers are flagged.
  auto outliers = FindOutlierLocations(result->params, 0);
  ASSERT_TRUE(outliers.ok()) << outliers.status().ToString();
  size_t true_outliers_found = 0;
  for (size_t j : *outliers) {
    if (generated->truth.is_outlier[j]) ++true_outliers_found;
  }
  EXPECT_EQ(true_outliers_found, 2u);

  // 6. Imputation fills every missing cell with finite values.
  auto imputed = ImputeTensor(*loaded, result->params);
  ASSERT_TRUE(imputed.ok()) << imputed.status().ToString();
  EXPECT_EQ(imputed->ObservedCount(), 6u * 312u);

  // 7. Forecast runs from the fitted model.
  auto forecast = ForecastGlobal(result->params, 0, 52);
  ASSERT_TRUE(forecast.ok());
  EXPECT_EQ(forecast->size(), 52u);
  for (size_t t = 0; t < forecast->size(); ++t) {
    EXPECT_TRUE(std::isfinite((*forecast)[t]));
  }
}

/// End-to-end property: across event periods and strengths, the pipeline
/// detects a cyclic event whose period divides into the truth (the
/// detector may lock onto the fundamental or a harmonic when occurrence
/// strengths vary), and the fit is tight.
class ScenarioSweep
    : public ::testing::TestWithParam<std::tuple<size_t, double>> {};

TEST_P(ScenarioSweep, DetectsPlantedCycle) {
  const auto [period, strength] = GetParam();
  KeywordScenario sc;
  sc.name = "sweep";
  sc.population = 220.0;
  sc.beta = 0.5;
  sc.delta = 0.45;
  sc.gamma = 0.5;
  sc.shocks.push_back({.period = period,
                       .start = period / 4,
                       .width = 2,
                       .strength = strength,
                       .strength_jitter = 0.15});
  GeneratorConfig config = GoogleTrendsConfig(23 + period);
  config.n_ticks = 416;
  config.num_locations = 5;
  config.num_outlier_locations = 0;
  auto data = GenerateGlobalSequence(sc, config);
  ASSERT_TRUE(data.ok());
  auto fit = FitGlobalSequence(*data, 0, 1);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();

  bool found = false;
  for (const Shock& s : fit->shocks) {
    if (!s.IsCyclic()) continue;
    // Accept the fundamental or a small multiple of it.
    for (size_t mult = 1; mult <= 4; ++mult) {
      const size_t target = period * mult;
      const size_t drift =
          s.period > target ? s.period - target : target - s.period;
      if (drift <= 2) found = true;
    }
  }
  EXPECT_TRUE(found) << "period " << period << " strength " << strength;
  const double range = data->MaxValue() - data->MinValue();
  EXPECT_LT(fit->rmse, 0.15 * range);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ScenarioSweep,
    ::testing::Combine(::testing::Values(26u, 52u, 104u),
                       ::testing::Values(6.0, 12.0)));

}  // namespace
}  // namespace dspot
