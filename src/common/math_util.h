#ifndef DSPOT_COMMON_MATH_UTIL_H_
#define DSPOT_COMMON_MATH_UTIL_H_

#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace dspot {

/// Shared scalar helpers used throughout the numeric code.

/// Quiet NaN, used to mark missing observations in sequences.
inline constexpr double kMissingValue =
    std::numeric_limits<double>::quiet_NaN();

/// True iff `v` encodes a missing observation.
inline bool IsMissing(double v) { return std::isnan(v); }

/// Clamps `v` into [lo, hi].
inline double Clamp(double v, double lo, double hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

/// True iff |a - b| <= tol * max(1, |a|, |b|).
bool ApproxEqual(double a, double b, double tol = 1e-9);

/// log2 of `x`, with a floor to avoid -inf for tiny inputs.
double SafeLog2(double x);

/// Natural log with the same guard.
double SafeLog(double x);

/// x * x.
inline double Square(double x) { return x * x; }

/// Mean of the non-missing entries of `v`; 0 if all are missing. The span
/// overloads below are the primitives; the vector overloads delegate to
/// them, so both run the same floating-point loop.
double Mean(std::span<const double> v);
double Mean(const std::vector<double>& v);

/// Population variance of the non-missing entries of `v`; 0 if fewer than
/// two remain.
double Variance(const std::vector<double>& v);

/// Standard deviation (sqrt of `Variance`).
double StdDev(const std::vector<double>& v);

/// Minimum / maximum over non-missing entries. Return NaN if all missing.
double Min(std::span<const double> v);
double Min(const std::vector<double>& v);
double Max(std::span<const double> v);
double Max(const std::vector<double>& v);

/// Sum over non-missing entries.
double Sum(std::span<const double> v);
double Sum(const std::vector<double>& v);

/// Index of the maximum non-missing entry (first on ties); `npos` if all
/// entries are missing.
size_t ArgMax(const std::vector<double>& v);
inline constexpr size_t kNpos = static_cast<size_t>(-1);

}  // namespace dspot

#endif  // DSPOT_COMMON_MATH_UTIL_H_
