#include "core/forecast.h"

#include "core/simulate.h"

namespace dspot {

StatusOr<Series> ForecastGlobal(const ModelParamSet& params, size_t keyword,
                                size_t horizon) {
  if (keyword >= params.global.size()) {
    return Status::OutOfRange("ForecastGlobal: keyword index out of range");
  }
  const size_t total = params.num_ticks + horizon;
  const Series full = SimulateGlobal(params, keyword, total);
  return full.Slice(params.num_ticks, total);
}

StatusOr<Series> ForecastLocal(const ModelParamSet& params, size_t keyword,
                               size_t location, size_t horizon) {
  if (keyword >= params.global.size()) {
    return Status::OutOfRange("ForecastLocal: keyword index out of range");
  }
  if (location >= params.num_locations) {
    return Status::OutOfRange("ForecastLocal: location index out of range");
  }
  if (!params.has_local()) {
    return Status::FailedPrecondition(
        "ForecastLocal: LocalFit has not populated local parameters");
  }
  const size_t total = params.num_ticks + horizon;
  const Series full = SimulateLocal(params, keyword, location, total);
  return full.Slice(params.num_ticks, total);
}

StatusOr<Series> FitAndForecastGlobal(const ModelParamSet& params,
                                      size_t keyword, size_t horizon) {
  if (keyword >= params.global.size()) {
    return Status::OutOfRange(
        "FitAndForecastGlobal: keyword index out of range");
  }
  return SimulateGlobal(params, keyword, params.num_ticks + horizon);
}

}  // namespace dspot
