#include "optimize/objective.h"

#include <algorithm>
#include <cassert>

namespace dspot {

void Bounds::Clamp(std::vector<double>* p) const {
  assert(p != nullptr);
  Clamp(std::span<double>(*p));
}

void Bounds::Clamp(std::span<double> p) const {
  if (empty()) {
    return;
  }
  assert(lower.size() == p.size() && upper.size() == p.size());
  for (size_t i = 0; i < p.size(); ++i) {
    p[i] = std::clamp(p[i], lower[i], upper[i]);
  }
}

bool Bounds::Contains(const std::vector<double>& p) const {
  if (empty()) {
    return true;
  }
  assert(lower.size() == p.size() && upper.size() == p.size());
  for (size_t i = 0; i < p.size(); ++i) {
    if (p[i] < lower[i] || p[i] > upper[i]) {
      return false;
    }
  }
  return true;
}

}  // namespace dspot
