#include "tensor/normalization.h"

#include <algorithm>

namespace dspot {

Series NormalizeToMax(const Series& s, ScaleInfo* info, double target_max) {
  ScaleInfo local;
  const double mx = s.MaxValue();
  if (!IsMissing(mx) && mx > 0.0) {
    local.factor = target_max / mx;
  }
  if (info != nullptr) {
    *info = local;
  }
  Series out = s;
  for (double& v : out.mutable_values()) {
    if (!IsMissing(v)) v *= local.factor;
  }
  return out;
}

Series Denormalize(const Series& s, const ScaleInfo& info) {
  Series out = s;
  const double inv = info.Valid() ? 1.0 / info.factor : 1.0;
  for (double& v : out.mutable_values()) {
    if (!IsMissing(v)) v *= inv;
  }
  return out;
}

ActivityTensor NormalizeTensorPerKeyword(const ActivityTensor& tensor,
                                         std::vector<ScaleInfo>* infos,
                                         double target_max) {
  const size_t d = tensor.num_keywords();
  const size_t l = tensor.num_locations();
  const size_t n = tensor.num_ticks();
  if (infos != nullptr) {
    infos->assign(d, ScaleInfo());
  }
  ActivityTensor out = tensor;
  for (size_t i = 0; i < d; ++i) {
    // One factor per keyword: the max over all of its local sequences.
    double mx = 0.0;
    for (size_t j = 0; j < l; ++j) {
      for (size_t t = 0; t < n; ++t) {
        const double v = tensor.at(i, j, t);
        if (!IsMissing(v)) mx = std::max(mx, v);
      }
    }
    ScaleInfo info;
    if (mx > 0.0) {
      info.factor = target_max / mx;
    }
    if (infos != nullptr) {
      (*infos)[i] = info;
    }
    for (size_t j = 0; j < l; ++j) {
      for (size_t t = 0; t < n; ++t) {
        double& v = out.at(i, j, t);
        if (!IsMissing(v)) v *= info.factor;
      }
    }
  }
  return out;
}

}  // namespace dspot
