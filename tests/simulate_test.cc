// Unit and property tests for src/core/simulate: the SIV recurrence and
// the global/local simulation wrappers.

#include <gtest/gtest.h>

#include <cmath>

#include "core/params.h"
#include "core/simulate.h"

namespace dspot {
namespace {

SivInputs BasicInputs() {
  SivInputs in;
  in.population = 100.0;
  in.beta = 0.5;
  in.delta = 0.4;
  in.gamma = 0.3;
  in.i0 = 1.0;
  return in;
}

TEST(SimulateSiv, PopulationConservedExactly) {
  SivInputs in = BasicInputs();
  in.epsilon.assign(200, 1.0);
  in.epsilon[50] = 10.0;
  SivTrajectory traj = SimulateSivFull(in, 200);
  for (size_t t = 0; t < 200; ++t) {
    const double total =
        traj.susceptible[t] + traj.infective[t] + traj.vigilant[t];
    ASSERT_NEAR(total, 100.0, 1e-9) << "at tick " << t;
  }
}

TEST(SimulateSiv, CompartmentsNonNegative) {
  SivInputs in = BasicInputs();
  in.beta = 5.0;  // extreme contact rate
  in.epsilon.assign(100, 20.0);
  SivTrajectory traj = SimulateSivFull(in, 100);
  for (size_t t = 0; t < 100; ++t) {
    ASSERT_GE(traj.susceptible[t], -1e-12);
    ASSERT_GE(traj.infective[t], -1e-12);
    ASSERT_GE(traj.vigilant[t], -1e-12);
  }
}

TEST(SimulateSiv, ShockCreatesSpike) {
  SivInputs calm = BasicInputs();
  SivInputs shocked = BasicInputs();
  shocked.epsilon.assign(100, 1.0);
  for (size_t t = 50; t < 53; ++t) shocked.epsilon[t] = 8.0;
  Series a = SimulateSiv(calm, 100);
  Series b = SimulateSiv(shocked, 100);
  // Identical before the shock.
  for (size_t t = 0; t <= 50; ++t) {
    ASSERT_NEAR(a[t], b[t], 1e-12);
  }
  // Clearly higher shortly after.
  EXPECT_GT(b[53], a[53] * 1.5);
}

TEST(SimulateSiv, GrowthRaisesLevel) {
  SivInputs calm = BasicInputs();
  SivInputs grown = BasicInputs();
  grown.eta = BuildEta(0.5, 100, 300);
  Series a = SimulateSiv(calm, 300);
  Series b = SimulateSiv(grown, 300);
  for (size_t t = 0; t <= 100; ++t) {
    ASSERT_NEAR(a[t], b[t], 1e-12);
  }
  EXPECT_GT(b[299], a[299] * 1.1);
}

TEST(SimulateSiv, EmptyEpsilonEtaDefaults) {
  SivInputs in = BasicInputs();
  Series a = SimulateSiv(in, 50);
  in.epsilon.assign(50, 1.0);
  in.eta.assign(50, 0.0);
  Series b = SimulateSiv(in, 50);
  for (size_t t = 0; t < 50; ++t) {
    EXPECT_DOUBLE_EQ(a[t], b[t]);
  }
}

TEST(SimulateSiv, I0ClampedToPopulation) {
  SivInputs in = BasicInputs();
  in.i0 = 1e9;
  Series i = SimulateSiv(in, 10);
  EXPECT_NEAR(i[0], 100.0, 1e-9);
}

TEST(BuildEta, StepFunction) {
  auto eta = BuildEta(0.3, 5, 10);
  EXPECT_DOUBLE_EQ(eta[4], 0.0);
  EXPECT_DOUBLE_EQ(eta[5], 0.3);
  EXPECT_DOUBLE_EQ(eta[9], 0.3);
}

TEST(BuildEta, DisabledCases) {
  // Disabled growth yields an EMPTY schedule (not n zeros): the simulator's
  // `t < eta.size()` guard treats the missing ticks as eta = 0.
  EXPECT_TRUE(BuildEta(0.3, kNpos, 10).empty());
  EXPECT_TRUE(BuildEta(0.0, 5, 10).empty());
}

ModelParamSet TwoKeywordParams() {
  ModelParamSet params;
  params.num_keywords = 2;
  params.num_locations = 2;
  params.num_ticks = 100;
  KeywordGlobalParams g;
  g.population = 100.0;
  g.beta = 0.5;
  g.delta = 0.4;
  g.gamma = 0.3;
  g.i0 = 1.0;
  params.global = {g, g};
  Shock s;
  s.keyword = 1;
  s.start = 40;
  s.width = 2;
  s.base_strength = 6.0;
  s.global_strengths = {6.0};
  params.shocks.push_back(s);
  return params;
}

TEST(SimulateGlobal, ShockAppliesOnlyToItsKeyword) {
  ModelParamSet params = TwoKeywordParams();
  Series kw0 = SimulateGlobal(params, 0, 100);
  Series kw1 = SimulateGlobal(params, 1, 100);
  for (size_t t = 0; t <= 40; ++t) {
    ASSERT_NEAR(kw0[t], kw1[t], 1e-12);
  }
  EXPECT_GT(kw1[43], kw0[43] * 1.2);
}

TEST(SimulateLocal, EvenShareWithoutLocalFit) {
  ModelParamSet params = TwoKeywordParams();
  Series local = SimulateLocal(params, 0, 0, 100);
  Series global = SimulateGlobal(params, 0, 100);
  // Each of the 2 locations carries N/2; the dynamics are scale-covariant
  // (per-capita rates), so local = global / 2.
  for (size_t t = 0; t < 100; ++t) {
    ASSERT_NEAR(local[t], global[t] / 2.0, 1e-9);
  }
}

TEST(SimulateLocal, UsesLocalMatricesWhenPresent) {
  ModelParamSet params = TwoKeywordParams();
  params.base_local = Matrix(2, 2);
  params.base_local(0, 0) = 80.0;
  params.base_local(0, 1) = 20.0;
  params.base_local(1, 0) = 50.0;
  params.base_local(1, 1) = 50.0;
  params.growth_local = Matrix(2, 2);
  Series big = SimulateLocal(params, 0, 0, 100);
  Series small = SimulateLocal(params, 0, 1, 100);
  // Scale covariance: ratio of levels tracks the population ratio.
  EXPECT_NEAR(big[50] / small[50], 4.0, 1e-6);
}

/// Property sweep: conservation holds across the parameter cube, with
/// shocks and growth active.
class SivConservationProperty
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(SivConservationProperty, HoldsEverywhere) {
  const auto [beta, delta, gamma] = GetParam();
  SivInputs in;
  in.population = 123.0;
  in.beta = beta;
  in.delta = delta;
  in.gamma = gamma;
  in.i0 = 2.0;
  in.epsilon.assign(150, 1.0);
  for (size_t t = 20; t < 150; t += 30) in.epsilon[t] = 15.0;
  in.eta = BuildEta(0.4, 75, 150);
  SivTrajectory traj = SimulateSivFull(in, 150);
  for (size_t t = 0; t < 150; ++t) {
    const double total =
        traj.susceptible[t] + traj.infective[t] + traj.vigilant[t];
    ASSERT_NEAR(total, 123.0, 1e-8);
    ASSERT_GE(traj.susceptible[t], -1e-12);
    ASSERT_GE(traj.infective[t], -1e-12);
    ASSERT_GE(traj.vigilant[t], -1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParamCube, SivConservationProperty,
    ::testing::Combine(::testing::Values(0.05, 0.5, 2.0, 5.0),
                       ::testing::Values(0.1, 0.5, 1.0),
                       ::testing::Values(0.0, 0.5, 1.0)));

}  // namespace
}  // namespace dspot
