// Unit tests for src/common: Status/StatusOr, Random, math helpers.

#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.h"
#include "common/parse_util.h"
#include "common/random.h"
#include "common/status.h"
#include "common/statusor.h"

namespace dspot {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(Status, AllFactoryCodesRoundTrip) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NumericalError("x").code(), StatusCode::kNumericalError);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

Status Passthrough(bool fail) {
  DSPOT_RETURN_IF_ERROR(fail ? Status::Internal("inner") : Status::Ok());
  return Status::Ok();
}

TEST(Status, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Passthrough(false).ok());
  Status s = Passthrough(true);
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(s.message(), "inner");
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

StatusOr<int> MakeValue(bool fail) {
  if (fail) return Status::Internal("nope");
  return 7;
}

Status UseAssignOrReturn(bool fail, int* out) {
  DSPOT_ASSIGN_OR_RETURN(*out, MakeValue(fail));
  return Status::Ok();
}

TEST(StatusOr, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(false, &out).ok());
  EXPECT_EQ(out, 7);
  EXPECT_EQ(UseAssignOrReturn(true, &out).code(), StatusCode::kInternal);
}

TEST(Random, DeterministicGivenSeed) {
  Random a(123);
  Random b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(Random, DifferentSeedsDiffer) {
  Random a(1);
  Random b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.Uniform() != b.Uniform()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Random, UniformRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Random, UniformIntInclusive) {
  Random rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Random, GaussianMoments) {
  Random rng(11);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gaussian(5.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Random, PoissonNonPositiveMeanIsZero) {
  Random rng(3);
  EXPECT_EQ(rng.Poisson(0.0), 0);
  EXPECT_EQ(rng.Poisson(-1.0), 0);
}

TEST(Random, BernoulliExtremes) {
  Random rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(Random, GaussianVectorLength) {
  Random rng(3);
  EXPECT_EQ(rng.GaussianVector(17, 0.0, 1.0).size(), 17u);
}

TEST(MathUtil, MissingValueIsNan) {
  EXPECT_TRUE(IsMissing(kMissingValue));
  EXPECT_FALSE(IsMissing(0.0));
  EXPECT_FALSE(IsMissing(-1e300));
}

TEST(MathUtil, ClampWorks) {
  EXPECT_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(MathUtil, ApproxEqualRelative) {
  EXPECT_TRUE(ApproxEqual(1e9, 1e9 + 1e-3, 1e-9));
  EXPECT_FALSE(ApproxEqual(1.0, 1.1));
  EXPECT_TRUE(ApproxEqual(0.0, 0.0));
}

TEST(MathUtil, StatsSkipMissing) {
  const std::vector<double> v = {1.0, kMissingValue, 3.0, kMissingValue};
  EXPECT_DOUBLE_EQ(Mean(v), 2.0);
  EXPECT_DOUBLE_EQ(Sum(v), 4.0);
  EXPECT_DOUBLE_EQ(Min(v), 1.0);
  EXPECT_DOUBLE_EQ(Max(v), 3.0);
  EXPECT_DOUBLE_EQ(Variance(v), 1.0);
}

TEST(MathUtil, StatsAllMissing) {
  const std::vector<double> v = {kMissingValue, kMissingValue};
  EXPECT_DOUBLE_EQ(Mean(v), 0.0);
  EXPECT_TRUE(IsMissing(Min(v)));
  EXPECT_TRUE(IsMissing(Max(v)));
  EXPECT_EQ(ArgMax(v), kNpos);
}

TEST(MathUtil, ArgMaxFirstOnTies) {
  const std::vector<double> v = {1.0, 5.0, 5.0, 2.0};
  EXPECT_EQ(ArgMax(v), 1u);
}

TEST(MathUtil, SafeLogNoInfinity) {
  EXPECT_TRUE(std::isfinite(SafeLog2(0.0)));
  EXPECT_TRUE(std::isfinite(SafeLog(0.0)));
  EXPECT_NEAR(SafeLog2(8.0), 3.0, 1e-12);
}

TEST(ParseUtil, ByteSizeAcceptsPlainAndSuffixedValues) {
  struct Case {
    const char* text;
    uint64_t want;
  };
  const Case cases[] = {
      {"0", 0},
      {"123", 123},
      {"4K", 4ull << 10},
      {"4k", 4ull << 10},
      {"4KB", 4ull << 10},
      {"4KiB", 4ull << 10},
      {"4kib", 4ull << 10},
      {"64M", 64ull << 20},
      {"64MB", 64ull << 20},
      {"2G", 2ull << 30},
      {"2GiB", 2ull << 30},
      {"1T", 1ull << 40},
      {"256B", 256},
  };
  for (const Case& c : cases) {
    auto parsed = ParseByteSizeText(c.text);
    ASSERT_TRUE(parsed.ok()) << c.text << ": " << parsed.status().ToString();
    EXPECT_EQ(*parsed, c.want) << c.text;
  }
}

TEST(ParseUtil, ByteSizeRejectsGarbage) {
  const char* cases[] = {
      "",      // empty
      "-1",    // byte budgets are never negative
      "+5",    // no signs
      "1.5G",  // no fractions
      "12X",   // unknown suffix
      "12MBs", // trailing garbage after a valid suffix
      "K",     // suffix without digits
      "12 K",  // interior whitespace
      "0x10",  // no hex
  };
  for (const char* text : cases) {
    auto parsed = ParseByteSizeText(text);
    EXPECT_FALSE(parsed.ok()) << "'" << text << "' should not parse";
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << text;
    }
  }
}

TEST(ParseUtil, ByteSizeRejectsOverflow) {
  // 2^64 - 1 parses; 2^64 does not; nor does a suffixed product overflow.
  EXPECT_TRUE(ParseByteSizeText("18446744073709551615").ok());
  EXPECT_FALSE(ParseByteSizeText("18446744073709551616").ok());
  EXPECT_FALSE(ParseByteSizeText("18446744073709551615K").ok());
  EXPECT_FALSE(ParseByteSizeText("17000000T").ok());
}

}  // namespace
}  // namespace dspot
