#ifndef DSPOT_GUARD_GUARD_H_
#define DSPOT_GUARD_GUARD_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"

namespace dspot {

/// A monotonic-clock time budget. Default-constructed deadlines are
/// infinite (never expire), so embedding one in an options struct costs
/// nothing until a caller arms it. Copies share the same expiry instant;
/// the class is trivially thread-safe (immutable after construction).
///
/// Deadlines use std::chrono::steady_clock, so wall-clock adjustments
/// (NTP, suspend) cannot spuriously expire a fit.
class Deadline {
 public:
  /// Infinite: never expires.
  Deadline() = default;

  /// A deadline `budget_ms` milliseconds from now. Non-positive budgets
  /// are already expired (useful for "try, but do not iterate" callers).
  static Deadline AfterMillis(double budget_ms);

  /// A deadline at an explicit steady_clock instant.
  static Deadline At(std::chrono::steady_clock::time_point when);

  /// The never-expiring deadline (same as default construction).
  static Deadline Infinite() { return Deadline(); }

  /// True iff this deadline can ever expire.
  bool armed() const { return armed_; }

  /// True iff the budget has run out. Always false when infinite.
  bool expired() const;

  /// Milliseconds until expiry: negative once expired, +infinity when
  /// infinite.
  double remaining_ms() const;

 private:
  bool armed_ = false;
  std::chrono::steady_clock::time_point when_{};
};

/// A cooperative cancel flag shared across threads. Default-constructed
/// tokens are inert (never cancelled, Cancel() is a no-op); Cancellable()
/// creates an armed token. Copies share the underlying flag, so a token
/// handed to a fit running on a worker thread can be cancelled from any
/// other thread.
class CancellationToken {
 public:
  /// Inert: cancelled() is always false.
  CancellationToken() = default;

  /// An armed token whose copies share one flag.
  static CancellationToken Cancellable();

  /// Requests cancellation. Safe from any thread; no-op on inert tokens.
  void Cancel() const;

  /// True iff Cancel() was called on this token or any copy of it.
  bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_acquire);
  }

  /// True iff this token was created Cancellable (and can thus ever fire).
  bool armed() const { return flag_ != nullptr; }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// The deadline/cancellation pair threaded through the fit pipeline.
/// Every cooperative checkpoint (LM outer iterations, Nelder-Mead
/// iterations, GLOBALFIT rounds, per-location LOCALFIT tasks, ParallelFor
/// block claims) calls Check() and unwinds on a non-OK result. A
/// default-constructed context is inactive and Check() short-circuits to
/// OK, so unguarded fits pay (nearly) nothing.
struct GuardContext {
  Deadline deadline;
  CancellationToken cancel;

  /// True iff either member can ever fire (fast-path gate).
  bool active() const { return deadline.armed() || cancel.armed(); }

  /// kCancelled beats kDeadlineExceeded when both fired (cancellation is
  /// the stronger, caller-initiated signal). `where` names the checkpoint
  /// in the error message. The kDeadlineExpiry fault-injection site is
  /// consulted here, so deadline unwind paths are testable without timing.
  Status Check(const char* where) const;
};

/// How a guarded fit stopped.
enum class FitTermination {
  /// A convergence criterion fired (or the fit ran to completion).
  kConverged = 0,
  /// The iteration/round cap was reached without convergence.
  kMaxIterations,
  /// The solver stalled (no acceptable step) and kept its best iterate.
  kStalled,
  /// The time budget expired; the result is the best partial fit.
  kDeadlineExceeded,
  /// The cancellation token fired.
  kCancelled,
};

/// Canonical name of a termination reason (e.g. "DeadlineExceeded").
const char* FitTerminationName(FitTermination termination);

/// Health report attached to guarded fit results: how hard the solver
/// worked and why it stopped. Aggregatable: Merge() combines per-stage
/// reports into a pipeline-level one.
struct FitHealth {
  /// Accepted solver iterations (or outer rounds, for pipeline stages).
  int iterations = 0;
  /// Divergence-recovery restarts taken (see LmOptions::max_restarts).
  int restarts = 0;
  /// Wall time spent in the fit, milliseconds.
  double wall_time_ms = 0.0;
  FitTermination termination = FitTermination::kConverged;

  /// True iff the fit was cut short by a guard (deadline or cancel).
  bool interrupted() const {
    return termination == FitTermination::kDeadlineExceeded ||
           termination == FitTermination::kCancelled;
  }

  /// Folds `other` into this report: counters add, wall time adds, and
  /// the most severe termination wins (kCancelled > kDeadlineExceeded >
  /// kStalled > kMaxIterations > kConverged).
  void Merge(const FitHealth& other);

  /// "converged in 12 it (0 restarts, 3.2 ms)" — for logs and the CLI.
  std::string ToString() const;
};

/// Stopwatch helper: milliseconds elapsed since `start`.
double ElapsedMs(std::chrono::steady_clock::time_point start);

}  // namespace dspot

#endif  // DSPOT_GUARD_GUARD_H_
