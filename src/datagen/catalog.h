#ifndef DSPOT_DATAGEN_CATALOG_H_
#define DSPOT_DATAGEN_CATALOG_H_

#include <vector>

#include "datagen/scenario.h"

namespace dspot {

/// Named ground-truth scenarios mirroring the keywords the paper evaluates
/// on (Figs. 1, 4-8, 11). The time axis follows the paper: weekly ticks,
/// tick 0 = first week of January 2004, n = 575 ticks ~= 11 years.
/// Event placements approximate the real-world calendar (e.g. Grammys every
/// February = period 52, biennial Harry Potter releases in July =
/// period 104).

/// "Harry Potter" (Fig. 1): biennial July movie/book releases, plus
/// November releases of later episodes, plus one non-cyclic spike.
KeywordScenario HarryPotterScenario();

/// "Amazon" (Fig. 4): population growth effect starting at tick 343 with
/// eta_0 ~= 0.16 (the paper's fitted values) plus an annual
/// holiday-shopping shock.
KeywordScenario AmazonScenario();

/// "Ebola" (Fig. 8): one-shot world-wide burst in 2014 (tick ~540).
KeywordScenario EbolaScenario();

/// "Grammy" (Fig. 11): annual awards, every February (period 52).
KeywordScenario GrammyScenario();

/// "Olympics": quadrennial games (period 208) with strong spikes.
KeywordScenario OlympicsScenario();

/// "Barack Obama" (Fig. 5a): dominant one-shot 2008 election burst plus a
/// smaller 2012 re-election burst.
KeywordScenario ObamaScenario();

/// "World Cup": quadrennial (period 208), offset from the Olympics.
KeywordScenario WorldCupScenario();

/// "iPhone": growth effect (product line ramp-up) plus annual September
/// launch events.
KeywordScenario IphoneScenario();

/// The 8-keyword trending suite of Fig. 5.
std::vector<KeywordScenario> TrendingKeywordSuite();

/// Twitter hashtags (Fig. 6), daily resolution over ~8 months (n = 240):
/// "#apple" (product-launch spikes) and "#backtoschool" (one seasonal
/// burst in late August).
KeywordScenario HashtagAppleScenario();
KeywordScenario HashtagBackToSchoolScenario();

/// MemeTracker memes (Fig. 7), daily over 3 months (n = 92): a single
/// fast rise-and-fall burst (meme #3 larger, meme #16 smaller and later).
KeywordScenario Meme3Scenario();
KeywordScenario Meme16Scenario();

/// Generator configurations matching each dataset's shape.
GeneratorConfig GoogleTrendsConfig(uint64_t seed = 42);
GeneratorConfig TwitterConfig(uint64_t seed = 43);
GeneratorConfig MemeTrackerConfig(uint64_t seed = 44);

}  // namespace dspot

#endif  // DSPOT_DATAGEN_CATALOG_H_
