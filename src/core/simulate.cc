#include "core/simulate.h"

#include <algorithm>
#include <cmath>

#include "kernels/siv_kernel.h"

namespace dspot {

void SimulateSivInto(const SivDynamics& dynamics,
                     std::span<const double> epsilon,
                     std::span<const double> eta, std::span<double> out) {
  // Delegates to the kernel layer's templated recurrence (bit-identical to
  // the historical in-place loop; the template's double instantiation IS
  // that loop). The same template instantiated for kernels::Dual powers
  // the analytic LM Jacobians, and kernels::SimulateSivBatchInto runs the
  // SoA/SIMD form of this recurrence across many simulations at once.
  const kernels::SivParams params{dynamics.population, dynamics.beta,
                                  dynamics.delta, dynamics.gamma,
                                  dynamics.i0};
  kernels::SimulateSivScalarInto(params, epsilon, eta, out);
}

SivTrajectory SimulateSivFull(const SivInputs& inputs, size_t n_ticks) {
  SivTrajectory traj;
  traj.susceptible = Series(n_ticks);
  traj.infective = Series(n_ticks);
  traj.vigilant = Series(n_ticks);

  const double n = std::max(inputs.population, 1e-9);
  double i = std::clamp(inputs.i0, 0.0, n);
  double s = n - i;
  double v = 0.0;
  const double delta = std::clamp(inputs.delta, 0.0, 1.0);
  const double gamma = std::clamp(inputs.gamma, 0.0, 1.0);

  for (size_t t = 0; t < n_ticks; ++t) {
    traj.susceptible[t] = s;
    traj.infective[t] = i;
    traj.vigilant[t] = v;

    const double eps =
        t < inputs.epsilon.size() ? inputs.epsilon[t] : 1.0;
    const double eta = t < inputs.eta.size() ? inputs.eta[t] : 0.0;
    const double raw_infect =
        inputs.beta * (s / n) * eps * i * (1.0 + eta);
    const double infect = std::clamp(raw_infect, 0.0, s);
    const double recover = delta * i;
    const double wane = gamma * v;

    s += wane - infect;
    i += infect - recover;
    v += recover - wane;
  }
  return traj;
}

Series SimulateSiv(const SivInputs& inputs, size_t n_ticks) {
  Series out(n_ticks);
  const SivDynamics dynamics{inputs.population, inputs.beta, inputs.delta,
                             inputs.gamma, inputs.i0};
  SimulateSivInto(dynamics, inputs.epsilon, inputs.eta, out.mutable_values());
  return out;
}

std::vector<double> BuildEta(double growth_rate, size_t growth_start,
                             size_t n_ticks) {
  std::vector<double> eta;
  BuildEtaInto(growth_rate, growth_start, n_ticks, &eta);
  return eta;
}

Series SimulateGlobal(const ModelParamSet& params, size_t keyword,
                      size_t n_ticks) {
  Series out(n_ticks);
  ScheduleCache cache;
  SimulateGlobalInto(params, keyword, &cache, out.mutable_values());
  return out;
}

void SimulateGlobalInto(const ModelParamSet& params, size_t keyword,
                        ScheduleCache* cache, std::span<double> out) {
  const KeywordGlobalParams& g = params.global[keyword];
  const size_t n_ticks = out.size();
  const SivDynamics dynamics{g.population, g.beta, g.delta, g.gamma, g.i0};
  const std::span<const double> epsilon =
      cache->GlobalEpsilon(params.shocks, keyword, n_ticks);
  const std::span<const double> eta =
      g.has_growth() ? cache->Eta(g.growth_rate, g.growth_start, n_ticks)
                     : std::span<const double>();
  SimulateSivInto(dynamics, epsilon, eta, out);
}

Series SimulateLocal(const ModelParamSet& params, size_t keyword,
                     size_t location, size_t n_ticks) {
  Series out(n_ticks);
  ScheduleCache cache;
  SimulateLocalInto(params, keyword, location, &cache, out.mutable_values());
  return out;
}

void SimulateLocalInto(const ModelParamSet& params, size_t keyword,
                       size_t location, ScheduleCache* cache,
                       std::span<double> out) {
  const KeywordGlobalParams& g = params.global[keyword];
  const size_t n_ticks = out.size();
  SivDynamics dynamics;
  dynamics.beta = g.beta;
  dynamics.delta = g.delta;
  dynamics.gamma = g.gamma;
  const std::span<const double> epsilon =
      cache->LocalEpsilon(params.shocks, keyword, location, n_ticks);
  std::span<const double> eta;
  if (params.has_local()) {
    const double local_pop = params.base_local(keyword, location);
    dynamics.population = local_pop;
    dynamics.i0 = g.i0 * local_pop / std::max(g.population, 1e-9);
    const double local_growth =
        params.growth_local.empty() ? 0.0
                                    : params.growth_local(keyword, location);
    if (g.has_growth()) {
      eta = cache->Eta(local_growth, g.growth_start, n_ticks);
    }
  } else {
    // LocalFit has not run yet: assume an even population share.
    const double share =
        1.0 / static_cast<double>(std::max<size_t>(params.num_locations, 1));
    dynamics.population = g.population * share;
    dynamics.i0 = g.i0 * share;
    if (g.has_growth()) {
      eta = cache->Eta(g.growth_rate, g.growth_start, n_ticks);
    }
  }
  SimulateSivInto(dynamics, epsilon, eta, out);
}

}  // namespace dspot
