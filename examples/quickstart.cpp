// Quickstart: generate a synthetic "Grammy" search-volume sequence, fit
// Δ-SPOT to it, print the fitted parameters and detected events, and
// forecast the next year.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/dspot.h"
#include "datagen/catalog.h"
#include "datagen/generator.h"

int main() {
  using namespace dspot;  // NOLINT: example brevity

  // 1. Data: one keyword ("grammy": annual February spikes), global level.
  GeneratorConfig config = GoogleTrendsConfig();
  auto sequence = GenerateGlobalSequence(GrammyScenario(), config);
  if (!sequence.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 sequence.status().ToString().c_str());
    return 1;
  }
  std::printf("Generated %zu weekly ticks, peak volume %.1f\n",
              sequence->size(), sequence->MaxValue());

  // 2. Fit the single-sequence Δ-SPOT model (Section 3.2 of the paper).
  auto fit = FitDspotSingle(*sequence);
  if (!fit.ok()) {
    std::fprintf(stderr, "fit failed: %s\n", fit.status().ToString().c_str());
    return 1;
  }
  const KeywordGlobalParams& p = fit->params.global[0];
  std::printf("\nFitted base parameters (B_G row):\n");
  std::printf("  N     = %8.2f   (potential population)\n", p.population);
  std::printf("  beta  = %8.4f   (contact rate)\n", p.beta);
  std::printf("  delta = %8.4f   (interest-loss rate)\n", p.delta);
  std::printf("  gamma = %8.4f   (re-susceptibility rate)\n", p.gamma);
  std::printf("  fit RMSE = %.3f, MDL total = %.0f bits\n",
              fit->global_rmse[0], fit->total_cost_bits);

  std::printf("\nDetected external shocks (S):\n");
  for (const std::string& desc : fit->DescribeShocks(0)) {
    std::printf("  %s\n", desc.c_str());
  }

  // 3. Forecast one year (52 weekly ticks) past the training range.
  auto forecast = ForecastGlobal(fit->params, /*keyword=*/0, /*horizon=*/52);
  if (!forecast.ok()) {
    std::fprintf(stderr, "forecast failed: %s\n",
                 forecast.status().ToString().c_str());
    return 1;
  }
  std::printf("\nNext-52-week forecast (every 4th week):\n  ");
  for (size_t t = 0; t < forecast->size(); t += 4) {
    std::printf("%.1f ", (*forecast)[t]);
  }
  std::printf("\n");
  return 0;
}
