#include "serve/net_server.h"

#ifdef __linux__

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <unordered_set>
#include <utility>

#include "obs/metrics.h"
#include "snapshot/codec.h"

namespace dspot {

namespace {

/// epoll_event.data.u64 tokens for the two non-connection fds;
/// connection ids start above them.
constexpr uint64_t kListenerToken = 0;
constexpr uint64_t kWakeToken = 1;
constexpr uint64_t kFirstConnId = 2;

std::string ErrnoText() { return std::strerror(errno); }

std::string PeerLabel(const sockaddr_in& addr) {
  char text[INET_ADDRSTRLEN] = "?";
  ::inet_ntop(AF_INET, &addr.sin_addr, text, sizeof(text));
  return std::string(text) + ":" + std::to_string(ntohs(addr.sin_port));
}

}  // namespace

NetServer::NetServer(ServeEngine* engine, const NetServerOptions& options)
    : engine_(engine), options_(options) {
  next_conn_id_ = kFirstConnId;
  options_.max_conns = std::max<size_t>(size_t{1}, options_.max_conns);
  options_.max_write_buffer_bytes =
      std::max<size_t>(size_t{4096}, options_.max_write_buffer_bytes);
}

NetServer::~NetServer() {
  for (auto& [id, conn] : conns_) {
    ::close(conn.fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fds_[0] >= 0) ::close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) ::close(wake_fds_[1]);
}

Status NetServer::Start() {
  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IoError("net_server: socket: " + ErrnoText());
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("net_server: bad bind address '" +
                                   options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::IoError("net_server: bind " + options_.bind_address + ":" +
                           std::to_string(options_.port) + ": " + ErrnoText());
  }
  if (::listen(listen_fd_, 128) != 0) {
    return Status::IoError("net_server: listen: " + ErrnoText());
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return Status::IoError("net_server: getsockname: " + ErrnoText());
  }
  port_ = ntohs(bound.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::IoError("net_server: epoll_create1: " + ErrnoText());
  }
  if (::pipe2(wake_fds_, O_CLOEXEC | O_NONBLOCK) != 0) {
    return Status::IoError("net_server: pipe2: " + ErrnoText());
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerToken;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    return Status::IoError("net_server: epoll_ctl(listener): " + ErrnoText());
  }
  ev.data.u64 = kWakeToken;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fds_[0], &ev) != 0) {
    return Status::IoError("net_server: epoll_ctl(wake): " + ErrnoText());
  }
  return Status::Ok();
}

void NetServer::Wake() {
  // Async-signal-safe: one byte is enough, and a full pipe already
  // guarantees a pending wakeup.
  const uint8_t byte = 0;
  [[maybe_unused]] ssize_t ignored = ::write(wake_fds_[1], &byte, 1);
}

void NetServer::Shutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  Wake();
}

NetServerStats NetServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

Status NetServer::Run() {
  if (epoll_fd_ < 0) {
    return Status::FailedPrecondition("net_server: Run before Start");
  }
  std::chrono::steady_clock::time_point drain_start;
  epoll_event events[64];
  for (;;) {
    // During a drain, poll with a timeout so the drain deadline fires
    // even if no fd ever becomes ready again.
    const int timeout_ms = draining_ ? 50 : -1;
    const int n = ::epoll_wait(epoll_fd_, events,
                               static_cast<int>(std::size(events)),
                               timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("net_server: epoll_wait: " + ErrnoText());
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t token = events[i].data.u64;
      if (token == kWakeToken) {
        uint8_t sink[256];
        while (::read(wake_fds_[0], sink, sizeof(sink)) > 0) {
        }
        continue;
      }
      if (token == kListenerToken) {
        AcceptReady();
        continue;
      }
      // A token that no longer resolves is an event queued for a
      // connection torn down earlier in this same batch — skip it.
      auto it = conns_.find(token);
      if (it == conns_.end()) continue;
      Conn& conn = it->second;
      const uint32_t ev = events[i].events;
      if (ev & EPOLLERR) {
        Teardown(conn, Status::IoError("socket error (EPOLLERR)"), false);
        continue;
      }
      if (ev & EPOLLHUP) {
        // Peer closed both directions: nothing we buffer can ever be
        // delivered.
        Teardown(conn, Status::Ok(), false);
        continue;
      }
      if (ev & EPOLLOUT) {
        if (!FlushWrites(conn)) continue;
        if (MaybeRetire(conn)) continue;
      }
      if (ev & EPOLLIN) {
        HandleReadable(conn);
      }
    }
    ProcessCompletions();
    if (shutdown_requested_.load(std::memory_order_acquire) && !draining_) {
      draining_ = true;
      drain_start = std::chrono::steady_clock::now();
      if (listen_fd_ >= 0) {
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      // Stop reading every connection; in-flight replies still complete
      // and flush before the connection retires.
      std::vector<uint64_t> ids;
      ids.reserve(conns_.size());
      for (const auto& [id, conn] : conns_) ids.push_back(id);
      for (uint64_t id : ids) {
        auto it = conns_.find(id);
        if (it == conns_.end()) continue;
        Conn& conn = it->second;
        conn.read_closed = true;
        UpdateInterest(conn);
        if (!FlushWrites(conn)) continue;
        MaybeRetire(conn);
      }
    }
    if (draining_) {
      if (conns_.empty()) {
        return Status::Ok();
      }
      const double waited_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - drain_start)
              .count();
      if (waited_ms > options_.drain_timeout_ms) {
        std::vector<uint64_t> ids;
        ids.reserve(conns_.size());
        for (const auto& [id, conn] : conns_) ids.push_back(id);
        for (uint64_t id : ids) {
          auto it = conns_.find(id);
          if (it == conns_.end()) continue;
          Teardown(it->second,
                   Status::DeadlineExceeded("drain timeout; force-closed"),
                   false);
        }
        return Status::Ok();
      }
    }
  }
}

void NetServer::AcceptReady() {
  for (;;) {
    sockaddr_in peer{};
    socklen_t peer_len = sizeof(peer);
    const int fd =
        ::accept4(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &peer_len,
                  SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      std::fprintf(stderr, "dspot_serve: accept: %s\n", ErrnoText().c_str());
      break;
    }
    if (draining_ || conns_.size() >= options_.max_conns) {
      // Accept-then-close: the client sees an immediate EOF instead of a
      // connection that hangs in the backlog.
      ::close(fd);
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.rejected_at_capacity;
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const uint64_t id = next_conn_id_++;
    auto [it, inserted] = conns_.emplace(
        std::piecewise_construct, std::forward_as_tuple(id),
        std::forward_as_tuple(PeerLabel(peer)));
    Conn& conn = it->second;
    conn.fd = fd;
    conn.id = id;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      std::fprintf(stderr, "dspot_serve: %s: epoll_ctl(add): %s\n",
                   conn.peer.c_str(), ErrnoText().c_str());
      ::close(fd);
      conns_.erase(it);
      continue;
    }
    DSPOT_COUNT("serve.net.accepted", 1);
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.accepted;
  }
}

void NetServer::HandleReadable(Conn& conn) {
  uint8_t buf[65536];
  for (;;) {
    if (conn.paused_read || conn.read_closed) return;
    const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      Teardown(conn, Status::IoError("read: " + ErrnoText()), false);
      return;
    }
    if (n == 0) {
      // Half-close: the client finished sending (shutdown(SHUT_WR)) and
      // is now reading replies. Stop watching EPOLLIN; retire once every
      // in-flight reply has flushed.
      conn.read_closed = true;
      UpdateInterest(conn);
      MaybeRetire(conn);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.bytes_in += static_cast<uint64_t>(n);
    }
    conn.assembler.Append(buf, static_cast<size_t>(n));
    std::vector<uint8_t> payload;
    for (;;) {
      StatusOr<bool> have = conn.assembler.Next(&payload);
      if (!have.ok()) {
        Teardown(conn, have.status(), true);
        return;
      }
      if (!*have) break;
      if (!HandleFrame(conn, payload)) return;
    }
    if (conn.unflushed() > options_.max_write_buffer_bytes &&
        !conn.paused_read) {
      // Backpressure: this client is not draining its replies, so stop
      // feeding its requests into the engine. EPOLLOUT stays armed; the
      // read side resumes once the buffer halves.
      conn.paused_read = true;
      UpdateInterest(conn);
      DSPOT_COUNT("serve.net.backpressure_pauses", 1);
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.backpressure_pauses;
      return;
    }
  }
}

bool NetServer::HandleFrame(Conn& conn, const std::vector<uint8_t>& payload) {
  const std::string context = "conn " + conn.peer;
  StatusOr<uint32_t> tag =
      PeekPayloadTag(payload.data(), payload.size(), context);
  if (!tag.ok()) {
    Teardown(conn, tag.status(), true);
    return false;
  }
  if (*tag == kServeHelloTag) {
    if (conn.saw_first_frame) {
      Teardown(conn,
               Status::InvalidArgument(
                   context + ": tenant handshake arrived after traffic"),
               true);
      return false;
    }
    StatusOr<std::string> tenant =
        DecodeHelloPayload(payload.data(), payload.size(), context);
    if (!tenant.ok()) {
      Teardown(conn, tenant.status(), true);
      return false;
    }
    conn.tenant = std::move(*tenant);
    conn.saw_first_frame = true;
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.handshakes;
    return true;
  }
  if (*tag != kServeRequestTag) {
    Teardown(conn,
             Status::DataLoss(context + ": unexpected frame tag " +
                              std::to_string(*tag) +
                              " (want a request or a handshake)"),
             true);
    return false;
  }
  StatusOr<ServeRequest> request =
      DecodeRequestPayload(payload.data(), payload.size(), context);
  if (!request.ok()) {
    Teardown(conn, request.status(), true);
    return false;
  }
  conn.saw_first_frame = true;
  request->tenant = conn.tenant;
  const uint64_t seq = conn.next_submit_seq++;
  ++conn.in_flight;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.requests;
  }
  const uint64_t conn_id = conn.id;
  engine_->SubmitWithCallback(
      std::move(*request), [this, conn_id, seq](ServeReply reply) {
        {
          std::lock_guard<std::mutex> lock(completions_mu_);
          completions_.push_back(Completion{conn_id, seq, std::move(reply)});
        }
        Wake();
      });
  return true;
}

void NetServer::ProcessCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    batch.swap(completions_);
  }
  if (batch.empty()) return;
  std::unordered_set<uint64_t> touched;
  for (Completion& completion : batch) {
    auto it = conns_.find(completion.conn_id);
    // A completion for a torn-down connection is dropped with it.
    if (it == conns_.end()) continue;
    it->second.ready.emplace(completion.seq, std::move(completion.reply));
    touched.insert(completion.conn_id);
  }
  for (uint64_t id : touched) {
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    PumpReplies(it->second);
  }
}

bool NetServer::PumpReplies(Conn& conn) {
  // Replies go on the wire in REQUEST order per connection, regardless of
  // the order worker batches completed them — the wire contract matches
  // the stdin/stdout pipe exactly.
  uint64_t queued = 0;
  while (!conn.ready.empty() &&
         conn.ready.begin()->first == conn.next_write_seq) {
    const std::vector<uint8_t> payload =
        EncodeReplyPayload(conn.ready.begin()->second);
    conn.ready.erase(conn.ready.begin());
    ++conn.next_write_seq;
    --conn.in_flight;
    if (payload.size() > kServeMaxFrameBytes) {
      // Unreachable by the forecast-cap static_assert, but a frame no
      // reader could accept must never be emitted.
      Teardown(conn,
               Status::InvalidArgument(
                   "conn " + conn.peer + ": reply payload " +
                   std::to_string(payload.size()) + " bytes exceeds cap"),
               false);
      return false;
    }
    uint8_t prefix[4];
    for (int i = 0; i < 4; ++i) {
      prefix[i] = static_cast<uint8_t>((payload.size() >> (8 * i)) & 0xff);
    }
    conn.wbuf.insert(conn.wbuf.end(), prefix, prefix + 4);
    conn.wbuf.insert(conn.wbuf.end(), payload.begin(), payload.end());
    ++queued;
  }
  if (queued > 0) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.replies += queued;
  }
  if (!FlushWrites(conn)) return false;
  return !MaybeRetire(conn);
}

bool NetServer::FlushWrites(Conn& conn) {
  while (conn.wpos < conn.wbuf.size()) {
    // send(MSG_NOSIGNAL), not write(): a peer that closed mid-reply must
    // surface as EPIPE on this connection, not SIGPIPE for the process.
    const ssize_t n =
        ::send(conn.fd, conn.wbuf.data() + conn.wpos,
               conn.wbuf.size() - conn.wpos, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      Teardown(conn, Status::IoError("write: " + ErrnoText()), false);
      return false;
    }
    conn.wpos += static_cast<size_t>(n);
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.bytes_out += static_cast<uint64_t>(n);
  }
  if (conn.wpos == conn.wbuf.size()) {
    conn.wbuf.clear();
    conn.wpos = 0;
  } else if (conn.wpos > (1u << 20) && conn.wpos * 2 >= conn.wbuf.size()) {
    conn.wbuf.erase(conn.wbuf.begin(),
                    conn.wbuf.begin() + static_cast<ptrdiff_t>(conn.wpos));
    conn.wpos = 0;
  }
  const bool need_out = conn.unflushed() > 0;
  bool interest_changed = false;
  if (need_out != conn.want_write) {
    conn.want_write = need_out;
    interest_changed = true;
  }
  if (conn.paused_read && !conn.read_closed &&
      conn.unflushed() < options_.max_write_buffer_bytes / 2) {
    conn.paused_read = false;
    interest_changed = true;
  }
  if (interest_changed) {
    UpdateInterest(conn);
  }
  return true;
}

void NetServer::UpdateInterest(Conn& conn) {
  epoll_event ev{};
  ev.events = 0;
  if (!conn.read_closed && !conn.paused_read) ev.events |= EPOLLIN;
  if (conn.want_write) ev.events |= EPOLLOUT;
  ev.data.u64 = conn.id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

bool NetServer::MaybeRetire(Conn& conn) {
  if (conn.read_closed && conn.in_flight == 0 && conn.ready.empty() &&
      conn.unflushed() == 0) {
    Teardown(conn, Status::Ok(), false);
    return true;
  }
  return false;
}

void NetServer::Teardown(Conn& conn, const Status& why, bool protocol_error) {
  if (protocol_error) {
    // One hostile or desynchronized client costs exactly one connection;
    // the located error names the peer and the byte that broke.
    std::fprintf(stderr, "dspot_serve: %s: connection closed: %s\n",
                 conn.peer.c_str(), why.ToString().c_str());
    DSPOT_COUNT("serve.net.desync_teardowns", 1);
  } else if (!why.ok()) {
    std::fprintf(stderr, "dspot_serve: %s: connection dropped: %s\n",
                 conn.peer.c_str(), why.ToString().c_str());
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
  ::close(conn.fd);
  const uint64_t id = conn.id;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.closed;
    if (protocol_error) ++stats_.desync_teardowns;
  }
  // `conn` dangles past this line.
  conns_.erase(id);
}

}  // namespace dspot

#else  // !__linux__

namespace dspot {

// epoll is Linux-only; other platforms keep the stdin/stdout transport.

NetServer::NetServer(ServeEngine* engine, const NetServerOptions& options)
    : engine_(engine), options_(options) {}

NetServer::~NetServer() = default;

Status NetServer::Start() {
  return Status::Unimplemented(
      "net_server: the TCP transport requires Linux epoll");
}

Status NetServer::Run() {
  return Status::Unimplemented(
      "net_server: the TCP transport requires Linux epoll");
}

void NetServer::Shutdown() {}

void NetServer::Wake() {}

NetServerStats NetServer::stats() const { return NetServerStats{}; }

void NetServer::AcceptReady() {}
void NetServer::HandleReadable(Conn&) {}
bool NetServer::HandleFrame(Conn&, const std::vector<uint8_t>&) {
  return false;
}
void NetServer::ProcessCompletions() {}
bool NetServer::PumpReplies(Conn&) { return false; }
bool NetServer::FlushWrites(Conn&) { return false; }
void NetServer::UpdateInterest(Conn&) {}
bool NetServer::MaybeRetire(Conn&) { return false; }
void NetServer::Teardown(Conn&, const Status&, bool) {}

}  // namespace dspot

#endif  // __linux__
