#include "tensor/activity_tensor.h"

namespace dspot {

Status ActivityTensor::SetKeywordName(size_t i, std::string name) {
  if (i >= d_) {
    return Status::OutOfRange("keyword index out of range");
  }
  keywords_[i] = std::move(name);
  return Status::Ok();
}

Status ActivityTensor::SetLocationName(size_t j, std::string name) {
  if (j >= l_) {
    return Status::OutOfRange("location index out of range");
  }
  locations_[j] = std::move(name);
  return Status::Ok();
}

size_t ActivityTensor::KeywordIndex(const std::string& name) const {
  for (size_t i = 0; i < d_; ++i) {
    if (keywords_[i] == name) return i;
  }
  return kNpos;
}

size_t ActivityTensor::LocationIndex(const std::string& name) const {
  for (size_t j = 0; j < l_; ++j) {
    if (locations_[j] == name) return j;
  }
  return kNpos;
}

Series ActivityTensor::LocalSequence(size_t i, size_t j) const {
  Series s(n_);
  for (size_t t = 0; t < n_; ++t) {
    s[t] = at(i, j, t);
  }
  return s;
}

Status ActivityTensor::SetLocalSequence(size_t i, size_t j, const Series& s) {
  if (i >= d_ || j >= l_) {
    return Status::OutOfRange("tensor index out of range");
  }
  if (s.size() != n_) {
    return Status::InvalidArgument("sequence length does not match tensor n");
  }
  for (size_t t = 0; t < n_; ++t) {
    at(i, j, t) = s[t];
  }
  return Status::Ok();
}

Series ActivityTensor::GlobalSequence(size_t i) const {
  Series out(n_);
  GlobalSequenceInto(i, out.mutable_values());
  return out;
}

void ActivityTensor::GlobalSequenceInto(size_t i, std::span<double> out) const {
  assert(out.size() == n_);
  for (size_t t = 0; t < n_; ++t) {
    double sum = 0.0;
    bool any = false;
    for (size_t j = 0; j < l_; ++j) {
      const double v = at(i, j, t);
      if (!IsMissing(v)) {
        sum += v;
        any = true;
      }
    }
    out[t] = any ? sum : kMissingValue;
  }
}

std::vector<Series> ActivityTensor::GlobalSequences() const {
  std::vector<Series> out;
  out.reserve(d_);
  for (size_t i = 0; i < d_; ++i) {
    out.push_back(GlobalSequence(i));
  }
  return out;
}

double ActivityTensor::TotalVolume() const {
  double sum = 0.0;
  for (double v : data_) {
    if (!IsMissing(v)) sum += v;
  }
  return sum;
}

size_t ActivityTensor::ObservedCount() const {
  size_t count = 0;
  for (double v : data_) {
    if (!IsMissing(v)) ++count;
  }
  return count;
}

}  // namespace dspot
