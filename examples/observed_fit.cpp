// Observed fit: run Δ-SPOT with the dspot_obs layer armed and inspect
// what the pipeline did — stage timings, solver counters, and a Chrome
// trace of every span.
//
// Observation is compiled in but off by default; a disarmed probe costs
// one relaxed atomic load and the fit result is bit-identical with
// observation on or off (tests/obs_test.cc asserts both). This example
// arms it programmatically; the CLI equivalent is
//   dspot_cli fit-tensor --input t.csv --metrics-json m.json --trace-out t.json
// and any binary can be armed externally with DSPOT_OBS=1 (or
// DSPOT_OBS=trace to also record spans as trace events).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/observed_fit
//
// Then open trace.json in chrome://tracing or https://ui.perfetto.dev.

#include <cstdio>

#include "core/dspot.h"
#include "datagen/catalog.h"
#include "datagen/generator.h"
#include "obs/export.h"
#include "obs/metrics.h"

int main() {
  using namespace dspot;  // NOLINT: example brevity

  GeneratorConfig config = GoogleTrendsConfig();
  config.n_ticks = 208;
  config.num_locations = 6;
  auto generated = GenerateTensor(TrendingKeywordSuite(), config);
  if (!generated.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  const ActivityTensor& tensor = generated->tensor;
  std::printf("Tensor: %zu keywords x %zu locations x %zu ticks\n\n",
              tensor.num_keywords(), tensor.num_locations(),
              tensor.num_ticks());

  // Arm metrics + trace recording before the fit. Everything the fit
  // pipeline reports from here on is captured by the registry.
  ObsOptions obs;
  obs.trace = true;
  ObsRegistry::Instance().Enable(obs);

  auto fit = FitDspot(tensor, DspotOptions{});
  if (!fit.ok()) {
    std::fprintf(stderr, "fit failed: %s\n", fit.status().ToString().c_str());
    return 1;
  }
  std::printf("Fit: %.1f bits, %zu shocks, %s\n\n", fit->total_cost_bits,
              fit->params.shocks.size(), fit->health.ToString().c_str());

  // 1. Human-readable table of every counter, gauge, and span histogram.
  const ObsSnapshot snapshot = ObsRegistry::Instance().Snapshot();
  std::printf("%s\n", RenderMetricsTable(snapshot).c_str());

  // 2. Machine-readable exports: a metrics snapshot for dashboards and a
  // Chrome trace for chrome://tracing / Perfetto.
  if (Status s = WriteMetricsJson("metrics.json"); !s.ok()) {
    std::fprintf(stderr, "metrics export failed: %s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = WriteChromeTrace("trace.json"); !s.ok()) {
    std::fprintf(stderr, "trace export failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote metrics.json and trace.json (%zu trace events)\n",
              ObsRegistry::Instance().TraceEvents().size());
  return 0;
}
