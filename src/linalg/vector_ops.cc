#include "linalg/vector_ops.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "kernels/reduce.h"

namespace dspot {

double Dot(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    sum += a[i] * b[i];
  }
  return sum;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  return Dot(std::span<const double>(a), std::span<const double>(b));
}

double Norm2(std::span<const double> v) { return std::sqrt(Dot(v, v)); }

double Norm2(const std::vector<double>& v) {
  return Norm2(std::span<const double>(v));
}

double NormInf(std::span<const double> v) {
  double best = 0.0;
  for (double x : v) {
    best = std::max(best, std::fabs(x));
  }
  return best;
}

double NormInf(const std::vector<double>& v) {
  return NormInf(std::span<const double>(v));
}

std::vector<double> Add(const std::vector<double>& a,
                        const std::vector<double>& b) {
  assert(a.size() == b.size());
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    out[i] = a[i] + b[i];
  }
  return out;
}

std::vector<double> Sub(const std::vector<double>& a,
                        const std::vector<double>& b) {
  assert(a.size() == b.size());
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    out[i] = a[i] - b[i];
  }
  return out;
}

std::vector<double> Scaled(const std::vector<double>& v, double s) {
  std::vector<double> out(v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    out[i] = v[i] * s;
  }
  return out;
}

void Axpy(double s, const std::vector<double>& b, std::vector<double>* a) {
  assert(a != nullptr && a->size() == b.size());
  for (size_t i = 0; i < b.size(); ++i) {
    (*a)[i] += s * b[i];
  }
}

// SIMD reduction (golden-tolerance policy: deterministic, but the lane
// accumulators reorder the additions relative to the old Dot(v, v) fold —
// see src/kernels/dspot_simd.h). LM cost comparisons and convergence
// checks tolerate the relative-1e-12-scale difference.
double SumSquares(std::span<const double> v) { return kernels::SumSquares(v); }

double SumSquares(const std::vector<double>& v) {
  return SumSquares(std::span<const double>(v));
}

}  // namespace dspot
