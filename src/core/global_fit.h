#ifndef DSPOT_CORE_GLOBAL_FIT_H_
#define DSPOT_CORE_GLOBAL_FIT_H_

#include <cstddef>
#include <vector>

#include "common/statusor.h"
#include "core/params.h"
#include "core/shock_detection.h"
#include "guard/guard.h"
#include "mdl/mdl.h"
#include "tensor/activity_tensor.h"
#include "timeseries/series.h"

namespace dspot {

/// What GlobalFit does with a keyword whose fit returns an error.
enum class KeywordErrorPolicy {
  /// Propagate the error of the lowest failing keyword (the default, and
  /// the historical behavior): one bad keyword fails the whole fit.
  kFail = 0,
  /// Keep going: failed keywords get default parameters and no shocks,
  /// their Status is recorded in the per-keyword report, and the overall
  /// fit succeeds with the keywords that did fit. Cancellation still
  /// fails the whole fit (it is caller-initiated, not data-driven).
  kSkipAndReport,
};

/// GLOBALFIT (Algorithm 2): per keyword, alternates Levenberg-Marquardt
/// fitting of the base (B_G) and growth (R_G) parameters with greedy,
/// MDL-gated external-shock detection, until the total code length stops
/// improving.
struct GlobalFitOptions {
  /// Outer alternation rounds (base/growth fit <-> shock detection).
  int max_outer_rounds = 4;
  /// Cap on shocks per keyword (the MDL gate usually stops earlier).
  size_t max_shocks_per_keyword = 8;
  /// Shock proposal knobs.
  ShockDetectionOptions detection;
  /// Number of grid points for the growth-onset (t_eta) search.
  size_t growth_grid = 24;
  /// Upper bound for the growth rate eta_0 and shock strength eps_0.
  double max_growth_rate = 4.0;
  double max_shock_strength = 50.0;
  /// Ablation switches (Fig. 4): disable the growth effect / the external
  /// shock machinery.
  bool allow_growth = true;
  bool allow_shocks = true;
  /// Minimum relative MDL improvement for accepting a richer model.
  double min_cost_decrease = 1e-4;
  /// Minimum relative RMSE improvement for the *optimistic* acceptance of
  /// a shock or growth term during forward search (strict MDL pruning
  /// still runs afterwards; see TryAddShock in the implementation).
  double min_rmse_decrease = 0.02;
  /// Backward pruning drops a shock unless keeping it saves at least this
  /// many bits. With Gaussian coding and an ML-estimated sigma, a tiny
  /// noise-fitting comb can "save" a couple of bits on a long sequence;
  /// real event trains save tens to hundreds. Kept small so genuine events
  /// on short sequences (e.g. 92-tick memes) survive.
  double prune_slack_bits = 4.0;
  /// Prints per-stage costs to stderr (debugging aid).
  bool verbose = false;
  /// Cross-check switch for the base-parameter LM solves: false (the
  /// default) supplies LM with the analytic forward-mode Jacobian of the
  /// SIV recurrence (one dual-number simulation per iteration); true
  /// restores the historical forward-difference Jacobian (five
  /// re-simulations per iteration). Both converge to the same fits within
  /// golden tolerance; tests and bench_micro compare the two modes.
  bool use_numeric_jacobian = false;
  /// Data-coding model for Cost_C (Gaussian is the paper's choice; the
  /// Poisson code is a count-aware alternative, ablated in
  /// bench_ablation_coding).
  CodingModel coding_model = CodingModel::kGaussian;
  /// Ablation hook (bench_ablation_mdl): return the last greedy state of
  /// the alternation instead of the MDL-optimal snapshot. Never enable in
  /// production use — it disables the parsimony guarantee.
  bool return_final_state = false;
  /// Worker threads for fitting keywords concurrently in GlobalFit
  /// (0 = hardware concurrency, 1 = serial). Each keyword's GLOBALFIT is
  /// independent and results are assembled in keyword order, so the fit
  /// is bit-identical at any thread count. FitDspot plumbs
  /// DspotOptions::num_threads through this field.
  size_t num_threads = 1;
  /// Deadline/cancellation pair, checked at alternation-round and
  /// shock-addition boundaries (and inside every LM solve). On deadline
  /// expiry the fit returns OK with its best-so-far model and
  /// health.termination == kDeadlineExceeded; on cancellation it returns
  /// Status::Cancelled. Inactive by default, in which case the checks are
  /// a single relaxed atomic load.
  GuardContext guard;
  /// Error policy for GlobalFit's per-keyword loop (see KeywordErrorPolicy).
  KeywordErrorPolicy on_keyword_error = KeywordErrorPolicy::kFail;
  /// Optional warm start. When non-null, keywords present in this set are
  /// fit via RefitGlobalSequence seeded from its parameters and shocks —
  /// skipping the cold multi-start/MDL grid search — and keywords beyond
  /// it fall back to a cold fit. The pointee must outlive the call; the
  /// tensor must span at least `warm_start->num_ticks` ticks. Null (the
  /// default) leaves the cold path bit-identical to builds without this
  /// field. Typically loaded from a ModelSnapshot (src/snapshot).
  const ModelParamSet* warm_start = nullptr;
};

/// Result of fitting one global sequence.
struct GlobalSequenceFit {
  KeywordGlobalParams params;
  std::vector<Shock> shocks;  ///< keyword field already set
  Series estimate;            ///< fitted I(t) over the training range
  double cost_bits = 0.0;     ///< per-keyword MDL total
  double rmse = 0.0;
  /// Rounds run, LM divergence restarts taken, wall time, and why the
  /// alternation stopped (kDeadlineExceeded marks a partial fit).
  FitHealth health;
};

/// Fits Model 1 to a single global sequence x-bar_i. `keyword` tags the
/// produced shocks; `num_keywords` enters the shock description cost.
StatusOr<GlobalSequenceFit> FitGlobalSequence(
    const Series& data, size_t keyword, size_t num_keywords,
    const GlobalFitOptions& options = GlobalFitOptions());

/// Incremental (streaming) refit: given a fit of a prefix of `data` and
/// the now-longer sequence, warm-starts from the previous parameters —
/// cyclic shocks are extended with fresh occurrences at their shared
/// strength — and runs a short alternation. Much cheaper than a cold fit
/// and stable across updates; new events in the appended range are still
/// detected.
StatusOr<GlobalSequenceFit> RefitGlobalSequence(
    const Series& data, size_t keyword, size_t num_keywords,
    const GlobalSequenceFit& previous,
    const GlobalFitOptions& options = GlobalFitOptions());

/// Runs GLOBALFIT over every keyword of the tensor and assembles the
/// global half of the parameter set (B_G, R_G, S at the global level).
///
/// When `keyword_status` is non-null it receives one Status per keyword
/// (OK for fitted keywords). When `health` is non-null it receives the
/// merged FitHealth of every keyword fit. Under
/// `options.on_keyword_error == kSkipAndReport`, per-keyword errors do
/// not fail the call: failed keywords keep default parameters and are
/// reported through `keyword_status` instead. Cancellation always fails
/// the call with Status::Cancelled.
StatusOr<ModelParamSet> GlobalFit(
    const ActivityTensor& tensor,
    const GlobalFitOptions& options = GlobalFitOptions(),
    std::vector<Status>* keyword_status = nullptr,
    FitHealth* health = nullptr);

}  // namespace dspot

#endif  // DSPOT_CORE_GLOBAL_FIT_H_
