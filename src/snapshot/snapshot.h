#ifndef DSPOT_SNAPSHOT_SNAPSHOT_H_
#define DSPOT_SNAPSHOT_SNAPSHOT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "core/dspot.h"
#include "core/params.h"
#include "guard/guard.h"
#include "tensor/activity_tensor.h"
#include "tensor/normalization.h"

namespace dspot {

/// Versioned, endian-stable persistence for fitted Δ-SPOT models — the
/// substrate for serving: fit once, save, then load to forecast,
/// warm-start a refit, or absorb newly arrived ticks (see update.h).
///
/// Two interchangeable backends share one *canonical payload*: the
/// little-endian binary encoding of the model. The binary file stores
/// that payload directly (magic + version + length + payload + CRC-32);
/// the JSON file stores the same fields as human-readable JSON plus the
/// CRC of the canonical payload. A JSON load re-encodes the parsed model
/// canonically and compares checksums, so *both* backends detect
/// corruption and agree bit for bit: load(binary) == load(json) exactly.

/// Everything needed to resume serving a fitted model: the parameter set,
/// the tensor's labels, the per-keyword normalization applied before
/// fitting, and the fit's quality/health summary.
struct ModelSnapshot {
  ModelParamSet params;
  std::vector<std::string> keywords;
  std::vector<std::string> locations;
  /// Per-keyword normalization factors (empty when the tensor was fit
  /// unnormalized). Needed to map forecasts back to original units.
  std::vector<ScaleInfo> scales;
  /// Per-keyword in-sample RMSE and the model's total MDL cost.
  std::vector<double> global_rmse;
  double total_cost_bits = 0.0;
  FitHealth health;
};

/// Assembles a snapshot from a fit result and the tensor it was fit on
/// (labels come from the tensor). `scales` may be empty.
ModelSnapshot MakeSnapshot(const DspotResult& result,
                           const ActivityTensor& tensor,
                           const std::vector<ScaleInfo>& scales = {});

enum class SnapshotFormat {
  kBinary,  ///< "DSPOTSNP" magic, canonical payload, CRC-32 trailer
  kJson,    ///< same fields as JSON; carries the canonical payload's CRC
};

/// Current (and only) payload format version.
inline constexpr uint32_t kSnapshotVersion = 1;

/// Writes `snapshot` to `path`. Binary files are byte-identical across
/// hosts for identical models.
Status SaveSnapshot(const ModelSnapshot& snapshot, const std::string& path,
                    SnapshotFormat format = SnapshotFormat::kBinary);

/// Reads a snapshot, sniffing the format from the leading bytes. Errors
/// carry location context:
///  * bad magic / not a snapshot        -> InvalidArgument
///  * unsupported (future) version      -> InvalidArgument, names both
///  * truncation, checksum mismatch,
///    or impossible embedded values     -> DataLoss with "<path>: offset"
/// A non-OK load never returns a partially decoded model.
StatusOr<ModelSnapshot> LoadSnapshot(const std::string& path);

/// The canonical payload bytes of `snapshot` (exposed for tests and for
/// the JSON backend's checksum; stable across hosts).
std::vector<uint8_t> EncodeSnapshotPayload(const ModelSnapshot& snapshot);

/// The complete binary-file bytes of `snapshot` — magic, version, length,
/// payload, CRC-32 — i.e. exactly what SaveSnapshot(kBinary) writes. For
/// callers that own the write path themselves (the serve registry writes
/// cache spill files without per-file fsync; a crash merely loses a
/// rebuildable cache entry).
std::vector<uint8_t> EncodeSnapshotFile(const ModelSnapshot& snapshot);

}  // namespace dspot

#endif  // DSPOT_SNAPSHOT_SNAPSHOT_H_
