#include "optimize/levenberg_marquardt.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <span>

#include "common/random.h"
#include "guard/fault_injector.h"
#include "linalg/vector_ops.h"
#include "obs/metrics.h"
#include "parallel/parallel_for.h"

namespace dspot {

namespace {

/// Computes the forward-difference Jacobian of `fn` at `p` into `ws->jac`.
/// `r0` is the residual vector already evaluated at `p`. Steps are clamped
/// so probe points stay inside `bounds` (by stepping backwards when at the
/// upper bound). The serial path reuses the workspace probe buffers and is
/// allocation-free once warm. Columns are evaluated in parallel once the
/// parameter count reaches `options.parallel_jacobian_min_params` (and
/// `options.num_threads != 1`); each task owns one probe vector and one
/// scratch residual buffer reused across its whole block of columns, so
/// concurrent probes do not churn allocations. Column j writes only
/// column j of the Jacobian, so the result is bit-identical at any
/// thread count.
Status NumericJacobianInto(const ResidualIntoFn& fn,
                           const std::vector<double>& p,
                           const std::vector<double>& r0, const Bounds& bounds,
                           const LmOptions& options, LmWorkspace* ws) {
  DSPOT_SPAN("lm.jacobian");
  const size_t np = p.size();
  const size_t m = r0.size();
  Matrix& jac = ws->jac;
  jac.Resize(m, np);
  const size_t threads = EffectiveNumThreads(options.num_threads);
  if (threads <= 1 || np < options.parallel_jacobian_min_params) {
    // Serial hot path: no per-call status array, the first failing column
    // returns directly (same column order as the parallel tie-break).
    std::vector<double>& probe = ws->probe;
    probe = p;
    std::vector<double>& r1 = ws->probe_r;
    r1.resize(m);
    for (size_t j = 0; j < np; ++j) {
      double h = options.jacobian_step * std::max(1.0, std::fabs(p[j]));
      // Step backwards if a forward step would leave the box.
      if (!bounds.empty() && p[j] + h > bounds.upper[j]) {
        h = -h;
      }
      probe[j] = p[j] + h;
      Status s = fn(probe, r1);
      probe[j] = p[j];
      if (!s.ok()) {
        return s;
      }
      const double inv_h = 1.0 / h;
      for (size_t i = 0; i < m; ++i) {
        jac(i, j) = (r1[i] - r0[i]) * inv_h;
      }
    }
    return Status::Ok();
  }
  std::vector<Status> statuses(np, Status::Ok());
  // One invocation per contiguous column block; scratch lives across the
  // block. On error the rest of the block is skipped — the first failing
  // column (lowest index, see below) decides the returned status, exactly
  // like the serial early return does.
  auto eval_columns = [&](size_t begin, size_t end) {
    std::vector<double> probe = p;
    std::vector<double> r1(m);
    for (size_t j = begin; j < end; ++j) {
      double h = options.jacobian_step * std::max(1.0, std::fabs(p[j]));
      if (!bounds.empty() && p[j] + h > bounds.upper[j]) {
        h = -h;
      }
      probe[j] = p[j] + h;
      Status s = fn(probe, r1);
      probe[j] = p[j];
      if (!s.ok()) {
        statuses[j] = std::move(s);
        return;
      }
      const double inv_h = 1.0 / h;
      for (size_t i = 0; i < m; ++i) {
        jac(i, j) = (r1[i] - r0[i]) * inv_h;
      }
    }
  };
  ParallelOptions popts;
  popts.num_threads = options.num_threads;
  // One block per runner: scratch allocations stay O(threads).
  popts.grain = (np + threads - 1) / threads;
  ParallelForBlocks(np, popts, eval_columns);
  for (size_t j = 0; j < np; ++j) {
    if (!statuses[j].ok()) {
      return statuses[j];
    }
  }
  return Status::Ok();
}

double HalfSumSquares(std::span<const double> r) {
  return 0.5 * SumSquares(r);
}

/// A cost this size means the model left its meaningful regime: healthy
/// Δ-SPOT residuals are bounded by the box constraints at ~1e23, so 1e100
/// only triggers on genuine blow-ups — treating it as divergence (instead
/// of climbing the lambda ladder) cannot change a healthy fit.
constexpr double kExplodingCost = 1e100;

bool IsDivergentCost(double cost) {
  return !std::isfinite(cost) || cost > kExplodingCost;
}

/// Deterministic restart start point: the rewind anchor perturbed by a
/// seed-derived relative jitter, clamped back into the box. Attempt k
/// draws from Random(restart_seed).Child(k), so the sequence of starts is
/// a pure function of the options.
void JitterFromAnchor(std::span<const double> anchor, const Bounds& bounds,
                      const LmOptions& options, int attempt,
                      std::span<double> p) {
  Random rng = Random(options.restart_seed).Child(
      static_cast<uint64_t>(attempt));
  for (size_t j = 0; j < anchor.size(); ++j) {
    const double scale = std::max(1.0, std::fabs(anchor[j]));
    p[j] = anchor[j] + options.restart_jitter * scale * rng.Uniform(-1.0, 1.0);
  }
  bounds.Clamp(p);
}

}  // namespace

StatusOr<LmResult> LevenbergMarquardt(const ResidualIntoFn& residual_fn,
                                      size_t num_residuals,
                                      const std::vector<double>& initial,
                                      const Bounds& bounds,
                                      const LmOptions& options,
                                      LmWorkspace* workspace) {
  if (workspace == nullptr) {
    return Status::InvalidArgument("LevenbergMarquardt: null workspace");
  }
  if (initial.empty()) {
    return Status::InvalidArgument("LevenbergMarquardt: empty parameters");
  }
  if (!bounds.empty() && (bounds.lower.size() != initial.size() ||
                          bounds.upper.size() != initial.size())) {
    return Status::InvalidArgument(
        "LevenbergMarquardt: bounds size does not match parameters");
  }
  if (num_residuals == 0) {
    return Status::InvalidArgument("LevenbergMarquardt: empty residuals");
  }
  if (MaybeInjectFault(FaultSite::kAllocation)) {
    return Status::Internal(
        "LevenbergMarquardt: injected workspace allocation failure");
  }

  DSPOT_SPAN("lm.solve");
  DSPOT_COUNT("lm.solves", 1);
  const auto start_time = std::chrono::steady_clock::now();
  LmWorkspace& ws = *workspace;
  const size_t np = initial.size();
  const size_t m = num_residuals;

  std::vector<double>& p = ws.p;
  p = initial;
  bounds.Clamp(std::span<double>(p));

  std::vector<double>& r = ws.r;
  r.resize(m);

  LmResult result;
  // Best-so-far across restarts: within one attempt p improves
  // monotonically, but a restart jitters away from it, so the returned
  // iterate is tracked explicitly.
  std::vector<double>& best_p = ws.best_p;
  double best_cost = std::numeric_limits<double>::infinity();
  bool have_best = false;
  bool have_initial_cost = false;
  const int max_restarts = std::max(options.max_restarts, 0);
  // Outer iterations (one Jacobian each) are budgeted across all
  // attempts, so divergence recovery never multiplies the worst case.
  int outer_iters = 0;
  int attempt = 0;
  bool stopped_by_guard = false;

  auto finish = [&](FitTermination termination) -> LmResult {
    DSPOT_COUNT("lm.iterations", static_cast<uint64_t>(result.iterations));
    if (have_best) {
      result.params = best_p;
      result.final_cost = best_cost;
    } else {
      result.params = p;
      result.final_cost = std::numeric_limits<double>::quiet_NaN();
    }
    result.health.iterations = result.iterations;
    result.health.termination = termination;
    result.health.wall_time_ms = ElapsedMs(start_time);
    return result;
  };

  for (;;) {
    DSPOT_RETURN_IF_ERROR(residual_fn(p, r));
    double cost = HalfSumSquares(r);
    if (MaybeInjectFault(FaultSite::kNanAtResidual)) {
      cost = std::numeric_limits<double>::quiet_NaN();
    }
    if (IsDivergentCost(cost)) {
      DSPOT_COUNT("lm.divergence_events", 1);
      // Hostile start: rewind to the best-so-far iterate (or the clamped
      // initial when none exists yet) and retry from a jittered copy.
      if (attempt >= max_restarts) {
        if (have_best) {
          return finish(FitTermination::kStalled);
        }
        return Status::NumericalError(
            "LevenbergMarquardt: non-finite cost at the initial point");
      }
      ++result.health.restarts;
      DSPOT_COUNT("lm.restarts", 1);
      if (have_best) {
        JitterFromAnchor(best_p, bounds, options, attempt, p);
      } else {
        std::vector<double>& anchor = ws.candidate;
        anchor = initial;
        bounds.Clamp(std::span<double>(anchor));
        JitterFromAnchor(anchor, bounds, options, attempt, p);
      }
      ++attempt;
      continue;
    }
    if (!have_initial_cost) {
      result.initial_cost = cost;
      have_initial_cost = true;
    }
    if (!have_best || cost < best_cost) {
      best_p = p;
      best_cost = cost;
      have_best = true;
    }

    double lambda = options.initial_lambda;
    bool diverged = false;
    bool stalled = false;
    while (outer_iters < options.max_iterations) {
      if (options.guard.active() || FaultInjector::Instance().armed()) {
        Status guard_status = options.guard.Check("LevenbergMarquardt");
        if (!guard_status.ok()) {
          if (guard_status.code() == StatusCode::kCancelled) {
            return guard_status;
          }
          stopped_by_guard = true;
          break;
        }
      }
      ++outer_iters;
      if (options.analytic_jacobian) {
        DSPOT_SPAN("lm.jacobian");
        ws.jac.Resize(m, np);
        DSPOT_RETURN_IF_ERROR(options.analytic_jacobian(p, &ws.jac));
      } else {
        DSPOT_RETURN_IF_ERROR(
            NumericJacobianInto(residual_fn, p, r, bounds, options, &ws));
      }
      // Normal equations: (J^T J + lambda I) step = -J^T r.
      ws.jac.GramInto(&ws.jtj);
      ws.jtr.resize(np);
      ws.jac.TransposedTimesInto(r, ws.jtr);
      if (NormInf(std::span<const double>(ws.jtr)) <
          options.gradient_tolerance) {
        result.converged = true;
        break;
      }

      bool accepted = false;
      while (lambda <= options.max_lambda) {
        // Copy-assignment reuses the destination's storage once warm.
        ws.damped = ws.jtj;
        ws.damped.AddToDiagonal(lambda);
        ws.neg_jtr.resize(np);
        for (size_t i = 0; i < np; ++i) {
          ws.neg_jtr[i] = ws.jtr[i] * -1.0;
        }
        ws.step.resize(np);
        Status solve =
            RegularizedLdltSolveInto(ws.damped, ws.neg_jtr, ws.step, &ws.ldlt);
        if (MaybeInjectFault(FaultSite::kSolverFailure)) {
          solve = Status::NumericalError(
              "LevenbergMarquardt: injected normal-equation solve failure");
        }
        if (!solve.ok()) {
          lambda *= options.lambda_up;
          continue;
        }
        std::vector<double>& candidate = ws.candidate;
        candidate.resize(np);
        for (size_t i = 0; i < np; ++i) {
          candidate[i] = p[i] + ws.step[i];
        }
        bounds.Clamp(std::span<double>(candidate));
        std::vector<double>& actual_step = ws.actual_step;
        actual_step.resize(np);
        for (size_t i = 0; i < np; ++i) {
          actual_step[i] = candidate[i] - p[i];
        }

        std::vector<double>& r_new = ws.r_new;
        r_new.resize(m);
        Status s = residual_fn(candidate, r_new);
        if (!s.ok()) {
          return s;
        }
        double cost_new = HalfSumSquares(r_new);
        if (MaybeInjectFault(FaultSite::kNanAtResidual)) {
          cost_new = std::numeric_limits<double>::quiet_NaN();
        }
        if (IsDivergentCost(cost_new)) {
          DSPOT_COUNT("lm.divergence_events", 1);
          // A NaN/exploding trial can never satisfy the acceptance test:
          // bail out of the lambda ladder immediately instead of burning
          // it to max_lambda, and let divergence recovery take over.
          diverged = true;
          break;
        }
        if (cost_new < cost) {
          const double rel_decrease =
              (cost - cost_new) / std::max(cost, 1e-30);
          const double step_norm =
              NormInf(std::span<const double>(actual_step));
          std::swap(p, candidate);
          std::swap(r, r_new);
          cost = cost_new;
          if (cost < best_cost) {
            best_p = p;
            best_cost = cost;
          }
          lambda = std::max(lambda * options.lambda_down, 1e-12);
          accepted = true;
          ++result.iterations;
          if (rel_decrease < options.cost_tolerance ||
              step_norm < options.step_tolerance) {
            result.converged = true;
          }
          break;
        }
        lambda *= options.lambda_up;
      }
      if (diverged) {
        break;
      }
      if (!accepted || result.converged) {
        // Either lambda blew past its cap (stuck) or we converged.
        stalled = !accepted;
        result.converged = result.converged || !accepted;
        break;
      }
    }

    if (stopped_by_guard) {
      return finish(FitTermination::kDeadlineExceeded);
    }
    if (diverged && attempt < max_restarts &&
        outer_iters < options.max_iterations) {
      ++result.health.restarts;
      DSPOT_COUNT("lm.restarts", 1);
      JitterFromAnchor(best_p, bounds, options, attempt, p);
      ++attempt;
      continue;
    }
    if (diverged || stalled) {
      return finish(FitTermination::kStalled);
    }
    if (result.converged) {
      return finish(FitTermination::kConverged);
    }
    return finish(FitTermination::kMaxIterations);
  }
}

StatusOr<LmResult> LevenbergMarquardt(const ResidualFn& residual_fn,
                                      const std::vector<double>& initial,
                                      const Bounds& bounds,
                                      const LmOptions& options) {
  if (initial.empty()) {
    return Status::InvalidArgument("LevenbergMarquardt: empty parameters");
  }
  if (!bounds.empty() && (bounds.lower.size() != initial.size() ||
                          bounds.upper.size() != initial.size())) {
    return Status::InvalidArgument(
        "LevenbergMarquardt: bounds size does not match parameters");
  }
  // Probe once at the clamped initial point to learn the residual count m
  // (residual functions are deterministic per contract, so the workspace
  // core's own initial evaluation reproduces this result bit-for-bit).
  std::vector<double> p0 = initial;
  bounds.Clamp(&p0);
  std::vector<double> r0;
  DSPOT_RETURN_IF_ERROR(residual_fn(p0, &r0));
  if (r0.empty()) {
    return Status::InvalidArgument("LevenbergMarquardt: empty residuals");
  }
  const size_t m = r0.size();
  // Per-call local buffers keep the wrapper safe under the parallel
  // Jacobian, which may invoke it concurrently.
  ResidualIntoFn into = [&residual_fn](std::span<const double> params,
                                       std::span<double> out) -> Status {
    std::vector<double> p(params.begin(), params.end());
    std::vector<double> r;
    r.reserve(out.size());
    DSPOT_RETURN_IF_ERROR(residual_fn(p, &r));
    if (r.size() != out.size()) {
      return Status::Internal("residual size changed between LM evaluations");
    }
    std::copy(r.begin(), r.end(), out.begin());
    return Status::Ok();
  };
  LmWorkspace ws;
  return LevenbergMarquardt(into, m, initial, bounds, options, &ws);
}

}  // namespace dspot
