# CLI smoke test, run via `cmake -P` from a ctest entry. Exercises the
# strict numeric-flag parsing (rejections must fail with a usage error,
# not mis-parse to zero) and the observability exports (--metrics-json /
# --trace-out must produce valid-looking JSON with the core fit spans).
#
# Expects:
#   -DDSPOT_CLI=<path to the dspot_cli binary>
#   -DWORK_DIR=<scratch directory>

if(NOT DEFINED DSPOT_CLI OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "cli_smoke_test.cmake needs -DDSPOT_CLI and -DWORK_DIR")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(tensor_csv "${WORK_DIR}/smoke_tensor.csv")
set(metrics_json "${WORK_DIR}/smoke_metrics.json")
set(trace_json "${WORK_DIR}/smoke_trace.json")

function(expect_success)
  execute_process(COMMAND ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "expected success, got rc=${rc}:\n${out}\n${err}")
  endif()
endfunction()

# A rejected invocation must exit non-zero AND say why on stderr; an
# accidental exit-1 from a different failure (e.g. a file error) would
# make this test pass vacuously without the expected_error check.
function(expect_usage_error expected_error)
  set(cmd ${ARGN})
  execute_process(COMMAND ${cmd}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(rc EQUAL 0)
    message(FATAL_ERROR "expected failure for: ${cmd}\n${out}")
  endif()
  if(NOT err MATCHES "${expected_error}")
    message(FATAL_ERROR
            "expected stderr matching '${expected_error}' for: ${cmd}\n"
            "got:\n${err}")
  endif()
endfunction()

# --- Numeric flag rejections -------------------------------------------------
expect_usage_error("--threads: 0 must be"
                   "${DSPOT_CLI}" fit --series nofile.csv --threads=0)
expect_usage_error("--threads: 0 must be"
                   "${DSPOT_CLI}" fit-tensor --input nofile.csv --threads 0)
expect_usage_error("--time-budget-ms: -5 must be"
                   "${DSPOT_CLI}" fit --series nofile.csv --time-budget-ms -5)
expect_usage_error("--threads: not an integer: '2x'"
                   "${DSPOT_CLI}" fit --series nofile.csv --threads 2x)
expect_usage_error("--ticks: not an integer"
                   "${DSPOT_CLI}" generate --scenario harry_potter
                   --output "${tensor_csv}" --ticks 12.5)
expect_usage_error("--resolution: 0 must be"
                   "${DSPOT_CLI}" aggregate --events nofile.csv
                   --output out.csv --resolution 0)
expect_usage_error("--flush-every: 0 must be"
                   "${DSPOT_CLI}" stream --events nofile.csv --flush-every 0)
expect_usage_error("usage: dspot_cli stream"
                   "${DSPOT_CLI}" stream)

# --- Generate + observed fit -------------------------------------------------
expect_success("${DSPOT_CLI}" generate --scenario harry_potter
               --output "${tensor_csv}" --ticks 120 --locations 3)
expect_success("${DSPOT_CLI}" fit-tensor --input "${tensor_csv}" --threads 2
               --metrics-json "${metrics_json}" --trace-out "${trace_json}")

foreach(artifact "${metrics_json}" "${trace_json}")
  if(NOT EXISTS "${artifact}")
    message(FATAL_ERROR "missing obs artifact: ${artifact}")
  endif()
endforeach()

# Structural spot checks: the metrics snapshot names the fit counters and
# the Chrome trace carries the three headline span families.
file(READ "${metrics_json}" metrics_body)
foreach(needle "\"counters\"" "\"histograms\"" "fit_dspot.calls"
        "global_fit.rounds" "lm.solves")
  if(NOT metrics_body MATCHES "${needle}")
    message(FATAL_ERROR "metrics json lacks ${needle}:\n${metrics_body}")
  endif()
endforeach()

file(READ "${trace_json}" trace_body)
foreach(needle "traceEvents" "global_fit.round" "local_fit.location"
        "lm.solve")
  if(NOT trace_body MATCHES "${needle}")
    message(FATAL_ERROR "chrome trace lacks ${needle}")
  endif()
endforeach()

# --- Streaming replay --------------------------------------------------------
# A small arrival-ordered event log: one keyword with a level + wiggle
# series long enough for a cold fit (>= 32 ticks) plus follow-up ticks.
set(events_csv "${WORK_DIR}/smoke_events.csv")
set(stream_state "${WORK_DIR}/smoke_stream.state")
set(events_body "keyword,location,timestamp,count\n")
foreach(t RANGE 47)
  math(EXPR wiggle "${t} % 5")
  math(EXPR level "20 + ${wiggle}")
  string(APPEND events_body "hp,all,${t},${level}\n")
endforeach()
file(WRITE "${events_csv}" "${events_body}")

expect_success("${DSPOT_CLI}" stream --events "${events_csv}"
               --flush-every 16 --horizon 8
               --save-state "${stream_state}")
if(NOT EXISTS "${stream_state}")
  message(FATAL_ERROR "stream --save-state left no state file")
endif()

# Resuming from the saved state must serve the persisted forecast without
# replaying or refitting anything.
execute_process(COMMAND "${DSPOT_CLI}" stream --load-state "${stream_state}"
                        --forecast hp
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE stream_out
                ERROR_VARIABLE stream_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "stream --load-state failed:\n${stream_out}\n${stream_err}")
endif()
foreach(needle "resumed 1 keyword" "forecast hp"
        "0 cold fit" "1 keyword\\(s\\) carry a fitted model")
  if(NOT stream_out MATCHES "${needle}")
    message(FATAL_ERROR "stream resume output lacks '${needle}':\n${stream_out}")
  endif()
endforeach()

# An unknown forecast keyword is a hard error, not a silent no-op.
expect_usage_error("keyword 'nope' not in the stream"
                   "${DSPOT_CLI}" stream --load-state "${stream_state}"
                   --forecast nope)

# --- Durable streaming (WAL + crash recovery) --------------------------------
expect_usage_error("--fsync-policy must be one of never\\|flush\\|everyn"
                   "${DSPOT_CLI}" stream --events "${events_csv}"
                   --wal-dir "${WORK_DIR}/nope" --fsync-policy sometimes)
expect_usage_error("--recover requires --wal-dir"
                   "${DSPOT_CLI}" stream --recover --events "${events_csv}")
expect_usage_error("mutually exclusive"
                   "${DSPOT_CLI}" stream --wal-dir "${WORK_DIR}/nope"
                   --load-state "${stream_state}")

# A 60-tick event log and its tail from t=40 on. The split point sits
# inside a --flush-every 16 bucket (39/16 == 40/16 == 2), so a reference
# run over the full log and a killed-then-recovered run that resumes with
# the tail see the exact same flush schedule.
set(durable_events "${WORK_DIR}/durable_events.csv")
set(durable_tail "${WORK_DIR}/durable_tail.csv")
set(full_body "keyword,location,timestamp,count\n")
set(tail_body "keyword,location,timestamp,count\n")
foreach(t RANGE 59)
  math(EXPR wiggle "${t} % 5")
  math(EXPR level "20 + ${wiggle}")
  string(APPEND full_body "hp,all,${t},${level}\n")
  if(t GREATER_EQUAL 40)
    string(APPEND tail_body "hp,all,${t},${level}\n")
  endif()
endforeach()
file(WRITE "${durable_events}" "${full_body}")
file(WRITE "${durable_tail}" "${tail_body}")

set(wal_ref "${WORK_DIR}/wal_ref")
set(wal_crash "${WORK_DIR}/wal_crash")
file(REMOVE_RECURSE "${wal_ref}" "${wal_crash}")

# Reference: the full log through a fresh WAL dir, uninterrupted.
execute_process(COMMAND "${DSPOT_CLI}" stream --events "${durable_events}"
                        --flush-every 16 --horizon 8 --wal-dir "${wal_ref}"
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE ref_out
                ERROR_VARIABLE ref_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "durable reference run failed:\n${ref_out}\n${ref_err}")
endif()
string(REGEX MATCH "forecast hp[^\n]*" ref_forecast "${ref_out}")
if(ref_forecast STREQUAL "")
  message(FATAL_ERROR "durable reference run printed no forecast:\n${ref_out}")
endif()

# Crash run: same log, SIGKILLed right after the 40th accepted append.
execute_process(COMMAND "${DSPOT_CLI}" stream --events "${durable_events}"
                        --flush-every 16 --horizon 8 --wal-dir "${wal_crash}"
                        --kill-after 40
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE kill_out
                ERROR_VARIABLE kill_err)
if(rc EQUAL 0)
  message(FATAL_ERROR "--kill-after 40 run was supposed to die:\n${kill_out}")
endif()

# Recover and resume with the tail: the recovered prefix plus the tail
# must reproduce the uninterrupted run's forecast bit for bit.
execute_process(COMMAND "${DSPOT_CLI}" stream --events "${durable_tail}"
                        --flush-every 16 --horizon 8 --wal-dir "${wal_crash}"
                        --recover
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE rec_out
                ERROR_VARIABLE rec_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "durable recovery run failed:\n${rec_out}\n${rec_err}")
endif()
foreach(needle "recovered .*${wal_crash}" "replayed 40 append\\(s\\)"
        "truncated 0 torn byte\\(s\\)" "replayed 20 append\\(s\\)"
        "checkpointed")
  if(NOT rec_out MATCHES "${needle}")
    message(FATAL_ERROR "recovery output lacks '${needle}':\n${rec_out}")
  endif()
endforeach()
string(REGEX MATCH "forecast hp[^\n]*" rec_forecast "${rec_out}")
if(NOT rec_forecast STREQUAL ref_forecast)
  message(FATAL_ERROR
          "recovered forecast diverges from the uninterrupted run:\n"
          "  reference: ${ref_forecast}\n"
          "  recovered: ${rec_forecast}")
endif()

# Recover-only reporting needs no --events at all.
execute_process(COMMAND "${DSPOT_CLI}" stream --wal-dir "${wal_crash}"
                        --recover --forecast hp
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE ro_out
                ERROR_VARIABLE ro_err)
if(NOT rc EQUAL 0 OR NOT ro_out MATCHES "forecast hp")
  message(FATAL_ERROR "recover-only run failed:\n${ro_out}\n${ro_err}")
endif()

message(STATUS "cli smoke test passed")
