#ifndef DSPOT_EPIDEMICS_SIR_FAMILY_H_
#define DSPOT_EPIDEMICS_SIR_FAMILY_H_

#include <cstddef>
#include <span>

#include "common/statusor.h"
#include "timeseries/series.h"

namespace dspot {

/// Classic compartmental epidemic models, used by the paper as accuracy
/// baselines (Fig. 9). Discrete-time, with the infection term normalized as
/// beta * (S/N) * I so that beta, delta, gamma are per-capita rates of O(1)
/// (this matches the magnitudes the paper reports, e.g. beta = 0.5014).
/// The observed signal is the infective count I(t).

/// SI: susceptible -> infective, no recovery.
struct SiParams {
  double population = 1.0;  ///< N
  double beta = 0.1;        ///< per-capita infection rate
  double i0 = 1.0;          ///< I(0)
};

/// SIR: susceptible -> infective -> recovered (permanent immunity).
struct SirParams {
  double population = 1.0;
  double beta = 0.1;
  double delta = 0.1;  ///< recovery rate
  double i0 = 1.0;
};

/// SIRS: SIR with waning immunity (recovered -> susceptible at rate gamma).
/// This is structurally the paper's SIV system without shocks or growth.
struct SirsParams {
  double population = 1.0;
  double beta = 0.1;
  double delta = 0.1;
  double gamma = 0.05;  ///< immunity-loss rate
  double i0 = 1.0;
};

/// Simulates the model for `n_ticks` steps and returns I(t), t = 0..n-1.
/// Compartments are clamped to stay non-negative.
Series SimulateSi(const SiParams& params, size_t n_ticks);
Series SimulateSir(const SirParams& params, size_t n_ticks);
Series SimulateSirs(const SirsParams& params, size_t n_ticks);

/// In-place forms writing I(t) into caller-owned storage (the horizon is
/// `out.size()`); the Series overloads delegate here, so both flavors run
/// the same floating-point recurrence. These keep the LM residual loops of
/// the fitters allocation-free.
void SimulateSiInto(const SiParams& params, std::span<double> out);
void SimulateSirInto(const SirParams& params, std::span<double> out);
void SimulateSirsInto(const SirsParams& params, std::span<double> out);

/// Diagnostics common to the epidemic fits.
struct EpidemicFitInfo {
  double rmse = 0.0;
  int lm_iterations = 0;
};

/// Knobs shared by the epidemic fitters.
struct EpidemicFitOptions {
  /// false (default): LM uses the analytic forward-mode Jacobian of the
  /// recurrence (one dual-number simulation per iteration). true: the
  /// historical forward-difference Jacobian (one re-simulation per
  /// parameter per iteration), kept as a cross-check.
  bool use_numeric_jacobian = false;
};

struct SiFit {
  SiParams params;
  EpidemicFitInfo info;
};
struct SirFit {
  SirParams params;
  EpidemicFitInfo info;
};
struct SirsFit {
  SirsParams params;
  EpidemicFitInfo info;
};

/// Fits the model to `data` (missing entries skipped) with multi-start
/// Levenberg-Marquardt. Returns InvalidArgument for series shorter than
/// 8 observed points.
StatusOr<SiFit> FitSi(const Series& data,
                      const EpidemicFitOptions& options = EpidemicFitOptions());
StatusOr<SirFit> FitSir(
    const Series& data,
    const EpidemicFitOptions& options = EpidemicFitOptions());
StatusOr<SirsFit> FitSirs(
    const Series& data,
    const EpidemicFitOptions& options = EpidemicFitOptions());

}  // namespace dspot

#endif  // DSPOT_EPIDEMICS_SIR_FAMILY_H_
