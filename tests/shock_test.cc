// Unit tests for src/core/shock: occurrence indexing, strength lookup,
// epsilon construction.

#include <gtest/gtest.h>

#include "core/shock.h"

namespace dspot {
namespace {

Shock MakeCyclic(size_t start, size_t period, size_t width, size_t n) {
  Shock s;
  s.keyword = 0;
  s.start = start;
  s.period = period;
  s.width = width;
  s.global_strengths.assign(s.NumOccurrences(n), 1.0);
  s.base_strength = 1.0;
  return s;
}

TEST(Shock, NumOccurrencesOneShot) {
  Shock s;
  s.start = 10;
  s.width = 3;
  EXPECT_EQ(s.NumOccurrences(100), 1u);
  EXPECT_EQ(s.NumOccurrences(10), 0u);  // starts at/after horizon
  EXPECT_EQ(s.NumOccurrences(11), 1u);
}

TEST(Shock, NumOccurrencesCyclic) {
  Shock s = MakeCyclic(6, 52, 2, 260);
  // Occurrences at 6, 58, 110, 162, 214: five within 260 ticks.
  EXPECT_EQ(s.NumOccurrences(260), 5u);
  EXPECT_EQ(s.NumOccurrences(59), 2u);  // tick 58 is inside horizon 59
  EXPECT_EQ(s.NumOccurrences(58), 1u);  // ticks 0..57 only
}

TEST(Shock, OccurrenceIndexAtCoversWindows) {
  Shock s = MakeCyclic(6, 52, 2, 260);
  EXPECT_EQ(s.OccurrenceIndexAt(5), kNpos);
  EXPECT_EQ(s.OccurrenceIndexAt(6), 0u);
  EXPECT_EQ(s.OccurrenceIndexAt(7), 0u);
  EXPECT_EQ(s.OccurrenceIndexAt(8), kNpos);
  EXPECT_EQ(s.OccurrenceIndexAt(58), 1u);
  EXPECT_EQ(s.OccurrenceIndexAt(110), 2u);
  EXPECT_EQ(s.OccurrenceIndexAt(109), kNpos);
}

TEST(Shock, OneShotWindow) {
  Shock s;
  s.start = 10;
  s.width = 4;
  s.global_strengths = {2.0};
  s.base_strength = 2.0;
  EXPECT_EQ(s.OccurrenceIndexAt(9), kNpos);
  EXPECT_EQ(s.OccurrenceIndexAt(10), 0u);
  EXPECT_EQ(s.OccurrenceIndexAt(13), 0u);
  EXPECT_EQ(s.OccurrenceIndexAt(14), kNpos);
  EXPECT_EQ(s.OccurrenceIndexAt(100), kNpos);  // one-shot never recurs
}

TEST(Shock, GlobalStrengthPerOccurrence) {
  Shock s = MakeCyclic(0, 10, 1, 30);
  s.global_strengths = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(s.GlobalStrengthAt(0), 1.0);
  EXPECT_DOUBLE_EQ(s.GlobalStrengthAt(10), 2.0);
  EXPECT_DOUBLE_EQ(s.GlobalStrengthAt(20), 3.0);
  EXPECT_DOUBLE_EQ(s.GlobalStrengthAt(5), 0.0);
}

TEST(Shock, FutureOccurrencesUseBaseStrength) {
  Shock s = MakeCyclic(0, 10, 1, 30);
  s.global_strengths = {1.0, 2.0, 3.0};
  s.base_strength = 9.0;
  // Occurrence index 5 (tick 50) is past the fitted range.
  EXPECT_DOUBLE_EQ(s.GlobalStrengthAt(50), 9.0);
}

TEST(Shock, DeviatingOccurrences) {
  Shock s = MakeCyclic(0, 10, 1, 40);
  s.base_strength = 2.0;
  s.global_strengths = {2.0, 2.0, 5.0, 2.0};
  EXPECT_EQ(s.DeviatingOccurrences(), 1u);
}

TEST(Shock, LocalStrengthFallsBackToGlobal) {
  Shock s = MakeCyclic(0, 10, 1, 30);
  s.global_strengths = {1.0, 2.0, 3.0};
  // No local matrix: local lookups mirror global.
  EXPECT_DOUBLE_EQ(s.LocalStrengthAt(10, 7), 2.0);
}

TEST(Shock, LocalStrengthUsesMatrix) {
  Shock s = MakeCyclic(0, 10, 1, 30);
  s.local_strengths = Matrix(3, 2);
  s.local_strengths(1, 0) = 4.0;
  s.local_strengths(1, 1) = 0.0;
  EXPECT_DOUBLE_EQ(s.LocalStrengthAt(10, 0), 4.0);
  EXPECT_DOUBLE_EQ(s.LocalStrengthAt(10, 1), 0.0);
  // Out-of-range location: zero.
  EXPECT_DOUBLE_EQ(s.LocalStrengthAt(10, 9), 0.0);
}

TEST(Shock, LocalStrengthFutureUsesLocationMean) {
  Shock s = MakeCyclic(0, 10, 1, 30);
  s.local_strengths = Matrix(3, 1);
  s.local_strengths(0, 0) = 1.0;
  s.local_strengths(1, 0) = 2.0;
  s.local_strengths(2, 0) = 3.0;
  EXPECT_DOUBLE_EQ(s.LocalStrengthAt(50, 0), 2.0);  // mean of column
}

TEST(Shock, ToStringMentionsStructure) {
  Shock s = MakeCyclic(6, 52, 2, 260);
  const std::string str = s.ToString();
  EXPECT_NE(str.find("t_s=6"), std::string::npos);
  EXPECT_NE(str.find("t_p=52"), std::string::npos);
  Shock one;
  one.start = 3;
  EXPECT_NE(one.ToString().find("t_p=inf"), std::string::npos);
}

TEST(BuildEpsilon, SumsShocksOfSameKeyword) {
  Shock a = MakeCyclic(0, 10, 1, 20);
  Shock b = MakeCyclic(0, 20, 1, 20);
  b.global_strengths = {5.0};
  b.base_strength = 5.0;
  std::vector<Shock> shocks = {a, b};
  std::vector<double> eps = BuildGlobalEpsilon(shocks, 0, 20);
  EXPECT_DOUBLE_EQ(eps[0], 1.0 + 1.0 + 5.0);  // both active at t=0
  EXPECT_DOUBLE_EQ(eps[10], 1.0 + 1.0);       // only a
  EXPECT_DOUBLE_EQ(eps[5], 1.0);
}

TEST(BuildEpsilon, IgnoresOtherKeywords) {
  Shock a = MakeCyclic(0, 10, 1, 20);
  a.keyword = 3;
  std::vector<double> eps = BuildGlobalEpsilon({a}, 0, 20);
  for (double v : eps) {
    EXPECT_DOUBLE_EQ(v, 1.0);
  }
}

TEST(BuildEpsilon, LocalVariant) {
  Shock a = MakeCyclic(0, 10, 1, 20);
  a.local_strengths = Matrix(2, 2);
  a.local_strengths(0, 1) = 7.0;
  std::vector<double> eps0 = BuildLocalEpsilon({a}, 0, 0, 20);
  std::vector<double> eps1 = BuildLocalEpsilon({a}, 0, 1, 20);
  EXPECT_DOUBLE_EQ(eps0[0], 1.0);
  EXPECT_DOUBLE_EQ(eps1[0], 8.0);
}

}  // namespace
}  // namespace dspot
