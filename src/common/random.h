#ifndef DSPOT_COMMON_RANDOM_H_
#define DSPOT_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace dspot {

/// Deterministic, seedable random source used by the synthetic-data
/// generators and the randomized tests. Wraps std::mt19937_64 so every
/// experiment in the repository is reproducible from its seed.
class Random {
 public:
  /// Constructs a generator from an explicit seed. The default seed is
  /// arbitrary but fixed, so default-constructed generators are
  /// reproducible too.
  explicit Random(uint64_t seed = 0x5eedcafeULL) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal draw scaled to N(mean, stddev^2).
  double Gaussian(double mean = 0.0, double stddev = 1.0);

  /// Poisson draw with the given mean; returns 0 for non-positive means.
  int64_t Poisson(double mean);

  /// Bernoulli draw with probability `p` of returning true.
  bool Bernoulli(double p);

  /// Exponential draw with the given rate (lambda).
  double Exponential(double rate);

  /// A vector of `n` i.i.d. Gaussian draws.
  std::vector<double> GaussianVector(size_t n, double mean, double stddev);

  /// Re-seeds the underlying engine.
  void Reset(uint64_t seed) { engine_.seed(seed); }

 private:
  std::mt19937_64 engine_;
};

}  // namespace dspot

#endif  // DSPOT_COMMON_RANDOM_H_
