#ifndef DSPOT_TENSOR_ACTIVITY_TENSOR_H_
#define DSPOT_TENSOR_ACTIVITY_TENSOR_H_

#include <cassert>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "timeseries/series.h"

namespace dspot {

/// The 3rd-order activity tensor X of the paper: `d` keywords x `l`
/// locations x `n` time-ticks, where element (i, j, t) is the activity
/// volume of keyword i in location j at tick t. Missing observations are
/// NaN. Storage is dense, keyword-major then location-major, so a local
/// sequence x_ij occupies a contiguous range.
class ActivityTensor {
 public:
  ActivityTensor() : d_(0), l_(0), n_(0) {}

  /// A d x l x n tensor of zeros.
  ActivityTensor(size_t d, size_t l, size_t n)
      : d_(d), l_(l), n_(n), data_(d * l * n, 0.0) {
    keywords_.resize(d);
    locations_.resize(l);
    for (size_t i = 0; i < d; ++i) keywords_[i] = "kw" + std::to_string(i);
    for (size_t j = 0; j < l; ++j) locations_[j] = "loc" + std::to_string(j);
  }

  size_t num_keywords() const { return d_; }
  size_t num_locations() const { return l_; }
  size_t num_ticks() const { return n_; }
  bool empty() const { return data_.empty(); }

  double& at(size_t i, size_t j, size_t t) { return data_[Index(i, j, t)]; }
  double at(size_t i, size_t j, size_t t) const {
    return data_[Index(i, j, t)];
  }

  /// Human-readable labels (keyword names, country codes).
  const std::vector<std::string>& keywords() const { return keywords_; }
  const std::vector<std::string>& locations() const { return locations_; }
  Status SetKeywordName(size_t i, std::string name);
  Status SetLocationName(size_t j, std::string name);

  /// Index of the keyword/location with the given name; kNpos if absent.
  size_t KeywordIndex(const std::string& name) const;
  size_t LocationIndex(const std::string& name) const;

  /// Copy of the local sequence x_ij.
  Series LocalSequence(size_t i, size_t j) const;

  /// Zero-copy view of the local sequence x_ij (contiguous in storage).
  /// Invalidated by destruction of the tensor; never by reads.
  std::span<const double> LocalSequenceView(size_t i, size_t j) const {
    assert(i < d_ && j < l_);
    return std::span<const double>(data_.data() + Index(i, j, 0), n_);
  }

  /// Overwrites the local sequence x_ij (must have length n).
  Status SetLocalSequence(size_t i, size_t j, const Series& s);

  /// The global sequence of keyword i: elementwise sum over locations,
  /// skipping missing entries (a tick is missing only if missing in every
  /// location).
  Series GlobalSequence(size_t i) const;

  /// GlobalSequence into caller-owned storage (out.size() == n). Same
  /// floating-point sequence as GlobalSequence, allocation-free.
  void GlobalSequenceInto(size_t i, std::span<double> out) const;

  /// All d global sequences.
  std::vector<Series> GlobalSequences() const;

  /// Sum of all observed entries (sanity statistic).
  double TotalVolume() const;

  /// Total number of observed (non-missing) entries.
  size_t ObservedCount() const;

 private:
  size_t Index(size_t i, size_t j, size_t t) const {
    return (i * l_ + j) * n_ + t;
  }

  size_t d_;
  size_t l_;
  size_t n_;
  std::vector<double> data_;
  std::vector<std::string> keywords_;
  std::vector<std::string> locations_;
};

}  // namespace dspot

#endif  // DSPOT_TENSOR_ACTIVITY_TENSOR_H_
