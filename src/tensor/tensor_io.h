#ifndef DSPOT_TENSOR_TENSOR_IO_H_
#define DSPOT_TENSOR_TENSOR_IO_H_

#include <string>

#include "common/status.h"
#include "common/statusor.h"
#include "tensor/activity_tensor.h"
#include "tensor/csv_options.h"
#include "timeseries/series.h"

namespace dspot {

/// CSV persistence for activity tensors and single sequences.
///
/// Tensor format (long form, with header):
///
///   keyword,location,tick,value
///   harry_potter,US,0,12.5
///   ...
///
/// Missing entries may be written as empty values or the literal "NaN";
/// entries absent from the file are missing in the loaded tensor only if
/// `fill_absent_with_zero` is false.

/// Writes `tensor` in long form. Missing entries are written as explicit
/// "NaN" rows so a save -> load round-trip preserves both the tensor's
/// dimensions (trailing all-missing ticks included) and exact missingness
/// regardless of the loader's `fill_absent_with_zero` setting. Values are
/// written with enough digits to round-trip the IEEE-754 double exactly.
Status SaveTensorCsv(const ActivityTensor& tensor, const std::string& path);

/// Loads a long-form CSV. Dimensions and label sets are inferred from the
/// file: keywords/locations in first-appearance order, ticks 0..max.
/// If `fill_absent_with_zero` is true, cells not present in the file are 0;
/// otherwise they are missing (NaN).
///
/// Malformed rows (wrong field count, non-numeric tick/value, trailing
/// garbage after a number) are InvalidArgument errors with
/// "<path>:<line>: column <c>" context, or skipped and counted under
/// `read_options.skip_bad_rows`. Unreadable/empty files stay IoError.
StatusOr<ActivityTensor> LoadTensorCsv(
    const std::string& path, bool fill_absent_with_zero = true,
    const CsvReadOptions& read_options = CsvReadOptions());

/// Writes a single series, one "tick,value" row per line (header included).
/// Missing ticks are written as "NaN"; values round-trip exactly.
Status SaveSeriesCsv(const Series& series, const std::string& path);

/// Loads a single series saved by `SaveSeriesCsv`. Same error contract as
/// LoadTensorCsv: malformed rows are InvalidArgument with file/line/column
/// context, or skipped under `read_options.skip_bad_rows`.
StatusOr<Series> LoadSeriesCsv(
    const std::string& path,
    const CsvReadOptions& read_options = CsvReadOptions());

}  // namespace dspot

#endif  // DSPOT_TENSOR_TENSOR_IO_H_
