#include "baselines/funnel.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <vector>

#include "mdl/mdl.h"
#include "optimize/levenberg_marquardt.h"
#include "optimize/line_search.h"
#include "timeseries/metrics.h"
#include "timeseries/peaks.h"

namespace dspot {

namespace {

/// Model description bits: the forced-SIRS base (8 floats) plus, per shock,
/// its start/width positions and one float strength.
double FunnelModelCostBits(const FunnelParams& params, size_t n_ticks) {
  double bits = 8.0 * kFloatCostBits;
  bits += LogStar(static_cast<double>(params.shocks.size()) + 1.0);
  for (const FunnelShock& shock : params.shocks) {
    (void)shock;
    bits += 2.0 * LogChoiceCost(std::max<size_t>(n_ticks, 2)) + kFloatCostBits;
  }
  return bits;
}

/// MDL total cost with the simulation written into a caller-owned buffer.
double TotalCostBits(const Series& data, const FunnelParams& params,
                     std::vector<double>* estimate) {
  estimate->resize(data.size());
  SimulateFunnelInto(params, *estimate);
  return FunnelModelCostBits(params, data.size()) +
         GaussianCodingCost(std::span<const double>(data.values()),
                            std::span<const double>(*estimate));
}

}  // namespace

void SimulateFunnelInto(const FunnelParams& params, std::span<double> out) {
  const SkipsParams& base = params.base;
  const size_t n_ticks = out.size();
  const double n = std::max(base.population, 1e-9);
  double s = std::max(n - base.i0, 0.0);
  double i = std::min(base.i0, n);
  double v = 0.0;
  constexpr double kTwoPi = 6.283185307179586;
  const double period = std::max(base.period, 2.0);
  for (size_t t = 0; t < n_ticks; ++t) {
    out[t] = i;
    double shock_boost = 1.0;
    for (const FunnelShock& shock : params.shocks) {
      if (t >= shock.start && t < shock.start + shock.width) {
        shock_boost += shock.strength;
      }
    }
    const double forcing =
        1.0 + base.amplitude * std::sin(kTwoPi * static_cast<double>(t) /
                                            period +
                                        base.phase);
    const double beta = std::max(base.beta0 * forcing * shock_boost, 0.0);
    const double infect = std::min(beta * (s / n) * i, s);
    const double recover = std::min(base.delta, 1.0) * i;
    const double wane = std::min(base.gamma, 1.0) * v;
    s += wane - infect;
    i += infect - recover;
    v += recover - wane;
    s = std::max(s, 0.0);
    i = std::max(i, 0.0);
    v = std::max(v, 0.0);
  }
}

Series SimulateFunnel(const FunnelParams& params, size_t n_ticks) {
  Series out(n_ticks);
  SimulateFunnelInto(params, out.mutable_values());
  return out;
}

StatusOr<FunnelFit> FitFunnel(const Series& data,
                              const FunnelOptions& options) {
  if (data.observed_count() < 16) {
    return Status::InvalidArgument("FitFunnel: too few observations");
  }
  const size_t n_ticks = data.size();
  const double peak = std::max(data.MaxValue(), 1.0);

  FunnelFit fit;
  // Phase 1: base forced-SIRS (reuse the SKIPS fitter).
  DSPOT_ASSIGN_OR_RETURN(SkipsFit base_fit, FitSkips(data));
  fit.params.base = base_fit.params;

  // Shared scratch for the alternation: observed-tick indices, simulation
  // buffer, and the LM workspace.
  std::vector<size_t> observed;
  for (size_t t = 0; t < n_ticks; ++t) {
    if (data.IsObserved(t)) observed.push_back(t);
  }
  std::vector<double> estimate(n_ticks);
  LmWorkspace lm_workspace;

  double best_cost = TotalCostBits(data, fit.params, &estimate);

  // Phase 2/3 alternation: refit base continuous params given shocks, then
  // greedily add one-shot shocks while the MDL cost drops.
  for (int round = 0; round < options.max_alternations; ++round) {
    // Refit the continuous base parameters with shocks held fixed; the
    // shock set is constant during the solve, so the candidate (and its
    // shocks vector) is built once and only the scalars vary per call.
    FunnelParams residual_candidate = fit.params;
    auto residual_fn = [&](std::span<const double> p,
                           std::span<double> r) -> Status {
      residual_candidate.base.population = p[0];
      residual_candidate.base.beta0 = p[1];
      residual_candidate.base.delta = p[2];
      residual_candidate.base.gamma = p[3];
      residual_candidate.base.amplitude = p[4];
      residual_candidate.base.phase = p[5];
      residual_candidate.base.i0 = p[6];
      SimulateFunnelInto(residual_candidate, estimate);
      for (size_t k = 0; k < observed.size(); ++k) {
        const size_t t = observed[k];
        r[k] = estimate[t] - data[t];
      }
      return Status::Ok();
    };
    Bounds bounds;
    bounds.lower = {peak * 1.05, 1e-6, 1e-6, 1e-6, 0.0, -3.2, 1e-6};
    bounds.upper = {peak * 100.0, 5.0, 1.0, 1.0, 1.0, 3.2, peak};
    const SkipsParams& b = fit.params.base;
    std::vector<double> init = {b.population, b.beta0, b.delta, b.gamma,
                                b.amplitude, b.phase, b.i0};
    auto lm_or = LevenbergMarquardt(residual_fn, observed.size(), init,
                                    bounds, LmOptions(), &lm_workspace);
    if (lm_or.ok()) {
      FunnelParams candidate = fit.params;
      const auto& p = lm_or->params;
      candidate.base.population = p[0];
      candidate.base.beta0 = p[1];
      candidate.base.delta = p[2];
      candidate.base.gamma = p[3];
      candidate.base.amplitude = p[4];
      candidate.base.phase = p[5];
      candidate.base.i0 = p[6];
      const double cost = TotalCostBits(data, candidate, &estimate);
      if (cost < best_cost) {
        best_cost = cost;
        fit.params = candidate;
      }
    }

    // Greedy one-shot shock additions.
    bool added = false;
    while (fit.params.shocks.size() < options.max_shocks) {
      SimulateFunnelInto(fit.params, estimate);
      Series residual(n_ticks);
      for (size_t t = 0; t < n_ticks; ++t) {
        residual[t] = data.IsObserved(t) ? data[t] - estimate[t]
                                         : kMissingValue;
      }
      const std::vector<Burst> bursts = FindBursts(residual);
      if (bursts.empty()) break;
      const Burst& burst = bursts[0];

      FunnelParams candidate = fit.params;
      FunnelShock shock;
      shock.start = burst.start;
      shock.width = std::max<size_t>(burst.width, 1);
      candidate.shocks.push_back(shock);
      // 1-d fit of the shock strength.
      const double best_strength = GridThenGoldenMinimize(
          [&](double strength) {
            candidate.shocks.back().strength = strength;
            SimulateFunnelInto(candidate, estimate);
            return Rmse(std::span<const double>(data.values()),
                        std::span<const double>(estimate));
          },
          0.0, 50.0, 50);
      candidate.shocks.back().strength = best_strength;
      const double cost = TotalCostBits(data, candidate, &estimate);
      if (cost < best_cost) {
        best_cost = cost;
        fit.params = candidate;
        added = true;
      } else {
        break;
      }
    }
    if (!added && round > 0) break;
  }

  fit.total_cost_bits = best_cost;
  SimulateFunnelInto(fit.params, estimate);
  fit.rmse = Rmse(std::span<const double>(data.values()),
                  std::span<const double>(estimate));
  return fit;
}

StatusOr<FunnelFit> FitFunnelLocal(const Series& local_data,
                                   const FunnelFit& global_fit) {
  if (local_data.observed_count() < 8) {
    return Status::InvalidArgument("FitFunnelLocal: too few observations");
  }
  const size_t n_ticks = local_data.size();
  FunnelFit fit = global_fit;
  std::vector<double> estimate(n_ticks);

  // Rescale the population (and i0 proportionally) to the local volume.
  const double scale_seed =
      std::max(local_data.MaxValue(), 1e-6) /
      std::max(SimulateFunnel(global_fit.params, n_ticks).MaxValue(), 1e-6);
  FunnelParams scale_candidate = global_fit.params;
  const double best_scale = GridThenGoldenMinimize(
      [&](double scale) {
        scale_candidate.base.population = global_fit.params.base.population;
        scale_candidate.base.i0 = global_fit.params.base.i0;
        scale_candidate.base.population *= scale;
        scale_candidate.base.i0 *= scale;
        SimulateFunnelInto(scale_candidate, estimate);
        return Rmse(std::span<const double>(local_data.values()),
                    std::span<const double>(estimate));
      },
      scale_seed * 0.05, scale_seed * 20.0, 60);
  fit.params.base.population *= best_scale;
  fit.params.base.i0 *= best_scale;

  // Refit each shock strength locally.
  FunnelParams strength_candidate = fit.params;
  for (size_t k = 0; k < fit.params.shocks.size(); ++k) {
    const double best_strength = GridThenGoldenMinimize(
        [&](double strength) {
          strength_candidate.shocks[k].strength = strength;
          SimulateFunnelInto(strength_candidate, estimate);
          return Rmse(std::span<const double>(local_data.values()),
                      std::span<const double>(estimate));
        },
        0.0, 50.0, 50);
    fit.params.shocks[k].strength = best_strength;
    strength_candidate.shocks[k].strength = best_strength;
  }

  fit.total_cost_bits = TotalCostBits(local_data, fit.params, &estimate);
  SimulateFunnelInto(fit.params, estimate);
  fit.rmse = Rmse(std::span<const double>(local_data.values()),
                  std::span<const double>(estimate));
  return fit;
}

}  // namespace dspot
