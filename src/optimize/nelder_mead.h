#ifndef DSPOT_OPTIMIZE_NELDER_MEAD_H_
#define DSPOT_OPTIMIZE_NELDER_MEAD_H_

#include <vector>

#include "common/statusor.h"
#include "guard/guard.h"
#include "optimize/objective.h"

namespace dspot {

/// Configuration for the Nelder-Mead simplex solver.
struct NelderMeadOptions {
  int max_evaluations = 2000;
  /// Stop when the spread of objective values across the simplex is below
  /// this (absolute).
  double f_tolerance = 1e-10;
  /// Stop when the simplex diameter (infinity norm) is below this.
  double x_tolerance = 1e-10;
  /// Relative size of the initial simplex around the start point.
  double initial_step = 0.1;
  /// Standard reflection/expansion/contraction/shrink coefficients.
  double reflection = 1.0;
  double expansion = 2.0;
  double contraction = 0.5;
  double shrink = 0.5;
  /// Deadline/cancellation pair, checked once per simplex iteration. On
  /// deadline expiry the search returns OK with its best vertex and
  /// health.termination == kDeadlineExceeded; on cancellation it returns
  /// Status::Cancelled. Inactive by default.
  GuardContext guard;
};

/// Result of a Nelder-Mead minimization.
struct NelderMeadResult {
  std::vector<double> params;
  double final_value = 0.0;
  int evaluations = 0;
  bool converged = false;
  /// Wall time and why the search stopped.
  FitHealth health;
};

/// Minimizes a scalar function with the Nelder-Mead downhill-simplex method.
/// Used where derivatives are unreliable (the TBATS smoothing-parameter fit
/// and discrete-ish shock refinements). Box constraints are enforced by
/// clamping proposed vertices. Infeasible regions should return +inf.
StatusOr<NelderMeadResult> NelderMead(
    const ScalarFn& fn, const std::vector<double>& initial,
    const Bounds& bounds = Bounds(),
    const NelderMeadOptions& options = NelderMeadOptions());

}  // namespace dspot

#endif  // DSPOT_OPTIMIZE_NELDER_MEAD_H_
