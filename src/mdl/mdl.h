#ifndef DSPOT_MDL_MDL_H_
#define DSPOT_MDL_MDL_H_

#include <cstddef>
#include <span>
#include <vector>

#include "timeseries/series.h"

namespace dspot {

/// Minimum-description-length coding costs (Section 4.1 of the paper).
/// All costs are in bits.

/// Cost of one floating-point model parameter; the paper uses 4x8 = 32 bits.
inline constexpr double kFloatCostBits = 32.0;

/// Universal code length log*(x) for a positive integer: log2(x) +
/// log2 log2(x) + ... (positive terms only) + log2(c_omega). Defined as
/// log2(c_omega) for x <= 1.
double LogStar(double x);

/// log2(x) clipped below at 0 (cost of choosing one of x alternatives).
double LogChoiceCost(size_t alternatives);

/// Gaussian data-coding cost of a residual vector (paper's Cost_C):
/// sum over residuals of -log2 N(residual | mu, sigma^2), with mu/sigma
/// estimated from the residuals themselves. Missing entries are skipped.
/// `sigma_floor` avoids degenerate zero-variance codes.
double GaussianCodingCost(const std::vector<double>& residuals,
                          double sigma_floor = 1e-6);

/// Convenience overload: coding cost of (actual - estimate). Positions
/// where either input is missing are skipped.
double GaussianCodingCost(const Series& actual, const Series& estimate,
                          double sigma_floor = 1e-6);

/// Span form of the (actual, estimate) overload: computes the residual
/// stream in place without materializing it, running the exact same
/// floating-point sequence as the Series overload (which delegates here).
double GaussianCodingCost(std::span<const double> actual,
                          std::span<const double> estimate,
                          double sigma_floor = 1e-6);

/// Poisson data-coding cost: activity volumes are counts, so an
/// alternative to the Gaussian code is -log2 Poisson(round(actual) |
/// mean = estimate) summed over observed positions. Variance scales with
/// the mean, so spikes are coded more leniently than quiet stretches
/// (heteroscedastic, unlike the Gaussian code). `mean_floor` keeps the
/// code finite where the model predicts ~0.
double PoissonCodingCost(const Series& actual, const Series& estimate,
                         double mean_floor = 0.05);
double PoissonCodingCost(std::span<const double> actual,
                         std::span<const double> estimate,
                         double mean_floor = 0.05);

/// Which data-coding model Cost_C uses.
enum class CodingModel {
  kGaussian,  ///< the paper's choice (Section 4.1)
  kPoisson,   ///< count-aware alternative (ablation)
};

/// Dispatches on `model`.
double CodingCost(const Series& actual, const Series& estimate,
                  CodingModel model);
double CodingCost(std::span<const double> actual,
                  std::span<const double> estimate, CodingModel model);

}  // namespace dspot

#endif  // DSPOT_MDL_MDL_H_
