#ifndef DSPOT_STREAM_STREAM_ENGINE_H_
#define DSPOT_STREAM_STREAM_ENGINE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "core/global_fit.h"
#include "core/params.h"
#include "core/schedule_cache.h"
#include "guard/guard.h"

namespace dspot {

/// dspot_stream — bounded-memory streaming ingestion with incremental
/// shock detection and O(1) forecast reads.
///
/// The batch pipeline fits a complete keyword x location x time tensor;
/// the setting it models is a *stream* of timestamped activity records.
/// StreamEngine absorbs that stream directly:
///
///  * Append() is the hot path: it buckets a raw timestamp into a tick and
///    accumulates the count into the keyword's fixed-capacity ring buffer.
///    No fitting happens here — a quiet keyword pays O(1) per arrival,
///    amortized over the ring's geometric growth up to its cap.
///  * Flush() is the control path: keywords touched since the last flush
///    are triaged (in parallel, deterministically) into "leave alone",
///    "first cold fit", "scheduled warm refit with the shock schedule
///    pinned", or "burst-escalated refit with shock re-detection wide
///    open", and the selected refits run on the dspot_parallel pool under
///    an optional per-flush dspot_guard deadline.
///  * Forecast() / ForecastInto() are the read path: lock-free reads of
///    the latest published forecast window through a per-keyword seqlock,
///    O(horizon) — independent of stream length, keyword count, or any
///    in-flight flush.
///
/// Memory is bounded by construction: per keyword at most `ring_capacity`
/// ticks of history plus one `forecast_horizon` forecast cell, and at most
/// `max_keywords` keywords in total (appends beyond the cap are rejected,
/// never silently dropped). Ticks evicted from a full ring are gone — the
/// fitted model (parameters + shock inventory) is the compact summary that
/// survives them, and warm refits rebase it into the ring's current window
/// (see RebaseShocks in the implementation).
///
/// THREAD SAFETY: Append/Flush/Save form a single-writer interface — the
/// caller serializes them (one ingest thread). Forecast reads are safe
/// from any thread, concurrently with a flush. Within a flush, per-keyword
/// work fans out over `num_threads` workers with results landing in
/// pre-assigned slots, so the engine state after every flush is
/// bit-identical at any thread count.

/// Streaming knobs. Defaults favor weekly-tick workloads; the only fields
/// that change fitted *values* (rather than schedule/compute) are the fit
/// options themselves.
struct StreamOptions {
  /// Timestamp units per tick and the timestamp mapped to tick 0 (the
  /// event_log AggregationConfig convention). Resolution must be >= 1.
  int64_t ticks_resolution = 1;
  int64_t origin = 0;
  /// Max ticks of history retained per keyword. Rings grow geometrically
  /// from 8 slots up to this cap, so quiet keywords stay tiny. Must be
  /// >= min_fit_ticks.
  size_t ring_capacity = 256;
  /// Observed ticks a keyword needs before its first (cold) fit.
  /// Clamped up to 16, the fit layer's own minimum.
  size_t min_fit_ticks = 32;
  /// Scheduled maintenance: a fitted keyword is warm-refit (schedule
  /// pinned — no new shock proposals) once this many new ticks arrived
  /// since its last fit, even without a burst.
  size_t refit_interval = 32;
  /// Published forecast window length (ticks past the fitted range).
  size_t forecast_horizon = 16;
  /// Burst escalation: an appended tick bursts when its absolute residual
  /// against the current model's extrapolation exceeds `burst_threshold` x
  /// the RMS residual of the explained range; `min_burst_ticks` bursting
  /// ticks escalate the keyword to full shock re-detection. Matches
  /// UpdateOptions semantics.
  double burst_threshold = 4.0;
  size_t min_burst_ticks = 2;
  /// Hard cap on interned keywords (total-memory bound). Appends for new
  /// keywords beyond the cap are rejected with InvalidArgument.
  size_t max_keywords = 1u << 20;
  /// Worker threads for flush triage + refits (0 = hardware concurrency,
  /// 1 = serial). Bit-identical engine state at any setting.
  size_t num_threads = 1;
  /// Wall-clock budget per Flush(), milliseconds; 0 = none. On expiry the
  /// flush still returns OK: refits already running return their best
  /// partial model and the report counts the keywords affected.
  double flush_budget_ms = 0.0;
  /// Cooperative cancellation for Flush() (returns Status::Cancelled).
  CancellationToken cancel;
  /// Underlying per-keyword fit knobs. `num_threads`, `guard`, and
  /// `max_shocks_per_keyword` are managed by the engine per flush;
  /// everything else is honored as given.
  GlobalFitOptions fit;
};

/// What one Flush() did.
struct StreamFlushReport {
  size_t keywords_triaged = 0;  ///< dirty keywords examined
  size_t cold_fits = 0;         ///< first fits
  size_t warm_refits = 0;       ///< scheduled refits, schedule pinned
  size_t escalations = 0;       ///< burst-escalated re-detections
  size_t refit_errors = 0;      ///< failed refits (old model kept)
  bool deadline_hit = false;    ///< the flush budget expired mid-flush
};

/// A published forecast window: `values[k]` predicts tick
/// `start_tick + k` on the engine's global tick axis.
struct StreamForecast {
  int64_t start_tick = 0;
  std::vector<double> values;
};

/// Monotonic engine statistics (also exported as dspot_obs metrics when
/// the registry is armed).
struct StreamStats {
  uint64_t appends = 0;
  uint64_t rejected = 0;
  uint64_t evicted_ticks = 0;
  uint64_t flushes = 0;
  uint64_t cold_fits = 0;
  uint64_t warm_refits = 0;
  uint64_t escalations = 0;
  uint64_t refit_errors = 0;
  size_t num_keywords = 0;
  size_t buffer_bytes = 0;       ///< current ring + forecast cell bytes
  size_t peak_buffer_bytes = 0;  ///< high-water mark of buffer_bytes
};

class StreamEngine {
 public:
  explicit StreamEngine(const StreamOptions& options);
  ~StreamEngine();

  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  /// Interns `keyword` (creating its stream on first use) and returns its
  /// stable index. Fails with InvalidArgument on an empty name or once
  /// `max_keywords` streams exist.
  StatusOr<uint32_t> EnsureKeyword(std::string_view keyword);

  /// The index of an already-interned keyword, or kNpos.
  size_t KeywordIndex(std::string_view keyword) const;
  const std::string& KeywordName(uint32_t keyword) const;

  /// Appends one tick of activity: `timestamp` is bucketed into a tick via
  /// (timestamp - origin) / ticks_resolution and `count` accumulates into
  /// that tick's cell. `location` is folded into the keyword's global
  /// sequence (the stream models the paper's global level; the local
  /// decomposition remains a batch concern).
  ///
  /// Per keyword, timestamps must be non-decreasing: a record older than
  /// the keyword's latest accepted timestamp is rejected with a located
  /// InvalidArgument (never silently folded into the past — that would
  /// corrupt the training range behind the fitted model's back). Equal
  /// timestamps are fine (two events in the same instant accumulate).
  Status Append(std::string_view keyword, std::string_view location,
                int64_t timestamp, double count);

  /// Append by interned index — the allocation-free hot path for callers
  /// that resolved the keyword once (see EnsureKeyword).
  Status AppendById(uint32_t keyword, int64_t timestamp, double count);

  /// Triages every keyword touched since the last flush and runs the
  /// selected fits (see class comment). Deterministic at any
  /// `num_threads`; per-keyword fit failures keep the previous model and
  /// are counted, cancellation aborts with Status::Cancelled.
  StatusOr<StreamFlushReport> Flush();

  /// Copy of the keyword's latest published forecast. NotFound until the
  /// keyword's first successful fit. Safe from any thread.
  StatusOr<StreamForecast> Forecast(size_t keyword) const;

  /// Lock-free forecast read into caller-owned storage: `out` must hold
  /// exactly `forecast_horizon` values; `*start_tick` receives the global
  /// tick of out[0]. O(horizon), allocation-free, never blocks on a
  /// concurrent flush (seqlock retry). Safe from any thread.
  Status ForecastInto(size_t keyword, std::span<double> out,
                      int64_t* start_tick) const;

  /// True once `keyword` has a fitted model (and thus a forecast).
  bool HasFit(size_t keyword) const;

  /// The keyword's retained window as (first tick, values) — for tests,
  /// the CLI, and state persistence.
  StatusOr<StreamForecast> Window(size_t keyword) const;

  size_t num_keywords() const { return keywords_.size(); }
  const StreamOptions& options() const { return options_; }
  StreamStats stats() const;

  /// Canonical little-endian encoding of the complete engine state
  /// (options, every keyword stream, fitted models, published forecasts,
  /// counters). Bit-identical for engines that absorbed the same stream,
  /// at any thread count — the determinism oracle used by tests and
  /// bench_stream.
  std::vector<uint8_t> EncodeState() const;

  /// Writes the engine state ("DSPOTSTM" magic, version, CRC-32) so a
  /// restarted process can resume ingestion without refitting.
  Status SaveState(const std::string& path) const;

  /// Restores an engine from SaveState output. The usual snapshot error
  /// contract: bad magic/version -> InvalidArgument, truncation or
  /// checksum mismatch -> DataLoss with "<path>: offset" context.
  ///
  /// Semantic options (tick bucketing, ring capacity, triage thresholds)
  /// come from the file — they shaped the persisted state. Runtime options
  /// (`num_threads`, `flush_budget_ms`, `cancel`, and the fit knobs, which
  /// are not persisted) come from `runtime`; callers that want restored
  /// refits bit-identical to the original engine's must pass the same fit
  /// options the original used.
  static StatusOr<std::unique_ptr<StreamEngine>> LoadState(
      const std::string& path, const StreamOptions& runtime = StreamOptions());

  /// Restores an engine from a raw EncodeState payload (no file header —
  /// the caller owns framing and checksums; dspot_durable checkpoints do
  /// both). Same options split as LoadState; `context` labels decode
  /// errors the way a path does.
  static StatusOr<std::unique_ptr<StreamEngine>> DecodeState(
      const uint8_t* data, size_t size, const StreamOptions& runtime,
      const std::string& context);

 private:
  friend class StreamStateCodec;

  /// Per-keyword forecast cell: single writer (the flushing thread),
  /// lock-free readers. `version` is even when stable; values are relaxed
  /// atomics so a torn read is impossible and the seqlock retry is
  /// data-race-free under TSan.
  struct ForecastCell {
    struct Cell {
      std::atomic<double> v{0.0};
    };
    explicit ForecastCell(size_t horizon) : values(new Cell[horizon]) {}
    std::atomic<uint64_t> version{0};
    std::atomic<int64_t> start_tick{0};
    std::unique_ptr<Cell[]> values;
  };

  struct KeywordState {
    KeywordState() = default;
    KeywordState(const KeywordState&) = delete;
    KeywordState& operator=(const KeywordState&) = delete;
    ~KeywordState() { delete forecast.load(std::memory_order_acquire); }

    std::string name;
    /// Ring buffer of per-tick counts covering global ticks
    /// [window_start, window_start + len); slot of tick t is
    /// (head + (t - window_start)) % ring.size(). Grows geometrically up
    /// to options.ring_capacity, then evicts from the front.
    std::vector<double> ring;
    size_t head = 0;
    size_t len = 0;
    int64_t window_start = 0;
    int64_t last_timestamp = 0;
    bool has_appends = false;  ///< any accepted append yet
    bool dirty = false;        ///< touched since the last flush
    /// Fitted model in fit-local coordinates: local tick 0 is global tick
    /// fit_window_start, the fit explains fit_ticks ticks.
    bool has_fit = false;
    int64_t fit_window_start = 0;
    size_t fit_ticks = 0;
    KeywordGlobalParams params;
    std::vector<Shock> shocks;
    double fit_cost_bits = 0.0;
    double fit_rmse = 0.0;
    /// Schedule memo reused across this keyword's extrapolations/refits.
    ScheduleCache cache;
    /// Published forecast: set once (on the keyword's first fit) by the
    /// flushing thread, then mutated only through the seqlock. Atomic so
    /// concurrent Forecast readers can race the first publication; owned
    /// by this KeywordState (freed in the destructor).
    std::atomic<ForecastCell*> forecast{nullptr};
  };

  /// Flush triage verdicts.
  enum class Action : uint8_t { kNone = 0, kCold, kWarm, kEscalate };

  Status AppendTick(KeywordState* ks, int64_t tick, double count);
  void CopyWindow(const KeywordState& ks, std::vector<double>* out) const;
  Action Triage(KeywordState* ks) const;
  void PublishForecast(KeywordState* ks, std::vector<double>* scratch);
  void AddBufferBytes(int64_t delta);

  /// Heterogeneous string hashing so the Append hot path can look up a
  /// string_view keyword without materializing a std::string.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  StreamOptions options_;
  /// deque, not vector: interning a new keyword must not move existing
  /// states while reader threads hold forecast pointers into them.
  std::deque<KeywordState> keywords_;
  std::unordered_map<std::string, uint32_t, StringHash, std::equal_to<>>
      index_;
  std::vector<uint32_t> dirty_;  ///< append order; sorted at flush

  uint64_t appends_ = 0;
  uint64_t rejected_ = 0;
  uint64_t evicted_ticks_ = 0;
  uint64_t flushes_ = 0;
  uint64_t cold_fits_ = 0;
  uint64_t warm_refits_ = 0;
  uint64_t escalations_ = 0;
  uint64_t refit_errors_ = 0;
  size_t buffer_bytes_ = 0;
  size_t peak_buffer_bytes_ = 0;
};

}  // namespace dspot

#endif  // DSPOT_STREAM_STREAM_ENGINE_H_
