// Model snapshots and warm-started refits: fit once, save the model,
// then reload it to (a) warm-start a refit that converges in far fewer
// solver iterations than the cold MDL search, and (b) absorb newly
// appended ticks with UpdateFit, which reuses the cached shock schedule
// for keywords whose new data stays quiet.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/warm_start_fit

#include <chrono>
#include <cstdio>

#include "core/dspot.h"
#include "datagen/catalog.h"
#include "datagen/generator.h"
#include "obs/metrics.h"
#include "snapshot/snapshot.h"
#include "snapshot/update.h"

namespace {

// The "lm.iterations" counter since the last registry reset — the number
// of Levenberg–Marquardt steps the fit spent.
double LmIterations() {
  return static_cast<double>(
      dspot::ObsRegistry::Instance().Snapshot().CounterValue(
          "lm.iterations"));
}

}  // namespace

int main() {
  using namespace dspot;  // NOLINT: example brevity

  // Counters (cheap) let us compare solver effort cold vs warm.
  ObsRegistry::Instance().Enable(ObsOptions());

  GeneratorConfig config = GoogleTrendsConfig();
  config.num_locations = 4;
  auto generated = GenerateTensor(TrendingKeywordSuite(), config);
  if (!generated.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  const ActivityTensor& tensor = generated->tensor;
  std::printf("Tensor: %zu keywords x %zu locations x %zu ticks\n\n",
              tensor.num_keywords(), tensor.num_locations(),
              tensor.num_ticks());

  // 1. Cold fit: the full multi-start MDL search.
  ObsRegistry::Instance().Reset();
  const auto t0 = std::chrono::steady_clock::now();
  auto cold = FitDspot(tensor);
  if (!cold.ok()) {
    std::fprintf(stderr, "fit failed: %s\n", cold.status().ToString().c_str());
    return 1;
  }
  const double cold_ms = ElapsedMs(t0);
  const double cold_iters = LmIterations();
  std::printf("[cold fit]   %.0f ms, %.0f LM iterations, MDL %.0f bits\n",
              cold_ms, cold_iters, cold->total_cost_bits);

  // 2. Save the fitted model and load it back. Binary and JSON backends
  // decode to the same model bit for bit; binary is shown here.
  const std::string path = "warm_start_fit.model";
  const ModelSnapshot snapshot = MakeSnapshot(*cold, tensor);
  if (Status s = SaveSnapshot(snapshot, path); !s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  auto loaded = LoadSnapshot(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("[snapshot]   saved + reloaded %s (%zu shocks)\n", path.c_str(),
              loaded->params.shocks.size());

  // 3. Warm refit on the same data: each keyword is seeded from the
  // loaded parameters and shock schedule, skipping the cold search.
  ObsRegistry::Instance().Reset();
  const auto t1 = std::chrono::steady_clock::now();
  DspotOptions warm_options;
  warm_options.warm_start = &loaded->params;
  auto warm = FitDspot(tensor, warm_options);
  if (!warm.ok()) {
    std::fprintf(stderr, "warm refit failed: %s\n",
                 warm.status().ToString().c_str());
    return 1;
  }
  const double warm_ms = ElapsedMs(t1);
  const double warm_iters = LmIterations();
  std::printf("[warm refit] %.0f ms, %.0f LM iterations, MDL %.0f bits "
              "(%.1fx fewer iterations)\n",
              warm_ms, warm_iters, warm->total_cost_bits,
              warm_iters > 0 ? cold_iters / warm_iters : 0.0);

  // 4. Incremental update: pretend one extra year of quiet data arrived.
  // UpdateFit decides per keyword whether the cached shock schedule still
  // explains the appended window; quiet keywords skip shock re-detection.
  const size_t appended = 52;
  ActivityTensor extended(tensor.num_keywords(), tensor.num_locations(),
                          tensor.num_ticks() + appended);
  for (size_t i = 0; i < tensor.num_keywords(); ++i) {
    (void)extended.SetKeywordName(i, tensor.keywords()[i]);
    for (size_t j = 0; j < tensor.num_locations(); ++j) {
      for (size_t t = 0; t < tensor.num_ticks(); ++t) {
        extended.at(i, j, t) = tensor.at(i, j, t);
      }
      // The appended year repeats the last observed tick: no bursts, so
      // the cached schedules should survive.
      for (size_t t = 0; t < appended; ++t) {
        extended.at(i, j, tensor.num_ticks() + t) =
            tensor.at(i, j, tensor.num_ticks() - 1);
      }
    }
  }
  auto update = UpdateFit(*loaded, extended);
  if (!update.ok()) {
    std::fprintf(stderr, "update failed: %s\n",
                 update.status().ToString().c_str());
    return 1;
  }
  size_t redetected = 0;
  for (const bool r : update->redetected) redetected += r ? 1 : 0;
  std::printf("[update]     absorbed %zu ticks; %zu/%zu keyword(s) "
              "re-detected shocks\n",
              update->appended_ticks, redetected, update->redetected.size());
  std::remove(path.c_str());
  return 0;
}
