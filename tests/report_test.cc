// Tests for src/core/report: calendar rendering and event summaries.

#include <gtest/gtest.h>

#include "core/report.h"

namespace dspot {
namespace {

TEST(Report, TickToCalendarWeekly) {
  EXPECT_EQ(TickToCalendar(0), "2004-Jan");
  EXPECT_EQ(TickToCalendar(51), "2004-Dec");
  EXPECT_EQ(TickToCalendar(52), "2005-Jan");
  EXPECT_EQ(TickToCalendar(343), "2010-Aug");  // the Amazon onset
}

TEST(Report, TickToCalendarCustomAxis) {
  CalendarConfig daily;
  daily.ticks_per_year = 365;
  daily.start_year = 2011;
  EXPECT_EQ(TickToCalendar(0, daily), "2011-Jan");
  EXPECT_EQ(TickToCalendar(364, daily), "2011-Dec");
  EXPECT_EQ(TickToCalendar(400, daily), "2012-Feb");
}

Shock AnnualShock() {
  Shock s;
  s.keyword = 0;
  s.period = 52;
  s.start = 6;
  s.width = 2;
  s.base_strength = 3.5;
  s.global_strengths.assign(5, 3.5);
  return s;
}

TEST(Report, DescribeShockCyclic) {
  const std::string d = DescribeShock(AnnualShock());
  EXPECT_NE(d.find("cyclic"), std::string::npos);
  EXPECT_NE(d.find("~1.0 year"), std::string::npos);
  EXPECT_NE(d.find("2004-Feb"), std::string::npos);
  EXPECT_NE(d.find("3.50"), std::string::npos);
  EXPECT_NE(d.find("5 occurrences"), std::string::npos);
}

TEST(Report, DescribeShockOneShot) {
  Shock s;
  s.start = 553;
  s.width = 8;
  s.base_strength = 18.0;
  s.global_strengths = {18.0};
  const std::string d = DescribeShock(s);
  EXPECT_NE(d.find("one-shot"), std::string::npos);
  EXPECT_NE(d.find("2014"), std::string::npos);
  EXPECT_NE(d.find("1 occurrence"), std::string::npos);
}

TEST(Report, DescribeShortPeriodInTicks) {
  Shock s = AnnualShock();
  s.period = 7;
  const std::string d = DescribeShock(s);
  EXPECT_NE(d.find("every 7 ticks"), std::string::npos);
}

ModelParamSet SampleParams() {
  ModelParamSet params;
  params.num_keywords = 2;
  params.num_locations = 3;
  params.num_ticks = 260;
  KeywordGlobalParams g;
  g.population = 150.0;
  g.beta = 0.5;
  g.delta = 0.4;
  g.gamma = 0.3;
  params.global = {g, g};
  params.global[1].growth_rate = 0.2;
  params.global[1].growth_start = 100;
  Shock strong = AnnualShock();
  strong.base_strength = 9.0;
  Shock weak = AnnualShock();
  weak.keyword = 1;
  weak.base_strength = 2.0;
  params.shocks = {weak, strong};
  return params;
}

TEST(Report, SummariesSortedByStrength) {
  const auto events = SummarizeEvents(SampleParams());
  ASSERT_EQ(events.size(), 2u);
  EXPECT_DOUBLE_EQ(events[0].strength, 9.0);
  EXPECT_DOUBLE_EQ(events[1].strength, 2.0);
  EXPECT_EQ(events[0].keyword, 0u);
  EXPECT_TRUE(events[0].cyclic);
  EXPECT_FALSE(events[0].description.empty());
}

TEST(Report, RenderReportMentionsEverything) {
  const std::string report =
      RenderReport(SampleParams(), {"grammy", "amazon"});
  EXPECT_NE(report.find("grammy"), std::string::npos);
  EXPECT_NE(report.find("amazon"), std::string::npos);
  EXPECT_NE(report.find("growth effect"), std::string::npos);
  EXPECT_NE(report.find("cyclic event"), std::string::npos);
  EXPECT_NE(report.find("N=150.0"), std::string::npos);
}

TEST(Report, RenderReportWithoutNames) {
  ModelParamSet params = SampleParams();
  params.shocks.clear();
  const std::string report = RenderReport(params);
  EXPECT_NE(report.find("keyword 0"), std::string::npos);
  EXPECT_NE(report.find("no external events"), std::string::npos);
}

}  // namespace
}  // namespace dspot
